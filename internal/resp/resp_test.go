package resp

import (
	"bytes"
	"errors"
	"io"
	"reflect"
	"strings"
	"testing"
)

// chunkReader yields its data in tiny chunks to exercise refill paths.
type chunkReader struct {
	data []byte
	n    int
}

func (c *chunkReader) Read(p []byte) (int, error) {
	if len(c.data) == 0 {
		return 0, io.EOF
	}
	n := c.n
	if n > len(c.data) {
		n = len(c.data)
	}
	if n > len(p) {
		n = len(p)
	}
	copy(p, c.data[:n])
	c.data = c.data[n:]
	return n, nil
}

func TestReadCommandArray(t *testing.T) {
	in := "*3\r\n$3\r\nSET\r\n$1\r\nk\r\n$5\r\nhello\r\n*1\r\n$4\r\nPING\r\n"
	r := NewReader(strings.NewReader(in))
	cmd, err := r.ReadCommand()
	if err != nil {
		t.Fatal(err)
	}
	want := [][]byte{[]byte("SET"), []byte("k"), []byte("hello")}
	if !reflect.DeepEqual(cmd, want) {
		t.Fatalf("got %q", cmd)
	}
	if r.Buffered() == 0 {
		t.Fatal("second command should be buffered")
	}
	cmd, err = r.ReadCommand()
	if err != nil || len(cmd) != 1 || string(cmd[0]) != "PING" {
		t.Fatalf("second command: %q, %v", cmd, err)
	}
	if r.Buffered() != 0 {
		t.Fatalf("Buffered() = %d after draining", r.Buffered())
	}
	if _, err := r.ReadCommand(); err != io.EOF {
		t.Fatalf("EOF expected, got %v", err)
	}
}

func TestReadCommandChunked(t *testing.T) {
	// One byte at a time: every fill/grow path runs.
	in := "*2\r\n$3\r\nGET\r\n$10\r\nabcdefghij\r\n"
	r := NewReader(&chunkReader{data: []byte(in), n: 1})
	cmd, err := r.ReadCommand()
	if err != nil {
		t.Fatal(err)
	}
	if len(cmd) != 2 || string(cmd[0]) != "GET" || string(cmd[1]) != "abcdefghij" {
		t.Fatalf("got %q", cmd)
	}
}

func TestReadCommandInline(t *testing.T) {
	r := NewReader(strings.NewReader("PING\r\n  SET  k   v \r\n\r\nGET k\r\n"))
	cmd, _ := r.ReadCommand()
	if len(cmd) != 1 || string(cmd[0]) != "PING" {
		t.Fatalf("got %q", cmd)
	}
	cmd, _ = r.ReadCommand()
	if len(cmd) != 3 || string(cmd[0]) != "SET" || string(cmd[2]) != "v" {
		t.Fatalf("got %q", cmd)
	}
	cmd, err := r.ReadCommand()
	if err != nil || len(cmd) != 0 {
		t.Fatalf("blank line: %q, %v", cmd, err)
	}
	cmd, _ = r.ReadCommand()
	if len(cmd) != 2 || string(cmd[1]) != "k" {
		t.Fatalf("got %q", cmd)
	}
}

func TestReadCommandBinaryValue(t *testing.T) {
	val := []byte{0, 1, 2, '\r', '\n', 0xff, '*', '$'}
	var in []byte
	in, err := AppendCommand(nil, "SET", "bin", val)
	if err != nil {
		t.Fatal(err)
	}
	r := NewReader(bytes.NewReader(in))
	cmd, err := r.ReadCommand()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(cmd[2], val) {
		t.Fatalf("binary value mangled: %q", cmd[2])
	}
}

func TestReadCommandProtocolErrors(t *testing.T) {
	for _, in := range []string{
		"*2\r\n$3\r\nGET\r\n:5\r\n", // non-bulk element
		"*1\r\n$-3\r\nx\r\n",        // negative bulk length
		"*1\r\n$3\r\nabcXY",         // missing CRLF after bulk
		"*1\r\n$notanumber\r\n",     // garbage length
		"*99999999999999999999\r\n", // overflow array length
	} {
		r := NewReader(strings.NewReader(in))
		if _, err := r.ReadCommand(); !errors.Is(err, ErrProtocol) {
			t.Errorf("input %q: want ErrProtocol, got %v", in, err)
		}
	}
}

func TestWriterReplies(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	w.SimpleString("OK")
	w.Error("ERR boom")
	w.Int(-42)
	w.Bulk([]byte("hi"))
	w.Bulk(nil)
	w.BulkString("")
	w.Array(2)
	w.Bulk([]byte("a"))
	w.Bulk([]byte("b"))
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	want := "+OK\r\n-ERR boom\r\n:-42\r\n$2\r\nhi\r\n$-1\r\n$0\r\n\r\n*2\r\n$1\r\na\r\n$1\r\nb\r\n"
	if buf.String() != want {
		t.Fatalf("got %q\nwant %q", buf.String(), want)
	}
}

func TestReadReplyRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	w.SimpleString("PONG")
	w.Error("ERR nope")
	w.Int(7)
	w.Bulk([]byte("value"))
	w.Bulk(nil)
	w.Array(2)
	w.Bulk([]byte("k1"))
	w.Bulk(nil)
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}

	r := NewReader(&buf)
	if v, _ := r.ReadReply(); v != "PONG" {
		t.Fatalf("simple: %v", v)
	}
	if v, _ := r.ReadReply(); v != Error("ERR nope") {
		t.Fatalf("error: %v", v)
	}
	if v, _ := r.ReadReply(); v != int64(7) {
		t.Fatalf("int: %v", v)
	}
	if v, _ := r.ReadReply(); string(v.([]byte)) != "value" {
		t.Fatalf("bulk: %v", v)
	}
	if v, _ := r.ReadReply(); v.([]byte) != nil {
		t.Fatalf("null bulk: %v", v)
	}
	v, err := r.ReadReply()
	if err != nil {
		t.Fatal(err)
	}
	arr := v.([]interface{})
	if len(arr) != 2 || string(arr[0].([]byte)) != "k1" || arr[1].([]byte) != nil {
		t.Fatalf("array: %v", arr)
	}
}

func TestReplyDoesNotAliasBuffer(t *testing.T) {
	// Two bulk replies; the first, held across the second read, must not be
	// clobbered by buffer compaction.
	in := "$5\r\nfirst\r\n$6\r\nsecond\r\n"
	r := NewReader(strings.NewReader(in))
	v1, err := r.ReadReply()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.ReadReply(); err != nil {
		t.Fatal(err)
	}
	if string(v1.([]byte)) != "first" {
		t.Fatalf("first reply corrupted: %q", v1)
	}
}

func TestAppendCommandTypes(t *testing.T) {
	b, err := AppendCommand(nil, "SCAN", []byte("0"), "COUNT", 10)
	if err != nil {
		t.Fatal(err)
	}
	r := NewReader(bytes.NewReader(b))
	cmd, err := r.ReadCommand()
	if err != nil || len(cmd) != 4 || string(cmd[3]) != "10" {
		t.Fatalf("got %q, %v", cmd, err)
	}
	if _, err := AppendCommand(nil, 3.14); err == nil {
		t.Fatal("float argument should be rejected")
	}
}
