// Package resp implements the subset of the RESP2 wire protocol (the Redis
// serialization protocol) that the serving layer speaks: command arrays of
// bulk strings on the request side, and the five RESP2 reply types (simple
// string, error, integer, bulk string, array) on the response side. Because
// the protocol is RESP2, stock Redis tooling — redis-cli, redis-benchmark —
// works against the server unmodified.
//
// The Reader is zero-copy: ReadCommand returns argument slices that alias
// the Reader's internal buffer and stay valid only until the next
// ReadCommand call. That is exactly the lifetime the server needs — keys
// and values are copied into a write batch or looked up before the next
// command is parsed — and it keeps steady-state request parsing free of
// per-argument allocations.
//
// The Writer buffers replies and writes them to the underlying connection
// only on Flush, so a pipelined burst of commands produces one response
// write per burst, mirroring how the server turns the burst into one write
// batch.
package resp

import (
	"errors"
	"fmt"
	"io"
	"strconv"
)

// Protocol limits. Commands beyond these are malformed or hostile; the
// server closes the connection on ErrProtocol.
const (
	// MaxArgs bounds the number of arguments in one command.
	MaxArgs = 1 << 20
	// MaxBulkLen bounds one argument's size (64 MiB, comfortably above any
	// sane key or value).
	MaxBulkLen = 64 << 20
	// maxInline bounds an inline (telnet-style) command line.
	maxInline = 1 << 16
)

// ErrProtocol reports malformed or oversized input; the connection is not
// recoverable past it.
var ErrProtocol = errors.New("resp: protocol error")

// Error is an error reply (the "-..." type). The client surfaces it as the
// command's error; the server writer emits it verbatim.
type Error string

func (e Error) Error() string { return string(e) }

// ---------------------------------------------------------------------------
// Reader

// Reader incrementally parses RESP values from a stream using its own
// buffer, so parsed slices can alias buffered bytes (bufio.Reader cannot
// expose that). The buffer is compacted only between commands, which is
// what keeps returned slices valid until the next ReadCommand.
type Reader struct {
	rd  io.Reader
	buf []byte
	r   int // next unread byte
	w   int // end of valid data

	args   [][]byte // reused result slice
	argPos [][2]int // arg offsets into buf, resolved after parsing completes
}

// NewReader wraps rd with a fresh parse buffer.
func NewReader(rd io.Reader) *Reader {
	return &Reader{rd: rd, buf: make([]byte, 0, 16<<10)}
}

// Buffered reports how many parsed-but-unconsumed bytes the Reader holds —
// non-zero exactly when more pipelined commands are already in memory. The
// server uses it to decide when a pipelined burst has drained (flush the
// pending batch and the reply buffer) versus when to keep absorbing.
func (r *Reader) Buffered() int { return r.w - r.r }

// fill reads more data from the underlying stream into buf[w:], growing the
// buffer if needed. Growth may move the backing array, which is why args are
// tracked as offsets until a command is fully parsed.
func (r *Reader) fill() error {
	if r.w == len(r.buf) {
		if cap(r.buf)-r.w < 512 {
			nbuf := make([]byte, r.w, 2*cap(r.buf)+512)
			copy(nbuf, r.buf[:r.w])
			r.buf = nbuf
		}
		r.buf = r.buf[:cap(r.buf)]
	}
	n, err := r.rd.Read(r.buf[r.w:])
	r.w += n
	r.buf = r.buf[:r.w]
	if n > 0 {
		return nil
	}
	if err == nil {
		err = io.ErrNoProgress
	}
	return err
}

// compact drops consumed bytes. Called only at command boundaries so that
// slices handed out for the previous command are no longer live.
func (r *Reader) compact() {
	if r.r == 0 {
		return
	}
	n := copy(r.buf, r.buf[r.r:r.w])
	r.r, r.w = 0, n
	r.buf = r.buf[:n]
}

// readLine returns the offsets [start,end) of the next CRLF-terminated line
// (excluding the CRLF), filling as needed.
func (r *Reader) readLine() (start, end int, err error) {
	start = r.r
	for i := r.r; ; i++ {
		for i+1 >= r.w {
			if r.w-start > maxInline {
				return 0, 0, fmt.Errorf("%w: line exceeds %d bytes", ErrProtocol, maxInline)
			}
			if err := r.fill(); err != nil {
				return 0, 0, err
			}
		}
		if r.buf[i] == '\r' && r.buf[i+1] == '\n' {
			r.r = i + 2
			return start, i, nil
		}
	}
}

// parseInt parses the decimal in buf[start:end].
func (r *Reader) parseInt(start, end int) (int64, error) {
	n, err := strconv.ParseInt(string(r.buf[start:end]), 10, 64)
	if err != nil {
		return 0, fmt.Errorf("%w: bad length %q", ErrProtocol, r.buf[start:end])
	}
	return n, nil
}

// ReadCommand parses one client command: either a RESP array of bulk
// strings (what every real client sends) or an inline whitespace-separated
// line (telnet convenience). The returned slices alias the Reader's buffer
// and are valid only until the next ReadCommand call. An empty inline line
// yields a zero-length command; callers skip it.
func (r *Reader) ReadCommand() ([][]byte, error) {
	r.compact()
	r.argPos = r.argPos[:0]

	// Peek the first byte to pick array vs inline framing.
	for r.r >= r.w {
		if err := r.fill(); err != nil {
			return nil, err
		}
	}
	if r.buf[r.r] != '*' {
		return r.readInline()
	}

	start, end, err := r.readLine()
	if err != nil {
		return nil, err
	}
	n, err := r.parseInt(start+1, end)
	if err != nil {
		return nil, err
	}
	if n < 0 || n > MaxArgs {
		return nil, fmt.Errorf("%w: %d args", ErrProtocol, n)
	}
	for i := int64(0); i < n; i++ {
		s, e, err := r.readLine()
		if err != nil {
			return nil, err
		}
		if e == s || r.buf[s] != '$' {
			return nil, fmt.Errorf("%w: expected bulk string", ErrProtocol)
		}
		blen, err := r.parseInt(s+1, e)
		if err != nil {
			return nil, err
		}
		if blen < 0 || blen > MaxBulkLen {
			return nil, fmt.Errorf("%w: bulk length %d", ErrProtocol, blen)
		}
		for int64(r.w-r.r) < blen+2 {
			if err := r.fill(); err != nil {
				return nil, err
			}
		}
		if r.buf[r.r+int(blen)] != '\r' || r.buf[r.r+int(blen)+1] != '\n' {
			return nil, fmt.Errorf("%w: bulk string missing CRLF", ErrProtocol)
		}
		r.argPos = append(r.argPos, [2]int{r.r, r.r + int(blen)})
		r.r += int(blen) + 2
	}
	return r.resolveArgs(), nil
}

// readInline parses a telnet-style command: one line, arguments separated
// by spaces or tabs (no quoting).
func (r *Reader) readInline() ([][]byte, error) {
	start, end, err := r.readLine()
	if err != nil {
		return nil, err
	}
	i := start
	for i < end {
		for i < end && (r.buf[i] == ' ' || r.buf[i] == '\t') {
			i++
		}
		j := i
		for j < end && r.buf[j] != ' ' && r.buf[j] != '\t' {
			j++
		}
		if j > i {
			r.argPos = append(r.argPos, [2]int{i, j})
		}
		i = j
	}
	return r.resolveArgs(), nil
}

// resolveArgs materializes the offset list into byte slices. Done last,
// after all fills, so growth cannot invalidate them.
func (r *Reader) resolveArgs() [][]byte {
	r.args = r.args[:0]
	for _, p := range r.argPos {
		r.args = append(r.args, r.buf[p[0]:p[1]:p[1]])
	}
	return r.args
}

// ---------------------------------------------------------------------------
// Reply reading (client side)

// ReadReply parses one server reply into a Go value:
//
//	simple string → string
//	error         → Error (returned as the value, not err)
//	integer       → int64
//	bulk string   → []byte (nil for the null bulk)
//	array         → []interface{} (nil for the null array)
//
// Unlike ReadCommand, the returned value does not alias the Reader's buffer
// — bulk payloads are copied — because clients hand replies to application
// code with unbounded lifetime.
func (r *Reader) ReadReply() (interface{}, error) {
	r.compact()
	return r.readReplyValue()
}

func (r *Reader) readReplyValue() (interface{}, error) {
	for r.r >= r.w {
		if err := r.fill(); err != nil {
			return nil, err
		}
	}
	typ := r.buf[r.r]
	start, end, err := r.readLine()
	if err != nil {
		return nil, err
	}
	line := r.buf[start+1 : end]
	switch typ {
	case '+':
		return string(line), nil
	case '-':
		return Error(string(line)), nil
	case ':':
		n, err := strconv.ParseInt(string(line), 10, 64)
		if err != nil {
			return nil, fmt.Errorf("%w: bad integer %q", ErrProtocol, line)
		}
		return n, nil
	case '$':
		blen, err := strconv.ParseInt(string(line), 10, 64)
		if err != nil {
			return nil, fmt.Errorf("%w: bad bulk length %q", ErrProtocol, line)
		}
		if blen == -1 {
			return []byte(nil), nil
		}
		if blen < 0 || blen > MaxBulkLen {
			return nil, fmt.Errorf("%w: bulk length %d", ErrProtocol, blen)
		}
		for int64(r.w-r.r) < blen+2 {
			if err := r.fill(); err != nil {
				return nil, err
			}
		}
		out := append([]byte(nil), r.buf[r.r:r.r+int(blen)]...)
		r.r += int(blen) + 2
		return out, nil
	case '*':
		n, err := strconv.ParseInt(string(line), 10, 64)
		if err != nil {
			return nil, fmt.Errorf("%w: bad array length %q", ErrProtocol, line)
		}
		if n == -1 {
			return []interface{}(nil), nil
		}
		if n < 0 || n > MaxArgs {
			return nil, fmt.Errorf("%w: array length %d", ErrProtocol, n)
		}
		out := make([]interface{}, 0, n)
		for i := int64(0); i < n; i++ {
			v, err := r.readReplyValue()
			if err != nil {
				return nil, err
			}
			out = append(out, v)
		}
		return out, nil
	default:
		return nil, fmt.Errorf("%w: unknown reply type %q", ErrProtocol, typ)
	}
}

// ---------------------------------------------------------------------------
// Writer

// Writer accumulates RESP replies in memory and writes them out on Flush.
// Methods never fail; the first underlying write error is latched and
// returned by Flush (and every later Flush), matching bufio's model. Not
// safe for concurrent use — each connection owns one.
type Writer struct {
	w   io.Writer
	buf []byte
	err error
}

// NewWriter builds a reply writer over w.
func NewWriter(w io.Writer) *Writer {
	return &Writer{w: w, buf: make([]byte, 0, 8<<10)}
}

// Buffered reports bytes queued but not yet flushed.
func (w *Writer) Buffered() int { return len(w.buf) }

// SimpleString queues "+s\r\n" (s must not contain CR/LF).
func (w *Writer) SimpleString(s string) {
	w.buf = append(w.buf, '+')
	w.buf = append(w.buf, s...)
	w.buf = append(w.buf, '\r', '\n')
}

// Error queues "-msg\r\n" (msg must not contain CR/LF).
func (w *Writer) Error(msg string) {
	w.buf = append(w.buf, '-')
	w.buf = append(w.buf, msg...)
	w.buf = append(w.buf, '\r', '\n')
}

// Int queues ":n\r\n".
func (w *Writer) Int(n int64) {
	w.buf = append(w.buf, ':')
	w.buf = strconv.AppendInt(w.buf, n, 10)
	w.buf = append(w.buf, '\r', '\n')
}

// Bulk queues a bulk string. A nil slice is written as the RESP null bulk
// ("$-1\r\n"), which clients read back as nil — the missing-key reply.
func (w *Writer) Bulk(b []byte) {
	if b == nil {
		w.buf = append(w.buf, '$', '-', '1', '\r', '\n')
		return
	}
	w.buf = append(w.buf, '$')
	w.buf = strconv.AppendInt(w.buf, int64(len(b)), 10)
	w.buf = append(w.buf, '\r', '\n')
	w.buf = append(w.buf, b...)
	w.buf = append(w.buf, '\r', '\n')
}

// BulkString queues a non-nil bulk string from a Go string.
func (w *Writer) BulkString(s string) {
	w.buf = append(w.buf, '$')
	w.buf = strconv.AppendInt(w.buf, int64(len(s)), 10)
	w.buf = append(w.buf, '\r', '\n')
	w.buf = append(w.buf, s...)
	w.buf = append(w.buf, '\r', '\n')
}

// Raw queues pre-encoded RESP bytes (e.g. from AppendCommand) verbatim.
func (w *Writer) Raw(b []byte) {
	w.buf = append(w.buf, b...)
}

// Array queues an array header for n following replies.
func (w *Writer) Array(n int) {
	w.buf = append(w.buf, '*')
	w.buf = strconv.AppendInt(w.buf, int64(n), 10)
	w.buf = append(w.buf, '\r', '\n')
}

// Flush writes the queued replies to the underlying stream.
func (w *Writer) Flush() error {
	if w.err != nil {
		return w.err
	}
	if len(w.buf) == 0 {
		return nil
	}
	_, err := w.w.Write(w.buf)
	w.buf = w.buf[:0]
	if err != nil {
		w.err = err
	}
	return err
}

// ---------------------------------------------------------------------------
// Command encoding (client side)

// AppendCommand appends the RESP encoding of one command (array of bulk
// strings) to dst and returns the extended slice. Arguments may be string,
// []byte, int, or int64.
func AppendCommand(dst []byte, args ...interface{}) ([]byte, error) {
	dst = append(dst, '*')
	dst = strconv.AppendInt(dst, int64(len(args)), 10)
	dst = append(dst, '\r', '\n')
	for _, a := range args {
		var b []byte
		switch v := a.(type) {
		case string:
			b = []byte(v)
		case []byte:
			b = v
		case int:
			b = strconv.AppendInt(nil, int64(v), 10)
		case int64:
			b = strconv.AppendInt(nil, v, 10)
		default:
			return nil, fmt.Errorf("resp: unsupported argument type %T", a)
		}
		dst = append(dst, '$')
		dst = strconv.AppendInt(dst, int64(len(b)), 10)
		dst = append(dst, '\r', '\n')
		dst = append(dst, b...)
		dst = append(dst, '\r', '\n')
	}
	return dst, nil
}
