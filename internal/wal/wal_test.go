package wal

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"testing"
	"testing/quick"

	"repro/internal/vfs"
)

func writeLog(t testing.TB, fs vfs.FS, name string, recs ...[]byte) {
	t.Helper()
	f, err := fs.Create(name)
	if err != nil {
		t.Fatal(err)
	}
	w := NewWriter(f)
	for _, r := range recs {
		if err := w.AddRecord(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Sync(); err != nil {
		t.Fatal(err)
	}
	_ = f.Close()
}

func readAll(t testing.TB, fs vfs.FS, name string) ([][]byte, error) {
	t.Helper()
	f, err := fs.Open(name)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	r := NewReader(f)
	var out [][]byte
	for {
		rec, err := r.Next()
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return out, err
		}
		out = append(out, rec)
	}
}

func TestRoundTripSmallRecords(t *testing.T) {
	fs := vfs.Mem()
	recs := [][]byte{[]byte("one"), []byte("two"), {}, []byte("four")}
	writeLog(t, fs, "/log", recs...)
	got, err := readAll(t, fs, "/log")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(recs) {
		t.Fatalf("read %d records, want %d", len(got), len(recs))
	}
	for i := range recs {
		if !bytes.Equal(got[i], recs[i]) {
			t.Errorf("record %d: %q != %q", i, got[i], recs[i])
		}
	}
}

func TestRecordSpanningBlocks(t *testing.T) {
	fs := vfs.Mem()
	big := bytes.Repeat([]byte("x"), 3*BlockSize+123)
	writeLog(t, fs, "/log", []byte("small"), big, []byte("tail"))
	got, err := readAll(t, fs, "/log")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || !bytes.Equal(got[1], big) || string(got[2]) != "tail" {
		t.Fatalf("spanning record mangled: %d records", len(got))
	}
}

func TestRecordExactlyFillingBlock(t *testing.T) {
	fs := vfs.Mem()
	rec := bytes.Repeat([]byte("y"), BlockSize-headerLen)
	writeLog(t, fs, "/log", rec, []byte("next"))
	got, err := readAll(t, fs, "/log")
	if err != nil || len(got) != 2 || !bytes.Equal(got[0], rec) {
		t.Fatalf("block-filling record: %d records err=%v", len(got), err)
	}
}

func TestBlockTailPadding(t *testing.T) {
	fs := vfs.Mem()
	// Leave fewer than headerLen bytes in the first block.
	rec := bytes.Repeat([]byte("z"), BlockSize-headerLen-3)
	writeLog(t, fs, "/log", rec, []byte("after-pad"))
	got, err := readAll(t, fs, "/log")
	if err != nil || len(got) != 2 || string(got[1]) != "after-pad" {
		t.Fatalf("padding handling: %d records err=%v", len(got), err)
	}
}

func TestTornTailDetected(t *testing.T) {
	fs := vfs.Mem()
	writeLog(t, fs, "/log", []byte("good-1"), []byte("good-2"), bytes.Repeat([]byte("G"), 5000))
	// Truncate mid-way through the last record.
	f, _ := fs.Open("/log")
	size, _ := f.Size()
	raw := make([]byte, size-2000)
	f.ReadAt(raw, 0)
	_ = f.Close()
	out, _ := fs.Create("/log")
	out.Write(raw)
	_ = out.Close()

	got, err := readAll(t, fs, "/log")
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("torn tail err = %v, want ErrCorrupt", err)
	}
	if len(got) != 2 || string(got[0]) != "good-1" || string(got[1]) != "good-2" {
		t.Errorf("records before tear lost: %d", len(got))
	}
}

func TestBitFlipDetected(t *testing.T) {
	fs := vfs.Mem()
	writeLog(t, fs, "/log", []byte("aaaa"), []byte("bbbb"))
	f, _ := fs.Open("/log")
	size, _ := f.Size()
	raw := make([]byte, size)
	f.ReadAt(raw, 0)
	_ = f.Close()
	raw[headerLen+1] ^= 0x01 // flip a payload bit of the first record
	out, _ := fs.Create("/log")
	out.Write(raw)
	_ = out.Close()

	_, err := readAll(t, fs, "/log")
	if !errors.Is(err, ErrCorrupt) {
		t.Errorf("bit flip err = %v, want ErrCorrupt", err)
	}
}

func TestEmptyLog(t *testing.T) {
	fs := vfs.Mem()
	writeLog(t, fs, "/log")
	got, err := readAll(t, fs, "/log")
	if err != nil || len(got) != 0 {
		t.Errorf("empty log: %d records err=%v", len(got), err)
	}
}

func TestManyRecordsRoundTripQuick(t *testing.T) {
	f := func(payloads [][]byte) bool {
		fs := vfs.Mem()
		writeLog(t, fs, "/log", payloads...)
		got, err := readAll(t, fs, "/log")
		if err != nil || len(got) != len(payloads) {
			return false
		}
		for i := range payloads {
			if !bytes.Equal(got[i], payloads[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestAppendAcrossManyBlocks(t *testing.T) {
	fs := vfs.Mem()
	var recs [][]byte
	for i := 0; i < 500; i++ {
		recs = append(recs, []byte(fmt.Sprintf("record-%04d-%s", i, bytes.Repeat([]byte("p"), i%700))))
	}
	writeLog(t, fs, "/log", recs...)
	got, err := readAll(t, fs, "/log")
	if err != nil || len(got) != len(recs) {
		t.Fatalf("%d records err=%v", len(got), err)
	}
	for i := range recs {
		if !bytes.Equal(got[i], recs[i]) {
			t.Fatalf("record %d corrupted", i)
		}
	}
}

func BenchmarkAddRecord1K(b *testing.B) {
	fs := vfs.Mem()
	f, _ := fs.Create("/log")
	w := NewWriter(f)
	rec := bytes.Repeat([]byte("r"), 1024)
	b.SetBytes(1024)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w.AddRecord(rec)
	}
}

// countingFile counts Write calls, to observe the buffered writer coalescing.
type countingFile struct {
	vfs.File
	writes int
}

func (c *countingFile) Write(p []byte) (int, error) {
	c.writes++
	return c.File.Write(p)
}

func TestBufferedWriterCoalescesAndRoundTrips(t *testing.T) {
	fs := vfs.Mem()
	raw, err := fs.Create("/log")
	if err != nil {
		t.Fatal(err)
	}
	cf := &countingFile{File: raw}
	w := NewWriterSize(cf, 8<<10)
	var recs [][]byte
	for i := 0; i < 64; i++ {
		rec := bytes.Repeat([]byte{byte(i)}, 100)
		recs = append(recs, rec)
		if err := w.AddRecord(rec); err != nil {
			t.Fatal(err)
		}
	}
	// 64 records × ~107 bytes stage into an 8 KiB buffer: far fewer device
	// writes than records.
	if cf.writes >= 32 {
		t.Errorf("buffered writer issued %d writes for 64 records; want coalescing", cf.writes)
	}
	if err := w.Sync(); err != nil {
		t.Fatal(err)
	}
	got, err := readAll(t, fs, "/log")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(recs) {
		t.Fatalf("read %d records, want %d", len(got), len(recs))
	}
	for i := range recs {
		if !bytes.Equal(got[i], recs[i]) {
			t.Fatalf("record %d mismatch", i)
		}
	}
}

func TestFlushWithoutSyncMakesRecordsReadable(t *testing.T) {
	fs := vfs.Mem()
	f, err := fs.Create("/log")
	if err != nil {
		t.Fatal(err)
	}
	w := NewWriterSize(f, 32<<10)
	if err := w.AddRecord([]byte("staged")); err != nil {
		t.Fatal(err)
	}
	// Before Flush the record sits in the writer's buffer only.
	if got, _ := readAll(t, fs, "/log"); len(got) != 0 {
		t.Fatalf("unflushed record already visible: %d records", len(got))
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	got, err := readAll(t, fs, "/log")
	if err != nil || len(got) != 1 || string(got[0]) != "staged" {
		t.Fatalf("after Flush: records=%v err=%v", got, err)
	}
}

func TestBufferedWriterSpanningBlocks(t *testing.T) {
	fs := vfs.Mem()
	f, err := fs.Create("/log")
	if err != nil {
		t.Fatal(err)
	}
	w := NewWriterSize(f, 4<<10)
	big := bytes.Repeat([]byte{0xAB}, 3*BlockSize+123)
	if err := w.AddRecord(big); err != nil {
		t.Fatal(err)
	}
	if err := w.AddRecord([]byte("after")); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	got, err := readAll(t, fs, "/log")
	if err != nil || len(got) != 2 {
		t.Fatalf("records=%d err=%v, want 2 records", len(got), err)
	}
	if !bytes.Equal(got[0], big) || string(got[1]) != "after" {
		t.Fatal("buffered multi-block record corrupted")
	}
}
