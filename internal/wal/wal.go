// Package wal implements the write-ahead log, using LevelDB's record
// framing: the file is a sequence of 32 KiB blocks; each record fragment
// carries a 7-byte header (CRC, length, type) and records spanning blocks
// are split into FIRST/MIDDLE/LAST fragments. The format makes torn tails
// detectable: recovery reads records until the first corrupt or truncated
// fragment and discards the rest.
//
// The same framing stores both the WAL and the MANIFEST, as in LevelDB.
package wal

import (
	"errors"
	"fmt"
	"hash/crc32"
	"io"

	"repro/internal/encoding"
	"repro/internal/vfs"
)

const (
	// BlockSize is the framing block size.
	BlockSize = 32 << 10
	headerLen = 7 // crc(4) + length(2) + type(1)

	typeFull   = 1
	typeFirst  = 2
	typeMiddle = 3
	typeLast   = 4
)

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// ErrCorrupt reports a damaged log; by construction it only arises at the
// point the log was torn, so records before it are trustworthy.
var ErrCorrupt = errors.New("wal: corrupt log")

// Writer appends length-prefixed records to a log file. The append and
// durability stages are split: AddRecord stages a record (into the writer's
// coalescing buffer when one is configured), Flush pushes staged bytes to
// the OS, and Sync additionally fsyncs — so a commit pipeline can append
// under its store lock and pay the fsync outside it.
type Writer struct {
	f           vfs.File
	blockOffset int // offset within the current block
	buf         []byte

	// pending is the owned coalescing buffer (nil = unbuffered). It models
	// the OS page cache for unsynced WALs: the device below sees large
	// sequential writes instead of per-record ones.
	pending []byte
	bufSize int
}

// NewWriter starts an unbuffered log at the beginning of f; every fragment
// is written straight through (the MANIFEST uses this mode).
func NewWriter(f vfs.File) *Writer {
	return &Writer{f: f}
}

// NewWriterSize starts a log whose appends coalesce in an owned buffer of
// roughly bufSize bytes; Flush or Sync push them down. bufSize <= 0 falls
// back to 32 KiB.
func NewWriterSize(f vfs.File, bufSize int) *Writer {
	if bufSize <= 0 {
		bufSize = 32 << 10
	}
	return &Writer{f: f, pending: make([]byte, 0, bufSize), bufSize: bufSize}
}

// write stages p: buffered writers accumulate until bufSize, unbuffered ones
// delegate immediately.
func (w *Writer) write(p []byte) error {
	if w.bufSize == 0 {
		_, err := w.f.Write(p)
		return err
	}
	w.pending = append(w.pending, p...)
	if len(w.pending) >= w.bufSize {
		return w.Flush()
	}
	return nil
}

// Flush pushes buffered appends to the OS (no fsync).
func (w *Writer) Flush() error {
	if len(w.pending) == 0 {
		return nil
	}
	_, err := w.f.Write(w.pending)
	w.pending = w.pending[:0]
	return err
}

// AddRecord appends one record and returns when it is buffered in the OS;
// call Sync for durability.
func (w *Writer) AddRecord(rec []byte) error {
	first := true
	for {
		leftover := BlockSize - w.blockOffset
		if leftover < headerLen {
			// Pad the block tail with zeros; readers skip it.
			if leftover > 0 {
				if err := w.write(make([]byte, leftover)); err != nil {
					return err
				}
			}
			w.blockOffset = 0
			leftover = BlockSize
		}
		avail := leftover - headerLen
		frag := rec
		if len(frag) > avail {
			frag = rec[:avail]
		}
		rec = rec[len(frag):]
		var typ byte
		last := len(rec) == 0
		switch {
		case first && last:
			typ = typeFull
		case first:
			typ = typeFirst
		case last:
			typ = typeLast
		default:
			typ = typeMiddle
		}
		if err := w.writeFragment(typ, frag); err != nil {
			return err
		}
		first = false
		if last {
			return nil
		}
	}
}

func (w *Writer) writeFragment(typ byte, frag []byte) error {
	w.buf = w.buf[:0]
	crc := crc32.Update(0, crcTable, []byte{typ})
	crc = crc32.Update(crc, crcTable, frag)
	w.buf = encoding.PutFixed32(w.buf, crc)
	w.buf = append(w.buf, byte(len(frag)), byte(len(frag)>>8), typ)
	w.buf = append(w.buf, frag...)
	if err := w.write(w.buf); err != nil {
		return err
	}
	w.blockOffset += len(w.buf)
	return nil
}

// Sync flushes staged appends and fsyncs the log to stable storage.
func (w *Writer) Sync() error {
	if err := w.Flush(); err != nil {
		return err
	}
	return w.f.Sync()
}

// Reader replays records from a log file.
type Reader struct {
	f      vfs.File
	off    int64
	block  [BlockSize]byte
	blockN int // valid bytes in block
	blockI int // cursor within block
	eof    bool
}

// NewReader reads the log in f from the start.
func NewReader(f vfs.File) *Reader {
	return &Reader{f: f}
}

// Next returns the next record, io.EOF at the clean end of the log, or an
// error wrapping ErrCorrupt at a torn/damaged point.
func (r *Reader) Next() ([]byte, error) {
	var rec []byte
	inFragmented := false
	for {
		if r.blockI+headerLen > r.blockN {
			// Rest of block is padding (or truncated tail).
			if err := r.readBlock(); err != nil {
				if err == io.EOF && inFragmented {
					return nil, fmt.Errorf("%w: log ended mid-record", ErrCorrupt)
				}
				return nil, err
			}
			continue
		}
		hdr := r.block[r.blockI : r.blockI+headerLen]
		length := int(hdr[4]) | int(hdr[5])<<8
		typ := hdr[6]
		if typ == 0 && length == 0 {
			// Zero padding within the block: advance to next block.
			r.blockI = r.blockN
			continue
		}
		if r.blockI+headerLen+length > r.blockN {
			return nil, fmt.Errorf("%w: fragment overruns block", ErrCorrupt)
		}
		frag := r.block[r.blockI+headerLen : r.blockI+headerLen+length]
		crc := crc32.Update(0, crcTable, []byte{typ})
		crc = crc32.Update(crc, crcTable, frag)
		if crc != encoding.Fixed32(hdr) {
			return nil, fmt.Errorf("%w: checksum mismatch", ErrCorrupt)
		}
		r.blockI += headerLen + length

		switch typ {
		case typeFull:
			if inFragmented {
				return nil, fmt.Errorf("%w: FULL inside fragmented record", ErrCorrupt)
			}
			return append([]byte(nil), frag...), nil
		case typeFirst:
			if inFragmented {
				return nil, fmt.Errorf("%w: FIRST inside fragmented record", ErrCorrupt)
			}
			inFragmented = true
			rec = append(rec[:0], frag...)
		case typeMiddle:
			if !inFragmented {
				return nil, fmt.Errorf("%w: orphan MIDDLE fragment", ErrCorrupt)
			}
			rec = append(rec, frag...)
		case typeLast:
			if !inFragmented {
				return nil, fmt.Errorf("%w: orphan LAST fragment", ErrCorrupt)
			}
			return append(rec, frag...), nil
		default:
			return nil, fmt.Errorf("%w: unknown fragment type %d", ErrCorrupt, typ)
		}
	}
}

func (r *Reader) readBlock() error {
	if r.eof {
		return io.EOF
	}
	n, err := r.f.ReadAt(r.block[:], r.off)
	r.off += int64(n)
	r.blockN, r.blockI = n, 0
	if err == io.EOF {
		r.eof = true
		if n == 0 {
			return io.EOF
		}
		return nil
	}
	return err
}
