package sstable

import (
	"fmt"
	"hash/crc32"
	"sync/atomic"

	"repro/internal/block"
	"repro/internal/bloom"
	"repro/internal/cache"
	"repro/internal/encoding"
	"repro/internal/iterator"
	"repro/internal/keys"
	"repro/internal/vfs"
)

// ReaderOptions configures table reading.
type ReaderOptions struct {
	// Cmp orders internal keys.
	Cmp keys.InternalComparer
	// Cache, when non-nil, holds decoded data blocks keyed by
	// (FileNum, block offset). Index and filter blocks are pinned in the
	// Reader itself, matching the paper's assumption that they stay
	// memory-resident.
	Cache *cache.Cache
	// FileNum namespaces cache keys and names the table in errors.
	FileNum uint64
	// VerifyChecksums controls per-read CRC validation (default true via
	// NewReaderOptions; zero value disables).
	VerifyChecksums bool
}

// Reader provides random access to one table. It is safe for concurrent use.
type Reader struct {
	opts   ReaderOptions
	f      vfs.File
	index  *block.Reader
	filter bloom.Filter

	// BlockReads counts data-block fetches that missed the cache; exposed
	// for the Fig 13 experiment and tests.
	blockReads atomic.Int64
}

// OpenReader reads the footer, index, and filter of a table file. The
// Reader takes ownership of f and closes it on Close.
func OpenReader(f vfs.File, opts ReaderOptions) (*Reader, error) {
	size, err := f.Size()
	if err != nil {
		return nil, err
	}
	if size < footerLen {
		return nil, fmt.Errorf("%w: file of %d bytes", ErrCorrupt, size)
	}
	buf := make([]byte, footerLen)
	if _, err := f.ReadAt(buf, size-footerLen); err != nil {
		return nil, err
	}
	ftr, err := decodeFooter(buf)
	if err != nil {
		return nil, err
	}
	r := &Reader{opts: opts, f: f}
	idxData, err := r.readBlockContents(ftr.indexHandle)
	if err != nil {
		return nil, err
	}
	r.index, err = block.NewReader(opts.Cmp.Compare, idxData)
	if err != nil {
		return nil, err
	}
	if ftr.filterHandle.length > 0 {
		fl, err := r.readBlockContents(ftr.filterHandle)
		if err != nil {
			return nil, err
		}
		r.filter = bloom.Filter(fl)
	}
	return r, nil
}

// Close releases the underlying file.
func (r *Reader) Close() error { return r.f.Close() }

// MayContain consults the Bloom filter for ukey; tables written without a
// filter report true.
func (r *Reader) MayContain(ukey []byte) bool {
	if r.filter == nil {
		return true
	}
	return r.filter.MayContain(ukey)
}

// BlockReads reports how many data blocks were fetched from the file
// (i.e. cache misses) over the reader's lifetime.
func (r *Reader) BlockReads() int64 { return r.blockReads.Load() }

// readBlockContents fetches and verifies a block, without caching.
func (r *Reader) readBlockContents(h blockHandle) ([]byte, error) {
	buf := make([]byte, h.length+blockTrailerLen)
	if _, err := r.f.ReadAt(buf, int64(h.offset)); err != nil {
		return nil, fmt.Errorf("sstable %06d: %w", r.opts.FileNum, err)
	}
	contents, trailer := buf[:h.length], buf[h.length:]
	if r.opts.VerifyChecksums {
		crc := crc32.Update(0, crcTable, contents)
		crc = crc32.Update(crc, crcTable, trailer[:1])
		if crc != encoding.Fixed32(trailer[1:]) {
			return nil, fmt.Errorf("%w: checksum mismatch in file %06d at offset %d",
				ErrCorrupt, r.opts.FileNum, h.offset)
		}
	}
	if trailer[0] != typeRaw {
		return nil, fmt.Errorf("%w: unknown block type %d", ErrCorrupt, trailer[0])
	}
	return contents, nil
}

// dataBlock returns a (possibly cached) reader for the data block at h.
func (r *Reader) dataBlock(h blockHandle) (*block.Reader, error) {
	if r.opts.Cache != nil {
		k := cache.Key{FileNum: r.opts.FileNum, Offset: h.offset}
		if v, ok := r.opts.Cache.Get(k); ok {
			return v.(*block.Reader), nil
		}
	}
	contents, err := r.readBlockContents(h)
	if err != nil {
		return nil, err
	}
	r.blockReads.Add(1)
	br, err := block.NewReader(r.opts.Cmp.Compare, contents)
	if err != nil {
		return nil, err
	}
	if r.opts.Cache != nil {
		k := cache.Key{FileNum: r.opts.FileNum, Offset: h.offset}
		r.opts.Cache.Set(k, br, int64(len(contents)))
	}
	return br, nil
}

// Get returns the value of the newest version of ukey visible at snapshot
// seq. deleted reports a tombstone; found reports whether any visible
// version exists in this table. The Bloom filter is consulted first.
func (r *Reader) Get(ukey []byte, seq keys.Seq) (value []byte, deleted, found bool, err error) {
	if !r.MayContain(ukey) {
		return nil, false, false, nil
	}
	it := r.NewIterator()
	defer it.Close()
	it.SeekGE(keys.MakeSearchKey(nil, ukey, seq))
	if !it.Valid() {
		return nil, false, false, it.Error()
	}
	ik := keys.InternalKey(it.Key())
	if r.opts.Cmp.User.Compare(ik.UserKey(), ukey) != 0 {
		return nil, false, false, nil
	}
	if ik.Kind() == keys.KindDelete {
		return nil, true, true, nil
	}
	return append([]byte(nil), it.Value()...), false, true, nil
}

// NewIterator returns a two-level iterator over the table.
func (r *Reader) NewIterator() iterator.Iterator {
	return &tableIter{r: r, index: r.index.Iter()}
}

// tableIter walks the index block and lazily opens data blocks.
type tableIter struct {
	r     *Reader
	index iterator.Iterator
	data  iterator.Iterator
	err   error
}

// loadData opens the data block referenced by the current index entry.
func (t *tableIter) loadData() bool {
	t.data = nil
	if !t.index.Valid() {
		return false
	}
	h, n := decodeBlockHandle(t.index.Value())
	if n == 0 {
		t.err = fmt.Errorf("%w: bad index entry", ErrCorrupt)
		return false
	}
	br, err := t.r.dataBlock(h)
	if err != nil {
		t.err = err
		return false
	}
	t.data = br.Iter()
	return true
}

func (t *tableIter) Valid() bool {
	return t.err == nil && t.data != nil && t.data.Valid()
}

func (t *tableIter) SeekGE(target []byte) {
	if t.err != nil {
		return
	}
	// Index keys are the last key of each block, so the first index entry
	// >= target references the block that could contain it.
	t.index.SeekGE(target)
	if !t.loadData() {
		return
	}
	t.data.SeekGE(target)
	t.skipForwardEmpty()
}

func (t *tableIter) SeekToFirst() {
	if t.err != nil {
		return
	}
	t.index.SeekToFirst()
	if !t.loadData() {
		return
	}
	t.data.SeekToFirst()
	t.skipForwardEmpty()
}

func (t *tableIter) SeekToLast() {
	if t.err != nil {
		return
	}
	t.index.SeekToLast()
	if !t.loadData() {
		return
	}
	t.data.SeekToLast()
	t.skipBackwardEmpty()
}

func (t *tableIter) Next() {
	if !t.Valid() {
		return
	}
	t.data.Next()
	t.skipForwardEmpty()
}

func (t *tableIter) Prev() {
	if !t.Valid() {
		return
	}
	t.data.Prev()
	t.skipBackwardEmpty()
}

// skipForwardEmpty advances over exhausted data blocks.
func (t *tableIter) skipForwardEmpty() {
	for t.err == nil && t.data != nil && !t.data.Valid() {
		if err := t.data.Error(); err != nil {
			t.err = err
			return
		}
		t.index.Next()
		if !t.loadData() {
			return
		}
		t.data.SeekToFirst()
	}
}

func (t *tableIter) skipBackwardEmpty() {
	for t.err == nil && t.data != nil && !t.data.Valid() {
		if err := t.data.Error(); err != nil {
			t.err = err
			return
		}
		t.index.Prev()
		if !t.loadData() {
			return
		}
		t.data.SeekToLast()
	}
}

func (t *tableIter) Key() []byte   { return t.data.Key() }
func (t *tableIter) Value() []byte { return t.data.Value() }

func (t *tableIter) Error() error {
	if t.err != nil {
		return t.err
	}
	if t.data != nil {
		if err := t.data.Error(); err != nil {
			return err
		}
	}
	return t.index.Error()
}

func (t *tableIter) Close() error { return t.Error() }
