package sstable

import (
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/block"
	"repro/internal/bloom"
	"repro/internal/cache"
	"repro/internal/checksum"
	"repro/internal/compress"
	"repro/internal/encoding"
	"repro/internal/iterator"
	"repro/internal/keys"
	"repro/internal/vfs"
)

// ReaderOptions configures table reading.
type ReaderOptions struct {
	// Cmp orders internal keys.
	Cmp keys.InternalComparer
	// Cache, when non-nil, holds decoded data blocks keyed by
	// (FileNum, block offset). Index and filter blocks are pinned in the
	// Reader itself, matching the paper's assumption that they stay
	// memory-resident.
	Cache *cache.Cache
	// FileNum namespaces cache keys and names the table in errors.
	FileNum uint64
	// VerifyChecksums controls per-read CRC validation (default true via
	// NewReaderOptions; zero value disables).
	VerifyChecksums bool
}

// Reader provides random access to one table. It is safe for concurrent use.
type Reader struct {
	opts   ReaderOptions
	f      vfs.File
	size   int64 // file length, fixed at open; bounds-checks block handles
	index  *block.Reader
	filter bloom.Filter
	// cksum is the table's checksum function, read from the footer (legacy
	// v1 footers imply CRC32C).
	cksum checksum.Kind

	// BlockReads counts data-block fetches that missed the cache; exposed
	// for the Fig 13 experiment and tests.
	blockReads atomic.Int64
	// compressedBytesRead / uncompressedBytesRead total the on-disk and
	// post-decompression sizes of every block fetched from the file; their
	// ratio is the read-side compression ratio surfaced by DB.Stats.
	compressedBytesRead   atomic.Int64
	uncompressedBytesRead atomic.Int64
}

// OpenReader reads the footer, index, and filter of a table file. The
// Reader takes ownership of f and closes it on Close.
func OpenReader(f vfs.File, opts ReaderOptions) (*Reader, error) {
	size, err := f.Size()
	if err != nil {
		return nil, err
	}
	if size < footerLenV1 {
		return nil, fmt.Errorf("%w: file of %d bytes", ErrCorrupt, size)
	}
	// Read enough tail for the largest footer; decodeFooter selects the
	// version by magic. Files between the v1 and v2 sizes are v1-only.
	tailLen := int64(footerLenV2)
	if size < tailLen {
		tailLen = footerLenV1
	}
	buf := make([]byte, tailLen)
	if _, err := f.ReadAt(buf, size-tailLen); err != nil {
		return nil, err
	}
	ftr, err := decodeFooter(buf)
	if err != nil {
		return nil, err
	}
	r := &Reader{opts: opts, f: f, size: size, cksum: ftr.checksum}
	idxData, err := r.readBlockContents(ftr.indexHandle)
	if err != nil {
		return nil, err
	}
	r.index, err = block.NewReader(opts.Cmp.Compare, idxData)
	if err != nil {
		return nil, err
	}
	if ftr.filterHandle.length > 0 {
		fl, err := r.readBlockContents(ftr.filterHandle)
		if err != nil {
			return nil, err
		}
		r.filter = bloom.Filter(fl)
	}
	return r, nil
}

// Close releases the underlying file.
func (r *Reader) Close() error { return r.f.Close() }

// MayContain consults the Bloom filter for ukey; tables written without a
// filter report true.
func (r *Reader) MayContain(ukey []byte) bool {
	if r.filter == nil {
		return true
	}
	return r.filter.MayContain(ukey)
}

// BlockReads reports how many data blocks were fetched from the file
// (i.e. cache misses) over the reader's lifetime.
func (r *Reader) BlockReads() int64 { return r.blockReads.Load() }

// IOBytes reports the total on-disk (possibly compressed) and
// post-decompression sizes of blocks fetched from the file over the
// reader's lifetime. Equal when the table stores every block raw.
func (r *Reader) IOBytes() (compressed, uncompressed int64) {
	return r.compressedBytesRead.Load(), r.uncompressedBytesRead.Load()
}

// ChecksumKind reports the table's checksum function from its footer.
func (r *Reader) ChecksumKind() checksum.Kind { return r.cksum }

// readBlockContents fetches, verifies, and decompresses a block, without
// caching. The checksum (per the table's footer kind) covers the on-disk
// payload and type byte, so it is verified before any decode touches the
// bytes; the type byte then names the codec.
func (r *Reader) readBlockContents(h blockHandle) ([]byte, error) {
	// A corrupt handle (flipped bit in an index entry or the footer) can
	// point anywhere; reject it here so a bad length surfaces as ErrCorrupt
	// rather than a huge allocation or an untyped short-read error.
	end := h.offset + h.length + blockTrailerLen
	if end < h.offset || end > uint64(r.size) {
		return nil, fmt.Errorf("%w: block handle [%d,+%d) beyond file %06d of %d bytes",
			ErrCorrupt, h.offset, h.length, r.opts.FileNum, r.size)
	}
	buf := make([]byte, h.length+blockTrailerLen)
	if _, err := r.f.ReadAt(buf, int64(h.offset)); err != nil {
		return nil, fmt.Errorf("sstable %06d: %w", r.opts.FileNum, err)
	}
	payload, trailer := buf[:h.length], buf[h.length:]
	if r.opts.VerifyChecksums {
		if checksum.Sum(r.cksum, payload, trailer[0]) != encoding.Fixed32(trailer[1:]) {
			return nil, fmt.Errorf("%w: %v mismatch in file %06d at offset %d",
				ErrCorrupt, r.cksum, r.opts.FileNum, h.offset)
		}
	}
	kind := compress.Kind(trailer[0])
	if !kind.Valid() {
		return nil, fmt.Errorf("%w: unknown block type %d in file %06d", ErrCorrupt, trailer[0], r.opts.FileNum)
	}
	contents, err := compress.Decompress(kind, payload)
	if err != nil {
		return nil, fmt.Errorf("%w: file %06d offset %d: %v", ErrCorrupt, r.opts.FileNum, h.offset, err)
	}
	r.compressedBytesRead.Add(int64(len(payload)))
	r.uncompressedBytesRead.Add(int64(len(contents)))
	return contents, nil
}

// dataBlock returns a (possibly cached) reader for the data block at h.
func (r *Reader) dataBlock(h blockHandle) (*block.Reader, error) {
	if r.opts.Cache != nil {
		k := cache.Key{FileNum: r.opts.FileNum, Offset: h.offset}
		if v, ok := r.opts.Cache.Get(k); ok {
			return v.(*block.Reader), nil
		}
	}
	contents, err := r.readBlockContents(h)
	if err != nil {
		return nil, err
	}
	r.blockReads.Add(1)
	br, err := block.NewReader(r.opts.Cmp.Compare, contents)
	if err != nil {
		return nil, err
	}
	if r.opts.Cache != nil {
		// The cache holds UNCOMPRESSED block contents (decompressing on
		// every hit would defeat the cache), so the charge is the real
		// resident footprint — the decoded size, not the on-disk handle
		// length, which may be several times smaller under compression.
		k := cache.Key{FileNum: r.opts.FileNum, Offset: h.offset}
		r.opts.Cache.Set(k, br, br.Resident())
	}
	return br, nil
}

// Get returns the value of the newest version of ukey visible at snapshot
// seq. deleted reports a tombstone; found reports whether any visible
// version exists in this table. The Bloom filter is consulted first. The
// returned value aliases the (cached) data block and must be copied if
// retained past the next read of this table.
func (r *Reader) Get(ukey []byte, seq keys.Seq) (value []byte, deleted, found bool, err error) {
	if !r.MayContain(ukey) {
		return nil, false, false, nil
	}
	value, kind, _, found, err := r.Probe(keys.MakeSearchKey(nil, ukey, seq))
	return value, found && kind == keys.KindDelete, found, err
}

// pointProbe carries the two block cursors of one point lookup; pooled so a
// steady-state probe allocates nothing beyond a possible block fetch.
type pointProbe struct {
	idx, data block.Iter
}

var probePool = sync.Pool{New: func() interface{} { return new(pointProbe) }}

// Probe is the allocation-light point-get fast path: it seeks the pinned
// index block, fetches exactly one data block (through the cache), and seeks
// that block directly — no two-level iterator is built. sk is the search key
// encoding (ukey, snapshot seq); see keys.MakeSearchKey. The Bloom filter is
// NOT consulted: callers that want filtering call MayContain first (the DB
// does, so it can count probes and negatives). entrySeq reports the sequence
// of the found entry and kind its stored kind (a keys.KindBlobRef value is
// an encoded value-log pointer the caller resolves). The returned value
// aliases the cached block; callers copy at their final return site, not
// here.
//
// A single index seek suffices because index keys are exactly the last key
// of each data block (see Writer.flushPendingIndex): the first index entry
// >= sk names the one block whose key range can contain sk, and a SeekGE
// inside it always lands on an entry (its last key is >= sk).
func (r *Reader) Probe(sk keys.InternalKey) (value []byte, kind keys.Kind, entrySeq keys.Seq, found bool, err error) {
	p := probePool.Get().(*pointProbe)
	defer probePool.Put(p)
	p.idx.Init(r.index)
	p.idx.SeekGE(sk)
	if !p.idx.Valid() {
		return nil, 0, 0, false, p.idx.Error()
	}
	h, n := decodeBlockHandle(p.idx.Value())
	if n == 0 {
		return nil, 0, 0, false, fmt.Errorf("%w: bad index entry", ErrCorrupt)
	}
	br, err := r.dataBlock(h)
	if err != nil {
		return nil, 0, 0, false, err
	}
	p.data.Init(br)
	p.data.SeekGE(sk)
	if !p.data.Valid() {
		return nil, 0, 0, false, p.data.Error()
	}
	ik := keys.InternalKey(p.data.Key())
	if r.opts.Cmp.User.Compare(ik.UserKey(), sk.UserKey()) != 0 {
		return nil, 0, 0, false, nil
	}
	k := ik.Kind()
	if k == keys.KindDelete {
		return nil, k, ik.Seq(), true, nil
	}
	return p.data.Value(), k, ik.Seq(), true, nil
}

var tableIterPool = sync.Pool{New: func() interface{} { return new(tableIter) }}

// NewIterator returns a two-level iterator over the table. Iterators are
// pooled: Close returns the iterator for reuse, so it must not be used after
// Close.
func (r *Reader) NewIterator() iterator.Iterator {
	t := tableIterPool.Get().(*tableIter)
	t.r = r
	t.index.Init(r.index)
	t.dataOK = false
	t.err = nil
	t.closed = false
	return t
}

// tableIter walks the index block and lazily opens data blocks. The block
// cursors are held by value so a pooled tableIter re-seeks without
// allocating.
type tableIter struct {
	r      *Reader
	index  block.Iter
	data   block.Iter
	dataOK bool // data is bound to the block of the current index entry
	err    error
	closed bool
}

// loadData opens the data block referenced by the current index entry.
func (t *tableIter) loadData() bool {
	t.dataOK = false
	if !t.index.Valid() {
		return false
	}
	h, n := decodeBlockHandle(t.index.Value())
	if n == 0 {
		t.err = fmt.Errorf("%w: bad index entry", ErrCorrupt)
		return false
	}
	br, err := t.r.dataBlock(h)
	if err != nil {
		t.err = err
		return false
	}
	t.data.Init(br)
	t.dataOK = true
	return true
}

func (t *tableIter) Valid() bool {
	return t.err == nil && t.dataOK && t.data.Valid()
}

func (t *tableIter) SeekGE(target []byte) {
	if t.err != nil {
		return
	}
	// Index keys are the last key of each block, so the first index entry
	// >= target references the block that could contain it.
	t.index.SeekGE(target)
	if !t.loadData() {
		return
	}
	t.data.SeekGE(target)
	t.skipForwardEmpty()
}

func (t *tableIter) SeekToFirst() {
	if t.err != nil {
		return
	}
	t.index.SeekToFirst()
	if !t.loadData() {
		return
	}
	t.data.SeekToFirst()
	t.skipForwardEmpty()
}

func (t *tableIter) SeekToLast() {
	if t.err != nil {
		return
	}
	t.index.SeekToLast()
	if !t.loadData() {
		return
	}
	t.data.SeekToLast()
	t.skipBackwardEmpty()
}

func (t *tableIter) Next() {
	if !t.Valid() {
		return
	}
	t.data.Next()
	t.skipForwardEmpty()
}

func (t *tableIter) Prev() {
	if !t.Valid() {
		return
	}
	t.data.Prev()
	t.skipBackwardEmpty()
}

// skipForwardEmpty advances over exhausted data blocks.
func (t *tableIter) skipForwardEmpty() {
	for t.err == nil && t.dataOK && !t.data.Valid() {
		if err := t.data.Error(); err != nil {
			t.err = err
			return
		}
		t.index.Next()
		if !t.loadData() {
			return
		}
		t.data.SeekToFirst()
	}
}

func (t *tableIter) skipBackwardEmpty() {
	for t.err == nil && t.dataOK && !t.data.Valid() {
		if err := t.data.Error(); err != nil {
			t.err = err
			return
		}
		t.index.Prev()
		if !t.loadData() {
			return
		}
		t.data.SeekToLast()
	}
}

func (t *tableIter) Key() []byte   { return t.data.Key() }
func (t *tableIter) Value() []byte { return t.data.Value() }

func (t *tableIter) Error() error {
	if t.err != nil {
		return t.err
	}
	if t.dataOK {
		if err := t.data.Error(); err != nil {
			return err
		}
	}
	return t.index.Error()
}

// Close returns the iterator to the pool. Double-Close is tolerated (the
// second call is a no-op reporting the sticky error), but any other use
// after Close is invalid.
func (t *tableIter) Close() error {
	err := t.Error()
	if !t.closed {
		t.closed = true
		t.r = nil
		t.dataOK = false
		tableIterPool.Put(t)
	}
	return err
}
