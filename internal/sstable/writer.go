package sstable

import (
	"fmt"
	"hash/crc32"

	"repro/internal/block"
	"repro/internal/bloom"
	"repro/internal/encoding"
	"repro/internal/keys"
	"repro/internal/vfs"
)

// WriterOptions configures table construction.
type WriterOptions struct {
	// Cmp orders internal keys.
	Cmp keys.InternalComparer
	// BlockSize is the uncompressed data block size threshold (default 4 KiB).
	BlockSize int
	// RestartInterval for data blocks (default block.DefaultInterval).
	RestartInterval int
	// BloomBitsPerKey sizes the filter; 0 disables the filter block.
	BloomBitsPerKey int
}

func (o WriterOptions) withDefaults() WriterOptions {
	if o.BlockSize <= 0 {
		o.BlockSize = 4 << 10
	}
	if o.RestartInterval <= 0 {
		o.RestartInterval = block.DefaultInterval
	}
	return o
}

// Props are the table's properties as known after Finish.
type Props struct {
	Entries     int
	FileSize    int64
	Smallest    keys.InternalKey
	Largest     keys.InternalKey
	DataBlocks  int
	FilterBytes int
	RawKeyBytes int64
	RawValBytes int64
}

// Writer builds one table. Add keys in strictly increasing internal-key
// order, then call Finish (or Abandon).
type Writer struct {
	opts   WriterOptions
	f      vfs.File
	offset uint64

	data  block.Writer
	index block.Writer
	// pendingIndex defers the index entry for a finished data block until
	// the next key is known, so a shortened separator can be used.
	pendingHandle blockHandle
	pendingKey    []byte
	havePending   bool

	userKeys [][]byte // for the filter block

	props Props
	err   error
}

// NewWriter starts writing a table to f. The writer does not close f; the
// caller owns the handle (and should Sync before Close for durability).
func NewWriter(f vfs.File, opts WriterOptions) *Writer {
	opts = opts.withDefaults()
	return &Writer{
		opts:  opts,
		f:     f,
		data:  block.Writer{Interval: opts.RestartInterval},
		index: block.Writer{Interval: 1},
	}
}

// Add appends an entry. ikey must be strictly greater than all previous.
func (w *Writer) Add(ikey keys.InternalKey, value []byte) error {
	if w.err != nil {
		return w.err
	}
	if w.props.Entries > 0 && w.opts.Cmp.Compare(w.props.Largest, ikey) >= 0 {
		w.err = fmt.Errorf("sstable: keys out of order: %s then %s", w.props.Largest, ikey)
		return w.err
	}
	if w.havePending {
		w.flushPendingIndex(ikey)
	}
	if w.props.Entries == 0 {
		w.props.Smallest = ikey.Clone()
	}
	w.props.Largest = append(w.props.Largest[:0], ikey...)
	w.props.Entries++
	w.props.RawKeyBytes += int64(len(ikey))
	w.props.RawValBytes += int64(len(value))
	if w.opts.BloomBitsPerKey > 0 {
		w.userKeys = append(w.userKeys, append([]byte(nil), ikey.UserKey()...))
	}
	w.data.Add(ikey, value)
	if w.data.EstimatedSize() >= w.opts.BlockSize {
		w.finishDataBlock()
	}
	return w.err
}

// flushPendingIndex emits the deferred index entry, shortening the separator
// toward nextKey when possible (bytewise comparers only benefit, but the
// plain "use the last key" fallback is always correct).
func (w *Writer) flushPendingIndex(nextKey []byte) {
	sep := w.pendingKey
	w.index.Add(sep, w.pendingHandle.encode(nil))
	w.havePending = false
	_ = nextKey
}

func (w *Writer) finishDataBlock() {
	if w.data.Empty() || w.err != nil {
		return
	}
	h, err := w.writeBlock(w.data.Finish())
	if err != nil {
		w.err = err
		return
	}
	w.data.Reset()
	w.props.DataBlocks++
	w.pendingHandle = h
	w.pendingKey = append(w.pendingKey[:0], w.props.Largest...)
	w.havePending = true
}

// writeBlock writes contents + trailer, returning its handle.
func (w *Writer) writeBlock(contents []byte) (blockHandle, error) {
	h := blockHandle{offset: w.offset, length: uint64(len(contents))}
	trailer := [blockTrailerLen]byte{typeRaw}
	crc := crc32.Update(0, crcTable, contents)
	crc = crc32.Update(crc, crcTable, trailer[:1])
	encoding.PutFixed32(trailer[1:1], crc)
	if _, err := w.f.Write(contents); err != nil {
		return blockHandle{}, err
	}
	if _, err := w.f.Write(trailer[:]); err != nil {
		return blockHandle{}, err
	}
	w.offset += uint64(len(contents)) + blockTrailerLen
	return h, nil
}

// EstimatedSize reports bytes written so far plus the buffered block, used
// by compaction to cut output files at the target size.
func (w *Writer) EstimatedSize() int64 {
	return int64(w.offset) + int64(w.data.EstimatedSize())
}

// Entries reports the number of entries added so far.
func (w *Writer) Entries() int { return w.props.Entries }

// Finish flushes everything and writes filter, index, and footer. It
// returns the table's properties. The file is synced.
func (w *Writer) Finish() (Props, error) {
	if w.err != nil {
		return Props{}, w.err
	}
	w.finishDataBlock()
	if w.havePending {
		w.flushPendingIndex(nil)
	}
	if w.err != nil {
		return Props{}, w.err
	}

	var ftr footer
	if w.opts.BloomBitsPerKey > 0 {
		filter := bloom.New(w.userKeys, w.opts.BloomBitsPerKey)
		w.props.FilterBytes = len(filter)
		h, err := w.writeBlock(filter)
		if err != nil {
			w.err = err
			return Props{}, err
		}
		ftr.filterHandle = h
	}

	ih, err := w.writeBlock(w.index.Finish())
	if err != nil {
		w.err = err
		return Props{}, err
	}
	ftr.indexHandle = ih

	if _, err := w.f.Write(ftr.encode()); err != nil {
		w.err = err
		return Props{}, err
	}
	w.offset += footerLen
	if err := w.f.Sync(); err != nil {
		w.err = err
		return Props{}, err
	}
	w.props.FileSize = int64(w.offset)
	return w.props, nil
}
