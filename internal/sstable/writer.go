package sstable

import (
	"fmt"

	"repro/internal/block"
	"repro/internal/bloom"
	"repro/internal/checksum"
	"repro/internal/compress"
	"repro/internal/encoding"
	"repro/internal/keys"
	"repro/internal/vfs"
)

// WriterOptions configures table construction.
type WriterOptions struct {
	// Cmp orders internal keys.
	Cmp keys.InternalComparer
	// BlockSize is the uncompressed data block size threshold (default 4 KiB).
	BlockSize int
	// RestartInterval for data blocks (default block.DefaultInterval).
	RestartInterval int
	// BloomBitsPerKey sizes the filter; 0 disables the filter block.
	BloomBitsPerKey int
	// Compression selects the per-block codec (default compress.None).
	// Individual blocks that do not compress well enough are stored raw
	// regardless; the block trailer's type byte records the outcome.
	Compression compress.Kind
	// Checksum selects the block checksum function for the whole table
	// (default checksum.CRC32C); recorded in the footer.
	Checksum checksum.Kind

	// ChargeWrite, when non-nil, is invoked with the on-disk byte count of
	// each block (payload + trailer) immediately before it is written. The
	// engine points this at its background-I/O rate limiter, so table
	// builds pace themselves block by block instead of bursting a whole
	// file. ChargeWrite may sleep; it must not be set on writers built
	// while holding locks foreground operations need.
	ChargeWrite func(n int)

	// legacyV1Footer emits the pre-compression v1 footer (tests only: it
	// reproduces seed-era tables to pin backward compatibility). Requires
	// Compression == None and Checksum == CRC32C.
	legacyV1Footer bool
}

func (o WriterOptions) withDefaults() WriterOptions {
	if o.BlockSize <= 0 {
		o.BlockSize = 4 << 10
	}
	if o.RestartInterval <= 0 {
		o.RestartInterval = block.DefaultInterval
	}
	return o
}

// Props are the table's properties as known after Finish.
type Props struct {
	Entries     int
	FileSize    int64
	Smallest    keys.InternalKey
	Largest     keys.InternalKey
	DataBlocks  int
	FilterBytes int
	RawKeyBytes int64
	RawValBytes int64
	// UncompressedBytes and CompressedBytes are the total block payload
	// bytes before and after per-block compression (equal when every block
	// stored raw); their ratio is the table's compression ratio.
	UncompressedBytes int64
	CompressedBytes   int64
	// CompressedBlocks counts blocks that actually stored compressed (the
	// remainder hit the incompressible bailout or had Compression == None).
	CompressedBlocks int
	// BlobRefs counts value-log pointer entries (keys.KindBlobRef) in the
	// table; BlobRefBytes is the total referenced record size — the bytes
	// this table keeps live in the value log. The pointer's trailing fixed32
	// is the record length (see vlog.Pointer), decoded here without a vlog
	// dependency.
	BlobRefs     int
	BlobRefBytes int64
}

// Writer builds one table. Add keys in strictly increasing internal-key
// order, then call Finish (or Abandon).
type Writer struct {
	opts   WriterOptions
	f      vfs.File
	offset uint64

	data  block.Writer
	index block.Writer
	// pendingIndex defers the index entry for a finished data block until
	// the next key is known, so a shortened separator can be used.
	pendingHandle blockHandle
	pendingKey    []byte
	havePending   bool

	// compressBuf is the reusable destination for per-block compression.
	compressBuf []byte

	userKeys [][]byte // for the filter block

	props Props
	err   error
}

// NewWriter starts writing a table to f. The writer does not close f; the
// caller owns the handle (and should Sync before Close for durability).
func NewWriter(f vfs.File, opts WriterOptions) *Writer {
	opts = opts.withDefaults()
	w := &Writer{
		opts:  opts,
		f:     f,
		data:  block.Writer{Interval: opts.RestartInterval},
		index: block.Writer{Interval: 1},
	}
	// Reject unknown format knobs before any block hits the disk; the
	// sticky error surfaces on the first Add or Finish.
	if !opts.Compression.Valid() {
		w.err = fmt.Errorf("sstable: unknown compression kind %d", uint8(opts.Compression))
	} else if !opts.Checksum.Valid() {
		w.err = fmt.Errorf("sstable: unknown checksum kind %d", uint8(opts.Checksum))
	}
	return w
}

// Add appends an entry. ikey must be strictly greater than all previous.
func (w *Writer) Add(ikey keys.InternalKey, value []byte) error {
	if w.err != nil {
		return w.err
	}
	if w.props.Entries > 0 && w.opts.Cmp.Compare(w.props.Largest, ikey) >= 0 {
		w.err = fmt.Errorf("sstable: keys out of order: %s then %s", w.props.Largest, ikey)
		return w.err
	}
	if w.havePending {
		w.flushPendingIndex(ikey)
	}
	if w.props.Entries == 0 {
		w.props.Smallest = ikey.Clone()
	}
	w.props.Largest = append(w.props.Largest[:0], ikey...)
	w.props.Entries++
	w.props.RawKeyBytes += int64(len(ikey))
	w.props.RawValBytes += int64(len(value))
	if ikey.Kind() == keys.KindBlobRef && len(value) == 20 {
		w.props.BlobRefs++
		w.props.BlobRefBytes += int64(encoding.Fixed32(value[16:]))
	}
	if w.opts.BloomBitsPerKey > 0 {
		w.userKeys = append(w.userKeys, append([]byte(nil), ikey.UserKey()...))
	}
	w.data.Add(ikey, value)
	if w.data.EstimatedSize() >= w.opts.BlockSize {
		w.finishDataBlock()
	}
	return w.err
}

// flushPendingIndex emits the deferred index entry, shortening the separator
// toward nextKey when possible (bytewise comparers only benefit, but the
// plain "use the last key" fallback is always correct).
func (w *Writer) flushPendingIndex(nextKey []byte) {
	sep := w.pendingKey
	w.index.Add(sep, w.pendingHandle.encode(nil))
	w.havePending = false
	_ = nextKey
}

func (w *Writer) finishDataBlock() {
	if w.data.Empty() || w.err != nil {
		return
	}
	h, err := w.writeBlock(w.data.Finish())
	if err != nil {
		w.err = err
		return
	}
	w.data.Reset()
	w.props.DataBlocks++
	w.pendingHandle = h
	w.pendingKey = append(w.pendingKey[:0], w.props.Largest...)
	w.havePending = true
}

// writeBlock compresses contents per the table's codec (with per-block
// raw fallback), writes payload + trailer, and returns the payload's
// handle. The trailer checksum covers the on-disk payload and the type
// byte, computed with the table's checksum kind.
func (w *Writer) writeBlock(contents []byte) (blockHandle, error) {
	payload, kind := compress.Compress(w.opts.Compression, w.compressBuf, contents)
	if kind != compress.None {
		w.compressBuf = payload[:0] // keep the grown buffer for the next block
		w.props.CompressedBlocks++
	}
	w.props.UncompressedBytes += int64(len(contents))
	w.props.CompressedBytes += int64(len(payload))

	h := blockHandle{offset: w.offset, length: uint64(len(payload))}
	trailer := [blockTrailerLen]byte{byte(kind)}
	encoding.PutFixed32(trailer[1:1], checksum.Sum(w.opts.Checksum, payload, byte(kind)))
	if w.opts.ChargeWrite != nil {
		w.opts.ChargeWrite(len(payload) + blockTrailerLen)
	}
	if _, err := w.f.Write(payload); err != nil {
		return blockHandle{}, err
	}
	if _, err := w.f.Write(trailer[:]); err != nil {
		return blockHandle{}, err
	}
	w.offset += uint64(len(payload)) + blockTrailerLen
	return h, nil
}

// EstimatedSize reports bytes written so far plus the buffered block, used
// by compaction to cut output files at the target size.
func (w *Writer) EstimatedSize() int64 {
	return int64(w.offset) + int64(w.data.EstimatedSize())
}

// Entries reports the number of entries added so far.
func (w *Writer) Entries() int { return w.props.Entries }

// Finish flushes everything and writes filter, index, and footer. It
// returns the table's properties. The file is synced.
func (w *Writer) Finish() (Props, error) {
	if w.err != nil {
		return Props{}, w.err
	}
	w.finishDataBlock()
	if w.havePending {
		w.flushPendingIndex(nil)
	}
	if w.err != nil {
		return Props{}, w.err
	}

	ftr := footer{checksum: w.opts.Checksum}
	if w.opts.BloomBitsPerKey > 0 {
		filter := bloom.New(w.userKeys, w.opts.BloomBitsPerKey)
		w.props.FilterBytes = len(filter)
		h, err := w.writeBlock(filter)
		if err != nil {
			w.err = err
			return Props{}, err
		}
		ftr.filterHandle = h
	}

	ih, err := w.writeBlock(w.index.Finish())
	if err != nil {
		w.err = err
		return Props{}, err
	}
	ftr.indexHandle = ih

	ftrBytes := ftr.encode()
	if w.opts.legacyV1Footer {
		if w.opts.Compression != compress.None || w.opts.Checksum != checksum.CRC32C {
			w.err = fmt.Errorf("sstable: legacy v1 footer requires raw blocks and CRC32C")
			return Props{}, w.err
		}
		ftrBytes = ftr.encodeV1()
	}
	if _, err := w.f.Write(ftrBytes); err != nil {
		w.err = err
		return Props{}, err
	}
	w.offset += uint64(len(ftrBytes))
	if err := w.f.Sync(); err != nil {
		w.err = err
		return Props{}, err
	}
	w.props.FileSize = int64(w.offset)
	return w.props, nil
}
