package sstable

import (
	"bytes"
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"repro/internal/cache"
	"repro/internal/keys"
	"repro/internal/vfs"
)

var icmp = keys.InternalComparer{User: keys.BytewiseComparer{}}

type kv struct {
	u   string
	seq keys.Seq
	val string
}

func buildTable(t testing.TB, fs vfs.FS, name string, wopts WriterOptions, kvs []kv) Props {
	t.Helper()
	f, err := fs.Create(name)
	if err != nil {
		t.Fatal(err)
	}
	w := NewWriter(f, wopts)
	for _, e := range kvs {
		ik := keys.MakeInternalKey(nil, []byte(e.u), e.seq, keys.KindSet)
		if err := w.Add(ik, []byte(e.val)); err != nil {
			t.Fatalf("Add(%q): %v", e.u, err)
		}
	}
	props, err := w.Finish()
	if err != nil {
		t.Fatalf("Finish: %v", err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	return props
}

func openTable(t testing.TB, fs vfs.FS, name string, ropts ReaderOptions) *Reader {
	t.Helper()
	f, err := fs.Open(name)
	if err != nil {
		t.Fatal(err)
	}
	r, err := OpenReader(f, ropts)
	if err != nil {
		t.Fatalf("OpenReader: %v", err)
	}
	return r
}

func sortedKVs(n int) []kv {
	kvs := make([]kv, n)
	for i := range kvs {
		kvs[i] = kv{u: fmt.Sprintf("key-%06d", i), seq: 1, val: fmt.Sprintf("value-%06d", i)}
	}
	return kvs
}

func defaultWOpts() WriterOptions {
	return WriterOptions{Cmp: icmp, BlockSize: 256, BloomBitsPerKey: 10}
}

func defaultROpts() ReaderOptions {
	return ReaderOptions{Cmp: icmp, VerifyChecksums: true}
}

func TestWriteReadRoundTrip(t *testing.T) {
	fs := vfs.Mem()
	kvs := sortedKVs(1000)
	props := buildTable(t, fs, "/t.sst", defaultWOpts(), kvs)
	if props.Entries != 1000 {
		t.Errorf("Entries = %d", props.Entries)
	}
	if string(keys.InternalKey(props.Smallest).UserKey()) != "key-000000" ||
		string(keys.InternalKey(props.Largest).UserKey()) != "key-000999" {
		t.Errorf("bounds = %s..%s", props.Smallest, props.Largest)
	}
	if props.DataBlocks < 2 {
		t.Errorf("DataBlocks = %d, expected multiple with 256B blocks", props.DataBlocks)
	}

	r := openTable(t, fs, "/t.sst", defaultROpts())
	defer r.Close()
	it := r.NewIterator()
	defer it.Close()
	i := 0
	for it.SeekToFirst(); it.Valid(); it.Next() {
		want := kvs[i]
		if string(keys.InternalKey(it.Key()).UserKey()) != want.u || string(it.Value()) != want.val {
			t.Fatalf("entry %d: %s=%q", i, keys.InternalKey(it.Key()), it.Value())
		}
		i++
	}
	if err := it.Error(); err != nil {
		t.Fatal(err)
	}
	if i != 1000 {
		t.Errorf("iterated %d entries", i)
	}
}

func TestGetFoundAndAbsent(t *testing.T) {
	fs := vfs.Mem()
	buildTable(t, fs, "/t.sst", defaultWOpts(), sortedKVs(500))
	r := openTable(t, fs, "/t.sst", defaultROpts())
	defer r.Close()

	v, del, found, err := r.Get([]byte("key-000123"), keys.MaxSeq)
	if err != nil || !found || del || string(v) != "value-000123" {
		t.Errorf("Get = %q %v %v %v", v, del, found, err)
	}
	_, _, found, err = r.Get([]byte("key-9999999"), keys.MaxSeq)
	if err != nil || found {
		t.Errorf("absent key found=%v err=%v", found, err)
	}
	// Key between two present keys.
	_, _, found, _ = r.Get([]byte("key-000123x"), keys.MaxSeq)
	if found {
		t.Error("between-key reported found")
	}
}

func TestGetSnapshotAndTombstone(t *testing.T) {
	fs := vfs.Mem()
	f, _ := fs.Create("/t.sst")
	w := NewWriter(f, defaultWOpts())
	// Internal order: seq desc within a user key.
	w.Add(keys.MakeInternalKey(nil, []byte("k"), 9, keys.KindDelete), nil)
	w.Add(keys.MakeInternalKey(nil, []byte("k"), 5, keys.KindSet), []byte("v5"))
	w.Add(keys.MakeInternalKey(nil, []byte("k"), 2, keys.KindSet), []byte("v2"))
	if _, err := w.Finish(); err != nil {
		t.Fatal(err)
	}
	_ = f.Close()

	r := openTable(t, fs, "/t.sst", defaultROpts())
	defer r.Close()
	_, del, found, _ := r.Get([]byte("k"), keys.MaxSeq)
	if !found || !del {
		t.Errorf("latest: del=%v found=%v, want tombstone", del, found)
	}
	v, del, found, _ := r.Get([]byte("k"), 6)
	if !found || del || string(v) != "v5" {
		t.Errorf("Get@6 = %q %v %v", v, del, found)
	}
	v, _, _, _ = r.Get([]byte("k"), 3)
	if string(v) != "v2" {
		t.Errorf("Get@3 = %q", v)
	}
	_, _, found, _ = r.Get([]byte("k"), 1)
	if found {
		t.Error("Get@1 found a later write")
	}
}

func TestOutOfOrderAddRejected(t *testing.T) {
	fs := vfs.Mem()
	f, _ := fs.Create("/t.sst")
	w := NewWriter(f, defaultWOpts())
	w.Add(keys.MakeInternalKey(nil, []byte("b"), 1, keys.KindSet), nil)
	if err := w.Add(keys.MakeInternalKey(nil, []byte("a"), 1, keys.KindSet), nil); err == nil {
		t.Fatal("out-of-order Add accepted")
	}
	if _, err := w.Finish(); err == nil {
		t.Fatal("Finish succeeded after ordering error")
	}
}

func TestSeekGEAcrossBlocks(t *testing.T) {
	fs := vfs.Mem()
	kvs := sortedKVs(300)
	buildTable(t, fs, "/t.sst", defaultWOpts(), kvs)
	r := openTable(t, fs, "/t.sst", defaultROpts())
	defer r.Close()
	it := r.NewIterator()
	defer it.Close()

	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		i := rng.Intn(310)
		target := fmt.Sprintf("key-%06d", i)
		it.SeekGE(keys.MakeSearchKey(nil, []byte(target), keys.MaxSeq))
		if i < 300 {
			if !it.Valid() || string(keys.InternalKey(it.Key()).UserKey()) != target {
				t.Fatalf("SeekGE(%s) landed on %v", target, it.Valid())
			}
		} else if it.Valid() {
			t.Fatalf("SeekGE(%s) should exhaust", target)
		}
	}
}

func TestReverseIteration(t *testing.T) {
	fs := vfs.Mem()
	kvs := sortedKVs(257)
	buildTable(t, fs, "/t.sst", defaultWOpts(), kvs)
	r := openTable(t, fs, "/t.sst", defaultROpts())
	defer r.Close()
	it := r.NewIterator()
	defer it.Close()
	i := 256
	for it.SeekToLast(); it.Valid(); it.Prev() {
		want := fmt.Sprintf("key-%06d", i)
		if string(keys.InternalKey(it.Key()).UserKey()) != want {
			t.Fatalf("reverse at %d: got %q", i, keys.InternalKey(it.Key()).UserKey())
		}
		i--
	}
	if i != -1 {
		t.Errorf("reverse stopped at %d", i)
	}
}

func TestBloomFilterSkipsAbsentKeys(t *testing.T) {
	fs := vfs.Mem()
	buildTable(t, fs, "/t.sst", defaultWOpts(), sortedKVs(1000))
	r := openTable(t, fs, "/t.sst", defaultROpts())
	defer r.Close()

	misses := 0
	for i := 0; i < 1000; i++ {
		if r.MayContain([]byte(fmt.Sprintf("absent-%06d", i))) {
			misses++
		}
	}
	if misses > 30 {
		t.Errorf("bloom passed %d/1000 absent keys", misses)
	}
	before := r.BlockReads()
	for i := 0; i < 100; i++ {
		r.Get([]byte(fmt.Sprintf("nothere-%06d", i)), keys.MaxSeq)
	}
	if got := r.BlockReads() - before; got > 10 {
		t.Errorf("%d block reads for 100 absent-key Gets; filter not consulted", got)
	}
}

func TestNoFilterTable(t *testing.T) {
	fs := vfs.Mem()
	w := defaultWOpts()
	w.BloomBitsPerKey = 0
	buildTable(t, fs, "/t.sst", w, sortedKVs(10))
	r := openTable(t, fs, "/t.sst", defaultROpts())
	defer r.Close()
	if !r.MayContain([]byte("anything")) {
		t.Error("filterless table must report MayContain true")
	}
	v, _, found, err := r.Get([]byte("key-000003"), keys.MaxSeq)
	if err != nil || !found || string(v) != "value-000003" {
		t.Errorf("Get = %q %v %v", v, found, err)
	}
}

func TestBlockCacheReducesReads(t *testing.T) {
	fs := vfs.Mem()
	buildTable(t, fs, "/t.sst", defaultWOpts(), sortedKVs(500))
	c := cache.New(1 << 20)
	ropts := defaultROpts()
	ropts.Cache = c
	ropts.FileNum = 42
	r := openTable(t, fs, "/t.sst", ropts)
	defer r.Close()

	for pass := 0; pass < 2; pass++ {
		it := r.NewIterator()
		for it.SeekToFirst(); it.Valid(); it.Next() {
		}
		it.Close()
	}
	firstPass := r.BlockReads()
	if firstPass == 0 {
		t.Fatal("no block reads at all")
	}
	// Second pass should have been fully cached.
	if hits, _ := c.Stats(); hits == 0 {
		t.Error("no cache hits on second pass")
	}
	it := r.NewIterator()
	it.SeekToFirst()
	it.Close()
	if r.BlockReads() != firstPass {
		t.Errorf("cached re-read still fetched blocks: %d -> %d", firstPass, r.BlockReads())
	}
}

func TestChecksumCorruptionDetected(t *testing.T) {
	fs := vfs.Mem()
	buildTable(t, fs, "/t.sst", defaultWOpts(), sortedKVs(100))

	// Flip a byte in the middle of the file.
	f, _ := fs.Open("/t.sst")
	size, _ := f.Size()
	raw := make([]byte, size)
	f.ReadAt(raw, 0)
	_ = f.Close()
	raw[size/3] ^= 0xff
	out, _ := fs.Create("/t.sst")
	out.Write(raw)
	_ = out.Close()

	f2, _ := fs.Open("/t.sst")
	r, err := OpenReader(f2, defaultROpts())
	if err != nil {
		return // corruption hit the index/filter: detected at open
	}
	it := r.NewIterator()
	for it.SeekToFirst(); it.Valid(); it.Next() {
	}
	if it.Error() == nil {
		t.Error("corruption not detected during scan")
	}
	it.Close()
	_ = r.Close()
}

func TestOpenRejectsTruncatedFile(t *testing.T) {
	fs := vfs.Mem()
	f, _ := fs.Create("/t.sst")
	f.Write([]byte("not a table"))
	_ = f.Close()
	rf, _ := fs.Open("/t.sst")
	if _, err := OpenReader(rf, defaultROpts()); err == nil {
		t.Error("short file accepted")
	}
}

func TestEmptyTable(t *testing.T) {
	fs := vfs.Mem()
	props := buildTable(t, fs, "/t.sst", defaultWOpts(), nil)
	if props.Entries != 0 {
		t.Errorf("Entries = %d", props.Entries)
	}
	r := openTable(t, fs, "/t.sst", defaultROpts())
	defer r.Close()
	it := r.NewIterator()
	it.SeekToFirst()
	if it.Valid() {
		t.Error("empty table iterator valid")
	}
	it.Close()
}

func TestLargeValues(t *testing.T) {
	fs := vfs.Mem()
	big := bytes.Repeat([]byte{0xab}, 64<<10)
	f, _ := fs.Create("/t.sst")
	w := NewWriter(f, defaultWOpts())
	w.Add(keys.MakeInternalKey(nil, []byte("big"), 1, keys.KindSet), big)
	if _, err := w.Finish(); err != nil {
		t.Fatal(err)
	}
	_ = f.Close()
	r := openTable(t, fs, "/t.sst", defaultROpts())
	defer r.Close()
	v, _, found, err := r.Get([]byte("big"), keys.MaxSeq)
	if err != nil || !found || !bytes.Equal(v, big) {
		t.Errorf("large value corrupted: len=%d found=%v err=%v", len(v), found, err)
	}
}

// Round-trip with randomized data against a sorted reference.
func TestRandomizedRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	ref := map[string]string{}
	for i := 0; i < 2000; i++ {
		ref[fmt.Sprintf("k%08d", rng.Intn(1<<30))] = fmt.Sprintf("v%d", i)
	}
	var sorted []string
	for k := range ref {
		sorted = append(sorted, k)
	}
	sort.Strings(sorted)
	kvs := make([]kv, len(sorted))
	for i, k := range sorted {
		kvs[i] = kv{u: k, seq: 1, val: ref[k]}
	}
	fs := vfs.Mem()
	buildTable(t, fs, "/t.sst", defaultWOpts(), kvs)
	r := openTable(t, fs, "/t.sst", defaultROpts())
	defer r.Close()
	for k, v := range ref {
		got, _, found, err := r.Get([]byte(k), keys.MaxSeq)
		if err != nil || !found || string(got) != v {
			t.Fatalf("Get(%q) = %q %v %v", k, got, found, err)
		}
	}
}

func BenchmarkTableWrite(b *testing.B) {
	fs := vfs.Mem()
	val := bytes.Repeat([]byte{'v'}, 1024)
	b.ResetTimer()
	f, _ := fs.Create("/bench.sst")
	w := NewWriter(f, WriterOptions{Cmp: icmp, BloomBitsPerKey: 10})
	for i := 0; i < b.N; i++ {
		w.Add(keys.MakeInternalKey(nil, []byte(fmt.Sprintf("key-%012d", i)), keys.Seq(i+1), keys.KindSet), val)
	}
	_, _ = w.Finish()
	_ = f.Close()
}

func BenchmarkTableGet(b *testing.B) {
	fs := vfs.Mem()
	kvs := sortedKVs(10000)
	buildTable(b, fs, "/bench.sst", WriterOptions{Cmp: icmp, BloomBitsPerKey: 10}, kvs)
	c := cache.New(32 << 20)
	r := openTable(b, fs, "/bench.sst", ReaderOptions{Cmp: icmp, Cache: c, VerifyChecksums: true})
	defer r.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Get([]byte(fmt.Sprintf("key-%06d", i%10000)), keys.MaxSeq)
	}
}
