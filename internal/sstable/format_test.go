package sstable

import (
	"errors"
	"fmt"
	"strings"
	"testing"

	"repro/internal/cache"
	"repro/internal/checksum"
	"repro/internal/compress"
	"repro/internal/keys"
	"repro/internal/vfs"
)

// compressibleKVs returns entries whose values repeat enough to engage
// any real codec (the incompressible bailout must NOT fire).
func compressibleKVs(n int) []kv {
	kvs := make([]kv, n)
	for i := range kvs {
		kvs[i] = kv{
			u:   fmt.Sprintf("key-%06d", i),
			seq: 1,
			val: strings.Repeat(fmt.Sprintf("payload-%03d ", i%7), 8),
		}
	}
	return kvs
}

// formatCombos is the full (compression, checksum) matrix plus the legacy
// v1 footer — every on-disk shape a reader can meet.
func formatCombos() []WriterOptions {
	var combos []WriterOptions
	for _, comp := range []compress.Kind{compress.None, compress.Flate, compress.LZ4} {
		for _, ck := range []checksum.Kind{checksum.CRC32C, checksum.XXH3} {
			o := defaultWOpts()
			o.Compression = comp
			o.Checksum = ck
			combos = append(combos, o)
		}
	}
	legacy := defaultWOpts()
	legacy.legacyV1Footer = true
	combos = append(combos, legacy)
	return combos
}

func comboName(o WriterOptions) string {
	if o.legacyV1Footer {
		return "legacy-v1"
	}
	return o.Compression.String() + "-" + o.Checksum.String()
}

// TestFormatMatrix writes a table with every (compression, checksum)
// combination — including the legacy raw/CRC32C v1 footer — and reads each
// back fully: iteration order, point gets, and the footer's checksum kind.
func TestFormatMatrix(t *testing.T) {
	kvs := compressibleKVs(800)
	for _, wopts := range formatCombos() {
		t.Run(comboName(wopts), func(t *testing.T) {
			fs := vfs.Mem()
			props := buildTable(t, fs, "/t.sst", wopts, kvs)
			if wopts.Compression != compress.None && props.CompressedBytes >= props.UncompressedBytes {
				t.Errorf("compressible input did not shrink: %d on disk for %d raw",
					props.CompressedBytes, props.UncompressedBytes)
			}
			if wopts.Compression == compress.None && props.CompressedBytes != props.UncompressedBytes {
				t.Errorf("raw table charged %d on disk for %d raw", props.CompressedBytes, props.UncompressedBytes)
			}

			r := openTable(t, fs, "/t.sst", defaultROpts())
			defer r.Close()
			wantKind := wopts.Checksum
			if got := r.ChecksumKind(); got != wantKind {
				t.Errorf("footer checksum kind = %v, want %v", got, wantKind)
			}
			it := r.NewIterator()
			i := 0
			for it.SeekToFirst(); it.Valid(); it.Next() {
				want := kvs[i]
				if string(keys.InternalKey(it.Key()).UserKey()) != want.u || string(it.Value()) != want.val {
					t.Fatalf("entry %d mismatch", i)
				}
				i++
			}
			if err := it.Close(); err != nil {
				t.Fatal(err)
			}
			if i != len(kvs) {
				t.Fatalf("iterated %d of %d entries", i, len(kvs))
			}
			for _, probe := range []int{0, 1, 99, 500, len(kvs) - 1} {
				v, deleted, found, err := r.Get([]byte(kvs[probe].u), keys.MaxSeq)
				if err != nil || deleted || !found || string(v) != kvs[probe].val {
					t.Fatalf("Get(%q) = %q,%v,%v,%v", kvs[probe].u, v, deleted, found, err)
				}
			}
		})
	}
}

// TestFormatMatrixThroughCache re-reads each combo through a block cache
// and checks the compression-aware accounting: the cache is charged for
// UNCOMPRESSED resident bytes, which for a compressed table must exceed
// the on-disk data size it replaced.
func TestFormatMatrixThroughCache(t *testing.T) {
	kvs := compressibleKVs(800)
	for _, wopts := range formatCombos() {
		t.Run(comboName(wopts), func(t *testing.T) {
			fs := vfs.Mem()
			buildTable(t, fs, "/t.sst", wopts, kvs)
			c := cache.New(32 << 20)
			ropts := defaultROpts()
			ropts.Cache = c
			r := openTable(t, fs, "/t.sst", ropts)
			defer r.Close()
			it := r.NewIterator()
			n := 0
			for it.SeekToFirst(); it.Valid(); it.Next() {
				n++
			}
			if err := it.Close(); err != nil {
				t.Fatal(err)
			}
			if n != len(kvs) {
				t.Fatalf("iterated %d of %d", n, len(kvs))
			}
			comp, uncomp := r.IOBytes()
			if uncomp < comp {
				t.Errorf("IOBytes: decoded %d < on-disk %d", uncomp, comp)
			}
			if wopts.Compression != compress.None && comp >= uncomp {
				t.Errorf("compressed table read %d on-disk bytes for %d decoded; expected savings", comp, uncomp)
			}
			if used := c.Used(); used <= 0 {
				t.Errorf("cache charged %d bytes after full scan", used)
			}
			// Second scan must come from cache: no new device block reads.
			before := r.BlockReads()
			it2 := r.NewIterator()
			for it2.SeekToFirst(); it2.Valid(); it2.Next() {
			}
			if err := it2.Close(); err != nil {
				t.Fatal(err)
			}
			if got := r.BlockReads(); got != before {
				t.Errorf("second scan fetched %d blocks from device", got-before)
			}
		})
	}
}

// TestFormatCorruptionDetected flips a byte at every position of a small
// table for each combo and requires the read path to either surface
// ErrCorrupt or return the correct data (flips in slack bytes such as
// footer padding are legitimately invisible) — never a panic, never a
// silently wrong result.
func TestFormatCorruptionDetected(t *testing.T) {
	kvs := compressibleKVs(60)
	for _, wopts := range formatCombos() {
		wopts := wopts
		t.Run(comboName(wopts), func(t *testing.T) {
			fs := vfs.Mem()
			buildTable(t, fs, "/t.sst", wopts, kvs)
			orig := readAll(t, fs, "/t.sst")
			for pos := 0; pos < len(orig); pos++ {
				mut := append([]byte(nil), orig...)
				mut[pos] ^= 0x40
				writeAll(t, fs, "/c.sst", mut)
				verifyCorruptTableIsSafe(t, fs, "/c.sst", kvs, pos)
			}
		})
	}
}

// verifyCorruptTableIsSafe opens and fully reads a possibly-corrupt table,
// requiring every failure to be a clean error and every success to return
// the exact original entries.
func verifyCorruptTableIsSafe(t *testing.T, fs vfs.FS, name string, kvs []kv, pos int) {
	t.Helper()
	f, err := fs.Open(name)
	if err != nil {
		t.Fatal(err)
	}
	r, err := OpenReader(f, defaultROpts())
	if err != nil {
		// Structural/checksum failure at open is the expected outcome for
		// most positions; it must be typed, and the handle stays ours.
		if !errors.Is(err, ErrCorrupt) {
			t.Fatalf("pos %d: open failed with untyped error: %v", pos, err)
		}
		_ = f.Close()
		return
	}
	it := r.NewIterator()
	i := 0
	for it.SeekToFirst(); it.Valid(); it.Next() {
		if i >= len(kvs) {
			break
		}
		if string(keys.InternalKey(it.Key()).UserKey()) != kvs[i].u || string(it.Value()) != kvs[i].val {
			t.Fatalf("pos %d: silent corruption at entry %d", pos, i)
		}
		i++
	}
	err = it.Close()
	if err == nil && i != len(kvs) {
		t.Fatalf("pos %d: clean read returned %d of %d entries", pos, i, len(kvs))
	}
	if err != nil && !errors.Is(err, ErrCorrupt) {
		t.Fatalf("pos %d: iteration failed with untyped error: %v", pos, err)
	}
	_ = r.Close()
}

func readAll(t *testing.T, fs vfs.FS, name string) []byte {
	t.Helper()
	f, err := fs.Open(name)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	size, err := f.Size()
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, size)
	if _, err := f.ReadAt(buf, 0); err != nil {
		t.Fatal(err)
	}
	return buf
}

func writeAll(t *testing.T, fs vfs.FS, name string, data []byte) {
	t.Helper()
	f, err := fs.Create(name)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(data); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestWriterRejectsUnknownKinds pins the eager validation: a writer
// configured outside the format registry fails before writing anything.
func TestWriterRejectsUnknownKinds(t *testing.T) {
	fs := vfs.Mem()
	for _, o := range []WriterOptions{
		func() WriterOptions { o := defaultWOpts(); o.Compression = compress.Kind(7); return o }(),
		func() WriterOptions { o := defaultWOpts(); o.Checksum = checksum.Kind(9); return o }(),
	} {
		f, err := fs.Create("/bad.sst")
		if err != nil {
			t.Fatal(err)
		}
		w := NewWriter(f, o)
		ik := keys.MakeInternalKey(nil, []byte("k"), 1, keys.KindSet)
		if err := w.Add(ik, []byte("v")); err == nil {
			t.Error("Add accepted a writer with unknown format kind")
		}
		if _, err := w.Finish(); err == nil {
			t.Error("Finish accepted a writer with unknown format kind")
		}
		_ = f.Close()
	}
}
