// Package sstable implements the on-disk sorted table: the immutable,
// block-structured file holding a sorted run of internal keys. The format
// follows LevelDB:
//
//	[data block 0]
//	[data block 1]
//	 ...
//	[filter block]   Bloom filter over the user keys of every entry
//	[index block]    separator key -> data block handle
//	[footer]         handles of filter and index blocks + magic
//
// Every block is stored as: contents | type byte (0 = raw) | fixed32 CRC,
// where the CRC covers contents and type. Handles are varint (offset,
// length-of-contents) pairs. The footer is fixed-size so it can be read
// with one positioned read from the end of the file.
package sstable

import (
	"errors"
	"fmt"
	"hash/crc32"

	"repro/internal/encoding"
)

const (
	// blockTrailerLen is the type byte plus the CRC.
	blockTrailerLen = 5
	// footerLen holds two max-length handles plus the magic number.
	footerLen = 2*2*encoding.MaxVarintLen64 + 8

	typeRaw = 0

	magic = 0x8773b3a2c2a9d6f1
)

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// ErrCorrupt reports a checksum or structural failure in a table file.
var ErrCorrupt = errors.New("sstable: corrupt table")

// blockHandle locates a block's contents within the file.
type blockHandle struct {
	offset, length uint64
}

func (h blockHandle) encode(dst []byte) []byte {
	dst = encoding.PutUvarint(dst, h.offset)
	return encoding.PutUvarint(dst, h.length)
}

func decodeBlockHandle(b []byte) (blockHandle, int) {
	off, n1 := encoding.Uvarint(b)
	if n1 == 0 {
		return blockHandle{}, 0
	}
	ln, n2 := encoding.Uvarint(b[n1:])
	if n2 == 0 {
		return blockHandle{}, 0
	}
	return blockHandle{offset: off, length: ln}, n1 + n2
}

// footer is the fixed-size tail of the file.
type footer struct {
	filterHandle blockHandle
	indexHandle  blockHandle
}

func (f footer) encode() []byte {
	buf := make([]byte, 0, footerLen)
	buf = f.filterHandle.encode(buf)
	buf = f.indexHandle.encode(buf)
	for len(buf) < footerLen-8 {
		buf = append(buf, 0)
	}
	return encoding.PutFixed64(buf, magic)
}

func decodeFooter(b []byte) (footer, error) {
	if len(b) != footerLen {
		return footer{}, fmt.Errorf("%w: footer is %d bytes", ErrCorrupt, len(b))
	}
	if encoding.Fixed64(b[footerLen-8:]) != magic {
		return footer{}, fmt.Errorf("%w: bad magic", ErrCorrupt)
	}
	var f footer
	fh, n1 := decodeBlockHandle(b)
	if n1 == 0 {
		return footer{}, fmt.Errorf("%w: bad filter handle", ErrCorrupt)
	}
	ih, n2 := decodeBlockHandle(b[n1:])
	if n2 == 0 {
		return footer{}, fmt.Errorf("%w: bad index handle", ErrCorrupt)
	}
	f.filterHandle, f.indexHandle = fh, ih
	return f, nil
}
