// Package sstable implements the on-disk sorted table: the immutable,
// block-structured file holding a sorted run of internal keys. The format
// follows LevelDB:
//
//	[data block 0]
//	[data block 1]
//	 ...
//	[filter block]   Bloom filter over the user keys of every entry
//	[index block]    separator key -> data block handle
//	[footer]         handles of filter and index blocks + magic
//
// Every block is stored as: payload | type byte | fixed32 checksum, where
// the checksum covers payload and type. The type byte is the block's codec
// (compress.Kind: 0 = raw, 1 = flate, 2 = lz4); a table may mix types
// freely, because incompressible blocks fall back to raw. The checksum
// function is a per-table choice (checksum.Kind) recorded in the footer.
// Handles are varint (offset, length-of-payload) pairs, where the length
// is the ON-DISK payload length — possibly compressed.
//
// Two footer versions exist, distinguished by magic number:
//
//	v1 (legacy): handles | zero pad | magicV1           (48 bytes)
//	v2:          handles | zero pad | checksum-kind byte | magicV2 (49 bytes)
//
// v1 tables are CRC32C throughout and predate compression (all their
// blocks are type 0); the reader accepts both versions, the writer emits
// only v2. The footer is fixed-size per version so it can be read with one
// positioned read from the end of the file.
package sstable

import (
	"errors"
	"fmt"

	"repro/internal/checksum"
	"repro/internal/encoding"
)

const (
	// blockTrailerLen is the type byte plus the checksum.
	blockTrailerLen = 5

	// handlesLen is the maximum encoding of the footer's two handles.
	handlesLen = 2 * 2 * encoding.MaxVarintLen64
	// footerLenV1 is the legacy footer: handles, padding, magic.
	footerLenV1 = handlesLen + 8
	// footerLenV2 adds the checksum-kind byte between padding and magic.
	footerLenV2 = handlesLen + 1 + 8

	magicV1 = 0x8773b3a2c2a9d6f1
	magicV2 = 0x8773b3a2c2a9d6f2
)

// ErrCorrupt reports a checksum or structural failure in a table file.
var ErrCorrupt = errors.New("sstable: corrupt table")

// blockHandle locates a block's on-disk payload within the file.
type blockHandle struct {
	offset, length uint64
}

func (h blockHandle) encode(dst []byte) []byte {
	dst = encoding.PutUvarint(dst, h.offset)
	return encoding.PutUvarint(dst, h.length)
}

func decodeBlockHandle(b []byte) (blockHandle, int) {
	off, n1 := encoding.Uvarint(b)
	if n1 == 0 {
		return blockHandle{}, 0
	}
	ln, n2 := encoding.Uvarint(b[n1:])
	if n2 == 0 {
		return blockHandle{}, 0
	}
	return blockHandle{offset: off, length: ln}, n1 + n2
}

// footer is the fixed-size tail of the file.
type footer struct {
	filterHandle blockHandle
	indexHandle  blockHandle
	// checksum is the per-table checksum function of every block trailer.
	checksum checksum.Kind
}

// encode renders the v2 footer.
func (f footer) encode() []byte {
	buf := make([]byte, 0, footerLenV2)
	buf = f.filterHandle.encode(buf)
	buf = f.indexHandle.encode(buf)
	for len(buf) < handlesLen {
		buf = append(buf, 0)
	}
	buf = append(buf, byte(f.checksum))
	return encoding.PutFixed64(buf, magicV2)
}

// encodeV1 renders the legacy footer (no checksum-kind byte, v1 magic).
// Only the legacyV1Footer test path uses it: it reproduces seed-era files
// so backward compatibility stays pinned by tests.
func (f footer) encodeV1() []byte {
	buf := make([]byte, 0, footerLenV1)
	buf = f.filterHandle.encode(buf)
	buf = f.indexHandle.encode(buf)
	for len(buf) < handlesLen {
		buf = append(buf, 0)
	}
	return encoding.PutFixed64(buf, magicV1)
}

// decodeFooter parses the tail of a table file. b is the file's last
// footerLenV2 bytes (or the last footerLenV1 when the file is smaller);
// the magic value in the final 8 bytes selects the version.
func decodeFooter(b []byte) (footer, error) {
	if len(b) < footerLenV1 {
		return footer{}, fmt.Errorf("%w: footer is %d bytes", ErrCorrupt, len(b))
	}
	var f footer
	switch encoding.Fixed64(b[len(b)-8:]) {
	case magicV2:
		if len(b) < footerLenV2 {
			return footer{}, fmt.Errorf("%w: v2 footer is %d bytes", ErrCorrupt, len(b))
		}
		b = b[len(b)-footerLenV2:]
		f.checksum = checksum.Kind(b[handlesLen])
		if !f.checksum.Valid() {
			return footer{}, fmt.Errorf("%w: unknown checksum kind %d", ErrCorrupt, b[handlesLen])
		}
	case magicV1:
		// Legacy: CRC32C, raw blocks only (the block type byte is still
		// validated per read).
		b = b[len(b)-footerLenV1:]
		f.checksum = checksum.CRC32C
	default:
		return footer{}, fmt.Errorf("%w: bad magic", ErrCorrupt)
	}
	fh, n1 := decodeBlockHandle(b)
	if n1 == 0 {
		return footer{}, fmt.Errorf("%w: bad filter handle", ErrCorrupt)
	}
	ih, n2 := decodeBlockHandle(b[n1:])
	if n2 == 0 {
		return footer{}, fmt.Errorf("%w: bad index handle", ErrCorrupt)
	}
	f.filterHandle, f.indexHandle = fh, ih
	return f, nil
}
