package sstable

import (
	"errors"
	"testing"

	"repro/internal/checksum"
	"repro/internal/compress"
	"repro/internal/keys"
	"repro/internal/vfs"
)

// FuzzBlockRoundTrip builds a one-entry table from arbitrary value bytes
// under a fuzzer-chosen (compression, checksum) combination, optionally
// flips one byte or truncates the file, and requires the read path to
// either return the exact value or fail with ErrCorrupt — never panic,
// never read out of bounds, never succeed with wrong data.
func FuzzBlockRoundTrip(f *testing.F) {
	f.Add([]byte("hello world"), uint8(0), uint8(0), -1)
	f.Add([]byte("aaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaa"), uint8(2), uint8(1), 100)
	f.Add([]byte{}, uint8(1), uint8(0), 0)
	f.Add([]byte("abcabcabcabcabcabcabcabc"), uint8(2), uint8(0), 48)
	f.Fuzz(func(t *testing.T, value []byte, comp, ck uint8, corrupt int) {
		wopts := defaultWOpts()
		wopts.Compression = compress.Kind(comp % 3)
		wopts.Checksum = checksum.Kind(ck % 2)

		fs := vfs.Mem()
		out, err := fs.Create("/f.sst")
		if err != nil {
			t.Fatal(err)
		}
		w := NewWriter(out, wopts)
		ik := keys.MakeInternalKey(nil, []byte("key"), 1, keys.KindSet)
		if err := w.Add(ik, value); err != nil {
			t.Fatal(err)
		}
		if _, err := w.Finish(); err != nil {
			t.Fatal(err)
		}
		if err := out.Close(); err != nil {
			t.Fatal(err)
		}

		raw := readAll(t, fs, "/f.sst")
		switch {
		case corrupt >= 0 && len(raw) > 0:
			// Flip one byte somewhere in the file.
			pos := corrupt % len(raw)
			raw = append([]byte(nil), raw...)
			raw[pos] ^= 0x01
			writeAll(t, fs, "/f.sst", raw)
		case corrupt < -1:
			// Truncate the tail (always structurally invalid: the footer is
			// the last thing written).
			cut := (-corrupt) % (len(raw) + 1)
			writeAll(t, fs, "/f.sst", raw[:len(raw)-cut])
		}

		in, err := fs.Open("/f.sst")
		if err != nil {
			t.Fatal(err)
		}
		r, err := OpenReader(in, defaultROpts())
		if err != nil {
			if !errors.Is(err, ErrCorrupt) {
				t.Fatalf("open: untyped error %v", err)
			}
			_ = in.Close()
			return
		}
		got, deleted, found, err := r.Get([]byte("key"), keys.MaxSeq)
		switch {
		case err != nil:
			if !errors.Is(err, ErrCorrupt) {
				t.Fatalf("get: untyped error %v", err)
			}
		case found && !deleted:
			if string(got) != string(value) {
				t.Fatalf("silent corruption: got %d bytes, want %d", len(got), len(value))
			}
		case corrupt == -1:
			// Pristine file must find the key.
			t.Fatalf("pristine table lost the key (deleted=%v found=%v)", deleted, found)
		}
		_ = r.Close()
	})
}
