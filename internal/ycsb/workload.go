package ycsb

import "fmt"

// OpKind is one of the benchmark's request types.
type OpKind int

// Operation kinds.
const (
	OpRead OpKind = iota
	OpWrite
	OpScan
)

// Distribution selects the key popularity model.
type Distribution struct {
	// Kind is "uniform", "zipfian", or "latest".
	Kind string
	// Theta is the Zipf constant (used when Kind == "zipfian").
	Theta float64
}

// Uniform is the paper's default distribution.
var Uniform = Distribution{Kind: "uniform"}

// Zipf returns a zipfian distribution with the given constant, as swept in
// the paper's Fig 11 (constants 1, 2, 5).
func Zipf(theta float64) Distribution {
	return Distribution{Kind: "zipfian", Theta: theta}
}

// Workload mirrors the paper's Table III: a mix of random writes with point
// lookups or range scans over a key space.
type Workload struct {
	// Name as the paper labels it (WO, WH, RWB, RH, RO, SCN-*).
	Name string
	// WriteRatio is the fraction of write (insert/update) requests.
	WriteRatio float64
	// ScanQueries replaces point lookups with range scans (the SCN-*
	// workloads).
	ScanQueries bool
	// ScanLength is pairs per scan (paper: 100).
	ScanLength int
	// Dist selects key popularity.
	Dist Distribution
	// KeySpace is the number of distinct keys.
	KeySpace int64
	// ValueSize is the value payload (paper: 1 KiB).
	ValueSize int
	// Compressibility is the fraction of each value that is redundant
	// (0 = pure random bytes, the paper's incompressible default; see
	// CompressibleValue). Used by the on-disk-format benchmarks.
	Compressibility float64
	// Ops is the total request count.
	Ops int64
	// Preload inserts this many keys before measuring (0 = KeySpace/2,
	// the YCSB load phase).
	Preload int64
}

func (w Workload) withDefaults() Workload {
	if w.ScanLength <= 0 {
		w.ScanLength = 100
	}
	if w.Dist.Kind == "" {
		w.Dist = Uniform
	}
	if w.KeySpace <= 0 {
		w.KeySpace = 100000
	}
	if w.ValueSize <= 0 {
		w.ValueSize = 1024
	}
	if w.Ops <= 0 {
		w.Ops = w.KeySpace
	}
	if w.Preload == 0 {
		w.Preload = w.KeySpace / 2
	}
	return w
}

// value renders the payload for item i under the workload's value model.
func (w Workload) value(i int64) []byte {
	if w.Compressibility > 0 {
		return CompressibleValue(i, w.ValueSize, w.Compressibility)
	}
	return Value(i, w.ValueSize)
}

// String names the workload.
func (w Workload) String() string {
	return fmt.Sprintf("%s(w=%.0f%%,%s,ops=%d)", w.Name, w.WriteRatio*100, w.Dist.Kind, w.Ops)
}

// The paper's Table III workloads, parameterized by total request count and
// key space. Point-lookup family:

// WO is write-only (100% writes).
func WO(ops, keySpace int64) Workload {
	return Workload{Name: "WO", WriteRatio: 1.0, Ops: ops, KeySpace: keySpace}.withDefaults()
}

// WH is write-heavy (70% writes, 30% point lookups).
func WH(ops, keySpace int64) Workload {
	return Workload{Name: "WH", WriteRatio: 0.7, Ops: ops, KeySpace: keySpace}.withDefaults()
}

// RWB is read/write balanced (50/50).
func RWB(ops, keySpace int64) Workload {
	return Workload{Name: "RWB", WriteRatio: 0.5, Ops: ops, KeySpace: keySpace}.withDefaults()
}

// RH is read-heavy (30% writes, 70% point lookups).
func RH(ops, keySpace int64) Workload {
	return Workload{Name: "RH", WriteRatio: 0.3, Ops: ops, KeySpace: keySpace}.withDefaults()
}

// RO is read-only.
func RO(ops, keySpace int64) Workload {
	return Workload{Name: "RO", WriteRatio: 0.0, Ops: ops, KeySpace: keySpace}.withDefaults()
}

// Range-scan family (SCAN covers 100 pairs on average):

// ScnWH is write-heavy with range queries.
func ScnWH(ops, keySpace int64) Workload {
	return Workload{Name: "SCN-WH", WriteRatio: 0.7, ScanQueries: true, Ops: ops, KeySpace: keySpace}.withDefaults()
}

// ScnRWB is balanced with range queries.
func ScnRWB(ops, keySpace int64) Workload {
	return Workload{Name: "SCN-RWB", WriteRatio: 0.5, ScanQueries: true, Ops: ops, KeySpace: keySpace}.withDefaults()
}

// ScnRH is read-heavy with range queries.
func ScnRH(ops, keySpace int64) Workload {
	return Workload{Name: "SCN-RH", WriteRatio: 0.3, ScanQueries: true, Ops: ops, KeySpace: keySpace}.withDefaults()
}

// PointWorkloads returns the GET-family mixes of Fig 10(a).
func PointWorkloads(ops, keySpace int64) []Workload {
	return []Workload{WO(ops, keySpace), WH(ops, keySpace), RWB(ops, keySpace), RH(ops, keySpace), RO(ops, keySpace)}
}

// ScanWorkloads returns the SCAN-family mixes of Fig 10(b).
func ScanWorkloads(ops, keySpace int64) []Workload {
	return []Workload{ScnWH(ops, keySpace), ScnRWB(ops, keySpace), ScnRH(ops, keySpace)}
}
