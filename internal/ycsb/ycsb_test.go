package ycsb

import (
	"bytes"
	"errors"
	"math/rand"
	"sort"
	"sync"
	"testing"
	"time"

	"repro/internal/compress"
)

func TestUniformCoversSpace(t *testing.T) {
	g := NewUniform(rand.New(rand.NewSource(1)), 100)
	seen := map[int64]bool{}
	for i := 0; i < 10000; i++ {
		v := g.Next()
		if v < 0 || v >= 100 {
			t.Fatalf("out of range: %d", v)
		}
		seen[v] = true
	}
	if len(seen) < 95 {
		t.Errorf("uniform covered only %d/100 items", len(seen))
	}
}

func zipfSkew(t *testing.T, theta float64) float64 {
	t.Helper()
	g := NewZipfian(rand.New(rand.NewSource(2)), 10000, theta)
	counts := map[int64]int{}
	const n = 50000
	for i := 0; i < n; i++ {
		v := g.Next()
		if v < 0 || v >= 10000 {
			t.Fatalf("theta=%v: out of range %d", theta, v)
		}
		counts[v]++
	}
	// Fraction of accesses hitting the top 1% of items.
	freqs := make([]int, 0, len(counts))
	for _, c := range counts {
		freqs = append(freqs, c)
	}
	sort.Sort(sort.Reverse(sort.IntSlice(freqs)))
	top := 0
	limit := len(freqs) / 100
	if limit == 0 {
		limit = 1
	}
	for i := 0; i < limit; i++ {
		top += freqs[i]
	}
	return float64(top) / n
}

func TestZipfianSkewGrowsWithTheta(t *testing.T) {
	low := zipfSkew(t, 0.5)
	mid := zipfSkew(t, 0.99)
	high := zipfSkew(t, 2)
	extreme := zipfSkew(t, 5)
	if !(low < mid && mid < high && high <= extreme) {
		t.Errorf("skew not monotone: θ0.5=%.3f θ0.99=%.3f θ2=%.3f θ5=%.3f",
			low, mid, high, extreme)
	}
	if extreme < 0.9 {
		t.Errorf("θ=5 top-1%% share = %.3f, want heavily concentrated", extreme)
	}
}

func TestLatestPrefersRecent(t *testing.T) {
	count := int64(10000)
	g := NewLatest(rand.New(rand.NewSource(3)), func() int64 { return count })
	recent := 0
	for i := 0; i < 10000; i++ {
		v := g.Next()
		if v < 0 || v >= count {
			t.Fatalf("out of range: %d", v)
		}
		if v >= count-count/10 {
			recent++
		}
	}
	if recent < 5000 {
		t.Errorf("only %d/10000 picks in newest decile", recent)
	}
}

func TestKeyFormat(t *testing.T) {
	k := Key(42)
	if len(k) != 16 {
		t.Errorf("key length = %d, want 16 (paper's 16-B keys)", len(k))
	}
	if !bytes.Equal(Key(42), Key(42)) || bytes.Equal(Key(1), Key(2)) {
		t.Error("keys not deterministic/distinct")
	}
	// Keys must sort numerically for scans.
	if bytes.Compare(Key(9), Key(10)) >= 0 {
		t.Error("key ordering broken")
	}
}

func TestValueDeterministicAndSized(t *testing.T) {
	v := Value(7, 1024)
	if len(v) != 1024 {
		t.Errorf("value size = %d", len(v))
	}
	if !bytes.Equal(v, Value(7, 1024)) {
		t.Error("value not deterministic")
	}
	if bytes.Equal(Value(7, 64), Value(8, 64)) {
		t.Error("values for distinct keys identical")
	}
}

func TestWorkloadDefaults(t *testing.T) {
	w := RWB(1000, 500)
	if w.Ops != 1000 || w.KeySpace != 500 || w.WriteRatio != 0.5 {
		t.Errorf("RWB = %+v", w)
	}
	if w.Preload != 250 {
		t.Errorf("Preload = %d, want half the key space", w.Preload)
	}
	if w.ValueSize != 1024 || w.ScanLength != 100 {
		t.Errorf("defaults: value=%d scan=%d", w.ValueSize, w.ScanLength)
	}
	wo := WO(1000, 500)
	if wo.Preload != 250 {
		t.Errorf("WO preload = %d, want the YCSB load phase", wo.Preload)
	}
	if got := len(PointWorkloads(10, 10)); got != 5 {
		t.Errorf("PointWorkloads = %d entries", got)
	}
	if got := len(ScanWorkloads(10, 10)); got != 3 {
		t.Errorf("ScanWorkloads = %d entries", got)
	}
}

// memStore is a trivial thread-safe store for runner tests.
type memStore struct {
	mu sync.Mutex
	m  map[string][]byte

	writes, reads, scans int
}

func newMemStore() *memStore { return &memStore{m: map[string][]byte{}} }

func (s *memStore) ops() Ops {
	return Ops{
		Write: func(k, v []byte) error {
			s.mu.Lock()
			defer s.mu.Unlock()
			s.m[string(k)] = append([]byte(nil), v...)
			s.writes++
			return nil
		},
		Read: func(k []byte) error {
			s.mu.Lock()
			defer s.mu.Unlock()
			s.reads++
			return nil
		},
		Scan: func(start []byte, limit int) error {
			s.mu.Lock()
			defer s.mu.Unlock()
			s.scans++
			return nil
		},
	}
}

func TestRunMixesOperations(t *testing.T) {
	s := newMemStore()
	w := WH(4000, 1000)
	w.Preload = 100
	if err := Load(s.ops(), w, RunnerOptions{Seed: 5}); err != nil {
		t.Fatal(err)
	}
	if s.writes != 100 {
		t.Fatalf("preload wrote %d", s.writes)
	}
	res, err := Run(s.ops(), w, RunnerOptions{Seed: 5, Clients: 3})
	if err != nil {
		t.Fatal(err)
	}
	if res.Ops != 4000 {
		t.Errorf("Ops = %d", res.Ops)
	}
	wr := float64(res.WriteHist.Count()) / float64(res.Ops)
	if wr < 0.65 || wr > 0.75 {
		t.Errorf("write ratio = %.3f, want ≈0.7", wr)
	}
	if res.ScanHist.Count() != 0 {
		t.Errorf("point workload performed %d scans", res.ScanHist.Count())
	}
	if res.Throughput <= 0 {
		t.Error("zero throughput")
	}
}

func TestRunScanWorkloadUsesScans(t *testing.T) {
	s := newMemStore()
	w := ScnRWB(2000, 500)
	w.Preload = 0
	res, err := Run(s.ops(), w, RunnerOptions{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if res.ScanHist.Count() == 0 || s.scans == 0 {
		t.Error("SCN workload performed no scans")
	}
	if res.ReadHist.Count() != 0 {
		t.Errorf("SCN workload performed %d point reads", res.ReadHist.Count())
	}
}

func TestRunPropagatesErrors(t *testing.T) {
	boom := errors.New("boom")
	o := Ops{
		Write: func(k, v []byte) error { return boom },
		Read:  func(k []byte) error { return boom },
		Scan:  func(start []byte, limit int) error { return boom },
	}
	w := WO(100, 100)
	if _, err := Run(o, w, RunnerOptions{}); !errors.Is(err, boom) {
		t.Errorf("Run err = %v", err)
	}
}

func TestRunTimeline(t *testing.T) {
	s := newMemStore()
	w := WO(500, 100)
	res, err := Run(s.ops(), w, RunnerOptions{TimelineSlot: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if res.Timeline == nil || len(res.Timeline.Series()) == 0 {
		t.Error("timeline not recorded")
	}
}

func TestRunReproducible(t *testing.T) {
	run := func() int {
		s := newMemStore()
		w := RWB(1000, 200)
		w.Preload = 0
		Run(s.ops(), w, RunnerOptions{Seed: 77, Clients: 1})
		return s.writes
	}
	if run() != run() {
		t.Error("same seed produced different op mixes")
	}
}

func TestCompressibleValue(t *testing.T) {
	// Deterministic: same inputs, same bytes.
	a := CompressibleValue(42, 1024, 0.5)
	b := CompressibleValue(42, 1024, 0.5)
	if !bytes.Equal(a, b) {
		t.Fatal("CompressibleValue is not deterministic")
	}
	if len(a) != 1024 {
		t.Fatalf("len = %d, want 1024", len(a))
	}
	// Distinct keys get distinct values.
	if bytes.Equal(a, CompressibleValue(43, 1024, 0.5)) {
		t.Fatal("different keys produced identical values")
	}
	// Ratio 0 degenerates to the incompressible generator.
	if !bytes.Equal(CompressibleValue(7, 256, 0), Value(7, 256)) {
		t.Fatal("ratio 0 should equal Value()")
	}
	// The redundancy is real: the requested fraction actually compresses.
	for _, ratio := range []float64{0.25, 0.5, 0.9} {
		v := CompressibleValue(1, 4096, ratio)
		payload, kind := compress.Compress(compress.LZ4, nil, v)
		if kind != compress.LZ4 {
			t.Fatalf("ratio %v: lz4 bailed out on a value with %v redundancy", ratio, ratio)
		}
		saved := 1 - float64(len(payload))/float64(len(v))
		if saved < ratio/2 {
			t.Errorf("ratio %v: lz4 saved only %.0f%%", ratio, saved*100)
		}
	}
	// And the incompressible default really is: lz4 must store it raw.
	if _, kind := compress.Compress(compress.LZ4, nil, Value(1, 4096)); kind != compress.None {
		t.Error("pure-random Value compressed; generator is broken")
	}
}
