// Package ycsb reimplements the YCSB workload machinery the paper
// evaluates with: key generators (uniform and Zipfian, including the large
// Zipf constants of Fig 11), the paper's workload mixes (Table III), and a
// runner that drives a store while recording latency histograms, per-second
// timelines, and throughput.
package ycsb

import (
	"fmt"
	"hash/fnv"
	"math"
	"math/rand"
)

// Generator produces item indexes in [0, n).
type Generator interface {
	// Next returns the next item index.
	Next() int64
	// N reports the item space size.
	N() int64
}

// NewUniform returns a uniform generator over [0, n).
func NewUniform(rng *rand.Rand, n int64) Generator {
	return &uniformGen{rng: rng, n: n}
}

type uniformGen struct {
	rng *rand.Rand
	n   int64
}

func (u *uniformGen) Next() int64 { return u.rng.Int63n(u.n) }
func (u *uniformGen) N() int64    { return u.n }

// NewZipfian returns a Zipfian generator over [0, n) with the given
// constant (theta). Item ranks are scrambled across the key space, as in
// YCSB's ScrambledZipfianGenerator, so popular keys are spread out rather
// than clustered at the low end.
//
// Two samplers cover the full constant range: the Gray et al. algorithm
// YCSB uses for theta < 1, and the stdlib's rejection sampler (math/rand
// Zipf) for theta > 1 — the paper's Fig 11 sweeps constants 1, 2, and 5.
func NewZipfian(rng *rand.Rand, n int64, theta float64) Generator {
	if theta >= 0.999 {
		s := theta
		if s < 1.001 {
			s = 1.001
		}
		return &stdZipfGen{z: rand.NewZipf(rng, s, 1, uint64(n-1)), n: n}
	}
	return newGrayZipf(rng, n, theta)
}

// stdZipfGen wraps math/rand's Zipf (valid for s > 1) with rank scrambling.
type stdZipfGen struct {
	z *rand.Zipf
	n int64
}

func (g *stdZipfGen) Next() int64 { return scramble(int64(g.z.Uint64()), g.n) }
func (g *stdZipfGen) N() int64    { return g.n }

// grayZipf is the classic YCSB zipfian sampler (Gray et al., "Quickly
// generating billion-record synthetic databases"), valid for theta < 1.
type grayZipf struct {
	rng               *rand.Rand
	n                 int64
	theta             float64
	alpha, zetan, eta float64
	zeta2             float64
}

func newGrayZipf(rng *rand.Rand, n int64, theta float64) *grayZipf {
	g := &grayZipf{rng: rng, n: n, theta: theta}
	g.zeta2 = zetaStatic(2, theta)
	g.zetan = zetaStatic(n, theta)
	g.alpha = 1.0 / (1.0 - theta)
	g.eta = (1 - math.Pow(2.0/float64(n), 1-theta)) / (1 - g.zeta2/g.zetan)
	return g
}

func zetaStatic(n int64, theta float64) float64 {
	sum := 0.0
	for i := int64(1); i <= n; i++ {
		sum += 1 / math.Pow(float64(i), theta)
	}
	return sum
}

func (g *grayZipf) Next() int64 {
	u := g.rng.Float64()
	uz := u * g.zetan
	var rank int64
	switch {
	case uz < 1.0:
		rank = 0
	case uz < 1.0+math.Pow(0.5, g.theta):
		rank = 1
	default:
		rank = int64(float64(g.n) * math.Pow(g.eta*u-g.eta+1, g.alpha))
	}
	if rank >= g.n {
		rank = g.n - 1
	}
	return scramble(rank, g.n)
}

func (g *grayZipf) N() int64 { return g.n }

// scramble hashes a rank into the item space so hot items are spread out.
func scramble(rank, n int64) int64 {
	h := fnv.New64a()
	var buf [8]byte
	for i := 0; i < 8; i++ {
		buf[i] = byte(rank >> (8 * i))
	}
	h.Write(buf[:])
	return int64(h.Sum64() % uint64(n))
}

// NewLatest returns a generator skewed toward recently inserted items,
// driven by the supplied insert-counter callback (YCSB's "latest"
// distribution).
func NewLatest(rng *rand.Rand, count func() int64) Generator {
	return &latestGen{rng: rng, count: count}
}

type latestGen struct {
	rng   *rand.Rand
	count func() int64
}

func (l *latestGen) Next() int64 {
	n := l.count()
	if n <= 0 {
		return 0
	}
	// Exponentially decaying recency skew: most picks land near the newest
	// insert, with a tail reaching ~5% of the item space back.
	back := int64(l.rng.ExpFloat64() * float64(n) * 0.05)
	if back >= n {
		back = n - 1
	}
	return n - 1 - back
}

func (l *latestGen) N() int64 { return l.count() }

// Key renders item index i as the paper's 16-byte key.
func Key(i int64) []byte {
	return []byte(fmt.Sprintf("u%015d", i))
}

// Value builds a deterministic pseudo-random value of the given size
// (the paper uses 1 KiB). The bytes are xorshift output — incompressible by
// construction, the worst case for any block codec.
func Value(i int64, size int) []byte {
	v := make([]byte, size)
	fillRandom(v, uint64(i))
	return v
}

// CompressibleValue builds a deterministic value whose leading
// (1-ratio)·size bytes are pseudo-random and whose tail is a repeated
// 32-byte fragment, giving block codecs roughly the requested fraction of
// redundancy. ratio is clamped to [0, 1]; 0 degenerates to Value. Real
// stored data (JSON, URLs, log lines) sits between the two extremes, which
// is what the format benchmarks sweep.
func CompressibleValue(i int64, size int, ratio float64) []byte {
	if ratio <= 0 {
		return Value(i, size)
	}
	if ratio > 1 {
		ratio = 1
	}
	v := make([]byte, size)
	randLen := int(float64(size) * (1 - ratio))
	fillRandom(v[:randLen], uint64(i))
	// The repeated fragment varies per key (so cross-value dedup is not the
	// thing being measured) but tiles within the value.
	var frag [32]byte
	fillRandom(frag[:], uint64(i)^0xa076_1d64_78bd_642f)
	for j := randLen; j < size; j++ {
		v[j] = frag[(j-randLen)%len(frag)]
	}
	return v
}

// fillRandom fills v with xorshift64 output seeded deterministically.
func fillRandom(v []byte, seed uint64) {
	state := seed*0x9e3779b97f4a7c15 + 0x2545f4914f6cdd1d
	for j := range v {
		state ^= state << 13
		state ^= state >> 7
		state ^= state << 17
		v[j] = byte(state)
	}
}
