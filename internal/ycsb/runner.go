package ycsb

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/histogram"
)

// Ops adapts a store to the runner. Read should swallow not-found (absent
// keys are expected under random lookups); every returned error aborts the
// run.
type Ops struct {
	Write func(key, value []byte) error
	Read  func(key []byte) error
	Scan  func(start []byte, limit int) error
}

// RunnerOptions tunes the measurement loop.
type RunnerOptions struct {
	// Clients is the number of concurrent client goroutines (default 2).
	Clients int
	// Seed makes runs reproducible.
	Seed int64
	// TimelineSlot, when non-zero, records a mean-latency timeline with the
	// given slot width (Fig 1).
	TimelineSlot time.Duration
}

func (r RunnerOptions) withDefaults() RunnerOptions {
	if r.Clients <= 0 {
		r.Clients = 2
	}
	if r.Seed == 0 {
		r.Seed = 1
	}
	return r
}

// Result aggregates one run's measurements.
type Result struct {
	Workload   Workload
	Duration   time.Duration
	Ops        int64
	Throughput float64 // requests per second

	Hist      *histogram.Histogram // all requests
	ReadHist  *histogram.Histogram
	WriteHist *histogram.Histogram
	ScanHist  *histogram.Histogram
	Timeline  *histogram.Timeline // nil unless requested
}

// String summarizes the run.
func (r *Result) String() string {
	return fmt.Sprintf("%s: %.0f ops/s, mean=%v p99=%v p99.9=%v",
		r.Workload.Name, r.Throughput, r.Hist.Mean(),
		r.Hist.Percentile(99), r.Hist.Percentile(99.9))
}

// Load performs the preload phase: sequential-ish unique inserts of
// w.Preload keys so read workloads have data to find.
func Load(ops Ops, w Workload, ro RunnerOptions) error {
	w = w.withDefaults()
	ro = ro.withDefaults()
	if w.Preload <= 0 {
		return nil
	}
	rng := rand.New(rand.NewSource(ro.Seed))
	perm := rng.Perm(int(w.KeySpace))
	for i := int64(0); i < w.Preload; i++ {
		idx := int64(perm[int(i)%len(perm)])
		if err := ops.Write(Key(idx), w.value(idx)); err != nil {
			return fmt.Errorf("ycsb: preload: %w", err)
		}
	}
	return nil
}

// Run drives the workload and measures it.
func Run(ops Ops, w Workload, ro RunnerOptions) (*Result, error) {
	w = w.withDefaults()
	ro = ro.withDefaults()

	res := &Result{
		Workload:  w,
		Hist:      &histogram.Histogram{},
		ReadHist:  &histogram.Histogram{},
		WriteHist: &histogram.Histogram{},
		ScanHist:  &histogram.Histogram{},
	}
	if ro.TimelineSlot > 0 {
		res.Timeline = histogram.NewTimeline(ro.TimelineSlot)
	}

	perClient := w.Ops / int64(ro.Clients)
	var errMu sync.Mutex
	var firstErr error
	var wg sync.WaitGroup
	start := time.Now()
	for c := 0; c < ro.Clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(ro.Seed + int64(c)*7919))
			var gen Generator
			switch w.Dist.Kind {
			case "zipfian":
				gen = NewZipfian(rng, w.KeySpace, w.Dist.Theta)
			case "latest":
				counter := int64(w.Preload)
				gen = NewLatest(rng, func() int64 { return atomic.LoadInt64(&counter) })
			default:
				gen = NewUniform(rng, w.KeySpace)
			}
			n := perClient
			if c == ro.Clients-1 {
				n += w.Ops % int64(ro.Clients)
			}
			for i := int64(0); i < n; i++ {
				errMu.Lock()
				stop := firstErr != nil
				errMu.Unlock()
				if stop {
					return
				}
				idx := gen.Next()
				var kind OpKind
				switch {
				case rng.Float64() < w.WriteRatio:
					kind = OpWrite
				case w.ScanQueries:
					kind = OpScan
				default:
					kind = OpRead
				}
				opStart := time.Now()
				var err error
				switch kind {
				case OpWrite:
					err = ops.Write(Key(idx), w.value(idx))
				case OpScan:
					err = ops.Scan(Key(idx), w.ScanLength)
				default:
					err = ops.Read(Key(idx))
				}
				lat := time.Since(opStart)
				if err != nil {
					errMu.Lock()
					if firstErr == nil {
						firstErr = err
					}
					errMu.Unlock()
					return
				}
				res.Hist.Record(lat)
				switch kind {
				case OpWrite:
					res.WriteHist.Record(lat)
				case OpScan:
					res.ScanHist.Record(lat)
				default:
					res.ReadHist.Record(lat)
				}
				if res.Timeline != nil {
					res.Timeline.Record(lat)
				}
			}
		}(c)
	}
	wg.Wait()
	res.Duration = time.Since(start)
	res.Ops = res.Hist.Count()
	if res.Duration > 0 {
		res.Throughput = float64(res.Ops) / res.Duration.Seconds()
	}
	if firstErr != nil {
		return res, firstErr
	}
	return res, nil
}
