package iterator

import (
	"bytes"
	"fmt"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/keys"
)

var icmp = keys.InternalComparer{User: keys.BytewiseComparer{}}

func ik(u string, seq keys.Seq) []byte {
	return keys.MakeInternalKey(nil, []byte(u), seq, keys.KindSet)
}

func pairs(kvs ...string) []KV {
	// kvs alternate key,value; keys get seq=1.
	var out []KV
	for i := 0; i < len(kvs); i += 2 {
		out = append(out, KV{K: ik(kvs[i], 1), V: []byte(kvs[i+1])})
	}
	return out
}

func collect(t *testing.T, it Iterator) []string {
	t.Helper()
	var out []string
	for it.SeekToFirst(); it.Valid(); it.Next() {
		out = append(out, string(keys.InternalKey(it.Key()).UserKey())+"="+string(it.Value()))
	}
	if err := it.Error(); err != nil {
		t.Fatalf("iterator error: %v", err)
	}
	return out
}

func TestSliceIterBasics(t *testing.T) {
	it := NewSlice(icmp.Compare, pairs("a", "1", "c", "3", "e", "5"))
	got := collect(t, it)
	want := []string{"a=1", "c=3", "e=5"}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Errorf("got %v want %v", got, want)
	}
	it.SeekGE(ik("b", keys.MaxSeq))
	if !it.Valid() || string(keys.InternalKey(it.Key()).UserKey()) != "c" {
		t.Errorf("SeekGE(b) landed on %q", it.Key())
	}
	it.SeekToLast()
	if string(it.Value()) != "5" {
		t.Errorf("SeekToLast value = %q", it.Value())
	}
	it.Prev()
	if string(it.Value()) != "3" {
		t.Errorf("Prev value = %q", it.Value())
	}
}

func TestEmptyIterator(t *testing.T) {
	it := Empty(nil)
	it.SeekToFirst()
	if it.Valid() {
		t.Error("empty iterator is valid")
	}
	if err := it.Close(); err != nil {
		t.Errorf("Close: %v", err)
	}
}

func TestMergingInterleaves(t *testing.T) {
	a := NewSlice(icmp.Compare, pairs("a", "1", "d", "4", "g", "7"))
	b := NewSlice(icmp.Compare, pairs("b", "2", "e", "5"))
	c := NewSlice(icmp.Compare, pairs("c", "3", "f", "6"))
	m := NewMerging(icmp.Compare, a, b, c)
	got := collect(t, m)
	want := []string{"a=1", "b=2", "c=3", "d=4", "e=5", "f=6", "g=7"}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Errorf("got %v want %v", got, want)
	}
}

func TestMergingVersionOrder(t *testing.T) {
	// Same user key in two children with different sequences: newer first.
	newSrc := NewSlice(icmp.Compare, []KV{{K: ik("k", 9), V: []byte("new")}})
	oldSrc := NewSlice(icmp.Compare, []KV{{K: ik("k", 3), V: []byte("old")}})
	m := NewMerging(icmp.Compare, oldSrc, newSrc) // child order should not matter
	m.SeekToFirst()
	if string(m.Value()) != "new" {
		t.Errorf("first version = %q, want new", m.Value())
	}
	m.Next()
	if string(m.Value()) != "old" {
		t.Errorf("second version = %q, want old", m.Value())
	}
	m.Next()
	if m.Valid() {
		t.Error("expected exhaustion")
	}
}

func TestMergingSeekGE(t *testing.T) {
	a := NewSlice(icmp.Compare, pairs("a", "1", "e", "5"))
	b := NewSlice(icmp.Compare, pairs("c", "3", "g", "7"))
	m := NewMerging(icmp.Compare, a, b)
	m.SeekGE(ik("d", keys.MaxSeq))
	if !m.Valid() || string(keys.InternalKey(m.Key()).UserKey()) != "e" {
		t.Fatalf("SeekGE(d) landed on %q", m.Key())
	}
	m.SeekGE(ik("z", keys.MaxSeq))
	if m.Valid() {
		t.Error("SeekGE(z) should exhaust")
	}
}

func TestMergingReverse(t *testing.T) {
	a := NewSlice(icmp.Compare, pairs("a", "1", "d", "4"))
	b := NewSlice(icmp.Compare, pairs("b", "2", "c", "3"))
	m := NewMerging(icmp.Compare, a, b)
	var got []string
	for m.SeekToLast(); m.Valid(); m.Prev() {
		got = append(got, string(keys.InternalKey(m.Key()).UserKey()))
	}
	want := []string{"d", "c", "b", "a"}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Errorf("reverse got %v want %v", got, want)
	}
}

func TestMergingDirectionSwitch(t *testing.T) {
	a := NewSlice(icmp.Compare, pairs("a", "1", "c", "3", "e", "5"))
	b := NewSlice(icmp.Compare, pairs("b", "2", "d", "4", "f", "6"))
	m := NewMerging(icmp.Compare, a, b)
	m.SeekToFirst() // a
	m.Next()        // b
	m.Next()        // c
	m.Prev()        // back to b
	if string(keys.InternalKey(m.Key()).UserKey()) != "b" {
		t.Fatalf("after fwd-then-prev, at %q", keys.InternalKey(m.Key()).UserKey())
	}
	m.Prev() // a
	if string(keys.InternalKey(m.Key()).UserKey()) != "a" {
		t.Fatalf("at %q want a", keys.InternalKey(m.Key()).UserKey())
	}
	m.Next() // b again (reverse->forward switch)
	if string(keys.InternalKey(m.Key()).UserKey()) != "b" {
		t.Fatalf("after prev-then-next, at %q want b", keys.InternalKey(m.Key()).UserKey())
	}
}

// TestMergingQuickAgainstSorted fuzzes the merging iterator against a flat
// sort of the same data.
func TestMergingQuickAgainstSorted(t *testing.T) {
	f := func(seed int64, nSrc uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(nSrc%5) + 1
		var all []KV
		var children []Iterator
		seq := keys.Seq(1)
		for i := 0; i < n; i++ {
			var p []KV
			for j := 0; j < rng.Intn(20); j++ {
				k := ik(fmt.Sprintf("%03d", rng.Intn(50)), seq)
				seq++
				p = append(p, KV{K: k, V: []byte{byte(i)}})
			}
			sort.Slice(p, func(x, y int) bool { return icmp.Compare(p[x].K, p[y].K) < 0 })
			all = append(all, p...)
			children = append(children, NewSlice(icmp.Compare, p))
		}
		sort.Slice(all, func(x, y int) bool { return icmp.Compare(all[x].K, all[y].K) < 0 })
		m := NewMerging(icmp.Compare, children...)
		i := 0
		for m.SeekToFirst(); m.Valid(); m.Next() {
			if i >= len(all) || !bytes.Equal(m.Key(), all[i].K) {
				return false
			}
			i++
		}
		return i == len(all)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestClampedBasics(t *testing.T) {
	src := NewSlice(icmp.Compare, pairs("a", "1", "b", "2", "c", "3", "d", "4", "e", "5"))
	cl := NewClamped(keys.BytewiseComparer{}, src, keys.KeyRange{Lo: []byte("b"), Hi: []byte("d")})
	got := collect(t, cl)
	want := []string{"b=2", "c=3", "d=4"}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Errorf("got %v want %v", got, want)
	}
}

func TestClampedSeekBelowAndAbove(t *testing.T) {
	src := NewSlice(icmp.Compare, pairs("a", "1", "b", "2", "c", "3", "d", "4"))
	cl := NewClamped(keys.BytewiseComparer{}, src, keys.KeyRange{Lo: []byte("b"), Hi: []byte("c")})
	cl.SeekGE(ik("a", keys.MaxSeq))
	if !cl.Valid() || string(keys.InternalKey(cl.Key()).UserKey()) != "b" {
		t.Errorf("SeekGE below window landed on %q", cl.Key())
	}
	cl.SeekGE(ik("d", keys.MaxSeq))
	if cl.Valid() {
		t.Error("SeekGE above window should be invalid")
	}
}

func TestClampedSeekToLast(t *testing.T) {
	src := NewSlice(icmp.Compare, pairs("a", "1", "b", "2", "d", "4", "e", "5"))
	cl := NewClamped(keys.BytewiseComparer{}, src, keys.KeyRange{Lo: []byte("b"), Hi: []byte("c")})
	cl.SeekToLast()
	if !cl.Valid() || string(keys.InternalKey(cl.Key()).UserKey()) != "b" {
		t.Errorf("SeekToLast landed on %v", cl.Valid())
	}
	// Window whose Hi matches an existing key.
	cl2 := NewClamped(keys.BytewiseComparer{}, NewSlice(icmp.Compare, pairs("a", "1", "b", "2", "d", "4")), keys.KeyRange{Lo: []byte("a"), Hi: []byte("d")})
	cl2.SeekToLast()
	if !cl2.Valid() || string(keys.InternalKey(cl2.Key()).UserKey()) != "d" {
		t.Error("SeekToLast with Hi on existing key failed")
	}
}

func TestClampedReverse(t *testing.T) {
	src := NewSlice(icmp.Compare, pairs("a", "1", "b", "2", "c", "3", "d", "4", "e", "5"))
	cl := NewClamped(keys.BytewiseComparer{}, src, keys.KeyRange{Lo: []byte("b"), Hi: []byte("d")})
	var got []string
	for cl.SeekToLast(); cl.Valid(); cl.Prev() {
		got = append(got, string(keys.InternalKey(cl.Key()).UserKey()))
	}
	want := []string{"d", "c", "b"}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Errorf("got %v want %v", got, want)
	}
}

func TestClampedInsideMerging(t *testing.T) {
	// A slice view of a "frozen file" merged with a base file, as LDC reads do.
	frozen := NewSlice(icmp.Compare, []KV{
		{K: ik("b", 10), V: []byte("newB")},
		{K: ik("x", 10), V: []byte("outside")},
	})
	slice := NewClamped(keys.BytewiseComparer{}, frozen, keys.KeyRange{Lo: []byte("a"), Hi: []byte("c")})
	base := NewSlice(icmp.Compare, []KV{
		{K: ik("a", 1), V: []byte("a1")},
		{K: ik("b", 1), V: []byte("oldB")},
		{K: ik("c", 1), V: []byte("c1")},
	})
	m := NewMerging(icmp.Compare, slice, base)
	var got []string
	for m.SeekToFirst(); m.Valid(); m.Next() {
		got = append(got, string(keys.InternalKey(m.Key()).UserKey())+"="+string(m.Value()))
	}
	want := []string{"a=a1", "b=newB", "b=oldB", "c=c1"}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Errorf("got %v want %v", got, want)
	}
}
