// Package iterator defines the iterator contract shared by memtables,
// SSTables, and the merged read path, plus the combinators the store is
// assembled from: a merging (n-way) iterator, a clamping iterator used to
// expose LDC slices as bounded views of frozen SSTables, and small utility
// iterators.
//
// All iterators in the store traverse *internal* keys (see package keys) in
// the internal ordering: user key ascending, sequence descending.
package iterator

// Iterator is the uniform cursor interface. Positioning methods leave the
// iterator either on a valid entry or invalid (past either end). Key and
// Value may only be called while Valid, and the returned slices are only
// guaranteed until the next positioning call.
type Iterator interface {
	// Valid reports whether the iterator is positioned on an entry.
	Valid() bool
	// SeekGE positions at the first entry with key >= target.
	SeekGE(target []byte)
	// SeekToFirst positions at the first entry.
	SeekToFirst()
	// SeekToLast positions at the last entry.
	SeekToLast()
	// Next advances; calling it on an invalid iterator is a no-op.
	Next()
	// Prev retreats; calling it on an invalid iterator is a no-op.
	Prev()
	// Key returns the current internal key.
	Key() []byte
	// Value returns the current value.
	Value() []byte
	// Error returns the first error encountered, if any. Iterators with a
	// pending error report Valid() == false.
	Error() error
	// Close releases resources. The iterator must not be used afterwards.
	Close() error
}

// Empty returns an iterator over nothing, optionally carrying err.
func Empty(err error) Iterator { return &emptyIter{err: err} }

type emptyIter struct{ err error }

func (e *emptyIter) Valid() bool   { return false }
func (e *emptyIter) SeekGE([]byte) {}
func (e *emptyIter) SeekToFirst()  {}
func (e *emptyIter) SeekToLast()   {}
func (e *emptyIter) Next()         {}
func (e *emptyIter) Prev()         {}
func (e *emptyIter) Key() []byte   { return nil }
func (e *emptyIter) Value() []byte { return nil }
func (e *emptyIter) Error() error  { return e.err }
func (e *emptyIter) Close() error  { return e.err }
