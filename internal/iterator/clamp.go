package iterator

import "repro/internal/keys"

// NewClamped restricts child to internal keys whose *user key* lies in the
// inclusive range r. This is how an LDC slice is materialized: a frozen
// SSTable's iterator clamped to the key range the slice was linked with.
// Closing the clamped iterator closes the child.
func NewClamped(ucmp keys.Comparer, child Iterator, r keys.KeyRange) Iterator {
	return &clampIter{ucmp: ucmp, child: child, r: r}
}

type clampIter struct {
	ucmp  keys.Comparer
	child Iterator
	r     keys.KeyRange
	valid bool
}

func (c *clampIter) inRange() bool {
	uk := keys.InternalKey(c.child.Key()).UserKey()
	return c.ucmp.Compare(uk, c.r.Lo) >= 0 && c.ucmp.Compare(uk, c.r.Hi) <= 0
}

// settle updates validity after a positioning call; the child may be on a
// key outside the clamp window, in which case the iterator is invalid.
func (c *clampIter) settle() {
	c.valid = c.child.Valid() && c.inRange()
}

func (c *clampIter) Valid() bool { return c.valid }

func (c *clampIter) SeekGE(target []byte) {
	uk := keys.InternalKey(target).UserKey()
	if c.ucmp.Compare(uk, c.r.Lo) < 0 {
		// Target below the window: start at the window's first key. A search
		// key with MaxSeq positions before every version of Lo.
		c.child.SeekGE(keys.MakeSearchKey(nil, c.r.Lo, keys.MaxSeq))
	} else {
		c.child.SeekGE(target)
	}
	c.settle()
}

func (c *clampIter) SeekToFirst() {
	c.child.SeekGE(keys.MakeSearchKey(nil, c.r.Lo, keys.MaxSeq))
	c.settle()
}

func (c *clampIter) SeekToLast() {
	// Position after every version of Hi, then step back.
	c.child.SeekGE(keys.MakeInternalKey(nil, c.r.Hi, 0, keys.KindDelete))
	if c.child.Valid() {
		if c.ucmp.Compare(keys.InternalKey(c.child.Key()).UserKey(), c.r.Hi) == 0 {
			// Landed on the oldest version of Hi itself — still in range.
			c.settle()
			return
		}
		c.child.Prev()
	} else {
		c.child.SeekToLast()
	}
	c.settle()
}

func (c *clampIter) Next() {
	if !c.valid {
		return
	}
	c.child.Next()
	c.settle()
}

func (c *clampIter) Prev() {
	if !c.valid {
		return
	}
	c.child.Prev()
	c.settle()
}

func (c *clampIter) Key() []byte   { return c.child.Key() }
func (c *clampIter) Value() []byte { return c.child.Value() }
func (c *clampIter) Error() error  { return c.child.Error() }
func (c *clampIter) Close() error  { return c.child.Close() }
