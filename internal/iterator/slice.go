package iterator

import "sort"

// KV is an in-memory key/value pair for slice-backed iterators.
type KV struct {
	K, V []byte
}

// NewSlice returns an iterator over pairs, which must already be sorted by
// cmp. It is used in tests and by small in-memory merge steps.
func NewSlice(cmp CompareFunc, pairs []KV) Iterator {
	return &sliceIter{cmp: cmp, pairs: pairs, pos: -1}
}

type sliceIter struct {
	cmp   CompareFunc
	pairs []KV
	pos   int
}

func (s *sliceIter) Valid() bool { return s.pos >= 0 && s.pos < len(s.pairs) }

func (s *sliceIter) SeekGE(target []byte) {
	s.pos = sort.Search(len(s.pairs), func(i int) bool {
		return s.cmp(s.pairs[i].K, target) >= 0
	})
}

func (s *sliceIter) SeekToFirst() { s.pos = 0 }
func (s *sliceIter) SeekToLast()  { s.pos = len(s.pairs) - 1 }

func (s *sliceIter) Next() {
	if s.pos < len(s.pairs) {
		s.pos++
	}
}

func (s *sliceIter) Prev() {
	if s.pos >= 0 {
		s.pos--
	}
}

func (s *sliceIter) Key() []byte   { return s.pairs[s.pos].K }
func (s *sliceIter) Value() []byte { return s.pairs[s.pos].V }
func (s *sliceIter) Error() error  { return nil }
func (s *sliceIter) Close() error  { return nil }
