package iterator

import (
	"container/heap"
	"sync"
)

// CompareFunc orders internal keys (see keys.InternalComparer).
type CompareFunc func(a, b []byte) int

var mergingPool = sync.Pool{New: func() interface{} { return new(mergingIter) }}

// NewMerging returns an iterator yielding the union of the children in
// sorted order. Children with equal keys are yielded in child order, so
// callers should list newer sources first (the store never produces equal
// internal keys across sources, but the tie rule keeps behaviour defined).
// Closing the merging iterator closes every child and recycles the iterator
// (they are pooled), so it must not be used after Close.
func NewMerging(cmp CompareFunc, children ...Iterator) Iterator {
	switch len(children) {
	case 0:
		return Empty(nil)
	case 1:
		return children[0]
	}
	m := mergingPool.Get().(*mergingIter)
	m.cmp = cmp
	m.children = append(m.children[:0], children...)
	m.heap.m = m
	m.heap.idx = m.heap.idx[:0]
	m.dir = forward
	m.err = nil
	m.closed = false
	return m
}

type direction int8

const (
	forward direction = iota
	reverse
)

type mergingIter struct {
	cmp      CompareFunc
	children []Iterator
	// heap holds the indexes of valid children, ordered by current key
	// (min-heap when dir==forward, max-heap when dir==reverse).
	heap   mergeHeap
	dir    direction
	err    error
	closed bool
}

type mergeHeap struct {
	m   *mergingIter
	idx []int
}

func (h *mergeHeap) Len() int { return len(h.idx) }
func (h *mergeHeap) Less(i, j int) bool {
	a, b := h.m.children[h.idx[i]], h.m.children[h.idx[j]]
	r := h.m.cmp(a.Key(), b.Key())
	if r == 0 {
		// Stable tie-break on child position; reversed in reverse mode so the
		// same child wins from both directions.
		if h.m.dir == forward {
			return h.idx[i] < h.idx[j]
		}
		return h.idx[i] > h.idx[j]
	}
	if h.m.dir == forward {
		return r < 0
	}
	return r > 0
}
func (h *mergeHeap) Swap(i, j int)      { h.idx[i], h.idx[j] = h.idx[j], h.idx[i] }
func (h *mergeHeap) Push(x interface{}) { h.idx = append(h.idx, x.(int)) }
func (h *mergeHeap) Pop() interface{} {
	x := h.idx[len(h.idx)-1]
	h.idx = h.idx[:len(h.idx)-1]
	return x
}

func (m *mergingIter) rebuild() {
	m.heap.idx = m.heap.idx[:0]
	for i, c := range m.children {
		if c.Valid() {
			m.heap.idx = append(m.heap.idx, i)
		} else if err := c.Error(); err != nil && m.err == nil {
			m.err = err
		}
	}
	heap.Init(&m.heap)
}

func (m *mergingIter) Valid() bool { return m.err == nil && len(m.heap.idx) > 0 }

func (m *mergingIter) SeekGE(target []byte) {
	m.dir = forward
	for _, c := range m.children {
		c.SeekGE(target)
	}
	m.rebuild()
}

func (m *mergingIter) SeekToFirst() {
	m.dir = forward
	for _, c := range m.children {
		c.SeekToFirst()
	}
	m.rebuild()
}

func (m *mergingIter) SeekToLast() {
	m.dir = reverse
	for _, c := range m.children {
		c.SeekToLast()
	}
	m.rebuild()
}

func (m *mergingIter) top() Iterator { return m.children[m.heap.idx[0]] }

func (m *mergingIter) Next() {
	if !m.Valid() {
		return
	}
	if m.dir == reverse {
		// Direction switch: reposition every non-current child at the first
		// key strictly greater than the current key, then rebuild the heap
		// (children that fell out of it while reversing may be valid again).
		key := append([]byte(nil), m.top().Key()...)
		cur := m.heap.idx[0]
		m.dir = forward
		for i, c := range m.children {
			if i == cur {
				continue
			}
			c.SeekGE(key)
			if c.Valid() && m.cmp(c.Key(), key) == 0 {
				c.Next()
			}
		}
		m.children[cur].Next()
		m.rebuild()
		return
	}
	m.top().Next()
	if m.top().Valid() {
		heap.Fix(&m.heap, 0)
	} else {
		if err := m.top().Error(); err != nil && m.err == nil {
			m.err = err
		}
		heap.Pop(&m.heap)
	}
}

func (m *mergingIter) Prev() {
	if !m.Valid() {
		return
	}
	if m.dir == forward {
		// Direction switch: every non-current child moves to the last key
		// strictly less than the current key.
		key := append([]byte(nil), m.top().Key()...)
		cur := m.heap.idx[0]
		m.dir = reverse
		for i, c := range m.children {
			if i == cur {
				continue
			}
			c.SeekGE(key)
			if c.Valid() {
				c.Prev() // step before key
			} else {
				c.SeekToLast() // all keys < key
			}
		}
		m.children[cur].Prev()
		m.rebuild()
		return
	}
	m.top().Prev()
	if m.top().Valid() {
		heap.Fix(&m.heap, 0)
	} else {
		if err := m.top().Error(); err != nil && m.err == nil {
			m.err = err
		}
		heap.Pop(&m.heap)
	}
}

func (m *mergingIter) Key() []byte   { return m.top().Key() }
func (m *mergingIter) Value() []byte { return m.top().Value() }

func (m *mergingIter) Error() error {
	if m.err != nil {
		return m.err
	}
	for _, c := range m.children {
		if err := c.Error(); err != nil {
			return err
		}
	}
	return nil
}

// Close closes every child and returns the iterator to the pool.
// Double-Close is tolerated (the second call is a no-op); any other use
// after Close is invalid.
func (m *mergingIter) Close() error {
	err := m.Error()
	if m.closed {
		return err
	}
	m.closed = true
	for _, c := range m.children {
		if cerr := c.Close(); cerr != nil && err == nil {
			err = cerr
		}
	}
	m.children = m.children[:0]
	m.heap.idx = m.heap.idx[:0]
	m.err = nil
	mergingPool.Put(m)
	return err
}
