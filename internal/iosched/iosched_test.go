package iosched

// The limiter tests are fully deterministic: a fake clock replaces Now and
// the waker's sleep is replaced by a step-channel hook, so virtual time
// advances only when the test says so. Real time never influences grants.

import (
	"sync"
	"testing"
	"time"
)

type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func newFakeClock() *fakeClock {
	return &fakeClock{t: time.Unix(1000, 0)}
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

// newTestLimiter builds a limiter on a fake clock whose waker only advances
// virtual time when the test sends (or closes) step.
func newTestLimiter(opts Options) (*Limiter, *fakeClock, chan struct{}) {
	clock := newFakeClock()
	opts.Now = clock.Now
	l := New(opts)
	step := make(chan struct{})
	l.sleepFor = func(d time.Duration) {
		<-step
		clock.advance(d)
	}
	return l, clock, step
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(100 * time.Microsecond)
	}
}

func TestNilLimiterIsSafeAndDisabled(t *testing.T) {
	var l *Limiter
	if l.Enabled() {
		t.Fatal("nil limiter reports enabled")
	}
	l.Wait(TierFlush, 1024) // must not panic
	l.Close()
	if m := l.Metrics(); m.ChargedBytes[TierFlush] != 0 {
		t.Fatalf("nil limiter metrics = %+v, want zero", m)
	}
}

func TestDisabledLimiterAccountsWithoutBlocking(t *testing.T) {
	l := New(Options{}) // BytesPerSec 0 → accounting only
	defer l.Close()
	if l.Enabled() {
		t.Fatal("zero-rate limiter reports enabled")
	}
	done := make(chan struct{})
	go func() {
		for i := 0; i < 100; i++ {
			l.Wait(TierMerge, 1<<20)
		}
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("disabled limiter blocked Wait")
	}
	m := l.Metrics()
	if got := m.ChargedBytes[TierMerge]; got != 100<<20 {
		t.Fatalf("ChargedBytes[merge] = %d, want %d", got, 100<<20)
	}
	if m.ThrottledWaits != 0 {
		t.Fatalf("ThrottledWaits = %d, want 0", m.ThrottledWaits)
	}
}

func TestFastPathWithinBurst(t *testing.T) {
	l, _, step := newTestLimiter(Options{BytesPerSec: 1000, Burst: 1000})
	defer close(step)
	defer l.Close()
	if !l.Enabled() {
		t.Fatal("limiter with rate not enabled")
	}
	l.Wait(TierMerge, 600) // bucket starts full: no queueing
	m := l.Metrics()
	if m.ThrottledWaits != 0 {
		t.Fatalf("ThrottledWaits = %d, want 0 (burst should absorb)", m.ThrottledWaits)
	}
	if m.ChargedBytes[TierMerge] != 600 {
		t.Fatalf("ChargedBytes[merge] = %d, want 600", m.ChargedBytes[TierMerge])
	}
}

func TestOversizedRequestClampsToBurst(t *testing.T) {
	l, _, step := newTestLimiter(Options{BytesPerSec: 1000, Burst: 1000})
	defer close(step)
	defer l.Close()
	done := make(chan struct{})
	go func() {
		l.Wait(TierFlush, 5000) // > burst: clamped, admitted at full bucket
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("oversized request never admitted")
	}
	if m := l.Metrics(); m.ChargedBytes[TierFlush] != 5000 {
		t.Fatalf("ChargedBytes[flush] = %d, want 5000 (full size accounted)", m.ChargedBytes[TierFlush])
	}
}

// TestFlushPreemptsQueuedMerge drains the bucket, queues a merge then a
// flush, and releases exactly one refill: the flush must be granted first
// even though the merge arrived earlier, and the jump must be counted as a
// preemption.
func TestFlushPreemptsQueuedMerge(t *testing.T) {
	l, _, step := newTestLimiter(Options{BytesPerSec: 1000, Burst: 1000})
	defer l.Close()
	defer close(step)

	l.Wait(TierFlush, 1000) // drain the full bucket via the fast path

	mergeDone := make(chan struct{})
	go func() {
		l.Wait(TierMerge, 500)
		close(mergeDone)
	}()
	waitFor(t, "merge queued", func() bool { return l.Metrics().QueueDepth[TierMerge] == 1 })

	flushDone := make(chan struct{})
	go func() {
		l.Wait(TierFlush, 500)
		close(flushDone)
	}()
	waitFor(t, "flush queued", func() bool { return l.Metrics().QueueDepth[TierFlush] == 1 })

	// One step = one waker round: the sleep's virtual duration (the head's
	// token deficit, 500ms at 1000 B/s) refills exactly 500 tokens — enough
	// for one grant, and priority says it goes to the flush.
	step <- struct{}{}
	select {
	case <-flushDone:
	case <-time.After(5 * time.Second):
		t.Fatal("flush not granted after refill")
	}
	select {
	case <-mergeDone:
		t.Fatal("merge granted before flush with only one refill of tokens")
	default:
	}
	m := l.Metrics()
	if m.QueueDepth[TierMerge] != 1 {
		t.Fatalf("QueueDepth[merge] = %d, want 1 (still waiting)", m.QueueDepth[TierMerge])
	}
	if m.Preemptions < 1 {
		t.Fatalf("Preemptions = %d, want >= 1", m.Preemptions)
	}
	if m.ThrottledWaits != 2 {
		t.Fatalf("ThrottledWaits = %d, want 2", m.ThrottledWaits)
	}

	step <- struct{}{} // second refill serves the merge
	select {
	case <-mergeDone:
	case <-time.After(5 * time.Second):
		t.Fatal("merge never granted")
	}
	if tt := l.Metrics().ThrottleTime; tt < time.Second {
		t.Fatalf("ThrottleTime = %v, want >= 1s of virtual queueing", tt)
	}
}

// TestAgingPromotesStarvedMerge ages a queued merge past its bound, then
// offers a flush: the promoted merge (older arrival at equal effective
// priority) wins the only grant the bucket can cover.
func TestAgingPromotesStarvedMerge(t *testing.T) {
	l, clock, step := newTestLimiter(Options{
		BytesPerSec: 1000,
		Burst:       1000,
		MergeAging:  10 * time.Second,
	})
	defer l.Close()
	defer close(step)

	l.Wait(TierFlush, 1000) // drain

	mergeDone := make(chan struct{})
	go func() {
		l.Wait(TierMerge, 800)
		close(mergeDone)
	}()
	waitFor(t, "merge queued", func() bool { return l.Metrics().QueueDepth[TierMerge] == 1 })

	// Age the merge far past its bound; the refill this implies (20s at
	// 1000 B/s, capped at burst) covers exactly one 800-byte grant.
	clock.advance(20 * time.Second)

	flushDone := make(chan struct{})
	go func() {
		l.Wait(TierFlush, 800)
		close(flushDone)
	}()
	select {
	case <-mergeDone:
	case <-time.After(5 * time.Second):
		t.Fatal("aged merge not promoted ahead of flush")
	}
	select {
	case <-flushDone:
		t.Fatal("flush granted alongside merge: bucket cannot cover both")
	default:
	}

	step <- struct{}{} // refill the flush's remaining deficit
	select {
	case <-flushDone:
	case <-time.After(5 * time.Second):
		t.Fatal("flush never granted")
	}
}

func TestCloseReleasesQueuedWaiters(t *testing.T) {
	l, _, step := newTestLimiter(Options{BytesPerSec: 1000, Burst: 1000})
	defer close(step)

	l.Wait(TierFlush, 1000) // drain

	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			l.Wait(TierMerge, 500)
		}()
	}
	waitFor(t, "waiters queued", func() bool { return l.Metrics().QueueDepth[TierMerge] == 4 })

	l.Close()
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Close did not release queued waiters")
	}
	if d := l.Metrics().QueueDepth[TierMerge]; d != 0 {
		t.Fatalf("QueueDepth[merge] = %d after Close, want 0", d)
	}
	l.Wait(TierMerge, 500) // post-Close waits never block
	l.Close()              // idempotent
}

func TestTierStrings(t *testing.T) {
	for tier, want := range map[Tier]string{
		TierFlush: "flush", TierL0: "l0", TierMerge: "merge", Tier(9): "unknown",
	} {
		if got := tier.String(); got != want {
			t.Errorf("Tier(%d).String() = %q, want %q", tier, got, want)
		}
	}
}
