// Package iosched rate-limits and prioritizes background (compaction-class)
// I/O so that it cannot brown out foreground operations. The paper's LDC
// design reduces *how much* compaction I/O happens; this package controls
// *when* it happens, which is what governs foreground tail latency (vLSM's
// observation: P99.9 in LSM stores is compaction interference, not medians).
//
// The model is a single token bucket shared by every background writer in
// the process — one bucket per DB, across all shards, because the simulated
// (and any real) SSD is one shared device: per-shard buckets would let N
// shards jointly issue N× the configured rate. Writers charge the bucket
// per block written via Wait(tier, n); when tokens run short they queue and
// are granted strictly by priority:
//
//	TierFlush  — memtable flushes; blocking these blocks writers directly.
//	TierL0     — L0→L1 compactions; L0 depth drives the write throttle.
//	TierMerge  — LDC lower-level merges; deferrable background debt.
//
// A low tier cannot starve forever: after a configurable aging bound a
// waiter is promoted to flush priority (its arrival order then breaks the
// tie, so promoted work drains in FIFO order among the promoted).
//
// The limiter is nil-safe and cheap when disabled (rate <= 0): it then only
// keeps per-tier byte accounting, taking the mutex once per block.
package iosched

import (
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/invariants"
)

// Tier orders background I/O classes by priority; lower value = served
// first.
type Tier int

const (
	// TierFlush is memtable-flush I/O: highest priority, since a blocked
	// flush backs up into the commit pipeline's stop state.
	TierFlush Tier = iota
	// TierL0 is L0→L1 compaction I/O: draining L0 lifts the write throttle.
	TierL0
	// TierMerge is LDC lower-level merge I/O: pure background debt.
	TierMerge

	// NumTiers sizes per-tier arrays.
	NumTiers = 3
)

// String names the tier for stats and logs.
func (t Tier) String() string {
	switch t {
	case TierFlush:
		return "flush"
	case TierL0:
		return "l0"
	case TierMerge:
		return "merge"
	}
	return "unknown"
}

// Options configures a Limiter.
type Options struct {
	// BytesPerSec is the sustained background write budget. <= 0 disables
	// throttling (the limiter still counts charged bytes per tier).
	BytesPerSec int64
	// Burst caps accumulated idle tokens; a request larger than Burst is
	// clamped to it (it admits once the bucket is full). 0 defaults to
	// max(1 MiB, BytesPerSec/8).
	Burst int64
	// L0Aging and MergeAging bound starvation: a waiter older than its
	// tier's bound is promoted to flush priority. Zero defaults to 500ms
	// and 2s respectively.
	L0Aging    time.Duration
	MergeAging time.Duration
	// Now injects a monotonic clock for tests; nil uses time.Now.
	Now func() time.Time
}

// Metrics is a point-in-time snapshot of limiter activity.
type Metrics struct {
	// ChargedBytes counts bytes charged per tier (accounted even when
	// throttling is disabled).
	ChargedBytes [NumTiers]int64
	// ThrottledWaits counts Wait calls that had to queue.
	ThrottledWaits int64
	// ThrottleTime is the cumulative time Wait calls spent queued.
	ThrottleTime time.Duration
	// Preemptions counts grants that jumped ahead of an older waiter of a
	// lower-priority tier.
	Preemptions int64
	// QueueDepth is the current number of queued waiters per tier.
	QueueDepth [NumTiers]int64
}

// waiter is one queued Wait call.
type waiter struct {
	tier    Tier
	bytes   float64
	seq     uint64
	since   time.Time
	granted bool
}

// Limiter is a shared, prioritized token bucket. The zero value is not
// usable; construct with New. A nil *Limiter is valid and disabled.
type Limiter struct {
	rate  float64 // tokens (bytes) per second; <= 0 disables throttling
	burst float64
	aging [NumTiers]time.Duration
	now   func() time.Time

	//ldclint:lockrank iosched.limiter.mu 75
	mu     invariants.Mutex
	cond   *sync.Cond
	tokens float64
	last   time.Time // last refill instant
	seq    uint64
	queue  []*waiter
	closed bool

	wakerRunning bool
	wakeCh       chan struct{}
	closeCh      chan struct{}

	// sleepFor is the waker's interruptible sleep; tests replace it to
	// drive the clock deterministically.
	sleepFor func(d time.Duration)

	charged       [NumTiers]atomic.Int64
	throttled     atomic.Int64
	throttleNanos atomic.Int64
	preemptions   atomic.Int64
	depth         [NumTiers]atomic.Int64
}

// New builds a Limiter from opts, applying defaults. A zero Options value
// yields a disabled (accounting-only) limiter.
func New(opts Options) *Limiter {
	l := &Limiter{
		rate:    float64(opts.BytesPerSec),
		now:     opts.Now,
		wakeCh:  make(chan struct{}, 1),
		closeCh: make(chan struct{}),
	}
	if l.now == nil {
		l.now = time.Now
	}
	burst := opts.Burst
	if burst <= 0 {
		burst = opts.BytesPerSec / 8
		if burst < 1<<20 {
			burst = 1 << 20
		}
	}
	l.burst = float64(burst)
	l.aging[TierFlush] = 0 // already top priority; unused
	l.aging[TierL0] = opts.L0Aging
	if l.aging[TierL0] <= 0 {
		l.aging[TierL0] = 500 * time.Millisecond
	}
	l.aging[TierMerge] = opts.MergeAging
	if l.aging[TierMerge] <= 0 {
		l.aging[TierMerge] = 2 * time.Second
	}
	l.mu.Rank("iosched.limiter.mu", 75)
	l.cond = sync.NewCond(&l.mu)
	l.tokens = l.burst // start full: no throttling until the budget is spent
	l.last = l.now()
	l.sleepFor = l.sleepReal
	return l
}

// Enabled reports whether the limiter actually throttles (non-nil with a
// positive rate).
func (l *Limiter) Enabled() bool { return l != nil && l.rate > 0 }

// Wait charges n bytes at the given tier, blocking until the bucket can
// cover them (in priority order among waiters). It is a no-op on a nil
// limiter and never blocks when throttling is disabled or the limiter is
// closed. Wait must not be called while holding locks that foreground
// operations take — it can sleep for (n / rate) seconds.
func (l *Limiter) Wait(tier Tier, n int) {
	if l == nil || n <= 0 {
		return
	}
	l.charged[tier].Add(int64(n))
	if l.rate <= 0 {
		return
	}
	need := float64(n)
	if need > l.burst {
		// A request larger than the bucket can never be satisfied whole;
		// admit it at full burst (Validate rejects bursts below a block).
		need = l.burst
	}

	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return
	}
	l.refillLocked()
	if len(l.queue) == 0 && l.tokens >= need {
		l.tokens -= need
		l.mu.Unlock()
		return
	}

	w := &waiter{tier: tier, bytes: need, seq: l.seq, since: l.now()}
	l.seq++
	l.queue = append(l.queue, w)
	l.depth[tier].Add(1)
	l.grantLocked() // tokens may cover us (or a higher-priority peer) already
	if !w.granted && !l.closed {
		l.throttled.Add(1)
		start := l.now()
		l.ensureWakerLocked()
		for !w.granted && !l.closed {
			l.cond.Wait()
		}
		l.throttleNanos.Add(int64(l.now().Sub(start)))
	}
	if !w.granted {
		// Closed while queued: release without charging tokens.
		l.removeLocked(w)
	}
	l.mu.Unlock()
}

// Close releases every queued waiter and disables future blocking. Charged
// bytes accounting remains valid after Close.
func (l *Limiter) Close() {
	if l == nil {
		return
	}
	l.mu.Lock()
	if !l.closed {
		l.closed = true
		close(l.closeCh)
		l.cond.Broadcast()
	}
	l.mu.Unlock()
}

// Metrics snapshots the limiter's counters. Safe on a nil limiter.
func (l *Limiter) Metrics() Metrics {
	var m Metrics
	if l == nil {
		return m
	}
	for i := 0; i < NumTiers; i++ {
		m.ChargedBytes[i] = l.charged[i].Load()
		m.QueueDepth[i] = l.depth[i].Load()
	}
	m.ThrottledWaits = l.throttled.Load()
	m.ThrottleTime = time.Duration(l.throttleNanos.Load())
	m.Preemptions = l.preemptions.Load()
	return m
}

// refillLocked accrues tokens for the time since the last refill.
func (l *Limiter) refillLocked() {
	now := l.now()
	if dt := now.Sub(l.last); dt > 0 {
		l.tokens += l.rate * dt.Seconds()
		if l.tokens > l.burst {
			l.tokens = l.burst
		}
	}
	l.last = now
}

// effTier is the waiter's priority after aging: a waiter past its tier's
// aging bound competes at flush priority (ties broken by arrival order).
func (l *Limiter) effTier(w *waiter, now time.Time) Tier {
	if w.tier == TierFlush {
		return TierFlush
	}
	if now.Sub(w.since) >= l.aging[w.tier] {
		return TierFlush
	}
	return w.tier
}

// headLocked returns the highest-priority ungranted waiter: minimum
// (effective tier, seq).
func (l *Limiter) headLocked(now time.Time) *waiter {
	var best *waiter
	var bestTier Tier
	for _, w := range l.queue {
		if w.granted {
			continue
		}
		et := l.effTier(w, now)
		if best == nil || et < bestTier || (et == bestTier && w.seq < best.seq) {
			best, bestTier = w, et
		}
	}
	return best
}

// grantLocked serves waiters in priority order while tokens last, counting
// a preemption whenever a grant bypasses an older ungranted waiter.
func (l *Limiter) grantLocked() {
	now := l.now()
	granted := false
	for {
		w := l.headLocked(now)
		if w == nil || l.tokens < w.bytes {
			break
		}
		l.tokens -= w.bytes
		w.granted = true
		for _, o := range l.queue {
			if !o.granted && o.seq < w.seq {
				l.preemptions.Add(1)
				break
			}
		}
		l.removeLocked(w)
		granted = true
	}
	if granted {
		l.cond.Broadcast()
	}
}

// removeLocked deletes w from the queue and its tier's depth gauge. It is
// idempotent per waiter because grant and close paths can both reach it.
func (l *Limiter) removeLocked(w *waiter) {
	for i, o := range l.queue {
		if o == w {
			l.queue = append(l.queue[:i], l.queue[i+1:]...)
			l.depth[w.tier].Add(-1)
			return
		}
	}
}

// ensureWakerLocked makes sure a waker goroutine is running (or nudges the
// running one) so queued waiters are granted as tokens accrue.
func (l *Limiter) ensureWakerLocked() {
	if l.wakerRunning {
		select {
		case l.wakeCh <- struct{}{}:
		default:
		}
		return
	}
	l.wakerRunning = true
	go l.waker()
}

// waker periodically refills the bucket and grants waiters. It runs only
// while the queue is non-empty, sleeping roughly the head waiter's token
// deficit each round.
func (l *Limiter) waker() {
	for {
		l.mu.Lock()
		if l.closed || len(l.queue) == 0 {
			l.wakerRunning = false
			l.mu.Unlock()
			return
		}
		l.refillLocked()
		l.grantLocked()
		var wait time.Duration
		if w := l.headLocked(l.now()); w != nil {
			deficit := w.bytes - l.tokens
			wait = time.Duration(deficit / l.rate * float64(time.Second))
			if wait < 50*time.Microsecond {
				wait = 50 * time.Microsecond
			}
			if wait > time.Second {
				wait = time.Second
			}
		}
		l.mu.Unlock()
		if wait > 0 {
			l.sleepFor(wait)
		}
	}
}

// sleepReal sleeps d or returns early on a nudge or Close.
func (l *Limiter) sleepReal(d time.Duration) {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
	case <-l.wakeCh:
	case <-l.closeCh:
	}
}
