// Package memtable implements C0 of the LSM-tree: an in-memory, sorted,
// append-only table over the skiplist, holding writes until they are flushed
// to a level-0 SSTable.
//
// Each entry is packed into a single buffer as
//
//	varint(len(internal key)) | internal key | varint(len(value)) | value
//
// and the skiplist stores the whole record; its comparison function decodes
// the leading internal key. Tombstones are entries with kind=KindDelete and
// an empty value.
package memtable

import (
	"sync/atomic"

	"repro/internal/encoding"
	"repro/internal/iterator"
	"repro/internal/keys"
	"repro/internal/skiplist"
)

// MemTable is safe for a single writer with concurrent readers, matching the
// skiplist contract; the DB serializes writers.
type MemTable struct {
	icmp keys.InternalComparer
	list *skiplist.List
	// approximateBytes includes per-entry encoding overhead.
	approximateBytes atomic.Int64
}

// New returns an empty memtable ordered by icmp.
func New(icmp keys.InternalComparer) *MemTable {
	m := &MemTable{icmp: icmp}
	m.list = skiplist.New(func(a, b []byte) int {
		ak, _ := decodeKey(a)
		bk, _ := decodeKey(b)
		return icmp.Compare(ak, bk)
	})
	return m
}

// decodeKey splits a packed record into its internal key and the remainder
// (the length-prefixed value).
func decodeKey(rec []byte) (ikey, rest []byte) {
	k, n := encoding.GetLengthPrefixed(rec)
	return k, rec[n:]
}

func decodeValue(rest []byte) []byte {
	v, _ := encoding.GetLengthPrefixed(rest)
	return v
}

// Add inserts a (ukey, value) entry with the given sequence and kind.
// For KindDelete, value is ignored and stored empty.
func (m *MemTable) Add(seq keys.Seq, kind keys.Kind, ukey, value []byte) {
	if kind == keys.KindDelete {
		value = nil
	}
	ikeyLen := len(ukey) + keys.TrailerLen
	rec := make([]byte, 0, encoding.UvarintLen(uint64(ikeyLen))+ikeyLen+
		encoding.UvarintLen(uint64(len(value)))+len(value))
	rec = encoding.PutUvarint(rec, uint64(ikeyLen))
	rec = keys.MakeInternalKey(rec, ukey, seq, kind)
	rec = encoding.PutLengthPrefixed(rec, value)
	m.list.Insert(rec)
	m.approximateBytes.Add(int64(len(rec)))
}

// Get looks up ukey at snapshot seq. It reports (value, true, nil) for a live
// entry, (nil, true, ErrDeleted-equivalent) semantics are avoided: instead it
// returns (nil, false, true) for "found a tombstone" via the deleted flag.
// found==false means the memtable has no visible version of ukey.
func (m *MemTable) Get(ukey []byte, seq keys.Seq) (value []byte, deleted, found bool) {
	value, kind, found := m.GetEntry(ukey, seq)
	return value, found && kind == keys.KindDelete, found
}

// GetEntry is Get with the entry kind exposed: under value separation the
// newest version may be a pointer entry (keys.KindBlobRef) whose payload the
// caller must resolve through the value log rather than return verbatim.
func (m *MemTable) GetEntry(ukey []byte, seq keys.Seq) (value []byte, kind keys.Kind, found bool) {
	it := m.list.NewIterator()
	// Build the length-prefixed search record directly, in one allocation.
	// The skiplist compares full records; a record holding just the prefixed
	// internal key (no value) decodes the same way because
	// GetLengthPrefixed reads only the prefix.
	ikeyLen := len(ukey) + keys.TrailerLen
	rec := make([]byte, 0, encoding.UvarintLen(uint64(ikeyLen))+ikeyLen)
	rec = encoding.PutUvarint(rec, uint64(ikeyLen))
	rec = keys.MakeSearchKey(rec, ukey, seq)
	it.SeekGE(rec)
	if !it.Valid() {
		return nil, 0, false
	}
	ikey, rest := decodeKey(it.Key())
	if m.icmp.User.Compare(keys.InternalKey(ikey).UserKey(), ukey) != 0 {
		return nil, 0, false
	}
	k := keys.InternalKey(ikey).Kind()
	if k == keys.KindDelete {
		return nil, k, true
	}
	return decodeValue(rest), k, true
}

// LatestSeq reports the newest sequence number stored for ukey, of any kind.
// The value-log GC's commit-time rewrite guard uses it to detect writes that
// landed between its liveness read and the rewrite's application.
func (m *MemTable) LatestSeq(ukey []byte) (keys.Seq, bool) {
	it := m.list.NewIterator()
	ikeyLen := len(ukey) + keys.TrailerLen
	rec := make([]byte, 0, encoding.UvarintLen(uint64(ikeyLen))+ikeyLen)
	rec = encoding.PutUvarint(rec, uint64(ikeyLen))
	rec = keys.MakeSearchKey(rec, ukey, keys.MaxSeq)
	it.SeekGE(rec)
	if !it.Valid() {
		return 0, false
	}
	ikey, _ := decodeKey(it.Key())
	if m.icmp.User.Compare(keys.InternalKey(ikey).UserKey(), ukey) != 0 {
		return 0, false
	}
	return keys.InternalKey(ikey).Seq(), true
}

// ApproximateBytes reports the memory consumed by entries, used for the
// flush trigger.
func (m *MemTable) ApproximateBytes() int64 { return m.approximateBytes.Load() }

// Len reports the number of entries.
func (m *MemTable) Len() int { return m.list.Len() }

// Empty reports whether the table has no entries.
func (m *MemTable) Empty() bool { return m.list.Len() == 0 }

// NewIterator returns an iterator over internal keys, satisfying the store's
// iterator contract.
func (m *MemTable) NewIterator() iterator.Iterator {
	return &memIter{it: m.list.NewIterator()}
}

type memIter struct {
	it *skiplist.Iterator
}

func (m *memIter) Valid() bool { return m.it.Valid() }

func (m *memIter) SeekGE(target []byte) {
	m.it.SeekGE(encoding.PutLengthPrefixed(nil, target))
}

func (m *memIter) SeekToFirst() { m.it.SeekToFirst() }
func (m *memIter) SeekToLast()  { m.it.SeekToLast() }
func (m *memIter) Next()        { m.it.Next() }
func (m *memIter) Prev()        { m.it.Prev() }

func (m *memIter) Key() []byte {
	k, _ := decodeKey(m.it.Key())
	return k
}

func (m *memIter) Value() []byte {
	_, rest := decodeKey(m.it.Key())
	return decodeValue(rest)
}

func (m *memIter) Error() error { return nil }
func (m *memIter) Close() error { return nil }
