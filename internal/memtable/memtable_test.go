package memtable

import (
	"bytes"
	"fmt"
	"testing"
	"testing/quick"

	"repro/internal/keys"
)

var icmp = keys.InternalComparer{User: keys.BytewiseComparer{}}

func TestGetLatestVersion(t *testing.T) {
	m := New(icmp)
	m.Add(1, keys.KindSet, []byte("k"), []byte("v1"))
	m.Add(2, keys.KindSet, []byte("k"), []byte("v2"))
	m.Add(3, keys.KindSet, []byte("k"), []byte("v3"))

	v, del, found := m.Get([]byte("k"), keys.MaxSeq)
	if !found || del || string(v) != "v3" {
		t.Errorf("Get latest = %q del=%v found=%v", v, del, found)
	}
}

func TestGetSnapshotIsolation(t *testing.T) {
	m := New(icmp)
	m.Add(1, keys.KindSet, []byte("k"), []byte("v1"))
	m.Add(5, keys.KindSet, []byte("k"), []byte("v5"))

	v, _, found := m.Get([]byte("k"), 3)
	if !found || string(v) != "v1" {
		t.Errorf("Get@3 = %q found=%v, want v1", v, found)
	}
	_, _, found = m.Get([]byte("k"), 0)
	if found {
		t.Error("Get@0 found a version written at seq 1")
	}
}

func TestGetTombstone(t *testing.T) {
	m := New(icmp)
	m.Add(1, keys.KindSet, []byte("k"), []byte("v"))
	m.Add(2, keys.KindDelete, []byte("k"), nil)

	_, del, found := m.Get([]byte("k"), keys.MaxSeq)
	if !found || !del {
		t.Errorf("tombstone not observed: del=%v found=%v", del, found)
	}
	// Older snapshot still sees the value.
	v, del, found := m.Get([]byte("k"), 1)
	if !found || del || string(v) != "v" {
		t.Errorf("Get@1 = %q del=%v found=%v", v, del, found)
	}
}

func TestGetAbsent(t *testing.T) {
	m := New(icmp)
	m.Add(1, keys.KindSet, []byte("aa"), []byte("v"))
	if _, _, found := m.Get([]byte("ab"), keys.MaxSeq); found {
		t.Error("found absent key")
	}
	if _, _, found := m.Get([]byte("a"), keys.MaxSeq); found {
		t.Error("found prefix of stored key")
	}
}

func TestEmptyValueAndDeleteValueDropped(t *testing.T) {
	m := New(icmp)
	m.Add(1, keys.KindSet, []byte("k"), nil)
	v, del, found := m.Get([]byte("k"), keys.MaxSeq)
	if !found || del || len(v) != 0 {
		t.Errorf("empty value: %q del=%v found=%v", v, del, found)
	}
	m.Add(2, keys.KindDelete, []byte("k"), []byte("ignored"))
	_, del, _ = m.Get([]byte("k"), keys.MaxSeq)
	if !del {
		t.Error("delete with payload not treated as tombstone")
	}
}

func TestIteratorOrderAndValues(t *testing.T) {
	m := New(icmp)
	m.Add(2, keys.KindSet, []byte("b"), []byte("vb"))
	m.Add(1, keys.KindSet, []byte("a"), []byte("va"))
	m.Add(3, keys.KindSet, []byte("c"), []byte("vc"))

	it := m.NewIterator()
	var got []string
	for it.SeekToFirst(); it.Valid(); it.Next() {
		got = append(got, string(keys.InternalKey(it.Key()).UserKey())+"="+string(it.Value()))
	}
	want := "[a=va b=vb c=vc]"
	if fmt.Sprint(got) != want {
		t.Errorf("got %v want %v", got, want)
	}
}

func TestIteratorSeekGE(t *testing.T) {
	m := New(icmp)
	for i := 0; i < 10; i++ {
		m.Add(keys.Seq(i+1), keys.KindSet, []byte(fmt.Sprintf("k%02d", i*2)), []byte("v"))
	}
	it := m.NewIterator()
	it.SeekGE(keys.MakeSearchKey(nil, []byte("k05"), keys.MaxSeq))
	if !it.Valid() || string(keys.InternalKey(it.Key()).UserKey()) != "k06" {
		t.Errorf("SeekGE landed on %q", it.Key())
	}
}

func TestApproximateBytesGrows(t *testing.T) {
	m := New(icmp)
	if m.ApproximateBytes() != 0 {
		t.Error("fresh table has nonzero bytes")
	}
	m.Add(1, keys.KindSet, []byte("key"), []byte("value"))
	if m.ApproximateBytes() < int64(len("key")+len("value")) {
		t.Errorf("ApproximateBytes = %d too small", m.ApproximateBytes())
	}
	if m.Len() != 1 || m.Empty() {
		t.Error("Len/Empty wrong")
	}
}

// Property: every inserted (key, seq) is retrievable at exactly its own
// snapshot with its own value.
func TestQuickRoundTrip(t *testing.T) {
	type op struct {
		Key byte
		Val []byte
	}
	f := func(ops []op) bool {
		m := New(icmp)
		type ver struct {
			seq keys.Seq
			val []byte
		}
		latest := map[byte]ver{}
		for i, o := range ops {
			seq := keys.Seq(i + 1)
			m.Add(seq, keys.KindSet, []byte{o.Key}, o.Val)
			latest[o.Key] = ver{seq, o.Val}
		}
		for k, v := range latest {
			got, del, found := m.Get([]byte{k}, keys.MaxSeq)
			if !found || del || !bytes.Equal(got, v.val) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
