package histogram

import (
	"math/rand"
	"sort"
	"sync"
	"testing"
	"time"
)

func TestEmpty(t *testing.T) {
	var h Histogram
	if h.Count() != 0 || h.Mean() != 0 || h.Percentile(99) != 0 || h.Max() != 0 || h.Min() != 0 {
		t.Errorf("empty histogram not zeroed: %s", h.String())
	}
}

func TestBasicStats(t *testing.T) {
	var h Histogram
	for _, v := range []time.Duration{10, 20, 30, 40, 50} {
		h.Record(v * time.Microsecond)
	}
	if h.Count() != 5 {
		t.Errorf("Count = %d", h.Count())
	}
	if h.Mean() != 30*time.Microsecond {
		t.Errorf("Mean = %v", h.Mean())
	}
	if h.Max() != 50*time.Microsecond || h.Min() != 10*time.Microsecond {
		t.Errorf("Max/Min = %v/%v", h.Max(), h.Min())
	}
}

func TestPercentileAccuracy(t *testing.T) {
	var h Histogram
	rng := rand.New(rand.NewSource(42))
	n := 100000
	samples := make([]time.Duration, n)
	for i := range samples {
		// Log-normal-ish latency distribution: 10µs base with a heavy tail.
		v := time.Duration(10_000 + rng.ExpFloat64()*50_000)
		samples[i] = v
		h.Record(v)
	}
	sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
	for _, p := range []float64{50, 90, 99, 99.9} {
		want := samples[int(float64(n)*p/100)-1]
		got := h.Percentile(p)
		ratio := float64(got) / float64(want)
		if ratio < 0.90 || ratio > 1.10 {
			t.Errorf("P%v = %v, want ≈%v (ratio %.3f)", p, got, want, ratio)
		}
	}
}

func TestPercentileMonotone(t *testing.T) {
	var h Histogram
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 10000; i++ {
		h.Record(time.Duration(rng.Intn(1_000_000)))
	}
	prev := time.Duration(0)
	for _, p := range []float64{10, 50, 90, 99, 99.9, 99.99, 100} {
		v := h.Percentile(p)
		if v < prev {
			t.Errorf("P%v = %v < previous %v", p, v, prev)
		}
		prev = v
	}
	if h.Percentile(100) > h.Max() {
		t.Errorf("P100 %v exceeds max %v", h.Percentile(100), h.Max())
	}
}

func TestSingleSample(t *testing.T) {
	var h Histogram
	h.Record(123 * time.Microsecond)
	for _, p := range []float64{1, 50, 99.99} {
		got := h.Percentile(p)
		if got > 123*time.Microsecond || got < 100*time.Microsecond {
			t.Errorf("P%v = %v for single 123µs sample", p, got)
		}
	}
}

func TestMerge(t *testing.T) {
	var a, b Histogram
	for i := 0; i < 100; i++ {
		a.Record(10 * time.Microsecond)
		b.Record(1 * time.Millisecond)
	}
	a.Merge(&b)
	if a.Count() != 200 {
		t.Errorf("merged Count = %d", a.Count())
	}
	if a.Max() != time.Millisecond || a.Min() != 10*time.Microsecond {
		t.Errorf("merged Max/Min = %v/%v", a.Max(), a.Min())
	}
	p75 := a.Percentile(75)
	if p75 < 500*time.Microsecond {
		t.Errorf("merged P75 = %v, want in the 1ms cluster", p75)
	}
}

func TestReset(t *testing.T) {
	var h Histogram
	h.Record(time.Second)
	h.Reset()
	if h.Count() != 0 || h.Max() != 0 || h.Percentile(99) != 0 {
		t.Error("Reset incomplete")
	}
}

func TestConcurrentRecord(t *testing.T) {
	var h Histogram
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 10000; i++ {
				h.Record(time.Duration(i) * time.Nanosecond)
			}
		}()
	}
	wg.Wait()
	if h.Count() != 80000 {
		t.Errorf("Count = %d after concurrent recording", h.Count())
	}
}

func TestTimelineSeries(t *testing.T) {
	tl := NewTimeline(10 * time.Millisecond)
	tl.Record(100 * time.Microsecond)
	tl.Record(300 * time.Microsecond)
	time.Sleep(12 * time.Millisecond)
	tl.Record(1 * time.Millisecond)
	s := tl.Series()
	if len(s) < 2 {
		t.Fatalf("series has %d slots", len(s))
	}
	if s[0] != 200*time.Microsecond {
		t.Errorf("slot 0 mean = %v", s[0])
	}
	if s[len(s)-1] != time.Millisecond {
		t.Errorf("last slot = %v", s[len(s)-1])
	}
}

func TestFluctuationFactor(t *testing.T) {
	series := []time.Duration{0, 10 * time.Microsecond, 0, 490 * time.Microsecond, 20 * time.Microsecond}
	got := FluctuationFactor(series)
	if got < 48.9 || got > 49.1 {
		t.Errorf("FluctuationFactor = %v, want 49", got)
	}
	if FluctuationFactor(nil) != 0 {
		t.Error("empty series should report 0")
	}
	if FluctuationFactor([]time.Duration{0, 0}) != 0 {
		t.Error("all-zero series should report 0")
	}
}

func TestSnapshotDistribution(t *testing.T) {
	var h Histogram
	d := h.Snapshot()
	if d.Count != 0 || d.Mean != 0 || d.P9999 != 0 {
		t.Fatalf("empty snapshot = %+v, want zero", d)
	}
	for i := 1; i <= 10000; i++ {
		h.Record(time.Duration(i) * time.Microsecond)
	}
	d = h.Snapshot()
	if d.Count != 10000 {
		t.Fatalf("Count = %d, want 10000", d.Count)
	}
	if d.Min != time.Microsecond || d.Max != 10*time.Millisecond {
		t.Errorf("Min/Max = %v/%v, want 1µs/10ms", d.Min, d.Max)
	}
	// Geometric buckets bound relative error at ~5%; check the ladder lands
	// near the analytic quantiles and is monotone.
	checks := []struct {
		got  time.Duration
		want time.Duration
	}{
		{d.P50, 5 * time.Millisecond},
		{d.P90, 9 * time.Millisecond},
		{d.P99, 9900 * time.Microsecond},
		{d.P999, 9990 * time.Microsecond},
		{d.P9999, 9999 * time.Microsecond},
	}
	for i, c := range checks {
		lo := time.Duration(float64(c.want) * 0.90)
		hi := time.Duration(float64(c.want) * 1.10)
		if c.got < lo || c.got > hi {
			t.Errorf("percentile %d = %v, want within 10%% of %v", i, c.got, c.want)
		}
	}
	if d.P50 > d.P90 || d.P90 > d.P99 || d.P99 > d.P999 || d.P999 > d.P9999 || d.P9999 > d.Max {
		t.Errorf("percentile ladder not monotone: %+v", d)
	}
	if s := d.String(); s == "" {
		t.Error("Distribution.String empty")
	}
}

func BenchmarkRecord(b *testing.B) {
	var h Histogram
	for i := 0; i < b.N; i++ {
		h.Record(time.Duration(i % 1000000))
	}
}
