// Package histogram records operation latencies with enough resolution to
// report the extreme percentiles the paper studies (P90–P99.99, Fig 8) and
// per-second latency timelines (Fig 1).
//
// Histogram buckets are geometric with ~5% relative width, so percentile
// error is bounded at ~5% across the full ns..minutes range while the
// structure stays a few KB. Recording is lock-free (atomic adds), safe for
// concurrent writers.
package histogram

import (
	"fmt"
	"math"
	"sync/atomic"
	"time"
)

const (
	// growth is the geometric bucket growth factor.
	growth = 1.05
	// numBuckets covers 1ns .. ~> 1h at 5% resolution.
	numBuckets = 600
)

var bucketLimits [numBuckets]int64

func init() {
	limit := 1.0
	for i := 0; i < numBuckets; i++ {
		bucketLimits[i] = int64(limit)
		limit *= growth
		if limit < float64(bucketLimits[i]+1) {
			limit = float64(bucketLimits[i] + 1)
		}
	}
}

func bucketFor(v int64) int {
	if v <= 1 {
		return 0
	}
	// Binary search the precomputed limits.
	lo, hi := 0, numBuckets-1
	for lo < hi {
		mid := (lo + hi) / 2
		if bucketLimits[mid] >= v {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo
}

// Histogram accumulates latency samples. The zero value is ready to use.
type Histogram struct {
	buckets [numBuckets]atomic.Int64
	count   atomic.Int64
	sum     atomic.Int64
	max     atomic.Int64
	min     atomic.Int64 // stored negated so zero value works; see Record
}

// Record adds one sample.
func (h *Histogram) Record(d time.Duration) {
	v := int64(d)
	if v < 0 {
		v = 0
	}
	h.buckets[bucketFor(v)].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
	for {
		cur := h.max.Load()
		if v <= cur || h.max.CompareAndSwap(cur, v) {
			break
		}
	}
	for {
		cur := h.min.Load()
		if cur != 0 && -v <= cur || h.min.CompareAndSwap(cur, -v) {
			break
		}
	}
}

// Count reports the number of samples.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Mean reports the average sample.
func (h *Histogram) Mean() time.Duration {
	c := h.count.Load()
	if c == 0 {
		return 0
	}
	return time.Duration(h.sum.Load() / c)
}

// Max reports the largest sample.
func (h *Histogram) Max() time.Duration { return time.Duration(h.max.Load()) }

// Min reports the smallest sample.
func (h *Histogram) Min() time.Duration {
	m := h.min.Load()
	if m == 0 {
		return 0
	}
	return time.Duration(-m)
}

// Percentile reports the latency at quantile p in [0,100], e.g. 99.9.
// Within a bucket the value is interpolated linearly.
func (h *Histogram) Percentile(p float64) time.Duration {
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	threshold := float64(total) * p / 100
	var cum float64
	for i := 0; i < numBuckets; i++ {
		n := h.buckets[i].Load()
		if n == 0 {
			continue
		}
		next := cum + float64(n)
		if next >= threshold {
			lo := int64(0)
			if i > 0 {
				lo = bucketLimits[i-1]
			}
			hi := bucketLimits[i]
			frac := (threshold - cum) / float64(n)
			if frac < 0 {
				frac = 0
			}
			if frac > 1 {
				frac = 1
			}
			v := float64(lo) + frac*float64(hi-lo)
			if max := h.max.Load(); int64(v) > max {
				v = float64(max)
			}
			return time.Duration(v)
		}
		cum = next
	}
	return h.Max()
}

// Merge folds other into h.
func (h *Histogram) Merge(other *Histogram) {
	for i := 0; i < numBuckets; i++ {
		if n := other.buckets[i].Load(); n != 0 {
			h.buckets[i].Add(n)
		}
	}
	h.count.Add(other.count.Load())
	h.sum.Add(other.sum.Load())
	if m := other.max.Load(); m > h.max.Load() {
		h.max.Store(m)
	}
	if m := other.min.Load(); m != 0 && (h.min.Load() == 0 || m > h.min.Load()) {
		h.min.Store(m)
	}
}

// Reset clears all samples.
func (h *Histogram) Reset() {
	for i := 0; i < numBuckets; i++ {
		h.buckets[i].Store(0)
	}
	h.count.Store(0)
	h.sum.Store(0)
	h.max.Store(0)
	h.min.Store(0)
}

// Distribution is a plain-value snapshot of a Histogram: the full
// percentile ladder the paper's tail-latency analysis needs, safe to copy,
// compare, and serialize. Distributions cannot be merged — merge the source
// Histograms and snapshot the result.
type Distribution struct {
	Count int64
	Mean  time.Duration
	Min   time.Duration
	Max   time.Duration
	P50   time.Duration
	P90   time.Duration
	P99   time.Duration
	P999  time.Duration
	P9999 time.Duration
}

// Snapshot captures the current distribution. Concurrent Records during the
// snapshot may land in some fields and not others; each field is
// individually consistent.
func (h *Histogram) Snapshot() Distribution {
	return Distribution{
		Count: h.Count(),
		Mean:  h.Mean(),
		Min:   h.Min(),
		Max:   h.Max(),
		P50:   h.Percentile(50),
		P90:   h.Percentile(90),
		P99:   h.Percentile(99),
		P999:  h.Percentile(99.9),
		P9999: h.Percentile(99.99),
	}
}

// String renders the snapshot in the same shape as Histogram.String.
func (d Distribution) String() string {
	return fmt.Sprintf("count=%d mean=%v p50=%v p90=%v p99=%v p99.9=%v p99.99=%v max=%v",
		d.Count, d.Mean, d.P50, d.P90, d.P99, d.P999, d.P9999, d.Max)
}

// String summarizes the distribution.
func (h *Histogram) String() string {
	return fmt.Sprintf("count=%d mean=%v p50=%v p90=%v p99=%v p99.9=%v p99.99=%v max=%v",
		h.Count(), h.Mean(), h.Percentile(50), h.Percentile(90),
		h.Percentile(99), h.Percentile(99.9), h.Percentile(99.99), h.Max())
}

// ---------------------------------------------------------------------------
// Timeline

// Timeline records mean latency per fixed time slot, reproducing the
// paper's Fig 1 ("average latency per second of all the requests").
type Timeline struct {
	slot  time.Duration
	start time.Time
	mu    chan struct{} // 1-token semaphore; contention is negligible
	sums  []int64
	cnts  []int64
}

// NewTimeline starts a timeline with the given slot width.
func NewTimeline(slot time.Duration) *Timeline {
	t := &Timeline{slot: slot, start: time.Now(), mu: make(chan struct{}, 1)}
	t.mu <- struct{}{}
	return t
}

// Record adds a sample at the current time.
func (t *Timeline) Record(d time.Duration) {
	idx := int(time.Since(t.start) / t.slot)
	<-t.mu
	for len(t.sums) <= idx {
		t.sums = append(t.sums, 0)
		t.cnts = append(t.cnts, 0)
	}
	t.sums[idx] += int64(d)
	t.cnts[idx]++
	t.mu <- struct{}{}
}

// Series returns the mean latency per slot; empty slots are zero.
func (t *Timeline) Series() []time.Duration {
	<-t.mu
	defer func() { t.mu <- struct{}{} }()
	out := make([]time.Duration, len(t.sums))
	for i := range t.sums {
		if t.cnts[i] > 0 {
			out[i] = time.Duration(t.sums[i] / t.cnts[i])
		}
	}
	return out
}

// FluctuationFactor reports max/min over the non-empty slots of the series,
// the paper's "fluctuation extent" metric (it reports 49.13× for LevelDB).
func FluctuationFactor(series []time.Duration) float64 {
	min, max := time.Duration(math.MaxInt64), time.Duration(0)
	for _, v := range series {
		if v == 0 {
			continue
		}
		if v < min {
			min = v
		}
		if v > max {
			max = v
		}
	}
	if max == 0 || min == 0 || min == time.Duration(math.MaxInt64) {
		return 0
	}
	return float64(max) / float64(min)
}
