// Package bloom implements the LevelDB-style Bloom filter used in every
// SSTable's filter block. The paper studies filter sizing directly
// (Fig 12(c,f) and Fig 13), so bits-per-key is a first-class knob here.
//
// The filter uses double hashing derived from a single 32-bit hash (the
// "Kirsch–Mitzenmacher" trick LevelDB uses): probe i checks bit
// h + i*delta where delta = rotate(h, 17).
package bloom

// Filter is an immutable encoded Bloom filter: bit array followed by one
// byte holding the probe count.
type Filter []byte

// New builds a filter over the given keys with the given bits per key.
// bitsPerKey below 1 is clamped to 1.
func New(keysList [][]byte, bitsPerKey int) Filter {
	if bitsPerKey < 1 {
		bitsPerKey = 1
	}
	// Probe count ~ bits/key * ln(2); clamp like LevelDB.
	k := uint8(float64(bitsPerKey) * 0.69)
	if k < 1 {
		k = 1
	}
	if k > 30 {
		k = 30
	}
	bits := len(keysList) * bitsPerKey
	if bits < 64 {
		bits = 64
	}
	nBytes := (bits + 7) / 8
	bits = nBytes * 8
	buf := make([]byte, nBytes+1)
	buf[nBytes] = k

	for _, key := range keysList {
		h := Hash(key)
		delta := h>>17 | h<<15
		for i := uint8(0); i < k; i++ {
			pos := h % uint32(bits)
			buf[pos/8] |= 1 << (pos % 8)
			h += delta
		}
	}
	return buf
}

// MayContain reports whether key could be in the set. False negatives never
// occur; false positives occur at a rate governed by bits per key.
func (f Filter) MayContain(key []byte) bool {
	if len(f) < 2 {
		return false
	}
	bits := uint32(len(f)-1) * 8
	k := f[len(f)-1]
	if k > 30 {
		// Reserved for future encodings; treat as a match to stay safe.
		return true
	}
	h := Hash(key)
	delta := h>>17 | h<<15
	for i := uint8(0); i < k; i++ {
		pos := h % bits
		if f[pos/8]&(1<<(pos%8)) == 0 {
			return false
		}
		h += delta
	}
	return true
}

// Hash is LevelDB's bloom hash: a Murmur-flavoured 32-bit hash with seed
// 0xbc9f1d34.
func Hash(data []byte) uint32 {
	const (
		seed = 0xbc9f1d34
		m    = 0xc6a4a793
	)
	h := uint32(seed) ^ uint32(len(data))*m
	for len(data) >= 4 {
		h += uint32(data[0]) | uint32(data[1])<<8 | uint32(data[2])<<16 | uint32(data[3])<<24
		h *= m
		h ^= h >> 16
		data = data[4:]
	}
	switch len(data) {
	case 3:
		h += uint32(data[2]) << 16
		fallthrough
	case 2:
		h += uint32(data[1]) << 8
		fallthrough
	case 1:
		h += uint32(data[0])
		h *= m
		h ^= h >> 24
	}
	return h
}
