package bloom

import (
	"encoding/binary"
	"fmt"
	"testing"
)

func key(i int) []byte {
	b := make([]byte, 8)
	binary.LittleEndian.PutUint64(b, uint64(i))
	return b
}

func TestEmptyFilter(t *testing.T) {
	f := New(nil, 10)
	if f.MayContain([]byte("anything")) {
		t.Error("empty filter claims membership")
	}
	if Filter(nil).MayContain([]byte("x")) {
		t.Error("nil filter claims membership")
	}
}

func TestNoFalseNegatives(t *testing.T) {
	for _, n := range []int{1, 10, 100, 1000, 10000} {
		keysList := make([][]byte, n)
		for i := range keysList {
			keysList[i] = key(i)
		}
		f := New(keysList, 10)
		for i := range keysList {
			if !f.MayContain(keysList[i]) {
				t.Fatalf("n=%d: false negative for key %d", n, i)
			}
		}
	}
}

func falsePositiveRate(t *testing.T, bitsPerKey int) float64 {
	t.Helper()
	const n = 10000
	keysList := make([][]byte, n)
	for i := range keysList {
		keysList[i] = key(i)
	}
	f := New(keysList, bitsPerKey)
	fp := 0
	for i := 0; i < n; i++ {
		if f.MayContain(key(i + 1000000000)) {
			fp++
		}
	}
	return float64(fp) / n
}

func TestFalsePositiveRateReasonable(t *testing.T) {
	if r := falsePositiveRate(t, 10); r > 0.02 {
		t.Errorf("10 bits/key FP rate = %.4f, want < 2%%", r)
	}
}

// The paper's Fig 13: beyond ~16 bits/key, accuracy gains saturate. Verify
// monotone improvement up to that point.
func TestFalsePositiveRateImprovesWithBits(t *testing.T) {
	r4 := falsePositiveRate(t, 4)
	r8 := falsePositiveRate(t, 8)
	r16 := falsePositiveRate(t, 16)
	if !(r4 > r8 && r8 >= r16) {
		t.Errorf("FP rates not improving: 4b=%.4f 8b=%.4f 16b=%.4f", r4, r8, r16)
	}
	if r16 > 0.005 {
		t.Errorf("16 bits/key FP rate = %.4f, want < 0.5%%", r16)
	}
}

func TestFilterSizeScalesWithBitsPerKey(t *testing.T) {
	keysList := make([][]byte, 1000)
	for i := range keysList {
		keysList[i] = key(i)
	}
	prev := 0
	for _, b := range []int{8, 16, 32, 64, 128} {
		size := len(New(keysList, b))
		if size <= prev {
			t.Errorf("filter size with %d bits/key = %d, not larger than previous %d", b, size, prev)
		}
		prev = size
	}
}

func TestSmallFilterMinimumSize(t *testing.T) {
	f := New([][]byte{[]byte("one")}, 10)
	// 64-bit minimum plus probe-count byte.
	if len(f) != 9 {
		t.Errorf("tiny filter length = %d, want 9", len(f))
	}
}

func TestClampBitsPerKey(t *testing.T) {
	f := New([][]byte{[]byte("k")}, 0) // clamped to 1
	if !f.MayContain([]byte("k")) {
		t.Error("clamped filter lost its key")
	}
}

func TestHashDistinct(t *testing.T) {
	seen := map[uint32]string{}
	collisions := 0
	for i := 0; i < 100000; i++ {
		k := fmt.Sprintf("key-%d", i)
		h := Hash([]byte(k))
		if _, dup := seen[h]; dup {
			collisions++
		}
		seen[h] = k
	}
	// ~100k keys in a 32-bit space: expected ≈ 1-2 collisions.
	if collisions > 20 {
		t.Errorf("%d hash collisions in 100k keys", collisions)
	}
}

func BenchmarkBuild10BitsPerKey(b *testing.B) {
	keysList := make([][]byte, 2048)
	for i := range keysList {
		keysList[i] = key(i)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		New(keysList, 10)
	}
}

func BenchmarkMayContain(b *testing.B) {
	keysList := make([][]byte, 2048)
	for i := range keysList {
		keysList[i] = key(i)
	}
	f := New(keysList, 10)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.MayContain(key(i % 4096))
	}
}
