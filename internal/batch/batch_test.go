package batch

import (
	"bytes"
	"errors"
	"fmt"
	"testing"

	"repro/internal/keys"
)

type op struct {
	kind  keys.Kind
	key   string
	value string
}

func ops(b *Batch, t *testing.T) []op {
	t.Helper()
	var out []op
	err := b.Each(func(kind keys.Kind, key, value []byte) error {
		out = append(out, op{kind, string(key), string(value)})
		return nil
	})
	if err != nil {
		t.Fatalf("Each: %v", err)
	}
	return out
}

func TestSetDeleteEach(t *testing.T) {
	b := New()
	b.Set([]byte("k1"), []byte("v1"))
	b.Delete([]byte("k2"))
	b.Set([]byte("k3"), nil)

	if b.Count() != 3 || b.Empty() {
		t.Errorf("Count = %d Empty = %v", b.Count(), b.Empty())
	}
	got := ops(b, t)
	want := []op{
		{keys.KindSet, "k1", "v1"},
		{keys.KindDelete, "k2", ""},
		{keys.KindSet, "k3", ""},
	}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Errorf("got %v want %v", got, want)
	}
}

func TestSequenceStamp(t *testing.T) {
	b := New()
	b.Set([]byte("k"), []byte("v"))
	b.SetSequence(12345)
	if b.Sequence() != 12345 {
		t.Errorf("Sequence = %d", b.Sequence())
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	b := New()
	b.Set([]byte("alpha"), []byte("1"))
	b.Delete([]byte("beta"))
	b.SetSequence(99)
	enc := b.Encode()

	d, err := Decode(append([]byte(nil), enc...))
	if err != nil {
		t.Fatal(err)
	}
	if d.Count() != 2 || d.Sequence() != 99 {
		t.Errorf("decoded Count=%d Seq=%d", d.Count(), d.Sequence())
	}
	if fmt.Sprint(ops(d, t)) != fmt.Sprint(ops(b, t)) {
		t.Error("decoded ops differ")
	}
}

func TestDecodeRejectsCorrupt(t *testing.T) {
	cases := map[string][]byte{
		"short":     {1, 2, 3},
		"bad kind":  append(make([]byte, 12), 0x7f),
		"trunc key": append(make([]byte, 12), byte(keys.KindSet), 200),
		"wrong count": func() []byte {
			b := New()
			b.Set([]byte("k"), []byte("v"))
			e := append([]byte(nil), b.Encode()...)
			e[8] = 9
			return e
		}(),
		"trunc value": append(make([]byte, 12), byte(keys.KindSet), 1, 'k', 200),
	}
	for name, data := range cases {
		if _, err := Decode(data); !errors.Is(err, ErrCorrupt) {
			t.Errorf("%s: err = %v, want ErrCorrupt", name, err)
		}
	}
}

func TestReset(t *testing.T) {
	b := New()
	b.Set([]byte("k"), []byte("v"))
	b.Reset()
	if !b.Empty() || b.Count() != 0 {
		t.Error("Reset did not clear")
	}
	b.Set([]byte("x"), []byte("y"))
	got := ops(b, t)
	if len(got) != 1 || got[0].key != "x" {
		t.Errorf("after reset: %v", got)
	}
}

func TestAppend(t *testing.T) {
	a := New()
	a.Set([]byte("a"), []byte("1"))
	b := New()
	b.Delete([]byte("b"))
	b.Set([]byte("c"), []byte("3"))
	a.Append(b)
	if a.Count() != 3 {
		t.Errorf("Count after Append = %d", a.Count())
	}
	got := ops(a, t)
	if got[2].key != "c" || got[1].kind != keys.KindDelete {
		t.Errorf("appended ops wrong: %v", got)
	}
}

func TestZeroValueBatchUsable(t *testing.T) {
	var b Batch
	b.Set([]byte("k"), []byte("v"))
	if b.Count() != 1 {
		t.Error("zero-value batch broken")
	}
	if len(ops(&b, t)) != 1 {
		t.Error("zero-value batch Each broken")
	}
}

func TestEachStopsOnError(t *testing.T) {
	b := New()
	b.Set([]byte("1"), nil)
	b.Set([]byte("2"), nil)
	n := 0
	sentinel := errors.New("stop")
	err := b.Each(func(kind keys.Kind, key, value []byte) error {
		n++
		return sentinel
	})
	if !errors.Is(err, sentinel) || n != 1 {
		t.Errorf("Each: n=%d err=%v", n, err)
	}
}

func TestBinaryKeysAndValues(t *testing.T) {
	b := New()
	key := []byte{0, 1, 2, 255, 254}
	val := bytes.Repeat([]byte{0}, 1000)
	b.Set(key, val)
	d, err := Decode(append([]byte(nil), b.Encode()...))
	if err != nil {
		t.Fatal(err)
	}
	d.Each(func(kind keys.Kind, k, v []byte) error {
		if !bytes.Equal(k, key) || !bytes.Equal(v, val) {
			t.Error("binary payload mangled")
		}
		return nil
	})
}
