package batch

import "repro/internal/keys"

// Group collects the member batches of one commit-pipeline write group. The
// group commits as a single WAL record — the concatenation of its members —
// so recovery replays it atomically, and each member is stamped with its own
// contiguous sub-range of the group's sequence span so callers can observe
// the sequences their operations received.
type Group struct {
	members []*Batch
	merged  *Batch // cached concatenation; nil until built
	count   int    // total operations across members
	size    int    // encoded size of the merged record
}

// Add appends a member batch to the group.
func (g *Group) Add(b *Batch) {
	if len(g.members) == 0 {
		g.size = headerLen
	}
	g.members = append(g.members, b)
	g.merged = nil
	g.count += b.Count()
	g.size += b.Size() - headerLen
}

// Len reports the number of member batches.
func (g *Group) Len() int { return len(g.members) }

// Count reports the total operations across all members.
func (g *Group) Count() int { return g.count }

// Size reports the encoded size of the group's single WAL record: one
// header plus every member's payload.
func (g *Group) Size() int { return g.size }

// Reset clears the group for reuse.
func (g *Group) Reset() {
	g.members = g.members[:0]
	g.merged = nil
	g.count = 0
	g.size = 0
}

// Batch returns the merged view that is logged and applied: the sole member
// itself when the group has one (no copy), otherwise a concatenation built
// once and cached. The result aliases member payloads; it is valid until a
// member mutates.
func (g *Group) Batch() *Batch {
	if len(g.members) == 1 {
		return g.members[0]
	}
	if g.merged == nil {
		m := &Batch{data: make([]byte, headerLen, g.size)}
		for _, b := range g.members {
			m.Append(b)
		}
		g.merged = m
	}
	return g.merged
}

// SetSequence stamps the merged record with the group's base sequence and
// each member with the start of its own sub-range: member i begins at
// seq plus the operation count of members before it, so the group occupies
// the contiguous range [seq, seq+Count()).
func (g *Group) SetSequence(seq keys.Seq) {
	if m := g.Batch(); m != nil {
		m.SetSequence(seq)
	}
	for _, b := range g.members {
		b.SetSequence(seq)
		seq += keys.Seq(b.Count())
	}
}
