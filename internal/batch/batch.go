// Package batch implements the atomic write batch: the unit of WAL logging
// and memtable application. Its wire encoding (sequence, count, then one
// tagged entry per operation) is exactly what is written as a WAL record,
// so recovery replays batches byte-for-byte.
//
//	header:  fixed64 sequence | fixed32 count
//	entry:   kind byte | varint-len key [| varint-len value]   (value iff Set)
package batch

import (
	"errors"
	"fmt"

	"repro/internal/encoding"
	"repro/internal/keys"
)

const headerLen = 12

// ErrCorrupt reports a malformed batch encoding.
var ErrCorrupt = errors.New("batch: corrupt encoding")

// Batch collects operations to apply atomically.
type Batch struct {
	data  []byte
	count uint32
}

// New returns an empty batch.
func New() *Batch {
	return &Batch{data: make([]byte, headerLen)}
}

func (b *Batch) init() {
	if len(b.data) == 0 {
		b.data = make([]byte, headerLen)
	}
}

// Set records a key/value insertion.
func (b *Batch) Set(key, value []byte) {
	b.init()
	b.data = append(b.data, byte(keys.KindSet))
	b.data = encoding.PutLengthPrefixed(b.data, key)
	b.data = encoding.PutLengthPrefixed(b.data, value)
	b.count++
}

// Delete records a tombstone for key.
func (b *Batch) Delete(key []byte) {
	b.init()
	b.data = append(b.data, byte(keys.KindDelete))
	b.data = encoding.PutLengthPrefixed(b.data, key)
	b.count++
}

// SetBlobRef records a value-log pointer entry: the value payload is the
// encoded pointer (segment, offset, length), not the user value.
func (b *Batch) SetBlobRef(key, ptr []byte) {
	b.init()
	b.data = append(b.data, byte(keys.KindBlobRef))
	b.data = encoding.PutLengthPrefixed(b.data, key)
	b.data = encoding.PutLengthPrefixed(b.data, ptr)
	b.count++
}

// SetBlobRewrite records a guarded vlog GC pointer rewrite. The value
// payload is the guard sequence followed by the new pointer; commit applies
// it as a KindBlobRef only if the key has not been written past the guard
// sequence, and WAL replay always drops it.
func (b *Batch) SetBlobRewrite(key []byte, readSeq keys.Seq, ptr []byte) {
	b.init()
	b.data = append(b.data, byte(keys.KindBlobRewrite))
	b.data = encoding.PutLengthPrefixed(b.data, key)
	payload := make([]byte, 0, 8+len(ptr))
	payload = encoding.PutFixed64(payload, uint64(readSeq))
	payload = append(payload, ptr...)
	b.data = encoding.PutLengthPrefixed(b.data, payload)
	b.count++
}

// Count reports the number of operations.
func (b *Batch) Count() int { return int(b.count) }

// Empty reports whether the batch has no operations.
func (b *Batch) Empty() bool { return b.count == 0 }

// Size reports the encoded size in bytes.
func (b *Batch) Size() int {
	b.init()
	return len(b.data)
}

// Reset clears the batch for reuse.
func (b *Batch) Reset() {
	b.init()
	b.data = b.data[:headerLen]
	b.count = 0
}

// SetSequence stamps the batch with its first sequence number; operation i
// gets sequence seq+i.
func (b *Batch) SetSequence(seq keys.Seq) {
	b.init()
	encoding.PutFixed64(b.data[:0], uint64(seq))
}

// Sequence returns the stamped first sequence number.
func (b *Batch) Sequence() keys.Seq {
	b.init()
	return keys.Seq(encoding.Fixed64(b.data))
}

// Encode finalizes the header and returns the wire bytes. The slice aliases
// the batch; it is valid until the next mutation.
func (b *Batch) Encode() []byte {
	b.init()
	encoding.PutFixed32(b.data[8:8], b.count)
	return b.data
}

// Decode parses wire bytes (e.g. a recovered WAL record) into a batch. The
// input is retained.
func Decode(data []byte) (*Batch, error) {
	if len(data) < headerLen {
		return nil, fmt.Errorf("%w: %d bytes", ErrCorrupt, len(data))
	}
	b := &Batch{data: data, count: encoding.Fixed32(data[8:])}
	// Validate by walking all entries.
	n := 0
	err := b.Each(func(kind keys.Kind, key, value []byte) error {
		n++
		return nil
	})
	if err != nil {
		return nil, err
	}
	if n != int(b.count) {
		return nil, fmt.Errorf("%w: header count %d, found %d entries", ErrCorrupt, b.count, n)
	}
	return b, nil
}

// Each invokes fn for every operation in order. It stops on the first error.
func (b *Batch) Each(fn func(kind keys.Kind, key, value []byte) error) error {
	b.init()
	p := b.data[headerLen:]
	for len(p) > 0 {
		kind := keys.Kind(p[0])
		switch kind {
		case keys.KindSet, keys.KindDelete, keys.KindBlobRef, keys.KindBlobRewrite:
		default:
			return fmt.Errorf("%w: unknown kind %d", ErrCorrupt, kind)
		}
		p = p[1:]
		key, n := encoding.GetLengthPrefixed(p)
		if n == 0 {
			return fmt.Errorf("%w: truncated key", ErrCorrupt)
		}
		p = p[n:]
		var value []byte
		if kind != keys.KindDelete {
			var vn int
			value, vn = encoding.GetLengthPrefixed(p)
			if vn == 0 {
				return fmt.Errorf("%w: truncated value", ErrCorrupt)
			}
			p = p[vn:]
		}
		if err := fn(kind, key, value); err != nil {
			return err
		}
	}
	return nil
}

// Append concatenates other's operations onto b.
func (b *Batch) Append(other *Batch) {
	b.init()
	other.init()
	b.data = append(b.data, other.data[headerLen:]...)
	b.count += other.count
}
