package batch

import (
	"bytes"
	"fmt"
	"testing"

	"repro/internal/keys"
)

func TestGroupSingleMemberAliases(t *testing.T) {
	b := New()
	b.Set([]byte("k"), []byte("v"))
	var g Group
	g.Add(b)
	if g.Batch() != b {
		t.Fatal("single-member group should return the member itself, not a copy")
	}
	if g.Count() != 1 || g.Len() != 1 {
		t.Fatalf("Count=%d Len=%d, want 1,1", g.Count(), g.Len())
	}
	if g.Size() != b.Size() {
		t.Fatalf("Size=%d, want member size %d", g.Size(), b.Size())
	}
}

func TestGroupConcatenation(t *testing.T) {
	var g Group
	var want []string
	for i := 0; i < 3; i++ {
		b := New()
		for j := 0; j <= i; j++ {
			k := fmt.Sprintf("key-%d-%d", i, j)
			b.Set([]byte(k), []byte("val"))
			want = append(want, k)
		}
		g.Add(b)
	}
	if g.Count() != 6 {
		t.Fatalf("Count=%d, want 6", g.Count())
	}
	m := g.Batch()
	if m.Count() != 6 {
		t.Fatalf("merged Count=%d, want 6", m.Count())
	}
	if g.Size() != m.Size() {
		t.Fatalf("Size=%d, merged batch size=%d", g.Size(), m.Size())
	}
	var got []string
	m.Each(func(kind keys.Kind, key, value []byte) error {
		got = append(got, string(key))
		return nil
	})
	if len(got) != len(want) {
		t.Fatalf("merged has %d ops, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("op %d: key %q, want %q (order must follow member order)", i, got[i], want[i])
		}
	}
	// The merged encoding must round-trip through Decode, exactly as a
	// recovered WAL record would.
	g.SetSequence(10)
	dec, err := Decode(append([]byte(nil), m.Encode()...))
	if err != nil {
		t.Fatalf("Decode(merged): %v", err)
	}
	if dec.Count() != 6 || dec.Sequence() != 10 {
		t.Fatalf("decoded count=%d seq=%d, want 6,10", dec.Count(), dec.Sequence())
	}
}

func TestGroupPerBatchSequenceStamping(t *testing.T) {
	var g Group
	sizes := []int{2, 1, 3}
	var members []*Batch
	for i, n := range sizes {
		b := New()
		for j := 0; j < n; j++ {
			b.Set([]byte(fmt.Sprintf("k%d%d", i, j)), []byte("v"))
		}
		members = append(members, b)
		g.Add(b)
	}
	g.SetSequence(100)
	if got := g.Batch().Sequence(); got != 100 {
		t.Errorf("merged sequence = %d, want 100 (group base)", got)
	}
	wantStarts := []keys.Seq{100, 102, 103}
	for i, b := range members {
		if got := b.Sequence(); got != wantStarts[i] {
			t.Errorf("member %d sequence = %d, want %d", i, got, wantStarts[i])
		}
	}
}

func TestGroupReset(t *testing.T) {
	var g Group
	b := New()
	b.Set([]byte("a"), []byte("1"))
	g.Add(b)
	g.Reset()
	if g.Len() != 0 || g.Count() != 0 || g.Size() != 0 {
		t.Fatalf("after Reset: Len=%d Count=%d Size=%d, want zeros", g.Len(), g.Count(), g.Size())
	}
	b2 := New()
	b2.Delete([]byte("z"))
	g.Add(b2)
	if g.Batch() != b2 {
		t.Fatal("reused group should alias its sole member")
	}
}

func TestGroupMergedValuesIntact(t *testing.T) {
	var g Group
	b1 := New()
	b1.Set([]byte("a"), bytes.Repeat([]byte{'x'}, 300))
	b2 := New()
	b2.Delete([]byte("b"))
	g.Add(b1)
	g.Add(b2)
	var ops []string
	g.Batch().Each(func(kind keys.Kind, key, value []byte) error {
		ops = append(ops, fmt.Sprintf("%v:%s:%d", kind, key, len(value)))
		return nil
	})
	want := []string{"1:a:300", "0:b:0"}
	for i := range want {
		if i >= len(ops) || ops[i] != want[i] {
			t.Fatalf("ops = %v, want %v", ops, want)
		}
	}
}
