// Package skiplist implements the concurrent skip list backing the
// MemTable. It follows LevelDB's concurrency contract: a single writer
// (serialized by the caller) inserts while any number of readers traverse
// concurrently without locks, relying on atomic pointer publication.
//
// Keys are opaque byte slices ordered by a caller-supplied comparison
// function; the list stores keys only (the MemTable packs key and value into
// one buffer), keeps them in ascending order, and never deletes.
package skiplist

import (
	"sync/atomic"
)

const (
	maxHeight = 12
	// branching gives each node a 1/branching chance per extra level,
	// matching LevelDB's kBranching = 4.
	branching = 4
)

// CompareFunc orders keys; it must be a strict weak ordering. Inserting two
// keys that compare equal is a caller bug (the MemTable disambiguates with
// sequence numbers, so duplicates never reach the list).
type CompareFunc func(a, b []byte) int

type node struct {
	key []byte
	// next[i] is the successor at level i. Accessed atomically.
	next []atomic.Pointer[node]
}

// List is the skip list. The zero value is not usable; call New.
type List struct {
	cmp    CompareFunc
	head   *node
	height atomic.Int32
	rnd    uint64 // xorshift state; mutated only by the single writer
	len    atomic.Int64
	bytes  atomic.Int64
}

// New returns an empty list ordered by cmp.
func New(cmp CompareFunc) *List {
	l := &List{
		cmp:  cmp,
		head: &node{next: make([]atomic.Pointer[node], maxHeight)},
		rnd:  0x9e3779b97f4a7c15,
	}
	l.height.Store(1)
	return l
}

// Len reports the number of inserted keys.
func (l *List) Len() int { return int(l.len.Load()) }

// Bytes reports the total size of inserted keys, used by the MemTable to
// decide when it is full.
func (l *List) Bytes() int64 { return l.bytes.Load() }

func (l *List) randomHeight() int {
	h := 1
	for h < maxHeight {
		// xorshift64*
		l.rnd ^= l.rnd >> 12
		l.rnd ^= l.rnd << 25
		l.rnd ^= l.rnd >> 27
		if (l.rnd*0x2545f4914f6cdd1d)%branching != 0 {
			break
		}
		h++
	}
	return h
}

// findGreaterOrEqual returns the first node with key >= k, filling prev with
// the rightmost node before the result at each level when prev is non-nil.
func (l *List) findGreaterOrEqual(k []byte, prev []*node) *node {
	x := l.head
	level := int(l.height.Load()) - 1
	for {
		next := x.next[level].Load()
		if next != nil && l.cmp(next.key, k) < 0 {
			x = next
			continue
		}
		if prev != nil {
			prev[level] = x
		}
		if level == 0 {
			return next
		}
		level--
	}
}

// findLessThan returns the last node with key < k, or the head sentinel.
func (l *List) findLessThan(k []byte) *node {
	x := l.head
	level := int(l.height.Load()) - 1
	for {
		next := x.next[level].Load()
		if next != nil && l.cmp(next.key, k) < 0 {
			x = next
			continue
		}
		if level == 0 {
			return x
		}
		level--
	}
}

// findLast returns the last node in the list, or the head sentinel if empty.
func (l *List) findLast() *node {
	x := l.head
	level := int(l.height.Load()) - 1
	for {
		next := x.next[level].Load()
		if next != nil {
			x = next
			continue
		}
		if level == 0 {
			return x
		}
		level--
	}
}

// Insert adds key to the list. The caller must serialize Insert calls and
// must not insert a key equal to an existing one. The key is stored by
// reference and must not be mutated afterwards.
func (l *List) Insert(key []byte) {
	var prev [maxHeight]*node
	l.findGreaterOrEqual(key, prev[:])

	h := l.randomHeight()
	if cur := int(l.height.Load()); h > cur {
		for i := cur; i < h; i++ {
			prev[i] = l.head
		}
		// Publication order: readers seeing the new height before the new
		// node's links just fall through from head, which is harmless.
		l.height.Store(int32(h))
	}

	n := &node{key: key, next: make([]atomic.Pointer[node], h)}
	for i := 0; i < h; i++ {
		n.next[i].Store(prev[i].next[i].Load())
		prev[i].next[i].Store(n) // publish
	}
	l.len.Add(1)
	l.bytes.Add(int64(len(key)))
}

// Contains reports whether a key equal to k is present.
func (l *List) Contains(k []byte) bool {
	n := l.findGreaterOrEqual(k, nil)
	return n != nil && l.cmp(n.key, k) == 0
}

// Iterator traverses the list. It is valid to create and use iterators
// concurrently with a writer; an iterator observes all keys inserted before
// its positioning call, and possibly some inserted after.
type Iterator struct {
	list *List
	node *node
}

// NewIterator returns an unpositioned iterator.
func (l *List) NewIterator() *Iterator { return &Iterator{list: l} }

// Valid reports whether the iterator is positioned on a key.
func (it *Iterator) Valid() bool { return it.node != nil }

// Key returns the current key. Only valid while Valid() is true.
func (it *Iterator) Key() []byte { return it.node.key }

// Next advances to the following key.
func (it *Iterator) Next() { it.node = it.node.next[0].Load() }

// Prev moves to the preceding key. O(log n): skip lists have no back links,
// so it re-searches from the head, as in LevelDB.
func (it *Iterator) Prev() {
	n := it.list.findLessThan(it.node.key)
	if n == it.list.head {
		it.node = nil
		return
	}
	it.node = n
}

// SeekGE positions at the first key >= k.
func (it *Iterator) SeekGE(k []byte) { it.node = it.list.findGreaterOrEqual(k, nil) }

// SeekToFirst positions at the smallest key.
func (it *Iterator) SeekToFirst() { it.node = it.list.head.next[0].Load() }

// SeekToLast positions at the largest key.
func (it *Iterator) SeekToLast() {
	n := it.list.findLast()
	if n == it.list.head {
		it.node = nil
		return
	}
	it.node = n
}
