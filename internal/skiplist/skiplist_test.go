package skiplist

import (
	"bytes"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"testing"
)

func newList() *List { return New(bytes.Compare) }

func TestEmpty(t *testing.T) {
	l := newList()
	if l.Len() != 0 || l.Bytes() != 0 {
		t.Errorf("empty list: Len=%d Bytes=%d", l.Len(), l.Bytes())
	}
	if l.Contains([]byte("x")) {
		t.Error("empty list Contains returned true")
	}
	it := l.NewIterator()
	it.SeekToFirst()
	if it.Valid() {
		t.Error("iterator valid on empty list")
	}
	it.SeekToLast()
	if it.Valid() {
		t.Error("SeekToLast valid on empty list")
	}
	it.SeekGE([]byte("a"))
	if it.Valid() {
		t.Error("SeekGE valid on empty list")
	}
}

func TestInsertAndContains(t *testing.T) {
	l := newList()
	keys := []string{"delta", "alpha", "charlie", "bravo", "echo"}
	for _, k := range keys {
		l.Insert([]byte(k))
	}
	if l.Len() != len(keys) {
		t.Errorf("Len = %d", l.Len())
	}
	for _, k := range keys {
		if !l.Contains([]byte(k)) {
			t.Errorf("missing %q", k)
		}
	}
	if l.Contains([]byte("zulu")) {
		t.Error("Contains returned true for absent key")
	}
}

func TestOrderedIteration(t *testing.T) {
	l := newList()
	var want []string
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 500; i++ {
		k := fmt.Sprintf("key-%06d", rng.Intn(1000000))
		if l.Contains([]byte(k)) {
			continue
		}
		l.Insert([]byte(k))
		want = append(want, k)
	}
	sort.Strings(want)

	it := l.NewIterator()
	var got []string
	for it.SeekToFirst(); it.Valid(); it.Next() {
		got = append(got, string(it.Key()))
	}
	if len(got) != len(want) {
		t.Fatalf("iterated %d keys, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("position %d: got %q want %q", i, got[i], want[i])
		}
	}
}

func TestReverseIteration(t *testing.T) {
	l := newList()
	for i := 0; i < 100; i++ {
		l.Insert([]byte(fmt.Sprintf("k%03d", i)))
	}
	it := l.NewIterator()
	i := 99
	for it.SeekToLast(); it.Valid(); it.Prev() {
		want := fmt.Sprintf("k%03d", i)
		if string(it.Key()) != want {
			t.Fatalf("got %q want %q", it.Key(), want)
		}
		i--
	}
	if i != -1 {
		t.Errorf("stopped at %d", i)
	}
}

func TestSeekGE(t *testing.T) {
	l := newList()
	for _, k := range []string{"b", "d", "f"} {
		l.Insert([]byte(k))
	}
	cases := []struct{ seek, want string }{
		{"a", "b"}, {"b", "b"}, {"c", "d"}, {"d", "d"}, {"e", "f"}, {"f", "f"},
	}
	it := l.NewIterator()
	for _, tc := range cases {
		it.SeekGE([]byte(tc.seek))
		if !it.Valid() || string(it.Key()) != tc.want {
			t.Errorf("SeekGE(%q): got %q", tc.seek, it.Key())
		}
	}
	it.SeekGE([]byte("g"))
	if it.Valid() {
		t.Error("SeekGE past end is valid")
	}
}

func TestBytesAccounting(t *testing.T) {
	l := newList()
	l.Insert([]byte("abc"))
	l.Insert([]byte("defgh"))
	if l.Bytes() != 8 {
		t.Errorf("Bytes = %d, want 8", l.Bytes())
	}
}

// TestConcurrentReadsDuringWrites exercises the single-writer /
// many-readers contract under the race detector.
func TestConcurrentReadsDuringWrites(t *testing.T) {
	l := newList()
	const n = 2000
	done := make(chan struct{})
	var wg sync.WaitGroup
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-done:
					return
				default:
				}
				it := l.NewIterator()
				prev := []byte(nil)
				for it.SeekToFirst(); it.Valid(); it.Next() {
					if prev != nil && bytes.Compare(prev, it.Key()) >= 0 {
						t.Error("out-of-order keys observed by reader")
						return
					}
					prev = append(prev[:0], it.Key()...)
				}
			}
		}()
	}
	for i := 0; i < n; i++ {
		l.Insert([]byte(fmt.Sprintf("key-%08d", i*7919%n)))
	}
	close(done)
	wg.Wait()
	if l.Len() != n {
		t.Errorf("Len = %d want %d", l.Len(), n)
	}
}

func BenchmarkInsert(b *testing.B) {
	l := newList()
	keys := make([][]byte, b.N)
	for i := range keys {
		keys[i] = []byte(fmt.Sprintf("key-%012d", i*2654435761))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l.Insert(keys[i])
	}
}

func BenchmarkSeekGE(b *testing.B) {
	l := newList()
	for i := 0; i < 100000; i++ {
		l.Insert([]byte(fmt.Sprintf("key-%012d", i)))
	}
	it := l.NewIterator()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		it.SeekGE([]byte(fmt.Sprintf("key-%012d", i%100000)))
	}
}
