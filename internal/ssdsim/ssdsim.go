// Package ssdsim simulates a flash-based SSD beneath the store.
//
// The paper evaluates on an enterprise PCIe SSD (Memblaze Q520) that is not
// available here; this package is the substitution documented in DESIGN.md.
// It reproduces the two device properties the paper's analysis depends on:
//
//  1. Asymmetric read/write performance — writes are roughly an order of
//     magnitude slower than reads (paper §I), which is what makes trading
//     read amplification for write reduction profitable (paper eq. (2)).
//  2. Write endurance — flash cells survive a bounded number of program/
//     erase cycles (paper §I), so total write volume matters; the simulator
//     accounts erase-block wear so the "LDC halves compaction writes ⇒
//     extends SSD lifetime" claim (paper §IV-D) is measurable.
//
// Mechanically, a Device wraps a vfs.FS; every read and write reserves the
// device's shared busy-line for a duration computed from a Profile, so
// concurrent callers queue behind each other (background compaction
// contends with foreground requests, as on a real device), and increments
// per-category byte/op counters. Latency can be scaled uniformly
// (Profile.Scale) while preserving the read/write ratio — the quantity the
// paper's shapes depend on; Scale 0 keeps the accounting but injects no
// latency.
package ssdsim

import (
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/vfs"
)

// Category tags I/O by purpose, mirroring the breakdown the paper reports
// (compaction reads/writes in Fig 10(c), flush writes, user reads).
type Category int

// I/O accounting categories.
const (
	CatOther Category = iota
	CatUserRead
	CatWAL
	CatFlush
	CatCompactionRead
	CatCompactionWrite
	numCategories
)

// String names the category for reports.
func (c Category) String() string {
	switch c {
	case CatUserRead:
		return "user-read"
	case CatWAL:
		return "wal"
	case CatFlush:
		return "flush"
	case CatCompactionRead:
		return "compaction-read"
	case CatCompactionWrite:
		return "compaction-write"
	default:
		return "other"
	}
}

// Profile describes device timing. Latency of an operation of n bytes is
// PerOp + n*PerByte, multiplied by Scale.
type Profile struct {
	ReadPerOp    time.Duration // fixed cost of a read request
	ReadPerByte  time.Duration // per-byte read cost (inverse bandwidth)
	WritePerOp   time.Duration // fixed cost of a write request
	WritePerByte time.Duration // per-byte write cost (inverse bandwidth)
	// EraseBlockBytes sizes the flash erase block for wear accounting.
	EraseBlockBytes int64
	// Scale multiplies every latency; 0 disables latency injection entirely
	// (accounting still runs). 1.0 is full speed realism.
	Scale float64
}

// DefaultProfile models an enterprise PCIe SSD with ~1.2 GB/s reads and
// ~120 MB/s sustained random writes — the ~10× read/write asymmetry the
// paper's motivation describes. Scale 1.0 applies it in full; experiments
// that only need accounting set Scale to 0.
func DefaultProfile() Profile {
	return Profile{
		ReadPerOp:       20 * time.Microsecond,
		ReadPerByte:     time.Second / (1200 << 20), // ~1.2 GB/s
		WritePerOp:      50 * time.Microsecond,
		WritePerByte:    time.Second / (120 << 20), // ~120 MB/s
		EraseBlockBytes: 2 << 20,
		Scale:           1.0,
	}
}

// CatStats is the per-category I/O tally.
type CatStats struct {
	ReadOps, ReadBytes   int64
	WriteOps, WriteBytes int64
}

// Stats is a snapshot of device counters.
type Stats struct {
	ByCategory [numCategories]CatStats
	// BusyTime is the total simulated device time charged (unscaled).
	BusyTime time.Duration
	// EraseCycles estimates consumed program/erase cycles:
	// total bytes written / erase block size.
	EraseCycles int64
}

// Totals sums all categories.
func (s Stats) Totals() CatStats {
	var t CatStats
	for _, c := range s.ByCategory {
		t.ReadOps += c.ReadOps
		t.ReadBytes += c.ReadBytes
		t.WriteOps += c.WriteOps
		t.WriteBytes += c.WriteBytes
	}
	return t
}

// CompactionRead / CompactionWrite / FlushWrite are convenience accessors
// for the experiment harness.
func (s Stats) CompactionRead() int64  { return s.ByCategory[CatCompactionRead].ReadBytes }
func (s Stats) CompactionWrite() int64 { return s.ByCategory[CatCompactionWrite].WriteBytes }
func (s Stats) FlushWrite() int64      { return s.ByCategory[CatFlush].WriteBytes }

// Device simulates one SSD as a shared, bandwidth-limited resource: every
// operation reserves the device's virtual busy-line for its scaled
// duration, so concurrent callers queue behind each other. This contention
// is what lets background compaction I/O slow foreground requests — the
// mechanism behind the paper's throughput and tail-latency results (its
// eq. (3) models the same shared bandwidth).
type Device struct {
	prof Profile

	//ldclint:lockrank ssdsim.device.mu 85
	mu   sync.Mutex
	cats [numCategories]CatStats

	busyNanos  atomic.Int64
	writeBytes atomic.Int64

	// busyUntil is the virtual time (ns, monotonic epoch of start) through
	// which the device is reserved.
	busyUntil atomic.Int64
	start     time.Time
}

// NewDevice returns a device with the given profile.
func NewDevice(p Profile) *Device {
	if p.EraseBlockBytes == 0 {
		p.EraseBlockBytes = 2 << 20
	}
	return &Device{prof: p, start: time.Now()}
}

// minSleep is the smallest backlog worth sleeping for; smaller reservations
// still advance the busy-line (self-correcting virtual time) but return
// immediately, staying above the OS timer resolution.
const minSleep = time.Millisecond

func (d *Device) charge(lat time.Duration) {
	d.busyNanos.Add(int64(lat))
	if d.prof.Scale <= 0 {
		return
	}
	scaled := int64(float64(lat) * d.prof.Scale)
	for {
		now := int64(time.Since(d.start))
		cur := d.busyUntil.Load()
		begin := now
		if cur > begin {
			begin = cur
		}
		end := begin + scaled
		if !d.busyUntil.CompareAndSwap(cur, end) {
			continue
		}
		if wait := time.Duration(end - now); wait >= minSleep {
			time.Sleep(wait)
		}
		return
	}
}

// Read charges a read of n bytes under category cat.
func (d *Device) Read(cat Category, n int) {
	d.mu.Lock()
	d.cats[cat].ReadOps++
	d.cats[cat].ReadBytes += int64(n)
	d.mu.Unlock()
	d.charge(d.prof.ReadPerOp + time.Duration(n)*d.prof.ReadPerByte)
}

// Write charges a write of n bytes under category cat.
func (d *Device) Write(cat Category, n int) {
	d.mu.Lock()
	d.cats[cat].WriteOps++
	d.cats[cat].WriteBytes += int64(n)
	d.mu.Unlock()
	d.writeBytes.Add(int64(n))
	d.charge(d.prof.WritePerOp + time.Duration(n)*d.prof.WritePerByte)
}

// Snapshot returns current counters.
func (d *Device) Snapshot() Stats {
	d.mu.Lock()
	cats := d.cats
	d.mu.Unlock()
	return Stats{
		ByCategory:  cats,
		BusyTime:    time.Duration(d.busyNanos.Load()),
		EraseCycles: d.writeBytes.Load() / d.prof.EraseBlockBytes,
	}
}

// Reset zeroes all counters (between experiment phases).
func (d *Device) Reset() {
	d.mu.Lock()
	d.cats = [numCategories]CatStats{}
	d.mu.Unlock()
	d.busyNanos.Store(0)
	d.writeBytes.Store(0)
}

// ---------------------------------------------------------------------------
// Filesystem wrapper

// FS wraps an inner filesystem so that all file I/O through it is charged to
// the device under a fixed category. Use WithCategory to derive views for
// other categories sharing the same device and inner FS.
type FS struct {
	inner vfs.FS
	dev   *Device
	cat   Category
}

// Wrap layers a device over inner with the default category.
func Wrap(inner vfs.FS, dev *Device) *FS {
	return &FS{inner: inner, dev: dev, cat: CatOther}
}

// WithCategory derives a view charging I/O to cat.
func (s *FS) WithCategory(cat Category) *FS {
	return &FS{inner: s.inner, dev: s.dev, cat: cat}
}

// Device returns the underlying device, for stats.
func (s *FS) Device() *Device { return s.dev }

// Inner returns the wrapped filesystem.
func (s *FS) Inner() vfs.FS { return s.inner }

// Create implements vfs.FS.
func (s *FS) Create(name string) (vfs.File, error) {
	f, err := s.inner.Create(name)
	if err != nil {
		return nil, err
	}
	return &simFile{f: f, dev: s.dev, cat: s.cat}, nil
}

// Open implements vfs.FS.
func (s *FS) Open(name string) (vfs.File, error) {
	f, err := s.inner.Open(name)
	if err != nil {
		return nil, err
	}
	return &simFile{f: f, dev: s.dev, cat: s.cat}, nil
}

// Remove implements vfs.FS.
func (s *FS) Remove(name string) error { return s.inner.Remove(name) }

// Rename implements vfs.FS.
func (s *FS) Rename(o, n string) error { return s.inner.Rename(o, n) }

// Exists implements vfs.FS.
func (s *FS) Exists(name string) bool { return s.inner.Exists(name) }

// List implements vfs.FS.
func (s *FS) List(dir string) ([]string, error) { return s.inner.List(dir) }

// MkdirAll implements vfs.FS.
func (s *FS) MkdirAll(dir string) error { return s.inner.MkdirAll(dir) }

type simFile struct {
	f   vfs.File
	dev *Device
	cat Category
}

func (f *simFile) Write(p []byte) (int, error) {
	n, err := f.f.Write(p)
	if n > 0 {
		f.dev.Write(f.cat, n)
	}
	return n, err
}

func (f *simFile) ReadAt(p []byte, off int64) (int, error) {
	n, err := f.f.ReadAt(p, off)
	if n > 0 {
		f.dev.Read(f.cat, n)
	}
	return n, err
}

func (f *simFile) Close() error         { return f.f.Close() }
func (f *simFile) Sync() error          { return f.f.Sync() }
func (f *simFile) Size() (int64, error) { return f.f.Size() }
