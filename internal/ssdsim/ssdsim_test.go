package ssdsim

import (
	"testing"
	"time"

	"repro/internal/vfs"
)

func accountingProfile() Profile {
	p := DefaultProfile()
	p.Scale = 0 // accounting only, no sleeps
	return p
}

func TestCategoryAccounting(t *testing.T) {
	dev := NewDevice(accountingProfile())
	fs := Wrap(vfs.Mem(), dev)
	fs.MkdirAll("/db")

	// Write 1000 bytes as a flush.
	ff := fs.WithCategory(CatFlush)
	f, err := ff.Create("/db/000001.sst")
	if err != nil {
		t.Fatal(err)
	}
	f.Write(make([]byte, 1000))
	_ = f.Close()

	// Read 400 of them as a user read.
	uf := fs.WithCategory(CatUserRead)
	r, err := uf.Open("/db/000001.sst")
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 400)
	r.ReadAt(buf, 0)
	_ = r.Close()

	s := dev.Snapshot()
	if got := s.ByCategory[CatFlush].WriteBytes; got != 1000 {
		t.Errorf("flush write bytes = %d", got)
	}
	if got := s.ByCategory[CatUserRead].ReadBytes; got != 400 {
		t.Errorf("user read bytes = %d", got)
	}
	if got := s.ByCategory[CatCompactionWrite].WriteBytes; got != 0 {
		t.Errorf("compaction write bytes = %d, want 0", got)
	}
	tot := s.Totals()
	if tot.WriteBytes != 1000 || tot.ReadBytes != 400 {
		t.Errorf("totals = %+v", tot)
	}
}

func TestBusyTimeAsymmetry(t *testing.T) {
	dev := NewDevice(accountingProfile())
	const n = 1 << 20
	dev.Read(CatUserRead, n)
	readBusy := dev.Snapshot().BusyTime
	dev.Reset()
	dev.Write(CatFlush, n)
	writeBusy := dev.Snapshot().BusyTime
	if writeBusy < 4*readBusy {
		t.Errorf("write busy %v not ≫ read busy %v: asymmetry lost", writeBusy, readBusy)
	}
}

func TestEraseCycleAccounting(t *testing.T) {
	p := accountingProfile()
	p.EraseBlockBytes = 1024
	dev := NewDevice(p)
	dev.Write(CatCompactionWrite, 4096)
	if got := dev.Snapshot().EraseCycles; got != 4 {
		t.Errorf("EraseCycles = %d, want 4", got)
	}
}

func TestReset(t *testing.T) {
	dev := NewDevice(accountingProfile())
	dev.Write(CatWAL, 100)
	dev.Reset()
	s := dev.Snapshot()
	if s.Totals().WriteBytes != 0 || s.BusyTime != 0 || s.EraseCycles != 0 {
		t.Errorf("counters not reset: %+v", s)
	}
}

func TestLatencyInjection(t *testing.T) {
	p := Profile{
		WritePerOp:      2 * time.Millisecond,
		EraseBlockBytes: 1 << 20,
		Scale:           1.0,
	}
	dev := NewDevice(p)
	start := time.Now()
	dev.Write(CatFlush, 1)
	if elapsed := time.Since(start); elapsed < 1500*time.Microsecond {
		t.Errorf("write with 2ms latency returned in %v", elapsed)
	}
}

func TestBusyLineQueueing(t *testing.T) {
	p := Profile{
		WritePerOp:      20 * time.Microsecond,
		EraseBlockBytes: 1 << 20,
		Scale:           1.0,
	}
	dev := NewDevice(p)
	start := time.Now()
	for i := 0; i < 200; i++ { // 4ms of reserved device time
		dev.Write(CatFlush, 0)
	}
	if elapsed := time.Since(start); elapsed < 2*time.Millisecond {
		t.Errorf("200×20µs reservations took only %v; busy line not enforced", elapsed)
	}
}

// TestContentionBetweenCallers verifies that one caller's large reservation
// delays another caller — the foreground/background interference the
// experiments rely on.
func TestContentionBetweenCallers(t *testing.T) {
	p := Profile{
		WritePerOp:      5 * time.Millisecond,
		ReadPerOp:       100 * time.Microsecond,
		EraseBlockBytes: 1 << 20,
		Scale:           1.0,
	}
	dev := NewDevice(p)
	start := time.Now()
	go dev.Write(CatCompactionWrite, 0) // reserves 5ms of device time
	time.Sleep(time.Millisecond)        // ensure the reservation is in place
	dev.Read(CatUserRead, 0)            // must queue behind the write
	if lat := time.Since(start); lat < 4*time.Millisecond {
		t.Errorf("read behind a 5ms write completed at %v; no contention", lat)
	}
}

func TestFSPassthrough(t *testing.T) {
	dev := NewDevice(accountingProfile())
	fs := Wrap(vfs.Mem(), dev)
	f, _ := fs.Create("/x")
	f.Write([]byte("abc"))
	_ = f.Close()
	if !fs.Exists("/x") {
		t.Error("Exists false")
	}
	if err := fs.Rename("/x", "/y"); err != nil {
		t.Fatal(err)
	}
	names, _ := fs.List("/")
	if len(names) != 1 || names[0] != "y" {
		t.Errorf("List = %v", names)
	}
	if err := fs.Remove("/y"); err != nil {
		t.Fatal(err)
	}
	// Size observable through the simulator and TotalBytes unwraps it.
	f2, _ := fs.Create("/z")
	f2.Write(make([]byte, 42))
	_ = f2.Close()
	if got, ok := vfs.TotalBytes(fs); !ok || got != 42 {
		t.Errorf("TotalBytes through simulator = %d, %v", got, ok)
	}
}
