package compress

import (
	"bytes"
	"errors"
	"testing"
)

// FuzzLZ4Decode feeds arbitrary bytes to the LZ4-class decoder (and, for
// coverage, the flate path) as both the framed payload and the bare
// stream. The contract under fuzzing: decode either succeeds or returns
// ErrCorrupt — it never panics, never over-reads, and never writes outside
// the declared output.
func FuzzLZ4Decode(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0x00})
	f.Add([]byte{0x10, 0x04, 0xab})                   // claims 16 raw bytes, tiny stream
	f.Add([]byte{0x04, 0xf0, 1, 2, 3, 4})             // literal nibble overrun
	f.Add([]byte{0x08, 0x0f, 0xff, 0xff, 0x00, 0x41}) // poisoned extension bytes
	good, kind := Compress(LZ4, nil, bytes.Repeat([]byte("abcdefgh"), 600))
	if kind == LZ4 {
		f.Add(good)
	}
	f.Fuzz(func(t *testing.T, payload []byte) {
		for _, k := range []Kind{LZ4, Flate} {
			out, err := Decompress(k, payload)
			if err != nil && !errors.Is(err, ErrCorrupt) {
				t.Fatalf("%v: non-ErrCorrupt failure: %v", k, err)
			}
			if err == nil && out == nil {
				t.Fatalf("%v: success with nil output", k)
			}
		}
	})
}

// FuzzCodecRoundTrip proves Compress∘Decompress is the identity for every
// codec on arbitrary inputs — including the bailout path, where the block
// is stored raw.
func FuzzCodecRoundTrip(f *testing.F) {
	f.Add([]byte{}, uint8(2))
	f.Add([]byte("hello hello hello hello"), uint8(2))
	f.Add(bytes.Repeat([]byte{0}, 5000), uint8(1))
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8}, uint8(0))
	f.Fuzz(func(t *testing.T, src []byte, kindByte uint8) {
		kind := Kind(kindByte % numKinds)
		payload, used := Compress(kind, nil, src)
		if !used.Valid() {
			t.Fatalf("Compress returned invalid kind %d", used)
		}
		out, err := Decompress(used, payload)
		if err != nil {
			t.Fatalf("%v→%v: decompress of own output failed: %v", kind, used, err)
		}
		if !bytes.Equal(out, src) {
			t.Fatalf("%v→%v: round trip mismatch (%d in, %d out)", kind, used, len(src), len(out))
		}
	})
}
