package compress

import (
	"fmt"
	"sync"
)

// The LZ4-class codec: a byte-oriented LZ77 with a greedy hash-table match
// finder and a token-per-sequence stream, written from scratch for this
// repository. The stream is a run of sequences:
//
//	token     1 byte: high nibble = literal count, low nibble = match
//	          length - minMatch; nibble value 15 means "extended below"
//	litExt    0+ bytes: while a byte is 255, keep adding; the first
//	          byte < 255 terminates (only when literal nibble == 15)
//	literals  literal bytes, copied verbatim
//	offset    2 bytes little-endian, 1..65535, distance back into the
//	          already-decoded output
//	matchExt  0+ bytes, same scheme as litExt (only when match nibble == 15)
//
// The final sequence of a stream ends after its literals: when the input
// is exhausted immediately after a literal run, there is no offset and no
// match. Matches are at least minMatch (4) bytes, so every offset/length
// pair earns back more than the 3 bytes it costs to encode.
const (
	lz4MinMatch  = 4
	lz4MaxOffset = 1 << 16
	// lz4HashBits sizes the match-finder table: 1<<14 entries covers a
	// 4 KiB..64 KiB block with few collisions while the table (64 KiB)
	// stays cache-resident.
	lz4HashBits = 14
	lz4HashLen  = 1 << lz4HashBits
)

// lz4Hash maps the 4 bytes at p[i:] to a table slot (multiplicative
// hashing on the little-endian load; the constant is 2654435761, Knuth's
// golden-ratio multiplier, as LZ4 itself uses).
func lz4Hash(v uint32) uint32 { return (v * 2654435761) >> (32 - lz4HashBits) }

func load32(b []byte, i int) uint32 {
	return uint32(b[i]) | uint32(b[i+1])<<8 | uint32(b[i+2])<<16 | uint32(b[i+3])<<24
}

// lz4Compress appends the encoding of src to dst, reporting false once the
// output would exceed budget bytes (the incompressible bailout; the caller
// then stores the block raw).
// lz4TablePool recycles match-finder tables WITHOUT clearing them: zeroing
// 64 KiB per 4 KiB block would cost more than the compression. Stale slots
// from a previous block are harmless — candidates are only trusted when
// cand < i (so the load is in bounds) and the 4 bytes at cand equal the 4
// bytes at i in the CURRENT input, which makes a stale hit a real match.
var lz4TablePool = sync.Pool{New: func() interface{} { return new([lz4HashLen]int32) }}

func lz4Compress(dst, src []byte, budget int) ([]byte, bool) {
	table := lz4TablePool.Get().(*[lz4HashLen]int32)
	defer lz4TablePool.Put(table)
	litStart := 0 // start of the pending literal run
	i := 0
	// Matches must leave minMatch bytes of tail so the last-literals rule
	// of the decoder holds (and load32 stays in bounds).
	limit := len(src) - lz4MinMatch

	emit := func(litEnd, matchLen, offset int) bool {
		litLen := litEnd - litStart
		// Worst case bytes: token + extended lengths + literals + offset.
		need := 1 + litLen/255 + 1 + litLen + 2 + matchLen/255 + 1
		if len(dst)+need > budget {
			return false
		}
		tok := byte(0)
		if litLen >= 15 {
			tok = 15 << 4
		} else {
			tok = byte(litLen) << 4
		}
		m := 0
		if matchLen > 0 {
			m = matchLen - lz4MinMatch
			if m >= 15 {
				tok |= 15
			} else {
				tok |= byte(m)
			}
		}
		dst = append(dst, tok)
		if litLen >= 15 {
			for v := litLen - 15; ; v -= 255 {
				if v >= 255 {
					dst = append(dst, 255)
					continue
				}
				dst = append(dst, byte(v))
				break
			}
		}
		dst = append(dst, src[litStart:litEnd]...)
		if matchLen == 0 {
			return true // final literals: no offset, no match length
		}
		dst = append(dst, byte(offset), byte(offset>>8))
		if m >= 15 {
			for v := m - 15; ; v -= 255 {
				if v >= 255 {
					dst = append(dst, 255)
					continue
				}
				dst = append(dst, byte(v))
				break
			}
		}
		return true
	}

	// step grows as matches keep failing (LZ4's acceleration), so runs of
	// incompressible data are skipped over instead of probed byte by byte.
	misses := 0
	for i < limit {
		v := load32(src, i)
		slot := &table[lz4Hash(v)]
		cand := int(*slot) - 1
		*slot = int32(i) + 1
		if cand >= 0 && cand < i && i-cand < lz4MaxOffset && load32(src, cand) == v {
			// Extend the match forward; the greedy finder takes the first
			// hit rather than searching a chain.
			matchLen := lz4MinMatch
			for i+matchLen < len(src) && src[cand+matchLen] == src[i+matchLen] {
				matchLen++
			}
			if !emit(i, matchLen, i-cand) {
				return dst, false
			}
			// Seed the table inside the match so the next search can land
			// mid-copy (one probe per 3 bytes keeps the cost linear).
			end := i + matchLen
			for j := i + 1; j+lz4MinMatch <= end && j < limit; j += 3 {
				table[lz4Hash(load32(src, j))] = int32(j) + 1
			}
			i = end
			litStart = i
			misses = 0
			continue
		}
		misses++
		i += 1 + misses>>6
	}
	if !emit(len(src), 0, 0) {
		return dst, false
	}
	return dst, true
}

// lz4Decompress decodes stream into dst, whose length is the declared
// decompressed size. Every read of the stream and every write of dst is
// bounds-checked up front; malformed input returns ErrCorrupt and can
// neither panic nor read or write out of bounds. A stream that finishes
// early or wants to overflow dst disagrees with the length header and is
// equally corrupt.
func lz4Decompress(dst, stream []byte) error {
	di, si := 0, 0
	readExt := func(base int) (int, bool) {
		n := base
		for {
			if si >= len(stream) {
				return 0, false
			}
			b := stream[si]
			si++
			n += int(b)
			if n > maxDecodedLen { // poisoned extension bytes
				return 0, false
			}
			if b != 255 {
				return n, true
			}
		}
	}
	for {
		if si >= len(stream) {
			return fmt.Errorf("%w: lz4 stream ends before output is complete", ErrCorrupt)
		}
		tok := stream[si]
		si++
		litLen := int(tok >> 4)
		if litLen == 15 {
			var ok bool
			if litLen, ok = readExt(15); !ok {
				return fmt.Errorf("%w: lz4 literal length truncated", ErrCorrupt)
			}
		}
		if litLen > len(stream)-si || litLen > len(dst)-di {
			return fmt.Errorf("%w: lz4 literal run overflows", ErrCorrupt)
		}
		copy(dst[di:], stream[si:si+litLen])
		di += litLen
		si += litLen
		if si == len(stream) {
			// Final sequence: literals only. The output must be exactly full.
			if di != len(dst) {
				return fmt.Errorf("%w: lz4 stream produced %d of %d bytes", ErrCorrupt, di, len(dst))
			}
			return nil
		}
		if len(stream)-si < 2 {
			return fmt.Errorf("%w: lz4 match offset truncated", ErrCorrupt)
		}
		offset := int(stream[si]) | int(stream[si+1])<<8
		si += 2
		if offset == 0 || offset > di {
			return fmt.Errorf("%w: lz4 match offset %d outside decoded output %d", ErrCorrupt, offset, di)
		}
		matchLen := int(tok & 15)
		if matchLen == 15 {
			var ok bool
			if matchLen, ok = readExt(15); !ok {
				return fmt.Errorf("%w: lz4 match length truncated", ErrCorrupt)
			}
		}
		matchLen += lz4MinMatch
		if matchLen > len(dst)-di {
			return fmt.Errorf("%w: lz4 match overflows output", ErrCorrupt)
		}
		// Byte-at-a-time on purpose: offsets smaller than the match length
		// mean the copy overlaps its own output (run-length encoding).
		for j := 0; j < matchLen; j++ {
			dst[di] = dst[di-offset]
			di++
		}
	}
}
