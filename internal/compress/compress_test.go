package compress

import (
	"bytes"
	"errors"
	"math/rand"
	"strings"
	"testing"
)

// corpus returns inputs spanning the codec's interesting regimes: empty,
// tiny, highly repetitive, structured text, and incompressible noise.
func corpus() map[string][]byte {
	rng := rand.New(rand.NewSource(1))
	noise := make([]byte, 64<<10)
	rng.Read(noise)
	long := bytes.Repeat([]byte("the quick brown fox jumps over the lazy dog. "), 4000)
	runs := bytes.Repeat([]byte{0xab}, 70000)
	mixed := make([]byte, 0, 32<<10)
	for i := 0; i < 400; i++ {
		mixed = append(mixed, []byte("key-000")...)
		mixed = append(mixed, byte(i), byte(i>>8))
		mixed = append(mixed, noise[i*7:i*7+64]...)
	}
	return map[string][]byte{
		"empty":     nil,
		"one":       {42},
		"short":     []byte("hello"),
		"minmatch":  []byte("abcdabcdabcd"),
		"text":      []byte(strings.Repeat("compaction is lower-level driven ", 200)),
		"longtext":  long,
		"runs":      runs,
		"mixed":     mixed,
		"noise":     noise,
		"noise4k":   noise[:4096],
		"block4k":   long[:4096],
		"unaligned": long[:4099],
	}
}

func TestRoundTrip(t *testing.T) {
	for _, kind := range []Kind{None, Flate, LZ4} {
		for name, src := range corpus() {
			payload, got := Compress(kind, nil, src)
			if kind == None && got != None {
				t.Fatalf("%v/%s: codec None produced %v", kind, name, got)
			}
			if got == None && !bytes.Equal(payload, src) {
				t.Fatalf("%v/%s: raw fallback altered the data", kind, name)
			}
			out, err := Decompress(got, payload)
			if err != nil {
				t.Fatalf("%v/%s: decompress: %v", kind, name, err)
			}
			if !bytes.Equal(out, src) {
				t.Fatalf("%v/%s: round trip mismatch: %d bytes in, %d out", kind, name, len(src), len(out))
			}
		}
	}
}

func TestCompressibleInputsShrink(t *testing.T) {
	c := corpus()
	for _, kind := range []Kind{Flate, LZ4} {
		for _, name := range []string{"text", "longtext", "runs", "block4k"} {
			src := c[name]
			payload, got := Compress(kind, nil, src)
			if got != kind {
				t.Errorf("%v/%s: bailed out to %v on compressible input", kind, name, got)
				continue
			}
			if len(payload) > len(src)-len(src)/8 {
				t.Errorf("%v/%s: payload %d bytes does not clear the 12.5%% savings bar on %d",
					kind, name, len(payload), len(src))
			}
		}
	}
}

func TestIncompressibleBailout(t *testing.T) {
	c := corpus()
	for _, kind := range []Kind{Flate, LZ4} {
		for _, name := range []string{"noise", "noise4k", "one", "short", "empty"} {
			if payload, got := Compress(kind, nil, c[name]); got != None {
				t.Errorf("%v/%s: stored compressed (%d bytes for %d) instead of bailing to raw",
					kind, name, len(payload), len(c[name]))
			}
		}
	}
}

// TestScratchReuse exercises the writer's buffer-recycling pattern: the
// same scratch slice across many blocks, each round trip intact.
func TestScratchReuse(t *testing.T) {
	var scratch []byte
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 200; i++ {
		n := rng.Intn(8 << 10)
		src := bytes.Repeat([]byte{byte(i), byte(i + 1), byte(i + 2)}, n/3+1)
		payload, got := Compress(LZ4, scratch, src)
		out, err := Decompress(got, payload)
		if err != nil {
			t.Fatalf("block %d: %v", i, err)
		}
		if !bytes.Equal(out, src) {
			t.Fatalf("block %d: mismatch after scratch reuse", i)
		}
		if got != None {
			scratch = payload[:0]
		}
	}
}

func TestDecompressCorruptInputs(t *testing.T) {
	src := bytes.Repeat([]byte("abcdefgh12345678"), 512)
	for _, kind := range []Kind{Flate, LZ4} {
		payload, got := Compress(kind, nil, src)
		if got != kind {
			t.Fatalf("%v: expected compression to engage", kind)
		}
		t.Run(kind.String(), func(t *testing.T) {
			for cut := 0; cut < len(payload); cut += 1 + len(payload)/97 {
				if _, err := Decompress(kind, payload[:cut]); err == nil {
					t.Fatalf("truncation to %d bytes decoded cleanly", cut)
				} else if !errors.Is(err, ErrCorrupt) {
					t.Fatalf("truncation to %d: got %v, want ErrCorrupt", cut, err)
				}
			}
			// A length header that disagrees with the stream must be caught.
			grown := append([]byte{0xff, 0xff, 0x03}, payload[1:]...)
			if out, err := Decompress(kind, grown); err == nil && len(out) != len(src) {
				t.Fatalf("forged length header accepted: %d bytes out", len(out))
			}
		})
	}
	if _, err := Decompress(Kind(9), []byte{1, 2, 3}); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("unknown kind: got %v, want ErrCorrupt", err)
	}
	if _, err := Decompress(LZ4, nil); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("empty payload: got %v, want ErrCorrupt", err)
	}
}

func TestKindStringsAndValidity(t *testing.T) {
	cases := map[Kind]string{None: "none", Flate: "flate", LZ4: "lz4"}
	for k, want := range cases {
		if !k.Valid() || k.String() != want {
			t.Errorf("kind %d: valid=%v string=%q", k, k.Valid(), k)
		}
	}
	if Kind(3).Valid() || Kind(255).Valid() {
		t.Error("out-of-range kinds report valid")
	}
}

func BenchmarkLZ4Compress4K(b *testing.B) {
	src := corpus()["block4k"]
	b.SetBytes(int64(len(src)))
	var scratch []byte
	for i := 0; i < b.N; i++ {
		scratch, _ = Compress(LZ4, scratch, src)
	}
}

func BenchmarkLZ4Decompress4K(b *testing.B) {
	src := corpus()["block4k"]
	payload, kind := Compress(LZ4, nil, src)
	if kind != LZ4 {
		b.Fatal("input did not compress")
	}
	b.SetBytes(int64(len(src)))
	for i := 0; i < b.N; i++ {
		if _, err := Decompress(kind, payload); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFlateCompress4K(b *testing.B) {
	src := corpus()["block4k"]
	b.SetBytes(int64(len(src)))
	var scratch []byte
	for i := 0; i < b.N; i++ {
		scratch, _ = Compress(Flate, scratch, src)
	}
}
