package compress

import (
	"bytes"
	"compress/flate"
	"fmt"
	"io"
	"sync"
)

// Flate encoders are expensive to construct (window + Huffman state), so
// they are pooled and Reset per block. BestSpeed: the block is 4 KiB and
// the point of compressing it is to cheapen I/O, not to win a density
// contest — LZ4 exists for when even BestSpeed is too slow.
var flateWriterPool = sync.Pool{
	New: func() interface{} {
		w, _ := flate.NewWriter(io.Discard, flate.BestSpeed)
		return w
	},
}

var flateReaderPool = sync.Pool{
	New: func() interface{} {
		return flate.NewReader(bytes.NewReader(nil))
	},
}

// cappedWriter aborts an encoding once it exceeds budget bytes, letting
// Compress abandon incompressible blocks without finishing them.
type cappedWriter struct {
	buf    []byte
	budget int
}

var errBudget = fmt.Errorf("compress: over budget")

func (c *cappedWriter) Write(p []byte) (int, error) {
	if len(c.buf)+len(p) > c.budget {
		return 0, errBudget
	}
	c.buf = append(c.buf, p...)
	return len(p), nil
}

// flateCompress appends the DEFLATE stream of src to dst, reporting false
// if the encoding exceeded budget total bytes.
func flateCompress(dst, src []byte, budget int) ([]byte, bool) {
	cw := &cappedWriter{buf: dst, budget: budget}
	fw := flateWriterPool.Get().(*flate.Writer)
	fw.Reset(cw)
	_, err := fw.Write(src)
	if err == nil {
		err = fw.Close()
	}
	flateWriterPool.Put(fw)
	if err != nil {
		return dst, false
	}
	return cw.buf, true
}

// flateDecompress inflates stream into dst, which was sized from the
// payload's length header; a stream that produces any other number of
// bytes is corrupt.
func flateDecompress(dst, stream []byte) error {
	fr := flateReaderPool.Get().(io.ReadCloser)
	defer flateReaderPool.Put(fr)
	if err := fr.(flate.Resetter).Reset(bytes.NewReader(stream), nil); err != nil {
		return fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	n, err := io.ReadFull(fr, dst)
	if err != nil || n != len(dst) {
		return fmt.Errorf("%w: flate stream truncated (%d of %d bytes)", ErrCorrupt, n, len(dst))
	}
	// The stream must end cleanly exactly at the declared length: more data
	// means the header lied, and anything but io.EOF means the stream's
	// final block marker was truncated away.
	var one [1]byte
	if m, err := fr.Read(one[:]); m != 0 || err != io.EOF {
		return fmt.Errorf("%w: flate stream does not end at declared length %d (%v)", ErrCorrupt, len(dst), err)
	}
	return nil
}
