// Package compress provides the per-block codecs of the table format. A
// block is compressed independently (the block is the unit of reading and
// caching), and the codec that produced it is recorded in the block
// trailer's type byte, so one table may legitimately mix codecs: every
// block that fails to earn its keep is stored raw.
//
// Two real codecs exist behind the Kind byte:
//
//   - Flate: stdlib DEFLATE at BestSpeed — the density option.
//   - LZ4: a from-scratch LZ4-class byte-oriented codec (greedy hash-table
//     match finder, literal/match token stream) — the speed option.
//
// Compress applies the incompressible-block bailout for both: unless the
// encoded form saves at least 1/8th (12.5%) of the input, the block is
// stored raw, so high-entropy data (Bloom filters, already-compressed
// values) never pays a decompression tax on read.
//
// Kind values are part of the on-disk format (the block trailer type byte)
// and must never be renumbered.
package compress

import (
	"errors"
	"fmt"

	"repro/internal/encoding"
)

// Kind identifies a block codec. The zero value is None (raw), keeping the
// zero Options and every pre-existing table valid.
type Kind uint8

const (
	// None stores blocks raw (the default, and the fallback when a block is
	// incompressible).
	None Kind = 0
	// Flate is stdlib DEFLATE at BestSpeed.
	Flate Kind = 1
	// LZ4 is the from-scratch LZ4-class codec in this package.
	LZ4 Kind = 2

	numKinds = 3
)

// Valid reports whether k names a known codec.
func (k Kind) Valid() bool { return k < numKinds }

// String names the codec for options, stats, and errors.
func (k Kind) String() string {
	switch k {
	case None:
		return "none"
	case Flate:
		return "flate"
	case LZ4:
		return "lz4"
	default:
		return fmt.Sprintf("compression(%d)", uint8(k))
	}
}

// ErrCorrupt reports an undecodable compressed payload: truncated stream,
// impossible match reference, or a length header that disagrees with the
// stream. The sstable reader wraps it into its own corruption error.
var ErrCorrupt = errors.New("compress: corrupt payload")

// maxDecodedLen caps the decompressed size a payload may claim, so a
// corrupt length header cannot demand an arbitrarily large allocation
// before decoding proves it wrong. Far above any real block (blocks are
// cut at Options.BlockSize, typically 4 KiB).
const maxDecodedLen = 1 << 28

// Compress encodes src with codec k into a payload for a block of the
// returned kind. When k is None, or the encoded form does not save at
// least 1/8th of src, src itself is returned with kind None — the caller
// stores the block raw. For Flate and LZ4 the payload is
// uvarint(len(src)) || stream, so Decompress can size its output exactly.
// scratch, if non-nil, may be used as the output buffer (the table writer
// reuses one across blocks); the returned slice aliases either scratch or
// src and is only valid until the next call with the same scratch.
func Compress(k Kind, scratch, src []byte) ([]byte, Kind) {
	if k == None || len(src) == 0 {
		return src, None
	}
	// Bail out unless the encoding saves >= 1/8th of the input. The encoder
	// is handed a budget-capped destination so it can abandon an
	// incompressible block early instead of finishing a too-big encoding.
	budget := len(src) - len(src)/8
	dst := encoding.PutUvarint(scratch[:0], uint64(len(src)))
	var ok bool
	switch k {
	case Flate:
		dst, ok = flateCompress(dst, src, budget)
	case LZ4:
		dst, ok = lz4Compress(dst, src, budget)
	default:
		return src, None
	}
	if !ok || len(dst) > budget {
		return src, None
	}
	return dst, k
}

// Decompress decodes a payload produced by Compress with codec k. For
// None the payload is returned as-is. The result is always freshly
// allocated for compressed kinds (it outlives the read buffer in the block
// cache). Corrupt or truncated payloads return ErrCorrupt — never a panic
// or an over-read.
func Decompress(k Kind, payload []byte) ([]byte, error) {
	if k == None {
		return payload, nil
	}
	if !k.Valid() {
		return nil, fmt.Errorf("%w: unknown codec %d", ErrCorrupt, uint8(k))
	}
	rawLen, n := encoding.Uvarint(payload)
	if n <= 0 {
		return nil, fmt.Errorf("%w: bad length header", ErrCorrupt)
	}
	if rawLen == 0 {
		// Compress never emits an empty compressed block (empty input stays
		// raw), so a zero length header is corruption, not an empty result.
		return nil, fmt.Errorf("%w: zero length header", ErrCorrupt)
	}
	if rawLen > maxDecodedLen {
		return nil, fmt.Errorf("%w: claimed length %d exceeds limit", ErrCorrupt, rawLen)
	}
	stream := payload[n:]
	dst := make([]byte, rawLen)
	switch k {
	case Flate:
		return dst, flateDecompress(dst, stream)
	default:
		return dst, lz4Decompress(dst, stream)
	}
}
