package core

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/compaction"
	"repro/internal/vfs"
)

// Micro-benchmarks of the store's primitive operations per policy, on the
// in-memory filesystem with no simulated device latency (pure engine cost).

func benchOpts(policy compaction.Policy) Options {
	return Options{
		FS:           vfs.Mem(),
		Policy:       policy,
		MemTableSize: 1 << 20,
		SSTableSize:  512 << 10,
		Fanout:       10,
	}
}

func benchDB(b *testing.B, policy compaction.Policy) *DB {
	b.Helper()
	db, err := Open("/bench", benchOpts(policy))
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { db.Close() })
	return db
}

func BenchmarkPutUDC(b *testing.B) { benchmarkPut(b, compaction.UDC) }
func BenchmarkPutLDC(b *testing.B) { benchmarkPut(b, compaction.LDC) }

func benchmarkPut(b *testing.B, policy compaction.Policy) {
	db := benchDB(b, policy)
	val := make([]byte, 256)
	b.SetBytes(256 + 16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := db.Put([]byte(fmt.Sprintf("bench-%012d", i%100000)), val); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGetUDC(b *testing.B) { benchmarkGet(b, compaction.UDC) }
func BenchmarkGetLDC(b *testing.B) { benchmarkGet(b, compaction.LDC) }

func benchmarkGet(b *testing.B, policy compaction.Policy) {
	db := benchDB(b, policy)
	val := make([]byte, 256)
	const n = 50000
	for i := 0; i < n; i++ {
		db.Put([]byte(fmt.Sprintf("bench-%012d", i)), val)
	}
	db.CompactRange()
	rng := rand.New(rand.NewSource(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := db.Get([]byte(fmt.Sprintf("bench-%012d", rng.Intn(n)))); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkScan100UDC(b *testing.B) { benchmarkScan(b, compaction.UDC) }
func BenchmarkScan100LDC(b *testing.B) { benchmarkScan(b, compaction.LDC) }

func benchmarkScan(b *testing.B, policy compaction.Policy) {
	db := benchDB(b, policy)
	val := make([]byte, 256)
	const n = 50000
	for i := 0; i < n; i++ {
		db.Put([]byte(fmt.Sprintf("bench-%012d", i)), val)
	}
	db.CompactRange()
	rng := rand.New(rand.NewSource(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		start := []byte(fmt.Sprintf("bench-%012d", rng.Intn(n-200)))
		if _, err := db.Scan(start, 100); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBatchCommit100(b *testing.B) {
	db := benchDB(b, compaction.LDC)
	val := make([]byte, 128)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		batch := newBenchBatch(i, val)
		if err := db.Apply(batch); err != nil {
			b.Fatal(err)
		}
	}
}
