package core

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/compaction"
)

// Read-path benchmarks: concurrent point-get throughput with and without a
// competing writer (the scenario the read-state refactor targets), plus a
// single-threaded cache-hit Get for allocs/op tracking. Results are recorded
// in BENCH_read_path.json.

// benchReadDB opens a store preloaded with n sequential keys, compacted to a
// steady state. The block cache is sized to hold the whole dataset so the
// benchmark isolates the read path's engine cost (synchronization +
// allocations) rather than block-fetch I/O.
func benchReadDB(b *testing.B, policy compaction.Policy, n int) *DB {
	b.Helper()
	opts := benchOpts(policy)
	opts.BlockCacheSize = 64 << 20
	db, err := Open("/bench", opts)
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { db.Close() })
	val := make([]byte, 256)
	for i := 0; i < n; i++ {
		if err := db.Put(benchReadKey(i), val); err != nil {
			b.Fatal(err)
		}
	}
	if err := db.CompactRange(); err != nil {
		b.Fatal(err)
	}
	return db
}

func benchReadKey(i int) []byte {
	return []byte(fmt.Sprintf("bench-%012d", i))
}

func BenchmarkGetConcurrent(b *testing.B) {
	const n = 50000
	for _, readers := range []int{1, 4, 16} {
		for _, withWriter := range []bool{false, true} {
			name := fmt.Sprintf("readers=%d/writer=%v", readers, withWriter)
			b.Run(name, func(b *testing.B) {
				db := benchReadDB(b, compaction.LDC, n)
				done := make(chan struct{})
				var writerWG sync.WaitGroup
				if withWriter {
					writerWG.Add(1)
					go func() {
						defer writerWG.Done()
						val := make([]byte, 256)
						rng := rand.New(rand.NewSource(99))
						for i := 0; ; i++ {
							select {
							case <-done:
								return
							default:
							}
							if err := db.Put(benchReadKey(rng.Intn(n)), val); err != nil {
								return
							}
						}
					}()
				}
				b.ReportAllocs()
				b.ResetTimer()
				var wg sync.WaitGroup
				per := b.N / readers
				if per == 0 {
					per = 1
				}
				for r := 0; r < readers; r++ {
					wg.Add(1)
					go func(seed int64) {
						defer wg.Done()
						rng := rand.New(rand.NewSource(seed))
						for i := 0; i < per; i++ {
							if _, err := db.Get(benchReadKey(rng.Intn(n))); err != nil {
								b.Error(err)
								return
							}
						}
					}(int64(r + 1))
				}
				wg.Wait()
				b.StopTimer()
				close(done)
				writerWG.Wait()
			})
		}
	}
}

// BenchmarkGetCacheHit measures a single hot key read over and over: every
// block involved is cache-resident, so allocs/op isolates the per-get
// allocation cost of the read path itself.
func BenchmarkGetCacheHit(b *testing.B) {
	db := benchReadDB(b, compaction.LDC, 50000)
	key := benchReadKey(12345)
	if _, err := db.Get(key); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := db.Get(key); err != nil {
			b.Fatal(err)
		}
	}
}
