package core

import (
	"errors"
	"fmt"
	"strings"
	"testing"

	"repro/internal/checksum"
	"repro/internal/compaction"
	"repro/internal/compress"
	"repro/internal/sstable"
	"repro/internal/vfs"
)

// compressibleValue returns a deterministic, highly repetitive value so that
// flate and lz4 actually engage (the writer stores incompressible blocks
// raw, which would defeat these tests).
func compressibleValue(i int) string {
	return strings.Repeat(fmt.Sprintf("value-%04d ", i%97), 20)
}

// TestBitFlipDetectedBothChecksums corrupts one byte of a table file for
// each checksum kind (over compressed blocks, the harder case) and requires
// every damaged read to surface sstable.ErrCorrupt — silent media
// corruption is the fault block checksums exist to catch.
func TestBitFlipDetectedBothChecksums(t *testing.T) {
	for _, ck := range []checksum.Kind{checksum.CRC32C, checksum.XXH3} {
		t.Run(ck.String(), func(t *testing.T) {
			mem := vfs.Mem()
			efs := vfs.NewErrFS(mem)
			opts := smallOpts(compaction.UDC)
			opts.FS = efs
			opts.Compression = compress.LZ4
			opts.ChecksumKind = ck

			db := openTestDB(t, opts)
			const n = 400
			for i := 0; i < n; i++ {
				k := fmt.Sprintf("key-%05d", i)
				if err := db.Put([]byte(k), []byte(compressibleValue(i))); err != nil {
					t.Fatal(err)
				}
			}
			if err := db.CompactRange(); err != nil {
				t.Fatal(err)
			}
			if err := db.Close(); err != nil {
				t.Fatal(err)
			}

			tables := listTables(t, mem, "/db")
			if len(tables) == 0 {
				t.Fatal("no table files after flush")
			}
			// Flip a bit inside the first data block of every table: offset
			// 64 is well within block zero for 512-byte blocks.
			for _, name := range tables {
				if err := efs.FlipBit(name, 64); err != nil {
					t.Fatalf("FlipBit(%s): %v", name, err)
				}
			}

			opts2 := opts
			opts2.FS = mem
			opts2.DisableAutoCompaction = true
			db2, err := Open("/db", opts2)
			if err != nil {
				t.Fatalf("reopen: %v", err)
			}
			defer db2.Close()
			corrupt, silent := 0, 0
			for i := 0; i < n; i++ {
				k := fmt.Sprintf("key-%05d", i)
				got, err := db2.Get([]byte(k))
				switch {
				case err == nil:
					if string(got) != compressibleValue(i) {
						silent++
					}
				case errors.Is(err, sstable.ErrCorrupt):
					corrupt++
				case errors.Is(err, ErrNotFound):
					t.Fatalf("key %s vanished instead of failing checksum", k)
				default:
					t.Fatalf("key %s: untyped error %v", k, err)
				}
			}
			if corrupt == 0 {
				t.Errorf("%v: no read detected the flipped bit", ck)
			}
			if silent != 0 {
				t.Errorf("%v: %d reads returned wrong data without error", ck, silent)
			}
		})
	}
}

func listTables(t *testing.T, fs vfs.FS, dir string) []string {
	t.Helper()
	names, err := fs.List(dir)
	if err != nil {
		t.Fatal(err)
	}
	var out []string
	for _, name := range names {
		if strings.HasSuffix(name, ".sst") {
			out = append(out, dir+"/"+name)
		}
	}
	return out
}

// TestMixedCompressionReopen reopens one store under three different
// (compression, checksum) configurations in sequence. Every phase must read
// tables written by every earlier phase — the codec and checksum kind are
// per-table facts recorded on disk, not global options — and compactions
// must merge mixed inputs into the currently configured output format.
func TestMixedCompressionReopen(t *testing.T) {
	fs := vfs.Mem()
	const perPhase = 300
	phases := []struct {
		comp compress.Kind
		ck   checksum.Kind
	}{
		{compress.None, checksum.CRC32C}, // the legacy/default format
		{compress.LZ4, checksum.XXH3},
		{compress.Flate, checksum.CRC32C},
	}
	total := 0
	for pi, ph := range phases {
		opts := smallOpts(compaction.LDC)
		opts.FS = fs
		opts.Compression = ph.comp
		opts.ChecksumKind = ph.ck
		db, err := Open("/db", opts)
		if err != nil {
			t.Fatalf("phase %d: open: %v", pi, err)
		}
		// All keys written by earlier phases stay readable.
		for i := 0; i < total; i++ {
			k := fmt.Sprintf("key-%05d", i)
			got, err := db.Get([]byte(k))
			if err != nil || string(got) != compressibleValue(i) {
				t.Fatalf("phase %d: key %s = %q, %v", pi, k, got, err)
			}
		}
		for i := total; i < total+perPhase; i++ {
			k := fmt.Sprintf("key-%05d", i)
			if err := db.Put([]byte(k), []byte(compressibleValue(i))); err != nil {
				t.Fatal(err)
			}
		}
		total += perPhase
		// Force merges so this phase's tables mix with earlier formats.
		if err := db.CompactRange(); err != nil {
			t.Fatal(err)
		}
		pairs, err := db.Scan([]byte("key-"), total+10)
		if err != nil {
			t.Fatalf("phase %d: scan: %v", pi, err)
		}
		if len(pairs) != total {
			t.Fatalf("phase %d: scan saw %d keys, want %d", pi, len(pairs), total)
		}
		s := db.Stats()
		if ph.comp != compress.None {
			if s.CompressedBytesWritten == 0 ||
				s.CompressedBytesWritten >= s.UncompressedBytesWritten {
				t.Errorf("phase %d (%v): wrote %d on-disk for %d raw bytes; expected compression",
					pi, ph.comp, s.CompressedBytesWritten, s.UncompressedBytesWritten)
			}
			if s.CompressionRatio <= 1.0 {
				t.Errorf("phase %d: CompressionRatio = %v, want > 1", pi, s.CompressionRatio)
			}
		}
		if s.UncompressedBytesRead < s.CompressedBytesRead {
			t.Errorf("phase %d: decoded %d < on-disk %d read bytes",
				pi, s.UncompressedBytesRead, s.CompressedBytesRead)
		}
		if err := db.Close(); err != nil {
			t.Fatalf("phase %d: close: %v", pi, err)
		}
	}
}
