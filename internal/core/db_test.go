package core

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"testing"
	"time"

	"repro/internal/batch"
	"repro/internal/compaction"
	"repro/internal/version"
	"repro/internal/vfs"
)

// smallOpts builds a tiny tree so a few thousand writes exercise multiple
// levels, links, and merges.
func smallOpts(policy compaction.Policy) Options {
	return Options{
		FS:                  vfs.Mem(),
		Policy:              policy,
		MemTableSize:        8 << 10,
		SSTableSize:         8 << 10,
		Fanout:              4,
		SliceLinkThreshold:  3,
		L0CompactionTrigger: 4,
		L0SlowdownTrigger:   8,
		L0StopTrigger:       12,
		BlockSize:           512,
		BlockCacheSize:      1 << 20,
	}
}

func openTestDB(t testing.TB, opts Options) *DB {
	t.Helper()
	db, err := Open("/db", opts)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	return db
}

func key(i int) []byte   { return []byte(fmt.Sprintf("key-%08d", i)) }
func value(i int) []byte { return []byte(fmt.Sprintf("value-%08d", i)) }

func TestPutGetDelete(t *testing.T) {
	for _, policy := range []compaction.Policy{compaction.UDC, compaction.LDC, compaction.Tiered} {
		t.Run(policy.String(), func(t *testing.T) {
			db := openTestDB(t, smallOpts(policy))
			defer db.Close()

			if err := db.Put([]byte("k"), []byte("v1")); err != nil {
				t.Fatal(err)
			}
			got, err := db.Get([]byte("k"))
			if err != nil || string(got) != "v1" {
				t.Fatalf("Get = %q, %v", got, err)
			}
			if err := db.Put([]byte("k"), []byte("v2")); err != nil {
				t.Fatal(err)
			}
			got, _ = db.Get([]byte("k"))
			if string(got) != "v2" {
				t.Fatalf("overwrite lost: %q", got)
			}
			if err := db.Delete([]byte("k")); err != nil {
				t.Fatal(err)
			}
			if _, err := db.Get([]byte("k")); !errors.Is(err, ErrNotFound) {
				t.Fatalf("deleted key err = %v", err)
			}
			if _, err := db.Get([]byte("absent")); !errors.Is(err, ErrNotFound) {
				t.Fatalf("absent key err = %v", err)
			}
		})
	}
}

func fillSequential(t testing.TB, db *DB, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		if err := db.Put(key(i), value(i)); err != nil {
			t.Fatalf("Put(%d): %v", i, err)
		}
	}
}

func TestPersistenceThroughFlushAndCompaction(t *testing.T) {
	for _, policy := range []compaction.Policy{compaction.UDC, compaction.LDC} {
		t.Run(policy.String(), func(t *testing.T) {
			db := openTestDB(t, smallOpts(policy))
			defer db.Close()
			const n = 5000
			fillSequential(t, db, n)
			if err := db.CompactRange(); err != nil {
				t.Fatal(err)
			}
			for i := 0; i < n; i += 7 {
				got, err := db.Get(key(i))
				if err != nil || !bytes.Equal(got, value(i)) {
					t.Fatalf("key %d after compaction: %q, %v", i, got, err)
				}
			}
			// The tree must have spilled beyond L0.
			prof := db.CurrentProfile()
			deep := 0
			for _, lp := range prof.Levels[1:] {
				deep += lp.Files
			}
			if deep == 0 {
				t.Error("no files below L0 after 5000 writes")
			}
		})
	}
}

func TestLDCPerformsLinksAndMerges(t *testing.T) {
	db := openTestDB(t, smallOpts(compaction.LDC))
	defer db.Close()
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 12000; i++ {
		if err := db.Put(key(rng.Intn(4000)), value(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.CompactRange(); err != nil {
		t.Fatal(err)
	}
	s := db.Stats()
	if s.LinkCount == 0 {
		t.Error("LDC never linked")
	}
	if s.MergeCount == 0 {
		t.Error("LDC never merged")
	}
}

func TestUDCNeverLinks(t *testing.T) {
	db := openTestDB(t, smallOpts(compaction.UDC))
	defer db.Close()
	fillSequential(t, db, 4000)
	db.CompactRange()
	s := db.Stats()
	if s.LinkCount != 0 || s.MergeCount != 0 {
		t.Errorf("UDC produced links=%d merges=%d", s.LinkCount, s.MergeCount)
	}
}

// TestRandomizedCrosscheck runs a random workload against every policy and
// verifies each state-changing step against an in-memory model. This is the
// main end-to-end correctness test for the LDC read path (slices, frozen
// files, merges).
func TestRandomizedCrosscheck(t *testing.T) {
	for _, policy := range []compaction.Policy{compaction.UDC, compaction.LDC, compaction.Tiered} {
		t.Run(policy.String(), func(t *testing.T) {
			db := openTestDB(t, smallOpts(policy))
			defer db.Close()
			model := map[string]string{}
			rng := rand.New(rand.NewSource(42))
			const ops = 15000
			keySpace := 3000
			for i := 0; i < ops; i++ {
				k := fmt.Sprintf("key-%06d", rng.Intn(keySpace))
				switch rng.Intn(10) {
				case 0: // delete
					if err := db.Delete([]byte(k)); err != nil {
						t.Fatal(err)
					}
					delete(model, k)
				default: // put
					v := fmt.Sprintf("v-%d", i)
					if err := db.Put([]byte(k), []byte(v)); err != nil {
						t.Fatal(err)
					}
					model[k] = v
				}
				if i%2500 == 0 {
					db.CompactRange()
				}
			}
			db.CompactRange()

			// Full point-read verification.
			for k, want := range model {
				got, err := db.Get([]byte(k))
				if err != nil || string(got) != want {
					t.Fatalf("Get(%s) = %q, %v; want %q", k, got, err, want)
				}
			}
			// Deleted/absent keys stay absent.
			misses := 0
			for i := 0; i < keySpace; i++ {
				k := fmt.Sprintf("key-%06d", i)
				if _, ok := model[k]; ok {
					continue
				}
				if _, err := db.Get([]byte(k)); !errors.Is(err, ErrNotFound) {
					t.Fatalf("absent key %s: err=%v", k, err)
				}
				misses++
			}
			if misses == 0 {
				t.Log("warning: no absent keys exercised")
			}
		})
	}
}

func TestScanMatchesModel(t *testing.T) {
	for _, policy := range []compaction.Policy{compaction.UDC, compaction.LDC} {
		t.Run(policy.String(), func(t *testing.T) {
			db := openTestDB(t, smallOpts(policy))
			defer db.Close()
			model := map[string]string{}
			rng := rand.New(rand.NewSource(7))
			for i := 0; i < 8000; i++ {
				k := fmt.Sprintf("key-%06d", rng.Intn(2000))
				v := fmt.Sprintf("v-%d", i)
				db.Put([]byte(k), []byte(v))
				model[k] = v
				if i%1000 == 0 {
					db.CompactRange()
				}
			}
			db.CompactRange()

			// Sorted model keys.
			var sorted []string
			for k := range model {
				sorted = append(sorted, k)
			}
			sortStrings(sorted)

			// Full scan via iterator.
			it, err := db.NewIterator(nil)
			if err != nil {
				t.Fatal(err)
			}
			defer it.Close()
			i := 0
			for it.SeekToFirst(); it.Valid(); it.Next() {
				if i >= len(sorted) {
					t.Fatalf("iterator produced extra key %q", it.Key())
				}
				if string(it.Key()) != sorted[i] {
					t.Fatalf("position %d: got %q want %q", i, it.Key(), sorted[i])
				}
				if string(it.Value()) != model[sorted[i]] {
					t.Fatalf("key %q: got value %q want %q", it.Key(), it.Value(), model[sorted[i]])
				}
				i++
			}
			if err := it.Error(); err != nil {
				t.Fatal(err)
			}
			if i != len(sorted) {
				t.Fatalf("iterator yielded %d keys, model has %d", i, len(sorted))
			}

			// Bounded range scans at random starts.
			for trial := 0; trial < 20; trial++ {
				start := fmt.Sprintf("key-%06d", rng.Intn(2100))
				got, err := db.Scan([]byte(start), 50)
				if err != nil {
					t.Fatal(err)
				}
				wantIdx := searchStrings(sorted, start)
				for j, kv := range got {
					if wantIdx+j >= len(sorted) {
						t.Fatalf("scan overran model")
					}
					if string(kv.Key) != sorted[wantIdx+j] {
						t.Fatalf("scan(%s)[%d] = %q want %q", start, j, kv.Key, sorted[wantIdx+j])
					}
				}
			}
		})
	}
}

func TestReverseIteration(t *testing.T) {
	db := openTestDB(t, smallOpts(compaction.LDC))
	defer db.Close()
	const n = 3000
	fillSequential(t, db, n)
	db.Delete(key(100))
	db.CompactRange()

	it, err := db.NewIterator(nil)
	if err != nil {
		t.Fatal(err)
	}
	defer it.Close()
	i := n - 1
	for it.SeekToLast(); it.Valid(); it.Prev() {
		if i == 100 {
			i-- // deleted
		}
		if string(it.Key()) != string(key(i)) {
			t.Fatalf("reverse at %d: got %q", i, it.Key())
		}
		i--
	}
	if i != -1 {
		t.Errorf("reverse stopped at %d", i)
	}
}

func TestIteratorDirectionSwitch(t *testing.T) {
	db := openTestDB(t, smallOpts(compaction.LDC))
	defer db.Close()
	for i := 0; i < 10; i++ {
		db.Put(key(i), value(i))
	}
	it, _ := db.NewIterator(nil)
	defer it.Close()
	it.SeekToFirst()
	it.Next() // 1
	it.Next() // 2
	it.Prev() // 1
	if string(it.Key()) != string(key(1)) {
		t.Fatalf("after fwd,prev at %q", it.Key())
	}
	it.Next() // 2
	if string(it.Key()) != string(key(2)) {
		t.Fatalf("after rev,next at %q", it.Key())
	}
}

func TestSnapshotIsolation(t *testing.T) {
	db := openTestDB(t, smallOpts(compaction.LDC))
	defer db.Close()
	db.Put([]byte("k"), []byte("old"))
	snap, err := db.NewSnapshot()
	if err != nil {
		t.Fatal(err)
	}
	defer snap.Release()
	db.Put([]byte("k"), []byte("new"))
	db.Put([]byte("k2"), []byte("after"))

	got, err := db.GetAt([]byte("k"), snap)
	if err != nil || string(got) != "old" {
		t.Errorf("snapshot Get = %q, %v", got, err)
	}
	if _, err := db.GetAt([]byte("k2"), snap); !errors.Is(err, ErrNotFound) {
		t.Errorf("snapshot sees later key: %v", err)
	}
	got, _ = db.Get([]byte("k"))
	if string(got) != "new" {
		t.Errorf("latest Get = %q", got)
	}
}

func TestSnapshotSurvivesCompaction(t *testing.T) {
	db := openTestDB(t, smallOpts(compaction.LDC))
	defer db.Close()
	db.Put([]byte("pinned"), []byte("v-old"))
	snap, err := db.NewSnapshot()
	if err != nil {
		t.Fatal(err)
	}
	defer snap.Release()
	// Bury the old version under churn and compactions.
	for i := 0; i < 6000; i++ {
		db.Put(key(i%1500), value(i))
	}
	db.Put([]byte("pinned"), []byte("v-new"))
	db.CompactRange()

	got, err := db.GetAt([]byte("pinned"), snap)
	if err != nil || string(got) != "v-old" {
		t.Errorf("snapshot after compaction = %q, %v", got, err)
	}
}

func TestReopenRecoversData(t *testing.T) {
	for _, policy := range []compaction.Policy{compaction.UDC, compaction.LDC} {
		t.Run(policy.String(), func(t *testing.T) {
			opts := smallOpts(policy)
			db := openTestDB(t, opts)
			const n = 4000
			fillSequential(t, db, n)
			db.Delete(key(5))
			db.CompactRange()
			profBefore := db.CurrentProfile()
			if err := db.Close(); err != nil {
				t.Fatal(err)
			}

			db2, err := Open("/db", opts)
			if err != nil {
				t.Fatalf("reopen: %v", err)
			}
			defer db2.Close()
			for i := 0; i < n; i += 13 {
				if i == 5 {
					continue
				}
				got, err := db2.Get(key(i))
				if err != nil || !bytes.Equal(got, value(i)) {
					t.Fatalf("key %d after reopen: %q, %v", i, got, err)
				}
			}
			if _, err := db2.Get(key(5)); !errors.Is(err, ErrNotFound) {
				t.Error("tombstone lost in recovery")
			}
			if policy == compaction.LDC && profBefore.FrozenFiles > 0 {
				if got := db2.CurrentProfile(); got.FrozenFiles != profBefore.FrozenFiles {
					t.Errorf("frozen files after reopen = %d, want %d",
						got.FrozenFiles, profBefore.FrozenFiles)
				}
			}
		})
	}
}

func TestReopenRecoversUnflushedWrites(t *testing.T) {
	opts := smallOpts(compaction.LDC)
	db := openTestDB(t, opts)
	// Few writes: everything still in the memtable + WAL.
	for i := 0; i < 20; i++ {
		db.Put(key(i), value(i))
	}
	db.Close()

	db2, err := Open("/db", opts)
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	for i := 0; i < 20; i++ {
		got, err := db2.Get(key(i))
		if err != nil || !bytes.Equal(got, value(i)) {
			t.Fatalf("WAL-recovered key %d: %q, %v", i, got, err)
		}
	}
}

func TestObsoleteFilesDeleted(t *testing.T) {
	opts := smallOpts(compaction.UDC)
	db := openTestDB(t, opts)
	defer db.Close()
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < 10000; i++ {
		db.Put(key(rng.Intn(3000)), value(i))
	}
	db.CompactRange()
	db.WaitIdle()
	db.shards[0].deleteObsoleteFiles()

	// Every .sst on disk must be referenced by the live version.
	live := db.shards[0].set.LiveFileNums()
	names, _ := opts.FS.List("/db")
	for _, name := range names {
		if typ, num := version.ParseFileName(name); typ == version.TypeTable && !live[num] {
			t.Errorf("orphan table file %s on disk", name)
		}
	}
	if db.Stats().ObsoleteDeleted == 0 {
		t.Error("no obsolete files were ever deleted")
	}
}

func TestLDCFrozenSpaceBounded(t *testing.T) {
	db := openTestDB(t, smallOpts(compaction.LDC))
	defer db.Close()
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 20000; i++ {
		db.Put(key(rng.Intn(6000)), value(i))
	}
	db.WaitIdle()
	prof := db.CurrentProfile()
	var resident int64
	for _, lp := range prof.Levels {
		resident += lp.Bytes
	}
	if resident == 0 {
		t.Fatal("no resident data")
	}
	frac := float64(prof.FrozenBytes) / float64(resident+prof.FrozenBytes)
	if frac > 0.5 {
		t.Errorf("frozen region is %.1f%% of store; backpressure failed", frac*100)
	}
}

func TestLDCLowerCompactionIOThanUDC(t *testing.T) {
	run := func(policy compaction.Policy) Stats {
		fs := vfs.Mem()
		opts := smallOpts(policy)
		opts.FS = fs
		db, err := Open("/db", opts)
		if err != nil {
			t.Fatal(err)
		}
		defer db.Close()
		rng := rand.New(rand.NewSource(11))
		for i := 0; i < 20000; i++ {
			db.Put(key(rng.Intn(8000)), value(i))
		}
		db.WaitIdle()
		return db.Stats()
	}
	udc := run(compaction.UDC)
	ldc := run(compaction.LDC)
	udcIO := udc.CompactionReadBytes + udc.CompactionWriteBytes
	ldcIO := ldc.CompactionReadBytes + ldc.CompactionWriteBytes
	if udcIO == 0 {
		t.Fatal("UDC did no compaction I/O")
	}
	if float64(ldcIO) > 0.9*float64(udcIO) {
		t.Errorf("LDC compaction I/O %d not clearly below UDC %d (paper: ~50%%)", ldcIO, udcIO)
	}
	if ldc.WriteAmplification() >= udc.WriteAmplification() {
		t.Errorf("LDC write amp %.2f >= UDC %.2f", ldc.WriteAmplification(), udc.WriteAmplification())
	}
}

func TestAdaptiveThresholdMoves(t *testing.T) {
	a := newAdaptiveThreshold(8, 8)
	start := a.threshold()
	// Write-dominated windows push it up.
	for i := 0; i < 3*adaptiveWindow; i++ {
		a.observeWrites(1)
	}
	if a.threshold() <= start {
		t.Errorf("threshold did not rise under writes: %d", a.threshold())
	}
	high := a.threshold()
	// Read-dominated windows pull it down.
	for i := 0; i < 20*adaptiveWindow; i++ {
		a.observeReads(1)
	}
	if a.threshold() >= high {
		t.Errorf("threshold did not fall under reads: %d", a.threshold())
	}
	if a.threshold() < 2 {
		t.Errorf("threshold fell below minimum: %d", a.threshold())
	}
}

func TestBatchAtomicity(t *testing.T) {
	db := openTestDB(t, smallOpts(compaction.LDC))
	defer db.Close()
	b := batch.New()
	b.Set([]byte("a"), []byte("1"))
	b.Set([]byte("b"), []byte("2"))
	b.Set([]byte("c"), []byte("3"))
	if err := db.Apply(b); err != nil {
		t.Fatal(err)
	}
	for k, want := range map[string]string{"a": "1", "b": "2", "c": "3"} {
		got, err := db.Get([]byte(k))
		if err != nil || string(got) != want {
			t.Errorf("Get(%s) = %q, %v", k, got, err)
		}
	}
}

// TestUseAfterClose drives every public entry point against a closed store:
// each must fail with ErrClosed (or, for Stats/CurrentProfile, keep working
// on the final counters) rather than racing on torn-down state. The server's
// graceful drain depends on these semantics.
func TestUseAfterClose(t *testing.T) {
	db := openTestDB(t, smallOpts(compaction.UDC))
	if err := db.Put([]byte("k"), []byte("v")); err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatalf("first Close: %v", err)
	}

	cases := []struct {
		name string
		op   func() error
	}{
		{"Put", func() error { return db.Put([]byte("k"), []byte("v")) }},
		{"Delete", func() error { return db.Delete([]byte("k")) }},
		{"Apply", func() error {
			b := batch.New()
			b.Set([]byte("k"), []byte("v"))
			return db.Apply(b)
		}},
		{"Get", func() error { _, err := db.Get([]byte("k")); return err }},
		{"GetAt", func() error { _, err := db.GetAt([]byte("k"), nil); return err }},
		{"NewIterator", func() error { _, err := db.NewIterator(nil); return err }},
		{"NewSnapshot", func() error { _, err := db.NewSnapshot(); return err }},
		{"Scan", func() error { _, err := db.Scan(nil, 10); return err }},
		{"CompactRange", func() error { return db.CompactRange() }},
	}
	for _, tc := range cases {
		if err := tc.op(); !errors.Is(err, ErrClosed) {
			t.Errorf("%s after Close: got %v, want ErrClosed", tc.name, err)
		}
	}

	// Stats and CurrentProfile stay usable: drain paths report final counters
	// after the DB is gone.
	if s := db.Stats(); s.Puts != 1 {
		t.Errorf("Stats after Close: Puts = %d, want 1", s.Puts)
	}
	if p := db.CurrentProfile(); len(p.Levels) == 0 {
		t.Error("CurrentProfile after Close returned no levels")
	}

	// Close is idempotent: repeated and concurrent calls return the first
	// teardown's result (nil here) once it completes.
	if err := db.Close(); err != nil {
		t.Errorf("double Close: %v", err)
	}
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := db.Close(); err != nil {
				t.Errorf("concurrent Close: %v", err)
			}
		}()
	}
	wg.Wait()
}

// TestCloseConcurrentWithOps closes the store while readers and writers are
// mid-flight: every operation must either succeed or fail with ErrClosed —
// never crash, race, or corrupt — and WaitIdle/Stats must stay callable
// throughout.
func TestCloseConcurrentWithOps(t *testing.T) {
	db := openTestDB(t, smallOpts(compaction.LDC))
	for i := 0; i < 500; i++ {
		db.Put(key(i), value(i))
	}
	var wg sync.WaitGroup
	start := make(chan struct{})
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			<-start
			for i := 0; ; i++ {
				var err error
				switch i % 4 {
				case 0:
					err = db.Put(key(g*1000+i), value(i))
				case 1:
					_, err = db.Get(key(i % 500))
					if errors.Is(err, ErrNotFound) {
						err = nil
					}
				case 2:
					_, err = db.Scan(key(i%500), 5)
				case 3:
					var snap *Snapshot
					snap, err = db.NewSnapshot()
					if err == nil {
						snap.Release()
					}
				}
				if err != nil {
					if !errors.Is(err, ErrClosed) {
						t.Errorf("op %d: %v", i%4, err)
					}
					return
				}
			}
		}(g)
	}
	close(start)
	time.Sleep(5 * time.Millisecond)
	if err := db.Close(); err != nil {
		t.Fatalf("Close during traffic: %v", err)
	}
	wg.Wait()
	db.Stats() // must not race with anything above
}

func TestStallAccounting(t *testing.T) {
	opts := smallOpts(compaction.UDC)
	opts.MemTableSize = 2 << 10 // very small: frequent flushes
	db := openTestDB(t, opts)
	defer db.Close()
	for i := 0; i < 6000; i++ {
		db.Put(key(i), bytes.Repeat([]byte{'x'}, 64))
	}
	s := db.Stats()
	if s.FlushCount == 0 {
		t.Error("no flushes with tiny memtable")
	}
	if s.StallTime == 0 && s.SlowdownCount == 0 && s.StopCount == 0 {
		t.Log("note: no stalls observed (machine fast relative to workload)")
	}
}

// --- helpers ---

func sortStrings(s []string)                 { sort.Strings(s) }
func searchStrings(s []string, t string) int { return sort.SearchStrings(s, t) }
