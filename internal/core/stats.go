package core

import (
	"fmt"
	"sync/atomic"
	"time"

	"repro/internal/histogram"
)

// Stats is a snapshot of the store's internal counters. The categories map
// onto the paper's measurements: compaction read/write bytes (Fig 10c,
// Fig 12d/e/f, Fig 14), time share of compaction work (Table I), and write
// stalls (the mechanism behind Fig 1 and Fig 8 tail latencies).
type Stats struct {
	// I/O volumes in bytes, counted at the table-building layer.
	FlushWriteBytes      int64
	CompactionReadBytes  int64
	CompactionWriteBytes int64
	// MergeReadBytes/MergeWriteBytes are the LDC merge-phase subset of the
	// compaction totals (diagnostics and the ablation benches).
	MergeReadBytes  int64
	MergeWriteBytes int64
	UserWriteBytes  int64
	WALWriteBytes   int64

	// Operation counts.
	FlushCount       int64
	CompactionCount  int64 // conventional compactions (UDC, L0, tiered)
	LinkCount        int64 // LDC link phases (metadata only)
	MergeCount       int64 // LDC merge phases
	TrivialMoveCount int64
	ObsoleteDeleted  int64

	// Timing (Table I's breakdown).
	CompactionTime time.Duration // background compaction + flush work
	FlushTime      time.Duration // flush-worker subset of CompactionTime
	WriteTime      time.Duration // user write path (DoWrite)
	ReadTime       time.Duration // user read path
	StallTime      time.Duration // write-path waits on compaction
	SlowdownCount  int64         // 1ms L0 slowdowns applied
	StopCount      int64         // hard write stops encountered

	// Commit pipeline (the group-commit front end).
	WriteGroupsTotal  int64   // write groups committed to the WAL
	WriteBatchesTotal int64   // member batches across all groups (≥ groups)
	AvgGroupSize      float64 // batches per group
	WALSyncNanos      int64   // time spent in WAL fsync (outside db.mu)
	WALSyncCount      int64   // WAL fsyncs issued by group leaders
	WriteState        string  // controller admission state: ok|delayed|stopped

	// Concurrency (the parallel engine's effect).
	MaxConcurrentCompactions int64   // high-water mark of simultaneously executing jobs
	WorkerCompactions        []int64 // jobs completed per compaction worker

	// Request counts.
	Puts, Gets, Deletes, Scans int64

	// Read path (the lock-free read-state refactor's observability).
	BloomProbes        int64   // bloom-filter consultations by point gets
	BloomNegatives     int64   // probes skipped by a negative filter answer
	TableProbes        int64   // tables actually probed (post-filter) by point gets
	PointReadAmp       float64 // TableProbes per Get — the point read amplification
	ReadStatePublishes int64   // read-state rebuilds (rotations, flushes, version installs)
	BlockCacheHits     int64
	BlockCacheMisses   int64
	BlockCacheHitRatio float64

	// On-disk format (per-block compression, the hot-format work).
	// Read side: totals over block fetches that missed the block cache —
	// CompressedBytesRead is what came off the device, UncompressedBytesRead
	// what the blocks decoded to (equal for raw blocks).
	CompressedBytesRead   int64
	UncompressedBytesRead int64
	// Write side: block payload bytes before/after compression across all
	// flushed and compacted tables.
	UncompressedBytesWritten int64
	CompressedBytesWritten   int64
	// CompressionRatio is uncompressed/compressed over written block
	// payloads (1.0 when nothing compressed; 0 when nothing written yet).
	CompressionRatio float64

	// Foreground latency distributions: full percentile ladders for the
	// user-facing read (Get) and write (Apply) paths — the tail-latency lens
	// the brownout benchmark gates on. Populated by the router from merged
	// per-shard histograms; zero in aggregateStats input.
	ReadLatency  histogram.Distribution
	WriteLatency histogram.Distribution

	// Value separation (internal/vlog). The first two are per-shard commit
	// path counters; the Vlog*/Blob* group reflects the one shared value
	// log and is folded in once by the router (zero per shard, like the
	// block cache).
	BlobValuesSeparated  int64   // Set entries redirected to the value log
	BlobBytesSeparated   int64   // user value bytes those entries carried
	VlogSegments         int     // live segment files
	VlogTotalBytes       int64   // valid extents of all segments
	VlogDeadBytes        int64   // bytes compactions/GC proved unreachable
	VlogLiveRatio        float64 // 1 - dead/total (1.0 when empty)
	VlogAppendedBytes    int64   // lifetime appends, foreground + GC
	VlogGCPasses         int64   // segments reclaimed
	VlogGCBytesRewritten int64   // live bytes relocated by GC
	VlogGCRecordsGuarded int64   // rewrites dropped by the commit-time guard
	BlobResolves         int64   // pointer resolutions on the read path
	BlobResolveCacheHits int64   // resolutions served from the block cache

	// I/O scheduler (internal/iosched) counters. The limiter is one shared
	// database-wide instance, so like the block cache these are folded in
	// once by the router and left zero per shard.
	IOSchedFlushBytes     int64         // bytes charged at flush tier
	IOSchedL0Bytes        int64         // bytes charged at L0→L1 tier
	IOSchedMergeBytes     int64         // bytes charged at LDC-merge tier
	IOSchedThrottledWaits int64         // block writes that had to queue for tokens
	IOSchedThrottleTime   time.Duration // cumulative queue wait
	IOSchedPreemptions    int64         // grants that jumped an older lower-tier waiter
	IOSchedQueueFlush     int64         // current queue depth, flush tier
	IOSchedQueueL0        int64         // current queue depth, L0 tier
	IOSchedQueueMerge     int64         // current queue depth, merge tier
}

// WriteAmplification reports physical table writes per user byte:
// (flush + compaction writes) / user bytes.
func (s Stats) WriteAmplification() float64 {
	if s.UserWriteBytes == 0 {
		return 0
	}
	return float64(s.FlushWriteBytes+s.CompactionWriteBytes) / float64(s.UserWriteBytes)
}

// CompactionIOBytes reports the paper's Fig 10(c) quantity.
func (s Stats) CompactionIOBytes() (read, write int64) {
	return s.CompactionReadBytes, s.CompactionWriteBytes
}

// String renders a compact summary.
func (s Stats) String() string {
	return fmt.Sprintf(
		"flushW=%dMB compR=%dMB compW=%dMB userW=%dMB wamp=%.2f flush=%d compact=%d link=%d merge=%d move=%d stall=%v slow=%d stop=%d",
		s.FlushWriteBytes>>20, s.CompactionReadBytes>>20, s.CompactionWriteBytes>>20,
		s.UserWriteBytes>>20, s.WriteAmplification(),
		s.FlushCount, s.CompactionCount, s.LinkCount, s.MergeCount, s.TrivialMoveCount,
		s.StallTime, s.SlowdownCount, s.StopCount)
}

// dbStats is the live atomic counterpart of Stats.
type dbStats struct {
	flushWriteBytes      atomic.Int64
	compactionReadBytes  atomic.Int64
	compactionWriteBytes atomic.Int64
	mergeReadBytes       atomic.Int64
	mergeWriteBytes      atomic.Int64
	userWriteBytes       atomic.Int64
	walWriteBytes        atomic.Int64

	flushCount       atomic.Int64
	compactionCount  atomic.Int64
	linkCount        atomic.Int64
	mergeCount       atomic.Int64
	trivialMoveCount atomic.Int64
	obsoleteDeleted  atomic.Int64

	compactionNanos atomic.Int64
	flushNanos      atomic.Int64
	writeNanos      atomic.Int64
	readNanos       atomic.Int64
	walSyncNanos    atomic.Int64
	walSyncCount    atomic.Int64

	maxConcurrentCompactions atomic.Int64
	workerJobs               []atomic.Int64 // sized once in initWorkers, before workers start

	puts, gets, deletes, scans atomic.Int64

	bloomProbes        atomic.Int64
	bloomNegatives     atomic.Int64
	tableProbes        atomic.Int64
	readStatePublishes atomic.Int64

	blockBytesUncompressed atomic.Int64 // block payloads written, pre-compression
	blockBytesCompressed   atomic.Int64 // block payloads written, on-disk form

	blobValuesSeparated atomic.Int64 // Sets redirected to the value log
	blobBytesSeparated  atomic.Int64 // value bytes those Sets carried

	// Foreground latency histograms (lock-free atomic buckets). The router
	// merges shards' histograms and snapshots the result; the per-shard
	// Stats carries its own snapshot.
	readHist  histogram.Histogram
	writeHist histogram.Histogram
}

// initWorkers sizes the per-worker counters; called once before the worker
// pool starts, so the slice header is never written concurrently.
func (d *dbStats) initWorkers(n int) {
	d.workerJobs = make([]atomic.Int64, n)
}

// noteConcurrency records a new number of simultaneously executing
// compaction jobs, keeping the high-water mark.
func (d *dbStats) noteConcurrency(n int) {
	for {
		cur := d.maxConcurrentCompactions.Load()
		if int64(n) <= cur || d.maxConcurrentCompactions.CompareAndSwap(cur, int64(n)) {
			return
		}
	}
}

func (d *dbStats) snapshot() Stats {
	s := Stats{
		FlushWriteBytes:      d.flushWriteBytes.Load(),
		CompactionReadBytes:  d.compactionReadBytes.Load(),
		CompactionWriteBytes: d.compactionWriteBytes.Load(),
		MergeReadBytes:       d.mergeReadBytes.Load(),
		MergeWriteBytes:      d.mergeWriteBytes.Load(),
		UserWriteBytes:       d.userWriteBytes.Load(),
		WALWriteBytes:        d.walWriteBytes.Load(),
		FlushCount:           d.flushCount.Load(),
		CompactionCount:      d.compactionCount.Load(),
		LinkCount:            d.linkCount.Load(),
		MergeCount:           d.mergeCount.Load(),
		TrivialMoveCount:     d.trivialMoveCount.Load(),
		ObsoleteDeleted:      d.obsoleteDeleted.Load(),
		CompactionTime:       time.Duration(d.compactionNanos.Load()),
		FlushTime:            time.Duration(d.flushNanos.Load()),
		WriteTime:            time.Duration(d.writeNanos.Load()),
		ReadTime:             time.Duration(d.readNanos.Load()),
		WALSyncNanos:         d.walSyncNanos.Load(),
		WALSyncCount:         d.walSyncCount.Load(),

		MaxConcurrentCompactions: d.maxConcurrentCompactions.Load(),
		WorkerCompactions:        d.workerSnapshot(),

		Puts:    d.puts.Load(),
		Gets:    d.gets.Load(),
		Deletes: d.deletes.Load(),
		Scans:   d.scans.Load(),

		BloomProbes:        d.bloomProbes.Load(),
		BloomNegatives:     d.bloomNegatives.Load(),
		TableProbes:        d.tableProbes.Load(),
		ReadStatePublishes: d.readStatePublishes.Load(),

		UncompressedBytesWritten: d.blockBytesUncompressed.Load(),
		CompressedBytesWritten:   d.blockBytesCompressed.Load(),

		BlobValuesSeparated: d.blobValuesSeparated.Load(),
		BlobBytesSeparated:  d.blobBytesSeparated.Load(),
	}
	if s.Gets > 0 {
		s.PointReadAmp = float64(s.TableProbes) / float64(s.Gets)
	}
	if s.CompressedBytesWritten > 0 {
		s.CompressionRatio = float64(s.UncompressedBytesWritten) / float64(s.CompressedBytesWritten)
	}
	s.ReadLatency = d.readHist.Snapshot()
	s.WriteLatency = d.writeHist.Snapshot()
	return s
}

func (d *dbStats) workerSnapshot() []int64 {
	out := make([]int64, len(d.workerJobs))
	for i := range d.workerJobs {
		out[i] = d.workerJobs[i].Load()
	}
	return out
}

// writeStateRank orders controller admission states by severity so the
// aggregate can report the worst shard's state.
func writeStateRank(s string) int {
	switch s {
	case "stopped":
		return 2
	case "delayed":
		return 1
	default:
		return 0
	}
}

// aggregateStats folds per-shard snapshots into one database-wide Stats.
// Raw counters sum; derived ratios (AvgGroupSize, PointReadAmp,
// CompressionRatio) are recomputed from the summed numerators and
// denominators rather than averaged, so they stay exact; WriteState reports
// the most-restricted shard; WorkerCompactions concatenates every shard's
// worker pool (each shard runs its own); MaxConcurrentCompactions sums the
// per-shard high-water marks (shards compact independently, so the sum is
// the database-wide capacity bound). Block-cache, I/O-scheduler, and
// latency-distribution fields are left zero — the cache and limiter are
// shared and folded in exactly once by the router, and distributions cannot
// be summed (the router merges the shards' raw histograms instead).
func aggregateStats(per []Stats) Stats {
	var s Stats
	for _, p := range per {
		s.FlushWriteBytes += p.FlushWriteBytes
		s.CompactionReadBytes += p.CompactionReadBytes
		s.CompactionWriteBytes += p.CompactionWriteBytes
		s.MergeReadBytes += p.MergeReadBytes
		s.MergeWriteBytes += p.MergeWriteBytes
		s.UserWriteBytes += p.UserWriteBytes
		s.WALWriteBytes += p.WALWriteBytes

		s.FlushCount += p.FlushCount
		s.CompactionCount += p.CompactionCount
		s.LinkCount += p.LinkCount
		s.MergeCount += p.MergeCount
		s.TrivialMoveCount += p.TrivialMoveCount
		s.ObsoleteDeleted += p.ObsoleteDeleted

		s.CompactionTime += p.CompactionTime
		s.FlushTime += p.FlushTime
		s.WriteTime += p.WriteTime
		s.ReadTime += p.ReadTime
		s.StallTime += p.StallTime
		s.SlowdownCount += p.SlowdownCount
		s.StopCount += p.StopCount

		s.WriteGroupsTotal += p.WriteGroupsTotal
		s.WriteBatchesTotal += p.WriteBatchesTotal
		s.WALSyncNanos += p.WALSyncNanos
		s.WALSyncCount += p.WALSyncCount
		if writeStateRank(p.WriteState) > writeStateRank(s.WriteState) {
			s.WriteState = p.WriteState
		}

		s.MaxConcurrentCompactions += p.MaxConcurrentCompactions
		s.WorkerCompactions = append(s.WorkerCompactions, p.WorkerCompactions...)

		s.Puts += p.Puts
		s.Gets += p.Gets
		s.Deletes += p.Deletes
		s.Scans += p.Scans

		s.BloomProbes += p.BloomProbes
		s.BloomNegatives += p.BloomNegatives
		s.TableProbes += p.TableProbes
		s.ReadStatePublishes += p.ReadStatePublishes

		s.CompressedBytesRead += p.CompressedBytesRead
		s.UncompressedBytesRead += p.UncompressedBytesRead
		s.UncompressedBytesWritten += p.UncompressedBytesWritten
		s.CompressedBytesWritten += p.CompressedBytesWritten

		s.BlobValuesSeparated += p.BlobValuesSeparated
		s.BlobBytesSeparated += p.BlobBytesSeparated
	}
	if s.WriteState == "" && len(per) > 0 {
		s.WriteState = per[0].WriteState
	}
	if s.WriteGroupsTotal > 0 {
		s.AvgGroupSize = float64(s.WriteBatchesTotal) / float64(s.WriteGroupsTotal)
	}
	if s.Gets > 0 {
		s.PointReadAmp = float64(s.TableProbes) / float64(s.Gets)
	}
	if s.CompressedBytesWritten > 0 {
		s.CompressionRatio = float64(s.UncompressedBytesWritten) / float64(s.CompressedBytesWritten)
	}
	return s
}
