package core

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/compaction"
	"repro/internal/vfs"
	"repro/internal/vlog"
)

// blobOpts returns smallOpts with value separation enabled: values of 64
// bytes and up go to the value log, segments rotate every 2 KiB so GC has
// sealed segments to work with.
func blobOpts(policy compaction.Policy) Options {
	opts := smallOpts(policy)
	opts.BlobThreshold = 64
	opts.BlobSegmentSize = 2 << 10
	return opts
}

// blobValue builds a deterministic value of n bytes for key index i.
func blobValue(i, n int) []byte {
	v := make([]byte, n)
	seed := fmt.Sprintf("blob-%d-", i)
	for j := range v {
		v[j] = seed[j%len(seed)]
	}
	return v
}

// TestBlobSeparationRoundTrip writes a mix of inline and separated values
// and reads them back through every read path: Get, Scan, forward and
// reverse iteration — before and after flushes push the pointer entries
// into tables, and again after a full reopen.
func TestBlobSeparationRoundTrip(t *testing.T) {
	for _, policy := range []compaction.Policy{compaction.UDC, compaction.LDC} {
		t.Run(policy.String(), func(t *testing.T) {
			opts := blobOpts(policy)
			db := openTestDB(t, opts)

			const n = 200
			want := make(map[string][]byte, n)
			for i := 0; i < n; i++ {
				size := 16 // inline
				if i%2 == 0 {
					size = 100 + i // separated (>= 64)
				}
				v := blobValue(i, size)
				if err := db.Put(key(i), v); err != nil {
					t.Fatalf("put %d: %v", i, err)
				}
				want[string(key(i))] = v
			}

			check := func(stage string) {
				t.Helper()
				for i := 0; i < n; i++ {
					got, err := db.Get(key(i))
					if err != nil {
						t.Fatalf("%s: get %d: %v", stage, i, err)
					}
					if !bytes.Equal(got, want[string(key(i))]) {
						t.Fatalf("%s: get %d: wrong value (len %d, want %d)",
							stage, i, len(got), len(want[string(key(i))]))
					}
				}
				kvs, err := db.Scan(key(0), n)
				if err != nil {
					t.Fatalf("%s: scan: %v", stage, err)
				}
				if len(kvs) != n {
					t.Fatalf("%s: scan returned %d pairs, want %d", stage, len(kvs), n)
				}
				for _, kv := range kvs {
					if !bytes.Equal(kv.Value, want[string(kv.Key)]) {
						t.Fatalf("%s: scan %s: wrong value", stage, kv.Key)
					}
				}
				it, err := db.NewIterator(nil)
				if err != nil {
					t.Fatalf("%s: iterator: %v", stage, err)
				}
				seen := 0
				for it.SeekToLast(); it.Valid(); it.Prev() {
					if !bytes.Equal(it.Value(), want[string(it.Key())]) {
						t.Fatalf("%s: reverse iter %s: wrong value", stage, it.Key())
					}
					seen++
				}
				if err := it.Close(); err != nil {
					t.Fatalf("%s: iter close: %v", stage, err)
				}
				if seen != n {
					t.Fatalf("%s: reverse iter saw %d keys, want %d", stage, seen, n)
				}
			}

			check("memtable")
			if err := db.CompactRange(); err != nil {
				t.Fatalf("compact: %v", err)
			}
			check("tables")

			s := db.Stats()
			if s.BlobValuesSeparated != n/2 {
				t.Errorf("BlobValuesSeparated = %d, want %d", s.BlobValuesSeparated, n/2)
			}
			if s.VlogTotalBytes == 0 || s.VlogSegments == 0 {
				t.Errorf("vlog stats empty after separation: %+v", s)
			}
			if s.BlobResolves == 0 {
				t.Errorf("no pointer resolutions recorded")
			}

			if err := db.Close(); err != nil {
				t.Fatalf("close: %v", err)
			}
			db, err := Open("/db", opts)
			if err != nil {
				t.Fatalf("reopen: %v", err)
			}
			defer db.Close()
			check("reopened")
		})
	}
}

// TestBlobDisabledNoVlogArtifacts checks the layout-compatibility promise:
// with BlobThreshold zero the database never creates a vlog directory or
// any segment file, even for huge values.
func TestBlobDisabledNoVlogArtifacts(t *testing.T) {
	opts := smallOpts(compaction.LDC)
	db := openTestDB(t, opts)
	for i := 0; i < 20; i++ {
		if err := db.Put(key(i), blobValue(i, 4096)); err != nil {
			t.Fatalf("put: %v", err)
		}
	}
	if err := db.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	names, _ := opts.FS.List("/db/vlog")
	if len(names) != 0 {
		t.Fatalf("vlog artifacts with separation disabled: %v", names)
	}
	names, _ = opts.FS.List("/db")
	for _, name := range names {
		if strings.Contains(name, "vlog") {
			t.Fatalf("unexpected vlog entry in db dir: %v", names)
		}
	}
}

// TestBlobDisableReopenStillResolves turns separation off on reopen and
// verifies old pointers still resolve (the log opens read-mostly whenever
// segments exist on disk) while new writes stay inline.
func TestBlobDisableReopenStillResolves(t *testing.T) {
	opts := blobOpts(compaction.LDC)
	db := openTestDB(t, opts)
	const n = 50
	for i := 0; i < n; i++ {
		if err := db.Put(key(i), blobValue(i, 256)); err != nil {
			t.Fatalf("put: %v", err)
		}
	}
	if err := db.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}

	opts2 := opts
	opts2.BlobThreshold = 0
	db, err := Open("/db", opts2)
	if err != nil {
		t.Fatalf("reopen with separation off: %v", err)
	}
	defer db.Close()
	for i := 0; i < n; i++ {
		got, err := db.Get(key(i))
		if err != nil || !bytes.Equal(got, blobValue(i, 256)) {
			t.Fatalf("get %d after disable: %v (len %d)", i, err, len(got))
		}
	}
	before := db.Stats().VlogTotalBytes
	if before == 0 {
		t.Fatalf("vlog not opened for existing segments")
	}
	// New writes must not grow the log.
	for i := n; i < n+10; i++ {
		if err := db.Put(key(i), blobValue(i, 256)); err != nil {
			t.Fatalf("put: %v", err)
		}
	}
	if after := db.Stats().VlogTotalBytes; after != before {
		t.Fatalf("vlog grew from %d to %d with separation disabled", before, after)
	}
}

// TestBlobGCReclaimsDeadSegments overwrites every separated value, compacts
// until the old pointer entries are dropped (feeding the dead-byte
// accounting), then runs GC and verifies segments are actually deleted
// while every key still reads its newest value.
func TestBlobGCReclaimsDeadSegments(t *testing.T) {
	for _, policy := range []compaction.Policy{compaction.UDC, compaction.LDC} {
		t.Run(policy.String(), func(t *testing.T) {
			opts := blobOpts(policy)
			db := openTestDB(t, opts)
			// Enough generations that flushes and real compactions happen —
			// only a compaction dropping a shadowed pointer feeds the
			// dead-byte accounting (CompactRange alone never rewrites a
			// lone L0 table).
			const n, gens = 150, 6
			for g := 0; g < gens; g++ {
				for i := 0; i < n; i++ {
					if err := db.Put(key(i), blobValue(i+g*7777, 200)); err != nil {
						t.Fatalf("gen %d put %d: %v", g, i, err)
					}
				}
			}
			// Compaction drops the shadowed pointer entries and marks their
			// records dead.
			if err := db.CompactRange(); err != nil {
				t.Fatalf("compact: %v", err)
			}
			before := db.Stats()
			if before.VlogDeadBytes == 0 {
				t.Fatalf("no dead bytes recorded after compaction: %+v", before)
			}
			if err := db.RunValueGC(); err != nil {
				t.Fatalf("gc: %v", err)
			}
			after := db.Stats()
			if after.VlogGCPasses == 0 {
				t.Fatalf("GC reclaimed nothing: before=%+v after=%+v", before, after)
			}
			if after.VlogTotalBytes >= before.VlogTotalBytes {
				t.Errorf("vlog did not shrink: %d -> %d bytes",
					before.VlogTotalBytes, after.VlogTotalBytes)
			}
			for i := 0; i < n; i++ {
				got, err := db.Get(key(i))
				if err != nil || !bytes.Equal(got, blobValue(i+(gens-1)*7777, 200)) {
					t.Fatalf("get %d after GC: %v (len %d)", i, err, len(got))
				}
			}
			// CompactValueLog drains the remainder; reopen and re-verify —
			// nothing a GC deleted may be needed again.
			if err := db.CompactValueLog(); err != nil {
				t.Fatalf("compact value log: %v", err)
			}
			if err := db.Close(); err != nil {
				t.Fatalf("close: %v", err)
			}
			db, err := Open("/db", opts)
			if err != nil {
				t.Fatalf("reopen: %v", err)
			}
			defer db.Close()
			for i := 0; i < n; i++ {
				got, err := db.Get(key(i))
				if err != nil || !bytes.Equal(got, blobValue(i+(gens-1)*7777, 200)) {
					t.Fatalf("get %d after reopen: %v (len %d)", i, err, len(got))
				}
			}
		})
	}
}

// TestBlobShardedRoundTrip runs separation across a sharded database: one
// shared log, per-shard writers, GC routed to each segment's owning shard.
func TestBlobShardedRoundTrip(t *testing.T) {
	opts := blobOpts(compaction.LDC)
	opts.Shards = 4
	db := openTestDB(t, opts)
	defer db.Close()
	const n = 200
	for i := 0; i < n; i++ {
		if err := db.Put(key(i), blobValue(i, 128)); err != nil {
			t.Fatalf("put: %v", err)
		}
	}
	for i := 0; i < n; i++ {
		if err := db.Put(key(i), blobValue(i+5555, 128)); err != nil {
			t.Fatalf("overwrite: %v", err)
		}
	}
	if err := db.CompactRange(); err != nil {
		t.Fatalf("compact: %v", err)
	}
	if err := db.CompactValueLog(); err != nil {
		t.Fatalf("gc: %v", err)
	}
	for i := 0; i < n; i++ {
		got, err := db.Get(key(i))
		if err != nil || !bytes.Equal(got, blobValue(i+5555, 128)) {
			t.Fatalf("get %d: %v (len %d)", i, err, len(got))
		}
	}
	kvs, err := db.Scan(nil, n)
	if err != nil || len(kvs) != n {
		t.Fatalf("scan: %d pairs, err %v; want %d", len(kvs), err, n)
	}
}

// TestBlobRepartitionRejected plants a segment owned by a shard the
// database does not have; Open must refuse rather than orphan the values.
func TestBlobRepartitionRejected(t *testing.T) {
	opts := blobOpts(compaction.LDC)
	fs := opts.FS
	if err := fs.MkdirAll("/db/vlog"); err != nil {
		t.Fatal(err)
	}
	f, err := fs.Create(filepath.Join("/db/vlog", vlog.SegmentFileName(3, 1)))
	if err != nil {
		t.Fatal(err)
	}
	_ = f.Close()
	_, err = Open("/db", opts) // Shards unset → 1 shard, segment says 3
	if !errors.Is(err, ErrInvalidOptions) {
		t.Fatalf("open = %v, want ErrInvalidOptions", err)
	}
}

// TestBlobTornVlogTail crashes with the value log's tail torn off (the
// classic lost-unsynced-write shape) and verifies recovery treats the WAL
// batch whose pointers dangle as torn: earlier writes survive, the torn
// batch vanishes whole, and no read ever returns a dangling pointer error.
func TestBlobTornVlogTail(t *testing.T) {
	for _, corrupt := range []string{"tear", "flip"} {
		t.Run(corrupt, func(t *testing.T) {
			mem := vfs.Mem()
			efs := vfs.NewErrFS(mem)
			opts := blobOpts(compaction.LDC)
			opts.FS = efs
			opts.BlobSegmentSize = 1 << 20 // one segment; the tail is the last record
			// Unsynced WAL frames sit in the writer's buffer and die with the
			// process; sync so the WAL survives the crash and recovery runs
			// against a vlog that is the component truncated behind it.
			opts.Sync = true

			db, err := Open("/db", opts)
			if err != nil {
				t.Fatalf("open: %v", err)
			}
			const n = 20
			for i := 0; i < n; i++ {
				if err := db.Put(key(i), blobValue(i, 300)); err != nil {
					t.Fatalf("put: %v", err)
				}
			}
			// Crash without Close.
			st := db.shards[0]
			st.mu.Lock()
			st.stopBackgroundLocked()
			st.mu.Unlock()

			names, err := mem.List("/db/vlog")
			if err != nil || len(names) == 0 {
				t.Fatalf("no vlog segment: %v %v", names, err)
			}
			seg := filepath.Join("/db/vlog", names[len(names)-1])
			switch corrupt {
			case "tear":
				// Drop half of the final record.
				if err := efs.TearFile(seg, 150); err != nil {
					t.Fatalf("tear: %v", err)
				}
			case "flip":
				f, _ := mem.Open(seg)
				size, _ := f.Size()
				_ = f.Close()
				if err := efs.FlipBit(seg, size-10); err != nil {
					t.Fatalf("flip: %v", err)
				}
			}

			db2, err := Open("/db", Options{
				FS:                  mem,
				Policy:              opts.Policy,
				MemTableSize:        opts.MemTableSize,
				SSTableSize:         opts.SSTableSize,
				Fanout:              opts.Fanout,
				SliceLinkThreshold:  opts.SliceLinkThreshold,
				L0CompactionTrigger: opts.L0CompactionTrigger,
				L0SlowdownTrigger:   opts.L0SlowdownTrigger,
				L0StopTrigger:       opts.L0StopTrigger,
				BlockSize:           opts.BlockSize,
				BlockCacheSize:      opts.BlockCacheSize,
				BlobThreshold:       opts.BlobThreshold,
				BlobSegmentSize:     opts.BlobSegmentSize,
				Sync:                true,
			})
			if err != nil {
				t.Fatalf("reopen after %s: %v", corrupt, err)
			}
			defer db2.Close()
			// The corrupted record belongs to the last Put; everything before
			// the valid extent must read back, the rest must be cleanly gone.
			missing := 0
			for i := 0; i < n; i++ {
				got, err := db2.Get(key(i))
				switch {
				case err == nil:
					if !bytes.Equal(got, blobValue(i, 300)) {
						t.Fatalf("key %d: wrong value after recovery", i)
					}
					if missing > 0 {
						t.Fatalf("key %d present after key %d dropped: recovery not prefix-consistent", i, i-missing)
					}
				case errors.Is(err, ErrNotFound):
					missing++
				default:
					t.Fatalf("key %d: %v (dangling pointer leaked through recovery)", i, err)
				}
			}
			if missing == 0 {
				t.Fatalf("%s corruption dropped nothing — corruption not exercised", corrupt)
			}
			if missing > 2 {
				t.Fatalf("%s corruption dropped %d writes, want at most the torn tail's batches", corrupt, missing)
			}
		})
	}
}

// TestBlobGCCrashMidPass injects an I/O failure during GC relocation, then
// reboots and verifies no acknowledged write was lost and a fresh full GC
// completes — a half-finished pass must leave both copies resolvable.
func TestBlobGCCrashMidPass(t *testing.T) {
	mem := vfs.Mem()
	efs := vfs.NewErrFS(mem)
	opts := blobOpts(compaction.LDC)
	opts.FS = efs

	db, err := Open("/db", opts)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	const n = 120
	for i := 0; i < n; i++ {
		if err := db.Put(key(i), blobValue(i, 200)); err != nil {
			t.Fatalf("put: %v", err)
		}
	}
	for i := 0; i < n; i += 2 {
		if err := db.Put(key(i), blobValue(i+9999, 200)); err != nil {
			t.Fatalf("overwrite: %v", err)
		}
	}
	if err := db.CompactRange(); err != nil {
		t.Fatalf("compact: %v", err)
	}
	// Fail partway through the GC's relocation appends.
	efs.FailAfterWrites(10, errInjected)
	gcErr := db.CompactValueLog()
	efs.Disarm()
	if gcErr == nil {
		// The budget may have been consumed by background work instead;
		// either way the pass must not have corrupted anything.
		t.Log("GC completed before the injected failure fired")
	}
	// Crash without Close.
	st := db.shards[0]
	st.mu.Lock()
	st.stopBackgroundLocked()
	st.mu.Unlock()

	opts2 := opts
	opts2.FS = mem
	db2, err := Open("/db", opts2)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer db2.Close()
	verify := func(stage string) {
		t.Helper()
		for i := 0; i < n; i++ {
			want := blobValue(i, 200)
			if i%2 == 0 {
				want = blobValue(i+9999, 200)
			}
			got, err := db2.Get(key(i))
			if err != nil || !bytes.Equal(got, want) {
				t.Fatalf("%s: get %d: %v (len %d)", stage, i, err, len(got))
			}
		}
	}
	verify("after crash")
	if err := db2.CompactRange(); err != nil {
		t.Fatalf("compact: %v", err)
	}
	if err := db2.CompactValueLog(); err != nil {
		t.Fatalf("gc after reboot: %v", err)
	}
	verify("after redo GC")
}

// TestBlobGCReaderTorture races GC (relocating and deleting segments)
// against concurrent readers, writers, and iterators. Run with -race; the
// invariants build tag adds internal checks on top.
func TestBlobGCReaderTorture(t *testing.T) {
	opts := blobOpts(compaction.LDC)
	db := openTestDB(t, opts)
	defer db.Close()

	const n = 64
	for i := 0; i < n; i++ {
		if err := db.Put(key(i), blobValue(i, 150)); err != nil {
			t.Fatalf("seed: %v", err)
		}
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	fail := make(chan error, 8)

	wg.Add(1)
	go func() { // writer: keeps overwriting, generating garbage
		defer wg.Done()
		rng := rand.New(rand.NewSource(1))
		for gen := 1; ; gen++ {
			select {
			case <-stop:
				return
			default:
			}
			i := rng.Intn(n)
			if err := db.Put(key(i), blobValue(i+gen*1000, 150)); err != nil {
				fail <- fmt.Errorf("writer: %w", err)
				return
			}
			// Paced: an unthrottled writer grows the segment population
			// faster than sweeps can scan it.
			time.Sleep(100 * time.Microsecond)
		}
	}()
	for r := 0; r < 3; r++ {
		wg.Add(1)
		go func(seed int64) { // readers: every value must decode consistently
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for {
				select {
				case <-stop:
					return
				default:
				}
				i := rng.Intn(n)
				got, err := db.Get(key(i))
				if err != nil {
					fail <- fmt.Errorf("reader: get %d: %w", i, err)
					return
				}
				if len(got) != 150 {
					fail <- fmt.Errorf("reader: get %d: %d bytes", i, len(got))
					return
				}
			}
		}(int64(r))
	}
	wg.Add(1)
	go func() { // iterator: full passes while segments churn
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			it, err := db.NewIterator(nil)
			if err != nil {
				fail <- fmt.Errorf("iter open: %w", err)
				return
			}
			count := 0
			for it.SeekToFirst(); it.Valid(); it.Next() {
				if len(it.Value()) != 150 {
					fail <- fmt.Errorf("iter: %s: %d bytes", it.Key(), len(it.Value()))
					it.Close()
					return
				}
				count++
			}
			err = it.Close()
			if err != nil {
				fail <- fmt.Errorf("iter close: %w", err)
				return
			}
			if count != n {
				fail <- fmt.Errorf("iter saw %d keys, want %d", count, n)
				return
			}
			// Leave windows with no iterator open, or GC's delete barrier
			// (which waits for openIters to drain) never gets through.
			time.Sleep(200 * time.Microsecond)
		}
	}()
	wg.Add(1)
	go func() { // GC: sweep repeatedly while everything else churns
		defer wg.Done()
		defer close(stop) // 8 sweeps survived (or a sibling failed): wind down
		for rounds := 0; rounds < 8; rounds++ {
			select {
			case <-stop:
				return
			default:
			}
			// No CompactRange here: it waits for tree convergence, which a
			// live writer can stave off forever. The full sweep relocates
			// without needing compaction's dead-byte accounting.
			if err := db.CompactValueLog(); err != nil {
				fail <- fmt.Errorf("gc sweep: %w", err)
				return
			}
			time.Sleep(5 * time.Millisecond)
		}
	}()

	wg.Wait()
	select {
	case err := <-fail:
		t.Fatal(err)
	default:
	}
	// The racing sweeps were likely barred by live iterators; the quiesced
	// sweep must reclaim deterministically.
	if err := db.CompactRange(); err != nil {
		t.Fatalf("final compact: %v", err)
	}
	if err := db.CompactValueLog(); err != nil {
		t.Fatalf("final sweep: %v", err)
	}
	s := db.Stats()
	if s.VlogGCPasses == 0 {
		t.Errorf("torture ran but GC never reclaimed a segment: %+v", s)
	}
	for i := 0; i < n; i++ {
		got, err := db.Get(key(i))
		if err != nil || len(got) != 150 {
			t.Fatalf("final get %d: %v (%d bytes)", i, err, len(got))
		}
	}
}

// TestFlushManual checks the manual Flush API the blob benchmark quiesces
// with: a non-empty memtable reaches a table (inline and separated values
// alike), an immediate second Flush is a no-op, and everything still reads.
func TestFlushManual(t *testing.T) {
	for _, sep := range []bool{false, true} {
		name := "inline"
		if sep {
			name = "separated"
		}
		t.Run(name, func(t *testing.T) {
			opts := smallOpts(compaction.LDC)
			if sep {
				opts.BlobThreshold = 64
				opts.BlobSegmentSize = 2 << 10
			}
			db := openTestDB(t, opts)
			defer db.Close()
			const n = 30
			for i := 0; i < n; i++ {
				if err := db.Put(key(i), blobValue(i, 200)); err != nil {
					t.Fatalf("put %d: %v", i, err)
				}
			}
			if err := db.Flush(); err != nil {
				t.Fatalf("flush: %v", err)
			}
			if got := db.TableBytes(); got == 0 {
				t.Fatalf("no table bytes after manual flush")
			}
			fw := db.Stats().FlushWriteBytes
			if fw == 0 {
				t.Fatalf("no flush bytes accounted")
			}
			if err := db.Flush(); err != nil {
				t.Fatalf("second flush: %v", err)
			}
			if again := db.Stats().FlushWriteBytes; again != fw {
				t.Fatalf("no-op flush wrote %d bytes", again-fw)
			}
			for i := 0; i < n; i++ {
				got, err := db.Get(key(i))
				if err != nil || !bytes.Equal(got, blobValue(i, 200)) {
					t.Fatalf("get %d after flush: %v (%d bytes)", i, err, len(got))
				}
			}
		})
	}
}
