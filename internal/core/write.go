package core

import (
	"time"

	"repro/internal/batch"
	"repro/internal/commit"
	"repro/internal/keys"
	"repro/internal/memtable"
)

// This file wires the store into the commit pipeline (internal/commit): the
// group-commit front end that batches concurrent Apply callers into write
// groups, and the controller that owns the write-throttle state machine.
// Lock ordering is pipeline lock → db.mu → set.mu; the WAL fsync runs with
// db.mu released so reads and background work proceed during slow syncs.

// initCommitPipeline builds the controller and pipeline over this store.
// Called once from Open, before any writer can exist.
func (db *store) initCommitPipeline() {
	db.controller = commit.NewController(
		commit.ControllerConfig{
			MemTableSize:      db.opts.MemTableSize,
			L0SlowdownTrigger: db.opts.L0SlowdownTrigger,
			L0StopTrigger:     db.opts.L0StopTrigger,
			// The debt term of the slowdown curve saturates when the tree
			// owes a full level-1's worth of rewriting.
			DebtCeiling: int64(db.opts.Fanout) * db.opts.SSTableSize,
		},
		commit.ControllerEnv{
			Lock:   db.mu.Lock,
			Unlock: db.mu.Unlock,
			Err: func() error {
				if db.bgErr != nil {
					return db.bgErr
				}
				if db.closed {
					// Close ran while this writer was stalled; don't write
					// into a store whose WAL is about to be torn down.
					return ErrClosed
				}
				return nil
			},
			L0Files: func() int { return db.set.CurrentNoRef().NumFiles(0) },
			CompactionDebt: func() int64 {
				return db.picker.Debt(db.set.CurrentNoRef())
			},
			MemBytes:   func() int64 { return db.mem.ApproximateBytes() },
			ImmPending: func() bool { return db.imm != nil },
			Rotate:     db.rotateMemtableLocked,
			Wait:       db.bgCond.Wait,
		})
	db.pipeline = commit.NewPipeline(commit.Env{
		MakeRoom: db.controller.MakeRoom,
		Commit:   db.commitGroup,
	}, commit.Options{
		MaxGroupBytes: db.opts.MaxWriteGroupBytes,
		ClosedError:   ErrClosed,
	})
}

// rotateMemtableLocked switches to a fresh WAL and memtable, handing the
// full table to the flush worker. Caller holds db.mu (the controller, or
// recovery's exclusive section).
func (db *store) rotateMemtableLocked() error {
	if err := db.newLogLocked(); err != nil {
		return err
	}
	db.imm, db.mem = db.mem, memtable.New(db.icmp)
	db.publishReadState()
	db.flushCond.Signal()
	return nil
}

// commitGroup durably applies one formed write group: stamp its sequence
// range, append the concatenated record to the WAL, fsync if requested (with
// db.mu released), then apply to the memtable and publish the sequence.
// Memtable application precedes SetLastSeq so no reader can observe a
// sequence whose entries are not yet visible; for sync groups the fsync
// precedes application, so nothing becomes visible before it is durable.
// Only the pipeline calls this, one group at a time.
func (db *store) commitGroup(g *batch.Group, sync bool) error {
	db.mu.Lock()
	if db.bgErr != nil {
		err := db.bgErr
		db.mu.Unlock()
		return err
	}
	if db.closed {
		db.mu.Unlock()
		return ErrClosed
	}
	seq := db.set.LastSeq() + 1
	g.SetSequence(seq)
	b := g.Batch()
	rec := b.Encode()
	if err := db.logw.AddRecord(rec); err != nil {
		// The log may now hold a partial record for an unpublished sequence
		// range; poison the store so the range is never reassigned.
		db.fatal(err)
		db.mu.Unlock()
		return err
	}
	db.stats.walWriteBytes.Add(int64(len(rec)))
	if sync {
		// The leader syncs outside db.mu: readers, the flush worker, and
		// compactions all proceed during the fsync, and followers piling up
		// behind this group are exactly how sync cost gets amortized. The
		// writer cannot be swapped concurrently — rotation only happens on
		// this (leader-exclusive) path.
		logw := db.logw
		db.mu.Unlock()
		start := time.Now()
		err := logw.Sync()
		db.stats.walSyncNanos.Add(int64(time.Since(start)))
		db.stats.walSyncCount.Add(1)
		db.mu.Lock()
		if err != nil {
			db.fatal(err)
			db.mu.Unlock()
			return err
		}
	}
	i := keys.Seq(0)
	var userBytes int64
	b.Each(func(kind keys.Kind, key, value []byte) error {
		db.mem.Add(seq+i, kind, key, value)
		userBytes += int64(len(key) + len(value))
		i++
		return nil
	})
	db.stats.userWriteBytes.Add(userBytes)
	db.set.SetLastSeq(seq + keys.Seq(b.Count()) - 1)
	if db.adaptive != nil {
		db.adaptive.observeWrites(int64(b.Count()))
	}
	db.mu.Unlock()
	return nil
}
