package core

import (
	"time"

	"repro/internal/batch"
	"repro/internal/commit"
	"repro/internal/encoding"
	"repro/internal/keys"
	"repro/internal/memtable"
	"repro/internal/vlog"
)

// This file wires the store into the commit pipeline (internal/commit): the
// group-commit front end that batches concurrent Apply callers into write
// groups, and the controller that owns the write-throttle state machine.
// Lock ordering is pipeline lock → db.mu → set.mu; the WAL fsync runs with
// db.mu released so reads and background work proceed during slow syncs.

// initCommitPipeline builds the controller and pipeline over this store.
// Called once from Open, before any writer can exist.
func (db *store) initCommitPipeline() {
	db.controller = commit.NewController(
		commit.ControllerConfig{
			MemTableSize:      db.opts.MemTableSize,
			L0SlowdownTrigger: db.opts.L0SlowdownTrigger,
			L0StopTrigger:     db.opts.L0StopTrigger,
			// The debt term of the slowdown curve saturates when the tree
			// owes a full level-1's worth of rewriting.
			DebtCeiling: int64(db.opts.Fanout) * db.opts.SSTableSize,
		},
		commit.ControllerEnv{
			Lock:   db.mu.Lock,
			Unlock: db.mu.Unlock,
			Err: func() error {
				if db.bgErr != nil {
					return db.bgErr
				}
				if db.closed {
					// Close ran while this writer was stalled; don't write
					// into a store whose WAL is about to be torn down.
					return ErrClosed
				}
				return nil
			},
			L0Files: func() int { return db.set.CurrentNoRef().NumFiles(0) },
			CompactionDebt: func() int64 {
				return db.picker.Debt(db.set.CurrentNoRef())
			},
			MemBytes:   func() int64 { return db.mem.ApproximateBytes() },
			ImmPending: func() bool { return db.imm != nil },
			Rotate:     db.rotateMemtableLocked,
			Wait:       db.bgCond.Wait,
		})
	db.pipeline = commit.NewPipeline(commit.Env{
		MakeRoom: db.controller.MakeRoom,
		Commit:   db.commitGroup,
	}, commit.Options{
		MaxGroupBytes: db.opts.MaxWriteGroupBytes,
		ClosedError:   ErrClosed,
	})
}

// rotateMemtableLocked switches to a fresh WAL and memtable, handing the
// full table to the flush worker. Caller holds db.mu (the controller, or
// recovery's exclusive section).
func (db *store) rotateMemtableLocked() error {
	if err := db.newLogLocked(); err != nil {
		return err
	}
	db.imm, db.mem = db.mem, memtable.New(db.icmp)
	// Everything at or below the current sequence is now in imm (or
	// tables); the flush worker promotes flushedThroughSeq to this
	// boundary when the imm lands (see rewriteGuardLocked).
	db.rotBoundarySeq = db.set.LastSeq()
	db.publishReadState()
	db.flushCond.Signal()
	return nil
}

// commitGroup durably applies one formed write group: stamp its sequence
// range, append the concatenated record to the WAL, fsync if requested (with
// db.mu released), then apply to the memtable and publish the sequence.
// Memtable application precedes SetLastSeq so no reader can observe a
// sequence whose entries are not yet visible; for sync groups the fsync
// precedes application, so nothing becomes visible before it is durable.
// Only the pipeline calls this, one group at a time.
func (db *store) commitGroup(g *batch.Group, sync bool) error {
	// Value separation runs before db.mu: the pipeline serializes leaders,
	// so this shard's vlog appends are single-writer, and the (possibly
	// slow) value writes overlap reads and background work. The appended
	// records are readable immediately (write-through) but referenced only
	// once the group's pointers are applied below.
	b := g.Batch()
	sep, extraUserBytes, err := db.separateValues(b)
	if err != nil {
		db.mu.Lock()
		db.fatal(err)
		db.mu.Unlock()
		return err
	}
	if sep != nil {
		b = sep
	}
	if sync && db.vlogw != nil {
		// One vlog durability point per write group, mirroring the WAL: an
		// acknowledged sync commit must never lose its separated values.
		// (Recovery treats a WAL record whose pointers dangle past the
		// vlog's valid extent as torn, so an unsynced crash drops the whole
		// batch — exactly the non-sync contract.)
		if err := db.vlogw.Sync(); err != nil {
			db.mu.Lock()
			db.fatal(err)
			db.mu.Unlock()
			return err
		}
	}
	db.mu.Lock()
	if db.bgErr != nil {
		err := db.bgErr
		db.mu.Unlock()
		return err
	}
	if db.closed {
		db.mu.Unlock()
		return ErrClosed
	}
	if db.rotateForced.Load() && db.imm == nil {
		// GC flush barrier requested a rotation; this is the leader-
		// exclusive path, so swapping the WAL writer is safe here and
		// nowhere else. The group's own entries land in the fresh memtable.
		db.rotateForced.Store(false)
		if !db.mem.Empty() {
			if err := db.rotateMemtableLocked(); err != nil {
				db.fatal(err)
				db.mu.Unlock()
				return err
			}
		}
	}
	seq := db.set.LastSeq() + 1
	g.SetSequence(seq)
	if sep != nil {
		// The transformed batch is not a group member; stamp it directly so
		// the WAL record and memtable application agree with the sequences
		// the group's callers observe.
		sep.SetSequence(seq)
	}
	rec := b.Encode()
	if err := db.logw.AddRecord(rec); err != nil {
		// The log may now hold a partial record for an unpublished sequence
		// range; poison the store so the range is never reassigned.
		db.fatal(err)
		db.mu.Unlock()
		return err
	}
	db.stats.walWriteBytes.Add(int64(len(rec)))
	if sync {
		// The leader syncs outside db.mu: readers, the flush worker, and
		// compactions all proceed during the fsync, and followers piling up
		// behind this group are exactly how sync cost gets amortized. The
		// writer cannot be swapped concurrently — rotation only happens on
		// this (leader-exclusive) path.
		logw := db.logw
		db.mu.Unlock()
		start := time.Now()
		err := logw.Sync()
		db.stats.walSyncNanos.Add(int64(time.Since(start)))
		db.stats.walSyncCount.Add(1)
		db.mu.Lock()
		if err != nil {
			db.fatal(err)
			db.mu.Unlock()
			return err
		}
	}
	i := keys.Seq(0)
	var userBytes int64
	b.Each(func(kind keys.Kind, key, value []byte) error {
		if kind == keys.KindBlobRewrite {
			// GC pointer rewrite: apply as a plain pointer entry only if the
			// key was not written past the GC's read sequence; a failed
			// guard drops the rewrite (its sequence number stays consumed)
			// and marks the new copy dead for a later pass. Not counted as
			// user bytes — it is background relocation, not a user write.
			readSeq := keys.Seq(encoding.Fixed64(value))
			ptr := value[8:]
			if db.rewriteGuardLocked(key, readSeq) {
				db.mem.Add(seq+i, keys.KindBlobRef, key, ptr)
			} else {
				if p, ok := vlog.DecodePointer(ptr); ok {
					db.vlog.MarkDead(p.Segment, int64(p.Length))
				}
				db.vlog.NoteGuardedRewrite()
			}
			i++
			return nil
		}
		db.mem.Add(seq+i, kind, key, value)
		userBytes += int64(len(key) + len(value))
		i++
		return nil
	})
	// Separated entries count at their original size: the user wrote the
	// value, even though the tree stores a 20-byte pointer.
	db.stats.userWriteBytes.Add(userBytes + extraUserBytes)
	db.set.SetLastSeq(seq + keys.Seq(b.Count()) - 1)
	if db.adaptive != nil {
		db.adaptive.observeWrites(int64(b.Count()))
	}
	db.mu.Unlock()
	return nil
}

// separateValues is the commit-time value-separation transform: every Set
// whose value is at least Options.BlobThreshold bytes is appended to the
// value log and replaced by a fixed-size pointer entry. Returns (nil, 0,
// nil) when nothing qualifies — the common case, detected without building
// a replacement batch. extraUserBytes is the user-byte undercount of the
// transformed batch (original value sizes minus the pointers that replaced
// them), so write accounting reflects what the user wrote.
func (db *store) separateValues(b *batch.Batch) (sep *batch.Batch, extraUserBytes int64, err error) {
	if db.vlogw == nil || db.opts.BlobThreshold <= 0 {
		return nil, 0, nil
	}
	qualifies := false
	_ = b.Each(func(kind keys.Kind, key, value []byte) error {
		if kind == keys.KindSet && int64(len(value)) >= db.opts.BlobThreshold {
			qualifies = true
		}
		return nil
	})
	if !qualifies {
		return nil, 0, nil
	}
	out := batch.New()
	var sepCount, sepBytes int64
	var ptrBuf [vlog.PointerLen]byte
	eachErr := b.Each(func(kind keys.Kind, key, value []byte) error {
		if kind == keys.KindSet && int64(len(value)) >= db.opts.BlobThreshold {
			p, aerr := db.vlogw.Append(key, value)
			if aerr != nil {
				return aerr
			}
			out.SetBlobRef(key, p.Encode(ptrBuf[:0]))
			sepCount++
			sepBytes += int64(len(value))
			extraUserBytes += int64(len(value)) - vlog.PointerLen
			return nil
		}
		switch kind {
		case keys.KindDelete:
			out.Delete(key)
		case keys.KindBlobRef:
			out.SetBlobRef(key, value)
		case keys.KindBlobRewrite:
			out.SetBlobRewrite(key, keys.Seq(encoding.Fixed64(value)), value[8:])
		default:
			out.Set(key, value)
		}
		return nil
	})
	if eachErr != nil {
		return nil, 0, eachErr
	}
	db.stats.blobValuesSeparated.Add(sepCount)
	db.stats.blobBytesSeparated.Add(sepBytes)
	return out, extraUserBytes, nil
}

// rewriteGuardLocked decides whether a GC rewrite whose liveness was read
// at readSeq still describes key's newest version. Soundness rests on the
// invariant that every entry with a sequence above flushedThroughSeq is
// present in mem ∪ imm: if readSeq has not fallen below that floor and
// neither memtable holds a newer version of key, no newer version exists
// anywhere, so installing the rewritten pointer cannot shadow a user
// write. Caller holds db.mu.
func (db *store) rewriteGuardLocked(key []byte, readSeq keys.Seq) bool {
	if readSeq < db.flushedThroughSeq {
		return false
	}
	if s, ok := db.mem.LatestSeq(key); ok && s > readSeq {
		return false
	}
	if db.imm != nil {
		if s, ok := db.imm.LatestSeq(key); ok && s > readSeq {
			return false
		}
	}
	return true
}
