package core

// Torture tests for the readState release-CAS path. The lock-free read path
// publishes (mem, imm, version) behind one atomic pointer; these tests hammer
// the ref/recheck/unref retry loop from many goroutines while the publisher
// churns, and verify — under -tags invariants — that the poison checks catch
// an injected double-release. Run via `make invariants`.

import (
	"fmt"
	"strings"
	"sync"
	"testing"

	"repro/internal/compaction"
	"repro/internal/invariants"
	"repro/internal/keys"
	"repro/internal/version"
)

// newStandaloneReadState builds a readState detached from any DB, holding
// one reference (the pointer's own), over a version with no owning Set.
func newStandaloneReadState() *readState {
	v := version.NewVersion(keys.InternalComparer{User: keys.BytewiseComparer{}})
	v.Ref()
	rs := &readState{v: v, done: make(chan struct{})}
	rs.refs.Store(1)
	return rs
}

// TestReadStateConcurrentRefTorture drives many concurrent ref/unref pairs
// against one state plus a releasing owner, asserting the state releases
// exactly once (done closes) and never twice (no panic, refs drained).
func TestReadStateConcurrentRefTorture(t *testing.T) {
	const goroutines = 16
	const rounds = 2000
	for iter := 0; iter < 20; iter++ {
		rs := newStandaloneReadState()
		var wg sync.WaitGroup
		for g := 0; g < goroutines; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := 0; i < rounds; i++ {
					rs.ref()
					rs.unref()
				}
			}()
		}
		// The owner drops the pointer's reference mid-churn.
		rs.unref()
		wg.Wait()
		select {
		case <-rs.done:
		default:
			t.Fatalf("iter %d: readState never released (refs=%d)", iter, rs.refs.Load())
		}
		if got := rs.refs.Load(); got != 0 {
			t.Fatalf("iter %d: refs drained to %d, want 0", iter, got)
		}
	}
}

// TestReadStateChurnUnderLoad exercises the real loadReadState retry loop:
// readers ref and drop states while writers force memtable rotations and
// flushes that republish the pointer. With -tags invariants the refcount and
// released-state poison checks are live on every operation.
func TestReadStateChurnUnderLoad(t *testing.T) {
	if testing.Short() && !invariants.Enabled {
		t.Skip("churn test adds value mainly under -tags invariants")
	}
	opts := smallOpts(compaction.LDC)
	opts.MemTableSize = 1 << 12 // rotate constantly
	db, err := Open(t.TempDir(), opts)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				rs := db.shards[0].loadReadState()
				if rs == nil {
					return
				}
				_ = rs.v.NumFiles(0)
				rs.unref()
				if g%2 == 0 {
					if _, err := db.Get(key(i % 512)); err != nil && err != ErrNotFound && err != ErrClosed {
						t.Errorf("Get: %v", err)
						return
					}
				}
			}
		}(g)
	}
	for i := 0; i < 4000; i++ {
		if err := db.Put(key(i%512), value(i)); err != nil {
			t.Fatalf("Put %d: %v", i, err)
		}
	}
	close(stop)
	wg.Wait()
}

// expectInvariantPanic runs f and requires it to panic with an invariant
// violation message.
func expectInvariantPanic(t *testing.T, f func()) {
	t.Helper()
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("expected an invariant panic, got none")
		}
		if msg := fmt.Sprint(r); !strings.Contains(msg, "invariant violated") {
			t.Fatalf("panic %q does not look like an invariant violation", msg)
		}
	}()
	f()
}

// TestReadStateDoubleReleaseCaught injects the bug the release-CAS guard
// exists for — an unref without a matching ref — and requires the invariants
// build to panic on the negative refcount rather than release twice.
func TestReadStateDoubleReleaseCaught(t *testing.T) {
	if !invariants.Enabled {
		t.Skip("poison checks compile away without -tags invariants")
	}
	rs := newStandaloneReadState()
	rs.unref() // legal: drops the owner's reference, releases the state
	select {
	case <-rs.done:
	default:
		t.Fatal("state not released after final unref")
	}
	expectInvariantPanic(t, rs.unref)
}

// TestVersionRefAfterReleaseCaught requires the invariants build to catch a
// Ref of a version whose last reference has already been returned — the
// CurrentNoRef-held-across-unlock bug.
func TestVersionRefAfterReleaseCaught(t *testing.T) {
	if !invariants.Enabled {
		t.Skip("poison checks compile away without -tags invariants")
	}
	opts := smallOpts(compaction.LDC)
	db, err := Open(t.TempDir(), opts)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	v := db.shards[0].set.Current() // refs the current version
	v.Unref()             // returns it; the Set still holds its own ref
	// Force the Set to drop the version by installing successors: fill past
	// the memtable bound so a flush runs LogAndApply, then drain background
	// work so the old version's last reference is gone.
	for i := 0; i < 4096; i++ {
		if err := db.Put(key(i), value(i)); err != nil {
			t.Fatal(err)
		}
	}
	db.WaitIdle()
	if v.Refs() != 0 {
		t.Skipf("old version still referenced (refs=%d); cannot stage the bug", v.Refs())
	}
	expectInvariantPanic(t, v.Ref)
}
