package core

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/compaction"
)

// TestReadStateChurn hammers the lock-free read path — point gets and full
// iterators — from 8 goroutines while concurrent writers force memtable
// rotations, flushes, and compactions to republish the read state. Run with
// -race it verifies that Get/GetAt/NewIterator touch no mutable shared state
// without synchronization, and it exercises the loadReadState retry/unref
// protocol against republication. Every key is written as key-i => val-i-g,
// so any read that returns a torn or misrouted value fails loudly.
func TestReadStateChurn(t *testing.T) {
	for _, policy := range []compaction.Policy{compaction.LDC, compaction.Tiered} {
		t.Run(policy.String(), func(t *testing.T) {
			db := openTestDB(t, smallOpts(policy))
			defer db.Close()

			const keys = 512
			churnKey := func(i int) []byte { return []byte(fmt.Sprintf("churn-%06d", i)) }
			// Seed every key so readers always find something.
			for i := 0; i < keys; i++ {
				if err := db.Put(churnKey(i), []byte(fmt.Sprintf("val-%06d-seed", i))); err != nil {
					t.Fatal(err)
				}
			}

			var wg sync.WaitGroup
			done := make(chan struct{})
			fail := make(chan error, 16)

			// 2 writers churn values (and the read state, via flushes and the
			// compactions they trigger).
			for w := 0; w < 2; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					rng := rand.New(rand.NewSource(int64(w)))
					for round := 0; ; round++ {
						select {
						case <-done:
							return
						default:
						}
						i := rng.Intn(keys)
						val := fmt.Sprintf("val-%06d-w%d-%d", i, w, round)
						if err := db.Put(churnKey(i), []byte(val)); err != nil {
							fail <- err
							return
						}
					}
				}(w)
			}

			// 8 readers: 6 doing point gets, 2 scanning with iterators.
			for r := 0; r < 6; r++ {
				wg.Add(1)
				go func(r int) {
					defer wg.Done()
					rng := rand.New(rand.NewSource(int64(100 + r)))
					for {
						select {
						case <-done:
							return
						default:
						}
						i := rng.Intn(keys)
						val, err := db.Get(churnKey(i))
						if err != nil {
							fail <- fmt.Errorf("Get(%d): %w", i, err)
							return
						}
						want := fmt.Sprintf("val-%06d-", i)
						if len(val) < len(want) || string(val[:len(want)]) != want {
							fail <- fmt.Errorf("Get(%d) = %q: wrong key's value", i, val)
							return
						}
					}
				}(r)
			}
			for r := 0; r < 2; r++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for {
						select {
						case <-done:
							return
						default:
						}
						it, err := db.NewIterator(nil)
						if err != nil {
							fail <- err
							return
						}
						n := 0
						var last []byte
						for it.SeekToFirst(); it.Valid(); it.Next() {
							if last != nil && string(it.Key()) <= string(last) {
								fail <- fmt.Errorf("iterator out of order: %q after %q", it.Key(), last)
								it.Close()
								return
							}
							last = append(last[:0], it.Key()...)
							n++
						}
						err = it.Close()
						if err != nil {
							fail <- err
							return
						}
						if n < keys {
							fail <- fmt.Errorf("iterator saw %d keys, want >= %d", n, keys)
							return
						}
					}
				}()
			}

			// Let the churn run through plenty of republish cycles.
			for i := 0; i < 40; i++ {
				if err := db.CompactRange(); err != nil {
					t.Fatal(err)
				}
				select {
				case err := <-fail:
					close(done)
					wg.Wait()
					t.Fatal(err)
				default:
				}
			}
			close(done)
			wg.Wait()
			select {
			case err := <-fail:
				t.Fatal(err)
			default:
			}
			if p := db.Stats().ReadStatePublishes; p < 2 {
				t.Fatalf("ReadStatePublishes = %d, want churn to republish", p)
			}
		})
	}
}

// TestSnapshotConsistencyAcrossCompaction is the snapshot regression test:
// reads pinned at an old sequence must stay stable while compactions rewrite
// and drop the files they were originally served from.
func TestSnapshotConsistencyAcrossCompaction(t *testing.T) {
	for _, policy := range []compaction.Policy{compaction.UDC, compaction.LDC} {
		t.Run(policy.String(), func(t *testing.T) {
			db := openTestDB(t, smallOpts(policy))
			defer db.Close()

			const n = 400
			snapKey := func(i int) []byte { return []byte(fmt.Sprintf("snap-%06d", i)) }
			for i := 0; i < n; i++ {
				if err := db.Put(snapKey(i), []byte(fmt.Sprintf("old-%06d", i))); err != nil {
					t.Fatal(err)
				}
			}
			if err := db.CompactRange(); err != nil {
				t.Fatal(err)
			}

			snap, err := db.NewSnapshot()
			if err != nil {
				t.Fatal(err)
			}
			defer snap.Release()
			// An iterator opened at the snapshot, before the overwrites.
			it, err := db.NewIterator(snap)
			if err != nil {
				t.Fatal(err)
			}
			defer it.Close()

			// Overwrite everything (and delete a band) after the snapshot,
			// then force compactions to drop the snapshot-era tables from the
			// latest version.
			for i := 0; i < n; i++ {
				if err := db.Put(snapKey(i), []byte(fmt.Sprintf("new-%06d", i))); err != nil {
					t.Fatal(err)
				}
			}
			for i := 0; i < n; i += 4 {
				if err := db.Delete(snapKey(i)); err != nil {
					t.Fatal(err)
				}
			}
			for round := 0; round < 3; round++ {
				if err := db.CompactRange(); err != nil {
					t.Fatal(err)
				}
			}

			// Point reads at the snapshot still see the old values.
			for i := 0; i < n; i += 7 {
				val, err := db.GetAt(snapKey(i), snap)
				if err != nil {
					t.Fatalf("GetAt(%d) at snapshot: %v", i, err)
				}
				if want := fmt.Sprintf("old-%06d", i); string(val) != want {
					t.Fatalf("GetAt(%d) at snapshot = %q, want %q", i, val, want)
				}
			}
			// And the latest view sees the overwrites and deletes.
			if _, err := db.Get(snapKey(0)); !errors.Is(err, ErrNotFound) {
				t.Fatalf("deleted key visible at head: %v", err)
			}
			if val, _ := db.Get(snapKey(1)); string(val) != fmt.Sprintf("new-%06d", 1) {
				t.Fatalf("latest read = %q", val)
			}

			// The pre-compaction iterator walks the snapshot state unharmed:
			// every surviving key yields its old value.
			i := 0
			for it.SeekToFirst(); it.Valid(); it.Next() {
				if want := string(snapKey(i)); string(it.Key()) != want {
					t.Fatalf("iterator key %q, want %q", it.Key(), want)
				}
				if want := fmt.Sprintf("old-%06d", i); string(it.Value()) != want {
					t.Fatalf("iterator value %q, want %q", it.Value(), want)
				}
				i++
			}
			if err := it.Error(); err != nil {
				t.Fatal(err)
			}
			if i != n {
				t.Fatalf("iterator saw %d keys, want %d", i, n)
			}
		})
	}
}
