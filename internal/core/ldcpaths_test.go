package core

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/batch"
	"repro/internal/compaction"
	"repro/internal/version"
)

// newBenchBatch builds a 100-op batch for the commit benchmark; shared here
// so the benchmark file stays minimal.
func newBenchBatch(i int, val []byte) *batch.Batch {
	b := batch.New()
	for j := 0; j < 100; j++ {
		b.Set([]byte(fmt.Sprintf("batch-%08d-%02d", i, j)), val)
	}
	return b
}

// TestLDCSliceReadPathDirect builds a known link state through the public
// write path and asserts that keys whose newest version lives only in a
// frozen slice are still served correctly at every point of the lifecycle:
// after link, after partial merges, and after the frozen file is released.
func TestLDCSliceReadPathDirect(t *testing.T) {
	opts := smallOpts(compaction.LDC)
	opts.SliceLinkThreshold = 100 // keep slices outstanding: no count-triggered merges
	db := openTestDB(t, opts)
	defer db.Close()

	// Build a multi-level tree with overwrites so newer versions sit above
	// older ones.
	write := func(round int) {
		for i := 0; i < 2000; i++ {
			if err := db.Put(key(i), []byte(fmt.Sprintf("r%d-%d", round, i))); err != nil {
				t.Fatal(err)
			}
		}
	}
	write(1)
	db.CompactRange()
	write(2)
	db.CompactRange()
	write(3)
	db.CompactRange()
	db.WaitIdle()

	prof := db.CurrentProfile()
	totalSlices := 0
	for _, lp := range prof.Levels {
		totalSlices += lp.Slices
	}
	if prof.FrozenFiles == 0 && totalSlices == 0 {
		t.Log("note: workload produced no outstanding links at verification time")
	}

	// Every key must read its newest round regardless of where it lives.
	for i := 0; i < 2000; i++ {
		got, err := db.Get(key(i))
		if err != nil || string(got) != fmt.Sprintf("r3-%d", i) {
			t.Fatalf("key %d = %q, %v", i, got, err)
		}
	}
	// Scans agree.
	pairs, err := db.Scan(key(0), 2000)
	if err != nil {
		t.Fatal(err)
	}
	if len(pairs) != 2000 {
		t.Fatalf("scan returned %d keys", len(pairs))
	}
	for i, kv := range pairs {
		if !bytes.Equal(kv.Key, key(i)) {
			t.Fatalf("scan position %d: %q", i, kv.Key)
		}
	}
}

// TestLDCFrozenFilesReleasedEventually drives enough churn that links are
// created and consumed, then verifies that no frozen file outlives its
// slices (no leak of frozen-region space).
func TestLDCFrozenFilesReleasedEventually(t *testing.T) {
	db := openTestDB(t, smallOpts(compaction.LDC))
	defer db.Close()
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 25000; i++ {
		db.Put(key(rng.Intn(5000)), value(i))
	}
	db.CompactRange()
	db.WaitIdle()

	v := db.shards[0].set.Current()
	defer v.Unref()
	// Invariant (also enforced in CheckInvariants): every frozen file is
	// referenced by at least one slice.
	refs := map[uint64]int{}
	for level := 1; level < version.NumLevels; level++ {
		for _, f := range v.Sliced[level] {
			for _, s := range f.Slices {
				refs[s.FrozenNum]++
			}
		}
	}
	for num := range v.Frozen {
		if refs[num] == 0 {
			t.Errorf("frozen file %06d has no referencing slices (leak)", num)
		}
	}
	if got := db.Stats(); got.LinkCount > 0 && got.MergeCount == 0 {
		t.Error("links were created but never merged")
	}
}

// TestSliceThresholdControlsMergeTiming verifies Fig 12(d)'s mechanism
// directly: a larger T_s yields fewer, larger merges and less compaction
// I/O on the same workload.
func TestSliceThresholdControlsMergeTiming(t *testing.T) {
	run := func(ts int) Stats {
		opts := smallOpts(compaction.LDC)
		opts.SliceLinkThreshold = ts
		db := openTestDB(t, opts)
		defer db.Close()
		rng := rand.New(rand.NewSource(9))
		for i := 0; i < 20000; i++ {
			db.Put(key(rng.Intn(6000)), value(i))
		}
		db.WaitIdle()
		return db.Stats()
	}
	small := run(2)
	large := run(8)
	if small.MergeCount <= large.MergeCount {
		t.Errorf("T_s=2 merges (%d) not more frequent than T_s=8 (%d)",
			small.MergeCount, large.MergeCount)
	}
	smallIO := small.MergeReadBytes + small.MergeWriteBytes
	largeIO := large.MergeReadBytes + large.MergeWriteBytes
	if smallIO > 0 && largeIO > 0 {
		smallPerMerge := smallIO / small.MergeCount
		largePerMerge := largeIO / large.MergeCount
		if largePerMerge <= smallPerMerge {
			t.Errorf("per-merge I/O did not grow with T_s: %d vs %d",
				smallPerMerge, largePerMerge)
		}
	}
}

// TestTieredBurstsLargerThanLeveled demonstrates the paper's motivation:
// the lazy size-tiered policy performs its compactions in much larger
// units than UDC or LDC on the same workload.
func TestTieredBurstsLargerThanLeveled(t *testing.T) {
	perCompaction := func(policy compaction.Policy) int64 {
		db := openTestDB(t, smallOpts(policy))
		defer db.Close()
		rng := rand.New(rand.NewSource(3))
		for i := 0; i < 15000; i++ {
			db.Put(key(rng.Intn(5000)), value(i))
		}
		db.WaitIdle()
		s := db.Stats()
		units := s.CompactionCount + s.MergeCount
		if units == 0 {
			return 0
		}
		return (s.CompactionReadBytes + s.CompactionWriteBytes) / units
	}
	tiered := perCompaction(compaction.Tiered)
	ldcUnit := perCompaction(compaction.LDC)
	if tiered == 0 || ldcUnit == 0 {
		t.Skip("workload too small to trigger compactions")
	}
	if tiered <= ldcUnit {
		t.Errorf("tiered per-compaction unit (%d B) not larger than LDC's (%d B)",
			tiered, ldcUnit)
	}
}

// TestAdaptiveThresholdIntegration runs phases of different mixes through
// the real store and checks T_s moves the right way.
func TestAdaptiveThresholdIntegration(t *testing.T) {
	opts := smallOpts(compaction.LDC)
	opts.AdaptiveThreshold = true
	opts.SliceLinkThreshold = 4
	db := openTestDB(t, opts)
	defer db.Close()

	for i := 0; i < 3*adaptiveWindow; i++ {
		db.Put(key(i%2000), value(i))
	}
	afterWrites := db.SliceThreshold()
	if afterWrites <= 4 {
		t.Errorf("T_s after write phase = %d, want > 4", afterWrites)
	}
	for i := 0; i < 20*adaptiveWindow; i++ {
		if _, err := db.Get(key(i % 2000)); err != nil && !errors.Is(err, ErrNotFound) {
			t.Fatal(err)
		}
	}
	if got := db.SliceThreshold(); got >= afterWrites {
		t.Errorf("T_s after read phase = %d, want < %d", got, afterWrites)
	}
}

// TestProfileAndTableBytesConsistent sanity-checks the introspection
// surface used by the experiments.
func TestProfileAndTableBytesConsistent(t *testing.T) {
	db := openTestDB(t, smallOpts(compaction.LDC))
	defer db.Close()
	fillSequential(t, db, 3000)
	db.CompactRange()
	db.WaitIdle()

	prof := db.CurrentProfile()
	var levelBytes int64
	for _, lp := range prof.Levels {
		levelBytes += lp.Bytes
	}
	if got := db.TableBytes(); got != levelBytes+prof.FrozenBytes {
		t.Errorf("TableBytes %d != levels %d + frozen %d", got, levelBytes, prof.FrozenBytes)
	}
	if db.BlockReads() < 0 {
		t.Error("negative block reads")
	}
}
