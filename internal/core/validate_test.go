package core

import (
	"errors"
	"strings"
	"testing"
	"time"

	"repro/internal/checksum"
	"repro/internal/compaction"
	"repro/internal/compress"
	"repro/internal/vfs"
)

func TestValidateRejections(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*Options)
		want string // substring expected in the error
	}{
		{"negative MemTableSize", func(o *Options) { o.MemTableSize = -1 }, "MemTableSize"},
		{"negative SSTableSize", func(o *Options) { o.SSTableSize = -4096 }, "SSTableSize"},
		{"negative Fanout", func(o *Options) { o.Fanout = -2 }, "Fanout"},
		{"negative BaseLevelBytes", func(o *Options) { o.BaseLevelBytes = -1 }, "BaseLevelBytes"},
		{"negative SliceLinkThreshold", func(o *Options) { o.SliceLinkThreshold = -1 }, "SliceLinkThreshold"},
		{"negative L0CompactionTrigger", func(o *Options) { o.L0CompactionTrigger = -1 }, "L0CompactionTrigger"},
		{"negative L0SlowdownTrigger", func(o *Options) { o.L0SlowdownTrigger = -1 }, "L0SlowdownTrigger"},
		{"negative L0StopTrigger", func(o *Options) { o.L0StopTrigger = -1 }, "L0StopTrigger"},
		{"negative BlockSize", func(o *Options) { o.BlockSize = -512 }, "BlockSize"},
		{"negative BlockCacheSize", func(o *Options) { o.BlockCacheSize = -1 }, "BlockCacheSize"},
		{"negative BlockCacheShards", func(o *Options) { o.BlockCacheShards = -8 }, "BlockCacheShards"},
		{"negative CompactionParallelism", func(o *Options) { o.CompactionParallelism = -4 }, "CompactionParallelism"},
		{"negative MaxWriteGroupBytes", func(o *Options) { o.MaxWriteGroupBytes = -1 }, "MaxWriteGroupBytes"},
		{"tiny MaxWriteGroupBytes", func(o *Options) { o.MaxWriteGroupBytes = 100 }, "floor"},
		{"compaction trigger above slowdown", func(o *Options) { o.L0CompactionTrigger = 20 }, "L0CompactionTrigger"},
		{"slowdown above stop", func(o *Options) { o.L0SlowdownTrigger, o.L0StopTrigger = 6, 4 }, "L0SlowdownTrigger"},
		{"block bigger than table", func(o *Options) { o.BlockSize, o.SSTableSize = 1<<20, 64<<10 }, "BlockSize"},
		{"unknown Compression", func(o *Options) { o.Compression = compress.Kind(3) }, "Compression"},
		{"wild Compression", func(o *Options) { o.Compression = compress.Kind(255) }, "Compression"},
		{"unknown ChecksumKind", func(o *Options) { o.ChecksumKind = checksum.Kind(2) }, "ChecksumKind"},
		{"wild ChecksumKind", func(o *Options) { o.ChecksumKind = checksum.Kind(255) }, "ChecksumKind"},
		{"negative Shards", func(o *Options) { o.Shards = -1 }, "Shards"},
		{"wildly negative Shards", func(o *Options) { o.Shards = -64 }, "Shards"},
		{"negative CompactionRateBytesPerSec", func(o *Options) { o.CompactionRateBytesPerSec = -1 }, "CompactionRateBytesPerSec"},
		{"negative CompactionRateBurstBytes", func(o *Options) { o.CompactionRateBurstBytes = -4096 }, "CompactionRateBurstBytes"},
		{"negative CompactionL0AgingBound", func(o *Options) { o.CompactionL0AgingBound = -time.Second }, "CompactionL0AgingBound"},
		{"negative CompactionMergeAgingBound", func(o *Options) { o.CompactionMergeAgingBound = -time.Millisecond }, "CompactionMergeAgingBound"},
		{"burst below one block", func(o *Options) { o.CompactionRateBurstBytes = 100 }, "CompactionRateBurstBytes"},
		{"burst below explicit block size", func(o *Options) {
			o.BlockSize = 8 << 10
			o.CompactionRateBurstBytes = 4 << 10
		}, "below BlockSize"},
		{"aging bounds inverted", func(o *Options) {
			o.CompactionL0AgingBound, o.CompactionMergeAgingBound = 3*time.Second, time.Second
		}, "priority-aging bounds inverted"},
		{"explicit L0 aging above default merge bound", func(o *Options) {
			o.CompactionL0AgingBound = 5 * time.Second // merge bound defaults to 2s
		}, "CompactionL0AgingBound"},
		{"negative BlobThreshold", func(o *Options) { o.BlobThreshold = -1 }, "BlobThreshold"},
		{"negative BlobSegmentSize", func(o *Options) { o.BlobSegmentSize = -4096 }, "BlobSegmentSize"},
		{"blob threshold above table size", func(o *Options) {
			o.SSTableSize, o.BlobThreshold = 64 << 10, 128 << 10
		}, "BlobThreshold"},
		{"gc threshold above one", func(o *Options) {
			o.BlobThreshold, o.BlobGCThreshold = 1024, 1.5
		}, "BlobGCThreshold"},
		{"negative gc threshold", func(o *Options) {
			o.BlobThreshold, o.BlobGCThreshold = 1024, -0.25
		}, "BlobGCThreshold"},
		{"gc threshold with separation disabled", func(o *Options) { o.BlobGCThreshold = 0.5 }, "value separation disabled"},
		{"segment smaller than one value", func(o *Options) {
			o.BlobThreshold, o.BlobSegmentSize = 8 << 10, 4 << 10
		}, "BlobSegmentSize"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var o Options
			tc.mut(&o)
			err := o.Validate()
			if !errors.Is(err, ErrInvalidOptions) {
				t.Fatalf("Validate() = %v, want ErrInvalidOptions", err)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error %q does not mention %q", err, tc.want)
			}
			// Open must refuse the same configuration.
			o.FS = vfs.Mem()
			if _, err := Open("/bad", o); !errors.Is(err, ErrInvalidOptions) {
				t.Errorf("Open() = %v, want ErrInvalidOptions", err)
			}
		})
	}
}

func TestValidateAccepts(t *testing.T) {
	cases := []struct {
		name string
		o    Options
	}{
		{"zero value (all defaults)", Options{}},
		{"bloom disabled via negative", Options{BloomBitsPerKey: -1}},
		{"explicit consistent triggers", Options{L0CompactionTrigger: 2, L0SlowdownTrigger: 4, L0StopTrigger: 6}},
		{"single trigger below defaults", Options{L0CompactionTrigger: 2}},
		{"group cap at floor", Options{MaxWriteGroupBytes: 4 << 10}},
		{"flate blocks", Options{Compression: compress.Flate}},
		{"lz4 with xxh3", Options{Compression: compress.LZ4, ChecksumKind: checksum.XXH3}},
		{"xxh3 on raw blocks", Options{ChecksumKind: checksum.XXH3}},
		{"one shard", Options{Shards: 1}},
		{"power-of-two shards", Options{Shards: 8}},
		{"non-power-of-two shards (rounded up)", Options{Shards: 5}},
		{"huge shards (clamped)", Options{Shards: 100000}},
		{"rate limit with defaulted burst", Options{CompactionRateBytesPerSec: 8 << 20}},
		{"rate limit with explicit burst", Options{CompactionRateBytesPerSec: 8 << 20, CompactionRateBurstBytes: 1 << 20}},
		{"burst exactly one block", Options{CompactionRateBurstBytes: 4 << 10}},
		{"equal aging bounds", Options{CompactionL0AgingBound: time.Second, CompactionMergeAgingBound: time.Second}},
		{"accounting-only scheduler (rate zero)", Options{CompactionRateBurstBytes: 1 << 20}},
		{"separation with defaults", Options{BlobThreshold: 1024}},
		{"separation fully tuned", Options{BlobThreshold: 1024, BlobGCThreshold: 0.25, BlobSegmentSize: 4 << 20}},
		{"gc threshold at one", Options{BlobThreshold: 1024, BlobGCThreshold: 1}},
		{"segment exactly one value", Options{BlobThreshold: 8 << 10, BlobSegmentSize: 8 << 10}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if err := tc.o.Validate(); err != nil {
				t.Fatalf("Validate() = %v, want nil", err)
			}
		})
	}
}

// TestNormalizeShards pins the defaulting rule: non-positive means one
// shard, everything else rounds up to the next power of two and clamps at
// MaxShards (mirroring cache.ClampShards' snap-to-power-of-two behavior).
func TestNormalizeShards(t *testing.T) {
	cases := []struct{ in, want int }{
		{0, 1}, {1, 1}, {2, 2}, {3, 4}, {4, 4}, {5, 8}, {8, 8},
		{9, 16}, {100, 128}, {256, 256}, {257, MaxShards}, {1 << 20, MaxShards},
	}
	for _, tc := range cases {
		if got := normalizeShards(tc.in); got != tc.want {
			t.Errorf("normalizeShards(%d) = %d, want %d", tc.in, got, tc.want)
		}
	}
	// The effective count must be observable on an open database.
	opts := smallOpts(compaction.LDC)
	opts.Shards = 3
	db, err := Open("/rounded", opts)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	if got := db.NumShards(); got != 4 {
		t.Errorf("NumShards() = %d after Shards=3, want 4 (rounded up)", got)
	}
}
