package core

import (
	"sync"

	"repro/internal/cache"
	"repro/internal/keys"
	"repro/internal/sstable"
	"repro/internal/version"
	"repro/internal/vfs"
)

// tableCache shares one open sstable.Reader per live table file. Readers
// stay open until the file is deleted (file handles are cheap on the
// simulated filesystems; the data-block cache bounds memory). Obsolete-file
// garbage collection calls evict, which also purges the block cache.
type tableCache struct {
	fs         vfs.FS // tagged with the user-read I/O category
	dir        string
	icmp       keys.InternalComparer
	blockCache *cache.Cache
	verify     bool

	// readers maps file number → *sstable.Reader. A sync.Map because the
	// hot path (get on an already-open table) sits on the lock-free read
	// path and must not take any mutex; the map mutates only on first open
	// and on eviction of a deleted file, the access pattern sync.Map is
	// built for (stable keys, read-mostly).
	readers sync.Map
}

func newTableCache(fs vfs.FS, dir string, icmp keys.InternalComparer, bc *cache.Cache, verify bool) *tableCache {
	return &tableCache{
		fs:         fs,
		dir:        dir,
		icmp:       icmp,
		blockCache: bc,
		verify:     verify,
	}
}

// get returns the shared reader for a table file, opening it on first use.
// The returned reader must not be closed by the caller.
func (tc *tableCache) get(num uint64) (*sstable.Reader, error) {
	if r, ok := tc.readers.Load(num); ok {
		return r.(*sstable.Reader), nil
	}

	// Slow path: open without any lock; racing opens reconcile below, with
	// losers closing their redundant handle.
	f, err := tc.fs.Open(version.TableFileName(tc.dir, num))
	if err != nil {
		return nil, err
	}
	r, err := sstable.OpenReader(f, sstable.ReaderOptions{
		Cmp:             tc.icmp,
		Cache:           tc.blockCache,
		FileNum:         num,
		VerifyChecksums: tc.verify,
	})
	if err != nil {
		_ = f.Close() // reader never took ownership
		return nil, err
	}
	if existing, loaded := tc.readers.LoadOrStore(num, r); loaded {
		_ = r.Close() // lost the race; the winner's reader is the one in use
		return existing.(*sstable.Reader), nil
	}
	return r, nil
}

// evict closes and forgets the reader for a deleted file and purges its
// cached blocks.
func (tc *tableCache) evict(num uint64) {
	if r, ok := tc.readers.LoadAndDelete(num); ok {
		_ = r.(*sstable.Reader).Close() // file is being deleted; errors are moot
	}
	tc.blockCache.EvictFile(num)
}

// totalBlockReads sums device block fetches across open readers (Fig 13).
func (tc *tableCache) totalBlockReads() int64 {
	var n int64
	tc.readers.Range(func(_, r interface{}) bool {
		n += r.(*sstable.Reader).BlockReads()
		return true
	})
	return n
}

// totalIOBytes sums on-disk vs decoded block-fetch bytes across open
// readers (the read side of the compression stats). Like totalBlockReads,
// counters of evicted (deleted) files drop out of the sum.
func (tc *tableCache) totalIOBytes() (compressed, uncompressed int64) {
	tc.readers.Range(func(_, r interface{}) bool {
		c, u := r.(*sstable.Reader).IOBytes()
		compressed += c
		uncompressed += u
		return true
	})
	return compressed, uncompressed
}

// close releases every reader.
func (tc *tableCache) close() {
	tc.readers.Range(func(num, r interface{}) bool {
		_ = r.(*sstable.Reader).Close() // read-only handles; nothing to sync
		tc.readers.Delete(num)
		return true
	})
}
