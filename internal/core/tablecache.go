package core

import (
	"sync"

	"repro/internal/cache"
	"repro/internal/keys"
	"repro/internal/sstable"
	"repro/internal/version"
	"repro/internal/vfs"
)

// cacheShardShift namespaces per-shard file numbers inside the shared block
// cache and reader map: each shard's version set allocates file numbers
// independently, so shard 0's table 5 and shard 1's table 5 are different
// files and must never collide on a cache key. File numbers stay far below
// 2^48 (they count tables written over a database's lifetime), so the top
// 16 bits carry the shard.
const cacheShardShift = 48

// tableKey identifies one table file database-wide.
type tableKey struct {
	shard int
	num   uint64
}

// tableCache shares one open sstable.Reader per live table file across
// every shard of the database, all charging the one shared block cache.
// Readers stay open until the file is deleted (file handles are cheap on
// the simulated filesystems; the data-block cache bounds memory).
// Obsolete-file garbage collection calls evict, which also purges the block
// cache.
type tableCache struct {
	fs         vfs.FS // tagged with the user-read I/O category
	icmp       keys.InternalComparer
	blockCache *cache.Cache
	verify     bool

	// readers maps tableKey → *sstable.Reader. A sync.Map because the hot
	// path (get on an already-open table) sits on the lock-free read path
	// and must not take any mutex; the map mutates only on first open and
	// on eviction of a deleted file, the access pattern sync.Map is built
	// for (stable keys, read-mostly).
	readers sync.Map
}

func newTableCache(fs vfs.FS, icmp keys.InternalComparer, bc *cache.Cache, verify bool) *tableCache {
	return &tableCache{
		fs:         fs,
		icmp:       icmp,
		blockCache: bc,
		verify:     verify,
	}
}

// forShard binds the shared cache to one shard's identity and table
// directory. The returned view is what a store holds as db.tables.
func (tc *tableCache) forShard(shard int, dir string) *shardTables {
	return &shardTables{tc: tc, shard: shard, dir: dir}
}

// shardTables is one shard's view of the shared table cache: same reader
// map and block cache, but file numbers resolve against this shard's
// directory and are namespaced with its ID.
type shardTables struct {
	tc    *tableCache
	shard int
	dir   string
}

// cacheNum namespaces a file number for the shared block cache.
func (st *shardTables) cacheNum(num uint64) uint64 {
	return num | uint64(st.shard)<<cacheShardShift
}

// get returns the shared reader for a table file of this shard, opening it
// on first use. The returned reader must not be closed by the caller.
func (st *shardTables) get(num uint64) (*sstable.Reader, error) {
	tc := st.tc
	key := tableKey{shard: st.shard, num: num}
	if r, ok := tc.readers.Load(key); ok {
		return r.(*sstable.Reader), nil
	}

	// Slow path: open without any lock; racing opens reconcile below, with
	// losers closing their redundant handle.
	f, err := tc.fs.Open(version.TableFileName(st.dir, num))
	if err != nil {
		return nil, err
	}
	r, err := sstable.OpenReader(f, sstable.ReaderOptions{
		Cmp:             tc.icmp,
		Cache:           tc.blockCache,
		FileNum:         st.cacheNum(num),
		VerifyChecksums: tc.verify,
	})
	if err != nil {
		_ = f.Close() // reader never took ownership
		return nil, err
	}
	if existing, loaded := tc.readers.LoadOrStore(key, r); loaded {
		_ = r.Close() // lost the race; the winner's reader is the one in use
		return existing.(*sstable.Reader), nil
	}
	return r, nil
}

// evict closes and forgets the reader for a deleted file of this shard and
// purges its cached blocks.
func (st *shardTables) evict(num uint64) {
	if r, ok := st.tc.readers.LoadAndDelete(tableKey{shard: st.shard, num: num}); ok {
		_ = r.(*sstable.Reader).Close() // file is being deleted; errors are moot
	}
	st.tc.blockCache.EvictFile(st.cacheNum(num))
}

// totalBlockReads sums device block fetches across this shard's open
// readers (Fig 13).
func (st *shardTables) totalBlockReads() int64 {
	var n int64
	st.tc.readers.Range(func(k, r interface{}) bool {
		if k.(tableKey).shard == st.shard {
			n += r.(*sstable.Reader).BlockReads()
		}
		return true
	})
	return n
}

// totalIOBytes sums on-disk vs decoded block-fetch bytes across this
// shard's open readers (the read side of the compression stats). Like
// totalBlockReads, counters of evicted (deleted) files drop out of the sum.
func (st *shardTables) totalIOBytes() (compressed, uncompressed int64) {
	st.tc.readers.Range(func(k, r interface{}) bool {
		if k.(tableKey).shard == st.shard {
			c, u := r.(*sstable.Reader).IOBytes()
			compressed += c
			uncompressed += u
		}
		return true
	})
	return compressed, uncompressed
}

// closeShard releases this shard's readers. Each shard tears its own
// readers down during Close (after its in-flight readers drain), so the
// shared map empties once every shard has closed.
func (st *shardTables) closeShard() {
	st.tc.readers.Range(func(k, r interface{}) bool {
		if k.(tableKey).shard == st.shard {
			_ = r.(*sstable.Reader).Close() // read-only handles; nothing to sync
			st.tc.readers.Delete(k)
		}
		return true
	})
}
