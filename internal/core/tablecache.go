package core

import (
	"sync"

	"repro/internal/cache"
	"repro/internal/keys"
	"repro/internal/sstable"
	"repro/internal/version"
	"repro/internal/vfs"
)

// tableCache shares one open sstable.Reader per live table file. Readers
// stay open until the file is deleted (file handles are cheap on the
// simulated filesystems; the data-block cache bounds memory). Obsolete-file
// garbage collection calls evict, which also purges the block cache.
type tableCache struct {
	fs         vfs.FS // tagged with the user-read I/O category
	dir        string
	icmp       keys.InternalComparer
	blockCache *cache.Cache
	verify     bool

	// RWMutex: the hot path (get on an already-open table) is read-only and
	// runs concurrently from foreground Gets and compaction workers; only
	// first-open, evict, and close take the write lock.
	mu      sync.RWMutex
	readers map[uint64]*sstable.Reader
}

func newTableCache(fs vfs.FS, dir string, icmp keys.InternalComparer, bc *cache.Cache, verify bool) *tableCache {
	return &tableCache{
		fs:         fs,
		dir:        dir,
		icmp:       icmp,
		blockCache: bc,
		verify:     verify,
		readers:    map[uint64]*sstable.Reader{},
	}
}

// get returns the shared reader for a table file, opening it on first use.
// The returned reader must not be closed by the caller.
func (tc *tableCache) get(num uint64) (*sstable.Reader, error) {
	tc.mu.RLock()
	if r, ok := tc.readers[num]; ok {
		tc.mu.RUnlock()
		return r, nil
	}
	tc.mu.RUnlock()

	// Open outside the lock; racing opens are reconciled below.
	f, err := tc.fs.Open(version.TableFileName(tc.dir, num))
	if err != nil {
		return nil, err
	}
	r, err := sstable.OpenReader(f, sstable.ReaderOptions{
		Cmp:             tc.icmp,
		Cache:           tc.blockCache,
		FileNum:         num,
		VerifyChecksums: tc.verify,
	})
	if err != nil {
		f.Close()
		return nil, err
	}
	tc.mu.Lock()
	defer tc.mu.Unlock()
	if existing, ok := tc.readers[num]; ok {
		r.Close()
		return existing, nil
	}
	tc.readers[num] = r
	return r, nil
}

// evict closes and forgets the reader for a deleted file and purges its
// cached blocks.
func (tc *tableCache) evict(num uint64) {
	tc.mu.Lock()
	r, ok := tc.readers[num]
	if ok {
		delete(tc.readers, num)
	}
	tc.mu.Unlock()
	if ok {
		r.Close()
	}
	tc.blockCache.EvictFile(num)
}

// totalBlockReads sums device block fetches across open readers (Fig 13).
func (tc *tableCache) totalBlockReads() int64 {
	tc.mu.RLock()
	defer tc.mu.RUnlock()
	var n int64
	for _, r := range tc.readers {
		n += r.BlockReads()
	}
	return n
}

// close releases every reader.
func (tc *tableCache) close() {
	tc.mu.Lock()
	defer tc.mu.Unlock()
	for num, r := range tc.readers {
		r.Close()
		delete(tc.readers, num)
	}
}
