package core

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/batch"
	"repro/internal/compaction"
	"repro/internal/vfs"
)

// shardOpts returns smallOpts with a shard count, each DB on its own
// in-memory filesystem.
func shardOpts(shards int) Options {
	opts := smallOpts(compaction.LDC)
	opts.Shards = shards
	return opts
}

// TestShardScanEquivalence is the cross-shard ordering property test: the
// same workload written at Shards=1, 2, and 8 must yield byte-identical
// ordered results from Scan, forward iteration, seeks, and reverse
// iteration. Sharding partitions the keyspace but must never reorder,
// drop, or duplicate what a cursor observes.
func TestShardScanEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	const n = 2000
	keys := make([][]byte, n)
	for i := range keys {
		// Random lengths and bytes so shard routing sees a spread of
		// hashes; duplicates across iterations overwrite, as in real load.
		k := make([]byte, 4+rng.Intn(12))
		for j := range k {
			k[j] = byte('a' + rng.Intn(26))
		}
		keys[i] = k
	}

	open := func(shards int) *DB {
		t.Helper()
		db, err := Open(fmt.Sprintf("/db-%d", shards), shardOpts(shards))
		if err != nil {
			t.Fatalf("Open(shards=%d): %v", shards, err)
		}
		return db
	}
	counts := []int{1, 2, 8}
	dbs := make([]*DB, len(counts))
	for i, c := range counts {
		dbs[i] = open(c)
		defer dbs[i].Close()
		if got := dbs[i].NumShards(); got != c {
			t.Fatalf("NumShards() = %d, want %d", got, c)
		}
	}
	for _, db := range dbs {
		for i, k := range keys {
			if err := db.Put(k, []byte(fmt.Sprintf("val-%d-%s", i, k))); err != nil {
				t.Fatal(err)
			}
		}
		// Tombstones must collapse identically across shard counts.
		for i := 0; i < n; i += 7 {
			if err := db.Delete(keys[i]); err != nil {
				t.Fatal(err)
			}
		}
	}

	ref, err := dbs[0].Scan(nil, n+1)
	if err != nil {
		t.Fatal(err)
	}
	if len(ref) == 0 {
		t.Fatal("reference scan is empty")
	}
	for di, db := range dbs[1:] {
		got, err := db.Scan(nil, n+1)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(ref) {
			t.Fatalf("shards=%d: Scan returned %d pairs, want %d", counts[di+1], len(got), len(ref))
		}
		for i := range ref {
			if !bytes.Equal(got[i].Key, ref[i].Key) || !bytes.Equal(got[i].Value, ref[i].Value) {
				t.Fatalf("shards=%d: Scan[%d] = %q=%q, want %q=%q",
					counts[di+1], i, got[i].Key, got[i].Value, ref[i].Key, ref[i].Value)
			}
		}
	}

	// Reverse iteration: SeekToLast + Prev must walk the reference backward.
	for di, db := range dbs[1:] {
		it, err := db.NewIterator(nil)
		if err != nil {
			t.Fatal(err)
		}
		i := len(ref) - 1
		for it.SeekToLast(); it.Valid(); it.Prev() {
			if i < 0 {
				t.Fatalf("shards=%d: reverse iteration yielded extra key %q", counts[di+1], it.Key())
			}
			if !bytes.Equal(it.Key(), ref[i].Key) || !bytes.Equal(it.Value(), ref[i].Value) {
				t.Fatalf("shards=%d: reverse[%d] = %q, want %q", counts[di+1], i, it.Key(), ref[i].Key)
			}
			i--
		}
		if err := it.Close(); err != nil {
			t.Fatal(err)
		}
		if i != -1 {
			t.Fatalf("shards=%d: reverse iteration stopped %d entries early", counts[di+1], i+1)
		}
	}

	// Random seeks, forward and with direction switches.
	for di, db := range dbs[1:] {
		it, err := db.NewIterator(nil)
		if err != nil {
			t.Fatal(err)
		}
		for trial := 0; trial < 50; trial++ {
			target := keys[rng.Intn(n)]
			ri := 0
			for ri < len(ref) && bytes.Compare(ref[ri].Key, target) < 0 {
				ri++
			}
			it.Seek(target)
			for step := 0; step < 5 && ri < len(ref); step++ {
				if !it.Valid() {
					t.Fatalf("shards=%d: Seek(%q)+%d invalid, want %q", counts[di+1], target, step, ref[ri].Key)
				}
				if !bytes.Equal(it.Key(), ref[ri].Key) {
					t.Fatalf("shards=%d: Seek(%q)+%d = %q, want %q", counts[di+1], target, step, it.Key(), ref[ri].Key)
				}
				it.Next()
				ri++
			}
			// Switch direction mid-stream.
			if it.Valid() && ri > 0 {
				it.Prev()
				ri--
				if !it.Valid() || !bytes.Equal(it.Key(), ref[ri].Key) {
					t.Fatalf("shards=%d: Prev after Seek(%q) mismatch", counts[di+1], target)
				}
			}
		}
		if err := it.Close(); err != nil {
			t.Fatal(err)
		}
	}
}

// TestShardCrashRecovery is the multi-shard analogue of the ErrFS
// torn-write fault tests: inject a write failure mid-load against a
// 4-shard store with a synced WAL, crash without a clean Close, reboot on
// the surviving bytes, and require every acknowledged write back — each
// shard's WAL segment must replay into the right shard.
func TestShardCrashRecovery(t *testing.T) {
	errInjected := errors.New("injected write failure")
	for _, budget := range []int64{200, 800, 3000} {
		mem := vfs.Mem()
		efs := vfs.NewErrFS(mem)
		opts := shardOpts(4)
		opts.FS = efs
		opts.Sync = true

		db, err := Open("/db", opts)
		if err != nil {
			t.Fatalf("budget %d: open: %v", budget, err)
		}
		efs.FailAfterWrites(budget, errInjected)

		acked := map[string]string{}
		rng := rand.New(rand.NewSource(budget))
		for i := 0; i < 100000; i++ {
			k := fmt.Sprintf("key-%05d", rng.Intn(2000))
			v := fmt.Sprintf("v-%d-%d", budget, i)
			if err := db.Put([]byte(k), []byte(v)); err != nil {
				break
			}
			acked[k] = v
		}
		// Crash: abandon every shard without a clean Close.
		efs.Disarm()
		for _, st := range db.shards {
			st.mu.Lock()
			st.stopBackgroundLocked()
			st.mu.Unlock()
		}

		// Reboot on the surviving bytes; the shard count comes from the
		// marker, not the options.
		opts2 := shardOpts(0)
		opts2.FS = mem
		opts2.Sync = true
		db2, err := Open("/db", opts2)
		if err != nil {
			t.Fatalf("budget %d: reopen: %v", budget, err)
		}
		if got := db2.NumShards(); got != 4 {
			t.Fatalf("budget %d: recovered NumShards() = %d, want 4", budget, got)
		}
		for k, want := range acked {
			got, err := db2.Get([]byte(k))
			if err != nil {
				t.Fatalf("budget %d: lost acknowledged key %q: %v", budget, k, err)
			}
			if string(got) != want {
				t.Fatalf("budget %d: key %q = %q, want %q", budget, k, got, want)
			}
		}
		if err := db2.Close(); err != nil {
			t.Fatalf("budget %d: close: %v", budget, err)
		}
	}
}

// TestShardMarker pins the shard count's persistence rules: recorded at
// creation, adopted on a Shards=0 reopen, and defended against an explicit
// mismatch (which would rehash keys into shards that can't see them).
func TestShardMarker(t *testing.T) {
	fs := vfs.Mem()
	opts := shardOpts(4)
	opts.FS = fs
	db, err := Open("/db", opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Put([]byte("k"), []byte("v")); err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	// Shards=0 adopts the recorded count.
	opts0 := shardOpts(0)
	opts0.FS = fs
	db2, err := Open("/db", opts0)
	if err != nil {
		t.Fatal(err)
	}
	if got := db2.NumShards(); got != 4 {
		t.Errorf("adopted NumShards() = %d, want 4", got)
	}
	if v, err := db2.Get([]byte("k")); err != nil || string(v) != "v" {
		t.Errorf("Get after adopt = %q, %v", v, err)
	}
	if err := db2.Close(); err != nil {
		t.Fatal(err)
	}

	// An explicit mismatch is an invalid configuration.
	optsBad := shardOpts(2)
	optsBad.FS = fs
	if _, err := Open("/db", optsBad); !errors.Is(err, ErrInvalidOptions) {
		t.Errorf("Open with mismatched Shards = %v, want ErrInvalidOptions", err)
	}

	// Matching explicit count still opens (5 rounds to 8, so use 4).
	optsOK := shardOpts(4)
	optsOK.FS = fs
	db3, err := Open("/db", optsOK)
	if err != nil {
		t.Fatalf("Open with matching Shards: %v", err)
	}
	db3.Close()

	// A pre-existing unsharded database refuses re-partitioning.
	legacy := shardOpts(1)
	legacyFS := vfs.Mem()
	legacy.FS = legacyFS
	dbL, err := Open("/legacy", legacy)
	if err != nil {
		t.Fatal(err)
	}
	if err := dbL.Put([]byte("k"), []byte("v")); err != nil {
		t.Fatal(err)
	}
	if err := dbL.Close(); err != nil {
		t.Fatal(err)
	}
	reshard := shardOpts(4)
	reshard.FS = legacyFS
	if _, err := Open("/legacy", reshard); !errors.Is(err, ErrInvalidOptions) {
		t.Errorf("Open re-partitioning a legacy database = %v, want ErrInvalidOptions", err)
	}
}

// TestShardsOneLayoutUnchanged pins the compatibility guarantee: Shards=1
// (and the zero default) leaves the on-disk layout byte-for-byte the
// legacy one — no marker file, no wal/ directory, no shard-* roots.
func TestShardsOneLayoutUnchanged(t *testing.T) {
	fs := vfs.Mem()
	opts := shardOpts(1)
	opts.FS = fs
	db, err := Open("/db", opts)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		if err := db.Put(key(i), value(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	names, err := fs.List("/db")
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range names {
		if name == shardsFileName || name == "wal" {
			t.Errorf("Shards=1 created sharding artifact %q", name)
		}
		if len(name) >= 6 && name[:6] == "shard-" {
			t.Errorf("Shards=1 created shard directory %q", name)
		}
	}
}

// TestShardApplyFanout exercises the batch splitter: one batch spanning
// every shard must commit whole (read-your-writes immediately after Apply
// returns), including tombstones, and survive a reopen.
func TestShardApplyFanout(t *testing.T) {
	fs := vfs.Mem()
	opts := shardOpts(8)
	opts.FS = fs
	db, err := Open("/db", opts)
	if err != nil {
		t.Fatal(err)
	}

	const n = 500
	b := batch.New()
	for i := 0; i < n; i++ {
		b.Set(key(i), value(i))
	}
	if err := db.Apply(b); err != nil {
		t.Fatal(err)
	}
	touched := map[int]bool{}
	for i := 0; i < n; i++ {
		got, err := db.Get(key(i))
		if err != nil || !bytes.Equal(got, value(i)) {
			t.Fatalf("Get(%q) after Apply = %q, %v", key(i), got, err)
		}
		touched[db.ShardOf(key(i))] = true
	}
	if len(touched) != 8 {
		t.Fatalf("batch of %d keys touched %d shards, want all 8", n, len(touched))
	}

	// Mixed sets and deletes in one cross-shard batch.
	b2 := batch.New()
	for i := 0; i < n; i += 2 {
		b2.Delete(key(i))
	}
	for i := 1; i < n; i += 2 {
		b2.Set(key(i), []byte("updated"))
	}
	if err := db.Apply(b2); err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	opts2 := shardOpts(0)
	opts2.FS = fs
	db2, err := Open("/db", opts2)
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	for i := 0; i < n; i++ {
		got, err := db2.Get(key(i))
		if i%2 == 0 {
			if !errors.Is(err, ErrNotFound) {
				t.Fatalf("Get(%q) = %q, %v, want ErrNotFound", key(i), got, err)
			}
		} else if err != nil || string(got) != "updated" {
			t.Fatalf("Get(%q) = %q, %v, want %q", key(i), got, err, "updated")
		}
	}
}

// TestShardSnapshot pins snapshot semantics across shards: a snapshot
// captures every shard in one pass, so reads and iterators at the snapshot
// see none of the writes applied afterward.
func TestShardSnapshot(t *testing.T) {
	db := openTestDB(t, shardOpts(4))
	defer db.Close()

	const n = 200
	for i := 0; i < n; i++ {
		if err := db.Put(key(i), value(i)); err != nil {
			t.Fatal(err)
		}
	}
	snap, err := db.NewSnapshot()
	if err != nil {
		t.Fatal(err)
	}
	defer snap.Release()

	for i := 0; i < n; i++ {
		if i%3 == 0 {
			if err := db.Delete(key(i)); err != nil {
				t.Fatal(err)
			}
		} else if err := db.Put(key(i), []byte("after")); err != nil {
			t.Fatal(err)
		}
	}

	for i := 0; i < n; i += 17 {
		got, err := db.GetAt(key(i), snap)
		if err != nil || !bytes.Equal(got, value(i)) {
			t.Fatalf("GetAt(%q, snap) = %q, %v, want %q", key(i), got, err, value(i))
		}
	}
	it, err := db.NewIterator(snap)
	if err != nil {
		t.Fatal(err)
	}
	count := 0
	for it.SeekToFirst(); it.Valid(); it.Next() {
		if !bytes.Equal(it.Key(), key(count)) || !bytes.Equal(it.Value(), value(count)) {
			t.Fatalf("snapshot iter[%d] = %q=%q, want %q=%q", count, it.Key(), it.Value(), key(count), value(count))
		}
		count++
	}
	if err := it.Close(); err != nil {
		t.Fatal(err)
	}
	if count != n {
		t.Fatalf("snapshot iterator saw %d keys, want %d", count, n)
	}
}

// TestShardStatsAggregate checks the router's Stats aggregation: request
// counters sum across shards, the breakdown's totals match the aggregate,
// and derived ratios come from the summed counters.
func TestShardStatsAggregate(t *testing.T) {
	db := openTestDB(t, shardOpts(4))
	defer db.Close()

	const n = 300
	for i := 0; i < n; i++ {
		if err := db.Put(key(i), value(i)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < n; i++ {
		if _, err := db.Get(key(i)); err != nil {
			t.Fatal(err)
		}
	}

	s := db.Stats()
	if s.Puts != n || s.Gets != n {
		t.Errorf("aggregate Puts=%d Gets=%d, want %d each", s.Puts, s.Gets, n)
	}
	per := db.ShardStats()
	if len(per) != 4 {
		t.Fatalf("ShardStats returned %d entries, want 4", len(per))
	}
	var puts, groups, batches int64
	active := 0
	for _, p := range per {
		puts += p.Puts
		groups += p.WriteGroupsTotal
		batches += p.WriteBatchesTotal
		if p.Puts > 0 {
			active++
		}
	}
	if puts != n {
		t.Errorf("per-shard Puts sum to %d, want %d", puts, n)
	}
	if active < 2 {
		t.Errorf("only %d shards received writes; hash routing should spread %d keys", active, n)
	}
	if s.WriteGroupsTotal != groups || s.WriteBatchesTotal != batches {
		t.Errorf("aggregate groups/batches %d/%d, want %d/%d", s.WriteGroupsTotal, s.WriteBatchesTotal, groups, batches)
	}
	if groups > 0 {
		want := float64(batches) / float64(groups)
		if s.AvgGroupSize != want {
			t.Errorf("AvgGroupSize = %v, want %v (recomputed from sums)", s.AvgGroupSize, want)
		}
	}
	if s.WriteState == "" {
		t.Error("aggregate WriteState is empty")
	}
}
