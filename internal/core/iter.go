package core

import (
	"sort"
	"sync"

	"repro/internal/compaction"
	"repro/internal/invariants"
	"repro/internal/iterator"
	"repro/internal/keys"
	"repro/internal/version"
)

// levelIter lazily concatenates the table iterators of one sorted level.
// Files' own ranges are disjoint and sorted, so walking files in order
// yields internal-key order. (Slice windows are merged separately as their
// own children of the top-level merging iterator.) levelIters are pooled;
// Close recycles them, so use after Close is invalid.
type levelIter struct {
	db     *store
	files  []*version.FileMeta
	idx    int
	cur    iterator.Iterator
	err    error
	closed bool
}

var levelIterPool = sync.Pool{New: func() interface{} { return new(levelIter) }}

func (db *store) newLevelIter(files []*version.FileMeta) iterator.Iterator {
	if len(files) == 0 {
		return iterator.Empty(nil)
	}
	l := levelIterPool.Get().(*levelIter)
	l.db, l.files, l.idx, l.cur, l.err, l.closed = db, files, -1, nil, nil, false
	return l
}

// open positions the iterator at file idx with no cursor placement. The
// previous cursor, if any, is closed (returning pooled table iterators for
// reuse).
func (l *levelIter) open(idx int) bool {
	if l.cur != nil {
		if err := l.cur.Close(); err != nil && l.err == nil {
			l.err = err
		}
		l.cur = nil
	}
	l.idx = idx
	if l.err != nil || idx < 0 || idx >= len(l.files) {
		return false
	}
	r, err := l.db.tables.get(l.files[idx].Num)
	if err != nil {
		l.err = err
		return false
	}
	l.cur = r.NewIterator()
	return true
}

// assertOpen catches use-after-Close under -tags invariants. A closed
// levelIter may already be recycled by another goroutine, so a stale use is
// silent cross-iterator corruption in production; with invariants on, Close
// keeps the carcass out of the pool (poisoning it) and every entry point
// trips here instead.
func (l *levelIter) assertOpen() {
	if invariants.Enabled && l.closed {
		panic("invariant violated: levelIter used after Close")
	}
}

func (l *levelIter) Valid() bool {
	l.assertOpen()
	return l.err == nil && l.cur != nil && l.cur.Valid()
}

func (l *levelIter) SeekGE(target []byte) {
	l.assertOpen()
	if l.err != nil {
		return
	}
	idx := sort.Search(len(l.files), func(i int) bool {
		return l.db.icmp.Compare(l.files[i].Largest, target) >= 0
	})
	if !l.open(idx) {
		return
	}
	l.cur.SeekGE(target)
	l.skipForward()
}

func (l *levelIter) SeekToFirst() {
	l.assertOpen()
	if l.err != nil {
		return
	}
	if !l.open(0) {
		return
	}
	l.cur.SeekToFirst()
	l.skipForward()
}

func (l *levelIter) SeekToLast() {
	l.assertOpen()
	if l.err != nil {
		return
	}
	if !l.open(len(l.files) - 1) {
		return
	}
	l.cur.SeekToLast()
	l.skipBackward()
}

func (l *levelIter) Next() {
	if !l.Valid() {
		return
	}
	l.cur.Next()
	l.skipForward()
}

func (l *levelIter) Prev() {
	if !l.Valid() {
		return
	}
	l.cur.Prev()
	l.skipBackward()
}

func (l *levelIter) skipForward() {
	for l.err == nil && l.cur != nil && !l.cur.Valid() {
		if err := l.cur.Error(); err != nil {
			l.err = err
			return
		}
		if !l.open(l.idx + 1) {
			return
		}
		l.cur.SeekToFirst()
	}
}

func (l *levelIter) skipBackward() {
	for l.err == nil && l.cur != nil && !l.cur.Valid() {
		if err := l.cur.Error(); err != nil {
			l.err = err
			return
		}
		if !l.open(l.idx - 1) {
			return
		}
		l.cur.SeekToLast()
	}
}

func (l *levelIter) Key() []byte   { l.assertOpen(); return l.cur.Key() }
func (l *levelIter) Value() []byte { l.assertOpen(); return l.cur.Value() }

func (l *levelIter) Error() error {
	if l.err != nil {
		return l.err
	}
	if l.cur != nil {
		return l.cur.Error()
	}
	return nil
}

// Close releases the current table iterator and recycles the levelIter.
// Double-Close is tolerated; any other use after Close is invalid.
func (l *levelIter) Close() error {
	err := l.Error()
	if l.closed {
		return err
	}
	l.closed = true
	if l.cur != nil {
		if cerr := l.cur.Close(); cerr != nil && err == nil {
			err = cerr
		}
		l.cur = nil
	}
	l.db, l.files, l.err = nil, nil, nil
	if invariants.Enabled {
		// Keep the closed iterator out of the pool: recycling would reset
		// closed and let a stale caller silently corrupt the next user. The
		// poisoned carcass makes any late call trip assertOpen instead.
		return err
	}
	levelIterPool.Put(l)
	return err
}

// newInternalIterator assembles the full merged view: memtables, L0 tables
// (as independent children), one levelIter per sorted level, plus — the LDC
// read-path modification — one clamped frozen-table iterator per slice.
// The returned cleanup must be called when the iterator is closed.
func (db *store) newInternalIterator() (iterator.Iterator, func(), error) {
	// Lock-free acquisition: the read state pins (mem, imm, version) with a
	// single atomic load + ref; the ref is held until cleanup runs.
	rs := db.loadReadState()
	if rs == nil {
		return nil, nil, ErrClosed
	}
	v := rs.v

	var children []iterator.Iterator
	children = append(children, rs.mem.NewIterator())
	if rs.imm != nil {
		children = append(children, rs.imm.NewIterator())
	}
	fail := func(err error) (iterator.Iterator, func(), error) {
		for _, c := range children {
			c.Close()
		}
		rs.unref()
		return nil, nil, err
	}
	for i := len(v.Levels[0]) - 1; i >= 0; i-- {
		r, err := db.tables.get(v.Levels[0][i].Num)
		if err != nil {
			return fail(err)
		}
		children = append(children, r.NewIterator())
	}
	for level := 1; level < version.NumLevels; level++ {
		files := v.Levels[level]
		if len(files) == 0 {
			continue
		}
		if db.opts.Policy == compaction.Tiered {
			// Tiers hold overlapping runs: one child per file.
			for i := len(files) - 1; i >= 0; i-- {
				r, err := db.tables.get(files[i].Num)
				if err != nil {
					return fail(err)
				}
				children = append(children, r.NewIterator())
			}
			continue
		}
		children = append(children, db.newLevelIter(files))
		for _, f := range v.Sliced[level] {
			for i := range f.Slices {
				s := &f.Slices[i]
				r, err := db.tables.get(s.FrozenNum)
				if err != nil {
					return fail(err)
				}
				children = append(children,
					iterator.NewClamped(db.icmp.User, r.NewIterator(), s.Range))
			}
		}
	}
	merged := iterator.NewMerging(db.icmp.Compare, children...)
	return merged, rs.unref, nil
}

// ---------------------------------------------------------------------------
// User-facing iterator

// storeIter walks one shard's user keys in order, exposing the newest
// visible version of each and skipping tombstones. The public Iterator
// (router_iter.go) is either one of these (Shards=1) or an ordered k-way
// merge of them.
type storeIter struct {
	db      *store
	it      iterator.Iterator
	cleanup func()
	seq     keys.Seq

	valid      bool
	dir        int8 // 0 forward, 1 reverse
	savedKey   []byte
	savedValue []byte
	savedKind  keys.Kind // kind of the entry savedValue came from (reverse)
	err        error
}

// newIter returns an iterator over the pinned sequence (nil = latest
// state). Close it when done.
func (db *store) newIter(snapSeq *keys.Seq) (*storeIter, error) {
	db.stats.scans.Add(1)
	if db.adaptive != nil {
		db.adaptive.observeReads(1)
	}
	seq := db.set.LastSeq()
	if snapSeq != nil {
		seq = *snapSeq
	}
	it, cleanup, err := db.newInternalIterator()
	if err != nil {
		return nil, err
	}
	// Registered for value-log GC: segment deletion waits until no iterator
	// is live, because an iterator may resolve a pointer at any moment
	// without holding a snapshot registration. Close deregisters.
	db.openIters.Add(1)
	return &storeIter{db: db, it: it, cleanup: cleanup, seq: seq}, nil
}

// Valid reports whether the iterator is positioned on an entry.
func (i *storeIter) Valid() bool { return i.valid }

// Error returns the first error encountered.
func (i *storeIter) Error() error {
	if i.err != nil {
		return i.err
	}
	return i.it.Error()
}

// Close releases the iterator. Idempotent (cleanup doubles as the
// first-close marker).
func (i *storeIter) Close() error {
	err := i.Error()
	i.it.Close()
	if i.cleanup != nil {
		i.cleanup()
		i.cleanup = nil
		i.db.openIters.Add(-1)
	}
	i.valid = false
	return err
}

// Key returns the current user key, valid until the next positioning call.
func (i *storeIter) Key() []byte {
	if i.dir == 0 {
		return keys.InternalKey(i.it.Key()).UserKey()
	}
	return i.savedKey
}

// Value returns the current value, valid until the next positioning call.
// Pointer entries resolve through the value log here, on demand, so scans
// that only look at keys never touch the log; a resolution failure parks
// the error on the iterator (visible via Error).
func (i *storeIter) Value() []byte {
	if i.dir == 0 {
		if keys.InternalKey(i.it.Key()).Kind() == keys.KindBlobRef {
			return i.resolve(i.it.Value())
		}
		return i.it.Value()
	}
	if i.savedKind == keys.KindBlobRef {
		return i.resolve(i.savedValue)
	}
	return i.savedValue
}

// resolve materializes a pointer entry's value, recording any failure on
// the iterator.
func (i *storeIter) resolve(ptr []byte) []byte {
	val, err := i.db.resolveBlob(ptr)
	if err != nil {
		if i.err == nil {
			i.err = err
		}
		return nil
	}
	return val
}

// SeekToFirst positions at the smallest key.
func (i *storeIter) SeekToFirst() {
	i.dir = 0
	i.it.SeekToFirst()
	i.findNextUserEntry(false)
}

// Seek positions at the first key >= target.
func (i *storeIter) Seek(target []byte) {
	i.dir = 0
	i.it.SeekGE(keys.MakeSearchKey(nil, target, i.seq))
	i.findNextUserEntry(false)
}

// SeekToLast positions at the largest key.
func (i *storeIter) SeekToLast() {
	i.dir = 1
	i.it.SeekToLast()
	i.findPrevUserEntry()
}

// Next advances to the following user key.
func (i *storeIter) Next() {
	if !i.valid {
		return
	}
	if i.dir == 1 {
		// Switch reverse→forward: position the internal iterator at the
		// first entry past savedKey.
		i.dir = 0
		i.it.SeekGE(keys.MakeSearchKey(nil, i.savedKey, keys.MaxSeq))
		for i.it.Valid() &&
			i.db.icmp.User.Compare(keys.InternalKey(i.it.Key()).UserKey(), i.savedKey) == 0 {
			i.it.Next()
		}
		i.findNextUserEntry(false)
		return
	}
	i.savedKey = append(i.savedKey[:0], keys.InternalKey(i.it.Key()).UserKey()...)
	i.it.Next()
	i.findNextUserEntry(true)
}

// findNextUserEntry advances to the newest visible, non-deleted version of
// the next user key; when skipping, entries for savedKey are passed over.
func (i *storeIter) findNextUserEntry(skipping bool) {
	ucmp := i.db.icmp.User
	for ; i.it.Valid(); i.it.Next() {
		ik := keys.InternalKey(i.it.Key())
		if ik.Seq() > i.seq {
			continue // invisible at this snapshot
		}
		switch ik.Kind() {
		case keys.KindDelete:
			i.savedKey = append(i.savedKey[:0], ik.UserKey()...)
			skipping = true
		case keys.KindSet, keys.KindBlobRef:
			if skipping && ucmp.Compare(ik.UserKey(), i.savedKey) <= 0 {
				continue // older version or deleted key
			}
			i.valid = true
			return
		}
	}
	i.valid = false
}

// Prev retreats to the preceding user key.
func (i *storeIter) Prev() {
	if !i.valid {
		return
	}
	if i.dir == 0 {
		// Switch forward→reverse: walk back before every version of the
		// current user key.
		cur := append([]byte(nil), keys.InternalKey(i.it.Key()).UserKey()...)
		i.savedKey = cur
		for {
			i.it.Prev()
			if !i.it.Valid() {
				i.valid = false
				i.dir = 1
				return
			}
			if i.db.icmp.User.Compare(keys.InternalKey(i.it.Key()).UserKey(), cur) < 0 {
				break
			}
		}
		i.dir = 1
	}
	i.findPrevUserEntry()
}

// findPrevUserEntry scans backwards and leaves savedKey/savedValue holding
// the newest visible version of the nearest preceding non-deleted user key
// (ports LevelDB's DBIter::FindPrevUserEntry).
func (i *storeIter) findPrevUserEntry() {
	ucmp := i.db.icmp.User
	deleted := true
	i.savedKey = i.savedKey[:0]
	for i.it.Valid() {
		ik := keys.InternalKey(i.it.Key())
		if ik.Seq() <= i.seq {
			if !deleted && ucmp.Compare(ik.UserKey(), i.savedKey) < 0 {
				break // savedKey holds the answer
			}
			if ik.Kind() == keys.KindDelete {
				deleted = true
				i.savedKey = i.savedKey[:0]
				i.savedValue = i.savedValue[:0]
			} else {
				deleted = false
				i.savedKind = ik.Kind()
				i.savedKey = append(i.savedKey[:0], ik.UserKey()...)
				i.savedValue = append(i.savedValue[:0], i.it.Value()...)
			}
		}
		i.it.Prev()
	}
	i.valid = !deleted
}

// ---------------------------------------------------------------------------
// Scan convenience

// KV is a returned key/value pair; both slices are private copies.
type KV struct {
	Key, Value []byte
}

// scan returns up to limit pairs with keys >= start, at the latest state
// (the paper's SCAN operation, covering ~100 pairs per request). Single-
// shard fast path; the router's Scan merges shards.
func (db *store) scan(start []byte, limit int) ([]KV, error) {
	it, err := db.newIter(nil)
	if err != nil {
		return nil, err
	}
	defer it.Close()
	var out []KV
	for it.Seek(start); it.Valid() && len(out) < limit; it.Next() {
		out = append(out, KV{
			Key:   append([]byte(nil), it.Key()...),
			Value: append([]byte(nil), it.Value()...),
		})
	}
	return out, it.Error()
}
