package core

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/compaction"
	"repro/internal/vfs"
)

// slowDeviceFS charges a fixed latency on every file Sync — WAL segments,
// table files, and the MANIFEST alike — standing in for a device whose
// durability barriers are the expensive operation (commodity SSDs under
// flush-heavy load). slowSyncFS (commit_bench_test.go) models only the WAL
// fsync; this models the whole durability surface, which is what sharded
// compaction overlaps.
type slowDeviceFS struct {
	vfs.FS
	delay time.Duration
}

func (s *slowDeviceFS) Create(name string) (vfs.File, error) {
	f, err := s.FS.Create(name)
	if err != nil {
		return nil, err
	}
	return &slowSyncFile{File: f, delay: s.delay}, nil
}

// BenchmarkShardedWriters sweeps the shard count under a fixed pool of 16
// concurrent writers filling random-ish keys, on a slow-durability device
// with a small memtable so flush and compaction pressure is constant. One
// engine serializes every flush and compaction barrier behind one claim
// space and stalls its writers at the L0 triggers; N shards run N
// independent flush/compaction pipelines whose device waits overlap, and
// each shard sees 1/N of the inflow against the same stall thresholds —
// the vLSM argument that cross-partition compaction interference, not raw
// write bandwidth, is what caps fill throughput. The slowdowns/stall-ms
// metrics surface that mechanism next to the ns/op. Results are recorded
// in BENCH_shards.json; `make bench-shards` reruns the sweep.
//
// The sync=true variant adds the WAL fsync to every commit: there the
// group-commit pipeline already amortizes all 16 writers into one fsync
// per group, so sharding mostly re-partitions the same fsync budget and
// the scaling is modest — the honest negative result, recorded alongside.
func BenchmarkShardedWriters(b *testing.B) {
	const writers = 16
	for _, syncWAL := range []bool{false, true} {
		for _, shards := range []int{1, 2, 4, 8} {
			name := fmt.Sprintf("sync=%v/shards=%d/writers=%d", syncWAL, shards, writers)
			b.Run(name, func(b *testing.B) {
				opts := Options{
					FS:           &slowDeviceFS{FS: vfs.Mem(), delay: time.Millisecond},
					Policy:       compaction.LDC,
					MemTableSize: 256 << 10,
					SSTableSize:  128 << 10,
					Fanout:       10,
					Sync:         syncWAL,
					Shards:       shards,
				}
				db, err := Open("/bench", opts)
				if err != nil {
					b.Fatal(err)
				}
				defer db.Close()

				val := make([]byte, 100)
				b.SetBytes(100 + 16)
				b.ResetTimer()
				var wg sync.WaitGroup
				for w := 0; w < writers; w++ {
					wg.Add(1)
					go func(w int) {
						defer wg.Done()
						n := b.N / writers
						if w < b.N%writers {
							n++
						}
						for i := 0; i < n; i++ {
							k := []byte(fmt.Sprintf("w%02d-%09d", w, i))
							if err := db.Put(k, val); err != nil {
								b.Error(err)
								return
							}
						}
					}(w)
				}
				wg.Wait()
				b.StopTimer()
				s := db.Stats()
				b.ReportMetric(float64(s.SlowdownCount), "slowdowns")
				b.ReportMetric(float64(s.StallTime.Milliseconds()), "stall-ms")
			})
		}
	}
}
