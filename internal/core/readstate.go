package core

import (
	"sync/atomic"

	"repro/internal/invariants"
	"repro/internal/memtable"
	"repro/internal/version"
)

// readState is an immutable snapshot of everything a read needs: the mutable
// and immutable memtables plus the current version, bundled behind a single
// atomic pointer so that Get/GetAt, NewIterator, and snapshot reads acquire
// the whole view with one atomic load and one refcount increment — no mutex.
//
// Lifecycle. A readState is built and published (DB.publishReadState) only
// under db.mu, at the points where the view actually changes: memtable
// rotation, flush completion, and after every LogAndApply that installs a
// version. The published state holds one reference on behalf of the pointer
// itself plus one reference on its version (taken under set.mu by
// db.set.Current(), which keeps the version's file refcounts pinned).
// Readers take a reference with loadReadState and drop it with unref when
// the read or iterator finishes; the publisher drops the pointer's own
// reference when it swaps in a successor. Whoever drives refs to zero
// releases the version.
//
// The visible sequence is deliberately NOT frozen here: it is read per
// operation from the Set's atomic lastSeq, preserving read-your-writes
// (commitGroup applies entries to the memtable before publishing their
// sequence, and every published state contains all previously applied data,
// so any sequence a reader observes is fully resolvable in any state loaded
// afterwards).
type readState struct {
	mem *memtable.MemTable
	imm *memtable.MemTable // nil when no immutable memtable is pending
	v   *version.Version

	refs atomic.Int32
	// released guards the version release: a reader racing loadReadState
	// against republication can momentarily resurrect refs after the
	// publisher already drove them to zero, producing a second 1→0
	// crossing. Only the CAS winner may unref the version.
	released atomic.Bool
	// done closes when the state is fully released (refs drained and the
	// version unref'd). Close waits on the final state's done before tearing
	// down the table cache, so an in-flight read or open iterator never sees
	// a reader closed underneath it.
	done chan struct{}
}

func (rs *readState) ref() { rs.refs.Add(1) }

func (rs *readState) unref() {
	n := rs.refs.Add(-1)
	// A second 1→0 crossing is legal (see released above); a negative count
	// means an unref without a matching ref — a double release.
	invariants.CheckRefcountNonNegative(int64(n), "core.readState")
	if n != 0 {
		return
	}
	if rs.released.CompareAndSwap(false, true) {
		rs.v.Unref()
		close(rs.done)
	}
}

// loadReadState returns the current read state with a reference held, or nil
// if the store is closed. Lock-free: one atomic load, one increment, and a
// recheck. If the pointer moved between the load and the increment the
// incremented state may already be dead, so retry; if it did not move, the
// publisher's own release necessarily observes our increment (all operations
// here are sequentially consistent), so the state stays live until our unref.
func (db *store) loadReadState() *readState {
	for {
		rs := db.readState.Load()
		if rs == nil {
			return nil
		}
		rs.ref()
		if db.readState.Load() == rs {
			// The recheck passed, so the publisher cannot have dropped the
			// pointer's own reference yet: a released state here means the
			// retry protocol itself is broken.
			invariants.CheckNotReleased(rs.released.Load(), "core.readState")
			return rs
		}
		rs.unref()
	}
}

// publishReadState rebuilds and swaps in the read state from the DB's
// current memtables and version. Callers hold db.mu (Open's exclusive
// section counts); the swap itself is atomic, so readers never block on the
// rebuild.
func (db *store) publishReadState() {
	rs := &readState{mem: db.mem, imm: db.imm, v: db.set.Current(), done: make(chan struct{})}
	rs.refs.Store(1) // the pointer's own reference
	old := db.readState.Swap(rs)
	db.stats.readStatePublishes.Add(1)
	if old != nil {
		old.unref()
	}
}
