package core

import (
	"time"

	"repro/internal/compaction"
	"repro/internal/iosched"
	"repro/internal/iterator"
	"repro/internal/keys"
	"repro/internal/sstable"
	"repro/internal/version"
	"repro/internal/vfs"
	"repro/internal/vlog"
)

// The background engine: one dedicated flush worker plus a pool of
// Options.CompactionParallelism compaction workers, all long-lived
// goroutines started by Open and drained by Close.
//
// The flush worker owns immutable-memtable flushes exclusively, so a flush
// never queues behind a long merge — the write path's "previous memtable
// still flushing" stall only lasts as long as the flush itself. Compaction
// workers each loop { pick, claim, execute, release }: the picker vets every
// candidate against the in-flight claim set (see compaction/claims.go), so
// concurrent jobs never share an input file or overlapping output key range,
// and the only serialization between them is the final LogAndApply version
// edit (ordered by version.Set internally).
//
// db.mu is held while picking and while mutating DB state; it is released
// during all file I/O and during LogAndApply, so foreground reads and writes
// only contend with the brief bookkeeping sections.

// startWorkers launches the flush worker and the compaction pool. Called
// once at the end of Open, before the DB is visible to any other goroutine.
func (db *store) startWorkers() {
	n := db.opts.CompactionParallelism
	db.stats.initWorkers(n)
	db.mu.Lock()
	db.workersRunning = 1 + n
	db.mu.Unlock()
	go db.flushWorker()
	for i := 0; i < n; i++ {
		go db.compactionWorker(i)
	}
}

// workerExit records a worker goroutine's termination; Close waits for the
// count to reach zero.
func (db *store) workerExit() {
	db.mu.Lock()
	db.workersRunning--
	db.bgCond.Broadcast()
	db.mu.Unlock()
}

// flushWorker turns immutable memtables into L0 tables, one at a time, for
// the DB's whole lifetime. Obsolete-file GC runs at the bottom of each
// iteration with no lock held.
func (db *store) flushWorker() {
	defer db.workerExit()
	for {
		db.mu.Lock()
		for !db.closed && (db.imm == nil || db.bgErr != nil) {
			db.flushCond.Wait()
		}
		if db.closed {
			db.mu.Unlock()
			return
		}
		db.flushActive = true
		start := time.Now()
		if err := db.flushImmLocked(); err != nil {
			db.fatal(err)
		}
		elapsed := int64(time.Since(start))
		db.stats.flushNanos.Add(elapsed)
		db.stats.compactionNanos.Add(elapsed)
		db.flushActive = false
		// The new L0 file may create compaction work; unblock the pool and
		// any write stalled on the full memtable. Cleanup is announced
		// before mu drops so WaitIdle covers the deletions too.
		db.cleanActive++
		db.workCond.Broadcast()
		db.bgCond.Broadcast()
		db.mu.Unlock()

		db.deleteObsoleteFiles()
		db.mu.Lock()
		db.cleanActive--
		db.bgCond.Broadcast()
		db.mu.Unlock()
	}
}

// compactionWorker picks, claims, and executes compaction jobs until the DB
// closes. Multiple workers run this loop concurrently; the claim taken
// before db.mu is released guarantees their jobs are disjoint.
func (db *store) compactionWorker(id int) {
	defer db.workerExit()
	for {
		db.mu.Lock()
		var pick compaction.Pick
		for {
			if db.closed {
				db.mu.Unlock()
				return
			}
			if db.bgErr == nil && (!db.opts.DisableAutoCompaction || db.manualWant > 0) {
				pick = db.picker.Pick(db.set.CurrentNoRef())
				if pick.Kind != compaction.PickNone {
					break
				}
			}
			db.workCond.Wait()
		}
		claim, err := db.picker.Acquire(pick)
		if err != nil {
			// A conflicting claim here is an engine invariant violation (Pick
			// vetted the candidate under this same lock hold); poison the DB.
			db.fatal(err)
			db.mu.Unlock()
			continue
		}
		db.compActive++
		db.stats.noteConcurrency(db.compActive)
		start := time.Now()
		err = db.execPick(pick)
		db.stats.compactionNanos.Add(int64(time.Since(start)))
		db.stats.workerJobs[id].Add(1)
		db.picker.Release(claim)
		db.compActive--
		if err != nil {
			db.fatal(err)
		}
		// The applied edit may expose new work and frees this job's claim;
		// wake the pool, and wake writers stalled on L0 pressure. Cleanup
		// is announced before mu drops so WaitIdle covers the deletions.
		db.cleanActive++
		db.workCond.Broadcast()
		db.bgCond.Broadcast()
		db.mu.Unlock()

		db.deleteObsoleteFiles()
		db.mu.Lock()
		db.cleanActive--
		db.bgCond.Broadcast()
		db.mu.Unlock()
	}
}

// execPick dispatches one claimed unit of compaction work. db.mu held on
// entry and exit; released during I/O and the version edit.
func (db *store) execPick(pick compaction.Pick) error {
	switch pick.Kind {
	case compaction.PickTrivialMove:
		return db.execTrivialMove(pick)
	case compaction.PickLink:
		return db.execLink(pick)
	case compaction.PickMerge:
		return db.execMerge(pick)
	default:
		return db.execCompact(pick)
	}
}

// flushImmLocked writes the immutable memtable as an L0 table. db.mu is
// held on entry and exit; it is released during file I/O and the MANIFEST
// edit. Also called directly from recovery, before workers start.
func (db *store) flushImmLocked() error {
	imm := db.imm
	logNum := db.logNum // WAL in use *after* the switch; older logs die with the flush
	// Captured under mu: the boundary set when this imm was rotated in. New
	// rotations cannot happen while imm != nil, so it is stable for the
	// whole flush; promoting the GC guard floor to it on success preserves
	// the invariant that everything above the floor is in mem ∪ imm.
	boundary := db.rotBoundarySeq
	db.mu.Unlock()

	meta, err := db.buildTable(db.fsFlush, iosched.TierFlush, imm.NewIterator(), nil)
	if err == nil {
		e := &version.Edit{}
		e.SetLogNum(logNum)
		if meta != nil {
			e.AddFile(0, meta)
			db.stats.flushWriteBytes.Add(meta.Size)
		}
		err = db.set.LogAndApply(e)
	}

	db.mu.Lock()
	if err != nil {
		return err
	}
	db.imm = nil
	db.flushedThroughSeq = boundary
	db.publishReadState() // drop imm from the read view; pick up the L0 table
	db.stats.flushCount.Add(1)
	return nil
}

// buildTable writes the entries of it (already in internal order, possibly
// filtered by drop) into a new table file, charging the I/O scheduler at
// tier block by block. A nil return meta means the input was empty. Called
// without db.mu — the per-block token waits may sleep.
func (db *store) buildTable(fs vfs.FS, tier iosched.Tier, it iterator.Iterator, drop func(ik keys.InternalKey) bool) (*version.FileMeta, error) {
	defer it.Close()
	num := db.set.NewFileNum()
	name := version.TableFileName(db.dir, num)
	raw, err := fs.Create(name)
	if err != nil {
		return nil, err
	}
	f := vfs.NewBuffered(raw, 64<<10)
	w := sstable.NewWriter(f, db.tableWriterOptions(tier))
	for it.SeekToFirst(); it.Valid(); it.Next() {
		ik := keys.InternalKey(it.Key())
		if drop != nil && drop(ik) {
			continue
		}
		if err := w.Add(ik, it.Value()); err != nil {
			_ = f.Close() // discarding the partial table
			_ = db.fsMeta.Remove(name)
			return nil, err
		}
	}
	if err := it.Error(); err != nil {
		_ = f.Close() // discarding the partial table
		_ = db.fsMeta.Remove(name)
		return nil, err
	}
	if w.Entries() == 0 {
		_ = f.Close() // empty output: nothing worth keeping
		_ = db.fsMeta.Remove(name)
		return nil, nil
	}
	props, err := w.Finish()
	if err != nil {
		_ = f.Close() // discarding the partial table
		_ = db.fsMeta.Remove(name)
		return nil, err
	}
	if err := f.Close(); err != nil {
		return nil, err
	}
	db.stats.blockBytesUncompressed.Add(props.UncompressedBytes)
	db.stats.blockBytesCompressed.Add(props.CompressedBytes)
	return &version.FileMeta{
		Num:      num,
		Size:     props.FileSize,
		Smallest: props.Smallest,
		Largest:  props.Largest,
	}, nil
}

// tableWriterOptions builds writer options for a background table build at
// the given scheduler tier. When the shared limiter is enabled, every block
// write first waits for tokens — this is the pacing point that keeps
// compaction bursts from monopolizing the device. The writers run outside
// db.mu, so the wait blocks only the background job itself.
func (db *store) tableWriterOptions(tier iosched.Tier) sstable.WriterOptions {
	opts := sstable.WriterOptions{
		Cmp:             db.icmp,
		BlockSize:       db.opts.BlockSize,
		BloomBitsPerKey: db.opts.BloomBitsPerKey,
		Compression:     db.opts.Compression,
		Checksum:        db.opts.ChecksumKind,
	}
	if lim := db.limiter; lim != nil {
		opts.ChargeWrite = func(n int) { lim.Wait(tier, n) }
	}
	return opts
}

// pointerEdit records the round-robin cursor advance for a level in the
// edit (for recovery and for applyPointers). Pure computation — safe
// without db.mu; the picker itself is updated by applyPointers only after
// the edit commits.
func (db *store) pointerEdit(e *version.Edit, level int, inputs []*version.FileMeta) {
	var largest keys.InternalKey
	for _, f := range inputs {
		if largest == nil || db.icmp.Compare(f.Largest, largest) > 0 {
			largest = f.Largest
		}
	}
	if largest == nil {
		return
	}
	e.CompactPointers = append(e.CompactPointers, version.CompactPointer{Level: level, Key: largest.Clone()})
}

// applyPointers refreshes the picker's round-robin cursors for the levels an
// applied edit advanced. It deliberately reads the authoritative value back
// from the version set rather than installing the edit's own keys: workers
// reach this point in job-completion order under db.mu, which can differ
// from LogAndApply commit order for two same-level jobs, and installing the
// edit's key directly could regress the in-memory cursor behind the value
// persisted in set.compactPointers/MANIFEST. The set's value is updated in
// commit order, so reading it here always yields the cursor of this job's
// commit or a later one. Caller holds db.mu.
func (db *store) applyPointers(e *version.Edit) {
	for _, cp := range e.CompactPointers {
		db.picker.SetPointer(cp.Level, db.set.CompactPointer(cp.Level))
	}
}

// execTrivialMove reparents a file one level down: metadata only.
func (db *store) execTrivialMove(pick compaction.Pick) error {
	f := pick.Inputs[0]
	e := &version.Edit{}
	e.DeleteFile(pick.Level, f.Num)
	e.AddFile(pick.Level+1, f)
	db.pointerEdit(e, pick.Level, pick.Inputs)

	db.mu.Unlock()
	err := db.set.LogAndApply(e)
	db.mu.Lock()
	if err != nil {
		return err
	}
	db.applyPointers(e)
	db.publishReadState()
	db.stats.trivialMoveCount.Add(1)
	return nil
}

// execLink performs LDC's link phase (paper Algorithm 1, lines 1–9):
// freeze the upper file and attach one slice per overlapped lower file.
// Pure metadata — this is why LDC's per-action cost is tiny.
func (db *store) execLink(pick compaction.Pick) error {
	su := pick.Inputs[0]
	overlaps := append([]*version.FileMeta(nil), pick.Overlaps...)
	windows := compaction.SliceWindows(db.icmp.User, su, overlaps)

	e := &version.Edit{}
	e.DeleteFile(pick.Level, su.Num)
	e.FreezeFile(&version.FrozenMeta{
		Num:      su.Num,
		Size:     su.Size,
		Smallest: su.Smallest,
		Largest:  su.Largest,
	})
	linkSeq := db.set.NewLinkSeq()
	per := su.Size / int64(len(overlaps))
	for i, sl := range overlaps {
		e.AddSlice(pick.Level+1, sl.Num, version.Slice{
			FrozenNum: su.Num,
			Range:     windows[i],
			LinkSeq:   linkSeq,
			Bytes:     per,
		})
	}
	db.pointerEdit(e, pick.Level, pick.Inputs)

	db.mu.Unlock()
	err := db.set.LogAndApply(e)
	db.mu.Lock()
	if err != nil {
		return err
	}
	db.applyPointers(e)
	db.publishReadState()
	db.stats.linkCount.Add(1)
	return nil
}

// compactionState carries shared drop logic across compact and merge.
type compactionState struct {
	db           *store
	v            *version.Version
	outputLevel  int
	tier         iosched.Tier
	smallestSnap keys.Seq

	lastUserKey   []byte
	haveLastUser  bool
	lastSeqForKey keys.Seq
}

// drop decides whether an entry can be elided, following LevelDB's rules:
// older versions hidden behind a newer one visible to every snapshot are
// dropped; tombstones additionally require that no deeper level could hold
// the key (otherwise deleted data would resurface).
func (cs *compactionState) drop(ik keys.InternalKey) bool {
	ucmp := cs.db.icmp.User
	uk := ik.UserKey()
	if !cs.haveLastUser || ucmp.Compare(uk, cs.lastUserKey) != 0 {
		cs.lastUserKey = append(cs.lastUserKey[:0], uk...)
		cs.haveLastUser = true
		cs.lastSeqForKey = keys.MaxSeq
	}
	drop := false
	switch {
	case cs.lastSeqForKey <= cs.smallestSnap:
		drop = true // shadowed by a newer version visible to all snapshots
	case ik.Kind() == keys.KindDelete && ik.Seq() <= cs.smallestSnap && cs.isBaseLevelForKey(uk):
		drop = true
	}
	cs.lastSeqForKey = ik.Seq()
	return drop
}

// isBaseLevelForKey consults the version the job was picked from. Under
// concurrent compaction that version may be stale by the time drop runs,
// but the answer cannot be wrongly "true": any job that could add the key
// below this job's output level would overlap this job's claimed key range
// at a deeper level only by rewriting files this version already shows, and
// new data for the key only ever enters *above* (via flushes into L0).
func (cs *compactionState) isBaseLevelForKey(uk []byte) bool {
	point := keys.KeyRange{Lo: uk, Hi: uk}
	// Under the tiered policy the output level already holds older runs
	// that are not merge inputs, so the check must include it; leveled
	// policies rewrite every overlapping file at the output level, so the
	// check starts below it.
	start := cs.outputLevel + 1
	if cs.db.opts.Policy == compaction.Tiered {
		start = cs.outputLevel
	}
	for level := start; level < version.NumLevels; level++ {
		if len(cs.v.EffectiveOverlaps(level, point)) > 0 {
			return false
		}
	}
	return true
}

// compactionReader opens a dedicated, uncached reader for an input file so
// its I/O is charged to the compaction-read category. Returned closers
// release the handles.
func (db *store) compactionReader(num uint64) (*sstable.Reader, error) {
	f, err := db.fsCompR.Open(version.TableFileName(db.dir, num))
	if err != nil {
		return nil, err
	}
	r, err := sstable.OpenReader(f, sstable.ReaderOptions{
		Cmp:             db.icmp,
		FileNum:         num,
		VerifyChecksums: *db.opts.VerifyChecksums,
	})
	if err != nil {
		_ = f.Close() // reader never took ownership
		return nil, err
	}
	return r, nil
}

// ownedTableIter wraps a table iterator and closes its dedicated reader.
type ownedTableIter struct {
	iterator.Iterator
	r *sstable.Reader
}

func (o *ownedTableIter) Close() error {
	err := o.Iterator.Close()
	if cerr := o.r.Close(); cerr != nil && err == nil {
		err = cerr
	}
	return err
}

// inputIterators builds compaction input iterators for a set of files,
// including their attached slices (clamped frozen-file views).
func (db *store) inputIterators(files []*version.FileMeta) ([]iterator.Iterator, int64, error) {
	var its []iterator.Iterator
	var readBytes int64
	fail := func(err error) ([]iterator.Iterator, int64, error) {
		for _, it := range its {
			it.Close()
		}
		return nil, 0, err
	}
	for _, f := range files {
		r, err := db.compactionReader(f.Num)
		if err != nil {
			return fail(err)
		}
		its = append(its, &ownedTableIter{Iterator: r.NewIterator(), r: r})
		readBytes += f.Size
		for i := range f.Slices {
			s := &f.Slices[i]
			fr, err := db.compactionReader(s.FrozenNum)
			if err != nil {
				return fail(err)
			}
			its = append(its, &ownedTableIter{
				Iterator: iterator.NewClamped(db.icmp.User, fr.NewIterator(), s.Range),
				r:        fr,
			})
			readBytes += s.Bytes
		}
	}
	return its, readBytes, nil
}

// writeOutputs streams a merged iterator into size-capped output tables.
func (db *store) writeOutputs(merged iterator.Iterator, cs *compactionState) ([]*version.FileMeta, error) {
	defer merged.Close()
	var outputs []*version.FileMeta
	var w *sstable.Writer
	var f vfs.File
	var num uint64

	finish := func() error {
		if w == nil {
			return nil
		}
		props, err := w.Finish()
		if err == nil {
			err = f.Close()
		}
		if err != nil {
			return err
		}
		outputs = append(outputs, &version.FileMeta{
			Num:      num,
			Size:     props.FileSize,
			Smallest: props.Smallest,
			Largest:  props.Largest,
		})
		db.stats.compactionWriteBytes.Add(props.FileSize)
		db.stats.blockBytesUncompressed.Add(props.UncompressedBytes)
		db.stats.blockBytesCompressed.Add(props.CompressedBytes)
		w, f = nil, nil
		return nil
	}

	for merged.SeekToFirst(); merged.Valid(); merged.Next() {
		ik := keys.InternalKey(merged.Key())
		if cs.drop(ik) {
			// This is where value-log bytes die: a dropped pointer entry
			// means its record can never be read again, so its weight moves
			// to the owning segment's dead count — the signal LDC-driven GC
			// ranks segments by.
			if ik.Kind() == keys.KindBlobRef && db.vlog != nil {
				if p, ok := vlog.DecodePointer(merged.Value()); ok {
					db.vlog.MarkDead(p.Segment, int64(p.Length))
				}
			}
			continue
		}
		if w == nil {
			num = db.set.NewFileNum()
			raw, err := db.fsCompW.Create(version.TableFileName(db.dir, num))
			if err != nil {
				return outputs, err
			}
			f = vfs.NewBuffered(raw, 64<<10)
			w = sstable.NewWriter(f, db.tableWriterOptions(cs.tier))
		}
		if err := w.Add(ik, merged.Value()); err != nil {
			_ = f.Close() // discarding the partial output
			return outputs, err
		}
		if w.EstimatedSize() >= db.opts.SSTableSize {
			if err := finish(); err != nil {
				return outputs, err
			}
		}
	}
	if err := merged.Error(); err != nil {
		if f != nil {
			_ = f.Close() // discarding the partial output
		}
		return outputs, err
	}
	return outputs, finish()
}

// execCompact runs a conventional compaction (UDC at any level, LDC's
// L0→L1, or a tiered tier-merge): merge Inputs with Overlaps, write outputs
// one level down. Slices attached to overlapped files are consumed too.
// db.mu held on entry/exit; released for the whole merge and version edit.
func (db *store) execCompact(pick compaction.Pick) error {
	// Current (not CurrentNoRef+Ref) so the reference is acquired under
	// set.mu, atomically with the pointer read: LogAndApply runs outside
	// db.mu, so a racing worker could otherwise install a new version and
	// drop the fetched one to zero refs between the read and the Ref.
	v := db.set.Current()
	smallestSnap := db.smallestSnapshot()
	db.mu.Unlock()

	e := &version.Edit{}
	all := append(append([]*version.FileMeta(nil), pick.Inputs...), pick.Overlaps...)
	// L0→L1 compactions outrank LDC merges at the scheduler: draining L0 is
	// what lifts the write throttle.
	tier := iosched.TierMerge
	if pick.Level == 0 {
		tier = iosched.TierL0
	}
	its, readBytes, err := db.inputIterators(all)
	if err == nil {
		cs := &compactionState{db: db, v: v, outputLevel: pick.Level + 1, tier: tier, smallestSnap: smallestSnap}
		merged := iterator.NewMerging(db.icmp.Compare, its...)
		var outputs []*version.FileMeta
		outputs, err = db.writeOutputs(merged, cs)
		if err == nil {
			db.stats.compactionReadBytes.Add(readBytes)
			for _, f := range pick.Inputs {
				e.DeleteFile(pick.Level, f.Num)
			}
			for _, f := range pick.Overlaps {
				e.DeleteFile(pick.Level+1, f.Num)
			}
			for _, out := range outputs {
				e.AddFile(pick.Level+1, out)
			}
			db.pointerEdit(e, pick.Level, pick.Inputs)
			err = db.set.LogAndApply(e)
		}
	}
	v.Unref()

	db.mu.Lock()
	if err != nil {
		return err
	}
	db.applyPointers(e)
	db.publishReadState()
	db.stats.compactionCount.Add(1)
	return nil
}

// execMerge runs LDC's merge phase (paper Algorithm 1, lines 10–22): the
// lower-level target file plus the slice windows of its linked frozen
// files are merge-sorted into new tables at the *same* level. Only the
// slice ranges of the frozen files are read — this is the halved
// compaction I/O of Fig 10(c). The frozen inputs may be shared with other
// concurrent merges; they are read-only and pinned by the version ref.
// db.mu held on entry/exit.
func (db *store) execMerge(pick compaction.Pick) error {
	v := db.set.Current() // ref taken under set.mu; see execCompact
	smallestSnap := db.smallestSnapshot()
	db.mu.Unlock()

	e := &version.Edit{}
	its, readBytes, err := db.inputIterators([]*version.FileMeta{pick.Target})
	if err == nil {
		cs := &compactionState{db: db, v: v, outputLevel: pick.Level, tier: iosched.TierMerge, smallestSnap: smallestSnap}
		merged := iterator.NewMerging(db.icmp.Compare, its...)
		var outputs []*version.FileMeta
		outputs, err = db.writeOutputs(merged, cs)
		if err == nil {
			db.stats.compactionReadBytes.Add(readBytes)
			db.stats.mergeReadBytes.Add(readBytes)
			var outBytes int64
			for _, out := range outputs {
				outBytes += out.Size
			}
			db.stats.mergeWriteBytes.Add(outBytes)
			e.DeleteFile(pick.Level, pick.Target.Num)
			for _, out := range outputs {
				e.AddFile(pick.Level, out)
			}
			err = db.set.LogAndApply(e)
		}
	}
	v.Unref()

	db.mu.Lock()
	if err != nil {
		return err
	}
	db.publishReadState()
	db.stats.mergeCount.Add(1)
	return nil
}

// deleteObsoleteFiles removes table files no longer referenced by any
// version. Called without db.mu; safe for any number of concurrent callers
// (TakeObsolete hands each file number to exactly one of them).
func (db *store) deleteObsoleteFiles() {
	for _, num := range db.set.TakeObsolete() {
		db.tables.evict(num)
		if err := db.fsMeta.Remove(version.TableFileName(db.dir, num)); err == nil {
			db.stats.obsoleteDeleted.Add(1)
		}
	}
	// Old WALs below the covered floor. Listing goes through this shard's
	// name filter, so in a shared WAL directory each shard only ever
	// touches its own SHARD-<id>-* segments.
	nums, err := db.listLogs()
	if err != nil {
		return
	}
	floor := db.set.LogNum()
	db.mu.Lock()
	cur := db.logNum
	db.mu.Unlock()
	for _, num := range nums {
		if num < floor && num != cur {
			db.fsMeta.Remove(db.logFileName(num))
		}
	}
}
