package core

import (
	"time"

	"repro/internal/compaction"
	"repro/internal/iterator"
	"repro/internal/keys"
	"repro/internal/sstable"
	"repro/internal/version"
	"repro/internal/vfs"
)

// maybeScheduleCompaction starts the single background worker if there is
// work. Callers must hold db.mu.
func (db *DB) maybeScheduleCompaction() {
	if db.bgScheduled || db.closed || db.bgErr != nil || db.opts.DisableAutoCompaction {
		return
	}
	if db.imm == nil {
		v := db.set.CurrentNoRef()
		if db.picker.Pick(v).Kind == compaction.PickNone {
			return
		}
	}
	db.bgScheduled = true
	go db.backgroundWork()
}

// backgroundWork performs one unit of work, then reschedules itself while
// more remains. Mirrors LevelDB's BGWork/BackgroundCall.
func (db *DB) backgroundWork() {
	db.mu.Lock()
	defer db.mu.Unlock()
	start := time.Now()
	if db.bgErr == nil && !db.closed {
		var err error
		if db.imm != nil {
			err = db.flushImmLocked()
		} else {
			err = db.compactOneLocked()
		}
		if err != nil {
			db.fatal(err)
		}
	}
	db.stats.compactionNanos.Add(int64(time.Since(start)))
	db.bgScheduled = false
	db.maybeScheduleCompaction()
	db.bgCond.Broadcast()
	db.mu.Unlock()
	db.deleteObsoleteFiles()
	db.mu.Lock()
}

// flushImmLocked writes the immutable memtable as an L0 table. db.mu is
// held on entry and exit; it is released during file I/O.
func (db *DB) flushImmLocked() error {
	imm := db.imm
	logNum := db.logNum // WAL in use *after* the switch; older logs die with the flush
	db.mu.Unlock()

	meta, err := db.buildTable(db.fsFlush, imm.NewIterator(), nil)

	db.mu.Lock()
	if err != nil {
		return err
	}
	e := &version.Edit{}
	e.SetLogNum(logNum)
	if meta != nil {
		e.AddFile(0, meta)
		db.stats.flushWriteBytes.Add(meta.Size)
	}
	if err := db.set.LogAndApply(e); err != nil {
		return err
	}
	db.imm = nil
	db.stats.flushCount.Add(1)
	return nil
}

// buildTable writes the entries of it (already in internal order, possibly
// filtered by drop) into a new table file. A nil return meta means the
// input was empty. Called without db.mu.
func (db *DB) buildTable(fs vfs.FS, it iterator.Iterator, drop func(ik keys.InternalKey) bool) (*version.FileMeta, error) {
	defer it.Close()
	num := db.set.NewFileNum()
	name := version.TableFileName(db.dir, num)
	raw, err := fs.Create(name)
	if err != nil {
		return nil, err
	}
	f := vfs.NewBuffered(raw, 64<<10)
	w := sstable.NewWriter(f, db.tableWriterOptions())
	for it.SeekToFirst(); it.Valid(); it.Next() {
		ik := keys.InternalKey(it.Key())
		if drop != nil && drop(ik) {
			continue
		}
		if err := w.Add(ik, it.Value()); err != nil {
			f.Close()
			db.fsMeta.Remove(name)
			return nil, err
		}
	}
	if err := it.Error(); err != nil {
		f.Close()
		db.fsMeta.Remove(name)
		return nil, err
	}
	if w.Entries() == 0 {
		f.Close()
		db.fsMeta.Remove(name)
		return nil, nil
	}
	props, err := w.Finish()
	if err != nil {
		f.Close()
		db.fsMeta.Remove(name)
		return nil, err
	}
	if err := f.Close(); err != nil {
		return nil, err
	}
	return &version.FileMeta{
		Num:      num,
		Size:     props.FileSize,
		Smallest: props.Smallest,
		Largest:  props.Largest,
	}, nil
}

func (db *DB) tableWriterOptions() sstable.WriterOptions {
	return sstable.WriterOptions{
		Cmp:             db.icmp,
		BlockSize:       db.opts.BlockSize,
		BloomBitsPerKey: db.opts.BloomBitsPerKey,
	}
}

// compactOneLocked executes one picked unit of compaction work. db.mu held
// on entry and exit.
func (db *DB) compactOneLocked() error {
	v := db.set.CurrentNoRef()
	pick := db.picker.Pick(v)
	switch pick.Kind {
	case compaction.PickNone:
		return nil
	case compaction.PickTrivialMove:
		return db.execTrivialMove(pick)
	case compaction.PickLink:
		return db.execLink(pick)
	case compaction.PickMerge:
		return db.execMerge(v, pick)
	default:
		return db.execCompact(v, pick)
	}
}

// advancePointer records the round-robin cursor for a level both in the
// picker and in the edit (for recovery).
func (db *DB) advancePointer(e *version.Edit, level int, inputs []*version.FileMeta) {
	var largest keys.InternalKey
	for _, f := range inputs {
		if largest == nil || db.icmp.Compare(f.Largest, largest) > 0 {
			largest = f.Largest
		}
	}
	if largest == nil {
		return
	}
	largest = largest.Clone()
	db.picker.SetPointer(level, largest)
	e.CompactPointers = append(e.CompactPointers, version.CompactPointer{Level: level, Key: largest})
}

// execTrivialMove reparents a file one level down: metadata only.
func (db *DB) execTrivialMove(pick compaction.Pick) error {
	f := pick.Inputs[0]
	e := &version.Edit{}
	e.DeleteFile(pick.Level, f.Num)
	e.AddFile(pick.Level+1, f)
	db.advancePointer(e, pick.Level, pick.Inputs)
	if err := db.set.LogAndApply(e); err != nil {
		return err
	}
	db.stats.trivialMoveCount.Add(1)
	return nil
}

// execLink performs LDC's link phase (paper Algorithm 1, lines 1–9):
// freeze the upper file and attach one slice per overlapped lower file.
// Pure metadata — this is why LDC's per-action cost is tiny.
func (db *DB) execLink(pick compaction.Pick) error {
	su := pick.Inputs[0]
	overlaps := append([]*version.FileMeta(nil), pick.Overlaps...)
	windows := compaction.SliceWindows(db.icmp.User, su, overlaps)

	e := &version.Edit{}
	e.DeleteFile(pick.Level, su.Num)
	e.FreezeFile(&version.FrozenMeta{
		Num:      su.Num,
		Size:     su.Size,
		Smallest: su.Smallest,
		Largest:  su.Largest,
	})
	linkSeq := db.set.NewLinkSeq()
	per := su.Size / int64(len(overlaps))
	for i, sl := range overlaps {
		e.AddSlice(pick.Level+1, sl.Num, version.Slice{
			FrozenNum: su.Num,
			Range:     windows[i],
			LinkSeq:   linkSeq,
			Bytes:     per,
		})
	}
	db.advancePointer(e, pick.Level, pick.Inputs)
	if err := db.set.LogAndApply(e); err != nil {
		return err
	}
	db.stats.linkCount.Add(1)
	return nil
}

// compactionState carries shared drop logic across compact and merge.
type compactionState struct {
	db           *DB
	v            *version.Version
	outputLevel  int
	smallestSnap keys.Seq

	lastUserKey   []byte
	haveLastUser  bool
	lastSeqForKey keys.Seq
}

// drop decides whether an entry can be elided, following LevelDB's rules:
// older versions hidden behind a newer one visible to every snapshot are
// dropped; tombstones additionally require that no deeper level could hold
// the key (otherwise deleted data would resurface).
func (cs *compactionState) drop(ik keys.InternalKey) bool {
	ucmp := cs.db.icmp.User
	uk := ik.UserKey()
	if !cs.haveLastUser || ucmp.Compare(uk, cs.lastUserKey) != 0 {
		cs.lastUserKey = append(cs.lastUserKey[:0], uk...)
		cs.haveLastUser = true
		cs.lastSeqForKey = keys.MaxSeq
	}
	drop := false
	switch {
	case cs.lastSeqForKey <= cs.smallestSnap:
		drop = true // shadowed by a newer version visible to all snapshots
	case ik.Kind() == keys.KindDelete && ik.Seq() <= cs.smallestSnap && cs.isBaseLevelForKey(uk):
		drop = true
	}
	cs.lastSeqForKey = ik.Seq()
	return drop
}

func (cs *compactionState) isBaseLevelForKey(uk []byte) bool {
	point := keys.KeyRange{Lo: uk, Hi: uk}
	// Under the tiered policy the output level already holds older runs
	// that are not merge inputs, so the check must include it; leveled
	// policies rewrite every overlapping file at the output level, so the
	// check starts below it.
	start := cs.outputLevel + 1
	if cs.db.opts.Policy == compaction.Tiered {
		start = cs.outputLevel
	}
	for level := start; level < version.NumLevels; level++ {
		if len(cs.v.EffectiveOverlaps(level, point)) > 0 {
			return false
		}
	}
	return true
}

// compactionReader opens a dedicated, uncached reader for an input file so
// its I/O is charged to the compaction-read category. Returned closers
// release the handles.
func (db *DB) compactionReader(num uint64) (*sstable.Reader, error) {
	f, err := db.fsCompR.Open(version.TableFileName(db.dir, num))
	if err != nil {
		return nil, err
	}
	r, err := sstable.OpenReader(f, sstable.ReaderOptions{
		Cmp:             db.icmp,
		FileNum:         num,
		VerifyChecksums: *db.opts.VerifyChecksums,
	})
	if err != nil {
		f.Close()
		return nil, err
	}
	return r, nil
}

// ownedTableIter wraps a table iterator and closes its dedicated reader.
type ownedTableIter struct {
	iterator.Iterator
	r *sstable.Reader
}

func (o *ownedTableIter) Close() error {
	err := o.Iterator.Close()
	if cerr := o.r.Close(); cerr != nil && err == nil {
		err = cerr
	}
	return err
}

// inputIterators builds compaction input iterators for a set of files,
// including their attached slices (clamped frozen-file views).
func (db *DB) inputIterators(files []*version.FileMeta) ([]iterator.Iterator, int64, error) {
	var its []iterator.Iterator
	var readBytes int64
	fail := func(err error) ([]iterator.Iterator, int64, error) {
		for _, it := range its {
			it.Close()
		}
		return nil, 0, err
	}
	for _, f := range files {
		r, err := db.compactionReader(f.Num)
		if err != nil {
			return fail(err)
		}
		its = append(its, &ownedTableIter{Iterator: r.NewIterator(), r: r})
		readBytes += f.Size
		for i := range f.Slices {
			s := &f.Slices[i]
			fr, err := db.compactionReader(s.FrozenNum)
			if err != nil {
				return fail(err)
			}
			its = append(its, &ownedTableIter{
				Iterator: iterator.NewClamped(db.icmp.User, fr.NewIterator(), s.Range),
				r:        fr,
			})
			readBytes += s.Bytes
		}
	}
	return its, readBytes, nil
}

// writeOutputs streams a merged iterator into size-capped output tables.
func (db *DB) writeOutputs(merged iterator.Iterator, cs *compactionState) ([]*version.FileMeta, error) {
	defer merged.Close()
	var outputs []*version.FileMeta
	var w *sstable.Writer
	var f vfs.File
	var num uint64

	finish := func() error {
		if w == nil {
			return nil
		}
		props, err := w.Finish()
		if err == nil {
			err = f.Close()
		}
		if err != nil {
			return err
		}
		outputs = append(outputs, &version.FileMeta{
			Num:      num,
			Size:     props.FileSize,
			Smallest: props.Smallest,
			Largest:  props.Largest,
		})
		db.stats.compactionWriteBytes.Add(props.FileSize)
		w, f = nil, nil
		return nil
	}

	for merged.SeekToFirst(); merged.Valid(); merged.Next() {
		ik := keys.InternalKey(merged.Key())
		if cs.drop(ik) {
			continue
		}
		if w == nil {
			num = db.set.NewFileNum()
			raw, err := db.fsCompW.Create(version.TableFileName(db.dir, num))
			if err != nil {
				return outputs, err
			}
			f = vfs.NewBuffered(raw, 64<<10)
			w = sstable.NewWriter(f, db.tableWriterOptions())
		}
		if err := w.Add(ik, merged.Value()); err != nil {
			f.Close()
			return outputs, err
		}
		if w.EstimatedSize() >= db.opts.SSTableSize {
			if err := finish(); err != nil {
				return outputs, err
			}
		}
	}
	if err := merged.Error(); err != nil {
		if f != nil {
			f.Close()
		}
		return outputs, err
	}
	return outputs, finish()
}

// execCompact runs a conventional compaction (UDC at any level, LDC's
// L0→L1, or a tiered tier-merge): merge Inputs with Overlaps, write outputs
// one level down. Slices attached to overlapped files are consumed too.
// db.mu held on entry/exit; released during I/O.
func (db *DB) execCompact(v *version.Version, pick compaction.Pick) error {
	v.Ref()
	smallestSnap := db.smallestSnapshot()
	db.mu.Unlock()

	all := append(append([]*version.FileMeta(nil), pick.Inputs...), pick.Overlaps...)
	its, readBytes, err := db.inputIterators(all)
	if err != nil {
		db.mu.Lock()
		v.Unref()
		return err
	}
	cs := &compactionState{db: db, v: v, outputLevel: pick.Level + 1, smallestSnap: smallestSnap}
	merged := iterator.NewMerging(db.icmp.Compare, its...)
	outputs, err := db.writeOutputs(merged, cs)

	db.mu.Lock()
	v.Unref()
	if err != nil {
		return err
	}
	db.stats.compactionReadBytes.Add(readBytes)

	e := &version.Edit{}
	for _, f := range pick.Inputs {
		e.DeleteFile(pick.Level, f.Num)
	}
	for _, f := range pick.Overlaps {
		e.DeleteFile(pick.Level+1, f.Num)
	}
	for _, out := range outputs {
		e.AddFile(pick.Level+1, out)
	}
	db.advancePointer(e, pick.Level, pick.Inputs)
	if err := db.set.LogAndApply(e); err != nil {
		return err
	}
	db.stats.compactionCount.Add(1)
	return nil
}

// execMerge runs LDC's merge phase (paper Algorithm 1, lines 10–22): the
// lower-level target file plus the slice windows of its linked frozen
// files are merge-sorted into new tables at the *same* level. Only the
// slice ranges of the frozen files are read — this is the halved
// compaction I/O of Fig 10(c). db.mu held on entry/exit.
func (db *DB) execMerge(v *version.Version, pick compaction.Pick) error {
	v.Ref()
	smallestSnap := db.smallestSnapshot()
	db.mu.Unlock()

	its, readBytes, err := db.inputIterators([]*version.FileMeta{pick.Target})
	if err != nil {
		db.mu.Lock()
		v.Unref()
		return err
	}
	cs := &compactionState{db: db, v: v, outputLevel: pick.Level, smallestSnap: smallestSnap}
	merged := iterator.NewMerging(db.icmp.Compare, its...)
	outputs, err := db.writeOutputs(merged, cs)

	db.mu.Lock()
	v.Unref()
	if err != nil {
		return err
	}
	db.stats.compactionReadBytes.Add(readBytes)
	db.stats.mergeReadBytes.Add(readBytes)
	var outBytes int64
	for _, out := range outputs {
		outBytes += out.Size
	}
	db.stats.mergeWriteBytes.Add(outBytes)

	e := &version.Edit{}
	e.DeleteFile(pick.Level, pick.Target.Num)
	for _, out := range outputs {
		e.AddFile(pick.Level, out)
	}
	if err := db.set.LogAndApply(e); err != nil {
		return err
	}
	db.stats.mergeCount.Add(1)
	return nil
}

// deleteObsoleteFiles removes table files no longer referenced by any
// version. Called without db.mu.
func (db *DB) deleteObsoleteFiles() {
	for _, num := range db.set.TakeObsolete() {
		db.tables.evict(num)
		if err := db.fsMeta.Remove(version.TableFileName(db.dir, num)); err == nil {
			db.stats.obsoleteDeleted.Add(1)
		}
	}
	// Old WALs below the covered floor.
	names, err := db.fsMeta.List(db.dir)
	if err != nil {
		return
	}
	floor := db.set.LogNum()
	db.mu.Lock()
	cur := db.logNum
	db.mu.Unlock()
	for _, name := range names {
		if typ, num := version.ParseFileName(name); typ == version.TypeLog && num < floor && num != cur {
			db.fsMeta.Remove(version.LogFileName(db.dir, num))
		}
	}
}
