package core

import (
	"errors"
	"time"

	"repro/internal/batch"
	"repro/internal/iosched"
	"repro/internal/keys"
	"repro/internal/vlog"
)

// Value-log garbage collection, shard side. The router picks candidate
// segments (LDC-style, ranked by the dead-byte accounting compactions feed
// as they drop pointer entries) and hands each to its owning shard here.
//
// A pass over a segment works in rounds: scan the segment, test each record
// for liveness through the normal read path, append a fresh copy of every
// live record to the active segment, and inject pointer rewrites through
// the commit pipeline (KindBlobRewrite — applied only if the commit-time
// guard proves no newer write raced the liveness read). A round that finds
// zero live records proves the segment permanently dead — no future write
// can ever point into a sealed segment — so after a flush/snapshot/iterator
// barrier the file is deleted. Guarded rewrites leave their old record
// live, so the next round simply rewrites it again with a fresh guard
// sequence; the rounds are bounded and a still-live segment is left for a
// later pass rather than ever deleted unsafely.

// errGCBusy reports a GC pass that could not quiesce readers (or flush its
// rewrites) within its deadline; the segment is skipped, not deleted, and a
// later pass retries. Deliberately not a user-visible error.
var errGCBusy = errors.New("ldc: value-log gc could not quiesce; segment skipped")

// gcMaxRounds bounds rewrite rounds per segment per pass. Two rounds
// suffice unless user writes keep racing the guard; beyond that the
// segment is contended and better left for a quieter moment.
const gcMaxRounds = 3

// gcChunkRecords / gcChunkBytes cap one injected rewrite batch, so GC
// commits stay small enough to ride normal write groups without stalling
// foreground writers behind a giant memtable application.
const (
	gcChunkRecords = 128
	gcChunkBytes   = 1 << 20
)

// vlogGCSegment runs one full GC pass over segment num (which this shard
// owns). Returns nil both on success and on a clean skip (errGCBusy is
// swallowed by the caller's accounting path); real I/O errors propagate.
func (db *store) vlogGCSegment(num uint64) error {
	var rewritten int64
	for round := 0; round < gcMaxRounds; round++ {
		live, bytes, err := db.vlogGCRound(num)
		if err != nil {
			if errors.Is(err, vlog.ErrSegmentGone) {
				return nil // someone else finished it
			}
			return err
		}
		rewritten += bytes
		if live == 0 {
			if err := db.vlogGCDelete(num); err != nil {
				if errors.Is(err, errGCBusy) {
					return errGCBusy
				}
				return err
			}
			db.vlog.NoteGCPass(rewritten)
			return nil
		}
	}
	// Still-live records after bounded rounds: user writes kept winning the
	// guard race. Leave the segment; its dead ratio only grows.
	return errGCBusy
}

// vlogGCRound scans the segment once, rewriting every record that is still
// the newest version of its key. Returns how many live records it found
// (and their byte count) — zero means the segment holds no reachable data.
func (db *store) vlogGCRound(num uint64) (live int, liveBytes int64, err error) {
	seg, err := db.vlog.OpenSegment(num)
	if err != nil {
		return 0, 0, err
	}
	defer func() {
		if cerr := seg.Close(); err == nil {
			err = cerr
		}
	}()
	// The whole-segment read is charged up front at merge priority: GC is
	// background relocation and must never outrank L0 draining or starve
	// foreground reads of device tokens.
	db.limiter.Wait(iosched.TierMerge, int(seg.Size()))

	b := batch.New()
	var chunkBytes int64
	readSeq := db.set.LastSeq()
	var ptrBuf [vlog.PointerLen]byte

	flush := func() error {
		if b.Empty() {
			return nil
		}
		if err := db.Apply(b); err != nil {
			return err
		}
		b = batch.New()
		chunkBytes = 0
		readSeq = db.set.LastSeq()
		return nil
	}

	scanErr := seg.Scan(func(ptr vlog.Pointer, key, value []byte) error {
		isLive, err := db.recordLive(key, ptr)
		if err != nil {
			return err
		}
		if !isLive {
			return nil
		}
		live++
		liveBytes += int64(ptr.Length)
		// Relocate: new copy first (write-through, so the pointer is
		// resolvable the instant the rewrite applies), then the guarded
		// pointer rewrite through the normal commit pipeline. The append is
		// charged like the scan — this is the "GC write amplification"
		// column of the blob benchmark.
		db.limiter.Wait(iosched.TierMerge, int(ptr.Length))
		np, err := db.vlogw.Append(key, value)
		if err != nil {
			return err
		}
		b.SetBlobRewrite(key, readSeq, np.Encode(ptrBuf[:0]))
		chunkBytes += int64(len(value))
		if b.Count() >= gcChunkRecords || chunkBytes >= gcChunkBytes {
			return flush()
		}
		return nil
	})
	if scanErr != nil {
		return live, liveBytes, scanErr
	}
	return live, liveBytes, flush()
}

// recordLive reports whether the record at ptr is still the newest version
// of key — i.e. the current entry is a pointer naming exactly this record.
// No newer write can make a record live again (pointers into sealed
// segments are never created after the original commit), so a false result
// is stable; a true result is re-verified by the commit-time guard.
func (db *store) recordLive(key []byte, ptr vlog.Pointer) (bool, error) {
	rs := db.loadReadState()
	if rs == nil {
		return false, ErrClosed
	}
	defer rs.unref()
	seq := db.set.LastSeq()

	val, kind, found := rs.mem.GetEntry(key, seq)
	if !found && rs.imm != nil {
		val, kind, found = rs.imm.GetEntry(key, seq)
	}
	if !found {
		var err error
		val, kind, found, err = db.versionEntry(rs.v, key, seq)
		if err != nil {
			return false, err
		}
	}
	if !found || kind != keys.KindBlobRef {
		return false, nil
	}
	cur, ok := vlog.DecodePointer(val)
	return ok && cur == ptr, nil
}

// vlogGCDelete makes segment deletion safe, then deletes: the shard's
// active segment is synced (the relocated copies must be durable), every
// rewrite is forced out of the WAL-only window into tables (recovery drops
// rewrites from the WAL, so a WAL-only rewrite plus a deleted old segment
// would resurrect a dangling pointer), registered snapshots advance past
// the rewrites, and open iterators drain. Cached decoded values die with
// the segment.
func (db *store) vlogGCDelete(num uint64) error {
	if err := db.vlogw.Sync(); err != nil {
		return err
	}
	if err := db.blobBarrier(db.set.LastSeq(), 2*time.Second); err != nil {
		return err
	}
	if db.blockCache != nil {
		db.blockCache.EvictFile(num | blobCacheBit)
	}
	return db.vlog.DeleteSegment(num)
}

// blobBarrier blocks until every sequence up to target is covered by
// tables (flushedThroughSeq >= target), no registered snapshot can still
// observe a pre-target version, and no iterator is live. errGCBusy on
// timeout — the caller skips the deletion, never forces it.
func (db *store) blobBarrier(target keys.Seq, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for {
		db.mu.Lock()
		if db.bgErr != nil {
			err := db.bgErr
			db.mu.Unlock()
			return err
		}
		if db.closed {
			db.mu.Unlock()
			return ErrClosed
		}
		if db.flushedThroughSeq >= target {
			db.mu.Unlock()
			break
		}
		if db.imm == nil && db.mem.Empty() {
			// Nothing above the floor lives outside tables: all entries up
			// to LastSeq were flushed, and any sequences consumed since
			// (guard-dropped rewrites) added no entries. Promote directly —
			// the rewrite-guard invariant is preserved.
			db.flushedThroughSeq = db.set.LastSeq()
			db.mu.Unlock()
			break
		}
		needRotate := db.imm == nil && !db.mem.Empty()
		db.mu.Unlock()
		if time.Now().After(deadline) {
			return errGCBusy
		}
		if needRotate {
			// Rotation may only run on the leader-exclusive commit path
			// (it swaps the WAL writer); request it through the pipeline.
			if err := db.forceRotate(); err != nil {
				return err
			}
		} else {
			// An imm is mid-flush; the flush worker broadcasts on finish.
			time.Sleep(2 * time.Millisecond)
		}
	}
	for {
		if db.smallestSnapshot() >= target && db.openIters.Load() == 0 {
			return nil
		}
		if time.Now().After(deadline) {
			return errGCBusy
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// forceRotate rotates to a fresh memtable and WAL via the commit pipeline,
// the only context allowed to swap the WAL writer (a leader's fsync runs
// outside db.mu, so rotating from anywhere else would race it). The empty
// barrier batch costs one 12-byte WAL record and no sequence numbers.
func (db *store) forceRotate() error {
	db.rotateForced.Store(true)
	return db.pipeline.Commit(batch.New(), false)
}
