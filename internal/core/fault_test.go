package core

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/compaction"
	"repro/internal/version"
	"repro/internal/vfs"
)

var errInjected = errors.New("injected I/O failure")

// TestCrashRecoveryAtEveryWriteBudget simulates crashes at many points of a
// write-heavy run by failing all I/O after N operations, then "rebooting"
// onto the surviving files and verifying that every write acknowledged
// before the failure is still readable. This covers torn WALs, half-written
// tables, interrupted MANIFEST appends, and LDC link/merge edits.
func TestCrashRecoveryAtEveryWriteBudget(t *testing.T) {
	for _, policy := range []compaction.Policy{compaction.UDC, compaction.LDC} {
		t.Run(policy.String(), func(t *testing.T) {
			for _, budget := range []int64{50, 200, 500, 1200, 2500} {
				mem := vfs.Mem()
				efs := vfs.NewErrFS(mem)
				opts := smallOpts(policy)
				opts.FS = efs
				// Durability of acknowledged writes is only promised with a
				// synced WAL; Sync=false intentionally trades the tail of
				// the log for speed, as in LevelDB.
				opts.Sync = true

				db, err := Open("/db", opts)
				if err != nil {
					t.Fatalf("budget %d: open: %v", budget, err)
				}
				efs.FailAfterWrites(budget, errInjected)

				// Write until the injected failure surfaces.
				acked := map[string]string{}
				rng := rand.New(rand.NewSource(budget))
				for i := 0; i < 100000; i++ {
					k := fmt.Sprintf("key-%05d", rng.Intn(2000))
					v := fmt.Sprintf("v-%d-%d", budget, i)
					if err := db.Put([]byte(k), []byte(v)); err != nil {
						break
					}
					acked[k] = v
				}
				// Crash: abandon the handle without a clean Close.
				efs.Disarm()
				db.shards[0].mu.Lock()
				db.shards[0].stopBackgroundLocked()
				db.shards[0].mu.Unlock()

				// Reboot on the surviving bytes.
				opts2 := opts
				opts2.FS = mem
				db2, err := Open("/db", opts2)
				if err != nil {
					t.Fatalf("budget %d: reopen: %v", budget, err)
				}
				lost := 0
				for k, want := range acked {
					got, err := db2.Get([]byte(k))
					if err != nil || string(got) != want {
						lost++
						if lost < 4 {
							t.Errorf("budget %d: key %s = %q, %v; want %q",
								budget, k, got, err, want)
						}
					}
				}
				if lost > 0 {
					t.Errorf("budget %d: lost %d/%d acknowledged writes", budget, lost, len(acked))
				}
				db2.Close()
			}
		})
	}
}

// TestBackgroundErrorSurfacesToWrites verifies that a failing compaction
// poisons the store rather than silently dropping data.
func TestBackgroundErrorSurfacesToWrites(t *testing.T) {
	mem := vfs.Mem()
	efs := vfs.NewErrFS(mem)
	opts := smallOpts(compaction.UDC)
	opts.FS = efs
	db, err := Open("/db", opts)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		efs.Disarm()
		db.Close()
	}()

	efs.FailAfterWrites(300, errInjected)
	sawError := false
	for i := 0; i < 50000; i++ {
		if err := db.Put(key(i), value(i)); err != nil {
			sawError = true
			break
		}
	}
	if !sawError {
		t.Fatal("writes kept succeeding after persistent I/O failure")
	}
}

// TestRecoveryAfterTornWAL truncates the live WAL mid-record and verifies
// the prefix survives.
func TestRecoveryAfterTornWAL(t *testing.T) {
	mem := vfs.Mem()
	opts := smallOpts(compaction.LDC)
	opts.FS = mem
	opts.MemTableSize = 1 << 20 // keep everything in the WAL
	db, err := Open("/db", opts)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		db.Put(key(i), value(i))
	}
	st := db.shards[0]
	st.mu.Lock()
	logw := st.logw
	logNum := st.logNum
	st.mu.Unlock()
	// Flushes the writer's buffer, then syncs the file. Outside st.mu, like
	// the engine's own commit pipeline; no writers are running.
	if err := logw.Sync(); err != nil {
		t.Fatal(err)
	}
	db.Close()

	// Tear the last 7 bytes off the WAL.
	name := version.LogFileName("/db", logNum)
	f, err := mem.Open(name)
	if err != nil {
		t.Fatal(err)
	}
	size, _ := f.Size()
	raw := make([]byte, size-7)
	f.ReadAt(raw, 0)
	_ = f.Close() // read-only handle
	out, _ := mem.Create(name)
	out.Write(raw)
	if err := out.Close(); err != nil {
		t.Fatal(err)
	}

	db2, err := Open("/db", opts)
	if err != nil {
		t.Fatalf("reopen after torn WAL: %v", err)
	}
	defer db2.Close()
	// At most the final record may be lost.
	lost := 0
	for i := 0; i < 200; i++ {
		got, err := db2.Get(key(i))
		if err != nil || !bytes.Equal(got, value(i)) {
			lost++
		}
	}
	if lost > 1 {
		t.Errorf("torn WAL lost %d records, want at most the torn one", lost)
	}
}

// TestConcurrentReadersWritersIterators hammers the store from multiple
// goroutines under the race detector.
func TestConcurrentReadersWritersIterators(t *testing.T) {
	db := openTestDB(t, smallOpts(compaction.LDC))
	defer db.Close()

	done := make(chan struct{})
	errs := make(chan error, 8)
	// Writers.
	for w := 0; w < 2; w++ {
		go func(w int) {
			rng := rand.New(rand.NewSource(int64(w)))
			for i := 0; ; i++ {
				select {
				case <-done:
					errs <- nil
					return
				default:
				}
				if err := db.Put(key(rng.Intn(1000)), value(i)); err != nil {
					errs <- err
					return
				}
			}
		}(w)
	}
	// Readers.
	for r := 0; r < 2; r++ {
		go func(r int) {
			rng := rand.New(rand.NewSource(int64(100 + r)))
			for {
				select {
				case <-done:
					errs <- nil
					return
				default:
				}
				if _, err := db.Get(key(rng.Intn(1200))); err != nil && !errors.Is(err, ErrNotFound) {
					errs <- err
					return
				}
			}
		}(r)
	}
	// Iterators: full scans must always see sorted unique keys.
	go func() {
		for {
			select {
			case <-done:
				errs <- nil
				return
			default:
			}
			it, err := db.NewIterator(nil)
			if err != nil {
				errs <- err
				return
			}
			var prev []byte
			for it.SeekToFirst(); it.Valid(); it.Next() {
				if prev != nil && bytes.Compare(prev, it.Key()) >= 0 {
					it.Close()
					errs <- fmt.Errorf("iterator order violation: %q then %q", prev, it.Key())
					return
				}
				prev = append(prev[:0], it.Key()...)
			}
			if err := it.Close(); err != nil {
				errs <- err
				return
			}
		}
	}()
	// Snapshot readers.
	go func() {
		for {
			select {
			case <-done:
				errs <- nil
				return
			default:
			}
			snap, err := db.NewSnapshot()
			if err != nil {
				errs <- err
				return
			}
			db.GetAt(key(1), snap)
			snap.Release()
		}
	}()

	for i := 0; i < 40; i++ {
		db.CompactRange()
	}
	close(done)
	for i := 0; i < 6; i++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
}
