package core

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"repro/internal/batch"
	"repro/internal/compaction"
	"repro/internal/version"
	"repro/internal/vfs"
)

// TestReadsProceedDuringSlowWALSync pins the decoupled sync stage: with
// Options.Sync set, the group leader's fsync runs outside db.mu, so reads of
// existing data must return while the WAL sync is still blocked.
func TestReadsProceedDuringSlowWALSync(t *testing.T) {
	mem := vfs.Mem()
	efs := vfs.NewErrFS(mem)
	opts := smallOpts(compaction.LDC)
	opts.FS = efs
	opts.Sync = true
	db, err := Open("/db", opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Put([]byte("stable"), []byte("v")); err != nil {
		t.Fatal(err)
	}

	entered := make(chan struct{}, 16)
	gate := make(chan struct{})
	efs.SetSyncHook(func(name string) {
		if !strings.HasSuffix(name, ".log") {
			return
		}
		select {
		case entered <- struct{}{}:
		default:
		}
		<-gate
	})

	writeDone := make(chan error, 1)
	go func() { writeDone <- db.Put([]byte("slow"), []byte("v")) }()
	<-entered // the write group's leader is now blocked inside fsync

	readDone := make(chan error, 1)
	go func() {
		_, err := db.Get([]byte("stable"))
		readDone <- err
	}()
	select {
	case err := <-readDone:
		if err != nil {
			t.Fatalf("read during blocked sync: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Get blocked behind an in-flight WAL fsync")
	}

	close(gate)
	efs.SetSyncHook(nil)
	if err := <-writeDone; err != nil {
		t.Fatal(err)
	}
	if v, err := db.Get([]byte("slow")); err != nil || string(v) != "v" {
		t.Fatalf("synced write not readable: %q, %v", v, err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestRecoveryDropsTornFinalWriteGroup tears the WAL inside the final write
// group's record and verifies recovery keeps every earlier synced group
// while dropping the torn group atomically — no member batch of it may
// survive, since its sequence range was never acknowledged as durable.
func TestRecoveryDropsTornFinalWriteGroup(t *testing.T) {
	mem := vfs.Mem()
	efs := vfs.NewErrFS(mem)
	opts := smallOpts(compaction.LDC)
	opts.FS = efs
	opts.Sync = true
	opts.MemTableSize = 1 << 20 // keep everything in the WAL
	db, err := Open("/db", opts)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if err := db.Put(key(i), value(i)); err != nil {
			t.Fatal(err)
		}
	}
	// Commit one multi-batch group directly — the same record shape the
	// pipeline forms from concurrent writers: three members, one WAL record.
	var g batch.Group
	for _, k := range []string{"g-0", "g-1", "g-2"} {
		b := batch.New()
		b.Set([]byte(k), []byte("grouped"))
		g.Add(b)
	}
	if err := db.shards[0].commitGroup(&g, true); err != nil {
		t.Fatal(err)
	}
	db.shards[0].mu.Lock()
	logNum := db.shards[0].logNum
	db.shards[0].stopBackgroundLocked() // crash: abandon the handle without a clean Close
	db.shards[0].mu.Unlock()

	// Tear into the final group's record (well short of its full length).
	if err := efs.TearFile(version.LogFileName("/db", logNum), 5); err != nil {
		t.Fatal(err)
	}

	opts2 := opts
	opts2.FS = mem
	db2, err := Open("/db", opts2)
	if err != nil {
		t.Fatalf("reopen after torn group: %v", err)
	}
	defer db2.Close()
	for i := 0; i < 10; i++ {
		if v, err := db2.Get(key(i)); err != nil || !bytes.Equal(v, value(i)) {
			t.Fatalf("synced group lost: key %d = %q, %v", i, v, err)
		}
	}
	for _, k := range []string{"g-0", "g-1", "g-2"} {
		if _, err := db2.Get([]byte(k)); err != ErrNotFound {
			t.Fatalf("member %s of the torn group survived (err=%v)", k, err)
		}
	}
}

// TestGroupCommitStatsSurface checks the pipeline counters reach Stats().
func TestGroupCommitStatsSurface(t *testing.T) {
	db := openTestDB(t, smallOpts(compaction.LDC))
	defer db.Close()
	for i := 0; i < 20; i++ {
		if err := db.Put(key(i), value(i)); err != nil {
			t.Fatal(err)
		}
	}
	s := db.Stats()
	if s.WriteGroupsTotal == 0 || s.WriteBatchesTotal != 20 {
		t.Fatalf("groups=%d batches=%d, want >0 groups and 20 batches",
			s.WriteGroupsTotal, s.WriteBatchesTotal)
	}
	if s.AvgGroupSize < 1 {
		t.Fatalf("avg group size = %v, want ≥ 1", s.AvgGroupSize)
	}
	if s.WriteState != "ok" {
		t.Fatalf("write state = %q, want ok at rest", s.WriteState)
	}
}
