package core

import "sync"

// adaptiveThreshold implements the paper's §III-B-4 self-adaptive SliceLink
// threshold: write-dominated workloads push T_s up (fewer, bigger merges ⇒
// lower write amplification), read-dominated workloads pull it down (fewer
// linked slices to probe ⇒ cheaper reads). The controller observes the
// read/write mix over fixed-size windows of operations and nudges T_s one
// step per window with hysteresis, bounded to [minTs, 4×fanout].
type adaptiveThreshold struct {
	mu     sync.Mutex
	ts     int
	minTs  int
	maxTs  int
	window int64

	reads, writes int64
}

// adaptiveWindow is the number of operations between adjustments.
const adaptiveWindow = 4096

func newAdaptiveThreshold(initial, fanout int) *adaptiveThreshold {
	a := &adaptiveThreshold{
		ts:     initial,
		minTs:  2,
		maxTs:  4 * fanout,
		window: adaptiveWindow,
	}
	if a.ts < a.minTs {
		a.ts = a.minTs
	}
	if a.ts > a.maxTs {
		a.ts = a.maxTs
	}
	return a
}

func (a *adaptiveThreshold) threshold() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.ts
}

func (a *adaptiveThreshold) observeReads(n int64)  { a.observe(n, 0) }
func (a *adaptiveThreshold) observeWrites(n int64) { a.observe(0, n) }

func (a *adaptiveThreshold) observe(r, w int64) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.reads += r
	a.writes += w
	total := a.reads + a.writes
	if total < a.window {
		return
	}
	ratio := float64(a.writes) / float64(total)
	step := a.ts / 4
	if step < 1 {
		step = 1
	}
	switch {
	case ratio > 0.55 && a.ts < a.maxTs:
		a.ts += step
		if a.ts > a.maxTs {
			a.ts = a.maxTs
		}
	case ratio < 0.45 && a.ts > a.minTs:
		a.ts -= step
		if a.ts < a.minTs {
			a.ts = a.minTs
		}
	}
	a.reads, a.writes = 0, 0
}
