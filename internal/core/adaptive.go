package core

import "sync/atomic"

// adaptiveThreshold implements the paper's §III-B-4 self-adaptive SliceLink
// threshold: write-dominated workloads push T_s up (fewer, bigger merges ⇒
// lower write amplification), read-dominated workloads pull it down (fewer
// linked slices to probe ⇒ cheaper reads). The controller observes the
// read/write mix over fixed-size windows of operations and nudges T_s one
// step per window with hysteresis, bounded to [minTs, 4×fanout].
//
// Everything is atomic: threshold() and observe() sit on the lock-free read
// path (every Get records itself), so neither may take a mutex. Window
// adjustment is guarded by a CAS flag — one adjuster per window, with other
// observers simply continuing to count.
type adaptiveThreshold struct {
	ts     atomic.Int64
	minTs  int64
	maxTs  int64
	window int64

	reads, writes atomic.Int64
	adjusting     atomic.Bool
}

// adaptiveWindow is the number of operations between adjustments.
const adaptiveWindow = 4096

func newAdaptiveThreshold(initial, fanout int) *adaptiveThreshold {
	a := &adaptiveThreshold{
		minTs:  2,
		maxTs:  int64(4 * fanout),
		window: adaptiveWindow,
	}
	ts := int64(initial)
	if ts < a.minTs {
		ts = a.minTs
	}
	if ts > a.maxTs {
		ts = a.maxTs
	}
	a.ts.Store(ts)
	return a
}

func (a *adaptiveThreshold) threshold() int { return int(a.ts.Load()) }

func (a *adaptiveThreshold) observeReads(n int64)  { a.observe(n, 0) }
func (a *adaptiveThreshold) observeWrites(n int64) { a.observe(0, n) }

func (a *adaptiveThreshold) observe(r, w int64) {
	reads := a.reads.Add(r)
	writes := a.writes.Add(w)
	if reads+writes < a.window {
		return
	}
	if !a.adjusting.CompareAndSwap(false, true) {
		return // another observer is mid-adjustment
	}
	reads = a.reads.Swap(0)
	writes = a.writes.Swap(0)
	if total := reads + writes; total > 0 {
		ratio := float64(writes) / float64(total)
		ts := a.ts.Load()
		step := ts / 4
		if step < 1 {
			step = 1
		}
		switch {
		case ratio > 0.55 && ts < a.maxTs:
			ts += step
			if ts > a.maxTs {
				ts = a.maxTs
			}
			a.ts.Store(ts)
		case ratio < 0.45 && ts > a.minTs:
			ts -= step
			if ts < a.minTs {
				ts = a.minTs
			}
			a.ts.Store(ts)
		}
	}
	a.adjusting.Store(false)
}
