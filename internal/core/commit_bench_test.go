package core

import (
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/compaction"
	"repro/internal/vfs"
)

// BenchmarkConcurrentWriters measures foreground write throughput with 1, 4,
// and 16 concurrent committers, with the WAL fsync'd per commit (sync=on) and
// OS-buffered (sync=off). The sync=on variant runs on a filesystem whose WAL
// Sync costs a fixed latency, standing in for a real device fsync: the number
// the group-commit pipeline exists to amortize. Results are recorded in
// BENCH_group_commit.json.

// slowSyncFS charges a fixed latency for every Sync of a .log file,
// emulating the fsync cost of a real device on top of the in-memory store.
type slowSyncFS struct {
	vfs.FS
	delay time.Duration
}

func (s *slowSyncFS) Create(name string) (vfs.File, error) {
	f, err := s.FS.Create(name)
	if err != nil {
		return nil, err
	}
	if strings.HasSuffix(name, ".log") {
		return &slowSyncFile{File: f, delay: s.delay}, nil
	}
	return f, nil
}

type slowSyncFile struct {
	vfs.File
	delay time.Duration
}

func (f *slowSyncFile) Sync() error {
	time.Sleep(f.delay)
	return f.File.Sync()
}

func BenchmarkConcurrentWriters(b *testing.B) {
	for _, syncWAL := range []bool{false, true} {
		for _, writers := range []int{1, 4, 16} {
			name := fmt.Sprintf("sync=%v/writers=%d", syncWAL, writers)
			b.Run(name, func(b *testing.B) {
				opts := Options{
					FS:           vfs.Mem(),
					Policy:       compaction.LDC,
					MemTableSize: 4 << 20,
					SSTableSize:  1 << 20,
					Fanout:       10,
					Sync:         syncWAL,
				}
				if syncWAL {
					opts.FS = &slowSyncFS{FS: vfs.Mem(), delay: 100 * time.Microsecond}
				}
				db, err := Open("/bench", opts)
				if err != nil {
					b.Fatal(err)
				}
				defer db.Close()

				val := make([]byte, 100)
				b.SetBytes(100 + 16)
				b.ResetTimer()
				var wg sync.WaitGroup
				for w := 0; w < writers; w++ {
					wg.Add(1)
					go func(w int) {
						defer wg.Done()
						n := b.N / writers
						if w < b.N%writers {
							n++
						}
						for i := 0; i < n; i++ {
							k := []byte(fmt.Sprintf("w%02d-%09d", w, i))
							if err := db.Put(k, val); err != nil {
								b.Error(err)
								return
							}
						}
					}(w)
				}
				wg.Wait()
			})
		}
	}
}
