package core

import (
	"repro/internal/iterator"
	"repro/internal/keys"
)

// Iterator is the public ordered cursor over the whole database. Over one
// shard it wraps the engine iterator directly (zero overhead — the literal
// pre-sharding iterator). Over N shards it is an ordered k-way merge of the
// per-shard iterators through the pooled merging iterator: hash routing
// makes every user key live in exactly one shard, so the per-shard
// iterators — which already collapse versions and tombstones down to live
// user entries — never produce duplicate keys, and merging by user key
// alone is exact. Not safe for concurrent use.
type Iterator struct {
	single *storeIter        // Shards==1 fast path
	merged iterator.Iterator // k-way merge over subs
	subs   []*shardUserIter
	err    error
}

// NewIterator returns an iterator over the database at snap (nil = the
// latest state, capturing each shard as it is first touched by the merge's
// initial positioning pass). The iterator starts unpositioned; call Seek,
// SeekToFirst, or SeekToLast.
func (db *DB) NewIterator(snap *Snapshot) (*Iterator, error) {
	if len(db.shards) == 1 {
		var seqp *keys.Seq
		if snap != nil {
			seqp = &snap.seqs[0]
		}
		si, err := db.shards[0].newIter(seqp)
		if err != nil {
			return nil, err
		}
		return &Iterator{single: si}, nil
	}
	subs := make([]*shardUserIter, 0, len(db.shards))
	children := make([]iterator.Iterator, 0, len(db.shards))
	for i, st := range db.shards {
		var seqp *keys.Seq
		if snap != nil {
			seqp = &snap.seqs[i]
		}
		si, err := st.newIter(seqp)
		if err != nil {
			for _, sub := range subs {
				_ = sub.Close() // unwind the partial build; the open error wins
			}
			return nil, err
		}
		sub := &shardUserIter{it: si}
		subs = append(subs, sub)
		children = append(children, sub)
	}
	return &Iterator{
		merged: iterator.NewMerging(db.opts.Comparer.Compare, children...),
		subs:   subs,
	}, nil
}

// Seek positions at the first key >= target.
func (i *Iterator) Seek(target []byte) {
	if i.single != nil {
		i.single.Seek(target)
		return
	}
	i.merged.SeekGE(target)
}

// SeekToFirst positions at the smallest key.
func (i *Iterator) SeekToFirst() {
	if i.single != nil {
		i.single.SeekToFirst()
		return
	}
	i.merged.SeekToFirst()
}

// SeekToLast positions at the largest key.
func (i *Iterator) SeekToLast() {
	if i.single != nil {
		i.single.SeekToLast()
		return
	}
	i.merged.SeekToLast()
}

// Next advances; no-op when invalid.
func (i *Iterator) Next() {
	if i.single != nil {
		i.single.Next()
		return
	}
	if i.merged.Valid() {
		i.merged.Next()
	}
}

// Prev steps backward; no-op when invalid.
func (i *Iterator) Prev() {
	if i.single != nil {
		i.single.Prev()
		return
	}
	if i.merged.Valid() {
		i.merged.Prev()
	}
}

// Valid reports whether the iterator is positioned at an entry.
func (i *Iterator) Valid() bool {
	if i.single != nil {
		return i.single.Valid()
	}
	return i.merged.Valid()
}

// Key returns the current key; valid until the next move.
func (i *Iterator) Key() []byte {
	if i.single != nil {
		return i.single.Key()
	}
	return i.merged.Key()
}

// Value returns the current value; valid until the next move.
func (i *Iterator) Value() []byte {
	if i.single != nil {
		return i.single.Value()
	}
	return i.merged.Value()
}

// Error reports the first error the iterator encountered.
func (i *Iterator) Error() error {
	if i.err != nil {
		return i.err
	}
	if i.single != nil {
		return i.single.Error()
	}
	if err := i.merged.Error(); err != nil {
		return err
	}
	for _, sub := range i.subs {
		if err := sub.it.Error(); err != nil {
			return err
		}
	}
	return nil
}

// Close releases the iterator's pinned resources on every shard.
func (i *Iterator) Close() error {
	if i.single != nil {
		return i.single.Close()
	}
	i.err = i.Error()
	if err := i.merged.Close(); err != nil && i.err == nil {
		i.err = err
	}
	return i.err
}

// shardUserIter adapts one shard's engine iterator (seek-style API over
// user keys) to the internal iterator.Iterator interface the merging
// iterator consumes. The adapter surfaces user keys directly: per-shard
// sequence numbers are incomparable across shards, but they never need
// comparing — key uniqueness across shards makes the user key a total
// order by itself.
type shardUserIter struct {
	it *storeIter
}

func (a *shardUserIter) Valid() bool          { return a.it.Valid() }
func (a *shardUserIter) SeekGE(target []byte) { a.it.Seek(target) }
func (a *shardUserIter) SeekToFirst()         { a.it.SeekToFirst() }
func (a *shardUserIter) SeekToLast()          { a.it.SeekToLast() }
func (a *shardUserIter) Next()                { a.it.Next() }
func (a *shardUserIter) Prev()                { a.it.Prev() }
func (a *shardUserIter) Key() []byte          { return a.it.Key() }
func (a *shardUserIter) Value() []byte        { return a.it.Value() }
func (a *shardUserIter) Error() error         { return a.it.Error() }
func (a *shardUserIter) Close() error         { return a.it.Close() }
