package core

import (
	"errors"
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/batch"
	"repro/internal/cache"
	"repro/internal/commit"
	"repro/internal/compaction"
	"repro/internal/keys"
	"repro/internal/memtable"
	"repro/internal/ssdsim"
	"repro/internal/version"
	"repro/internal/vfs"
	"repro/internal/wal"
)

// Errors returned by the store.
var (
	// ErrNotFound reports a missing key.
	ErrNotFound = errors.New("ldc: key not found")
	// ErrClosed reports use after Close.
	ErrClosed = errors.New("ldc: database closed")
)

// DB is the key-value store. All methods are safe for concurrent use.
type DB struct {
	opts Options
	dir  string
	icmp keys.InternalComparer

	// Category-tagged filesystem views (identical when the FS is not an
	// SSD simulator).
	fsUser  vfs.FS // user/table reads
	fsWAL   vfs.FS // WAL appends
	fsFlush vfs.FS // memtable flush writes
	fsCompR vfs.FS // compaction reads
	fsCompW vfs.FS // compaction writes
	fsMeta  vfs.FS // MANIFEST and housekeeping

	set        *version.Set
	picker     *compaction.Picker
	adaptive   *adaptiveThreshold
	tables     *tableCache
	blockCache *cache.Cache

	// pipeline and controller form the commit front end (see write.go):
	// Apply goes through the pipeline, which groups concurrent writers and
	// admits each group via the controller's throttle state machine.
	pipeline   *commit.Pipeline
	controller *commit.Controller

	// readState is the lock-free snapshot (mem, imm, version) every read
	// acquires with one atomic load + ref; rebuilt under db.mu whenever a
	// rotation, flush, or version install changes the view (see
	// readstate.go). nil once the store is closed.
	readState atomic.Pointer[readState]

	mu      sync.Mutex
	mem     *memtable.MemTable
	imm     *memtable.MemTable
	logw    *wal.Writer
	logFile vfs.File
	logNum  uint64

	snapshots snapshotList

	// Background-engine state, all guarded by mu. Three condition variables
	// partition the wakeups: flushCond wakes the flush worker (imm set, or
	// shutdown), workCond wakes compaction workers (new version, released
	// claim, manual compaction, or shutdown), and bgCond announces progress
	// to foreground waiters (stalled writes, WaitIdle, CompactRange, Close).
	flushCond *sync.Cond
	workCond  *sync.Cond
	bgCond    *sync.Cond

	flushActive    bool // flush worker is mid-flush
	compActive     int  // compaction workers mid-job
	workersRunning int  // live worker goroutines; Close drains to zero
	manualWant     int  // CompactRange callers forcing work despite DisableAutoCompaction

	bgErr  error
	closed bool

	// closeOnce makes Close idempotent: the first caller tears the store
	// down; later and concurrent callers block inside Do until the teardown
	// finishes, then observe the same result. The server's graceful drain
	// depends on this — Shutdown and a deferred test Close may race.
	closeOnce sync.Once
	closeErr  error
	// retired is the final read state, stashed by stopBackgroundLocked;
	// Close waits for its in-flight readers before closing table readers.
	retired *readState

	stats dbStats
}

// Open opens (creating if necessary) a database in dir. Nonsensical
// configurations are rejected up front with an error wrapping
// ErrInvalidOptions.
func Open(dir string, opts Options) (*DB, error) {
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	opts = opts.withDefaults()
	icmp := keys.InternalComparer{User: opts.Comparer}

	db := &DB{
		opts: opts,
		dir:  dir,
		icmp: icmp,
	}
	db.flushCond = sync.NewCond(&db.mu)
	db.workCond = sync.NewCond(&db.mu)
	db.bgCond = sync.NewCond(&db.mu)
	db.initFS(opts.FS)

	if err := db.fsMeta.MkdirAll(dir); err != nil {
		return nil, err
	}

	db.blockCache = opts.newBlockCache()
	db.tables = newTableCache(db.fsUser, dir, icmp, db.blockCache, *opts.VerifyChecksums)
	db.set = version.NewSet(db.fsMeta, dir, icmp)
	db.set.AllowOverlaps = opts.Policy == compaction.Tiered
	db.picker = compaction.NewPicker(opts.Policy, opts.compactionParams(), icmp)
	if opts.AdaptiveThreshold && opts.Policy == compaction.LDC {
		db.adaptive = newAdaptiveThreshold(opts.SliceLinkThreshold, opts.Fanout)
		db.picker.SetThresholdFunc(db.adaptive.threshold)
	}

	if db.fsMeta.Exists(version.CurrentFileName(dir)) {
		if err := db.recover(); err != nil {
			return nil, err
		}
	} else {
		if err := db.set.Create(); err != nil {
			return nil, err
		}
		db.mem = memtable.New(icmp)
	}
	for level := 0; level < version.NumLevels; level++ {
		if k := db.set.CompactPointer(level); k != nil {
			db.picker.SetPointer(level, k)
		}
	}

	// Fresh WAL for new writes.
	if err := db.newLogLocked(); err != nil {
		return nil, err
	}
	// Record the WAL floor so recovery skips pre-existing logs only when a
	// flush has covered them; here we only persist allocator state.
	if err := db.set.LogAndApply(&version.Edit{}); err != nil {
		return nil, err
	}

	db.deleteObsoleteFiles()
	db.initCommitPipeline()
	// Publish the initial read state before the DB (and its workers) become
	// visible; Open is exclusive, which satisfies publishReadState's locking
	// contract.
	db.publishReadState()
	db.startWorkers()
	return db, nil
}

// initFS derives per-category filesystem views when running on the SSD
// simulator.
func (db *DB) initFS(fs vfs.FS) {
	if sim, ok := fs.(*ssdsim.FS); ok {
		db.fsUser = sim.WithCategory(ssdsim.CatUserRead)
		db.fsWAL = sim.WithCategory(ssdsim.CatWAL)
		db.fsFlush = sim.WithCategory(ssdsim.CatFlush)
		db.fsCompR = sim.WithCategory(ssdsim.CatCompactionRead)
		db.fsCompW = sim.WithCategory(ssdsim.CatCompactionWrite)
		db.fsMeta = sim.WithCategory(ssdsim.CatOther)
		return
	}
	db.fsUser, db.fsWAL, db.fsFlush, db.fsCompR, db.fsCompW, db.fsMeta = fs, fs, fs, fs, fs, fs
}

// recover loads the MANIFEST then replays WALs newer than its floor.
func (db *DB) recover() error {
	if err := db.set.Recover(); err != nil {
		return err
	}
	db.mem = memtable.New(db.icmp)

	names, err := db.fsMeta.List(db.dir)
	if err != nil {
		return err
	}
	floor := db.set.LogNum()
	var logs []uint64
	for _, name := range names {
		if typ, num := version.ParseFileName(name); typ == version.TypeLog && num >= floor {
			logs = append(logs, num)
		}
	}
	sort.Slice(logs, func(i, j int) bool { return logs[i] < logs[j] })
	for _, num := range logs {
		if err := db.replayLog(num); err != nil {
			return err
		}
	}
	// Anything replayed lives in the new memtable; if it outgrew the limit,
	// flush it straight away so the WAL floor can advance.
	if db.mem.ApproximateBytes() >= db.opts.MemTableSize {
		db.mu.Lock()
		db.imm, db.mem = db.mem, memtable.New(db.icmp)
		err := db.flushImmLocked()
		db.mu.Unlock()
		if err != nil {
			return err
		}
	}
	return nil
}

func (db *DB) replayLog(num uint64) error {
	f, err := db.fsWAL.Open(version.LogFileName(db.dir, num))
	if err != nil {
		if err == vfs.ErrNotExist {
			return nil
		}
		return err
	}
	defer f.Close()
	r := wal.NewReader(f)
	maxSeq := db.set.LastSeq()
	for {
		rec, err := r.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			// Torn tail: records before it were applied; stop here, matching
			// LevelDB's default of trusting the log up to the tear.
			break
		}
		b, err := batch.Decode(rec)
		if err != nil {
			break
		}
		seq := b.Sequence()
		i := keys.Seq(0)
		b.Each(func(kind keys.Kind, key, value []byte) error {
			db.mem.Add(seq+i, kind, key, value)
			i++
			return nil
		})
		if end := seq + keys.Seq(b.Count()) - 1; end > maxSeq {
			maxSeq = end
		}
	}
	db.set.SetLastSeq(maxSeq)
	return nil
}

// newLogLocked switches to a fresh WAL file. Callers guarantee exclusivity
// (Open, or write path holding mu).
func (db *DB) newLogLocked() error {
	num := db.set.NewFileNum()
	raw, err := db.fsWAL.Create(version.LogFileName(db.dir, num))
	if err != nil {
		return err
	}
	if db.logw != nil {
		// The old writer may hold buffered frames; push them down before the
		// file is closed so the retiring WAL is complete on disk.
		if err := db.logw.Flush(); err != nil {
			return err
		}
	}
	if db.logFile != nil {
		// The retiring WAL's buffered frames were flushed above; a close
		// error on the old handle cannot lose acknowledged data.
		_ = db.logFile.Close()
	}
	db.logFile = raw
	// Buffer WAL appends inside the writer when Sync is off: the OS page
	// cache coalesces log writes under LevelDB's default, and the buffer
	// models that so the simulated device sees realistic large writes. With
	// Sync on, appends go straight through (every group fsyncs anyway).
	if db.opts.Sync {
		db.logw = wal.NewWriter(raw)
	} else {
		db.logw = wal.NewWriterSize(raw, 32<<10)
	}
	db.logNum = num
	return nil
}

// Close flushes the memtable state to disk-safe form (the WAL already holds
// it) and stops background work, draining the whole worker pool. Close is
// idempotent and safe to call concurrently: every call returns only after
// the teardown is complete, and all calls return the same result. After
// Close, the public entry points (Put, Delete, Apply, Get, GetAt, Scan,
// NewIterator, NewSnapshot) fail with ErrClosed; Stats and CurrentProfile
// keep returning the final counters.
func (db *DB) Close() error {
	db.closeOnce.Do(func() {
		db.mu.Lock()
		db.stopBackgroundLocked()
		db.mu.Unlock()

		// Drain the commit front end: queued writers fail with ErrClosed; an
		// in-flight group leader (who observes closed under db.mu or via the
		// controller) finishes before Close proceeds to tear the WAL down.
		db.pipeline.Close()

		// The final WAL sync and close are the last durability points; their
		// errors are the ones a caller of Close most needs to see.
		if db.logFile != nil {
			db.closeErr = db.logw.Sync()
			if err := db.logFile.Close(); db.closeErr == nil {
				db.closeErr = err
			}
			db.logFile = nil
		}
		// Reads that acquired the read state before it was retired — point
		// gets mid-probe, open iterators — still hold table readers. Wait for
		// them to drain rather than closing files under them. Open iterators
		// must therefore be closed before (or concurrently with) Close, the
		// same contract LevelDB enforces.
		if db.retired != nil {
			<-db.retired.done
		}
		db.tables.close()
		if err := db.set.Close(); db.closeErr == nil {
			db.closeErr = err
		}
	})
	return db.closeErr
}

// stopBackgroundLocked marks the store closed and waits until every worker
// goroutine has exited. In-flight jobs run to completion (their claims and
// version edits resolve normally); idle workers wake, observe closed, and
// return. Callers hold db.mu. Also used by crash-simulation tests, which
// abandon the handle without a clean Close.
func (db *DB) stopBackgroundLocked() {
	db.closed = true
	db.flushCond.Broadcast()
	db.workCond.Broadcast()
	db.bgCond.Broadcast()
	for db.workersRunning > 0 {
		db.bgCond.Wait()
	}
	// All republishers are drained (workers exited; rotation and commit are
	// fenced by closed), so retiring the read state here is final: readers
	// from now on observe nil and fail with ErrClosed. The retired state is
	// remembered so Close can wait for in-flight readers to drain before the
	// table cache is torn down.
	if old := db.readState.Swap(nil); old != nil {
		db.retired = old
		old.unref()
	}
}

// ---------------------------------------------------------------------------
// Writes

// Put inserts or updates a key.
func (db *DB) Put(key, value []byte) error {
	b := batch.New()
	b.Set(key, value)
	err := db.Apply(b)
	if err == nil {
		db.stats.puts.Add(1)
	}
	return err
}

// Delete writes a tombstone for a key.
func (db *DB) Delete(key []byte) error {
	b := batch.New()
	b.Delete(key)
	err := db.Apply(b)
	if err == nil {
		db.stats.deletes.Add(1)
	}
	return err
}

// Apply commits a batch atomically through the group-commit pipeline: the
// batch joins a write group (possibly with other concurrent committers),
// whose leader appends one WAL record, fsyncs if Options.Sync is set, and
// applies the group to the memtable (see write.go).
func (db *DB) Apply(b *batch.Batch) error {
	if b.Empty() {
		return nil
	}
	start := time.Now()
	defer func() { db.stats.writeNanos.Add(int64(time.Since(start))) }()
	return db.pipeline.Commit(b, db.opts.Sync)
}

// ---------------------------------------------------------------------------
// Reads

// Get returns the value of key, or ErrNotFound.
func (db *DB) Get(key []byte) ([]byte, error) {
	return db.GetAt(key, nil)
}

// GetAt reads at a snapshot (nil = latest).
func (db *DB) GetAt(key []byte, snap *Snapshot) ([]byte, error) {
	start := time.Now()
	defer func() { db.stats.readNanos.Add(int64(time.Since(start))) }()
	db.stats.gets.Add(1)
	if db.adaptive != nil {
		db.adaptive.observeReads(1)
	}

	// Lock-free: one atomic load + ref pins (mem, imm, version) together; the
	// visible sequence is then read from the Set's atomic counter. Entries at
	// or below that sequence were applied to a memtable before the sequence
	// was published, and every published state contains all previously
	// applied data, so the pair is always consistent.
	rs := db.loadReadState()
	if rs == nil {
		return nil, ErrClosed
	}
	defer rs.unref()
	seq := db.set.LastSeq()
	if snap != nil {
		seq = snap.seq
	}

	// Memtables.
	if val, deleted, found := rs.mem.Get(key, seq); found {
		if deleted {
			return nil, ErrNotFound
		}
		return val, nil
	}
	if rs.imm != nil {
		if val, deleted, found := rs.imm.Get(key, seq); found {
			if deleted {
				return nil, ErrNotFound
			}
			return val, nil
		}
	}
	return db.getFromVersion(rs.v, key, seq)
}

// readScratch carries a point get's search-key buffer; pooled so a
// steady-state get builds its search key into reused capacity.
type readScratch struct {
	sk []byte
}

var readScratchPool = sync.Pool{New: func() interface{} { return new(readScratch) }}

// getFromVersion searches table files level by level. Values returned by
// table probes alias cached blocks, so the winner is copied exactly once, at
// the return site; losers (older versions, tombstones) are never copied.
func (db *DB) getFromVersion(v *version.Version, key []byte, seq keys.Seq) ([]byte, error) {
	ucmp := db.icmp.User
	sc := readScratchPool.Get().(*readScratch)
	defer readScratchPool.Put(sc)
	// One search key per get, shared by every probed table.
	sc.sk = keys.MakeSearchKey(sc.sk[:0], key, seq)
	sk := keys.InternalKey(sc.sk)

	// L0: newest file first.
	l0 := v.Levels[0]
	for i := len(l0) - 1; i >= 0; i-- {
		f := l0[i]
		if !f.UserRange().Contains(ucmp, key) {
			continue
		}
		val, deleted, _, found, err := db.tableProbe(f.Num, sk)
		if err != nil {
			return nil, err
		}
		if found {
			if deleted {
				return nil, ErrNotFound
			}
			return append([]byte(nil), val...), nil
		}
	}

	// Sorted levels: probe slices (newest link first) then the file; when
	// several files' effective ranges cover the key (overlapping slice
	// windows), pick the candidate with the highest visible sequence.
	for level := 1; level < version.NumLevels; level++ {
		if db.opts.Policy == compaction.Tiered {
			// Tiers hold overlapping runs: check newest (highest num) first.
			// The order is precomputed per version, so nothing is sorted or
			// allocated here. Tiered levels carry no slices, so the files'
			// own ranges are their effective ranges.
			files := v.NewestFirst(level)
			if files == nil {
				// No overlapping runs in this level: at most one file can
				// contain the key, so level order works as well.
				files = v.Levels[level]
			}
			for _, f := range files {
				if !f.UserRange().Contains(ucmp, key) {
					continue
				}
				val, deleted, _, found, err := db.tableProbe(f.Num, sk)
				if err != nil {
					return nil, err
				}
				if found {
					if deleted {
						return nil, ErrNotFound
					}
					return append([]byte(nil), val...), nil
				}
			}
			continue
		}
		// Leveled (LDC/UDC): files are disjoint, so the key lives in at most
		// one file's own range — plus any slice window covering it (windows
		// of neighbouring files may overlap, so the few sliced files are
		// checked exhaustively).
		f := v.FindFile(level, key)
		sliced := v.Sliced[level]
		if f == nil && len(sliced) == 0 {
			continue
		}
		var (
			bestSeq     keys.Seq
			bestVal     []byte
			bestDeleted bool
			bestFound   bool
		)
		for _, sf := range sliced {
			// Slices newest-first.
			for i := len(sf.Slices) - 1; i >= 0; i-- {
				s := &sf.Slices[i]
				if !s.Range.Contains(ucmp, key) {
					continue
				}
				val, deleted, entrySeq, found, err := db.tableProbe(s.FrozenNum, sk)
				if err != nil {
					return nil, err
				}
				if found && (!bestFound || entrySeq > bestSeq) {
					bestSeq, bestVal, bestDeleted, bestFound = entrySeq, val, deleted, true
				}
			}
		}
		if f != nil {
			val, deleted, entrySeq, found, err := db.tableProbe(f.Num, sk)
			if err != nil {
				return nil, err
			}
			if found && (!bestFound || entrySeq > bestSeq) {
				bestSeq, bestVal, bestDeleted, bestFound = entrySeq, val, deleted, true
			}
		}
		if bestFound {
			if bestDeleted {
				return nil, ErrNotFound
			}
			return append([]byte(nil), bestVal...), nil
		}
	}
	return nil, ErrNotFound
}

// tableProbe is the per-table point lookup: bloom filter, then the reader's
// direct index→data-block probe (no iterator construction). The returned
// value aliases the cached block — callers copy only what they return. The
// entry sequence orders candidates across overlapping slice windows.
func (db *DB) tableProbe(num uint64, sk keys.InternalKey) (val []byte, deleted bool, entrySeq keys.Seq, found bool, err error) {
	r, err := db.tables.get(num)
	if err != nil {
		return nil, false, 0, false, err
	}
	db.stats.bloomProbes.Add(1)
	if !r.MayContain(sk.UserKey()) {
		db.stats.bloomNegatives.Add(1)
		return nil, false, 0, false, nil
	}
	db.stats.tableProbes.Add(1)
	return r.Probe(sk)
}

// ---------------------------------------------------------------------------
// Snapshots

type snapshotList struct {
	mu   sync.Mutex
	seqs map[keys.Seq]int
}

// Snapshot pins a point-in-time view for reads and iterators.
type Snapshot struct {
	db  *DB
	seq keys.Seq
}

// NewSnapshot captures the current state; Release it when done. Returns
// ErrClosed after Close — a sequence number captured from a torn-down store
// would pin nothing.
func (db *DB) NewSnapshot() (*Snapshot, error) {
	// The read-state pointer doubles as the closed gate: it is retired
	// (swapped to nil) before any state a snapshot relies on is torn down.
	rs := db.loadReadState()
	if rs == nil {
		return nil, ErrClosed
	}
	defer rs.unref()
	db.snapshots.mu.Lock()
	defer db.snapshots.mu.Unlock()
	if db.snapshots.seqs == nil {
		db.snapshots.seqs = map[keys.Seq]int{}
	}
	seq := db.set.LastSeq()
	db.snapshots.seqs[seq]++
	return &Snapshot{db: db, seq: seq}, nil
}

// Release frees the snapshot.
func (s *Snapshot) Release() {
	s.db.snapshots.mu.Lock()
	defer s.db.snapshots.mu.Unlock()
	if n := s.db.snapshots.seqs[s.seq]; n <= 1 {
		delete(s.db.snapshots.seqs, s.seq)
	} else {
		s.db.snapshots.seqs[s.seq] = n - 1
	}
}

// smallestSnapshot reports the oldest sequence any snapshot still needs;
// compactions must preserve versions visible at it.
func (db *DB) smallestSnapshot() keys.Seq {
	db.snapshots.mu.Lock()
	defer db.snapshots.mu.Unlock()
	smallest := db.set.LastSeq()
	for seq := range db.snapshots.seqs {
		if seq < smallest {
			smallest = seq
		}
	}
	return smallest
}

// ---------------------------------------------------------------------------
// Misc accessors

// Stats returns a snapshot of internal counters, folding in the commit
// front end's own metrics (group counts from the pipeline, stall accounting
// from the controller).
func (db *DB) Stats() Stats {
	s := db.stats.snapshot()
	if db.controller != nil {
		cm := db.controller.Metrics()
		s.SlowdownCount = cm.Slowdowns
		s.StopCount = cm.Stops
		s.StallTime = time.Duration(cm.StallNanos)
		s.WriteState = cm.State.String()
	}
	if db.pipeline != nil {
		pm := db.pipeline.Metrics()
		s.WriteGroupsTotal = pm.Groups
		s.WriteBatchesTotal = pm.Batches
		if pm.Groups > 0 {
			s.AvgGroupSize = float64(pm.Batches) / float64(pm.Groups)
		}
	}
	if db.blockCache != nil {
		hits, misses := db.blockCache.Stats()
		s.BlockCacheHits, s.BlockCacheMisses = hits, misses
		if hits+misses > 0 {
			s.BlockCacheHitRatio = float64(hits) / float64(hits+misses)
		}
	}
	if db.tables != nil {
		s.CompressedBytesRead, s.UncompressedBytesRead = db.tables.totalIOBytes()
	}
	return s
}

// LevelProfile describes one level for diagnostics and experiments.
type LevelProfile struct {
	Level  int
	Files  int
	Bytes  int64
	Slices int
}

// Profile reports per-level shape plus LDC frozen-region state.
type Profile struct {
	Levels         []LevelProfile
	FrozenFiles    int
	FrozenBytes    int64
	SliceThreshold int
}

// CurrentProfile captures the tree's current shape.
func (db *DB) CurrentProfile() Profile {
	v := db.set.Current()
	defer v.Unref()
	p := Profile{SliceThreshold: db.picker.SliceThreshold()}
	for level := 0; level < version.NumLevels; level++ {
		p.Levels = append(p.Levels, LevelProfile{
			Level:  level,
			Files:  v.NumFiles(level),
			Bytes:  v.LevelBytes(level),
			Slices: v.SliceCount(level),
		})
	}
	p.FrozenFiles = len(v.Frozen)
	p.FrozenBytes = v.FrozenBytes()
	return p
}

// BlockReads reports cumulative data-block fetches from storage (Fig 13).
func (db *DB) BlockReads() int64 { return db.tables.totalBlockReads() }

// TableBytes reports the total size of live table files plus the frozen
// region — the store's disk footprint (Fig 15).
func (db *DB) TableBytes() int64 {
	v := db.set.Current()
	defer v.Unref()
	var n int64
	for level := 0; level < version.NumLevels; level++ {
		n += v.LevelBytes(level)
	}
	return n + v.FrozenBytes()
}

// SliceThreshold reports the current T_s (possibly adaptive).
func (db *DB) SliceThreshold() int { return db.picker.SliceThreshold() }

// CompactRange forces compaction work until the tree is quiescent — used by
// tests and experiments to reach a steady state. It drives the worker pool
// even when DisableAutoCompaction is set.
func (db *DB) CompactRange() error {
	db.mu.Lock()
	defer db.mu.Unlock()
	db.manualWant++
	defer func() { db.manualWant-- }()
	db.workCond.Broadcast()
	for {
		if db.bgErr != nil {
			return db.bgErr
		}
		if db.closed {
			return ErrClosed
		}
		if db.imm == nil && !db.flushActive && db.compActive == 0 {
			// Quiescent moment: with no claims in flight, a None pick means
			// the tree has truly converged.
			if db.picker.Pick(db.set.CurrentNoRef()).Kind == compaction.PickNone {
				return nil
			}
			db.workCond.Broadcast()
		}
		db.bgCond.Wait()
	}
}

// WaitIdle blocks until no background work is running or immediately
// pickable: the flush worker is idle with no pending immutable memtable and
// every compaction worker has drained. Returns early if the store is closed
// or poisoned by a background error.
func (db *DB) WaitIdle() {
	db.mu.Lock()
	for !db.closed && db.bgErr == nil {
		if db.imm == nil && !db.flushActive && db.compActive == 0 {
			if db.opts.DisableAutoCompaction && db.manualWant == 0 {
				break
			}
			if db.picker.Pick(db.set.CurrentNoRef()).Kind == compaction.PickNone {
				break
			}
			db.workCond.Broadcast()
		}
		db.bgCond.Wait()
	}
	db.mu.Unlock()
}

func (db *DB) fatal(err error) {
	if db.bgErr == nil {
		db.bgErr = fmt.Errorf("ldc: background error: %w", err)
	}
}
