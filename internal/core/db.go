package core

import (
	"errors"
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/batch"
	"repro/internal/cache"
	"repro/internal/commit"
	"repro/internal/compaction"
	"repro/internal/invariants"
	"repro/internal/iosched"
	"repro/internal/keys"
	"repro/internal/memtable"
	"repro/internal/ssdsim"
	"repro/internal/version"
	"repro/internal/vfs"
	"repro/internal/vlog"
	"repro/internal/wal"
)

// Errors returned by the store.
var (
	// ErrNotFound reports a missing key.
	ErrNotFound = errors.New("ldc: key not found")
	// ErrClosed reports use after Close.
	ErrClosed = errors.New("ldc: database closed")
)

// store is one shard's complete engine: memtable + WAL segment + group-
// commit pipeline + read state + version set + compaction claim space. It is
// exactly the pre-sharding DB, made unexported; the public DB (router.go) is
// a thin hash router over Options.Shards of these. All methods are safe for
// concurrent use.
type store struct {
	opts Options
	dir  string
	icmp keys.InternalComparer

	// Shard identity. shardID is this store's index in the router; walDir is
	// the directory holding its WAL segments. walShared marks the sharded
	// layout, where all shards' segments live side by side in one directory
	// under SHARD-<id>-<num>.log names. In the single-shard legacy layout
	// walDir == dir and segments keep their historical NNNNNN.log names —
	// byte-identical to the pre-sharding engine.
	shardID   int
	walDir    string
	walShared bool

	// Category-tagged filesystem views (identical when the FS is not an
	// SSD simulator).
	fsUser  vfs.FS // user/table reads
	fsWAL   vfs.FS // WAL appends
	fsFlush vfs.FS // memtable flush writes
	fsCompR vfs.FS // compaction reads
	fsCompW vfs.FS // compaction writes
	fsMeta  vfs.FS // MANIFEST and housekeeping

	set      *version.Set
	picker   *compaction.Picker
	adaptive *adaptiveThreshold
	tables   *shardTables

	// limiter is the database-wide background-I/O scheduler, shared across
	// shards because the device is shared (router.go owns its lifecycle).
	// nil when rate limiting is disabled.
	limiter *iosched.Limiter

	// vlog is the database-wide value log (router-owned, nil when value
	// separation is disabled and no segments exist on disk); vlogw is this
	// shard's appender into it. blockCache caches decoded vlog values under
	// the blobCacheBit namespace, sharing capacity with table blocks.
	vlog       *vlog.Log
	vlogw      *vlog.Writer
	blockCache *cache.Cache

	// openIters counts live store iterators; value-log segment deletion
	// waits for it to reach zero because an iterator may resolve pointers
	// at any time without holding a snapshot registration.
	openIters atomic.Int64
	// rotateForced asks the next commit leader to rotate the memtable even
	// though it is not full (the GC flush barrier sets it; see forceRotate).
	rotateForced atomic.Bool

	// pipeline and controller form the commit front end (see write.go):
	// Apply goes through the pipeline, which groups concurrent writers and
	// admits each group via the controller's throttle state machine.
	pipeline   *commit.Pipeline
	controller *commit.Controller

	// readState is the lock-free snapshot (mem, imm, version) every read
	// acquires with one atomic load + ref; rebuilt under db.mu whenever a
	// rotation, flush, or version install changes the view (see
	// readstate.go). nil once the store is closed.
	readState atomic.Pointer[readState]

	//ldclint:lockrank core.store.mu 30
	mu      invariants.Mutex
	mem     *memtable.MemTable
	imm     *memtable.MemTable
	logw    *wal.Writer
	logFile vfs.File
	logNum  uint64

	// rotBoundarySeq is the highest sequence that can be in the immutable
	// memtable (set at rotation); flushedThroughSeq is the highest sequence
	// durably covered by tables (promoted when a flush completes). Together
	// they let the GC rewrite guard prove "every entry newer than
	// flushedThroughSeq is visible in mem ∪ imm". Guarded by mu.
	rotBoundarySeq    keys.Seq
	flushedThroughSeq keys.Seq

	snapshots snapshotList

	// Background-engine state, all guarded by mu. Three condition variables
	// partition the wakeups: flushCond wakes the flush worker (imm set, or
	// shutdown), workCond wakes compaction workers (new version, released
	// claim, manual compaction, or shutdown), and bgCond announces progress
	// to foreground waiters (stalled writes, WaitIdle, CompactRange, Close).
	flushCond *sync.Cond
	workCond  *sync.Cond
	bgCond    *sync.Cond

	flushActive    bool // flush worker is mid-flush
	compActive     int  // compaction workers mid-job
	cleanActive    int  // workers mid-deleteObsoleteFiles (post-job cleanup)
	workersRunning int  // live worker goroutines; Close drains to zero
	manualWant     int  // CompactRange callers forcing work despite DisableAutoCompaction

	bgErr  error
	closed bool

	// closeOnce makes Close idempotent: the first caller tears the store
	// down; later and concurrent callers block inside Do until the teardown
	// finishes, then observe the same result. The server's graceful drain
	// depends on this — Shutdown and a deferred test Close may race.
	closeOnce sync.Once
	closeErr  error
	// retired is the final read state, stashed by stopBackgroundLocked;
	// Close waits for its in-flight readers before closing table readers.
	retired *readState

	stats dbStats
}

// storeConfig places one shard on disk: its root directory (MANIFEST,
// CURRENT, tables), its WAL directory and naming mode, and its slot in the
// shared table cache. The single-shard legacy layout is walDir == dir with
// walShared off.
type storeConfig struct {
	dir       string
	walDir    string
	walShared bool
	shardID   int
	// limiter is the database-wide compaction I/O scheduler (nil = none).
	limiter *iosched.Limiter
	// vlog is the database-wide value log (nil = separation off and no
	// segments on disk); blockCache is the shared block cache, used here to
	// cache decoded vlog values.
	vlog       *vlog.Log
	blockCache *cache.Cache
}

// openStore opens (creating if necessary) one shard engine. Options are
// already validated and defaulted by the router's Open; tables is the
// database-wide shared table cache (which carries the shared block cache).
func openStore(cfg storeConfig, opts Options, tables *tableCache) (*store, error) {
	icmp := keys.InternalComparer{User: opts.Comparer}
	dir := cfg.dir

	db := &store{
		opts:      opts,
		dir:       dir,
		icmp:      icmp,
		shardID:   cfg.shardID,
		walDir:    cfg.walDir,
		walShared: cfg.walShared,
		limiter:   cfg.limiter,
	}
	if cfg.vlog != nil {
		db.vlog = cfg.vlog
		db.vlogw = cfg.vlog.NewWriter(cfg.shardID)
		db.blockCache = cfg.blockCache
	}
	db.mu.Rank("core.store.mu", 30)
	db.snapshots.mu.Rank("core.snapshots.mu", 50)
	db.flushCond = sync.NewCond(&db.mu)
	db.workCond = sync.NewCond(&db.mu)
	db.bgCond = sync.NewCond(&db.mu)
	db.initFS(opts.FS)

	if err := db.fsMeta.MkdirAll(dir); err != nil {
		return nil, err
	}

	db.tables = tables.forShard(cfg.shardID, dir)
	db.set = version.NewSet(db.fsMeta, dir, icmp)
	db.set.AllowOverlaps = opts.Policy == compaction.Tiered
	db.picker = compaction.NewPicker(opts.Policy, opts.compactionParams(), icmp)
	if opts.AdaptiveThreshold && opts.Policy == compaction.LDC {
		db.adaptive = newAdaptiveThreshold(opts.SliceLinkThreshold, opts.Fanout)
		db.picker.SetThresholdFunc(db.adaptive.threshold)
	}

	if db.fsMeta.Exists(version.CurrentFileName(dir)) {
		if err := db.recover(); err != nil {
			return nil, err
		}
	} else {
		if err := db.set.Create(); err != nil {
			return nil, err
		}
		db.mem = memtable.New(icmp)
	}
	for level := 0; level < version.NumLevels; level++ {
		if k := db.set.CompactPointer(level); k != nil {
			db.picker.SetPointer(level, k)
		}
	}

	// Fresh WAL for new writes.
	if err := db.newLogLocked(); err != nil {
		return nil, err
	}
	// Record the WAL floor so recovery skips pre-existing logs only when a
	// flush has covered them; here we only persist allocator state.
	if err := db.set.LogAndApply(&version.Edit{}); err != nil {
		return nil, err
	}

	db.deleteObsoleteFiles()
	db.initCommitPipeline()
	// Publish the initial read state before the DB (and its workers) become
	// visible; Open is exclusive, which satisfies publishReadState's locking
	// contract.
	db.publishReadState()
	db.startWorkers()
	return db, nil
}

// initFS derives per-category filesystem views when running on the SSD
// simulator.
func (db *store) initFS(fs vfs.FS) {
	if sim, ok := fs.(*ssdsim.FS); ok {
		db.fsUser = sim.WithCategory(ssdsim.CatUserRead)
		db.fsWAL = sim.WithCategory(ssdsim.CatWAL)
		db.fsFlush = sim.WithCategory(ssdsim.CatFlush)
		db.fsCompR = sim.WithCategory(ssdsim.CatCompactionRead)
		db.fsCompW = sim.WithCategory(ssdsim.CatCompactionWrite)
		db.fsMeta = sim.WithCategory(ssdsim.CatOther)
		return
	}
	db.fsUser, db.fsWAL, db.fsFlush, db.fsCompR, db.fsCompW, db.fsMeta = fs, fs, fs, fs, fs, fs
}

// logFileName returns the path of this shard's WAL file num: the historical
// NNNNNN.log name in the legacy layout, SHARD-<id>-NNNNNN.log in the shared
// WAL directory of a sharded database.
func (db *store) logFileName(num uint64) string {
	if db.walShared {
		return version.ShardLogFileName(db.walDir, db.shardID, num)
	}
	return version.LogFileName(db.walDir, num)
}

// listLogs returns the WAL segment numbers belonging to this shard that are
// present in its WAL directory. In the sharded layout the directory holds
// every shard's segments; names route each segment to its shard.
func (db *store) listLogs() ([]uint64, error) {
	names, err := db.fsMeta.List(db.walDir)
	if err != nil {
		return nil, err
	}
	var logs []uint64
	for _, name := range names {
		if num, ok := db.parseLogName(name); ok {
			logs = append(logs, num)
		}
	}
	return logs, nil
}

// parseLogName reports whether a bare file name is one of this shard's WAL
// segments, and its number.
func (db *store) parseLogName(name string) (uint64, bool) {
	if db.walShared {
		sh, num, ok := version.ParseShardLogName(name)
		return num, ok && sh == db.shardID
	}
	typ, num := version.ParseFileName(name)
	return num, typ == version.TypeLog
}

// recover loads the MANIFEST then replays WALs newer than its floor.
func (db *store) recover() error {
	if err := db.set.Recover(); err != nil {
		return err
	}
	db.mem = memtable.New(db.icmp)

	all, err := db.listLogs()
	if err != nil {
		return err
	}
	floor := db.set.LogNum()
	var logs []uint64
	for _, num := range all {
		if num >= floor {
			logs = append(logs, num)
		}
	}
	sort.Slice(logs, func(i, j int) bool { return logs[i] < logs[j] })
	for _, num := range logs {
		if err := db.replayLog(num); err != nil {
			return err
		}
	}
	// The GC guard floors start at the recovered sequence: everything at or
	// below it is either in tables or in the freshly replayed memtable, and
	// any newer write will land in mem ∪ imm until a flush promotes the
	// floor (see rewriteGuardLocked).
	db.flushedThroughSeq = db.set.LastSeq()
	db.rotBoundarySeq = db.flushedThroughSeq
	// Anything replayed lives in the new memtable; if it outgrew the limit,
	// flush it straight away so the WAL floor can advance.
	if db.mem.ApproximateBytes() >= db.opts.MemTableSize {
		db.mu.Lock()
		db.imm, db.mem = db.mem, memtable.New(db.icmp)
		db.rotBoundarySeq = db.set.LastSeq()
		err := db.flushImmLocked()
		db.mu.Unlock()
		if err != nil {
			return err
		}
	}
	return nil
}

func (db *store) replayLog(num uint64) error {
	f, err := db.fsWAL.Open(db.logFileName(num))
	if err != nil {
		if err == vfs.ErrNotExist {
			return nil
		}
		return err
	}
	defer f.Close()
	r := wal.NewReader(f)
	maxSeq := db.set.LastSeq()
	for {
		rec, err := r.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			// Torn tail: records before it were applied; stop here, matching
			// LevelDB's default of trusting the log up to the tear.
			break
		}
		b, err := batch.Decode(rec)
		if err != nil {
			break
		}
		if !db.validBlobRefs(b) {
			// A pointer entry references bytes past the value log's valid
			// extent: the vlog append for this group never made it to disk,
			// so the whole batch is treated as torn (batch atomicity — the
			// WAL record may have raced ahead of the vlog write).
			break
		}
		seq := b.Sequence()
		i := keys.Seq(0)
		b.Each(func(kind keys.Kind, key, value []byte) error {
			if kind == keys.KindBlobRewrite {
				// GC rewrites are always dropped at replay: their guard was
				// evaluated against commit-time memtable state that recovery
				// cannot reconstruct. The old copy is still live (its segment
				// is only deleted after a sync barrier), so dropping loses
				// nothing; the new copy is marked dead for GC to reclaim.
				if db.vlog != nil && len(value) == 8+vlog.PointerLen {
					if p, ok := vlog.DecodePointer(value[8:]); ok && db.vlog.Valid(p) {
						db.vlog.MarkDead(p.Segment, int64(p.Length))
					}
				}
				i++
				return nil
			}
			db.mem.Add(seq+i, kind, key, value)
			i++
			return nil
		})
		if end := seq + keys.Seq(b.Count()) - 1; end > maxSeq {
			maxSeq = end
		}
	}
	db.set.SetLastSeq(maxSeq)
	return nil
}

// validBlobRefs reports whether every pointer entry in a replayed batch
// references bytes inside the value log's valid extent. Evaluated as a
// pre-pass so a batch is applied all-or-nothing.
func (db *store) validBlobRefs(b *batch.Batch) bool {
	valid := true
	b.Each(func(kind keys.Kind, key, value []byte) error {
		switch kind {
		case keys.KindBlobRef:
			p, ok := vlog.DecodePointer(value)
			if !ok || db.vlog == nil || !db.vlog.Valid(p) {
				valid = false
			}
		case keys.KindBlobRewrite:
			if len(value) != 8+vlog.PointerLen {
				valid = false
			}
		}
		return nil
	})
	return valid
}

// newLogLocked switches to a fresh WAL file. Callers guarantee exclusivity
// (Open, or write path holding mu).
func (db *store) newLogLocked() error {
	num := db.set.NewFileNum()
	raw, err := db.fsWAL.Create(db.logFileName(num))
	if err != nil {
		return err
	}
	if db.logw != nil {
		// The old writer may hold buffered frames; push them down before the
		// file is closed so the retiring WAL is complete on disk.
		if err := db.logw.Flush(); err != nil {
			return err
		}
	}
	if db.logFile != nil {
		// The retiring WAL's buffered frames were flushed above; a close
		// error on the old handle cannot lose acknowledged data.
		_ = db.logFile.Close()
	}
	db.logFile = raw
	// Buffer WAL appends inside the writer when Sync is off: the OS page
	// cache coalesces log writes under LevelDB's default, and the buffer
	// models that so the simulated device sees realistic large writes. With
	// Sync on, appends go straight through (every group fsyncs anyway).
	if db.opts.Sync {
		db.logw = wal.NewWriter(raw)
	} else {
		db.logw = wal.NewWriterSize(raw, 32<<10)
	}
	db.logNum = num
	return nil
}

// Close flushes the memtable state to disk-safe form (the WAL already holds
// it) and stops background work, draining the whole worker pool. Close is
// idempotent and safe to call concurrently: every call returns only after
// the teardown is complete, and all calls return the same result. After
// Close, the public entry points (Put, Delete, Apply, Get, GetAt, Scan,
// NewIterator, NewSnapshot) fail with ErrClosed; Stats and CurrentProfile
// keep returning the final counters.
func (db *store) Close() error {
	db.closeOnce.Do(func() {
		db.mu.Lock()
		db.stopBackgroundLocked()
		db.mu.Unlock()

		// Drain the commit front end: queued writers fail with ErrClosed; an
		// in-flight group leader (who observes closed under db.mu or via the
		// controller) finishes before Close proceeds to tear the WAL down.
		db.pipeline.Close()

		// The final WAL sync and close are the last durability points; their
		// errors are the ones a caller of Close most needs to see.
		if db.logFile != nil {
			db.closeErr = db.logw.Sync()
			if err := db.logFile.Close(); db.closeErr == nil {
				db.closeErr = err
			}
			db.logFile = nil
		}
		// Seal this shard's active vlog segment (sync + close); the Log
		// itself is shared and closed by the router after every shard.
		if db.vlogw != nil {
			if err := db.vlogw.Close(); db.closeErr == nil {
				db.closeErr = err
			}
		}
		// Reads that acquired the read state before it was retired — point
		// gets mid-probe, open iterators — still hold table readers. Wait for
		// them to drain rather than closing files under them. Open iterators
		// must therefore be closed before (or concurrently with) Close, the
		// same contract LevelDB enforces.
		if db.retired != nil {
			<-db.retired.done
		}
		db.tables.closeShard()
		if err := db.set.Close(); db.closeErr == nil {
			db.closeErr = err
		}
	})
	return db.closeErr
}

// stopBackgroundLocked marks the store closed and waits until every worker
// goroutine has exited. In-flight jobs run to completion (their claims and
// version edits resolve normally); idle workers wake, observe closed, and
// return. Callers hold db.mu. Also used by crash-simulation tests, which
// abandon the handle without a clean Close.
func (db *store) stopBackgroundLocked() {
	db.closed = true
	db.flushCond.Broadcast()
	db.workCond.Broadcast()
	db.bgCond.Broadcast()
	for db.workersRunning > 0 {
		db.bgCond.Wait()
	}
	// All republishers are drained (workers exited; rotation and commit are
	// fenced by closed), so retiring the read state here is final: readers
	// from now on observe nil and fail with ErrClosed. The retired state is
	// remembered so Close can wait for in-flight readers to drain before the
	// table cache is torn down.
	if old := db.readState.Swap(nil); old != nil {
		db.retired = old
		old.unref()
	}
}

// ---------------------------------------------------------------------------
// Writes

// Put inserts or updates a key.
func (db *store) Put(key, value []byte) error {
	b := batch.New()
	b.Set(key, value)
	err := db.Apply(b)
	if err == nil {
		db.stats.puts.Add(1)
	}
	return err
}

// Delete writes a tombstone for a key.
func (db *store) Delete(key []byte) error {
	b := batch.New()
	b.Delete(key)
	err := db.Apply(b)
	if err == nil {
		db.stats.deletes.Add(1)
	}
	return err
}

// Apply commits a batch atomically through the group-commit pipeline: the
// batch joins a write group (possibly with other concurrent committers),
// whose leader appends one WAL record, fsyncs if Options.Sync is set, and
// applies the group to the memtable (see write.go).
func (db *store) Apply(b *batch.Batch) error {
	if b.Empty() {
		return nil
	}
	start := time.Now()
	defer func() {
		d := time.Since(start)
		db.stats.writeNanos.Add(int64(d))
		db.stats.writeHist.Record(d)
	}()
	return db.pipeline.Commit(b, db.opts.Sync)
}

// ---------------------------------------------------------------------------
// Reads

// Get returns the value of key, or ErrNotFound.
func (db *store) Get(key []byte) ([]byte, error) {
	return db.getAt(key, nil)
}

// getAt reads at a pinned sequence (nil = latest). The router resolves a
// public Snapshot to this shard's captured sequence before calling in.
func (db *store) getAt(key []byte, snapSeq *keys.Seq) ([]byte, error) {
	start := time.Now()
	defer func() {
		d := time.Since(start)
		db.stats.readNanos.Add(int64(d))
		db.stats.readHist.Record(d)
	}()
	db.stats.gets.Add(1)
	if db.adaptive != nil {
		db.adaptive.observeReads(1)
	}

	// A pointer entry can race GC deleting its segment between the LSM read
	// and the vlog resolution; the rewritten pointer is already in the tree,
	// so one re-read through the LSM observes it. Bounded to keep a real
	// dangling pointer (a bug) from looping forever.
	for attempt := 0; ; attempt++ {
		val, err := db.getOnce(key, snapSeq)
		if errors.Is(err, vlog.ErrSegmentGone) && attempt < 2 {
			continue
		}
		return val, err
	}
}

// getOnce performs one LSM lookup + blob resolution pass.
func (db *store) getOnce(key []byte, snapSeq *keys.Seq) ([]byte, error) {
	// Lock-free: one atomic load + ref pins (mem, imm, version) together; the
	// visible sequence is then read from the Set's atomic counter. Entries at
	// or below that sequence were applied to a memtable before the sequence
	// was published, and every published state contains all previously
	// applied data, so the pair is always consistent.
	rs := db.loadReadState()
	if rs == nil {
		return nil, ErrClosed
	}
	defer rs.unref()
	seq := db.set.LastSeq()
	if snapSeq != nil {
		seq = *snapSeq
	}

	// Memtables. Values alias the skiplist's buffers, which outlive the
	// read state (the Go GC keeps them alive through the returned slice).
	if val, kind, found := rs.mem.GetEntry(key, seq); found {
		switch kind {
		case keys.KindDelete:
			return nil, ErrNotFound
		case keys.KindBlobRef:
			return db.resolveBlob(val)
		}
		return val, nil
	}
	if rs.imm != nil {
		if val, kind, found := rs.imm.GetEntry(key, seq); found {
			switch kind {
			case keys.KindDelete:
				return nil, ErrNotFound
			case keys.KindBlobRef:
				return db.resolveBlob(val)
			}
			return val, nil
		}
	}
	val, kind, found, err := db.versionEntry(rs.v, key, seq)
	if err != nil {
		return nil, err
	}
	if !found {
		return nil, ErrNotFound
	}
	return db.finishTableHit(val, kind)
}

// blobCacheBit namespaces decoded vlog values inside the shared block
// cache: table blocks key by (file number | shard<<48, offset) with shard
// ids below 256, so bit 63 is never set by a table-block key.
const blobCacheBit = uint64(1) << 63

// resolveBlob materializes a pointer entry's value from the value log,
// consulting the shared block cache first. The cache holds its own private
// copy and the returned slice is always another copy, so a caller mutating
// its result can never corrupt cached state.
func (db *store) resolveBlob(ptr []byte) ([]byte, error) {
	p, ok := vlog.DecodePointer(ptr)
	if !ok {
		return nil, fmt.Errorf("ldc: malformed blob pointer (%d bytes)", len(ptr))
	}
	if db.vlog == nil {
		return nil, fmt.Errorf("ldc: blob pointer %s with no value log", p)
	}
	ck := cache.Key{FileNum: p.Segment | blobCacheBit, Offset: p.Offset}
	if db.blockCache != nil {
		if v, hit := db.blockCache.Get(ck); hit {
			db.vlog.NoteResolve(true)
			return append([]byte(nil), v.([]byte)...), nil
		}
	}
	db.vlog.NoteResolve(false)
	r := db.vlog.GetReader()
	_, value, err := r.Read(p)
	if err != nil {
		r.Release()
		return nil, err
	}
	cached := append([]byte(nil), value...)
	r.Release()
	if db.blockCache != nil {
		db.blockCache.Set(ck, cached, int64(len(cached)))
	}
	return append([]byte(nil), cached...), nil
}

// readScratch carries a point get's search-key buffer; pooled so a
// steady-state get builds its search key into reused capacity.
type readScratch struct {
	sk []byte
}

var readScratchPool = sync.Pool{New: func() interface{} { return new(readScratch) }}

// versionEntry searches table files level by level and returns the winning
// raw entry (kind + stored value — for a pointer entry, the pointer bytes,
// not the resolved value). The value aliases a cached block, so callers
// must copy what they keep while still holding the read-state ref; losers
// (older versions, tombstones) are never copied. found=false with nil err
// means no table holds a visible version.
func (db *store) versionEntry(v *version.Version, key []byte, seq keys.Seq) ([]byte, keys.Kind, bool, error) {
	ucmp := db.icmp.User
	sc := readScratchPool.Get().(*readScratch)
	defer readScratchPool.Put(sc)
	// One search key per get, shared by every probed table.
	sc.sk = keys.MakeSearchKey(sc.sk[:0], key, seq)
	sk := keys.InternalKey(sc.sk)

	// L0: newest file first.
	l0 := v.Levels[0]
	for i := len(l0) - 1; i >= 0; i-- {
		f := l0[i]
		if !f.UserRange().Contains(ucmp, key) {
			continue
		}
		val, kind, _, found, err := db.tableProbe(f.Num, sk)
		if err != nil {
			return nil, 0, false, err
		}
		if found {
			return val, kind, true, nil
		}
	}

	// Sorted levels: probe slices (newest link first) then the file; when
	// several files' effective ranges cover the key (overlapping slice
	// windows), pick the candidate with the highest visible sequence.
	for level := 1; level < version.NumLevels; level++ {
		if db.opts.Policy == compaction.Tiered {
			// Tiers hold overlapping runs: check newest (highest num) first.
			// The order is precomputed per version, so nothing is sorted or
			// allocated here. Tiered levels carry no slices, so the files'
			// own ranges are their effective ranges.
			files := v.NewestFirst(level)
			if files == nil {
				// No overlapping runs in this level: at most one file can
				// contain the key, so level order works as well.
				files = v.Levels[level]
			}
			for _, f := range files {
				if !f.UserRange().Contains(ucmp, key) {
					continue
				}
				val, kind, _, found, err := db.tableProbe(f.Num, sk)
				if err != nil {
					return nil, 0, false, err
				}
				if found {
					return val, kind, true, nil
				}
			}
			continue
		}
		// Leveled (LDC/UDC): files are disjoint, so the key lives in at most
		// one file's own range — plus any slice window covering it (windows
		// of neighbouring files may overlap, so the few sliced files are
		// checked exhaustively).
		f := v.FindFile(level, key)
		sliced := v.Sliced[level]
		if f == nil && len(sliced) == 0 {
			continue
		}
		var (
			bestSeq   keys.Seq
			bestVal   []byte
			bestKind  keys.Kind
			bestFound bool
		)
		for _, sf := range sliced {
			// Slices newest-first.
			for i := len(sf.Slices) - 1; i >= 0; i-- {
				s := &sf.Slices[i]
				if !s.Range.Contains(ucmp, key) {
					continue
				}
				val, kind, entrySeq, found, err := db.tableProbe(s.FrozenNum, sk)
				if err != nil {
					return nil, 0, false, err
				}
				if found && (!bestFound || entrySeq > bestSeq) {
					bestSeq, bestVal, bestKind, bestFound = entrySeq, val, kind, true
				}
			}
		}
		if f != nil {
			val, kind, entrySeq, found, err := db.tableProbe(f.Num, sk)
			if err != nil {
				return nil, 0, false, err
			}
			if found && (!bestFound || entrySeq > bestSeq) {
				bestSeq, bestVal, bestKind, bestFound = entrySeq, val, kind, true
			}
		}
		if bestFound {
			return bestVal, bestKind, true, nil
		}
	}
	return nil, 0, false, nil
}

// finishTableHit materializes a winning table probe: tombstones become
// ErrNotFound, pointer entries resolve through the value log (already a
// private copy), and plain values — which alias a cached block — are
// copied exactly once here.
func (db *store) finishTableHit(val []byte, kind keys.Kind) ([]byte, error) {
	switch kind {
	case keys.KindDelete:
		return nil, ErrNotFound
	case keys.KindBlobRef:
		return db.resolveBlob(val)
	}
	return append([]byte(nil), val...), nil
}

// tableProbe is the per-table point lookup: bloom filter, then the reader's
// direct index→data-block probe (no iterator construction). The returned
// value aliases the cached block — callers copy only what they return. The
// entry sequence orders candidates across overlapping slice windows.
func (db *store) tableProbe(num uint64, sk keys.InternalKey) (val []byte, kind keys.Kind, entrySeq keys.Seq, found bool, err error) {
	r, err := db.tables.get(num)
	if err != nil {
		return nil, 0, 0, false, err
	}
	db.stats.bloomProbes.Add(1)
	if !r.MayContain(sk.UserKey()) {
		db.stats.bloomNegatives.Add(1)
		return nil, 0, 0, false, nil
	}
	db.stats.tableProbes.Add(1)
	return r.Probe(sk)
}

// ---------------------------------------------------------------------------
// Snapshots

type snapshotList struct {
	//ldclint:lockrank core.snapshots.mu 50
	mu   invariants.Mutex
	seqs map[keys.Seq]int
}

// snapshotSeq captures and registers this shard's current sequence for a
// snapshot. Returns ErrClosed after Close — a sequence number captured from
// a torn-down store would pin nothing. The public Snapshot (router.go)
// bundles one captured sequence per shard.
func (db *store) snapshotSeq() (keys.Seq, error) {
	// The read-state pointer doubles as the closed gate: it is retired
	// (swapped to nil) before any state a snapshot relies on is torn down.
	rs := db.loadReadState()
	if rs == nil {
		return 0, ErrClosed
	}
	defer rs.unref()
	db.snapshots.mu.Lock()
	defer db.snapshots.mu.Unlock()
	if db.snapshots.seqs == nil {
		db.snapshots.seqs = map[keys.Seq]int{}
	}
	seq := db.set.LastSeq()
	db.snapshots.seqs[seq]++
	return seq, nil
}

// releaseSeq drops one registration of a captured snapshot sequence.
func (db *store) releaseSeq(seq keys.Seq) {
	db.snapshots.mu.Lock()
	defer db.snapshots.mu.Unlock()
	if n := db.snapshots.seqs[seq]; n <= 1 {
		delete(db.snapshots.seqs, seq)
	} else {
		db.snapshots.seqs[seq] = n - 1
	}
}

// smallestSnapshot reports the oldest sequence any snapshot still needs;
// compactions must preserve versions visible at it.
func (db *store) smallestSnapshot() keys.Seq {
	db.snapshots.mu.Lock()
	defer db.snapshots.mu.Unlock()
	smallest := db.set.LastSeq()
	for seq := range db.snapshots.seqs {
		if seq < smallest {
			smallest = seq
		}
	}
	return smallest
}

// ---------------------------------------------------------------------------
// Misc accessors

// Stats returns this shard's counters as one coherent snapshot: the atomic
// counter block, the commit front end's metrics (group counts from the
// pipeline, stall accounting from the controller), and this shard's table-
// reader I/O are all gathered in a single pass here, so the router's
// aggregation reads each shard exactly once and derives every ratio from
// the summed raw counters — no field-by-field reads that could tear against
// concurrent writers. Shared-resource counters (the block cache) are folded
// in once by the router, not per shard.
func (db *store) Stats() Stats {
	s := db.stats.snapshot()
	if db.controller != nil {
		cm := db.controller.Metrics()
		s.SlowdownCount = cm.Slowdowns
		s.StopCount = cm.Stops
		s.StallTime = time.Duration(cm.StallNanos)
		s.WriteState = cm.State.String()
	}
	if db.pipeline != nil {
		pm := db.pipeline.Metrics()
		s.WriteGroupsTotal = pm.Groups
		s.WriteBatchesTotal = pm.Batches
		if pm.Groups > 0 {
			s.AvgGroupSize = float64(pm.Batches) / float64(pm.Groups)
		}
	}
	if db.tables != nil {
		s.CompressedBytesRead, s.UncompressedBytesRead = db.tables.totalIOBytes()
	}
	return s
}

// LevelProfile describes one level for diagnostics and experiments.
type LevelProfile struct {
	Level  int
	Files  int
	Bytes  int64
	Slices int
}

// Profile reports per-level shape plus LDC frozen-region state.
type Profile struct {
	Levels         []LevelProfile
	FrozenFiles    int
	FrozenBytes    int64
	SliceThreshold int
}

// CurrentProfile captures the tree's current shape.
func (db *store) CurrentProfile() Profile {
	v := db.set.Current()
	defer v.Unref()
	p := Profile{SliceThreshold: db.picker.SliceThreshold()}
	for level := 0; level < version.NumLevels; level++ {
		p.Levels = append(p.Levels, LevelProfile{
			Level:  level,
			Files:  v.NumFiles(level),
			Bytes:  v.LevelBytes(level),
			Slices: v.SliceCount(level),
		})
	}
	p.FrozenFiles = len(v.Frozen)
	p.FrozenBytes = v.FrozenBytes()
	return p
}

// BlockReads reports cumulative data-block fetches from storage (Fig 13).
func (db *store) BlockReads() int64 { return db.tables.totalBlockReads() }

// TableBytes reports the total size of live table files plus the frozen
// region — the store's disk footprint (Fig 15).
func (db *store) TableBytes() int64 {
	v := db.set.Current()
	defer v.Unref()
	var n int64
	for level := 0; level < version.NumLevels; level++ {
		n += v.LevelBytes(level)
	}
	return n + v.FrozenBytes()
}

// SliceThreshold reports the current T_s (possibly adaptive).
func (db *store) SliceThreshold() int { return db.picker.SliceThreshold() }

// Flush writes the live memtable out as a table and waits for it to land.
// Rotation is requested through the commit pipeline (the leader-exclusive
// path is the only context allowed to swap the WAL writer), so Flush is
// safe against concurrent writers — though with a continuous writer it only
// guarantees data present when the call began has reached a table.
func (db *store) Flush() error {
	for {
		db.mu.Lock()
		if db.bgErr != nil {
			err := db.bgErr
			db.mu.Unlock()
			return err
		}
		if db.closed {
			db.mu.Unlock()
			return ErrClosed
		}
		if db.mem.Empty() && db.imm == nil && !db.flushActive {
			db.mu.Unlock()
			return nil
		}
		needRotate := db.imm == nil && !db.mem.Empty()
		db.mu.Unlock()
		if needRotate {
			if err := db.forceRotate(); err != nil {
				return err
			}
		} else {
			// An imm is mid-flush; the flush worker signals on finish.
			time.Sleep(2 * time.Millisecond)
		}
	}
}

// CompactRange forces compaction work until the tree is quiescent — used by
// tests and experiments to reach a steady state. It drives the worker pool
// even when DisableAutoCompaction is set.
func (db *store) CompactRange() error {
	db.mu.Lock()
	defer db.mu.Unlock()
	db.manualWant++
	defer func() { db.manualWant-- }()
	db.workCond.Broadcast()
	for {
		if db.bgErr != nil {
			return db.bgErr
		}
		if db.closed {
			return ErrClosed
		}
		if db.imm == nil && !db.flushActive && db.compActive == 0 {
			// Quiescent moment: with no claims in flight, a None pick means
			// the tree has truly converged.
			if db.picker.Pick(db.set.CurrentNoRef()).Kind == compaction.PickNone {
				return nil
			}
			db.workCond.Broadcast()
		}
		db.bgCond.Wait()
	}
}

// WaitIdle blocks until no background work is running or immediately
// pickable: the flush worker is idle with no pending immutable memtable,
// every compaction worker has drained, and no worker is still mid
// obsolete-file cleanup (workers delete after releasing their job claim,
// so without the cleanActive term a caller could observe dead table files
// that a worker is about to remove). Returns early if the store is closed
// or poisoned by a background error.
func (db *store) WaitIdle() {
	db.mu.Lock()
	for !db.closed && db.bgErr == nil {
		if db.imm == nil && !db.flushActive && db.compActive == 0 && db.cleanActive == 0 {
			if db.opts.DisableAutoCompaction && db.manualWant == 0 {
				break
			}
			if db.picker.Pick(db.set.CurrentNoRef()).Kind == compaction.PickNone {
				break
			}
			db.workCond.Broadcast()
		}
		db.bgCond.Wait()
	}
	db.mu.Unlock()
}

func (db *store) fatal(err error) {
	if db.bgErr == nil {
		db.bgErr = fmt.Errorf("ldc: background error: %w", err)
	}
}
