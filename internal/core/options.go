// Package core implements the LSM-tree key-value store itself — the
// equivalent of LevelDB's db layer, built on the repository's substrates
// (memtable, sstable, wal, version, compaction) — with the paper's
// Lower-level Driven Compaction available as a policy beside the
// traditional upper-level driven baseline and a size-tiered lazy baseline.
package core

import (
	"runtime"
	"time"

	"repro/internal/cache"
	"repro/internal/checksum"
	"repro/internal/compaction"
	"repro/internal/compress"
	"repro/internal/keys"
	"repro/internal/vfs"
	"repro/internal/vlog"
)

// Options configures a DB. The zero value is usable: every field defaults
// to the LevelDB-like settings the paper's baseline uses.
type Options struct {
	// FS is the filesystem (possibly an ssdsim.FS). Defaults to vfs.OS().
	FS vfs.FS
	// Comparer orders user keys. Defaults to keys.BytewiseComparer.
	// LDC's slice-window arithmetic assumes bytewise successor semantics,
	// so custom comparers must be bytewise-compatible.
	Comparer keys.Comparer

	// Policy selects the compaction algorithm (UDC, LDC, Tiered).
	Policy compaction.Policy

	// Shards hash-partitions the store into this many independent engines —
	// each with its own memtable, WAL segment, group-commit pipeline, read
	// state, stall controller, and compaction claim space — behind one DB
	// facade, sharing a single block cache and table cache. 0 or 1 means
	// unsharded: the literal single engine with its historical on-disk
	// layout. Counts are rounded up to the next power of two (mirroring the
	// block cache's shard clamping) so key routing is a mask, and clamped to
	// MaxShards. The count is fixed at creation and recorded on disk
	// (LDC_SHARDS); reopening with a conflicting explicit value fails.
	Shards int

	// MemTableSize triggers a flush when the memtable reaches it (default 4 MiB).
	MemTableSize int64
	// SSTableSize is the paper's b: target table file size (default 2 MiB).
	SSTableSize int64
	// Fanout is the paper's k: capacity ratio between levels (default 10).
	Fanout int
	// BaseLevelBytes caps L1 (default Fanout × SSTableSize).
	BaseLevelBytes int64
	// SliceLinkThreshold is the paper's T_s (default Fanout). Ignored unless
	// Policy == LDC.
	SliceLinkThreshold int
	// AdaptiveThreshold enables the paper's §III-B-4 self-tuning of T_s from
	// the observed read/write mix.
	AdaptiveThreshold bool

	// L0CompactionTrigger starts an L0 compaction at this many files (default 4).
	L0CompactionTrigger int
	// L0SlowdownTrigger delays each write by 1ms at this many L0 files (default 8).
	L0SlowdownTrigger int
	// L0StopTrigger blocks writes entirely at this many L0 files (default 12).
	L0StopTrigger int

	// BlockSize is the SSTable data block size (default 4 KiB).
	BlockSize int
	// Compression selects the per-block codec for newly written tables:
	// compress.None (default), compress.Flate (stdlib DEFLATE, densest),
	// or compress.LZ4 (the from-scratch LZ4-class codec, fastest). The
	// choice applies to flushes and every compaction rewrite, so changing
	// it on reopen progressively recompresses the tree; individual
	// incompressible blocks are stored raw regardless, and tables written
	// with any codec (or by older versions) always read back.
	Compression compress.Kind
	// ChecksumKind selects the block checksum for newly written tables:
	// checksum.CRC32C (default) or checksum.XXH3 (the from-scratch
	// XXH-family hash; faster where crc32 lacks hardware support). The
	// kind is recorded per table, so mixed trees verify correctly.
	ChecksumKind checksum.Kind
	// BloomBitsPerKey sizes table filters; 0 uses the default (10);
	// negative disables filters.
	BloomBitsPerKey int
	// BlockCacheSize bounds the shared data-block cache (default 8 MiB).
	BlockCacheSize int64
	// BlockCacheShards stripes the block cache into this many locks; 0 picks
	// a count from GOMAXPROCS (see cache.DefaultShards). The count is
	// clamped down so each shard's capacity slice stays at least 4×BlockSize
	// (cache.ClampShards) — a tiny cache is never split into uselessly small
	// shards.
	BlockCacheShards int

	// CompactionParallelism sizes the compaction worker pool (default
	// max(1, GOMAXPROCS/2)). Memtable flushes always run on their own
	// dedicated worker and are not counted here. With parallelism 1 the
	// engine picks and executes compactions exactly as the serial engine
	// did; higher values let the picker hand out multiple jobs whose input
	// files and output key ranges are disjoint.
	CompactionParallelism int

	// MaxWriteGroupBytes caps the encoded size of one commit group: the
	// group leader stops absorbing queued writers once the combined WAL
	// record reaches this size (default 1 MiB).
	MaxWriteGroupBytes int

	// CompactionRateBytesPerSec caps the sustained rate of background
	// table writes (flushes, compactions, LDC merges) across the whole
	// database — one token bucket shared by every shard, charged per block
	// written. 0 (default) disables rate limiting; the scheduler then only
	// keeps per-tier accounting. See internal/iosched.
	CompactionRateBytesPerSec int64
	// CompactionRateBurstBytes caps idle token accumulation (the largest
	// instantaneous burst the limiter admits). 0 defaults to
	// max(1 MiB, CompactionRateBytesPerSec/8). Must be at least BlockSize
	// when set — a smaller bucket could never admit one block.
	CompactionRateBurstBytes int64
	// CompactionL0AgingBound bounds starvation of queued L0→L1 compaction
	// I/O: a waiter older than this competes at flush priority (default
	// 500ms). Must not exceed CompactionMergeAgingBound.
	CompactionL0AgingBound time.Duration
	// CompactionMergeAgingBound is the same bound for LDC lower-level
	// merge I/O (default 2s).
	CompactionMergeAgingBound time.Duration

	// BlobThreshold enables value separation: values at or above this many
	// bytes are appended to the shared value log (internal/vlog) inside
	// the group-commit leader's critical section, and the LSM stores a
	// 20-byte pointer entry instead — so flushes and compactions move
	// pointers, not kilobytes. 0 (default) disables separation; existing
	// vlog segments still resolve, so the knob is reopen-safe in both
	// directions. Must not exceed SSTableSize.
	BlobThreshold int64
	// BlobGCThreshold is the dead-byte fraction at which the value-log GC
	// rewrites a sealed segment, in (0, 1]. Dead bytes accrue as
	// compactions and LDC merges drop pointer entries (the same
	// slice-accounting discipline LDC applies to frozen regions). Default
	// 0.5.
	BlobGCThreshold float64
	// BlobSegmentSize is the value-log rotation threshold (default
	// 64 MiB). Small values make GC units finer at the cost of more files.
	BlobSegmentSize int64

	// Sync makes every committed write fsync the WAL (default false, like
	// LevelDB: the OS buffers).
	Sync bool
	// VerifyChecksums validates block CRCs on every read (default true).
	VerifyChecksums *bool

	// DisableAutoCompaction stops the background compactor (tests).
	DisableAutoCompaction bool
	// DisableTrivialMove forces rewrites where a metadata-only move would
	// do (ablation benchmarks).
	DisableTrivialMove bool
}

func (o Options) withDefaults() Options {
	if o.FS == nil {
		o.FS = vfs.OS()
	}
	o.Shards = normalizeShards(o.Shards)
	if o.Comparer == nil {
		o.Comparer = keys.BytewiseComparer{}
	}
	if o.MemTableSize <= 0 {
		o.MemTableSize = 4 << 20
	}
	if o.SSTableSize <= 0 {
		o.SSTableSize = 2 << 20
	}
	if o.Fanout <= 1 {
		o.Fanout = 10
	}
	if o.BaseLevelBytes <= 0 {
		o.BaseLevelBytes = int64(o.Fanout) * o.SSTableSize
	}
	if o.SliceLinkThreshold <= 0 {
		o.SliceLinkThreshold = o.Fanout
	}
	if o.L0CompactionTrigger <= 0 {
		o.L0CompactionTrigger = 4
	}
	if o.L0SlowdownTrigger <= 0 {
		o.L0SlowdownTrigger = 8
	}
	if o.L0StopTrigger <= 0 {
		o.L0StopTrigger = 12
	}
	if o.BlockSize <= 0 {
		o.BlockSize = 4 << 10
	}
	if o.BloomBitsPerKey == 0 {
		o.BloomBitsPerKey = 10
	}
	if o.BloomBitsPerKey < 0 {
		o.BloomBitsPerKey = 0 // disabled
	}
	if o.BlockCacheSize <= 0 {
		o.BlockCacheSize = 8 << 20
	}
	if o.CompactionParallelism <= 0 {
		o.CompactionParallelism = runtime.GOMAXPROCS(0) / 2
		if o.CompactionParallelism < 1 {
			o.CompactionParallelism = 1
		}
	}
	if o.MaxWriteGroupBytes <= 0 {
		o.MaxWriteGroupBytes = 1 << 20
	}
	if o.CompactionRateBytesPerSec > 0 && o.CompactionRateBurstBytes <= 0 {
		o.CompactionRateBurstBytes = o.CompactionRateBytesPerSec / 8
		if o.CompactionRateBurstBytes < 1<<20 {
			o.CompactionRateBurstBytes = 1 << 20
		}
	}
	if o.CompactionL0AgingBound <= 0 {
		o.CompactionL0AgingBound = 500 * time.Millisecond
	}
	if o.CompactionMergeAgingBound <= 0 {
		o.CompactionMergeAgingBound = 2 * time.Second
	}
	if o.BlobGCThreshold == 0 {
		o.BlobGCThreshold = 0.5
	}
	if o.BlobSegmentSize <= 0 {
		o.BlobSegmentSize = vlog.DefaultSegmentSize
	}
	if o.VerifyChecksums == nil {
		t := true
		o.VerifyChecksums = &t
	}
	return o
}

// MaxShards caps Options.Shards. Past this point per-shard memtables and
// WAL segments stop buying concurrency and start costing memory and file
// handles; a process wanting more partitions should run more processes
// (the CLUSTER direction).
const MaxShards = 256

// normalizeShards maps the user's requested shard count to the effective
// one: 0 (and 1) mean unsharded, other counts round up to the next power of
// two — mirroring cache.ClampShards' power-of-two discipline — and clamp to
// MaxShards. Negative counts are rejected by Validate before this runs.
func normalizeShards(n int) int {
	if n <= 1 {
		return 1
	}
	if n > MaxShards {
		n = MaxShards
	}
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}

func (o Options) compactionParams() compaction.Params {
	return compaction.Params{
		Fanout:             o.Fanout,
		SSTableSize:        o.SSTableSize,
		BaseLevelBytes:     o.BaseLevelBytes,
		L0Trigger:          o.L0CompactionTrigger,
		L0SlowdownTrigger:  o.L0SlowdownTrigger,
		SliceThreshold:     o.SliceLinkThreshold,
		TieredTrigger:      o.Fanout,
		DisableTrivialMove: o.DisableTrivialMove,
	}
}

func (o Options) newBlockCache() *cache.Cache {
	n := o.BlockCacheShards
	if n <= 0 {
		n = cache.DefaultShards()
	}
	// Capacity splits evenly across shards, so clamp the count to keep each
	// shard's slice well above the block size — otherwise a small cache with
	// many shards silently caches nothing.
	n = cache.ClampShards(n, o.BlockCacheSize, int64(o.BlockSize))
	return cache.NewSharded(o.BlockCacheSize, n)
}
