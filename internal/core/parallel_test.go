package core

import (
	"errors"
	"fmt"
	"math/rand"
	"runtime"
	"testing"
	"time"

	"repro/internal/compaction"
	"repro/internal/vfs"
)

// parallelOpts is smallOpts with a worker-pool size.
func parallelOpts(policy compaction.Policy, parallelism int) Options {
	opts := smallOpts(policy)
	opts.CompactionParallelism = parallelism
	return opts
}

// runWorkload fills then overwrites keys with a deterministic sequence,
// returning the model of what the store must contain. Deletions included so
// tombstone elision is exercised across concurrent jobs.
func runWorkload(t *testing.T, db *DB, seed int64, n int) map[string]string {
	t.Helper()
	model := map[string]string{}
	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < 3*n; i++ {
		k := fmt.Sprintf("key-%06d", rng.Intn(n))
		switch {
		case i%17 == 16:
			if err := db.Delete([]byte(k)); err != nil {
				t.Fatalf("Delete: %v", err)
			}
			delete(model, k)
		default:
			v := fmt.Sprintf("val-%06d-%d", i, seed)
			if err := db.Put([]byte(k), []byte(v)); err != nil {
				t.Fatalf("Put: %v", err)
			}
			model[k] = v
		}
	}
	return model
}

// checkContents verifies the store matches the model exactly, including
// absence of deleted keys.
func checkContents(t *testing.T, db *DB, model map[string]string, n int, label string) {
	t.Helper()
	for i := 0; i < n; i++ {
		k := fmt.Sprintf("key-%06d", i)
		got, err := db.Get([]byte(k))
		want, ok := model[k]
		switch {
		case ok && (err != nil || string(got) != want):
			t.Fatalf("%s: Get(%s) = %q, %v; want %q", label, k, got, err, want)
		case !ok && !errors.Is(err, ErrNotFound):
			t.Fatalf("%s: Get(%s) = %q, %v; want ErrNotFound", label, k, got, err)
		}
	}
}

// TestParallelCompactionEquivalence stresses fill + overwrite + delete under
// CompactionParallelism 1, 2, and 4 and asserts every engine converges to
// identical logical contents. The no-overlapping-inputs invariant is
// enforced at runtime: Picker.Acquire errors (poisoning the DB, which would
// fail CompactRange below) if two concurrently scheduled jobs ever claim a
// shared file or overlapping key range.
func TestParallelCompactionEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test; skipped with -short")
	}
	const n = 2000
	for _, policy := range []compaction.Policy{compaction.UDC, compaction.LDC} {
		t.Run(policy.String(), func(t *testing.T) {
			for _, par := range []int{1, 2, 4} {
				t.Run(fmt.Sprintf("parallelism=%d", par), func(t *testing.T) {
					db := openTestDB(t, parallelOpts(policy, par))
					defer db.Close()
					model := runWorkload(t, db, 42, n)
					if err := db.CompactRange(); err != nil {
						t.Fatalf("CompactRange: %v", err)
					}
					checkContents(t, db, model, n, "steady state")

					st := db.Stats()
					if len(st.WorkerCompactions) != par {
						t.Errorf("WorkerCompactions has %d slots, want %d", len(st.WorkerCompactions), par)
					}
					if st.MaxConcurrentCompactions > int64(par) {
						t.Errorf("MaxConcurrentCompactions = %d exceeds pool size %d",
							st.MaxConcurrentCompactions, par)
					}
					if st.MaxConcurrentCompactions < 1 {
						t.Errorf("MaxConcurrentCompactions = %d, want >= 1", st.MaxConcurrentCompactions)
					}

					// Reopen: the MANIFEST written by concurrent LogAndApply
					// must recover to the same contents.
					if err := db.Close(); err != nil {
						t.Fatalf("Close: %v", err)
					}
					opts := parallelOpts(policy, par)
					opts.FS = db.opts.FS
					db2 := openTestDB(t, opts)
					defer db2.Close()
					checkContents(t, db2, model, n, "after reopen")
				})
			}
		})
	}
}

// TestCloseDuringParallelCompactions is the pool-drain regression test:
// Close while N compactions are in flight must neither deadlock nor leak
// worker goroutines.
func TestCloseDuringParallelCompactions(t *testing.T) {
	before := runtime.NumGoroutine()
	for round := 0; round < 3; round++ {
		opts := parallelOpts(compaction.LDC, 4)
		db := openTestDB(t, opts)
		// Enough writes that flushes and multi-level compactions are still
		// in flight when Close lands.
		rng := rand.New(rand.NewSource(int64(round)))
		for i := 0; i < 4000; i++ {
			k := fmt.Sprintf("key-%06d", rng.Intn(1000))
			if err := db.Put([]byte(k), []byte(fmt.Sprintf("val-%08d", i))); err != nil {
				t.Fatalf("Put: %v", err)
			}
		}

		done := make(chan error, 1)
		go func() { done <- db.Close() }()
		select {
		case err := <-done:
			if err != nil {
				t.Fatalf("round %d: Close: %v", round, err)
			}
		case <-time.After(30 * time.Second):
			t.Fatalf("round %d: Close deadlocked with compactions in flight", round)
		}
		if err := db.Put([]byte("k"), []byte("v")); !errors.Is(err, ErrClosed) {
			t.Fatalf("round %d: Put after Close = %v, want ErrClosed", round, err)
		}
	}
	// Workers exit before Close returns; allow a grace period for unrelated
	// runtime goroutines to settle before declaring a leak.
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= before {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Errorf("goroutines leaked: %d before, %d after Close", before, runtime.NumGoroutine())
}

// TestCompactRangeWithAutoCompactionDisabled: CompactRange must drive the
// pool to quiescence itself when the automatic picker is off.
func TestCompactRangeWithAutoCompactionDisabled(t *testing.T) {
	opts := parallelOpts(compaction.UDC, 2)
	opts.DisableAutoCompaction = true
	db := openTestDB(t, opts)
	defer db.Close()

	model := runWorkload(t, db, 7, 500)
	if err := db.CompactRange(); err != nil {
		t.Fatalf("CompactRange: %v", err)
	}
	// Quiescent: L0 must be within its trigger now.
	if files := db.CurrentProfile().Levels[0].Files; files >= opts.L0CompactionTrigger {
		t.Errorf("L0 still has %d files after CompactRange", files)
	}
	checkContents(t, db, model, 500, "manual compaction")
}

// TestWaitIdleDrainsPool: WaitIdle must cover the whole pool, not a single
// scheduled flag.
func TestWaitIdleDrainsPool(t *testing.T) {
	db := openTestDB(t, parallelOpts(compaction.LDC, 4))
	defer db.Close()
	runWorkload(t, db, 11, 1000)
	db.WaitIdle()

	db.shards[0].mu.Lock()
	busy := db.shards[0].imm != nil || db.shards[0].flushActive || db.shards[0].compActive != 0
	inflight := db.shards[0].picker.InFlight()
	db.shards[0].mu.Unlock()
	if busy || inflight != 0 {
		t.Errorf("WaitIdle returned with work in flight (busy=%v inflight=%d)", busy, inflight)
	}
}

// TestParallelismOneMatchesSerial: with a single worker the picker never
// sees a competing in-flight claim at pick time, so every pick decision is
// the serial engine's. Verify by full ordered scans: identical workloads at
// parallelism 1 and 4 must yield byte-identical key/value sequences.
func TestParallelismOneMatchesSerial(t *testing.T) {
	scanAll := func(par int) []KV {
		opts := parallelOpts(compaction.LDC, par)
		opts.FS = vfs.Mem()
		db := openTestDB(t, opts)
		defer db.Close()
		runWorkload(t, db, 3, 1500)
		if err := db.CompactRange(); err != nil {
			t.Fatalf("parallelism %d: CompactRange: %v", par, err)
		}
		kvs, err := db.Scan(nil, 1<<20)
		if err != nil {
			t.Fatalf("parallelism %d: Scan: %v", par, err)
		}
		return kvs
	}
	base := scanAll(1)
	for _, par := range []int{2, 4} {
		got := scanAll(par)
		if len(got) != len(base) {
			t.Fatalf("parallelism %d: %d entries, serial has %d", par, len(got), len(base))
		}
		for i := range base {
			if string(got[i].Key) != string(base[i].Key) || string(got[i].Value) != string(base[i].Value) {
				t.Fatalf("parallelism %d: entry %d = (%s, %s); serial has (%s, %s)",
					par, i, got[i].Key, got[i].Value, base[i].Key, base[i].Value)
			}
		}
	}
}
