package core

import (
	"errors"
	"fmt"
	"io"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/batch"
	"repro/internal/cache"
	"repro/internal/histogram"
	"repro/internal/invariants"
	"repro/internal/iosched"
	"repro/internal/keys"
	"repro/internal/ssdsim"
	"repro/internal/version"
	"repro/internal/vfs"
	"repro/internal/vlog"
)

// DB is the public key-value store: a thin router over Options.Shards
// hash-partitioned engines (see store in db.go). Every user key lives in
// exactly one shard — routing hashes the key and masks into the shard
// table — so point operations forward to one engine, batches split into
// per-shard sub-batches committed through each shard's own group-commit
// pipeline, and ordered scans merge the shards' iterators. Shards share
// one block cache and one table cache; everything else (memtable, WAL
// segment, commit pipeline, read state, stall controller, version set,
// compaction claim space) is per shard, so shards flush, commit, and
// compact independently.
//
// Cross-shard semantics (the sequence/visibility rule):
//
//   - Sequence numbers are per shard and never compared across shards.
//   - A batch is atomic and crash-durable per shard. Apply returns only
//     after every sub-batch has committed (and fsynced, when Options.Sync
//     is set) on its shard, so a caller always reads its own completed
//     writes. A crash in the middle of a multi-shard Apply may persist
//     some shards' sub-batches and not others' — cross-shard atomicity
//     under crash is deliberately relaxed.
//   - A Snapshot captures every shard's sequence in one acquisition pass.
//     Any Apply that returned before NewSnapshot began is fully visible in
//     the snapshot; an Apply racing NewSnapshot may be partially visible
//     (per-shard consistent, not a single global cut).
//
// With Shards <= 1 the router routes everything to one engine rooted at
// the database directory itself: the identical pre-sharding engine, same
// files on disk, same behavior. All methods are safe for concurrent use.
type DB struct {
	opts Options
	dir  string

	shards []*store
	mask   uint64 // len(shards)-1; len is a power of two

	blockCache *cache.Cache
	tables     *tableCache

	// limiter schedules all shards' background (flush/compaction/merge)
	// table writes against one shared token bucket — one bucket per
	// database, not per shard, because the underlying device is shared: N
	// per-shard buckets would jointly admit N× the configured rate. nil
	// when Options.CompactionRateBytesPerSec <= 0.
	limiter *iosched.Limiter

	// vlog is the database-wide value log (WiscKey-style value separation);
	// nil when Options.BlobThreshold is 0 and no segments exist on disk.
	// The background GC worker (startValueGC) and the manual RunValueGC /
	// CompactValueLog entry points serialize passes through gcMu.
	vlog *vlog.Log
	//ldclint:lockrank core.db.gcMu 20
	gcMu   invariants.Mutex
	gcStop chan struct{}
	gcWG   sync.WaitGroup

	closeOnce sync.Once
	closeErr  error
}

// shardsFileName is the marker recording a sharded database's partition
// count; created only when Shards > 1, so an unsharded database's
// directory stays byte-identical to the pre-sharding engine's.
const shardsFileName = "LDC_SHARDS"

// Open opens (creating if necessary) a database in dir. Nonsensical
// configurations are rejected up front with an error wrapping
// ErrInvalidOptions. The shard count is fixed at creation: reopening a
// sharded database adopts the recorded count when Options.Shards is zero
// and fails on an explicit mismatch (rehashing keys into a different
// partition count would silently orphan data).
func Open(dir string, opts Options) (*DB, error) {
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	requested := opts.Shards
	opts = opts.withDefaults()
	icmp := keys.InternalComparer{User: opts.Comparer}
	meta := metaFS(opts.FS)

	if err := meta.MkdirAll(dir); err != nil {
		return nil, err
	}
	n, err := resolveShardCount(meta, dir, requested, opts.Shards)
	if err != nil {
		return nil, err
	}
	opts.Shards = n

	db := &DB{
		opts: opts,
		dir:  dir,
		mask: uint64(n - 1),
	}
	db.gcMu.Rank("core.db.gcMu", 20)
	db.blockCache = opts.newBlockCache()
	db.tables = newTableCache(userFS(opts.FS), icmp, db.blockCache, *opts.VerifyChecksums)
	if opts.CompactionRateBytesPerSec > 0 {
		db.limiter = iosched.New(iosched.Options{
			BytesPerSec: opts.CompactionRateBytesPerSec,
			Burst:       opts.CompactionRateBurstBytes,
			L0Aging:     opts.CompactionL0AgingBound,
			MergeAging:  opts.CompactionMergeAgingBound,
		})
	}

	// The value log opens when separation is enabled — or when disabled but
	// segments exist on disk, so a database that once separated values keeps
	// resolving its old pointers after the knob is turned off. With neither,
	// no vlog directory is ever created and the on-disk layout stays
	// byte-identical to the pre-separation engine's.
	vlogDir := filepath.Join(dir, "vlog")
	if opts.BlobThreshold > 0 || vlogDirHasSegments(meta, vlogDir) {
		if err := meta.MkdirAll(vlogDir); err != nil {
			db.limiter.Close()
			return nil, err
		}
		vl, err := vlog.Open(walFS(opts.FS), vlogDir, vlog.Options{
			SegmentSize: opts.BlobSegmentSize,
			ReadFS:      userFS(opts.FS),
			ScanFS:      compactionReadFS(opts.FS),
		})
		if err != nil {
			db.limiter.Close()
			return nil, err
		}
		if max := vl.MaxShard(); max >= n {
			_ = vl.Close()
			db.limiter.Close()
			return nil, fmt.Errorf("%w: value log holds segments for shard %d but the database has %d shards",
				ErrInvalidOptions, max, n)
		}
		db.vlog = vl
	}

	if n == 1 {
		st, err := openStore(storeConfig{
			dir: dir, walDir: dir, limiter: db.limiter,
			vlog: db.vlog, blockCache: db.blockCache,
		}, opts, db.tables)
		if err != nil {
			db.closeVlog()
			db.limiter.Close()
			return nil, err
		}
		db.shards = []*store{st}
		db.startValueGC()
		return db, nil
	}

	walDir := filepath.Join(dir, "wal")
	if err := meta.MkdirAll(walDir); err != nil {
		return nil, err
	}
	if err := writeShardsMarker(meta, dir, n); err != nil {
		return nil, err
	}
	for i := 0; i < n; i++ {
		st, err := openStore(storeConfig{
			dir:        filepath.Join(dir, fmt.Sprintf("shard-%d", i)),
			walDir:     walDir,
			walShared:  true,
			shardID:    i,
			limiter:    db.limiter,
			vlog:       db.vlog,
			blockCache: db.blockCache,
		}, opts, db.tables)
		if err != nil {
			for _, prev := range db.shards {
				_ = prev.Close() // unwind the partial open; the open error wins
			}
			db.closeVlog()
			db.limiter.Close()
			return nil, fmt.Errorf("ldc: open shard %d: %w", i, err)
		}
		db.shards = append(db.shards, st)
	}
	db.startValueGC()
	return db, nil
}

// vlogDirHasSegments reports whether dir holds at least one value-log
// segment file — the reopen signal that forces the log open even with
// separation disabled.
func vlogDirHasSegments(fs vfs.FS, dir string) bool {
	names, err := fs.List(dir)
	if err != nil {
		return false
	}
	for _, name := range names {
		if _, _, ok := vlog.ParseSegmentFileName(name); ok {
			return true
		}
	}
	return false
}

// metaFS derives the housekeeping I/O view (marker file, directories) from
// the configured filesystem, mirroring store.initFS's category tagging.
func metaFS(fs vfs.FS) vfs.FS {
	if sim, ok := fs.(*ssdsim.FS); ok {
		return sim.WithCategory(ssdsim.CatOther)
	}
	return fs
}

// userFS derives the user/table-read I/O view for the shared table cache.
func userFS(fs vfs.FS) vfs.FS {
	if sim, ok := fs.(*ssdsim.FS); ok {
		return sim.WithCategory(ssdsim.CatUserRead)
	}
	return fs
}

// walFS derives the log-append I/O view: value-log appends sit on the
// foreground write path exactly like WAL records, so they are accounted in
// the same device category.
func walFS(fs vfs.FS) vfs.FS {
	if sim, ok := fs.(*ssdsim.FS); ok {
		return sim.WithCategory(ssdsim.CatWAL)
	}
	return fs
}

// compactionReadFS derives the background-read I/O view for GC segment
// scans, which are relocation reads like a compaction's input reads.
func compactionReadFS(fs vfs.FS) vfs.FS {
	if sim, ok := fs.(*ssdsim.FS); ok {
		return sim.WithCategory(ssdsim.CatCompactionRead)
	}
	return fs
}

// resolveShardCount reconciles the requested shard count with the
// database's recorded one. requested is the raw Options.Shards (0 = "use
// whatever the database has"), normalized its defaulted form.
func resolveShardCount(fs vfs.FS, dir string, requested, normalized int) (int, error) {
	recorded, found, err := readShardsMarker(fs, dir)
	if err != nil {
		return 0, err
	}
	if found {
		if requested != 0 && normalized != recorded {
			return 0, fmt.Errorf("%w: Shards %d (effective %d) conflicts with the database's recorded shard count %d",
				ErrInvalidOptions, requested, normalized, recorded)
		}
		return recorded, nil
	}
	// No marker: a pre-existing unsharded database must not be silently
	// re-partitioned — its keys would hash into shards that cannot see the
	// legacy files.
	if normalized > 1 && fs.Exists(version.CurrentFileName(dir)) {
		return 0, fmt.Errorf("%w: Shards %d requested but %s holds an existing unsharded database",
			ErrInvalidOptions, requested, dir)
	}
	return normalized, nil
}

// readShardsMarker parses the LDC_SHARDS marker ("shards <n>\n").
func readShardsMarker(fs vfs.FS, dir string) (n int, found bool, err error) {
	name := filepath.Join(dir, shardsFileName)
	f, err := fs.Open(name)
	if err != nil {
		if err == vfs.ErrNotExist {
			return 0, false, nil
		}
		return 0, false, err
	}
	defer f.Close()
	size, err := f.Size()
	if err != nil {
		return 0, false, err
	}
	if size > 128 {
		return 0, false, fmt.Errorf("ldc: corrupt %s (size %d)", shardsFileName, size)
	}
	buf := make([]byte, size)
	if _, err := f.ReadAt(buf, 0); err != nil && err != io.EOF {
		return 0, false, err
	}
	fields := strings.Fields(string(buf))
	if len(fields) != 2 || fields[0] != "shards" {
		return 0, false, fmt.Errorf("ldc: corrupt %s (%q)", shardsFileName, string(buf))
	}
	n, err = strconv.Atoi(fields[1])
	if err != nil || n < 2 || n > MaxShards || n != normalizeShards(n) {
		return 0, false, fmt.Errorf("ldc: corrupt %s (shard count %q)", shardsFileName, fields[1])
	}
	return n, true, nil
}

// writeShardsMarker records the partition count; idempotent (Create
// truncates and rewrites the same content).
func writeShardsMarker(fs vfs.FS, dir string, n int) error {
	f, err := fs.Create(filepath.Join(dir, shardsFileName))
	if err != nil {
		return err
	}
	if _, err := fmt.Fprintf(f, "shards %d\n", n); err != nil {
		_ = f.Close() // discarding the partial marker
		return err
	}
	if err := f.Sync(); err != nil {
		_ = f.Close() // sync failed; its error is the one to report
		return err
	}
	return f.Close()
}

// ---------------------------------------------------------------------------
// Routing

// fnv64a is FNV-1a: a fast, allocation-free, stable hash. Stability across
// processes and versions matters — the hash decides which shard owns a key,
// and that assignment is persistent.
func fnv64a(key []byte) uint64 {
	h := uint64(14695981039346656037)
	for _, b := range key {
		h ^= uint64(b)
		h *= 1099511628211
	}
	return h
}

// shardIndex returns the owning shard's index for a user key.
func (db *DB) shardIndex(key []byte) int {
	if db.mask == 0 {
		return 0
	}
	return int(fnv64a(key) & db.mask)
}

// shardOf returns the owning shard for a user key.
func (db *DB) shardOf(key []byte) *store { return db.shards[db.shardIndex(key)] }

// NumShards reports the effective partition count.
func (db *DB) NumShards() int { return len(db.shards) }

// ShardOf reports which shard owns a key — the engine-level analogue of
// Redis Cluster's KEYSLOT, exposed so the serving layer's CLUSTER stubs
// can answer slot queries.
func (db *DB) ShardOf(key []byte) int { return db.shardIndex(key) }

// ---------------------------------------------------------------------------
// Writes

// Put inserts or updates a key.
func (db *DB) Put(key, value []byte) error { return db.shardOf(key).Put(key, value) }

// Delete writes a tombstone for a key.
func (db *DB) Delete(key []byte) error { return db.shardOf(key).Delete(key) }

// Apply commits a batch through the group-commit pipelines. A batch whose
// keys all hash to one shard commits atomically through that shard's
// pipeline with no copying. A multi-shard batch is split into per-shard
// sub-batches committed concurrently; Apply returns after every sub-batch
// is committed (per-shard atomic and durable — see the DB doc comment for
// the cross-shard relaxation), with the first error reported.
func (db *DB) Apply(b *batch.Batch) error {
	if b.Empty() {
		return nil
	}
	if len(db.shards) == 1 {
		return db.shards[0].Apply(b)
	}
	// First pass: find the owning shard set without copying anything.
	first, multi := -1, false
	_ = b.Each(func(_ keys.Kind, key, _ []byte) error {
		if i := db.shardIndex(key); first == -1 {
			first = i
		} else if i != first {
			multi = true
		}
		return nil
	})
	if !multi {
		return db.shards[first].Apply(b)
	}
	// Split and fan out. Entries keep their relative order within each
	// shard (a key's updates all land in one sub-batch, in batch order).
	subs := make([]*batch.Batch, len(db.shards))
	_ = b.Each(func(kind keys.Kind, key, value []byte) error {
		i := db.shardIndex(key)
		if subs[i] == nil {
			subs[i] = batch.New()
		}
		if kind == keys.KindDelete {
			subs[i].Delete(key)
		} else {
			subs[i].Set(key, value)
		}
		return nil
	})
	errs := make([]error, len(subs))
	var wg sync.WaitGroup
	for i, sb := range subs {
		if sb == nil {
			continue
		}
		wg.Add(1)
		go func(i int, sb *batch.Batch) {
			defer wg.Done()
			errs[i] = db.shards[i].Apply(sb)
		}(i, sb)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// ---------------------------------------------------------------------------
// Reads

// Get returns the value of key, or ErrNotFound.
func (db *DB) Get(key []byte) ([]byte, error) { return db.shardOf(key).Get(key) }

// GetAt reads at a snapshot (nil = latest).
func (db *DB) GetAt(key []byte, snap *Snapshot) ([]byte, error) {
	i := db.shardIndex(key)
	if snap == nil {
		return db.shards[i].getAt(key, nil)
	}
	return db.shards[i].getAt(key, &snap.seqs[i])
}

// Scan returns up to limit pairs with keys >= start, at the latest state.
// With multiple shards the result is the ordered merge of every shard's
// keyspace.
func (db *DB) Scan(start []byte, limit int) ([]KV, error) {
	if len(db.shards) == 1 {
		return db.shards[0].scan(start, limit)
	}
	it, err := db.NewIterator(nil)
	if err != nil {
		return nil, err
	}
	defer it.Close()
	var out []KV
	for it.Seek(start); it.Valid() && len(out) < limit; it.Next() {
		out = append(out, KV{
			Key:   append([]byte(nil), it.Key()...),
			Value: append([]byte(nil), it.Value()...),
		})
	}
	return out, it.Error()
}

// ---------------------------------------------------------------------------
// Snapshots

// Snapshot pins a point-in-time view for reads and iterators: one captured
// sequence per shard, acquired in a single pass over the shards. Writes
// that completed before NewSnapshot are fully visible; a multi-shard Apply
// racing the acquisition may be partially visible (see the DB doc
// comment).
type Snapshot struct {
	db   *DB
	seqs []keys.Seq
}

// NewSnapshot captures the current state of every shard; Release it when
// done. Returns ErrClosed after Close.
func (db *DB) NewSnapshot() (*Snapshot, error) {
	seqs := make([]keys.Seq, len(db.shards))
	for i, st := range db.shards {
		seq, err := st.snapshotSeq()
		if err != nil {
			for j := 0; j < i; j++ {
				db.shards[j].releaseSeq(seqs[j])
			}
			return nil, err
		}
		seqs[i] = seq
	}
	return &Snapshot{db: db, seqs: seqs}, nil
}

// Release frees the snapshot on every shard.
func (s *Snapshot) Release() {
	for i, st := range s.db.shards {
		st.releaseSeq(s.seqs[i])
	}
}

// ---------------------------------------------------------------------------
// Lifecycle and maintenance

// Close flushes and stops every shard. Idempotent and safe for concurrent
// use; every call returns the same result (the first error any shard
// reported).
func (db *DB) Close() error {
	db.closeOnce.Do(func() {
		// Stop the value-log GC worker before anything else: a pass in
		// flight drives shard commit pipelines and the limiter, so both
		// must outlive it.
		if db.gcStop != nil {
			close(db.gcStop)
			db.gcWG.Wait()
		}
		// Release the limiter next so shard Closes never wedge behind a
		// compaction job queued for tokens; released waiters run to
		// completion unthrottled, which is exactly what teardown wants.
		db.limiter.Close()
		for _, st := range db.shards {
			if err := st.Close(); db.closeErr == nil {
				db.closeErr = err
			}
		}
		db.closeVlog()
	})
	return db.closeErr
}

// closeVlog closes the value log (per-shard writers were already closed by
// the shards). Folds the error into closeErr; safe with no vlog.
func (db *DB) closeVlog() {
	if db.vlog == nil {
		return
	}
	if err := db.vlog.Close(); db.closeErr == nil {
		db.closeErr = err
	}
}

// ---------------------------------------------------------------------------
// Value-log garbage collection (router side)

// valueGCInterval paces the background GC worker. Dead bytes accrue only as
// compactions drop pointer entries, so there is nothing to gain from a
// tighter loop.
const valueGCInterval = 10 * time.Second

// startValueGC launches the background GC worker: every tick it asks the
// value log for segments whose dead ratio crossed Options.BlobGCThreshold
// and hands each to its owning shard. Not started when separation is off or
// background work is disabled (RunValueGC still works then).
func (db *DB) startValueGC() {
	if db.vlog == nil || db.opts.BlobThreshold <= 0 || db.opts.DisableAutoCompaction {
		return
	}
	db.gcStop = make(chan struct{})
	db.gcWG.Add(1)
	go func() {
		defer db.gcWG.Done()
		ticker := time.NewTicker(valueGCInterval)
		defer ticker.Stop()
		for {
			select {
			case <-db.gcStop:
				return
			case <-ticker.C:
				// Busy skips and close races are normal here; real I/O
				// errors already poisoned the owning shard.
				_ = db.runValueGC(db.opts.BlobGCThreshold)
			}
		}
	}()
}

// RunValueGC runs one value-log GC pass: every sealed segment whose dead
// ratio is at least Options.BlobGCThreshold has its live records relocated
// and is deleted. Segments that cannot be quiesced in time are skipped for
// a later pass, not reported as errors.
func (db *DB) RunValueGC() error { return db.runValueGC(db.opts.BlobGCThreshold) }

// CompactValueLog forces a full sweep: every sealed segment is processed
// regardless of dead ratio, relocating all live records forward. Used by
// tests and experiments to reach a minimal value-log footprint.
func (db *DB) CompactValueLog() error { return db.runValueGC(-1) }

// runValueGC is the shared pass body; threshold < 0 means every sealed
// segment. Serialized by gcMu so the ticker and manual calls never process
// one segment twice concurrently.
func (db *DB) runValueGC(threshold float64) error {
	if db.vlog == nil {
		return nil
	}
	db.gcMu.Lock()
	defer db.gcMu.Unlock()
	var nums []uint64
	if threshold < 0 {
		nums = db.vlog.SealedSegments()
	} else {
		nums = db.vlog.Candidates(threshold)
	}
	for _, num := range nums {
		shard, ok := db.vlog.SegmentShard(num)
		if !ok || shard >= len(db.shards) {
			continue // deleted since listing, or foreign shard (rejected at Open)
		}
		if err := db.shards[shard].vlogGCSegment(num); err != nil {
			if errors.Is(err, errGCBusy) {
				// Quiescing usually fails for a database-wide reason (a
				// long-lived iterator or snapshot pins every deletion), so
				// paying the barrier timeout once per segment would turn one
				// busy pass into minutes. End the pass; the next one retries.
				return nil
			}
			if errors.Is(err, ErrClosed) {
				return nil
			}
			return err
		}
	}
	return nil
}

// CompactRange forces compaction work until every shard's tree is
// quiescent — used by tests and experiments to reach a steady state.
func (db *DB) CompactRange() error {
	for _, st := range db.shards {
		if err := st.CompactRange(); err != nil {
			return err
		}
	}
	return nil
}

// Flush writes every shard's live memtable out as a table and waits for
// the flushes to land.
func (db *DB) Flush() error {
	for _, st := range db.shards {
		if err := st.Flush(); err != nil {
			return err
		}
	}
	return nil
}

// WaitIdle blocks until no shard has background work running or
// immediately pickable.
func (db *DB) WaitIdle() {
	for _, st := range db.shards {
		st.WaitIdle()
	}
}

// ---------------------------------------------------------------------------
// Introspection

// Stats aggregates all shards' counters plus the shared block cache into
// one snapshot. Each shard is read exactly once (its Stats method gathers
// everything in a single pass) and derived ratios are recomputed from the
// summed raw counters, so the aggregate never mixes numerators and
// denominators torn from different moments. Per-shard breakdowns come from
// ShardStats.
func (db *DB) Stats() Stats {
	per := make([]Stats, len(db.shards))
	for i, st := range db.shards {
		per[i] = st.Stats()
	}
	s := aggregateStats(per)
	if db.blockCache != nil {
		hits, misses := db.blockCache.Stats()
		s.BlockCacheHits, s.BlockCacheMisses = hits, misses
		if hits+misses > 0 {
			s.BlockCacheHitRatio = float64(hits) / float64(hits+misses)
		}
	}
	// The value log is shared; fold its counters in once.
	if db.vlog != nil {
		vs := db.vlog.Stats()
		s.VlogSegments = vs.Segments
		s.VlogTotalBytes = vs.TotalBytes
		s.VlogDeadBytes = vs.DeadBytes
		s.VlogLiveRatio = vs.LiveRatio()
		s.VlogAppendedBytes = vs.AppendedBytes
		s.VlogGCPasses = vs.GCPasses
		s.VlogGCBytesRewritten = vs.GCBytesRewritten
		s.VlogGCRecordsGuarded = vs.GCRecordsGuarded
		s.BlobResolves = vs.Resolves
		s.BlobResolveCacheHits = vs.ResolveCacheHits
	}
	// The I/O scheduler is shared; fold its counters in once (Metrics is
	// nil-safe, so this is zero-valued with the limiter disabled).
	im := db.limiter.Metrics()
	s.IOSchedFlushBytes = im.ChargedBytes[iosched.TierFlush]
	s.IOSchedL0Bytes = im.ChargedBytes[iosched.TierL0]
	s.IOSchedMergeBytes = im.ChargedBytes[iosched.TierMerge]
	s.IOSchedThrottledWaits = im.ThrottledWaits
	s.IOSchedThrottleTime = im.ThrottleTime
	s.IOSchedPreemptions = im.Preemptions
	s.IOSchedQueueFlush = im.QueueDepth[iosched.TierFlush]
	s.IOSchedQueueL0 = im.QueueDepth[iosched.TierL0]
	s.IOSchedQueueMerge = im.QueueDepth[iosched.TierMerge]
	// Distributions cannot be summed field-by-field: merge the shards' raw
	// histograms, then snapshot. With one shard this is a plain snapshot.
	if len(db.shards) == 1 {
		s.ReadLatency = per[0].ReadLatency
		s.WriteLatency = per[0].WriteLatency
	} else {
		var readH, writeH histogram.Histogram
		for _, st := range db.shards {
			readH.Merge(&st.stats.readHist)
			writeH.Merge(&st.stats.writeHist)
		}
		s.ReadLatency = readH.Snapshot()
		s.WriteLatency = writeH.Snapshot()
	}
	return s
}

// ShardStats returns one Stats snapshot per shard — the per-shard
// breakdown behind the aggregated Stats. Block-cache fields are zero in
// the breakdown: the cache is shared, so its counters appear once, in
// Stats.
func (db *DB) ShardStats() []Stats {
	per := make([]Stats, len(db.shards))
	for i, st := range db.shards {
		per[i] = st.Stats()
	}
	return per
}

// CurrentProfile captures the tree's current shape, summed across shards.
// SliceThreshold reports shard 0's (thresholds only diverge under adaptive
// tuning, and then only slightly).
func (db *DB) CurrentProfile() Profile {
	p := db.shards[0].CurrentProfile()
	for _, st := range db.shards[1:] {
		q := st.CurrentProfile()
		for i := range p.Levels {
			p.Levels[i].Files += q.Levels[i].Files
			p.Levels[i].Bytes += q.Levels[i].Bytes
			p.Levels[i].Slices += q.Levels[i].Slices
		}
		p.FrozenFiles += q.FrozenFiles
		p.FrozenBytes += q.FrozenBytes
	}
	return p
}

// BlockReads reports cumulative data-block fetches from storage across all
// shards (Fig 13).
func (db *DB) BlockReads() int64 {
	var n int64
	for _, st := range db.shards {
		n += st.BlockReads()
	}
	return n
}

// TableBytes reports the total size of live table files plus the frozen
// region across all shards — the store's disk footprint (Fig 15).
func (db *DB) TableBytes() int64 {
	var n int64
	for _, st := range db.shards {
		n += st.TableBytes()
	}
	return n
}

// SliceThreshold reports the current T_s (shard 0's when adaptive tuning
// has let shards diverge).
func (db *DB) SliceThreshold() int { return db.shards[0].SliceThreshold() }
