package core

import (
	"errors"
	"fmt"
)

// ErrInvalidOptions tags every configuration rejection; callers test for it
// with errors.Is and read the wrapped detail for the specific field.
var ErrInvalidOptions = errors.New("ldc: invalid options")

// minWriteGroupBytes is the floor for an explicit MaxWriteGroupBytes: a
// group must comfortably hold at least one small batch (12-byte header plus
// a key/value pair), and anything under 4 KiB degenerates the pipeline into
// one-batch groups, silently losing group commit.
const minWriteGroupBytes = 4 << 10

// Validate rejects nonsensical configurations before they turn into
// confusing runtime behaviour (a cache that caches nothing, a write group
// that can never absorb a follower, triggers that stop writes before
// slowing them). Zero values mean "use the default" throughout Options, so
// Validate rejects explicit negatives and relations that are inconsistent
// after defaulting. Open calls it; so does the server's config validation.
func (o Options) Validate() error {
	type field struct {
		name string
		v    int64
	}
	for _, f := range []field{
		{"MemTableSize", o.MemTableSize},
		{"SSTableSize", o.SSTableSize},
		{"Fanout", int64(o.Fanout)},
		{"BaseLevelBytes", o.BaseLevelBytes},
		{"SliceLinkThreshold", int64(o.SliceLinkThreshold)},
		{"L0CompactionTrigger", int64(o.L0CompactionTrigger)},
		{"L0SlowdownTrigger", int64(o.L0SlowdownTrigger)},
		{"L0StopTrigger", int64(o.L0StopTrigger)},
		{"BlockSize", int64(o.BlockSize)},
		{"BlockCacheSize", o.BlockCacheSize},
		{"BlockCacheShards", int64(o.BlockCacheShards)},
		{"CompactionParallelism", int64(o.CompactionParallelism)},
		{"MaxWriteGroupBytes", int64(o.MaxWriteGroupBytes)},
		{"Shards", int64(o.Shards)},
		{"CompactionRateBytesPerSec", o.CompactionRateBytesPerSec},
		{"CompactionRateBurstBytes", o.CompactionRateBurstBytes},
		{"CompactionL0AgingBound", int64(o.CompactionL0AgingBound)},
		{"CompactionMergeAgingBound", int64(o.CompactionMergeAgingBound)},
		{"BlobThreshold", o.BlobThreshold},
		{"BlobSegmentSize", o.BlobSegmentSize},
	} {
		// BloomBitsPerKey is deliberately absent: negative there means
		// "disable filters".
		if f.v < 0 {
			return fmt.Errorf("%w: %s is negative (%d); use 0 for the default", ErrInvalidOptions, f.name, f.v)
		}
	}
	if o.MaxWriteGroupBytes > 0 && o.MaxWriteGroupBytes < minWriteGroupBytes {
		return fmt.Errorf("%w: MaxWriteGroupBytes %d is below the %d-byte floor (a group must hold at least one batch)",
			ErrInvalidOptions, o.MaxWriteGroupBytes, minWriteGroupBytes)
	}
	// Format knobs are enums, not sizes: any value outside the registry
	// would be stamped into on-disk trailers/footers and make the table
	// unreadable, so reject it here rather than at the first flush.
	if !o.Compression.Valid() {
		return fmt.Errorf("%w: unknown Compression %d (use compress.None, Flate, or LZ4)",
			ErrInvalidOptions, uint8(o.Compression))
	}
	if !o.ChecksumKind.Valid() {
		return fmt.Errorf("%w: unknown ChecksumKind %d (use checksum.CRC32C or XXH3)",
			ErrInvalidOptions, uint8(o.ChecksumKind))
	}

	// Relational checks run on the defaulted view, so setting one trigger
	// explicitly cannot silently invert the ladder against a default.
	d := o.withDefaults()
	if d.L0CompactionTrigger > d.L0SlowdownTrigger {
		return fmt.Errorf("%w: L0CompactionTrigger %d exceeds L0SlowdownTrigger %d",
			ErrInvalidOptions, d.L0CompactionTrigger, d.L0SlowdownTrigger)
	}
	if d.L0SlowdownTrigger > d.L0StopTrigger {
		return fmt.Errorf("%w: L0SlowdownTrigger %d exceeds L0StopTrigger %d",
			ErrInvalidOptions, d.L0SlowdownTrigger, d.L0StopTrigger)
	}
	if int64(d.BlockSize) > d.SSTableSize {
		return fmt.Errorf("%w: BlockSize %d exceeds SSTableSize %d",
			ErrInvalidOptions, d.BlockSize, d.SSTableSize)
	}
	// I/O-scheduler knobs. An explicit burst below one block can never
	// admit a single write (the limiter clamps oversized requests to the
	// burst, turning every block into a full-bucket wait); an L0 aging
	// bound above the merge bound inverts the starvation ladder — aged
	// merges would outrank aged L0 work that arrived later.
	if o.CompactionRateBurstBytes > 0 && o.CompactionRateBurstBytes < int64(d.BlockSize) {
		return fmt.Errorf("%w: CompactionRateBurstBytes %d is below BlockSize %d (the bucket could never admit one block)",
			ErrInvalidOptions, o.CompactionRateBurstBytes, d.BlockSize)
	}
	if d.CompactionL0AgingBound > d.CompactionMergeAgingBound {
		return fmt.Errorf("%w: CompactionL0AgingBound %v exceeds CompactionMergeAgingBound %v (priority-aging bounds inverted)",
			ErrInvalidOptions, d.CompactionL0AgingBound, d.CompactionMergeAgingBound)
	}
	// Value-separation knobs. A threshold above the table size is
	// self-defeating (every value that could fill a table is already out of
	// the tree); a GC threshold outside (0,1] either divides by zero intent
	// (never collect) or demands more than all bytes dead. Explicit GC
	// tuning with separation disabled is almost certainly a typo'd config,
	// so reject it rather than silently never separating.
	if o.BlobThreshold > d.SSTableSize {
		return fmt.Errorf("%w: BlobThreshold %d exceeds SSTableSize %d",
			ErrInvalidOptions, o.BlobThreshold, d.SSTableSize)
	}
	if o.BlobGCThreshold != 0 && (o.BlobGCThreshold <= 0 || o.BlobGCThreshold > 1) {
		return fmt.Errorf("%w: BlobGCThreshold %v outside (0, 1]",
			ErrInvalidOptions, o.BlobGCThreshold)
	}
	if o.BlobThreshold == 0 && o.BlobGCThreshold != 0 {
		return fmt.Errorf("%w: BlobGCThreshold %v set while BlobThreshold is 0 (value separation disabled)",
			ErrInvalidOptions, o.BlobGCThreshold)
	}
	if o.BlobThreshold > 0 && o.BlobSegmentSize > 0 && o.BlobSegmentSize < o.BlobThreshold {
		return fmt.Errorf("%w: BlobSegmentSize %d is below BlobThreshold %d (a segment could not hold one value)",
			ErrInvalidOptions, o.BlobSegmentSize, o.BlobThreshold)
	}
	return nil
}
