package harness

import (
	"fmt"
	"io"
	"text/tabwriter"

	"repro/internal/compaction"
	"repro/internal/ssdsim"
	"repro/internal/vfs"
	"repro/internal/ycsb"
)

// ---------------------------------------------------------------------------
// Fig 10(a,b) — throughput across workloads

// ThroughputRow is one (workload, policy) throughput.
type ThroughputRow struct {
	Workload   string
	Policy     string
	Throughput float64
}

// ThroughputResult holds a throughput comparison with per-workload
// improvement of LDC over UDC.
type ThroughputResult struct {
	Rows []ThroughputRow
}

// Improvements maps workload → LDC/UDC − 1.
func (r *ThroughputResult) Improvements() map[string]float64 {
	udc := map[string]float64{}
	ldc := map[string]float64{}
	for _, row := range r.Rows {
		if row.Policy == "UDC" {
			udc[row.Workload] = row.Throughput
		} else if row.Policy == "LDC" {
			ldc[row.Workload] = row.Throughput
		}
	}
	out := map[string]float64{}
	for wname, u := range udc {
		if l, ok := ldc[wname]; ok && u > 0 {
			out[wname] = l/u - 1
		}
	}
	return out
}

// Print renders throughputs and improvements.
func (r *ThroughputResult) Print(out io.Writer) {
	tw := tabwriter.NewWriter(out, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "workload\tpolicy\tthroughput(ops/s)")
	for _, row := range r.Rows {
		fmt.Fprintf(tw, "%s\t%s\t%.0f\n", row.Workload, row.Policy, row.Throughput)
	}
	tw.Flush()
	for wname, imp := range r.Improvements() {
		fmt.Fprintf(out, "LDC vs UDC on %s: %+.1f%%\n", wname, imp*100)
	}
}

func runThroughput(cfg Config, workloads []ycsb.Workload) (*ThroughputResult, error) {
	res := &ThroughputResult{}
	for _, w := range workloads {
		w.ValueSize = cfg.ValueSize
		if w.WriteRatio == 0 {
			// Read-only runs are far faster per op; lengthen them so the
			// measurement is not dominated by startup noise.
			w.Ops *= 3
		}
		for _, policy := range Policies() {
			env, err := NewEnv(cfg, policy)
			if err != nil {
				return nil, err
			}
			if err := env.Load(w); err != nil {
				env.Close()
				return nil, err
			}
			r, err := env.Run(w)
			env.Close()
			if err != nil {
				return nil, err
			}
			res.Rows = append(res.Rows, ThroughputRow{
				Workload:   w.Name,
				Policy:     policy.String(),
				Throughput: r.Throughput,
			})
		}
	}
	return res, nil
}

// RunFig10a measures throughput for the GET-family workloads
// (WO/WH/RWB/RH/RO).
func RunFig10a(cfg Config) (*ThroughputResult, error) {
	return runThroughput(cfg, ycsb.PointWorkloads(cfg.Ops, cfg.KeySpace))
}

// RunFig10b measures throughput for the SCAN-family workloads.
func RunFig10b(cfg Config) (*ThroughputResult, error) {
	return runThroughput(cfg, ycsb.ScanWorkloads(cfg.Ops, cfg.KeySpace))
}

// ---------------------------------------------------------------------------
// Fig 10(c) — compaction I/O volume

// IORow is one (workload, policy) compaction I/O tally.
type IORow struct {
	Workload  string
	Policy    string
	ReadMB    float64
	WriteMB   float64
	FlushedMB float64
}

// IOResult compares compaction I/O across workloads.
type IOResult struct {
	Rows []IORow
}

// RunFig10c measures compaction read/write volume for WO, WH, RWB, SCN-RWB,
// and RH (the paper's Fig 10(c) categories).
func RunFig10c(cfg Config) (*IOResult, error) {
	workloads := []ycsb.Workload{
		ycsb.WO(cfg.Ops, cfg.KeySpace),
		ycsb.WH(cfg.Ops, cfg.KeySpace),
		ycsb.RWB(cfg.Ops, cfg.KeySpace),
		ycsb.ScnRWB(cfg.Ops, cfg.KeySpace),
		ycsb.RH(cfg.Ops, cfg.KeySpace),
	}
	res := &IOResult{}
	for _, w := range workloads {
		w.ValueSize = cfg.ValueSize
		for _, policy := range Policies() {
			env, err := NewEnv(cfg, policy)
			if err != nil {
				return nil, err
			}
			if err := env.Load(w); err != nil {
				env.Close()
				return nil, err
			}
			if _, err := env.Run(w); err != nil {
				env.Close()
				return nil, err
			}
			s := env.DB.Stats()
			env.Close()
			res.Rows = append(res.Rows, IORow{
				Workload:  w.Name,
				Policy:    policy.String(),
				ReadMB:    float64(s.CompactionReadBytes) / (1 << 20),
				WriteMB:   float64(s.CompactionWriteBytes) / (1 << 20),
				FlushedMB: float64(s.FlushWriteBytes) / (1 << 20),
			})
		}
	}
	return res, nil
}

// Print renders the I/O table.
func (r *IOResult) Print(out io.Writer) {
	tw := tabwriter.NewWriter(out, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "workload\tpolicy\tcompactRead(MB)\tcompactWrite(MB)\tflush(MB)")
	for _, row := range r.Rows {
		fmt.Fprintf(tw, "%s\t%s\t%.1f\t%.1f\t%.1f\n",
			row.Workload, row.Policy, row.ReadMB, row.WriteMB, row.FlushedMB)
	}
	tw.Flush()
}

// ---------------------------------------------------------------------------
// Fig 11 — uniform vs Zipf distributions

// RunFig11 measures RWB throughput under uniform and Zipf(1, 2, 5)
// distributions for both policies.
func RunFig11(cfg Config) (*ThroughputResult, error) {
	var workloads []ycsb.Workload
	base := ycsb.RWB(cfg.Ops, cfg.KeySpace)
	base.Name = "Uniform"
	workloads = append(workloads, base)
	for _, theta := range []float64{1, 2, 5} {
		w := ycsb.RWB(cfg.Ops, cfg.KeySpace)
		w.Dist = ycsb.Zipf(theta)
		w.Name = fmt.Sprintf("Zipf%g", theta)
		workloads = append(workloads, w)
	}
	return runThroughput(cfg, workloads)
}

// ---------------------------------------------------------------------------
// Fig 12(a,d) — SliceLink threshold sweep

// ThresholdRow is one T_s setting's outcome (LDC only).
type ThresholdRow struct {
	Threshold  int
	Throughput float64
	ReadMB     float64
	WriteMB    float64
}

// ThresholdResult sweeps T_s.
type ThresholdResult struct {
	Rows []ThresholdRow
}

// Fig12Thresholds is the sweep range around the fan-out default.
var Fig12Thresholds = []int{2, 5, 10, 20, 40}

// RunFig12a sweeps the SliceLink threshold under the RWB workload.
func RunFig12a(cfg Config) (*ThresholdResult, error) {
	res := &ThresholdResult{}
	for _, ts := range Fig12Thresholds {
		c := cfg
		c.SliceThreshold = ts
		env, err := NewEnv(c, compaction.LDC)
		if err != nil {
			return nil, err
		}
		w := ycsb.RWB(c.Ops, c.KeySpace)
		w.ValueSize = c.ValueSize
		if err := env.Load(w); err != nil {
			env.Close()
			return nil, err
		}
		r, err := env.Run(w)
		s := env.DB.Stats()
		env.Close()
		if err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, ThresholdRow{
			Threshold:  ts,
			Throughput: r.Throughput,
			ReadMB:     float64(s.CompactionReadBytes) / (1 << 20),
			WriteMB:    float64(s.CompactionWriteBytes) / (1 << 20),
		})
	}
	return res, nil
}

// Print renders the sweep.
func (r *ThresholdResult) Print(out io.Writer) {
	tw := tabwriter.NewWriter(out, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "T_s\tthroughput(ops/s)\tcompactRead(MB)\tcompactWrite(MB)")
	for _, row := range r.Rows {
		fmt.Fprintf(tw, "%d\t%.0f\t%.1f\t%.1f\n", row.Threshold, row.Throughput, row.ReadMB, row.WriteMB)
	}
	tw.Flush()
}

// ---------------------------------------------------------------------------
// Fig 12(b,e) — fan-out sweep for both policies

// Fig12bResult sweeps fan-out for UDC and LDC.
type Fig12bResult struct {
	Rows []FanoutRow
}

// RunFig12b sweeps fan-out for both policies under RWB. Request count
// scales with the fan-out so every point keeps the data volume above the
// deeper levels' capacity targets (the regime the paper's fixed-size
// store is always in).
func RunFig12b(cfg Config) (*Fig12bResult, error) {
	res := &Fig12bResult{}
	for _, k := range Fig7Fanouts {
		for _, policy := range Policies() {
			c := cfg
			c.Fanout = k
			c.SliceThreshold = k // T_s tracks fan-out, the paper's best setting
			if k > 10 {
				c.Ops = cfg.Ops * int64(k) / 10
				c.KeySpace = cfg.KeySpace * int64(k) / 10
			}
			row, err := fanoutRun(c, policy)
			if err != nil {
				return nil, err
			}
			res.Rows = append(res.Rows, row)
		}
	}
	return res, nil
}

// Print renders the sweep.
func (r *Fig12bResult) Print(out io.Writer) {
	tw := tabwriter.NewWriter(out, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "policy\tfanout\tthroughput(ops/s)\tcompactionIO(GB)")
	for _, row := range r.Rows {
		fmt.Fprintf(tw, "%s\t%d\t%.0f\t%.3f\n", row.Policy, row.Fanout, row.Throughput, row.CompactionIOGB)
	}
	tw.Flush()
}

// ---------------------------------------------------------------------------
// Fig 12(c,f) — Bloom filter size sweep

// BloomRow is one bits-per-key setting's outcome.
type BloomRow struct {
	Policy     string
	BitsPerKey int
	Throughput float64
	UserReadMB float64
}

// BloomResult sweeps filter sizes.
type BloomResult struct {
	Rows []BloomRow
}

// Fig12Blooms is the paper's 10..200 bits/key sweep.
var Fig12Blooms = []int{10, 50, 100, 200}

// RunFig12c sweeps Bloom filter bits/key under RWB for both policies.
func RunFig12c(cfg Config) (*BloomResult, error) {
	res := &BloomResult{}
	for _, bits := range Fig12Blooms {
		for _, policy := range Policies() {
			c := cfg
			c.BloomBitsPerKey = bits
			env, err := NewEnv(c, policy)
			if err != nil {
				return nil, err
			}
			w := ycsb.RWB(c.Ops, c.KeySpace)
			w.ValueSize = c.ValueSize
			if err := env.Load(w); err != nil {
				env.Close()
				return nil, err
			}
			r, err := env.Run(w)
			dev := env.Dev.Snapshot()
			env.Close()
			if err != nil {
				return nil, err
			}
			res.Rows = append(res.Rows, BloomRow{
				Policy:     policy.String(),
				BitsPerKey: bits,
				Throughput: r.Throughput,
				UserReadMB: float64(dev.ByCategory[ssdsim.CatUserRead].ReadBytes) / (1 << 20),
			})
		}
	}
	return res, nil
}

// Print renders the sweep.
func (r *BloomResult) Print(out io.Writer) {
	tw := tabwriter.NewWriter(out, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "policy\tbits/key\tthroughput(ops/s)\tuserRead(MB)")
	for _, row := range r.Rows {
		fmt.Fprintf(tw, "%s\t%d\t%.0f\t%.1f\n", row.Policy, row.BitsPerKey, row.Throughput, row.UserReadMB)
	}
	tw.Flush()
}

// ---------------------------------------------------------------------------
// Fig 13 — Bloom filter accuracy vs block reads (read-only)

// Fig13Row is one bits/key setting under the read-only workload.
type Fig13Row struct {
	BitsPerKey    int
	BlockReads    int64
	FilterBytesKB float64 // mean filter size per table
}

// Fig13Result relates filter size to data-block fetches.
type Fig13Result struct {
	Rows []Fig13Row
}

// Fig13Blooms is the paper's 2..128 bits/key range.
var Fig13Blooms = []int{2, 4, 8, 16, 32, 64, 128}

// RunFig13 loads a data set, then performs a read-only pass per filter
// size, counting data-block reads from the device.
func RunFig13(cfg Config) (*Fig13Result, error) {
	res := &Fig13Result{}
	for _, bits := range Fig13Blooms {
		c := cfg
		c.BloomBitsPerKey = bits
		c.BlockCacheSize = 1 << 20 // small cache: filters must do the work
		env, err := NewEnv(c, compaction.LDC)
		if err != nil {
			return nil, err
		}
		w := ycsb.RO(c.Ops, c.KeySpace)
		w.ValueSize = c.ValueSize
		if err := env.Load(w); err != nil {
			env.Close()
			return nil, err
		}
		before := env.DB.BlockReads()
		if _, err := env.Run(w); err != nil {
			env.Close()
			return nil, err
		}
		reads := env.DB.BlockReads() - before
		// Mean filter size: bits/key × keys per table / 8.
		keysPerTable := float64(c.SSTableSize) / float64(c.ValueSize+16)
		res.Rows = append(res.Rows, Fig13Row{
			BitsPerKey:    bits,
			BlockReads:    reads,
			FilterBytesKB: float64(bits) * keysPerTable / 8 / 1024,
		})
		env.Close()
	}
	return res, nil
}

// Print renders the relation.
func (r *Fig13Result) Print(out io.Writer) {
	tw := tabwriter.NewWriter(out, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "bits/key\tblockReads\tfilterSize(KB/table)")
	for _, row := range r.Rows {
		fmt.Fprintf(tw, "%d\t%d\t%.1f\n", row.BitsPerKey, row.BlockReads, row.FilterBytesKB)
	}
	tw.Flush()
}

// ---------------------------------------------------------------------------
// Fig 14 — scalability with request count

// ScaleRow is one request-count point.
type ScaleRow struct {
	Ops        int64
	Policy     string
	Throughput float64
	CompIOMB   float64
}

// Fig14Result sweeps total request count.
type Fig14Result struct {
	Rows []ScaleRow
}

// Fig14Factors scales cfg.Ops, mirroring the paper's 5M→30M sweep.
var Fig14Factors = []float64{0.5, 1, 2, 3}

// RunFig14 sweeps the request count for both policies under RWB.
func RunFig14(cfg Config) (*Fig14Result, error) {
	res := &Fig14Result{}
	for _, f := range Fig14Factors {
		c := cfg.ScaleOps(f)
		for _, policy := range Policies() {
			env, err := NewEnv(c, policy)
			if err != nil {
				return nil, err
			}
			w := ycsb.RWB(c.Ops, c.KeySpace)
			w.ValueSize = c.ValueSize
			if err := env.Load(w); err != nil {
				env.Close()
				return nil, err
			}
			r, err := env.Run(w)
			s := env.DB.Stats()
			env.Close()
			if err != nil {
				return nil, err
			}
			res.Rows = append(res.Rows, ScaleRow{
				Ops:        c.Ops,
				Policy:     policy.String(),
				Throughput: r.Throughput,
				CompIOMB:   float64(s.CompactionReadBytes+s.CompactionWriteBytes) / (1 << 20),
			})
		}
	}
	return res, nil
}

// Print renders the sweep.
func (r *Fig14Result) Print(out io.Writer) {
	tw := tabwriter.NewWriter(out, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "requests\tpolicy\tthroughput(ops/s)\tcompactionIO(MB)")
	for _, row := range r.Rows {
		fmt.Fprintf(tw, "%d\t%s\t%.0f\t%.1f\n", row.Ops, row.Policy, row.Throughput, row.CompIOMB)
	}
	tw.Flush()
}

// ---------------------------------------------------------------------------
// Fig 15 — space efficiency

// SpaceRow is one request-count point's final footprint.
type SpaceRow struct {
	Ops      int64
	Policy   string
	FSBytes  int64 // total bytes on the simulated device
	FrozenMB float64
}

// Fig15Result compares on-device space.
type Fig15Result struct {
	Rows []SpaceRow
}

// RunFig15 measures final space consumption across request counts for both
// policies (the paper: LDC costs 3.37%–10.0% extra).
func RunFig15(cfg Config) (*Fig15Result, error) {
	res := &Fig15Result{}
	for _, f := range Fig14Factors {
		c := cfg.ScaleOps(f)
		for _, policy := range Policies() {
			env, err := NewEnv(c, policy)
			if err != nil {
				return nil, err
			}
			w := ycsb.RWB(c.Ops, c.KeySpace)
			w.ValueSize = c.ValueSize
			if err := env.Load(w); err != nil {
				env.Close()
				return nil, err
			}
			if _, err := env.Run(w); err != nil {
				env.Close()
				return nil, err
			}
			env.DB.WaitIdle()
			total, _ := vfs.TotalBytes(env.FS)
			prof := env.DB.CurrentProfile()
			env.Close()
			res.Rows = append(res.Rows, SpaceRow{
				Ops:      c.Ops,
				Policy:   policy.String(),
				FSBytes:  total,
				FrozenMB: float64(prof.FrozenBytes) / (1 << 20),
			})
		}
	}
	return res, nil
}

// Overheads maps ops → LDC space overhead over UDC.
func (r *Fig15Result) Overheads() map[int64]float64 {
	udc := map[int64]int64{}
	ldc := map[int64]int64{}
	for _, row := range r.Rows {
		if row.Policy == "UDC" {
			udc[row.Ops] = row.FSBytes
		} else {
			ldc[row.Ops] = row.FSBytes
		}
	}
	out := map[int64]float64{}
	for ops, u := range udc {
		if l, ok := ldc[ops]; ok && u > 0 {
			out[ops] = float64(l)/float64(u) - 1
		}
	}
	return out
}

// Print renders the comparison.
func (r *Fig15Result) Print(out io.Writer) {
	tw := tabwriter.NewWriter(out, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "requests\tpolicy\tspace(MB)\tfrozen(MB)")
	for _, row := range r.Rows {
		fmt.Fprintf(tw, "%d\t%s\t%.1f\t%.1f\n", row.Ops, row.Policy,
			float64(row.FSBytes)/(1<<20), row.FrozenMB)
	}
	tw.Flush()
	for ops, ov := range r.Overheads() {
		fmt.Fprintf(out, "LDC space overhead at %d requests: %+.2f%%\n", ops, ov*100)
	}
}
