package harness

import (
	"fmt"
	"io"
	"text/tabwriter"

	"repro/internal/checksum"
	"repro/internal/compaction"
	"repro/internal/compress"
	"repro/internal/ycsb"
)

// ---------------------------------------------------------------------------
// On-disk format sweep — raw vs flate vs lz4 (the per-block compression PR)
//
// Not a paper exhibit: the paper's store writes raw blocks. This experiment
// measures what the hot format adds on top of LDC — fill throughput (the
// simulated device is the bottleneck, so fewer written bytes mean more
// ops/s), scan throughput, and the on-disk footprint per key.

// FormatRow is one (codec, value size) outcome.
type FormatRow struct {
	Codec     string
	ValueSize int
	// FillOpsPerSec is WO write throughput into an empty store.
	FillOpsPerSec float64
	// ScanOpsPerSec is range-scan throughput over the filled store.
	ScanOpsPerSec float64
	// OnDiskBytesPerKey is the compacted table footprint per distinct key.
	OnDiskBytesPerKey float64
	// CompressionRatio is uncompressed/compressed over written blocks.
	CompressionRatio float64
}

// FormatResult is the codec sweep.
type FormatResult struct {
	// Compressibility is the redundant fraction of each value used for the
	// sweep.
	Compressibility float64
	Rows            []FormatRow
}

// FormatCodecs is the swept codec list.
var FormatCodecs = []compress.Kind{compress.None, compress.Flate, compress.LZ4}

// RunFormat sweeps the block codec at 100 B and cfg.ValueSize values under
// LDC. Values are half-redundant unless cfg.ValueCompressibility says
// otherwise — pure-random values (every other experiment's default) would
// make every codec bail out to raw and measure nothing.
func RunFormat(cfg Config) (*FormatResult, error) {
	compressibility := cfg.ValueCompressibility
	if compressibility == 0 {
		compressibility = 0.5
	}
	res := &FormatResult{Compressibility: compressibility}
	for _, valueSize := range []int{100, cfg.ValueSize} {
		for _, codec := range FormatCodecs {
			c := cfg
			c.Compression = codec
			c.ValueSize = valueSize
			c.ValueCompressibility = compressibility
			if codec != compress.None {
				// Pair the fast hash with the compressed formats, as a
				// production store would; raw keeps the legacy CRC32C.
				c.ChecksumKind = checksum.XXH3
			}
			row, err := formatRun(c)
			if err != nil {
				return nil, fmt.Errorf("harness: format %v/%dB: %w", codec, valueSize, err)
			}
			res.Rows = append(res.Rows, row)
		}
	}
	return res, nil
}

func formatRun(cfg Config) (FormatRow, error) {
	env, err := NewEnv(cfg, compaction.LDC)
	if err != nil {
		return FormatRow{}, err
	}
	defer env.Close()

	// Fill phase: write-only over the whole key space, measured.
	fill := ycsb.WO(cfg.Ops, cfg.KeySpace)
	fill.ValueSize = cfg.ValueSize
	fill.Compressibility = cfg.ValueCompressibility
	fillRes, err := env.Run(fill)
	if err != nil {
		return FormatRow{}, err
	}

	// Settle to a compacted tree so the footprint is steady-state, not a
	// snapshot of pending L0 duplicates.
	if err := env.DB.CompactRange(); err != nil {
		return FormatRow{}, err
	}
	s := env.DB.Stats()
	row := FormatRow{
		Codec:             cfg.Compression.String(),
		ValueSize:         cfg.ValueSize,
		FillOpsPerSec:     fillRes.Throughput,
		OnDiskBytesPerKey: float64(env.DB.TableBytes()) / float64(cfg.KeySpace),
		CompressionRatio:  writeRatio(s),
	}

	// Scan phase: read-only range scans over the compacted store. Scans are
	// ~100× heavier than point ops, so run proportionally fewer.
	scanOps := cfg.Ops / 20
	if scanOps < 200 {
		scanOps = 200
	}
	scan := ycsb.Workload{
		Name:        "SCN-RO",
		ScanQueries: true,
		Ops:         scanOps,
		KeySpace:    cfg.KeySpace,
		ValueSize:   cfg.ValueSize,
	}
	scanRes, err := env.Run(scan)
	if err != nil {
		return FormatRow{}, err
	}
	row.ScanOpsPerSec = scanRes.Throughput
	return row, nil
}

// Print renders the sweep.
func (r *FormatResult) Print(out io.Writer) {
	fmt.Fprintf(out, "value compressibility: %.0f%%\n", 100*r.Compressibility)
	tw := tabwriter.NewWriter(out, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "codec\tvalue\tfill(ops/s)\tscan(ops/s)\tbytes/key\tratio")
	for _, row := range r.Rows {
		fmt.Fprintf(tw, "%s\t%dB\t%.0f\t%.0f\t%.0f\t%.2fx\n",
			row.Codec, row.ValueSize, row.FillOpsPerSec, row.ScanOpsPerSec,
			row.OnDiskBytesPerKey, row.CompressionRatio)
	}
	tw.Flush()
}
