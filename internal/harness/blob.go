package harness

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"text/tabwriter"

	"repro/internal/compaction"
	"repro/internal/histogram"
	"repro/internal/ycsb"
)

// ---------------------------------------------------------------------------
// Blob — value separation write-amp sweep
//
// The WiscKey argument: compaction write amplification is paid per byte the
// tree stores, so moving large values into an append-only log and leaving a
// 20-byte pointer behind shrinks the amplified payload by the value size.
// The sweep writes the same user-byte volume at each value size, once with
// separation off and once with every value separated, and compares physical
// write amplification. Small values are the honest part of the artifact:
// there the pointer and record framing are a meaningful fraction of the
// value, and the log's own bytes (plus eventual GC rewrites) eat the win.

// BlobSide is one (value size, separation setting) run's accounting.
type BlobSide struct {
	Label string

	// CompactionWriteAmp is table bytes (flush + compaction) per user byte —
	// the paper's amplification metric, with user bytes counted at original
	// value size on both sides.
	CompactionWriteAmp float64
	// DeviceWriteAmp adds the value log's appended bytes (separation and GC
	// rewrites) on top of table bytes: total background device writes per
	// user byte. The honest number for small values.
	DeviceWriteAmp float64

	TableBytes      int64
	VlogBytes       int64
	UserBytes       int64
	ValuesSeparated int64
	GCPasses        int64
	Throughput      float64

	// BytesPerKey is the quiesced on-device footprint (tables + live log
	// bytes) per distinct key — the space side of the trade.
	BytesPerKey float64
	// Latency is the foreground put-latency ladder for the run, so the
	// sweep records what separation does to write tails, not just volume.
	Latency histogram.Distribution
}

// BlobRow compares separation off vs on at one value size.
type BlobRow struct {
	ValueSize int
	Ops       int64
	Inline    BlobSide
	Separated BlobSide

	// CompactionGain is inline write-amp over separated write-amp: above 1
	// the separated side rewrote fewer table bytes per user byte.
	CompactionGain float64
	// DeviceGain is the same ratio on DeviceWriteAmp — the log's own bytes
	// included, so this is the one that can dip below 1 for small values.
	DeviceGain float64
}

// BlobResult is the sweep.
type BlobResult struct {
	Rows []BlobRow
}

// BlobValueSizes is the sweep range. 128 B sits below any sensible
// separation threshold in production but is forced through the log here to
// show where the technique stops paying; 64 KiB is the paper-scale "blob".
var BlobValueSizes = []int{128, 512, 1024, 4096, 16384, 65536}

// blobSeparateAll forces every sweep size through the value log so the
// small-value rows measure real overhead instead of silently staying inline.
const blobSeparateAll = 64

// RunBlob sweeps value size and compares write amplification with value
// separation off vs on at equal user-byte volume.
func RunBlob(cfg Config) (*BlobResult, error) {
	res := &BlobResult{}
	// Hold the user-byte volume of the preset constant across the sweep so
	// every row drives the tree through comparable compaction work; clamp
	// the op count so tiny values don't explode the run and huge values
	// still flush enough tables to compact.
	budget := cfg.Ops * int64(cfg.ValueSize)
	for _, size := range BlobValueSizes {
		ops := budget / int64(size)
		if ops > cfg.Ops {
			ops = cfg.Ops
		}
		if ops < 1000 {
			ops = 1000
		}
		c := cfg
		c.ValueSize = size
		c.Ops = ops
		if c.BlobSegmentSize == 0 {
			// The store default (64 MiB) is sized for production logs; at
			// this sweep's ~60 MiB per run nothing would ever seal and GC
			// would have no candidates. 4 MiB keeps a handful of sealed
			// segments in play so the separated side pays real GC rewrites.
			c.BlobSegmentSize = 4 << 20
		}
		// A quarter of the ops as distinct keys: every key is overwritten
		// ~4x, so compactions drop shadowed entries and (on the separated
		// side) feed the dead-byte accounting that triggers GC.
		c.KeySpace = ops / 4
		if c.KeySpace < 64 {
			c.KeySpace = 64
		}
		row := BlobRow{ValueSize: size, Ops: ops}
		for _, side := range []struct {
			label     string
			threshold int64
			dst       *BlobSide
		}{
			{"inline", 0, &row.Inline},
			{"separated", blobSeparateAll, &row.Separated},
		} {
			sc := c
			sc.BlobThreshold = side.threshold
			s, err := blobSide(sc, side.label)
			if err != nil {
				return nil, fmt.Errorf("harness: blob %dB %s: %w", size, side.label, err)
			}
			*side.dst = *s
		}
		if d := row.Separated.CompactionWriteAmp; d > 0 {
			row.CompactionGain = row.Inline.CompactionWriteAmp / d
		}
		if d := row.Separated.DeviceWriteAmp; d > 0 {
			row.DeviceGain = row.Inline.DeviceWriteAmp / d
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

func blobSide(cfg Config, label string) (*BlobSide, error) {
	env, err := NewEnv(cfg, compaction.LDC)
	if err != nil {
		return nil, err
	}
	defer env.Close()
	w := ycsb.WO(cfg.Ops, cfg.KeySpace)
	w.ValueSize = cfg.ValueSize
	r, err := env.Run(w)
	if err != nil {
		return nil, err
	}
	// Quiesce both sides at the same point before reading stats: flush and
	// compact whatever the run left buffered (without this, the separated
	// side at large values ends with every pointer still in the memtable —
	// zero table bytes and an unbounded gain ratio), then run one explicit
	// GC pass so relocation bytes land inside the measurement instead of
	// hiding past the stats read (the background ticker never fires in
	// runs this short). All no-ops where they have no work.
	if err := env.DB.Flush(); err != nil {
		return nil, err
	}
	if err := env.DB.CompactRange(); err != nil {
		return nil, err
	}
	if err := env.DB.RunValueGC(); err != nil {
		return nil, err
	}
	s := env.DB.Stats()
	table := s.FlushWriteBytes + s.CompactionWriteBytes
	side := &BlobSide{
		Label:           label,
		TableBytes:      table,
		VlogBytes:       s.VlogAppendedBytes,
		UserBytes:       s.UserWriteBytes,
		ValuesSeparated: s.BlobValuesSeparated,
		GCPasses:        s.VlogGCPasses,
		Throughput:      r.Throughput,
		BytesPerKey: (float64(env.DB.TableBytes()) +
			float64(s.VlogTotalBytes-s.VlogDeadBytes)) / float64(cfg.KeySpace),
		Latency: r.Hist.Snapshot(),
	}
	if s.UserWriteBytes > 0 {
		side.CompactionWriteAmp = float64(table) / float64(s.UserWriteBytes)
		side.DeviceWriteAmp = float64(table+s.VlogAppendedBytes) / float64(s.UserWriteBytes)
	}
	return side, nil
}

// Print renders the sweep.
func (r *BlobResult) Print(out io.Writer) {
	tw := tabwriter.NewWriter(out, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "value\tops\tWA inline\tWA blob\tgain\tdevWA inline\tdevWA blob\tdev gain\tvlog MiB\tGC passes")
	for _, row := range r.Rows {
		fmt.Fprintf(tw, "%s\t%d\t%.2f\t%.2f\t%.2fx\t%.2f\t%.2f\t%.2fx\t%.1f\t%d\n",
			sizeLabel(row.ValueSize), row.Ops,
			row.Inline.CompactionWriteAmp, row.Separated.CompactionWriteAmp, row.CompactionGain,
			row.Inline.DeviceWriteAmp, row.Separated.DeviceWriteAmp, row.DeviceGain,
			float64(row.Separated.VlogBytes)/(1<<20), row.Separated.GCPasses)
	}
	tw.Flush()
}

func sizeLabel(n int) string {
	if n >= 1<<10 && n%(1<<10) == 0 {
		return fmt.Sprintf("%dKiB", n>>10)
	}
	return fmt.Sprintf("%dB", n)
}

// WriteJSON records the sweep for CI regression tracking.
func (r *BlobResult) WriteJSON(path string) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// CheckGain enforces the separation benefit: every row at 4 KiB and above
// must show at least min x lower compaction write amplification with
// separation on. Rows below 4 KiB are reported but never gated — the
// small-value overhead is the honest part of the artifact, not a failure.
func (r *BlobResult) CheckGain(min float64) error {
	if min <= 0 {
		return nil
	}
	for _, row := range r.Rows {
		if row.ValueSize < 4096 {
			continue
		}
		if row.CompactionGain < min {
			return fmt.Errorf("harness: blob gain budget missed at %s values: %.2fx compaction write-amp reduction (budget %.2fx)",
				sizeLabel(row.ValueSize), row.CompactionGain, min)
		}
	}
	return nil
}
