package harness

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/compaction"
	"repro/internal/ycsb"
)

// The harness tests run every experiment at Quick scale, asserting basic
// shape properties rather than absolute numbers. Full-scale shapes are
// asserted by the repository benchmarks and recorded in EXPERIMENTS.md.

func TestEnvLifecycle(t *testing.T) {
	env, err := NewEnv(Quick(), compaction.LDC)
	if err != nil {
		t.Fatal(err)
	}
	w := ycsb.RWB(500, 200)
	w.ValueSize = 128
	if err := env.Load(w); err != nil {
		t.Fatal(err)
	}
	res, err := env.Run(w)
	if err != nil {
		t.Fatal(err)
	}
	if res.Ops != 500 || res.Throughput <= 0 {
		t.Errorf("result = %+v", res)
	}
	if err := env.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestRunTable1(t *testing.T) {
	r, err := RunTable1(Quick())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 4 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	var sum float64
	for _, row := range r.Rows {
		if row.Percent < 0 || row.Percent > 100 {
			t.Errorf("%s = %.1f%%", row.Module, row.Percent)
		}
		sum += row.Percent
	}
	if sum < 99 || sum > 101 {
		t.Errorf("percentages sum to %.1f", sum)
	}
	var buf bytes.Buffer
	r.Print(&buf)
	if !strings.Contains(buf.String(), "DoCompactionWork") {
		t.Error("print missing module names")
	}
}

func TestRunFig1(t *testing.T) {
	r, err := RunFig1(Quick())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Series) == 0 {
		t.Fatal("empty timeline")
	}
	var buf bytes.Buffer
	r.Print(&buf)
	if !strings.Contains(buf.String(), "fluctuation") {
		t.Error("print missing fluctuation factor")
	}
}

func TestRunFig7(t *testing.T) {
	cfg := Quick()
	cfg.Ops = 3000
	r, err := RunFig7(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != len(Fig7Fanouts) {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	for _, row := range r.Rows {
		if row.Policy != "UDC" || row.Throughput <= 0 {
			t.Errorf("row = %+v", row)
		}
	}
}

func TestRunFig8(t *testing.T) {
	r, err := RunFig8(Quick())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 2 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	for _, row := range r.Rows {
		if !(row.P90 <= row.P99 && row.P99 <= row.P999 && row.P999 <= row.P9999) {
			t.Errorf("%s percentiles not monotone: %+v", row.Policy, row)
		}
	}
}

func TestRunFig9(t *testing.T) {
	r, err := RunFig9(Quick())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 6 { // 3 workloads × 2 policies
		t.Fatalf("rows = %d", len(r.Rows))
	}
}

func TestRunFig10a(t *testing.T) {
	cfg := Quick()
	cfg.Ops = 3000
	r, err := RunFig10a(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 10 { // 5 workloads × 2 policies
		t.Fatalf("rows = %d", len(r.Rows))
	}
	imp := r.Improvements()
	if len(imp) != 5 {
		t.Errorf("improvements = %v", imp)
	}
}

func TestRunFig10b(t *testing.T) {
	cfg := Quick()
	cfg.Ops = 1500
	r, err := RunFig10b(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 6 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
}

func TestRunFig10c(t *testing.T) {
	cfg := Quick()
	cfg.Ops = 3000
	r, err := RunFig10c(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 10 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	// The write-only workload must show compaction I/O under UDC.
	for _, row := range r.Rows {
		if row.Workload == "WO" && row.Policy == "UDC" && row.WriteMB == 0 {
			t.Error("WO/UDC shows no compaction writes")
		}
	}
}

func TestRunFig11(t *testing.T) {
	cfg := Quick()
	cfg.Ops = 2000
	r, err := RunFig11(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 8 { // 4 distributions × 2 policies
		t.Fatalf("rows = %d", len(r.Rows))
	}
}

func TestRunFig12a(t *testing.T) {
	cfg := Quick()
	cfg.Ops = 2000
	r, err := RunFig12a(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != len(Fig12Thresholds) {
		t.Fatalf("rows = %d", len(r.Rows))
	}
}

func TestRunFig12b(t *testing.T) {
	cfg := Quick()
	cfg.Ops = 1500
	r, err := RunFig12b(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 2*len(Fig7Fanouts) {
		t.Fatalf("rows = %d", len(r.Rows))
	}
}

func TestRunFig12c(t *testing.T) {
	cfg := Quick()
	cfg.Ops = 1500
	r, err := RunFig12c(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 2*len(Fig12Blooms) {
		t.Fatalf("rows = %d", len(r.Rows))
	}
}

func TestRunFig13BloomReducesBlockReads(t *testing.T) {
	cfg := Quick()
	cfg.Ops = 3000
	r, err := RunFig13(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != len(Fig13Blooms) {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	// Filter size must grow with bits/key; block reads must not grow.
	first, last := r.Rows[0], r.Rows[len(r.Rows)-1]
	if last.FilterBytesKB <= first.FilterBytesKB {
		t.Error("filter size not growing with bits/key")
	}
	if last.BlockReads > first.BlockReads*2 {
		t.Errorf("block reads grew with better filters: %d -> %d",
			first.BlockReads, last.BlockReads)
	}
}

func TestRunFig14(t *testing.T) {
	cfg := Quick()
	cfg.Ops = 1500
	r, err := RunFig14(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 2*len(Fig14Factors) {
		t.Fatalf("rows = %d", len(r.Rows))
	}
}

func TestRunFig15(t *testing.T) {
	cfg := Quick()
	cfg.Ops = 2000
	r, err := RunFig15(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 2*len(Fig14Factors) {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	for _, row := range r.Rows {
		if row.FSBytes <= 0 {
			t.Errorf("zero space for %+v", row)
		}
	}
	var buf bytes.Buffer
	r.Print(&buf)
	if !strings.Contains(buf.String(), "space overhead") {
		t.Error("print missing overhead lines")
	}
}
