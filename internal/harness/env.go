package harness

import (
	"errors"
	"fmt"
	"runtime/debug"

	"repro/internal/compaction"
	"repro/internal/core"
	"repro/internal/ssdsim"
	"repro/internal/vfs"
	"repro/internal/ycsb"
)

// Env is one store instance on a fresh simulated SSD.
type Env struct {
	Cfg    Config
	Policy compaction.Policy
	FS     *ssdsim.FS
	Dev    *ssdsim.Device
	DB     *core.DB
}

// NewEnv builds a fresh store with the given policy over an in-memory
// simulated SSD.
func NewEnv(cfg Config, policy compaction.Policy) (*Env, error) {
	// Collect the previous environment's heap and return it to the OS now,
	// so its garbage is not collected *during* the next measured run and the
	// heap high-water mark (which sizes later GC cycles) resets between
	// experiments. Without this, later runs in a multi-experiment process
	// pay noticeably different GC taxes than earlier ones.
	debug.FreeOSMemory()
	dev := ssdsim.NewDevice(cfg.Device)
	fs := ssdsim.Wrap(vfs.Mem(), dev)
	db, err := core.Open("/db", core.Options{
		FS:                    fs,
		Policy:                policy,
		MemTableSize:          cfg.MemTableSize,
		SSTableSize:           cfg.SSTableSize,
		Fanout:                cfg.Fanout,
		SliceLinkThreshold:    cfg.SliceThreshold,
		BloomBitsPerKey:       cfg.BloomBitsPerKey,
		BlockCacheSize:        cfg.BlockCacheSize,
		CompactionParallelism: cfg.CompactionParallelism,
		MaxWriteGroupBytes:    cfg.MaxWriteGroupBytes,
		Shards:                cfg.Shards,
		Compression:           cfg.Compression,
		ChecksumKind:          cfg.ChecksumKind,
		AdaptiveThreshold:     cfg.AdaptiveThreshold,
		DisableTrivialMove:    cfg.DisableTrivialMove,
	})
	if err != nil {
		return nil, fmt.Errorf("harness: open %v store: %w", policy, err)
	}
	return &Env{Cfg: cfg, Policy: policy, FS: fs, Dev: dev, DB: db}, nil
}

// Ops adapts the store to the YCSB runner; not-found reads are normal.
func (e *Env) Ops() ycsb.Ops {
	return ycsb.Ops{
		Write: e.DB.Put,
		Read: func(key []byte) error {
			_, err := e.DB.Get(key)
			if errors.Is(err, core.ErrNotFound) {
				return nil
			}
			return err
		},
		Scan: func(start []byte, limit int) error {
			_, err := e.DB.Scan(start, limit)
			return err
		},
	}
}

// Load preloads the workload's key space and resets device counters so
// measurements cover only the run phase.
func (e *Env) Load(w ycsb.Workload) error {
	if err := ycsb.Load(e.Ops(), w, ycsb.RunnerOptions{Seed: e.Cfg.Seed}); err != nil {
		return err
	}
	e.DB.WaitIdle()
	e.Dev.Reset()
	return nil
}

// Run executes the workload's measured phase.
func (e *Env) Run(w ycsb.Workload) (*ycsb.Result, error) {
	return e.RunWith(w, ycsb.RunnerOptions{Seed: e.Cfg.Seed, Clients: e.Cfg.Clients})
}

// RunWith executes with explicit runner options.
func (e *Env) RunWith(w ycsb.Workload, ro ycsb.RunnerOptions) (*ycsb.Result, error) {
	res, err := ycsb.Run(e.Ops(), w, ro)
	if err != nil {
		return res, err
	}
	e.DB.WaitIdle()
	return res, nil
}

// Close shuts the store down.
func (e *Env) Close() error { return e.DB.Close() }

// Policies lists the paper's comparison pair.
func Policies() []compaction.Policy {
	return []compaction.Policy{compaction.UDC, compaction.LDC}
}
