package harness

import (
	"errors"
	"fmt"
	"runtime/debug"
	"time"

	"repro/internal/compaction"
	"repro/internal/core"
	"repro/internal/ssdsim"
	"repro/internal/vfs"
	"repro/internal/ycsb"
)

// Env is one store instance on a fresh simulated SSD.
type Env struct {
	Cfg    Config
	Policy compaction.Policy
	FS     *ssdsim.FS
	Dev    *ssdsim.Device
	DB     *core.DB

	phases []Phase
}

// Phase is the stall accounting of one workload phase: the deltas of the
// store's throttle and scheduler counters across exactly that phase, so a
// run's stalls can be attributed to loading vs measurement instead of one
// run-wide aggregate.
type Phase struct {
	Name      string
	Duration  time.Duration
	Ops       int64
	Stall     time.Duration // foreground write-path waits (delays + stops)
	Slowdowns int64
	Stops     int64
	// Throttle is background I/O time spent waiting for rate-limiter
	// tokens during the phase (zero when the limiter is disabled).
	Throttle time.Duration
}

// Phases reports the accounting of each completed Load/Run phase, in order.
func (e *Env) Phases() []Phase { return append([]Phase(nil), e.phases...) }

// trackPhase brackets fn with store-stat snapshots and records the deltas
// as one named phase.
func (e *Env) trackPhase(name string, fn func() (int64, error)) error {
	before := e.DB.Stats()
	start := time.Now()
	ops, err := fn()
	after := e.DB.Stats()
	e.phases = append(e.phases, Phase{
		Name:      name,
		Duration:  time.Since(start),
		Ops:       ops,
		Stall:     after.StallTime - before.StallTime,
		Slowdowns: after.SlowdownCount - before.SlowdownCount,
		Stops:     after.StopCount - before.StopCount,
		Throttle:  after.IOSchedThrottleTime - before.IOSchedThrottleTime,
	})
	return err
}

// NewEnv builds a fresh store with the given policy over an in-memory
// simulated SSD.
func NewEnv(cfg Config, policy compaction.Policy) (*Env, error) {
	// Collect the previous environment's heap and return it to the OS now,
	// so its garbage is not collected *during* the next measured run and the
	// heap high-water mark (which sizes later GC cycles) resets between
	// experiments. Without this, later runs in a multi-experiment process
	// pay noticeably different GC taxes than earlier ones.
	debug.FreeOSMemory()
	dev := ssdsim.NewDevice(cfg.Device)
	fs := ssdsim.Wrap(vfs.Mem(), dev)
	db, err := core.Open("/db", core.Options{
		FS:                    fs,
		Policy:                policy,
		MemTableSize:          cfg.MemTableSize,
		SSTableSize:           cfg.SSTableSize,
		Fanout:                cfg.Fanout,
		SliceLinkThreshold:    cfg.SliceThreshold,
		BloomBitsPerKey:       cfg.BloomBitsPerKey,
		BlockCacheSize:        cfg.BlockCacheSize,
		CompactionParallelism: cfg.CompactionParallelism,
		MaxWriteGroupBytes:    cfg.MaxWriteGroupBytes,
		Shards:                cfg.Shards,
		Compression:           cfg.Compression,
		ChecksumKind:          cfg.ChecksumKind,
		AdaptiveThreshold:     cfg.AdaptiveThreshold,
		DisableTrivialMove:    cfg.DisableTrivialMove,

		CompactionRateBytesPerSec: cfg.CompactionRateBytesPerSec,
		CompactionRateBurstBytes:  cfg.CompactionRateBurstBytes,

		BlobThreshold:   cfg.BlobThreshold,
		BlobGCThreshold: cfg.BlobGCThreshold,
		BlobSegmentSize: cfg.BlobSegmentSize,
	})
	if err != nil {
		return nil, fmt.Errorf("harness: open %v store: %w", policy, err)
	}
	return &Env{Cfg: cfg, Policy: policy, FS: fs, Dev: dev, DB: db}, nil
}

// Ops adapts the store to the YCSB runner; not-found reads are normal.
func (e *Env) Ops() ycsb.Ops {
	return ycsb.Ops{
		Write: e.DB.Put,
		Read: func(key []byte) error {
			_, err := e.DB.Get(key)
			if errors.Is(err, core.ErrNotFound) {
				return nil
			}
			return err
		},
		Scan: func(start []byte, limit int) error {
			_, err := e.DB.Scan(start, limit)
			return err
		},
	}
}

// Load preloads the workload's key space and resets device counters so
// measurements cover only the run phase.
func (e *Env) Load(w ycsb.Workload) error {
	err := e.trackPhase("load", func() (int64, error) {
		if err := ycsb.Load(e.Ops(), w, ycsb.RunnerOptions{Seed: e.Cfg.Seed}); err != nil {
			return 0, err
		}
		e.DB.WaitIdle()
		n := w.Preload
		if n == 0 {
			n = w.KeySpace / 2 // the runner's Preload default
		}
		return n, nil
	})
	if err != nil {
		return err
	}
	e.Dev.Reset()
	return nil
}

// Run executes the workload's measured phase.
func (e *Env) Run(w ycsb.Workload) (*ycsb.Result, error) {
	return e.RunWith(w, ycsb.RunnerOptions{Seed: e.Cfg.Seed, Clients: e.Cfg.Clients})
}

// RunWith executes with explicit runner options, waiting out background
// work afterwards so the next phase starts from a quiesced tree.
func (e *Env) RunWith(w ycsb.Workload, ro ycsb.RunnerOptions) (*ycsb.Result, error) {
	return e.RunPhase("run:"+w.Name, w, ro, false)
}

// RunPhase executes one named workload phase. With carryBacklog the
// wait-for-idle barrier is skipped, so the next phase inherits this one's
// compaction debt — how the brownout scenario hands a backlog-laden tree to
// its measured phase.
func (e *Env) RunPhase(name string, w ycsb.Workload, ro ycsb.RunnerOptions, carryBacklog bool) (*ycsb.Result, error) {
	var res *ycsb.Result
	err := e.trackPhase(name, func() (int64, error) {
		var err error
		res, err = ycsb.Run(e.Ops(), w, ro)
		if err != nil {
			return 0, err
		}
		if !carryBacklog {
			e.DB.WaitIdle()
		}
		return res.Ops, nil
	})
	return res, err
}

// Close shuts the store down.
func (e *Env) Close() error { return e.DB.Close() }

// Policies lists the paper's comparison pair.
func Policies() []compaction.Policy {
	return []compaction.Policy{compaction.UDC, compaction.LDC}
}
