// Package harness regenerates every table and figure of the paper's
// evaluation (§IV) on this repository's store and SSD simulator. Each
// RunXxx function performs the experiment and returns printable rows; the
// ldcbench command and the repository benchmarks are thin wrappers.
//
// Absolute numbers differ from the paper (the substrate is a simulator and
// the workloads are scaled down), but each experiment's *shape* — who wins,
// by roughly what factor, where the knees are — is the reproduction target;
// see EXPERIMENTS.md for paper-vs-measured.
package harness

import (
	"repro/internal/checksum"
	"repro/internal/compress"
	"repro/internal/ssdsim"
)

// Config scales an experiment. The paper runs 10–30 M requests over an
// 800 GB SSD; the defaults here shrink the tree proportionally (smaller
// memtable/SSTables, fewer requests) so the tree still reaches the same
// heights and compaction dynamics on a laptop-scale run.
type Config struct {
	// Ops is the measured request count per run.
	Ops int64
	// KeySpace is the number of distinct keys.
	KeySpace int64
	// ValueSize is the value payload (paper: 1 KiB).
	ValueSize int

	// MemTableSize and SSTableSize shape the tree (paper: 2 MiB tables).
	MemTableSize int64
	SSTableSize  int64
	// Fanout is the paper's k (default 10).
	Fanout int
	// SliceThreshold is the paper's T_s (default = Fanout).
	SliceThreshold int
	// BloomBitsPerKey sizes table filters (paper default: 10).
	BloomBitsPerKey int
	// BlockCacheSize bounds the block cache.
	BlockCacheSize int64

	// Clients is the number of concurrent workload clients. The default is
	// 1: on a single-core host, extra client goroutines add scheduler
	// jitter that swamps the policies' differences.
	Clients int
	// CompactionParallelism sizes the store's compaction worker pool. The
	// default is 1 so experiment shapes stay comparable to the paper's
	// single-compactor LevelDB baseline; the parallel-compaction benchmark
	// raises it explicitly.
	CompactionParallelism int
	// MaxWriteGroupBytes caps the commit pipeline's write groups; 0 uses the
	// store default (1 MiB). Only matters with Clients > 1.
	MaxWriteGroupBytes int
	// Shards is the number of hash-partitioned engine instances behind the
	// DB facade (0 or 1 = the single classic engine, matching the paper's
	// setup). Non-powers-of-two round up; only matters with Clients > 1,
	// where shards overlap each other's flush/compaction stalls.
	Shards int
	// Seed fixes the workload randomness.
	Seed int64

	// Device is the simulated SSD profile.
	Device ssdsim.Profile

	// Compression selects the per-block codec for written tables
	// (default raw, matching the paper's format).
	Compression compress.Kind
	// ChecksumKind selects the per-table block checksum (default CRC32C).
	ChecksumKind checksum.Kind
	// ValueCompressibility is the redundant fraction of each value
	// (0 = the incompressible xorshift values of every other experiment;
	// the format benchmarks use 0.5 so codecs have something to find).
	ValueCompressibility float64

	// BlobThreshold enables value separation: values at or above this many
	// bytes live in the value log and the tree stores pointers (0 = off,
	// the layout of every other experiment). The blob sweep sets it.
	BlobThreshold int64
	// BlobGCThreshold is the dead-byte fraction at which value-log GC
	// rewrites a segment (0 = store default).
	BlobGCThreshold float64
	// BlobSegmentSize is the value-log rotation threshold (0 = store
	// default).
	BlobSegmentSize int64

	// CompactionRateBytesPerSec caps background table-write bandwidth via
	// the store's I/O scheduler (0 = unlimited; the brownout experiment
	// sets it on one side of its comparison).
	CompactionRateBytesPerSec int64
	// CompactionRateBurstBytes bounds the limiter's idle token accumulation
	// (0 = store default).
	CompactionRateBurstBytes int64

	// AdaptiveThreshold enables §III-B-4 self-tuning in LDC runs.
	AdaptiveThreshold bool
	// DisableTrivialMove forces rewrites instead of metadata moves
	// (ablation).
	DisableTrivialMove bool
}

// Default returns the standard experiment scale: ~100k requests against a
// tree of 256 KiB tables — roughly 1/8000th of the paper's data volume with
// the same fan-out and mix parameters. One run takes a few seconds.
func Default() Config {
	dev := ssdsim.DefaultProfile()
	// Slow the device 2.5× relative to the profile so that device time
	// dominates the Go compute of this single-core environment, as the SSD
	// dominated the paper's testbed. Shapes, not absolute ops/s, are the
	// target.
	dev.Scale = 2.5
	return Config{
		Ops:             60_000,
		KeySpace:        24_000,
		ValueSize:       1024,
		MemTableSize:    256 << 10,
		SSTableSize:     256 << 10,
		Fanout:          10,
		SliceThreshold:  10,
		BloomBitsPerKey: 10,
		BlockCacheSize:  8 << 20,
		Clients:         1,

		CompactionParallelism: 1,

		Seed:   1,
		Device: dev,
	}
}

// Quick returns a reduced scale for unit tests and smoke runs (sub-second,
// no latency injection).
func Quick() Config {
	c := Default()
	c.Ops = 8_000
	c.KeySpace = 4_000
	c.ValueSize = 256
	c.MemTableSize = 32 << 10
	c.SSTableSize = 32 << 10
	c.Fanout = 4
	c.SliceThreshold = 4
	c.Device.Scale = 0
	return c
}

// ScaleOps returns a copy with the request count (and preload via key
// space) multiplied — the Fig 14/15 sweeps.
func (c Config) ScaleOps(factor float64) Config {
	c.Ops = int64(float64(c.Ops) * factor)
	return c
}
