package harness

import (
	"fmt"
	"io"
	"text/tabwriter"
	"time"

	"repro/internal/compaction"
	"repro/internal/core"
	"repro/internal/histogram"
	"repro/internal/ycsb"
)

// ---------------------------------------------------------------------------
// Table I — time breakdown of an insert-only run

// Table1Row is one line of the paper's Table I equivalent.
type Table1Row struct {
	Module  string
	Percent float64
}

// Table1Result is the regenerated Table I, plus a summary of the commit
// front end's behavior during the run (group commit and stall accounting).
type Table1Result struct {
	Rows []Table1Row

	// Commit-pipeline summary for the run.
	WriteGroups  int64
	WriteBatches int64
	AvgGroupSize float64
	WALSyncTime  time.Duration
	StallTime    time.Duration
	WriteState   string

	// Phases attributes stall time to each workload phase of the run
	// rather than one run-wide aggregate.
	Phases []Phase

	// Read-path summary for the run (the lock-free read-state refactor's
	// observability: filter effectiveness, point read amplification, view
	// republish churn, and block-cache behaviour).
	BloomProbes        int64
	BloomNegatives     int64
	PointReadAmp       float64
	ReadStatePublishes int64
	BlockCacheHitRatio float64

	// On-disk format summary (the per-block compression work): the store's
	// table footprint per distinct key after the run, and the write-side
	// compression ratio (1.0 when blocks are stored raw).
	OnDiskBytesPerKey float64
	CompressionRatio  float64
}

// RunTable1 inserts cfg.Ops keys under UDC and attributes wall time to the
// same regions the paper profiles with perf: compaction work
// (DoCompactionWork), device time (file system), the user write path
// (DoWrite), and the remainder.
func RunTable1(cfg Config) (*Table1Result, error) {
	env, err := NewEnv(cfg, compaction.UDC)
	if err != nil {
		return nil, err
	}
	defer env.Close()
	w := ycsb.WO(cfg.Ops, cfg.KeySpace)
	w.ValueSize = cfg.ValueSize
	w.Compressibility = cfg.ValueCompressibility
	start := time.Now()
	if _, err := env.Run(w); err != nil {
		return nil, err
	}
	wall := time.Since(start)

	s := env.DB.Stats()
	dev := env.Dev.Snapshot()
	total := float64(wall)
	if total <= 0 {
		total = 1
	}
	// Compaction work includes the device time its I/O spends; report the
	// paper's split by charging device time to "file system".
	fsTime := float64(dev.BusyTime) * cfg.Device.Scale
	compact := float64(s.CompactionTime) - fsTime
	if compact < 0 {
		compact = float64(s.CompactionTime)
		fsTime = 0
	}
	write := float64(s.WriteTime - s.StallTime)
	if write < 0 {
		write = 0
	}
	other := total - compact - fsTime - write
	if other < 0 {
		other = 0
	}
	norm := compact + fsTime + write + other
	return &Table1Result{
		Rows: []Table1Row{
			{Module: "DoCompactionWork", Percent: 100 * compact / norm},
			{Module: "file system (device)", Percent: 100 * fsTime / norm},
			{Module: "DoWrite", Percent: 100 * write / norm},
			{Module: "Others", Percent: 100 * other / norm},
		},
		WriteGroups:  s.WriteGroupsTotal,
		WriteBatches: s.WriteBatchesTotal,
		AvgGroupSize: s.AvgGroupSize,
		WALSyncTime:  time.Duration(s.WALSyncNanos),
		StallTime:    s.StallTime,
		WriteState:   s.WriteState,
		Phases:       env.Phases(),

		BloomProbes:        s.BloomProbes,
		BloomNegatives:     s.BloomNegatives,
		PointReadAmp:       s.PointReadAmp,
		ReadStatePublishes: s.ReadStatePublishes,
		BlockCacheHitRatio: s.BlockCacheHitRatio,

		// WO over a uniform key space touches essentially every key, so the
		// key space is the distinct-key denominator.
		OnDiskBytesPerKey: float64(env.DB.TableBytes()) / float64(cfg.KeySpace),
		CompressionRatio:  writeRatio(s),
	}, nil
}

// writeRatio is the write-side compression ratio, reading 1.0 (not 0) for
// an all-raw store so "no compression" prints sensibly.
func writeRatio(s core.Stats) float64 {
	if s.CompressedBytesWritten <= 0 {
		return 1.0
	}
	return float64(s.UncompressedBytesWritten) / float64(s.CompressedBytesWritten)
}

// Print renders the table.
func (r *Table1Result) Print(out io.Writer) {
	tw := tabwriter.NewWriter(out, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "Module\tPercent of Time")
	for _, row := range r.Rows {
		fmt.Fprintf(tw, "%s\t%.1f%%\n", row.Module, row.Percent)
	}
	tw.Flush()
	fmt.Fprintf(out, "write front end: %d groups / %d batches (avg %.2f/group), wal sync %v, stalls %v, state %s\n",
		r.WriteGroups, r.WriteBatches, r.AvgGroupSize, r.WALSyncTime, r.StallTime, r.WriteState)
	for _, p := range r.Phases {
		fmt.Fprintf(out, "phase %-10s %d ops in %v: stall %v (%d slowdowns, %d stops)\n",
			p.Name, p.Ops, p.Duration.Round(time.Millisecond), p.Stall.Round(time.Microsecond), p.Slowdowns, p.Stops)
	}
	negPct := 0.0
	if r.BloomProbes > 0 {
		negPct = 100 * float64(r.BloomNegatives) / float64(r.BloomProbes)
	}
	fmt.Fprintf(out, "read path: bloom %d probes (%.1f%% negative), point read-amp %.2f tables/get, %d read-state publishes, block-cache hit ratio %.1f%%\n",
		r.BloomProbes, negPct, r.PointReadAmp, r.ReadStatePublishes, 100*r.BlockCacheHitRatio)
	fmt.Fprintf(out, "on-disk format: %.0f bytes/key, write compression ratio %.2fx\n",
		r.OnDiskBytesPerKey, r.CompressionRatio)
}

// ---------------------------------------------------------------------------
// Fig 1 — latency fluctuation of the baseline store

// Fig1Result is the per-slot mean latency series of a mixed run on UDC.
type Fig1Result struct {
	Slot        time.Duration
	Series      []time.Duration
	Fluctuation float64 // max/min over non-empty slots (paper: 49.13×)
}

// RunFig1 performs the paper's motivation experiment: a 50/50 read/write
// mix on the traditional store, recording mean latency per time slot.
func RunFig1(cfg Config) (*Fig1Result, error) {
	env, err := NewEnv(cfg, compaction.UDC)
	if err != nil {
		return nil, err
	}
	defer env.Close()
	w := ycsb.RWB(cfg.Ops, cfg.KeySpace)
	w.ValueSize = cfg.ValueSize
	if err := env.Load(w); err != nil {
		return nil, err
	}
	slot := 50 * time.Millisecond
	res, err := env.RunWith(w, ycsb.RunnerOptions{
		Seed: cfg.Seed, Clients: cfg.Clients, TimelineSlot: slot,
	})
	if err != nil {
		return nil, err
	}
	series := res.Timeline.Series()
	return &Fig1Result{
		Slot:        slot,
		Series:      series,
		Fluctuation: histogram.FluctuationFactor(series),
	}, nil
}

// Print renders the series.
func (r *Fig1Result) Print(out io.Writer) {
	fmt.Fprintf(out, "slot=%v fluctuation=%.2fx\n", r.Slot, r.Fluctuation)
	for i, v := range r.Series {
		fmt.Fprintf(out, "t=%v\tmean=%v\n", time.Duration(i)*r.Slot, v)
	}
}

// ---------------------------------------------------------------------------
// Fig 7 — tuning UDC's fan-out alone does not work

// FanoutRow is one fan-out setting's outcome.
type FanoutRow struct {
	Policy         string
	Fanout         int
	Throughput     float64
	CompactionIOGB float64
}

// Fig7Result sweeps fan-out for UDC only (the motivation figure).
type Fig7Result struct {
	Rows []FanoutRow
}

// Fig7Fanouts is the sweep range. The paper sweeps 3–100 on an 800 GB
// store; at this repository's scaled data volume, fan-outs above 25 put
// the whole dataset inside level 1's capacity target (no deep descents
// happen for either policy), so the sweep stops at 25 — which still
// brackets the paper's optima (UDC ≈ 3, LDC ≈ 25).
var Fig7Fanouts = []int{3, 5, 10, 25}

// RunFig7 sweeps UDC's fan-out under the RWB workload.
func RunFig7(cfg Config) (*Fig7Result, error) {
	res := &Fig7Result{}
	for _, k := range Fig7Fanouts {
		c := cfg
		c.Fanout = k
		row, err := fanoutRun(c, compaction.UDC)
		if err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

func fanoutRun(cfg Config, policy compaction.Policy) (FanoutRow, error) {
	env, err := NewEnv(cfg, policy)
	if err != nil {
		return FanoutRow{}, err
	}
	defer env.Close()
	w := ycsb.RWB(cfg.Ops, cfg.KeySpace)
	w.ValueSize = cfg.ValueSize
	if err := env.Load(w); err != nil {
		return FanoutRow{}, err
	}
	r, err := env.Run(w)
	if err != nil {
		return FanoutRow{}, err
	}
	s := env.DB.Stats()
	return FanoutRow{
		Policy:         policy.String(),
		Fanout:         cfg.Fanout,
		Throughput:     r.Throughput,
		CompactionIOGB: float64(s.CompactionReadBytes+s.CompactionWriteBytes) / (1 << 30),
	}, nil
}

// Print renders the sweep.
func (r *Fig7Result) Print(out io.Writer) {
	tw := tabwriter.NewWriter(out, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "policy\tfanout\tthroughput(ops/s)\tcompactionIO(GB)")
	for _, row := range r.Rows {
		fmt.Fprintf(tw, "%s\t%d\t%.0f\t%.3f\n", row.Policy, row.Fanout, row.Throughput, row.CompactionIOGB)
	}
	tw.Flush()
}

// ---------------------------------------------------------------------------
// Fig 8 — tail latency percentiles, UDC vs LDC

// Fig8Row is one policy's percentile profile.
type Fig8Row struct {
	Policy string
	P90    time.Duration
	P99    time.Duration
	P999   time.Duration
	P9999  time.Duration
}

// Fig8Result compares write tail latency between the policies.
type Fig8Result struct {
	Rows []Fig8Row
	// P999Ratio is UDC's P99.9 over LDC's (paper: 2.62×).
	P999Ratio float64
}

// RunFig8 runs the paper's mixed random read/write workload on both
// policies and reports P90–P99.99. The extreme percentiles live in the
// top ~0.1% of samples and single runs at this scale leave too few there,
// so each policy runs three independently-seeded instances whose
// histograms are merged — the same aggregation the paper gets from its
// 20 M-request runs.
func RunFig8(cfg Config) (*Fig8Result, error) {
	res := &Fig8Result{}
	var p999 [2]time.Duration
	for i, policy := range Policies() {
		var h histogram.Histogram
		for trial := 0; trial < 3; trial++ {
			env, err := NewEnv(cfg, policy)
			if err != nil {
				return nil, err
			}
			w := ycsb.RWB(cfg.Ops, cfg.KeySpace)
			w.ValueSize = cfg.ValueSize
			if err := env.Load(w); err != nil {
				env.Close()
				return nil, err
			}
			r, err := env.RunWith(w, ycsb.RunnerOptions{
				Seed:    cfg.Seed + int64(trial)*101,
				Clients: cfg.Clients,
			})
			env.Close()
			if err != nil {
				return nil, err
			}
			h.Merge(r.Hist)
		}
		row := Fig8Row{
			Policy: policy.String(),
			P90:    h.Percentile(90),
			P99:    h.Percentile(99),
			P999:   h.Percentile(99.9),
			P9999:  h.Percentile(99.99),
		}
		p999[i] = row.P999
		res.Rows = append(res.Rows, row)
	}
	if p999[1] > 0 {
		res.P999Ratio = float64(p999[0]) / float64(p999[1])
	}
	return res, nil
}

// Print renders the percentile table.
func (r *Fig8Result) Print(out io.Writer) {
	tw := tabwriter.NewWriter(out, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "policy\tP90\tP99\tP99.9\tP99.99")
	for _, row := range r.Rows {
		fmt.Fprintf(tw, "%s\t%v\t%v\t%v\t%v\n", row.Policy, row.P90, row.P99, row.P999, row.P9999)
	}
	tw.Flush()
	fmt.Fprintf(out, "UDC/LDC P99.9 ratio: %.2fx (paper: 2.62x)\n", r.P999Ratio)
}

// ---------------------------------------------------------------------------
// Fig 9 — average latency per workload

// Fig9Row is one (workload, policy) average latency.
type Fig9Row struct {
	Workload string
	Policy   string
	Mean     time.Duration
}

// Fig9Result compares average latency across mixes.
type Fig9Result struct {
	Rows []Fig9Row
}

// RunFig9 measures average latency for WH, RWB, and RH on both policies.
func RunFig9(cfg Config) (*Fig9Result, error) {
	res := &Fig9Result{}
	mixes := []func(int64, int64) ycsb.Workload{ycsb.WH, ycsb.RWB, ycsb.RH}
	for _, mix := range mixes {
		for _, policy := range Policies() {
			env, err := NewEnv(cfg, policy)
			if err != nil {
				return nil, err
			}
			w := mix(cfg.Ops, cfg.KeySpace)
			w.ValueSize = cfg.ValueSize
			if err := env.Load(w); err != nil {
				env.Close()
				return nil, err
			}
			r, err := env.Run(w)
			env.Close()
			if err != nil {
				return nil, err
			}
			res.Rows = append(res.Rows, Fig9Row{
				Workload: w.Name,
				Policy:   policy.String(),
				Mean:     r.Hist.Mean(),
			})
		}
	}
	return res, nil
}

// Print renders the comparison.
func (r *Fig9Result) Print(out io.Writer) {
	tw := tabwriter.NewWriter(out, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "workload\tpolicy\tmean latency")
	for _, row := range r.Rows {
		fmt.Fprintf(tw, "%s\t%s\t%v\n", row.Workload, row.Policy, row.Mean)
	}
	tw.Flush()
}
