package harness

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"time"

	"repro/internal/compaction"
	"repro/internal/histogram"
	"repro/internal/ycsb"
)

// ---------------------------------------------------------------------------
// Brownout — sustained load with a compaction backlog, limiter on vs off
//
// The scenario the I/O scheduler exists for: a write burst leaves the tree
// owing a backlog of compaction work, then a mixed workload keeps arriving
// while the backlog drains. Without pacing, compaction I/O lands on the
// shared device in full-table bursts and foreground requests queue behind
// them — the tail spikes the paper's Fig 1 shows. With the limiter the same
// backlog drains at a bounded rate, trading some throughput for a bounded
// foreground tail. Both sides see the identical offered load (same seed,
// same phases); only the scheduler differs.

// BrownoutSide is one half of the comparison.
type BrownoutSide struct {
	Label           string
	RateBytesPerSec int64

	// Sustained-phase foreground results (client-observed).
	Throughput float64
	Foreground histogram.Distribution // all requests
	Reads      histogram.Distribution
	Writes     histogram.Distribution

	// Store-side accounting for the whole run.
	StallTime      time.Duration
	Slowdowns      int64
	Stops          int64
	ThrottledWaits int64
	ThrottleTime   time.Duration
	Preemptions    int64

	Phases []Phase
}

// BrownoutResult is the limiter-off vs limiter-on comparison.
type BrownoutResult struct {
	Disabled BrownoutSide
	Enabled  BrownoutSide

	// TailRatio is enabled P99.9 over disabled P99.9 for all foreground
	// requests: below 1 the limiter improved the tail.
	TailRatio float64
	// ThroughputCost is the fraction of disabled-side throughput given up
	// by the enabled side (negative means the limiter also won throughput).
	ThroughputCost float64
}

// brownoutRate is the enabled side's compaction-write budget and
// brownoutBurst its token-bucket depth. The budget sits just above the
// scenario's sustained compaction demand — the point of the exercise is
// pacing, not starvation: a much lower rate lets debt accumulate until the
// admission curve throttles the foreground worse than the bursts did, while
// a deep bucket would let whole tables through back-to-back. One SSTable of
// burst (the harness's 256 KiB tables) smooths device contention at block
// granularity and costs the enabled side no measurable throughput.
const (
	brownoutRate  = 20 << 20
	brownoutBurst = 256 << 10
)

// brownoutTrials merges this many independently-seeded runs per side: the
// P99.9 of a single 60k-request run rides on a handful of samples, so the
// comparison needs the same histogram aggregation Fig 8 uses.
const brownoutTrials = 5

// RunBrownout runs the scenario on LDC twice — limiter off, then limiter
// on at brownoutRate — and compares foreground tails at equal offered load.
func RunBrownout(cfg Config) (*BrownoutResult, error) {
	if cfg.Device.Scale <= 0 {
		// Without injected device latency every write is free and the
		// scheduler has nothing to smooth; the comparison would be noise.
		return nil, fmt.Errorf("harness: brownout needs Device.Scale > 0 (got %v)", cfg.Device.Scale)
	}
	res := &BrownoutResult{}
	for _, side := range []struct {
		label string
		rate  int64
		dst   *BrownoutSide
	}{
		{"limiter-off", 0, &res.Disabled},
		{"limiter-on", brownoutRate, &res.Enabled},
	} {
		c := cfg
		c.CompactionRateBytesPerSec = side.rate
		if side.rate > 0 {
			c.CompactionRateBurstBytes = brownoutBurst
		}
		s, err := brownoutSideTrials(c, side.label)
		if err != nil {
			return nil, err
		}
		*side.dst = *s
	}
	if d := res.Disabled.Foreground.P999; d > 0 {
		res.TailRatio = float64(res.Enabled.Foreground.P999) / float64(d)
	}
	if d := res.Disabled.Throughput; d > 0 {
		res.ThroughputCost = 1 - res.Enabled.Throughput/d
	}
	return res, nil
}

// brownoutSideTrials runs one side brownoutTrials times with distinct seeds
// and merges the raw histograms (distributions cannot be merged after the
// fact); counters sum, throughput averages, phases concatenate in order.
func brownoutSideTrials(cfg Config, label string) (*BrownoutSide, error) {
	agg := &BrownoutSide{Label: label, RateBytesPerSec: cfg.CompactionRateBytesPerSec}
	var all, reads, writes histogram.Histogram
	for trial := 0; trial < brownoutTrials; trial++ {
		c := cfg
		c.Seed = cfg.Seed + int64(trial)*101
		s, h, err := brownoutSide(c, label)
		if err != nil {
			return nil, err
		}
		all.Merge(h.all)
		reads.Merge(h.reads)
		writes.Merge(h.writes)
		agg.Throughput += s.Throughput / brownoutTrials
		agg.StallTime += s.StallTime
		agg.Slowdowns += s.Slowdowns
		agg.Stops += s.Stops
		agg.ThrottledWaits += s.ThrottledWaits
		agg.ThrottleTime += s.ThrottleTime
		agg.Preemptions += s.Preemptions
		agg.Phases = append(agg.Phases, s.Phases...)
	}
	agg.Foreground = all.Snapshot()
	agg.Reads = reads.Snapshot()
	agg.Writes = writes.Snapshot()
	return agg, nil
}

// sideHists carries one trial's raw histograms up to the merge.
type sideHists struct {
	all, reads, writes *histogram.Histogram
}

func brownoutSide(cfg Config, label string) (*BrownoutSide, *sideHists, error) {
	// The scenario needs concurrent foreground requests: with one closed-loop
	// client nothing queues behind a compaction burst, and the tail the
	// scheduler exists to bound never forms. Respect a larger explicit count.
	clients := cfg.Clients
	if clients < 4 {
		clients = 4
	}
	env, err := NewEnv(cfg, compaction.LDC)
	if err != nil {
		return nil, nil, err
	}
	defer env.Close()

	// Fill: a write-only burst over the full key space, deliberately left
	// undrained (carryBacklog) so the measured phase starts with the tree
	// owing L0 and deep-level work.
	fill := ycsb.WO(cfg.Ops/2, cfg.KeySpace)
	fill.ValueSize = cfg.ValueSize
	if _, err := env.RunPhase("fill", fill, ycsb.RunnerOptions{Seed: cfg.Seed, Clients: clients}, true); err != nil {
		return nil, nil, err
	}

	// Sustained: the paper's balanced mix arrives while the backlog drains.
	sustained := ycsb.RWB(cfg.Ops, cfg.KeySpace)
	sustained.ValueSize = cfg.ValueSize
	r, err := env.RunPhase("sustained", sustained, ycsb.RunnerOptions{Seed: cfg.Seed, Clients: clients}, false)
	if err != nil {
		return nil, nil, err
	}

	s := env.DB.Stats()
	return &BrownoutSide{
		Label:           label,
		RateBytesPerSec: cfg.CompactionRateBytesPerSec,
		Throughput:      r.Throughput,
		StallTime:       s.StallTime,
		Slowdowns:       s.SlowdownCount,
		Stops:           s.StopCount,
		ThrottledWaits:  s.IOSchedThrottledWaits,
		ThrottleTime:    s.IOSchedThrottleTime,
		Preemptions:     s.IOSchedPreemptions,
		Phases:          env.Phases(),
	}, &sideHists{all: r.Hist, reads: r.ReadHist, writes: r.WriteHist}, nil
}

// Print renders the comparison.
func (r *BrownoutResult) Print(out io.Writer) {
	for _, s := range []*BrownoutSide{&r.Disabled, &r.Enabled} {
		rate := "unlimited"
		if s.RateBytesPerSec > 0 {
			rate = fmt.Sprintf("%.1f MiB/s", float64(s.RateBytesPerSec)/(1<<20))
		}
		fmt.Fprintf(out, "%s (compaction rate %s): %.0f ops/s\n", s.Label, rate, s.Throughput)
		fmt.Fprintf(out, "  foreground: %s\n", s.Foreground)
		fmt.Fprintf(out, "  stalls %v (%d slowdowns, %d stops); scheduler: %d throttled waits, %v waiting, %d preemptions\n",
			s.StallTime.Round(time.Microsecond), s.Slowdowns, s.Stops,
			s.ThrottledWaits, s.ThrottleTime.Round(time.Microsecond), s.Preemptions)
		for _, p := range s.Phases {
			fmt.Fprintf(out, "  phase %-10s %d ops in %v: stall %v, token wait %v\n",
				p.Name, p.Ops, p.Duration.Round(time.Millisecond),
				p.Stall.Round(time.Microsecond), p.Throttle.Round(time.Microsecond))
		}
	}
	fmt.Fprintf(out, "P99.9 ratio (on/off): %.2fx  throughput cost: %.1f%%\n",
		r.TailRatio, 100*r.ThroughputCost)
}

// WriteJSON records the comparison for CI regression tracking.
func (r *BrownoutResult) WriteJSON(path string) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// CheckBudget enforces the CI tail budget: the limiter-on side's foreground
// P99.9 must not exceed budget × the limiter-off side's. A budget above 1
// leaves headroom for scheduler noise on loaded CI hosts while still
// catching regressions that destroy the scheduler's benefit.
func (r *BrownoutResult) CheckBudget(budget float64) error {
	if budget <= 0 {
		return nil
	}
	if r.TailRatio > budget {
		return fmt.Errorf("harness: brownout tail budget exceeded: limiter-on P99.9 is %.2fx limiter-off (budget %.2fx)",
			r.TailRatio, budget)
	}
	return nil
}
