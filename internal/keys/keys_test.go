package keys

import (
	"bytes"
	"sort"
	"testing"
	"testing/quick"
)

func TestInternalKeyRoundTrip(t *testing.T) {
	ik := MakeInternalKey(nil, []byte("user-key"), 42, KindSet)
	if !ik.Valid() {
		t.Fatal("key not valid")
	}
	if string(ik.UserKey()) != "user-key" {
		t.Errorf("UserKey = %q", ik.UserKey())
	}
	if ik.Seq() != 42 {
		t.Errorf("Seq = %d", ik.Seq())
	}
	if ik.Kind() != KindSet {
		t.Errorf("Kind = %d", ik.Kind())
	}
}

func TestInternalKeyMaxSeq(t *testing.T) {
	ik := MakeInternalKey(nil, []byte("k"), MaxSeq, KindDelete)
	if ik.Seq() != MaxSeq || ik.Kind() != KindDelete {
		t.Errorf("got seq=%d kind=%d", ik.Seq(), ik.Kind())
	}
}

func TestInternalKeyValidRejects(t *testing.T) {
	if InternalKey(nil).Valid() {
		t.Error("nil key reported valid")
	}
	if InternalKey([]byte("short")).Valid() {
		t.Error("short key reported valid")
	}
	bad := MakeInternalKey(nil, []byte("k"), 1, KindSet)
	bad[len(bad)-8] = 0x7f // bogus kind
	if bad.Valid() {
		t.Error("bogus kind reported valid")
	}
}

func TestInternalComparerOrdering(t *testing.T) {
	cmp := InternalComparer{User: BytewiseComparer{}}
	// Build keys in the order they must sort.
	want := []InternalKey{
		MakeInternalKey(nil, []byte("a"), 9, KindSet),
		MakeInternalKey(nil, []byte("a"), 5, KindSet),
		MakeInternalKey(nil, []byte("a"), 5, KindDelete),
		MakeInternalKey(nil, []byte("a"), 1, KindDelete),
		MakeInternalKey(nil, []byte("b"), 100, KindSet),
		MakeInternalKey(nil, []byte("b"), 2, KindDelete),
		MakeInternalKey(nil, []byte("c"), 1, KindSet),
	}
	got := make([]InternalKey, len(want))
	copy(got, want)
	// Shuffle deterministically, then sort with the comparer.
	for i := range got {
		j := (i * 3) % len(got)
		got[i], got[j] = got[j], got[i]
	}
	sort.Slice(got, func(i, j int) bool { return cmp.Compare(got[i], got[j]) < 0 })
	for i := range want {
		if !bytes.Equal(got[i], want[i]) {
			t.Fatalf("position %d: got %s want %s", i, got[i], want[i])
		}
	}
}

func TestSearchKeySortsBeforeVersions(t *testing.T) {
	cmp := InternalComparer{User: BytewiseComparer{}}
	sk := MakeSearchKey(nil, []byte("k"), 50)
	// Versions visible at snapshot 50 must sort at or after the search key.
	visible := MakeInternalKey(nil, []byte("k"), 50, KindSet)
	older := MakeInternalKey(nil, []byte("k"), 10, KindSet)
	newer := MakeInternalKey(nil, []byte("k"), 51, KindSet)
	if cmp.Compare(sk, visible) > 0 {
		t.Error("search key sorts after equal-seq version")
	}
	if cmp.Compare(sk, older) > 0 {
		t.Error("search key sorts after older version")
	}
	if cmp.Compare(sk, newer) <= 0 {
		t.Error("search key does not sort after newer version")
	}
}

func TestComparerQuickConsistency(t *testing.T) {
	cmp := InternalComparer{User: BytewiseComparer{}}
	f := func(ua, ub []byte, sa, sb uint32) bool {
		a := MakeInternalKey(nil, ua, Seq(sa), KindSet)
		b := MakeInternalKey(nil, ub, Seq(sb), KindSet)
		r := cmp.Compare(a, b)
		// Antisymmetry.
		if cmp.Compare(b, a) != -r {
			return false
		}
		// Agreement with user ordering on distinct user keys.
		if u := bytes.Compare(ua, ub); u != 0 {
			return r == u
		}
		// Same user key: newer sequence sorts first.
		switch {
		case sa > sb:
			return r < 0
		case sa < sb:
			return r > 0
		}
		return r == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestParseInternalKey(t *testing.T) {
	ik := MakeInternalKey(nil, []byte("pk"), 7, KindDelete)
	u, s, k, ok := ParseInternalKey(ik)
	if !ok || string(u) != "pk" || s != 7 || k != KindDelete {
		t.Errorf("ParseInternalKey = %q %d %d %v", u, s, k, ok)
	}
	if _, _, _, ok := ParseInternalKey([]byte("x")); ok {
		t.Error("ParseInternalKey accepted malformed key")
	}
}

func rangeOf(lo, hi string) KeyRange {
	return KeyRange{Lo: []byte(lo), Hi: []byte(hi)}
}

func TestKeyRangeContains(t *testing.T) {
	cmp := BytewiseComparer{}
	r := rangeOf("b", "d")
	for _, tc := range []struct {
		k    string
		want bool
	}{{"a", false}, {"b", true}, {"c", true}, {"d", true}, {"e", false}} {
		if got := r.Contains(cmp, []byte(tc.k)); got != tc.want {
			t.Errorf("Contains(%q) = %v", tc.k, got)
		}
	}
}

func TestKeyRangeOverlapsAndIntersect(t *testing.T) {
	cmp := BytewiseComparer{}
	cases := []struct {
		a, b    KeyRange
		overlap bool
		lo, hi  string
	}{
		{rangeOf("a", "c"), rangeOf("b", "d"), true, "b", "c"},
		{rangeOf("a", "c"), rangeOf("c", "d"), true, "c", "c"},
		{rangeOf("a", "b"), rangeOf("c", "d"), false, "", ""},
		{rangeOf("a", "z"), rangeOf("m", "n"), true, "m", "n"},
	}
	for i, tc := range cases {
		if got := tc.a.Overlaps(cmp, tc.b); got != tc.overlap {
			t.Errorf("case %d: Overlaps = %v want %v", i, got, tc.overlap)
		}
		got, ok := tc.a.Intersect(cmp, tc.b)
		if ok != tc.overlap {
			t.Errorf("case %d: Intersect ok = %v", i, ok)
		}
		if ok && (string(got.Lo) != tc.lo || string(got.Hi) != tc.hi) {
			t.Errorf("case %d: Intersect = [%q,%q] want [%q,%q]", i, got.Lo, got.Hi, tc.lo, tc.hi)
		}
	}
}

func TestKeyRangeOverlapsSymmetricQuick(t *testing.T) {
	cmp := BytewiseComparer{}
	f := func(alo, ahi, blo, bhi []byte) bool {
		if bytes.Compare(alo, ahi) > 0 {
			alo, ahi = ahi, alo
		}
		if bytes.Compare(blo, bhi) > 0 {
			blo, bhi = bhi, blo
		}
		a := KeyRange{Lo: alo, Hi: ahi}
		b := KeyRange{Lo: blo, Hi: bhi}
		return a.Overlaps(cmp, b) == b.Overlaps(cmp, a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
