// Package keys defines the internal key representation of the LSM-tree.
//
// Every user key is stored internally with an 8-byte trailer holding a
// monotonically increasing sequence number (56 bits) and a kind byte
// (set or delete). Internal keys order by user key ascending, then by
// sequence number *descending*, so that for a given user key the newest
// version sorts first. This single ordering rule is what lets merge-sorted
// runs from different ages of the tree (including LDC's frozen slices)
// interleave correctly.
package keys

import (
	"bytes"
	"fmt"

	"repro/internal/encoding"
)

// Kind discriminates the operation an internal key records.
type Kind uint8

const (
	// KindDelete marks a tombstone.
	KindDelete Kind = 0
	// KindSet marks a normal key/value insertion.
	KindSet Kind = 1
	// KindBlobRef marks an entry whose value is a fixed-size pointer into
	// the value log (segment, offset, length) rather than the user value
	// itself. Readers resolve the pointer through vlog.
	KindBlobRef Kind = 2

	// KindBlobRewrite exists only in the batch/WAL wire format: a vlog GC
	// pointer rewrite guarded by the sequence it read under. It is applied
	// as a KindBlobRef (or dropped) at commit time and is never stored in a
	// memtable or SSTable, so kindMax excludes it and Valid rejects it.
	KindBlobRewrite Kind = 3

	// kindMax is used when constructing seek keys: for equal user key and
	// sequence, higher kinds sort first, so the largest storable kind works
	// as the upper bound.
	kindMax = KindBlobRef
)

// Seq is a global write sequence number. 56 usable bits.
type Seq uint64

// MaxSeq is the largest representable sequence number.
const MaxSeq Seq = (1 << 56) - 1

// TrailerLen is the length of the internal key trailer.
const TrailerLen = 8

// InternalKey is a user key plus the (seq, kind) trailer, as stored in
// memtables and SSTables.
type InternalKey []byte

// MakeInternalKey appends the encoding of (ukey, seq, kind) to dst.
func MakeInternalKey(dst []byte, ukey []byte, seq Seq, kind Kind) InternalKey {
	dst = append(dst, ukey...)
	return encoding.PutFixed64(dst, uint64(seq)<<8|uint64(kind))
}

// MakeSearchKey builds the smallest internal key that positions an iterator
// at or after every version of ukey visible at snapshot seq.
func MakeSearchKey(dst []byte, ukey []byte, seq Seq) InternalKey {
	return MakeInternalKey(dst, ukey, seq, kindMax)
}

// Valid reports whether ik is long enough to carry a trailer and has a
// recognized kind byte.
func (ik InternalKey) Valid() bool {
	if len(ik) < TrailerLen {
		return false
	}
	return Kind(ik[len(ik)-8]) <= kindMax
}

// UserKey returns the user-key prefix of ik. It aliases ik.
func (ik InternalKey) UserKey() []byte {
	return ik[:len(ik)-TrailerLen]
}

// Seq extracts the sequence number from the trailer.
func (ik InternalKey) Seq() Seq {
	return Seq(encoding.Fixed64(ik[len(ik)-TrailerLen:]) >> 8)
}

// Kind extracts the kind byte from the trailer.
func (ik InternalKey) Kind() Kind {
	return Kind(ik[len(ik)-TrailerLen])
}

// Clone returns a copy of ik that does not alias its backing array.
func (ik InternalKey) Clone() InternalKey {
	return append(InternalKey(nil), ik...)
}

// String formats ik for debugging.
func (ik InternalKey) String() string {
	if !ik.Valid() {
		return fmt.Sprintf("<invalid %x>", []byte(ik))
	}
	k := "SET"
	switch ik.Kind() {
	case KindDelete:
		k = "DEL"
	case KindBlobRef:
		k = "BLOBREF"
	}
	return fmt.Sprintf("%q/%d/%s", ik.UserKey(), ik.Seq(), k)
}

// Comparer compares keys. The store is generic over user-key ordering; the
// internal comparer derives from a user comparer.
type Comparer interface {
	// Compare returns -1, 0, +1 per bytes.Compare semantics.
	Compare(a, b []byte) int
	// Name identifies the comparer; persisted in the MANIFEST so a database
	// cannot be reopened with an incompatible ordering.
	Name() string
}

// BytewiseComparer orders user keys lexicographically, like LevelDB's
// default comparator.
type BytewiseComparer struct{}

// Compare implements Comparer.
func (BytewiseComparer) Compare(a, b []byte) int { return bytes.Compare(a, b) }

// Name implements Comparer.
func (BytewiseComparer) Name() string { return "ldc.BytewiseComparator" }

// InternalComparer orders InternalKeys: user key ascending per the wrapped
// user comparer, then sequence descending, then kind descending.
type InternalComparer struct {
	User Comparer
}

// Compare implements Comparer over internal keys.
func (c InternalComparer) Compare(a, b []byte) int {
	ak, bk := InternalKey(a), InternalKey(b)
	if r := c.User.Compare(ak.UserKey(), bk.UserKey()); r != 0 {
		return r
	}
	at := encoding.Fixed64(a[len(a)-TrailerLen:])
	bt := encoding.Fixed64(b[len(b)-TrailerLen:])
	switch {
	case at > bt: // larger (seq,kind) sorts first
		return -1
	case at < bt:
		return +1
	}
	return 0
}

// Name implements Comparer.
func (c InternalComparer) Name() string { return "ldc.InternalKeyComparator:" + c.User.Name() }

// ParseInternalKey splits an encoded internal key, reporting ok=false if it
// is malformed.
func ParseInternalKey(b []byte) (ukey []byte, seq Seq, kind Kind, ok bool) {
	ik := InternalKey(b)
	if !ik.Valid() {
		return nil, 0, 0, false
	}
	return ik.UserKey(), ik.Seq(), ik.Kind(), true
}

// KeyRange is an inclusive range of user keys, as tracked per SSTable and per
// LDC slice. An empty Lo means "from the smallest possible key"; an empty Hi
// never occurs for file ranges (files always have a largest key) but is
// treated as "to the largest possible key" where ranges are clamped.
type KeyRange struct {
	Lo, Hi []byte // user keys, inclusive
}

// Contains reports whether k falls inside r under cmp.
func (r KeyRange) Contains(cmp Comparer, k []byte) bool {
	return cmp.Compare(k, r.Lo) >= 0 && cmp.Compare(k, r.Hi) <= 0
}

// Overlaps reports whether two inclusive ranges intersect.
func (r KeyRange) Overlaps(cmp Comparer, o KeyRange) bool {
	return cmp.Compare(r.Lo, o.Hi) <= 0 && cmp.Compare(o.Lo, r.Hi) <= 0
}

// Intersect clamps r to o; ok is false when they do not overlap.
func (r KeyRange) Intersect(cmp Comparer, o KeyRange) (KeyRange, bool) {
	if !r.Overlaps(cmp, o) {
		return KeyRange{}, false
	}
	out := r
	if cmp.Compare(o.Lo, out.Lo) > 0 {
		out.Lo = o.Lo
	}
	if cmp.Compare(o.Hi, out.Hi) < 0 {
		out.Hi = o.Hi
	}
	return out, true
}
