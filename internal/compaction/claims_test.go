package compaction

import (
	"testing"

	"repro/internal/keys"
	"repro/internal/version"
)

func rangeOf(lo, hi string) keys.KeyRange {
	return keys.KeyRange{Lo: []byte(lo), Hi: []byte(hi)}
}

// pickFrom builds a version with two fat, disjoint L1 files over L2
// overlaps, so the picker has two independent compactions available.
func twoJobVersion(t *testing.T) *version.Version {
	return buildV(t, func(e *version.Edit) {
		e.AddFile(1, fm(1, "a", "c", 20000))
		e.AddFile(1, fm(2, "m", "p", 20000))
		e.AddFile(2, fm(3, "a", "b", 100))
		e.AddFile(2, fm(4, "n", "o", 100))
	})
}

func TestAcquireReleaseLifecycle(t *testing.T) {
	pk := NewPicker(UDC, testParams(), icmp)
	v := twoJobVersion(t)

	p1 := pk.Pick(v)
	if p1.Kind == PickNone {
		t.Fatal("no work picked")
	}
	c1, err := pk.Acquire(p1)
	if err != nil {
		t.Fatalf("Acquire: %v", err)
	}
	if pk.InFlight() != 1 {
		t.Fatalf("InFlight = %d, want 1", pk.InFlight())
	}
	pk.Release(c1)
	if pk.InFlight() != 0 {
		t.Fatalf("InFlight after Release = %d, want 0", pk.InFlight())
	}
}

func TestPickAvoidsClaimedWork(t *testing.T) {
	pk := NewPicker(UDC, testParams(), icmp)
	v := twoJobVersion(t)

	p1 := pk.Pick(v)
	c1, err := pk.Acquire(p1)
	if err != nil {
		t.Fatalf("Acquire: %v", err)
	}
	p2 := pk.Pick(v)
	if p2.Kind == PickNone {
		t.Fatal("second disjoint job not picked while first in flight")
	}
	if p2.Inputs[0].Num == p1.Inputs[0].Num {
		t.Fatalf("picker handed out claimed file %d twice", p1.Inputs[0].Num)
	}
	c2, err := pk.Acquire(p2)
	if err != nil {
		t.Fatalf("Acquire second job: %v", err)
	}
	// Both jobs claimed: nothing admissible remains.
	if p3 := pk.Pick(v); p3.Kind != PickNone {
		t.Fatalf("third pick = %v, want None", p3.Kind)
	}
	pk.Release(c1)
	pk.Release(c2)
	// Released claims make the original work pickable again.
	if p4 := pk.Pick(v); p4.Kind == PickNone || p4.Inputs[0].Num != p1.Inputs[0].Num {
		t.Fatalf("pick after release = %+v, want original job", p4)
	}
}

func TestAcquireRejectsConflict(t *testing.T) {
	pk := NewPicker(UDC, testParams(), icmp)
	v := twoJobVersion(t)

	p1 := pk.Pick(v)
	if _, err := pk.Acquire(p1); err != nil {
		t.Fatalf("Acquire: %v", err)
	}
	// Acquiring the identical pick again must fail: shared input file.
	if _, err := pk.Acquire(p1); err == nil {
		t.Fatal("Acquire of conflicting pick succeeded")
	}
}

func TestSpanConflictSameLevel(t *testing.T) {
	pk := NewPicker(UDC, testParams(), icmp)
	// Two L1 files whose *output* ranges overlap through a shared L2 file:
	// both compactions write into L2 within c..n, so they must serialize.
	v := buildV(t, func(e *version.Edit) {
		e.AddFile(1, fm(1, "a", "f", 20000))
		e.AddFile(1, fm(2, "k", "p", 20000))
		e.AddFile(2, fm(3, "c", "n", 100)) // overlaps both
	})
	p1 := pk.Pick(v)
	if p1.Kind == PickNone {
		t.Fatal("no work picked")
	}
	if _, err := pk.Acquire(p1); err != nil {
		t.Fatalf("Acquire: %v", err)
	}
	// The second file's compaction shares file 3 and the L2 output range;
	// the picker must not hand it out.
	if p2 := pk.Pick(v); p2.Kind != PickNone {
		t.Fatalf("picked conflicting job %v inputs=%v", p2.Kind, p2.Inputs)
	}
}

func TestSingleL0JobAtATime(t *testing.T) {
	pk := NewPicker(UDC, testParams(), icmp)
	v := buildV(t, func(e *version.Edit) {
		// Eight L0 files: score 2.0, above L1's 1.5, so L0 goes first.
		for i := uint64(1); i <= 8; i++ {
			e.AddFile(0, fm(i, "a", "f", 100))
		}
		// L1 over capacity in a key range disjoint from L0.
		e.AddFile(1, fm(15, "t", "v", 15000))
		e.AddFile(2, fm(16, "u", "v", 100))
	})
	p1 := pk.Pick(v)
	if p1.Level != 0 {
		t.Fatalf("first pick at level %d, want L0 (higher score)", p1.Level)
	}
	if _, err := pk.Acquire(p1); err != nil {
		t.Fatalf("Acquire: %v", err)
	}
	// L1→L2 work in a disjoint range is still admissible alongside L0 work…
	p2 := pk.Pick(v)
	if p2.Kind == PickNone || p2.Level != 1 {
		t.Fatalf("second pick = %v level %d, want L1 job", p2.Kind, p2.Level)
	}
	c2, err := pk.Acquire(p2)
	if err != nil {
		t.Fatalf("Acquire L1 job: %v", err)
	}
	pk.Release(c2)
	// …but a second L0 job never is, even if its files differ: the claim's
	// l0 flag is exclusive because flushes keep adding overlapping files.
	extra := buildV(t, func(e *version.Edit) {
		e.AddFile(0, fm(7, "w", "z", 100))
		e.AddFile(0, fm(8, "w", "z", 100))
		e.AddFile(0, fm(9, "w", "z", 100))
		e.AddFile(0, fm(10, "w", "z", 100))
	})
	if p3 := pk.Pick(extra); p3.Kind != PickNone && p3.Level == 0 {
		t.Fatalf("second concurrent L0 job picked: %v", p3.Kind)
	}
}

func TestConcurrentMergesDisjointTargets(t *testing.T) {
	pk := NewPicker(LDC, Params{Fanout: 10, SSTableSize: 1000, L0Trigger: 4, SliceThreshold: 2}, icmp)
	// Two L2 files, each carrying enough slices from a shared frozen file to
	// be merge-ripe. The frozen input is shared read-only — the claims must
	// not conflict on it.
	v := buildV(t, func(e *version.Edit) {
		fz := fm(9, "a", "z", 1000)
		e.FreezeFile(&version.FrozenMeta{Num: 9, Size: 1000, Smallest: fz.Smallest, Largest: fz.Largest})
		e.AddFile(2, fm(1, "a", "c", 100))
		e.AddFile(2, fm(2, "m", "p", 100))
		for i := 0; i < 3; i++ {
			e.AddSlice(2, 1, version.Slice{FrozenNum: 9, Range: rangeOf("a", "c"), LinkSeq: uint64(i + 1), Bytes: 10})
			e.AddSlice(2, 2, version.Slice{FrozenNum: 9, Range: rangeOf("m", "p"), LinkSeq: uint64(i + 4), Bytes: 10})
		}
	})
	p1 := pk.Pick(v)
	if p1.Kind != PickMerge {
		t.Fatalf("first pick = %v, want Merge", p1.Kind)
	}
	if _, err := pk.Acquire(p1); err != nil {
		t.Fatalf("Acquire: %v", err)
	}
	p2 := pk.Pick(v)
	if p2.Kind != PickMerge {
		t.Fatalf("second pick = %v, want concurrent Merge on the other target", p2.Kind)
	}
	if p2.Target.Num == p1.Target.Num {
		t.Fatalf("same merge target %d handed out twice", p1.Target.Num)
	}
	if _, err := pk.Acquire(p2); err != nil {
		t.Fatalf("Acquire second merge (shared frozen input): %v", err)
	}
}
