package compaction

import (
	"testing"

	"repro/internal/keys"
	"repro/internal/version"
)

var icmp = keys.InternalComparer{User: keys.BytewiseComparer{}}

func ik(u string, seq keys.Seq) keys.InternalKey {
	return keys.MakeInternalKey(nil, []byte(u), seq, keys.KindSet)
}

func fm(num uint64, lo, hi string, size int64) *version.FileMeta {
	return &version.FileMeta{Num: num, Size: size, Smallest: ik(lo, 2), Largest: ik(hi, 1)}
}

// buildV assembles a version from per-level file lists via the public edit
// path so Sliced etc. are derived.
func buildV(t *testing.T, edit func(e *version.Edit)) *version.Version {
	t.Helper()
	e := &version.Edit{}
	edit(e)
	v, err := version.BuildForTest(icmp, e)
	if err != nil {
		t.Fatal(err)
	}
	return v
}

func testParams() Params {
	return Params{Fanout: 10, SSTableSize: 1000, L0Trigger: 4}
}

func TestDefaults(t *testing.T) {
	p := Params{}.withDefaults()
	if p.Fanout != 10 || p.SliceThreshold != 10 || p.L0Trigger != 4 ||
		p.BaseLevelBytes != int64(p.Fanout)*p.SSTableSize || p.TieredTrigger != 10 {
		t.Errorf("defaults = %+v", p)
	}
}

func TestMaxBytesForLevel(t *testing.T) {
	p := Params{Fanout: 10, SSTableSize: 1000}.withDefaults()
	if p.MaxBytesForLevel(1) != 10000 {
		t.Errorf("L1 = %d", p.MaxBytesForLevel(1))
	}
	if p.MaxBytesForLevel(3) != 1000000 {
		t.Errorf("L3 = %d", p.MaxBytesForLevel(3))
	}
}

func TestScoreL0ByFileCount(t *testing.T) {
	pk := NewPicker(UDC, testParams(), icmp)
	v := buildV(t, func(e *version.Edit) {
		e.AddFile(0, fm(1, "a", "z", 100))
		e.AddFile(0, fm(2, "a", "z", 100))
	})
	if got := pk.Score(v, 0); got != 0.5 {
		t.Errorf("L0 score = %v", got)
	}
}

func TestScoreDeepLevelByBytes(t *testing.T) {
	pk := NewPicker(UDC, testParams(), icmp)
	v := buildV(t, func(e *version.Edit) {
		e.AddFile(1, fm(1, "a", "c", 5000))
		e.AddFile(1, fm(2, "d", "f", 15000))
	})
	if got := pk.Score(v, 1); got != 2.0 { // 20000 / (10*1000)
		t.Errorf("L1 score = %v", got)
	}
}

func TestPickNoneWhenBalanced(t *testing.T) {
	pk := NewPicker(UDC, testParams(), icmp)
	v := buildV(t, func(e *version.Edit) {
		e.AddFile(1, fm(1, "a", "c", 1000))
	})
	if got := pk.Pick(v); got.Kind != PickNone {
		t.Errorf("Pick = %v", got.Kind)
	}
}

func TestUDCPicksL0WithClosure(t *testing.T) {
	pk := NewPicker(UDC, testParams(), icmp)
	v := buildV(t, func(e *version.Edit) {
		// Four mutually chained L0 files.
		e.AddFile(0, fm(1, "a", "f", 100))
		e.AddFile(0, fm(2, "e", "k", 100))
		e.AddFile(0, fm(3, "j", "p", 100))
		e.AddFile(0, fm(4, "x", "z", 100)) // disjoint from the chain
		e.AddFile(1, fm(5, "c", "m", 100))
	})
	got := pk.Pick(v)
	if got.Kind != PickCompact || got.Level != 0 {
		t.Fatalf("Pick = %v level %d", got.Kind, got.Level)
	}
	if len(got.Inputs) != 3 {
		t.Errorf("L0 closure picked %d files, want 3 (chain)", len(got.Inputs))
	}
	if len(got.Overlaps) != 1 || got.Overlaps[0].Num != 5 {
		t.Errorf("overlaps = %v", got.Overlaps)
	}
}

func TestUDCTrivialMove(t *testing.T) {
	pk := NewPicker(UDC, testParams(), icmp)
	v := buildV(t, func(e *version.Edit) {
		e.AddFile(1, fm(1, "a", "c", 20000)) // over target
		e.AddFile(2, fm(2, "m", "z", 100))   // no overlap with (a,c)
	})
	got := pk.Pick(v)
	if got.Kind != PickTrivialMove || got.Inputs[0].Num != 1 {
		t.Errorf("Pick = %v inputs=%v", got.Kind, got.Inputs)
	}
}

func TestUDCCompactWithOverlaps(t *testing.T) {
	pk := NewPicker(UDC, testParams(), icmp)
	v := buildV(t, func(e *version.Edit) {
		e.AddFile(1, fm(1, "a", "m", 20000))
		e.AddFile(2, fm(2, "a", "f", 100))
		e.AddFile(2, fm(3, "g", "p", 100))
		e.AddFile(2, fm(4, "q", "z", 100))
	})
	got := pk.Pick(v)
	if got.Kind != PickCompact || got.Level != 1 {
		t.Fatalf("Pick = %v", got.Kind)
	}
	if len(got.Overlaps) != 2 {
		t.Errorf("overlaps = %d files, want 2", len(got.Overlaps))
	}
}

func TestRoundRobinPointerAdvances(t *testing.T) {
	pk := NewPicker(UDC, testParams(), icmp)
	v := buildV(t, func(e *version.Edit) {
		e.AddFile(1, fm(1, "a", "c", 20000))
		e.AddFile(1, fm(2, "d", "f", 20000))
	})
	first := pk.Pick(v)
	if first.Inputs[0].Num != 1 {
		t.Fatalf("first pick = file %d", first.Inputs[0].Num)
	}
	// Simulate the store recording the pointer after compacting file 1.
	pk.SetPointer(1, first.Inputs[0].Largest)
	second := pk.Pick(v)
	if second.Inputs[0].Num != 2 {
		t.Errorf("second pick = file %d, want 2", second.Inputs[0].Num)
	}
	// Pointer past the last file wraps around.
	pk.SetPointer(1, second.Inputs[0].Largest)
	third := pk.Pick(v)
	if third.Inputs[0].Num != 1 {
		t.Errorf("wrap-around pick = file %d, want 1", third.Inputs[0].Num)
	}
}

func TestLDCLinksInsteadOfCompacting(t *testing.T) {
	pk := NewPicker(LDC, testParams(), icmp)
	v := buildV(t, func(e *version.Edit) {
		e.AddFile(1, fm(1, "a", "m", 20000))
		e.AddFile(2, fm(2, "a", "f", 100))
		e.AddFile(2, fm(3, "g", "p", 100))
	})
	got := pk.Pick(v)
	if got.Kind != PickLink || got.Level != 1 {
		t.Fatalf("Pick = %v", got.Kind)
	}
	if len(got.Overlaps) != 2 {
		t.Errorf("link targets = %d", len(got.Overlaps))
	}
}

func TestLDCMergePriorityAtThreshold(t *testing.T) {
	params := testParams()
	params.SliceThreshold = 2
	pk := NewPicker(LDC, params, icmp)
	v := buildV(t, func(e *version.Edit) {
		e.AddFile(1, fm(1, "a", "m", 20000)) // pressure exists
		f := fm(2, "a", "f", 100)
		e.AddFile(2, f)
		e.FreezeFile(&version.FrozenMeta{Num: 90, Size: 100, Smallest: ik("a", 9), Largest: ik("f", 8)})
		e.FreezeFile(&version.FrozenMeta{Num: 91, Size: 100, Smallest: ik("a", 9), Largest: ik("f", 8)})
		e.AddSlice(2, 2, version.Slice{FrozenNum: 90, Range: keys.KeyRange{Lo: []byte("a"), Hi: []byte("f")}, LinkSeq: 1, Bytes: 50})
		e.AddSlice(2, 2, version.Slice{FrozenNum: 91, Range: keys.KeyRange{Lo: []byte("a"), Hi: []byte("f")}, LinkSeq: 2, Bytes: 50})
	})
	got := pk.Pick(v)
	if got.Kind != PickMerge || got.Target == nil || got.Target.Num != 2 {
		t.Fatalf("Pick = %v target=%v, want merge of file 2", got.Kind, got.Target)
	}
}

func TestLDCSkipsSlicedFilesForLinking(t *testing.T) {
	params := testParams()
	params.SliceThreshold = 5
	pk := NewPicker(LDC, params, icmp)
	v := buildV(t, func(e *version.Edit) {
		// L1 over target with two files; file 1 already carries a slice.
		f1 := fm(1, "a", "c", 15000)
		e.AddFile(1, f1)
		e.AddFile(1, fm(2, "d", "f", 15000))
		e.FreezeFile(&version.FrozenMeta{Num: 90, Size: 10, Smallest: ik("a", 9), Largest: ik("c", 8)})
		e.AddSlice(1, 1, version.Slice{FrozenNum: 90, Range: keys.KeyRange{Lo: []byte("a"), Hi: []byte("c")}, LinkSeq: 1, Bytes: 10})
		e.AddFile(2, fm(3, "a", "z", 100))
	})
	got := pk.Pick(v)
	if got.Kind != PickLink {
		t.Fatalf("Pick = %v", got.Kind)
	}
	if got.Inputs[0].Num != 2 {
		t.Errorf("picked file %d for linking, want slice-free file 2", got.Inputs[0].Num)
	}
}

func TestLDCMergesWhenAllFilesSliced(t *testing.T) {
	params := testParams()
	params.SliceThreshold = 5
	pk := NewPicker(LDC, params, icmp)
	v := buildV(t, func(e *version.Edit) {
		f1 := fm(1, "a", "c", 25000)
		e.AddFile(1, f1)
		e.FreezeFile(&version.FrozenMeta{Num: 90, Size: 10, Smallest: ik("a", 9), Largest: ik("c", 8)})
		e.AddSlice(1, 1, version.Slice{FrozenNum: 90, Range: keys.KeyRange{Lo: []byte("a"), Hi: []byte("c")}, LinkSeq: 1, Bytes: 10})
		e.AddFile(2, fm(3, "a", "z", 100))
	})
	got := pk.Pick(v)
	if got.Kind != PickMerge || got.Target.Num != 1 {
		t.Errorf("Pick = %v target=%v", got.Kind, got.Target)
	}
}

func TestLDCFrozenBackpressure(t *testing.T) {
	params := testParams()
	params.SliceThreshold = 100 // never trigger by count
	params.FrozenFraction = 0.10
	pk := NewPicker(LDC, params, icmp)
	v := buildV(t, func(e *version.Edit) {
		f := fm(2, "a", "f", 100)
		e.AddFile(2, f)
		// Huge frozen region vs tiny resident data.
		e.FreezeFile(&version.FrozenMeta{Num: 90, Size: 100000, Smallest: ik("a", 9), Largest: ik("f", 8)})
		e.AddSlice(2, 2, version.Slice{FrozenNum: 90, Range: keys.KeyRange{Lo: []byte("a"), Hi: []byte("f")}, LinkSeq: 1, Bytes: 100000})
	})
	got := pk.Pick(v)
	if got.Kind != PickMerge || got.Target.Num != 2 {
		t.Errorf("Pick = %v, want forced merge under space backpressure", got.Kind)
	}
}

func TestLDCL0StillCompactsConventionally(t *testing.T) {
	pk := NewPicker(LDC, testParams(), icmp)
	v := buildV(t, func(e *version.Edit) {
		for i := 0; i < 4; i++ {
			e.AddFile(0, fm(uint64(i+1), "a", "z", 100))
		}
		e.AddFile(1, fm(9, "c", "m", 100))
	})
	got := pk.Pick(v)
	if got.Kind != PickCompact || got.Level != 0 {
		t.Errorf("Pick = %v level=%d", got.Kind, got.Level)
	}
}

func TestAdaptiveThresholdFeedsPicker(t *testing.T) {
	params := testParams()
	params.SliceThreshold = 7
	pk := NewPicker(LDC, params, icmp)
	if pk.SliceThreshold() != 7 {
		t.Fatalf("static threshold = %d", pk.SliceThreshold())
	}
	pk.SetThresholdFunc(func() int { return 3 })
	if pk.SliceThreshold() != 3 {
		t.Errorf("dynamic threshold = %d", pk.SliceThreshold())
	}
	pk.SetThresholdFunc(nil)
	if pk.SliceThreshold() != 7 {
		t.Errorf("revert threshold = %d", pk.SliceThreshold())
	}
}

func TestTieredMergesWholeTier(t *testing.T) {
	params := testParams()
	params.TieredTrigger = 3
	pk := NewPicker(Tiered, params, icmp)
	v := buildV(t, func(e *version.Edit) {
		e.AddFile(0, fm(1, "a", "z", 100))
		e.AddFile(0, fm(2, "a", "z", 100))
	})
	if got := pk.Pick(v); got.Kind != PickNone {
		t.Fatalf("under-trigger tier picked %v", got.Kind)
	}
	v2 := buildV(t, func(e *version.Edit) {
		e.AddFile(0, fm(1, "a", "z", 100))
		e.AddFile(0, fm(2, "a", "z", 100))
		e.AddFile(0, fm(3, "a", "z", 100))
	})
	got := pk.Pick(v2)
	if got.Kind != PickCompact || len(got.Inputs) != 3 || len(got.Overlaps) != 0 {
		t.Errorf("tiered pick = %v with %d inputs", got.Kind, len(got.Inputs))
	}
}

func TestSliceWindowsPartitionContiguously(t *testing.T) {
	su := fm(9, "c", "x", 1000)
	overlaps := []*version.FileMeta{
		fm(1, "a", "f", 100),
		fm(2, "h", "m", 100),
		fm(3, "p", "r", 100),
	}
	ucmp := keys.BytewiseComparer{}
	ws := SliceWindows(ucmp, su, overlaps)
	if len(ws) != 3 {
		t.Fatalf("%d windows", len(ws))
	}
	// First window starts at su.Smallest; last ends at su.Largest (beyond
	// the last overlap's own largest).
	if string(ws[0].Lo) != "c" || string(ws[0].Hi) != "f" {
		t.Errorf("w0 = [%q,%q]", ws[0].Lo, ws[0].Hi)
	}
	if string(ws[1].Lo) != "f\x00" || string(ws[1].Hi) != "m" {
		t.Errorf("w1 = [%q,%q]", ws[1].Lo, ws[1].Hi)
	}
	if string(ws[2].Lo) != "m\x00" || string(ws[2].Hi) != "x" {
		t.Errorf("w2 = [%q,%q]", ws[2].Lo, ws[2].Hi)
	}
	// Contiguity: every key of su falls in exactly one window.
	for _, k := range []string{"c", "e", "f", "g", "m", "n", "q", "x"} {
		n := 0
		for _, w := range ws {
			if w.Contains(ucmp, []byte(k)) {
				n++
			}
		}
		if n != 1 {
			t.Errorf("key %q covered by %d windows", k, n)
		}
	}
}

func TestSliceWindowsSingleOverlap(t *testing.T) {
	su := fm(9, "c", "x", 1000)
	overlaps := []*version.FileMeta{fm(1, "a", "d", 100)}
	ws := SliceWindows(keys.BytewiseComparer{}, su, overlaps)
	if len(ws) != 1 || string(ws[0].Lo) != "c" || string(ws[0].Hi) != "x" {
		t.Errorf("windows = %+v", ws)
	}
}

func TestSliceWindowsUseEffectiveBounds(t *testing.T) {
	su := fm(9, "c", "x", 1000)
	// Overlap 1 has an existing window reaching to "k" although its own
	// largest is "f": the new boundary must respect the window.
	f1 := fm(1, "a", "f", 100)
	f1.Slices = []version.Slice{{FrozenNum: 50, Range: keys.KeyRange{Lo: []byte("a"), Hi: []byte("k")}, LinkSeq: 1}}
	f2 := fm(2, "m", "q", 100)
	ws := SliceWindows(keys.BytewiseComparer{}, su, []*version.FileMeta{f1, f2})
	if string(ws[0].Hi) != "k" {
		t.Errorf("w0.Hi = %q, want existing window bound k", ws[0].Hi)
	}
	if string(ws[1].Lo) != "k\x00" {
		t.Errorf("w1.Lo = %q", ws[1].Lo)
	}
}

func TestDebtZeroWhenBalanced(t *testing.T) {
	pk := NewPicker(LDC, testParams(), icmp)
	v := buildV(t, func(e *version.Edit) {
		e.AddFile(0, fm(1, "a", "z", 100))
		e.AddFile(1, fm(2, "a", "c", 1000))
	})
	if got := pk.Debt(v); got != 0 {
		t.Errorf("Debt = %d, want 0", got)
	}
}

func TestDebtCountsExcessL0Files(t *testing.T) {
	pk := NewPicker(UDC, testParams(), icmp) // L0Trigger 4, SSTableSize 1000
	v := buildV(t, func(e *version.Edit) {
		for i := 0; i < 6; i++ {
			e.AddFile(0, fm(uint64(i+1), "a", "z", 100))
		}
	})
	if got := pk.Debt(v); got != 2000 { // 2 excess files x one table each
		t.Errorf("Debt = %d, want 2000", got)
	}
}

func TestDebtCountsDeepOverageAndSliceBytes(t *testing.T) {
	pk := NewPicker(LDC, testParams(), icmp) // L1 target 10000
	v := buildV(t, func(e *version.Edit) {
		f := fm(1, "a", "m", 12000)
		e.AddFile(1, f)
		e.FreezeFile(&version.FrozenMeta{Num: 90, Size: 500, Smallest: ik("a", 9), Largest: ik("m", 8)})
		e.AddSlice(1, 1, version.Slice{FrozenNum: 90, Range: keys.KeyRange{Lo: []byte("a"), Hi: []byte("m")}, LinkSeq: 1, Bytes: 500})
	})
	// 12000 resident + 500 pending slice bytes against a 10000 target.
	if got := pk.Debt(v); got != 2500 {
		t.Errorf("Debt = %d, want 2500", got)
	}
	// The same tree under UDC ignores slices (there are none to absorb).
	udc := NewPicker(UDC, testParams(), icmp)
	if got := udc.Debt(v); got != 2000 {
		t.Errorf("UDC Debt = %d, want 2000", got)
	}
}

// ldcRipeMergeEdit populates a version with a ripe L2 merge target (two
// slices against SliceThreshold 2, as in TestLDCMergePriorityAtThreshold)
// plus n chained L0 files.
func ldcRipeMergeEdit(n int) func(e *version.Edit) {
	return func(e *version.Edit) {
		for i := 0; i < n; i++ {
			e.AddFile(0, fm(uint64(100+i), "a", "z", 100))
		}
		e.AddFile(1, fm(1, "a", "m", 20000))
		f := fm(2, "a", "f", 100)
		e.AddFile(2, f)
		e.FreezeFile(&version.FrozenMeta{Num: 90, Size: 100, Smallest: ik("a", 9), Largest: ik("f", 8)})
		e.FreezeFile(&version.FrozenMeta{Num: 91, Size: 100, Smallest: ik("a", 9), Largest: ik("f", 8)})
		e.AddSlice(2, 2, version.Slice{FrozenNum: 90, Range: keys.KeyRange{Lo: []byte("a"), Hi: []byte("f")}, LinkSeq: 1, Bytes: 50})
		e.AddSlice(2, 2, version.Slice{FrozenNum: 91, Range: keys.KeyRange{Lo: []byte("a"), Hi: []byte("f")}, LinkSeq: 2, Bytes: 50})
	}
}

func TestLDCL0UrgencyPreemptsRipeMerge(t *testing.T) {
	params := testParams() // L0SlowdownTrigger defaults to 2*L0Trigger = 8
	params.SliceThreshold = 2
	pk := NewPicker(LDC, params, icmp)
	v := buildV(t, ldcRipeMergeEdit(8)) // at the slowdown trigger
	got := pk.Pick(v)
	if got.Kind != PickCompact || got.Level != 0 {
		t.Fatalf("Pick = %v level %d, want L0 compaction once writers are throttled", got.Kind, got.Level)
	}
}

func TestLDCRipeMergeStillWinsBelowSlowdown(t *testing.T) {
	params := testParams()
	params.SliceThreshold = 2
	pk := NewPicker(LDC, params, icmp)
	v := buildV(t, ldcRipeMergeEdit(5)) // past L0Trigger, below slowdown
	got := pk.Pick(v)
	if got.Kind != PickMerge || got.Target == nil || got.Target.Num != 2 {
		t.Fatalf("Pick = %v, want the ripe merge while L0 is below the slowdown trigger", got.Kind)
	}
}
