package compaction

import (
	"fmt"

	"repro/internal/keys"
	"repro/internal/version"
)

// This file implements the claim bookkeeping that lets the store run several
// compaction jobs concurrently. Every in-flight job holds a Claim recording
// (a) the table files it will read-and-delete (or whose metadata it will
// rewrite) and (b) the key ranges, per level, in which it will add or remove
// files. Two jobs may run concurrently only if their claims are disjoint:
// no shared file number, no overlapping key range on a common level, and at
// most one job involving level 0 (L0 files mutually overlap, and flushes
// keep adding to them, so L0 work cannot be subdivided safely).
//
// Because a job's inputs stay in the current version until its final
// LogAndApply, a concurrent picker would otherwise hand the same files out
// twice; the claim set is what makes the picker aware of work that is
// scheduled but not yet applied.

// span is one claimed key range at one level.
type span struct {
	level int
	r     keys.KeyRange
}

// Claim records the resources an in-flight compaction job holds: its input
// file numbers and the key ranges it will modify per level. Claims are
// created by Picker.Acquire and returned with Picker.Release; like the rest
// of the Picker they are guarded by the store's mutex.
type Claim struct {
	kind  Kind
	level int
	files map[uint64]struct{}
	spans []span
	l0    bool
}

// String renders the claim for diagnostics.
func (c *Claim) String() string {
	return fmt.Sprintf("%v@L%d(%d files, %d spans)", c.kind, c.level, len(c.files), len(c.spans))
}

// Files reports the claimed input file numbers (tests).
func (c *Claim) Files() []uint64 {
	out := make([]uint64, 0, len(c.files))
	for num := range c.files {
		out = append(out, num)
	}
	return out
}

// claimFor derives the claim a pick needs before it may execute.
func (p *Picker) claimFor(pick Pick) *Claim {
	ucmp := p.icmp.User
	c := &Claim{kind: pick.Kind, level: pick.Level, files: map[uint64]struct{}{}}
	addFiles := func(files []*version.FileMeta) {
		for _, f := range files {
			c.files[f.Num] = struct{}{}
		}
	}
	// unionRange grows r to cover each file's effective range (own keys plus
	// attached slice windows — merges rewrite the whole effective extent).
	unionRange := func(r keys.KeyRange, files []*version.FileMeta) keys.KeyRange {
		for _, f := range files {
			fr := version.EffectiveRange(ucmp, f)
			if r.Lo == nil || ucmp.Compare(fr.Lo, r.Lo) < 0 {
				r.Lo = fr.Lo
			}
			if r.Hi == nil || ucmp.Compare(fr.Hi, r.Hi) > 0 {
				r.Hi = fr.Hi
			}
		}
		return r
	}

	switch pick.Kind {
	case PickCompact:
		// Reads Inputs (level) and Overlaps (level+1, including their
		// slices); deletes both; writes outputs into level+1 anywhere inside
		// the union of the input ranges.
		addFiles(pick.Inputs)
		addFiles(pick.Overlaps)
		r := unionRange(keys.KeyRange{}, pick.Inputs)
		r = unionRange(r, pick.Overlaps)
		c.spans = append(c.spans, span{pick.Level, r}, span{pick.Level + 1, r})
		c.l0 = pick.Level == 0
	case PickTrivialMove:
		f := pick.Inputs[0]
		c.files[f.Num] = struct{}{}
		r := version.EffectiveRange(ucmp, f)
		c.spans = append(c.spans, span{pick.Level, r}, span{pick.Level + 1, r})
		c.l0 = pick.Level == 0
	case PickLink:
		// Freezes Inputs[0] at level and appends slice metadata to every
		// overlap at level+1. Metadata only, but the overlaps' metas must not
		// be rewritten concurrently, and no other job may add files into the
		// slice-window range at level+1 while windows are being computed.
		addFiles(pick.Inputs)
		addFiles(pick.Overlaps)
		r := unionRange(keys.KeyRange{}, pick.Inputs)
		r = unionRange(r, pick.Overlaps)
		c.spans = append(c.spans, span{pick.Level, r}, span{pick.Level + 1, r})
	case PickMerge:
		// Rewrites Target in place at level, consuming its slices. The
		// frozen files backing the slices are shared read-only inputs —
		// version refcounts keep them alive — so only the target itself and
		// its effective key range are claimed.
		c.files[pick.Target.Num] = struct{}{}
		c.spans = append(c.spans, span{pick.Level, version.EffectiveRange(ucmp, pick.Target)})
	}
	return c
}

// conflictsWith reports whether two claims may not run concurrently.
func (c *Claim) conflictsWith(ucmp keys.Comparer, o *Claim) bool {
	if c.l0 && o.l0 {
		return true
	}
	for num := range c.files {
		if _, ok := o.files[num]; ok {
			return true
		}
	}
	for _, s := range c.spans {
		for _, t := range o.spans {
			if s.level == t.level && s.r.Overlaps(ucmp, t.r) {
				return true
			}
		}
	}
	return false
}

// admissible reports whether pick conflicts with no in-flight claim.
func (p *Picker) admissible(pick Pick) bool {
	if pick.Kind == PickNone {
		return true
	}
	if len(p.inflight) == 0 {
		return true
	}
	c := p.claimFor(pick)
	for _, other := range p.inflight {
		if c.conflictsWith(p.icmp.User, other) {
			return false
		}
	}
	return true
}

// Acquire registers pick's inputs and output ranges as in-flight and returns
// the claim to Release when the job completes. A conflict with an existing
// claim is an engine invariant violation — Pick vets every candidate against
// the in-flight set under the same lock hold — and is returned as an error
// so the store can surface it instead of corrupting a level.
func (p *Picker) Acquire(pick Pick) (*Claim, error) {
	c := p.claimFor(pick)
	for _, other := range p.inflight {
		if c.conflictsWith(p.icmp.User, other) {
			return nil, fmt.Errorf("compaction: claim %v conflicts with in-flight %v", c, other)
		}
	}
	p.inflight = append(p.inflight, c)
	return c, nil
}

// Release returns a claim acquired with Acquire.
func (p *Picker) Release(c *Claim) {
	for i, other := range p.inflight {
		if other == c {
			p.inflight = append(p.inflight[:i], p.inflight[i+1:]...)
			return
		}
	}
}

// InFlight reports the number of outstanding claims.
func (p *Picker) InFlight() int { return len(p.inflight) }
