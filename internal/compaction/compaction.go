// Package compaction holds the pure decision logic of the three compaction
// policies the repository implements:
//
//   - UDC — the traditional upper-level driven compaction of LevelDB: the
//     file picked in level L immediately drags every overlapping file in
//     level L+1 into one merge (the paper's baseline).
//   - LDC — the paper's contribution: picking a file triggers a metadata-only
//     *link* (freeze the file, slice it across the overlapping lower files);
//     real I/O happens only as a *merge* driven by a lower-level file that
//     has accumulated SliceThreshold slices (paper Algorithm 1).
//   - Tiered — a size-tiered lazy policy (Cassandra-style) used to
//     demonstrate the motivation that lazy schemes enlarge compaction
//     granularity and tail latency.
//
// The package decides *what* to do (a Pick); the executing store performs
// the I/O. Keeping the policy pure makes it unit-testable against synthetic
// versions.
package compaction

import (
	"math"
	"sort"

	"repro/internal/keys"
	"repro/internal/version"
)

// Policy selects the compaction algorithm.
type Policy int

// Available policies.
const (
	// UDC is upper-level driven compaction (LevelDB default).
	UDC Policy = iota
	// LDC is the paper's lower-level driven compaction.
	LDC
	// Tiered is a size-tiered lazy baseline.
	Tiered
)

// String names the policy.
func (p Policy) String() string {
	switch p {
	case UDC:
		return "UDC"
	case LDC:
		return "LDC"
	case Tiered:
		return "Tiered"
	default:
		return "unknown"
	}
}

// Params are the sizing knobs of the tree, mirroring the paper's symbols:
// Fanout is k, SSTableSize is b, SliceThreshold is T_s.
type Params struct {
	// Fanout is the capacity ratio between adjacent levels (k).
	Fanout int
	// SSTableSize is the target output file size (b).
	SSTableSize int64
	// BaseLevelBytes caps level 1; deeper levels grow by Fanout. When zero
	// it defaults to Fanout × SSTableSize.
	BaseLevelBytes int64
	// L0Trigger is the L0 file count that triggers an L0→L1 compaction.
	L0Trigger int
	// L0SlowdownTrigger is the L0 file count at which the commit controller
	// starts delaying writers. At or past it the LDC picker drains L0
	// before serving ripe merges — foreground admission outranks background
	// debt. When zero it defaults to 2 × L0Trigger.
	L0SlowdownTrigger int
	// SliceThreshold is LDC's T_s: the slice count on a lower-level file
	// that triggers its merge. When zero it defaults to Fanout.
	SliceThreshold int
	// FrozenFraction caps the frozen region relative to total table bytes;
	// above it the most-linked file is force-merged. Defaults to 0.25 (the
	// paper's worst-case space bound, §III-D).
	FrozenFraction float64
	// TieredTrigger is the per-tier file count for the Tiered policy.
	// When zero it defaults to Fanout.
	TieredTrigger int
	// DisableTrivialMove forces a rewrite even when a file could move down
	// by metadata only (ablation benchmarks).
	DisableTrivialMove bool
}

func (p Params) withDefaults() Params {
	if p.Fanout <= 1 {
		p.Fanout = 10
	}
	if p.SSTableSize <= 0 {
		p.SSTableSize = 2 << 20
	}
	if p.BaseLevelBytes <= 0 {
		p.BaseLevelBytes = int64(p.Fanout) * p.SSTableSize
	}
	if p.L0Trigger <= 0 {
		p.L0Trigger = 4
	}
	if p.L0SlowdownTrigger <= 0 {
		p.L0SlowdownTrigger = 2 * p.L0Trigger
	}
	if p.SliceThreshold <= 0 {
		p.SliceThreshold = p.Fanout
	}
	if p.FrozenFraction <= 0 {
		p.FrozenFraction = 0.25
	}
	if p.TieredTrigger <= 0 {
		p.TieredTrigger = p.Fanout
	}
	return p
}

// MaxBytesForLevel returns the capacity target of a level (levels >= 1).
func (p Params) MaxBytesForLevel(level int) int64 {
	n := p.BaseLevelBytes
	for l := 1; l < level; l++ {
		n *= int64(p.Fanout)
	}
	return n
}

// Kind discriminates what a Pick asks the store to do.
type Kind int

// Pick kinds.
const (
	// PickNone: nothing to do.
	PickNone Kind = iota
	// PickCompact: conventional merge of Inputs (level Level) with
	// Overlaps (level Level+1); outputs land in Level+1. Used by UDC at
	// all levels, by LDC for L0→L1, and by Tiered within tiers.
	PickCompact
	// PickTrivialMove: Inputs[0] can move to Level+1 by metadata only.
	PickTrivialMove
	// PickLink: LDC link phase: freeze Inputs[0] (level Level) and attach
	// one slice per file in Overlaps (level Level+1). Metadata only.
	PickLink
	// PickMerge: LDC merge phase: rewrite Target (level Level) together
	// with its accumulated slices; outputs land in Level (same level).
	PickMerge
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case PickNone:
		return "none"
	case PickCompact:
		return "compact"
	case PickTrivialMove:
		return "trivial-move"
	case PickLink:
		return "link"
	case PickMerge:
		return "merge"
	default:
		return "unknown"
	}
}

// Pick describes one unit of compaction work.
type Pick struct {
	Kind Kind
	// Level is the input level (for PickMerge: the level of Target).
	Level int
	// Inputs are upper-level input files.
	Inputs []*version.FileMeta
	// Overlaps are the lower-level files involved (merge inputs for
	// PickCompact, link targets for PickLink).
	Overlaps []*version.FileMeta
	// Target is the lower-level file whose slices a PickMerge consumes.
	Target *version.FileMeta
	// Score is the pressure that triggered the pick (diagnostics).
	Score float64
}

// Picker chooses compaction work from a version. It is not safe for
// concurrent use; the store calls it under its own mutex. The picker also
// tracks the claims of in-flight jobs (see claims.go): Pick never returns
// work whose inputs or output key ranges intersect a claimed job, which is
// what lets the store run several disjoint LDC merges in parallel.
type Picker struct {
	policy Policy
	params Params
	icmp   keys.InternalComparer
	// pointers are the per-level round-robin cursors (largest key of the
	// last compacted file), as in LevelDB.
	pointers [version.NumLevels]keys.InternalKey
	// threshold supplies T_s dynamically (self-adaptive mode); nil means
	// use params.SliceThreshold.
	threshold func() int
	// inflight holds one claim per scheduled-but-unapplied job.
	inflight []*Claim
}

// NewPicker returns a picker for the given policy.
func NewPicker(policy Policy, params Params, icmp keys.InternalComparer) *Picker {
	return &Picker{policy: policy, params: params.withDefaults(), icmp: icmp}
}

// SetThresholdFunc installs a dynamic SliceThreshold source (the adaptive
// controller). Passing nil reverts to the static parameter.
func (p *Picker) SetThresholdFunc(fn func() int) { p.threshold = fn }

// SetPointer restores a round-robin cursor (from the MANIFEST on recovery).
func (p *Picker) SetPointer(level int, key keys.InternalKey) { p.pointers[level] = key }

// Pointer reads a cursor (persisted into version edits by the store).
func (p *Picker) Pointer(level int) keys.InternalKey { return p.pointers[level] }

// Params returns the effective parameters.
func (p *Picker) Params() Params { return p.params }

// SliceThreshold returns the current T_s.
func (p *Picker) SliceThreshold() int {
	if p.threshold != nil {
		if t := p.threshold(); t > 0 {
			return t
		}
	}
	return p.params.SliceThreshold
}

// Score reports the compaction pressure of a level: >= 1 means the level
// needs compaction. L0 scores by file count, deeper levels by byte size
// relative to the level target. Under LDC, bytes pending in slices count
// toward the level that will absorb them.
func (p *Picker) Score(v *version.Version, level int) float64 {
	if level == 0 {
		return float64(v.NumFiles(0)) / float64(p.params.L0Trigger)
	}
	bytes := v.LevelBytes(level)
	if p.policy == LDC {
		for _, f := range v.Sliced[level] {
			bytes += f.SliceBytes()
		}
	}
	return float64(bytes) / float64(p.MaxBytesForLevel(level))
}

// MaxBytesForLevel exposes the level target for stats.
func (p *Picker) MaxBytesForLevel(level int) int64 { return p.params.MaxBytesForLevel(level) }

// Debt estimates the bytes of compaction work the tree owes before every
// level is back under its target: excess L0 files at one table each, plus
// each deeper level's bytes over target (under LDC, bytes pending in slices
// count toward the level that will absorb them). The commit controller
// scales its continuous slowdown with this figure, so admission tightens as
// background work falls behind rather than stepping at the L0 cliff.
func (p *Picker) Debt(v *version.Version) int64 {
	var debt int64
	if extra := v.NumFiles(0) - p.params.L0Trigger; extra > 0 {
		debt += int64(extra) * p.params.SSTableSize
	}
	for level := 1; level < version.NumLevels; level++ {
		bytes := v.LevelBytes(level)
		if p.policy == LDC {
			for _, f := range v.Sliced[level] {
				bytes += f.SliceBytes()
			}
		}
		if over := bytes - p.MaxBytesForLevel(level); over > 0 {
			debt += over
		}
	}
	return debt
}

// Admission premiums for concurrent work: while any job is in flight, new
// work must be this factor more urgent than the normal trigger before an
// additional worker takes it. Without the premium a multi-worker pool
// drains work the instant it ripens — L0 compactions at exactly the
// trigger, merges at exactly T_s — producing many small jobs where a busy
// single worker would have batched the same bytes into fewer, larger ones:
// pure write amplification on a device that serializes I/O anyway. The
// premium vanishes whenever the picker is idle, so a single-worker pool
// never sees it, and frozen-space backpressure (a hard space bound) is
// always exempt. The values were tuned on the repository's fill benchmark:
// L0 batching matters most (each L0 job drags the overlapping L1 files, so
// halving L0 job count nearly halves that write amplification), merges
// benefit moderately from extra slice accumulation, and byte-pressure
// links/compactions need only a nudge.
const (
	// barL0 scales the L0 file-count trigger for concurrent picks.
	barL0 = 1.75
	// barDeep scales the byte-pressure trigger of levels >= 1.
	barDeep = 1.25
	// barMerge scales T_s (slice count and byte trigger) for LDC merges.
	barMerge = 1.5
)

// minScore is the pressure threshold a level must reach to be picked right
// now: 1 when the picker is idle, the level's admission premium otherwise.
func (p *Picker) minScore(level int) float64 {
	if len(p.inflight) == 0 {
		return 1.0
	}
	if level == 0 {
		return barL0
	}
	return barDeep
}

// Pick returns the next unit of work that does not conflict with any
// in-flight claim, or a PickNone. With no claims outstanding the choice is
// identical to the serial engine's.
func (p *Picker) Pick(v *version.Version) Pick {
	switch p.policy {
	case Tiered:
		return p.pickTiered(v)
	case LDC:
		return p.pickLDC(v)
	default:
		return p.pickUDC(v)
	}
}

// levelScore pairs a level with its compaction pressure.
type levelScore struct {
	level int
	score float64
}

// levelsByScore returns every level scoring at least minScore (1, or the
// concurrency admission bar while jobs are in flight), ordered by score
// descending with ties going to the deeper level — the first entry matches
// the serial engine's single-level selection, and the rest give a
// concurrent picker fallbacks when the hottest level's work is claimed.
func (p *Picker) levelsByScore(v *version.Version) []levelScore {
	var out []levelScore
	for level := 0; level < version.NumLevels-1; level++ {
		if s := p.Score(v, level); s >= p.minScore(level) {
			out = append(out, levelScore{level, s})
		}
	}
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].score != out[j].score {
			return out[i].score > out[j].score
		}
		return out[i].level > out[j].level
	})
	return out
}

// roundRobin returns a level's files ordered starting just after the level's
// cursor, wrapping around — the candidate order of LevelDB's compact-pointer
// scheme.
func (p *Picker) roundRobin(v *version.Version, level int) []*version.FileMeta {
	files := v.Levels[level]
	if len(files) == 0 {
		return nil
	}
	ptr := p.pointers[level]
	start := 0
	if ptr != nil {
		for i, f := range files {
			if p.icmp.Compare(f.Largest, ptr) > 0 {
				start = i
				break
			}
		}
	}
	out := make([]*version.FileMeta, 0, len(files))
	for i := 0; i < len(files); i++ {
		out = append(out, files[(start+i)%len(files)])
	}
	return out
}

// expandL0 grows an L0 input set to the transitive closure of overlapping
// L0 files (they may mutually overlap).
func (p *Picker) expandL0(v *version.Version, seed *version.FileMeta) []*version.FileMeta {
	ucmp := p.icmp.User
	r := seed.UserRange()
	inputs := []*version.FileMeta{seed}
	for grew := true; grew; {
		grew = false
		for _, f := range v.Levels[0] {
			already := false
			for _, in := range inputs {
				if in.Num == f.Num {
					already = true
					break
				}
			}
			if already || !f.UserRange().Overlaps(ucmp, r) {
				continue
			}
			inputs = append(inputs, f)
			if ucmp.Compare(f.Smallest.UserKey(), r.Lo) < 0 {
				r.Lo = f.Smallest.UserKey()
			}
			if ucmp.Compare(f.Largest.UserKey(), r.Hi) > 0 {
				r.Hi = f.Largest.UserKey()
			}
			grew = true
		}
	}
	return inputs
}

func inputsRange(ucmp keys.Comparer, files []*version.FileMeta) keys.KeyRange {
	r := files[0].UserRange()
	for _, f := range files[1:] {
		if ucmp.Compare(f.Smallest.UserKey(), r.Lo) < 0 {
			r.Lo = f.Smallest.UserKey()
		}
		if ucmp.Compare(f.Largest.UserKey(), r.Hi) > 0 {
			r.Hi = f.Largest.UserKey()
		}
	}
	return r
}

// pickUDC implements the LevelDB-style upper-level driven pick, trying the
// most pressured level first and falling back to other pressured levels and
// later round-robin files when the preferred work is already claimed.
func (p *Picker) pickUDC(v *version.Version) Pick {
	for _, ls := range p.levelsByScore(v) {
		if ls.level == 0 {
			inputs := p.expandL0(v, v.Levels[0][0])
			r := inputsRange(p.icmp.User, inputs)
			pick := p.compactOrMove(0, inputs, v.Overlaps(1, r), ls.score)
			if p.admissible(pick) {
				return pick
			}
			continue
		}
		for _, f := range p.roundRobin(v, ls.level) {
			inputs := []*version.FileMeta{f}
			r := inputsRange(p.icmp.User, inputs)
			pick := p.compactOrMove(ls.level, inputs, v.Overlaps(ls.level+1, r), ls.score)
			if p.admissible(pick) {
				return pick
			}
		}
	}
	return Pick{Kind: PickNone}
}

// compactOrMove builds the conventional pick for an input set: a trivial
// move when nothing overlaps below (unless disabled), else a compact.
func (p *Picker) compactOrMove(level int, inputs, overlaps []*version.FileMeta, score float64) Pick {
	if len(overlaps) == 0 && len(inputs) == 1 && !p.params.DisableTrivialMove {
		return Pick{Kind: PickTrivialMove, Level: level, Inputs: inputs, Score: score}
	}
	return Pick{Kind: PickCompact, Level: level, Inputs: inputs, Overlaps: overlaps, Score: score}
}

// pickLDC implements the paper's Algorithm 1 scheduling:
//  1. any lower-level file at or past T_s slices merges first;
//  2. a frozen region past its space bound forces the most-linked file to
//     merge;
//  3. otherwise the most pressured level links (L0 compacts conventionally).
func (p *Picker) pickLDC(v *version.Version) Pick {
	ts := p.SliceThreshold()

	// 0. L0 urgency: once L0 is deep enough that the commit controller is
	// delaying writers, draining it is the only background work that lifts
	// the throttle — ripe merges are deferrable debt by comparison. This
	// mirrors the I/O scheduler's tier order (flush > L0→L1 > merges) at
	// the picking layer, so a compaction storm cannot park every worker on
	// merges while foreground writes sit in the slowdown curve.
	if v.NumFiles(0) >= p.params.L0SlowdownTrigger {
		if pick := p.pickLDCLevel(v, 0, p.Score(v, 0)); pick.Kind != PickNone {
			return pick
		}
	}

	// 1. Merge any file that accumulated enough upper-level data: either
	// SliceThreshold slices (Algorithm 1's trigger) or slice bytes matching
	// its own size ("nearly the same amount of data as itself", §III-A),
	// scaled with T_s when the threshold is self-adapted away from fan-out.
	// Ripe merges are the jobs that parallelize best — their inputs are one
	// lower-level file plus slice windows, so distinct targets rarely
	// conflict — and every admissible one is offered in turn. While other
	// jobs are in flight the triggers carry the barMerge premium: an extra
	// worker only takes a merge that is over-ripe, letting barely-ripe
	// targets keep accumulating slices the way they would under a busy
	// single worker.
	ripeTs := ts
	if len(p.inflight) > 0 {
		ripeTs = int(math.Ceil(float64(ts) * barMerge))
	}
	byteTrigger := func(f *version.FileMeta) int64 {
		return f.Size * int64(ripeTs) / int64(p.params.Fanout)
	}
	for level := 1; level < version.NumLevels; level++ {
		for _, f := range v.Sliced[level] {
			if len(f.Slices) >= ripeTs || f.SliceBytes() >= byteTrigger(f) {
				pick := Pick{Kind: PickMerge, Level: level, Target: f,
					Score: float64(len(f.Slices)) / float64(ts)}
				if p.admissible(pick) {
					return pick
				}
			}
		}
	}

	// 2. Space backpressure: only *duplicated* frozen bytes (already-merged
	// slice portions, the paper's gray slices) are true overhead; force the
	// most-linked file to merge when they exceed the bound.
	if dup := v.DuplicatedFrozenBytes(); dup > 0 {
		var total int64
		for l := 0; l < version.NumLevels; l++ {
			total += v.LevelBytes(l)
		}
		if float64(dup) > p.params.FrozenFraction*float64(total+dup) {
			var best Pick
			var bestBytes int64
			for level := 1; level < version.NumLevels; level++ {
				for _, f := range v.Sliced[level] {
					if sb := f.SliceBytes(); sb > bestBytes {
						pick := Pick{Kind: PickMerge, Level: level, Target: f, Score: 1}
						if p.admissible(pick) {
							best, bestBytes = pick, sb
						}
					}
				}
			}
			if best.Kind == PickMerge {
				return best
			}
		}
	}

	// 3. Pressure-driven link (or conventional L0 compaction), most
	// pressured level first.
	for _, ls := range p.levelsByScore(v) {
		if pick := p.pickLDCLevel(v, ls.level, ls.score); pick.Kind != PickNone {
			return pick
		}
	}
	return Pick{Kind: PickNone}
}

// pickLDCLevel picks link/move/merge work for one pressured level, skipping
// candidates claimed by in-flight jobs.
func (p *Picker) pickLDCLevel(v *version.Version, level int, score float64) Pick {
	if level == 0 {
		inputs := p.expandL0(v, v.Levels[0][0])
		r := inputsRange(p.icmp.User, inputs)
		overlaps := v.EffectiveOverlaps(1, r)
		pick := Pick{Kind: PickCompact, Level: 0, Inputs: inputs, Overlaps: overlaps, Score: score}
		if len(overlaps) == 0 && len(inputs) == 1 && !p.params.DisableTrivialMove {
			pick = Pick{Kind: PickTrivialMove, Level: 0, Inputs: inputs, Score: score}
		}
		if p.admissible(pick) {
			return pick
		}
		return Pick{Kind: PickNone}
	}

	// A file already carrying slices cannot be frozen (paper §III-D); the
	// round-robin pass links the first admissible slice-free file.
	sawUnsliced := false
	for _, f := range p.roundRobin(v, level) {
		if len(f.Slices) > 0 {
			continue
		}
		sawUnsliced = true
		var pick Pick
		overlaps := v.EffectiveOverlaps(level+1, EffectiveRangeOf(p.icmp.User, f))
		switch {
		case len(overlaps) == 0 && p.params.DisableTrivialMove:
			pick = Pick{Kind: PickCompact, Level: level, Inputs: []*version.FileMeta{f}, Score: score}
		case len(overlaps) == 0:
			pick = Pick{Kind: PickTrivialMove, Level: level, Inputs: []*version.FileMeta{f}, Score: score}
		default:
			pick = Pick{Kind: PickLink, Level: level, Inputs: []*version.FileMeta{f},
				Overlaps: overlaps, Score: score}
		}
		if p.admissible(pick) {
			return pick
		}
	}
	if !sawUnsliced {
		// Every file carries slices: merge the fullest admissible one so the
		// level can progress next round.
		var best Pick
		bestSlices := -1
		for _, c := range v.Sliced[level] {
			if len(c.Slices) > bestSlices {
				pick := Pick{Kind: PickMerge, Level: level, Target: c, Score: score}
				if p.admissible(pick) {
					best, bestSlices = pick, len(c.Slices)
				}
			}
		}
		if best.Kind == PickMerge {
			return best
		}
	}
	return Pick{Kind: PickNone}
}

// EffectiveRangeOf is re-exported here for executor convenience.
func EffectiveRangeOf(ucmp keys.Comparer, f *version.FileMeta) keys.KeyRange {
	return version.EffectiveRange(ucmp, f)
}

// pickTiered merges a whole tier into the next when it accumulates
// TieredTrigger files. Levels hold mutually overlapping runs, so the
// store must be in overlap-tolerant mode.
func (p *Picker) pickTiered(v *version.Version) Pick {
	trigger := p.params.TieredTrigger
	if len(p.inflight) > 0 {
		trigger = int(math.Ceil(float64(trigger) * barDeep)) // premium, as in pickLDC
	}
	for level := 0; level < version.NumLevels-1; level++ {
		files := v.Levels[level]
		if len(files) >= trigger {
			inputs := append([]*version.FileMeta(nil), files...)
			pick := Pick{
				Kind:   PickCompact,
				Level:  level,
				Inputs: inputs,
				Score:  float64(len(files)) / float64(p.params.TieredTrigger),
			}
			if p.admissible(pick) {
				return pick
			}
		}
	}
	return Pick{Kind: PickNone}
}

// SliceWindows computes the per-target slice key windows for a link of
// upper file su across the lower-level overlap set (paper Example 3.2):
// the first target's window starts at su's smallest key, each subsequent
// window starts just after the previous target's responsibility boundary,
// and the last window extends to su's largest key. Responsibility
// boundaries use each target's *effective* largest key (own range union
// existing slice windows) so repeated links stay consistent, and windows
// are clamped to be contiguous and non-inverted, guaranteeing every key of
// su lands in exactly one slice. SliceWindows sorts overlaps in place by
// effective lower bound and returns windows in that order. Windows are
// inclusive; "just after" appends a zero byte, the successor under the
// bytewise comparer.
func SliceWindows(ucmp keys.Comparer, su *version.FileMeta, overlaps []*version.FileMeta) []keys.KeyRange {
	sortByEffectiveLo(ucmp, overlaps)
	windows := make([]keys.KeyRange, len(overlaps))
	lo := su.Smallest.UserKey()
	for i, sl := range overlaps {
		hi := version.EffectiveRange(ucmp, sl).Hi
		if ucmp.Compare(hi, lo) < 0 {
			hi = lo // degenerate target entirely below the remaining range
		}
		if i == len(overlaps)-1 && ucmp.Compare(su.Largest.UserKey(), hi) > 0 {
			hi = su.Largest.UserKey()
		}
		windows[i] = keys.KeyRange{Lo: lo, Hi: hi}
		lo = successor(hi)
	}
	return windows
}

func sortByEffectiveLo(ucmp keys.Comparer, files []*version.FileMeta) {
	sort.Slice(files, func(i, j int) bool {
		return ucmp.Compare(version.EffectiveRange(ucmp, files[i]).Lo,
			version.EffectiveRange(ucmp, files[j]).Lo) < 0
	})
}

// successor returns the smallest byte string strictly greater than k under
// bytewise ordering.
func successor(k []byte) []byte {
	out := make([]byte, len(k)+1)
	copy(out, k)
	return out
}
