// Package version tracks the LSM-tree's file metadata: which SSTables live
// in which level, their key ranges, and — the LDC extension — the frozen
// region and the slice links attached to lower-level files. Metadata changes
// are expressed as VersionEdits, persisted to a MANIFEST log, and applied to
// immutable Version snapshots, exactly as in LevelDB, so both the metadata
// and LDC's link state survive crashes.
package version

import (
	"fmt"
	"sync/atomic"

	"repro/internal/keys"
)

// NumLevels is the number of on-disk levels (L0..L6).
const NumLevels = 7

// Slice is LDC's link record: a key-range window into a frozen upper-level
// SSTable, attached to one lower-level SSTable. When the lower file has
// accumulated Threshold slices, a merge is triggered (paper Algorithm 1).
type Slice struct {
	// FrozenNum is the file number of the frozen SSTable the slice reads.
	FrozenNum uint64
	// Range is the inclusive user-key window of the slice.
	Range keys.KeyRange
	// LinkSeq orders link events; higher means linked later, i.e. newer
	// data. Reads probe slices newest-first.
	LinkSeq uint64
	// Bytes estimates the slice's data volume (for merge sizing and stats).
	Bytes int64
}

// FileMeta describes one SSTable. The same *FileMeta is shared by every
// Version that contains the file; refs counts those versions (plus
// transient holds by compactions), and the file is obsolete when refs
// reaches zero.
type FileMeta struct {
	Num      uint64
	Size     int64
	Smallest keys.InternalKey
	Largest  keys.InternalKey

	// Slices are the LDC links attached to this (lower-level) file, in
	// LinkSeq order, oldest first. Nil for files without links. The slice
	// header is replaced, never mutated, when versions change, so a
	// FileMeta's Slices value is immutable once published in a Version.
	Slices []Slice

	// AllowedSeeks implements LevelDB's seek-triggered compaction budget.
	AllowedSeeks atomic.Int32

	refs atomic.Int32
}

// UserRange returns the file's inclusive user-key range.
func (f *FileMeta) UserRange() keys.KeyRange {
	return keys.KeyRange{
		Lo: f.Smallest.UserKey(),
		Hi: f.Largest.UserKey(),
	}
}

// SliceBytes sums the byte estimates of the attached slices.
func (f *FileMeta) SliceBytes() int64 {
	var n int64
	for i := range f.Slices {
		n += f.Slices[i].Bytes
	}
	return n
}

// Ref acquires a reference.
func (f *FileMeta) Ref() { f.refs.Add(1) }

// Unref releases a reference, reporting whether the file became obsolete.
func (f *FileMeta) Unref() bool {
	n := f.refs.Add(-1)
	if n < 0 {
		panic(fmt.Sprintf("version: file %06d refcount below zero", f.Num))
	}
	return n == 0
}

// Refs reports the current reference count (for tests).
func (f *FileMeta) Refs() int32 { return f.refs.Load() }

// withSlices returns a copy of f sharing the number/size/bounds but carrying
// the given slice list. Used by the version builder: FileMeta values in
// versions are immutable, so attaching a slice replaces the meta.
func (f *FileMeta) withSlices(slices []Slice) *FileMeta {
	nf := &FileMeta{
		Num:      f.Num,
		Size:     f.Size,
		Smallest: f.Smallest,
		Largest:  f.Largest,
		Slices:   slices,
	}
	nf.AllowedSeeks.Store(f.AllowedSeeks.Load())
	return nf
}

// FrozenMeta describes an SSTable in LDC's frozen region: removed from the
// level structure, referenced only through slices. Its reference count is
// derived (number of slices pointing at it in the current version), not
// stored.
type FrozenMeta struct {
	Num      uint64
	Size     int64
	Smallest keys.InternalKey
	Largest  keys.InternalKey

	refs atomic.Int32
}

// Ref acquires a reference.
func (f *FrozenMeta) Ref() { f.refs.Add(1) }

// Unref releases a reference, reporting whether the frozen file became
// obsolete.
func (f *FrozenMeta) Unref() bool {
	n := f.refs.Add(-1)
	if n < 0 {
		panic(fmt.Sprintf("version: frozen file %06d refcount below zero", f.Num))
	}
	return n == 0
}

// UserRange returns the frozen file's inclusive user-key range.
func (f *FrozenMeta) UserRange() keys.KeyRange {
	return keys.KeyRange{Lo: f.Smallest.UserKey(), Hi: f.Largest.UserKey()}
}
