package version

import (
	"bytes"
	"errors"
	"testing"

	"repro/internal/keys"
)

func ik(u string, seq keys.Seq) keys.InternalKey {
	return keys.MakeInternalKey(nil, []byte(u), seq, keys.KindSet)
}

func TestEditEncodeDecodeRoundTrip(t *testing.T) {
	e := &Edit{ComparerName: "ldc.BytewiseComparator"}
	e.SetLogNum(7)
	e.SetNextFileNum(42)
	e.SetLastSeq(1000)
	e.SetNextLinkSeq(55)
	e.CompactPointers = append(e.CompactPointers, CompactPointer{Level: 2, Key: ik("ptr", 3)})
	e.DeleteFile(1, 10)
	e.AddFile(2, &FileMeta{
		Num: 11, Size: 2048,
		Smallest: ik("a", 5), Largest: ik("m", 9),
		Slices: []Slice{{FrozenNum: 3, Range: keys.KeyRange{Lo: []byte("b"), Hi: []byte("d")}, LinkSeq: 4, Bytes: 512}},
	})
	e.FreezeFile(&FrozenMeta{Num: 3, Size: 4096, Smallest: ik("b", 1), Largest: ik("z", 2)})
	e.AddSlice(2, 11, Slice{FrozenNum: 3, Range: keys.KeyRange{Lo: []byte("e"), Hi: []byte("f")}, LinkSeq: 6, Bytes: 100})

	d, err := DecodeEdit(e.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if d.ComparerName != e.ComparerName {
		t.Errorf("ComparerName = %q", d.ComparerName)
	}
	if !d.hasLogNum || d.LogNum != 7 || !d.hasNextFileNum || d.NextFileNum != 42 ||
		!d.hasLastSeq || d.LastSeq != 1000 || !d.hasNextLinkSeq || d.NextLinkSeq != 55 {
		t.Errorf("scalars wrong: %+v", d)
	}
	if len(d.CompactPointers) != 1 || d.CompactPointers[0].Level != 2 ||
		!bytes.Equal(d.CompactPointers[0].Key, e.CompactPointers[0].Key) {
		t.Errorf("compact pointers = %+v", d.CompactPointers)
	}
	if len(d.DeletedFiles) != 1 || d.DeletedFiles[0] != (DeletedFile{Level: 1, Num: 10}) {
		t.Errorf("deleted = %+v", d.DeletedFiles)
	}
	if len(d.NewFiles) != 1 {
		t.Fatalf("new files = %+v", d.NewFiles)
	}
	nf := d.NewFiles[0]
	if nf.Level != 2 || nf.Meta.Num != 11 || nf.Meta.Size != 2048 ||
		!bytes.Equal(nf.Meta.Smallest, ik("a", 5)) || len(nf.Meta.Slices) != 1 {
		t.Errorf("new file = %+v", nf.Meta)
	}
	s := nf.Meta.Slices[0]
	if s.FrozenNum != 3 || string(s.Range.Lo) != "b" || string(s.Range.Hi) != "d" ||
		s.LinkSeq != 4 || s.Bytes != 512 {
		t.Errorf("embedded slice = %+v", s)
	}
	if len(d.FrozenFiles) != 1 || d.FrozenFiles[0].Num != 3 || d.FrozenFiles[0].Size != 4096 {
		t.Errorf("frozen = %+v", d.FrozenFiles)
	}
	if len(d.NewSlices) != 1 || d.NewSlices[0].FileNum != 11 ||
		string(d.NewSlices[0].Slice.Range.Lo) != "e" {
		t.Errorf("new slices = %+v", d.NewSlices)
	}
}

func TestEmptyEditRoundTrip(t *testing.T) {
	e := &Edit{}
	d, err := DecodeEdit(e.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if d.ComparerName != "" || d.hasLogNum || len(d.NewFiles) != 0 {
		t.Errorf("empty edit decoded as %+v", d)
	}
}

func TestDecodeEditRejectsCorrupt(t *testing.T) {
	e := &Edit{}
	e.AddFile(1, &FileMeta{Num: 1, Smallest: ik("a", 1), Largest: ik("b", 1)})
	enc := e.Encode()
	for cut := 1; cut < len(enc); cut++ {
		if _, err := DecodeEdit(enc[:cut]); err == nil {
			// Some prefixes happen to decode as valid shorter edits only if
			// they end exactly on a field boundary; a truncated trailing
			// field must error.
			continue
		} else if !errors.Is(err, ErrCorruptEdit) {
			t.Fatalf("cut=%d: err=%v, not ErrCorruptEdit", cut, err)
		}
	}
	if _, err := DecodeEdit([]byte{0xee, 0x01}); err == nil {
		t.Error("unknown tag accepted")
	}
}

func TestParseFileName(t *testing.T) {
	cases := []struct {
		name string
		typ  FileType
		num  uint64
	}{
		{"CURRENT", TypeCurrent, 0},
		{"MANIFEST-000005", TypeManifest, 5},
		{"000123.sst", TypeTable, 123},
		{"000007.log", TypeLog, 7},
		{"000009.tmp", TypeTemp, 9},
		{"LOCK", TypeUnknown, 0},
		{"xyz.sst", TypeUnknown, 0},
		{"MANIFEST-abc", TypeUnknown, 0},
	}
	for _, tc := range cases {
		typ, num := ParseFileName(tc.name)
		if typ != tc.typ || num != tc.num {
			t.Errorf("ParseFileName(%q) = %v,%d want %v,%d", tc.name, typ, num, tc.typ, tc.num)
		}
	}
}

func TestFileNameRoundTrip(t *testing.T) {
	dir := "/db"
	for _, tc := range []struct {
		path string
		typ  FileType
		num  uint64
	}{
		{TableFileName(dir, 12), TypeTable, 12},
		{LogFileName(dir, 3), TypeLog, 3},
		{ManifestFileName(dir, 9), TypeManifest, 9},
		{CurrentFileName(dir), TypeCurrent, 0},
	} {
		base := tc.path[len(dir)+1:]
		typ, num := ParseFileName(base)
		if typ != tc.typ || num != tc.num {
			t.Errorf("%q parsed as %v,%d", base, typ, num)
		}
	}
}
