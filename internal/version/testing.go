package version

import "repro/internal/keys"

// BuildForTest applies one edit to an empty version and returns the result,
// validating invariants. It exists for other packages' unit tests, which
// need synthetic versions without a Set or MANIFEST.
func BuildForTest(icmp keys.InternalComparer, e *Edit) (*Version, error) {
	b := newBuilder(icmp, NewVersion(icmp))
	b.apply(e)
	v, _ := b.finish()
	if err := v.CheckInvariants(); err != nil {
		return nil, err
	}
	return v, nil
}
