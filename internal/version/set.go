package version

import (
	"errors"
	"fmt"
	"io"
	"sync/atomic"

	"repro/internal/invariants"
	"repro/internal/keys"
	"repro/internal/vfs"
	"repro/internal/wal"
)

// Set owns the current Version, the MANIFEST log, the file-number and
// sequence allocators, and per-file reference counts used to decide when a
// table file becomes obsolete. LogAndApply serializes itself internally, so
// concurrent compaction workers may call it directly; reads of Current are
// safe from any goroutine.
type Set struct {
	fs   vfs.FS
	dir  string
	icmp keys.InternalComparer

	// AllowOverlaps tolerates overlapping files within sorted levels, as the
	// size-tiered policy produces. Set before Create/Recover.
	AllowOverlaps bool

	// logMu serializes LogAndApply invocations: MANIFEST records must land in
	// the same order versions are installed, and each edit must build on the
	// version produced by the previous one. Held across I/O, so it is separate
	// from mu (which protects in-memory state and is never held across I/O).
	//ldclint:lockrank version.set.logMu 40
	logMu invariants.Mutex

	//ldclint:lockrank version.set.mu 45
	mu       invariants.Mutex
	current  *Version
	fileRefs map[uint64]int
	obsolete []uint64

	nextFileNum uint64
	// lastSeq is atomic, not mu-guarded: it is the one Set field on the
	// lock-free read path (every Get and snapshot loads the visible
	// sequence), so it must be readable without any mutex. Writers advance
	// it with a CAS-max so publication stays monotonic from any caller.
	lastSeq     atomic.Uint64
	logNum      uint64
	nextLinkSeq uint64

	compactPointers [NumLevels]keys.InternalKey

	manifest     *wal.Writer
	manifestFile vfs.File
	manifestNum  uint64
}

// NewSet creates a Set rooted at dir. Call Create for a fresh database or
// Recover for an existing one before any other method.
func NewSet(fs vfs.FS, dir string, icmp keys.InternalComparer) *Set {
	s := &Set{
		fs:          fs,
		dir:         dir,
		icmp:        icmp,
		fileRefs:    map[uint64]int{},
		nextFileNum: 2,
		nextLinkSeq: 1,
	}
	s.logMu.Rank("version.set.logMu", 40)
	s.mu.Rank("version.set.mu", 45)
	return s
}

// Current returns the current version with a reference held; callers must
// Unref it.
func (s *Set) Current() *Version {
	s.mu.Lock()
	defer s.mu.Unlock()
	v := s.current
	v.Ref()
	return v
}

// CurrentNoRef returns the current version without touching refcounts; only
// for transient inspection of its immutable metadata (file lists, sizes)
// within the calling function. The returned version must NOT be retained,
// and in particular must never be Ref()'d afterwards: LogAndApply may
// concurrently install a successor and drop this version to zero refs, so a
// late Ref would resurrect it and double-release its file references on the
// final Unref. Callers that keep the version must use Current instead.
func (s *Set) CurrentNoRef() *Version {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.current
}

// NewFileNum allocates a file number.
func (s *Set) NewFileNum() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := s.nextFileNum
	s.nextFileNum++
	return n
}

// NewLinkSeq allocates an LDC link sequence number.
func (s *Set) NewLinkSeq() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := s.nextLinkSeq
	s.nextLinkSeq++
	return n
}

// LastSeq returns the newest committed write sequence. Lock-free: this is
// on the hot read path.
func (s *Set) LastSeq() keys.Seq {
	return keys.Seq(s.lastSeq.Load())
}

// SetLastSeq publishes a newer committed sequence (monotonic CAS-max).
func (s *Set) SetLastSeq(seq keys.Seq) {
	for {
		cur := s.lastSeq.Load()
		if uint64(seq) <= cur || s.lastSeq.CompareAndSwap(cur, uint64(seq)) {
			return
		}
	}
}

// LogNum returns the WAL number covered by the current version.
func (s *Set) LogNum() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.logNum
}

// CompactPointer returns the round-robin cursor for a level.
func (s *Set) CompactPointer(level int) keys.InternalKey {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.compactPointers[level]
}

// Create initializes a brand-new database: an empty version, a MANIFEST
// with a snapshot record, and CURRENT pointing at it.
func (s *Set) Create() error {
	if err := s.fs.MkdirAll(s.dir); err != nil {
		return err
	}
	s.mu.Lock()
	s.current = &Version{icmp: s.icmp, Frozen: map[uint64]*FrozenMeta{}, set: s}
	s.current.Ref()
	s.mu.Unlock()
	return s.writeNewManifest()
}

// Recover loads the database state from CURRENT + MANIFEST.
func (s *Set) Recover() error {
	cur, err := s.readCurrent()
	if err != nil {
		return err
	}
	mf, err := s.fs.Open(cur)
	if err != nil {
		return fmt.Errorf("version: open manifest %s: %w", cur, err)
	}
	defer mf.Close()

	base := &Version{icmp: s.icmp, Frozen: map[uint64]*FrozenMeta{}}
	r := wal.NewReader(mf)
	var sawComparer bool
	for {
		rec, err := r.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return fmt.Errorf("version: manifest replay: %w", err)
		}
		e, err := DecodeEdit(rec)
		if err != nil {
			return err
		}
		if e.ComparerName != "" {
			sawComparer = true
			if e.ComparerName != s.icmp.User.Name() {
				return fmt.Errorf("version: database uses comparer %q, opened with %q",
					e.ComparerName, s.icmp.User.Name())
			}
		}
		b := newBuilder(s.icmp, base)
		b.apply(e)
		base, _ = b.finish()
		s.applyAllocators(e)
	}
	if !sawComparer {
		return errors.New("version: manifest missing comparer record")
	}
	if err := base.checkInvariants(s.AllowOverlaps); err != nil {
		return err
	}

	s.mu.Lock()
	base.set = s
	s.current = base
	s.current.Ref()
	for _, num := range base.allFileNums() {
		s.fileRefs[num]++
	}
	s.mu.Unlock()

	// Continue in a fresh MANIFEST so the old one can be dropped.
	if err := s.writeNewManifest(); err != nil {
		return err
	}
	return s.fs.Remove(cur)
}

func (s *Set) applyAllocators(e *Edit) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if e.hasNextFileNum && e.NextFileNum > s.nextFileNum {
		s.nextFileNum = e.NextFileNum
	}
	if e.hasLastSeq {
		s.SetLastSeq(e.LastSeq)
	}
	if e.hasLogNum && e.LogNum > s.logNum {
		s.logNum = e.LogNum
	}
	if e.hasNextLinkSeq && e.NextLinkSeq > s.nextLinkSeq {
		s.nextLinkSeq = e.NextLinkSeq
	}
	for _, cp := range e.CompactPointers {
		s.compactPointers[cp.Level] = cp.Key
	}
}

func (s *Set) readCurrent() (string, error) {
	f, err := s.fs.Open(CurrentFileName(s.dir))
	if err != nil {
		return "", fmt.Errorf("version: read CURRENT: %w", err)
	}
	defer f.Close()
	size, err := f.Size()
	if err != nil {
		return "", err
	}
	buf := make([]byte, size)
	if _, err := f.ReadAt(buf, 0); err != nil && err != io.EOF {
		return "", err
	}
	name := string(buf)
	for len(name) > 0 && (name[len(name)-1] == '\n' || name[len(name)-1] == '\r') {
		name = name[:len(name)-1]
	}
	if name == "" {
		return "", errors.New("version: CURRENT is empty")
	}
	return s.dir + "/" + name, nil
}

// writeNewManifest starts a fresh MANIFEST containing a full snapshot of
// current state and atomically points CURRENT at it.
func (s *Set) writeNewManifest() error {
	num := s.NewFileNum()
	name := ManifestFileName(s.dir, num)
	f, err := s.fs.Create(name)
	if err != nil {
		return err
	}
	w := wal.NewWriter(f)
	if err := w.AddRecord(s.snapshotEdit().Encode()); err != nil {
		_ = f.Close() // abandoning the half-written manifest
		return err
	}
	if err := w.Sync(); err != nil {
		_ = f.Close() // abandoning the half-written manifest
		return err
	}

	// Point CURRENT at the new manifest via an atomic rename.
	tmp := TempFileName(s.dir, num)
	tf, err := s.fs.Create(tmp)
	if err != nil {
		_ = f.Close()
		return err
	}
	if _, err := tf.Write([]byte(fmt.Sprintf("MANIFEST-%06d\n", num))); err != nil {
		_ = tf.Close()
		_ = f.Close()
		return err
	}
	if err := tf.Sync(); err != nil {
		_ = tf.Close()
		_ = f.Close()
		return err
	}
	if err := tf.Close(); err != nil {
		_ = f.Close()
		return err
	}
	if err := s.fs.Rename(tmp, CurrentFileName(s.dir)); err != nil {
		_ = f.Close()
		return err
	}

	// Install the new manifest under s.mu, but do the old handle's Close and
	// unlink outside it: s.mu guards state used by the read path and must
	// never be held across filesystem calls.
	s.mu.Lock()
	oldFile := s.manifestFile
	oldNum := s.manifestNum
	s.manifest = w
	s.manifestFile = f
	s.manifestNum = num
	s.mu.Unlock()
	if oldFile != nil {
		_ = oldFile.Close() // superseded manifest; already replaced durably
		_ = s.fs.Remove(ManifestFileName(s.dir, oldNum))
	}
	return nil
}

// snapshotEdit captures complete current state as one edit.
func (s *Set) snapshotEdit() *Edit {
	s.mu.Lock()
	defer s.mu.Unlock()
	e := &Edit{ComparerName: s.icmp.User.Name()}
	e.SetNextFileNum(s.nextFileNum)
	e.SetLastSeq(keys.Seq(s.lastSeq.Load()))
	e.SetLogNum(s.logNum)
	e.SetNextLinkSeq(s.nextLinkSeq)
	for level, key := range s.compactPointers {
		if key != nil {
			e.CompactPointers = append(e.CompactPointers, CompactPointer{Level: level, Key: key})
		}
	}
	if s.current != nil {
		for level := 0; level < NumLevels; level++ {
			for _, f := range s.current.Levels[level] {
				e.AddFile(level, f)
			}
		}
		for _, fm := range s.current.Frozen {
			e.FreezeFile(fm)
		}
	}
	return e
}

// LogAndApply persists edit to the MANIFEST and installs the resulting
// version as current. Invocations are serialized internally; callers may
// invoke it from concurrent compaction workers without extra locking, but
// the edits themselves must be compatible (the claim bookkeeping in the
// compaction picker guarantees concurrent edits touch disjoint files).
func (s *Set) LogAndApply(e *Edit) error {
	s.logMu.Lock()
	defer s.logMu.Unlock()

	s.mu.Lock()
	e.SetNextFileNum(s.nextFileNum)
	e.SetLastSeq(keys.Seq(s.lastSeq.Load()))
	e.SetNextLinkSeq(s.nextLinkSeq)
	if !e.hasLogNum {
		e.SetLogNum(s.logNum)
	}
	base := s.current
	s.mu.Unlock()

	b := newBuilder(s.icmp, base)
	b.apply(e)
	nv, _ := b.finish()
	nv.set = s
	if err := nv.checkInvariants(s.AllowOverlaps); err != nil {
		return fmt.Errorf("version: edit produces invalid version: %w", err)
	}

	if err := s.manifest.AddRecord(e.Encode()); err != nil {
		return err
	}
	// logMu is held across the MANIFEST fsync by design: it exists precisely
	// to serialize manifest writes, it is never taken on the read or write
	// hot paths, and releasing it mid-apply would let a concurrent edit
	// observe a version that is installed but not yet durable.
	//ldclint:ignore mutexio logMu serializes MANIFEST I/O by design; it is not a hot-path lock
	if err := s.manifest.Sync(); err != nil {
		return err
	}

	s.mu.Lock()
	for _, cp := range e.CompactPointers {
		s.compactPointers[cp.Level] = cp.Key
	}
	if e.hasLogNum && e.LogNum > s.logNum {
		s.logNum = e.LogNum
	}
	// Acquire refs for the new version's files before dropping the old's.
	for _, num := range nv.allFileNums() {
		s.fileRefs[num]++
	}
	old := s.current
	s.current = nv
	nv.Ref()
	s.mu.Unlock()

	if old != nil {
		old.Unref()
	}
	return nil
}

// releaseVersionFiles is called when a version's refcount reaches zero.
func (s *Set) releaseVersionFiles(v *Version) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, num := range v.allFileNums() {
		s.fileRefs[num]--
		if s.fileRefs[num] == 0 {
			delete(s.fileRefs, num)
			s.obsolete = append(s.obsolete, num)
		} else if s.fileRefs[num] < 0 {
			panic(fmt.Sprintf("version: file %06d refcount below zero", num))
		}
	}
}

// TakeObsolete returns and clears the list of table files no longer
// referenced by any version; the DB deletes them.
func (s *Set) TakeObsolete() []uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := s.obsolete
	s.obsolete = nil
	return out
}

// LiveFileNums reports every table file referenced by any live version.
func (s *Set) LiveFileNums() map[uint64]bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[uint64]bool, len(s.fileRefs))
	for num := range s.fileRefs {
		out[num] = true
	}
	return out
}

// Close releases the MANIFEST handle. The handle is detached under s.mu and
// closed outside it, keeping filesystem calls out of the lock.
func (s *Set) Close() error {
	s.mu.Lock()
	f := s.manifestFile
	s.manifestFile = nil
	s.mu.Unlock()
	if f != nil {
		return f.Close()
	}
	return nil
}
