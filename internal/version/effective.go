package version

import (
	"repro/internal/keys"
)

// EffectiveRange returns the union of a file's own key range and its slice
// windows. Under LDC a file is "responsible" for every key its slices
// cover (paper Example 3.2: the first lower file covers from the smallest
// possible key), so readers and the trivial-move check must consult this
// range rather than the file's own bounds.
func EffectiveRange(ucmp keys.Comparer, f *FileMeta) keys.KeyRange {
	r := f.UserRange()
	for i := range f.Slices {
		s := &f.Slices[i]
		if ucmp.Compare(s.Range.Lo, r.Lo) < 0 {
			r.Lo = s.Range.Lo
		}
		if ucmp.Compare(s.Range.Hi, r.Hi) > 0 {
			r.Hi = s.Range.Hi
		}
	}
	return r
}

// EffectiveOverlaps returns the files in level whose effective range
// intersects r: the binary-searched own-range overlaps plus any
// slice-carrying file whose window reaches r. Slice windows of neighbouring
// files may overlap each other, so sliced files (tracked per level in
// Sliced, and few in number — only files awaiting a merge carry slices) are
// checked exhaustively rather than by position.
func (v *Version) EffectiveOverlaps(level int, r keys.KeyRange) []*FileMeta {
	ucmp := v.icmp.User
	out := v.Overlaps(level, r)
	if level == 0 {
		return out // L0 files never carry slices
	}
	seen := map[uint64]bool{}
	for _, f := range out {
		seen[f.Num] = true
	}
	for _, f := range v.Sliced[level] {
		if !seen[f.Num] && EffectiveRange(ucmp, f).Overlaps(ucmp, r) {
			out = append(out, f)
		}
	}
	return out
}
