package version

import (
	"errors"
	"fmt"

	"repro/internal/encoding"
	"repro/internal/keys"
)

// ErrCorruptEdit reports a malformed version edit in the MANIFEST.
var ErrCorruptEdit = errors.New("version: corrupt manifest edit")

// Edit tags, persisted in the MANIFEST. Values are stable across releases.
const (
	tagComparer       = 1
	tagLogNum         = 2
	tagNextFileNum    = 3
	tagLastSeq        = 4
	tagCompactPointer = 5
	tagDeletedFile    = 6
	tagNewFile        = 7
	tagFrozenFile     = 8 // LDC: file moved to the frozen region
	tagNewSlice       = 9 // LDC: slice linked onto a lower-level file
	tagNextLinkSeq    = 10
)

// DeletedFile names a file removed from a level.
type DeletedFile struct {
	Level int
	Num   uint64
}

// NewFile places a file in a level.
type NewFile struct {
	Level int
	Meta  *FileMeta
}

// NewSlice attaches a slice to the file FileNum at Level.
type NewSlice struct {
	Level   int
	FileNum uint64
	Slice   Slice
}

// CompactPointer records the round-robin compaction cursor for a level.
type CompactPointer struct {
	Level int
	Key   keys.InternalKey
}

// Edit is one atomic metadata transition. Zero value is an empty edit;
// setters populate optional fields.
type Edit struct {
	ComparerName    string
	hasLogNum       bool
	LogNum          uint64
	hasNextFileNum  bool
	NextFileNum     uint64
	hasLastSeq      bool
	LastSeq         keys.Seq
	hasNextLinkSeq  bool
	NextLinkSeq     uint64
	CompactPointers []CompactPointer
	DeletedFiles    []DeletedFile
	NewFiles        []NewFile
	FrozenFiles     []*FrozenMeta
	NewSlices       []NewSlice
}

// SetLogNum records the WAL number whose contents are reflected.
func (e *Edit) SetLogNum(n uint64) { e.hasLogNum, e.LogNum = true, n }

// SetNextFileNum records the file-number allocator watermark.
func (e *Edit) SetNextFileNum(n uint64) { e.hasNextFileNum, e.NextFileNum = true, n }

// SetLastSeq records the highest sequence number used.
func (e *Edit) SetLastSeq(s keys.Seq) { e.hasLastSeq, e.LastSeq = true, s }

// SetNextLinkSeq records the LDC link-sequence allocator watermark.
func (e *Edit) SetNextLinkSeq(n uint64) { e.hasNextLinkSeq, e.NextLinkSeq = true, n }

// AddFile appends a new file record.
func (e *Edit) AddFile(level int, meta *FileMeta) {
	e.NewFiles = append(e.NewFiles, NewFile{Level: level, Meta: meta})
}

// DeleteFile appends a deletion record.
func (e *Edit) DeleteFile(level int, num uint64) {
	e.DeletedFiles = append(e.DeletedFiles, DeletedFile{Level: level, Num: num})
}

// FreezeFile appends a frozen-region record. The file must also be deleted
// from its level in the same edit.
func (e *Edit) FreezeFile(fm *FrozenMeta) {
	e.FrozenFiles = append(e.FrozenFiles, fm)
}

// AddSlice appends a slice-link record.
func (e *Edit) AddSlice(level int, fileNum uint64, s Slice) {
	e.NewSlices = append(e.NewSlices, NewSlice{Level: level, FileNum: fileNum, Slice: s})
}

// Encode serializes the edit as one MANIFEST record.
func (e *Edit) Encode() []byte {
	var b []byte
	if e.ComparerName != "" {
		b = encoding.PutUvarint(b, tagComparer)
		b = encoding.PutLengthPrefixed(b, []byte(e.ComparerName))
	}
	if e.hasLogNum {
		b = encoding.PutUvarint(b, tagLogNum)
		b = encoding.PutUvarint(b, e.LogNum)
	}
	if e.hasNextFileNum {
		b = encoding.PutUvarint(b, tagNextFileNum)
		b = encoding.PutUvarint(b, e.NextFileNum)
	}
	if e.hasLastSeq {
		b = encoding.PutUvarint(b, tagLastSeq)
		b = encoding.PutUvarint(b, uint64(e.LastSeq))
	}
	if e.hasNextLinkSeq {
		b = encoding.PutUvarint(b, tagNextLinkSeq)
		b = encoding.PutUvarint(b, e.NextLinkSeq)
	}
	for _, cp := range e.CompactPointers {
		b = encoding.PutUvarint(b, tagCompactPointer)
		b = encoding.PutUvarint(b, uint64(cp.Level))
		b = encoding.PutLengthPrefixed(b, cp.Key)
	}
	for _, df := range e.DeletedFiles {
		b = encoding.PutUvarint(b, tagDeletedFile)
		b = encoding.PutUvarint(b, uint64(df.Level))
		b = encoding.PutUvarint(b, df.Num)
	}
	for _, nf := range e.NewFiles {
		b = encoding.PutUvarint(b, tagNewFile)
		b = encoding.PutUvarint(b, uint64(nf.Level))
		b = encoding.PutUvarint(b, nf.Meta.Num)
		b = encoding.PutUvarint(b, uint64(nf.Meta.Size))
		b = encoding.PutLengthPrefixed(b, nf.Meta.Smallest)
		b = encoding.PutLengthPrefixed(b, nf.Meta.Largest)
		b = encoding.PutUvarint(b, uint64(len(nf.Meta.Slices)))
		for _, s := range nf.Meta.Slices {
			b = encodeSliceBody(b, s)
		}
	}
	for _, ff := range e.FrozenFiles {
		b = encoding.PutUvarint(b, tagFrozenFile)
		b = encoding.PutUvarint(b, ff.Num)
		b = encoding.PutUvarint(b, uint64(ff.Size))
		b = encoding.PutLengthPrefixed(b, ff.Smallest)
		b = encoding.PutLengthPrefixed(b, ff.Largest)
	}
	for _, ns := range e.NewSlices {
		b = encoding.PutUvarint(b, tagNewSlice)
		b = encoding.PutUvarint(b, uint64(ns.Level))
		b = encoding.PutUvarint(b, ns.FileNum)
		b = encodeSliceBody(b, ns.Slice)
	}
	return b
}

func encodeSliceBody(b []byte, s Slice) []byte {
	b = encoding.PutUvarint(b, s.FrozenNum)
	b = encoding.PutLengthPrefixed(b, s.Range.Lo)
	b = encoding.PutLengthPrefixed(b, s.Range.Hi)
	b = encoding.PutUvarint(b, s.LinkSeq)
	return encoding.PutUvarint(b, uint64(s.Bytes))
}

type editDecoder struct {
	b []byte
}

func (d *editDecoder) uvarint() (uint64, error) {
	v, n := encoding.Uvarint(d.b)
	if n == 0 {
		return 0, ErrCorruptEdit
	}
	d.b = d.b[n:]
	return v, nil
}

func (d *editDecoder) bytes() ([]byte, error) {
	v, n := encoding.GetLengthPrefixed(d.b)
	if n == 0 {
		return nil, ErrCorruptEdit
	}
	d.b = d.b[n:]
	return append([]byte(nil), v...), nil
}

func (d *editDecoder) slice() (Slice, error) {
	var s Slice
	var err error
	if s.FrozenNum, err = d.uvarint(); err != nil {
		return s, err
	}
	if s.Range.Lo, err = d.bytes(); err != nil {
		return s, err
	}
	if s.Range.Hi, err = d.bytes(); err != nil {
		return s, err
	}
	if s.LinkSeq, err = d.uvarint(); err != nil {
		return s, err
	}
	b, err := d.uvarint()
	if err != nil {
		return s, err
	}
	s.Bytes = int64(b)
	return s, nil
}

// DecodeEdit parses one MANIFEST record.
func DecodeEdit(data []byte) (*Edit, error) {
	d := editDecoder{b: data}
	e := &Edit{}
	for len(d.b) > 0 {
		tag, err := d.uvarint()
		if err != nil {
			return nil, err
		}
		switch tag {
		case tagComparer:
			name, err := d.bytes()
			if err != nil {
				return nil, err
			}
			e.ComparerName = string(name)
		case tagLogNum:
			v, err := d.uvarint()
			if err != nil {
				return nil, err
			}
			e.SetLogNum(v)
		case tagNextFileNum:
			v, err := d.uvarint()
			if err != nil {
				return nil, err
			}
			e.SetNextFileNum(v)
		case tagLastSeq:
			v, err := d.uvarint()
			if err != nil {
				return nil, err
			}
			e.SetLastSeq(keys.Seq(v))
		case tagNextLinkSeq:
			v, err := d.uvarint()
			if err != nil {
				return nil, err
			}
			e.SetNextLinkSeq(v)
		case tagCompactPointer:
			lvl, err := d.uvarint()
			if err != nil {
				return nil, err
			}
			k, err := d.bytes()
			if err != nil {
				return nil, err
			}
			e.CompactPointers = append(e.CompactPointers,
				CompactPointer{Level: int(lvl), Key: k})
		case tagDeletedFile:
			lvl, err := d.uvarint()
			if err != nil {
				return nil, err
			}
			num, err := d.uvarint()
			if err != nil {
				return nil, err
			}
			e.DeleteFile(int(lvl), num)
		case tagNewFile:
			lvl, err := d.uvarint()
			if err != nil {
				return nil, err
			}
			fm := &FileMeta{}
			if fm.Num, err = d.uvarint(); err != nil {
				return nil, err
			}
			sz, err := d.uvarint()
			if err != nil {
				return nil, err
			}
			fm.Size = int64(sz)
			s, err := d.bytes()
			if err != nil {
				return nil, err
			}
			fm.Smallest = s
			l, err := d.bytes()
			if err != nil {
				return nil, err
			}
			fm.Largest = l
			nSlices, err := d.uvarint()
			if err != nil {
				return nil, err
			}
			for i := uint64(0); i < nSlices; i++ {
				sl, err := d.slice()
				if err != nil {
					return nil, err
				}
				fm.Slices = append(fm.Slices, sl)
			}
			e.AddFile(int(lvl), fm)
		case tagFrozenFile:
			fm := &FrozenMeta{}
			var err error
			if fm.Num, err = d.uvarint(); err != nil {
				return nil, err
			}
			sz, err := d.uvarint()
			if err != nil {
				return nil, err
			}
			fm.Size = int64(sz)
			s, err := d.bytes()
			if err != nil {
				return nil, err
			}
			fm.Smallest = s
			l, err := d.bytes()
			if err != nil {
				return nil, err
			}
			fm.Largest = l
			e.FreezeFile(fm)
		case tagNewSlice:
			lvl, err := d.uvarint()
			if err != nil {
				return nil, err
			}
			num, err := d.uvarint()
			if err != nil {
				return nil, err
			}
			sl, err := d.slice()
			if err != nil {
				return nil, err
			}
			e.AddSlice(int(lvl), num, sl)
		default:
			return nil, fmt.Errorf("%w: unknown tag %d", ErrCorruptEdit, tag)
		}
	}
	return e, nil
}
