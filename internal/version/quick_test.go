package version

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/keys"
)

// TestQuickBuilderNeverCorrupts applies random sequences of well-formed
// edits (adds into free ranges, deletes, freeze+link, merge-style
// replace) and asserts the builder always yields a version satisfying
// CheckInvariants, with Sliced/Frozen derived consistently.
func TestQuickBuilderNeverCorrupts(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		v := NewVersion(icmp)
		nextNum := uint64(1)
		nextLink := uint64(1)

		// Track per-level occupied slots: level -> slot -> fileNum.
		// Keys are derived from slot indexes so ranges never overlap.
		const slots = 26
		occupied := map[int]map[int]uint64{1: {}, 2: {}}
		lo := func(slot int) string { return fmt.Sprintf("%c0", 'a'+slot) }
		hi := func(slot int) string { return fmt.Sprintf("%c9", 'a'+slot) }

		for step := 0; step < 30; step++ {
			e := &Edit{}
			switch rng.Intn(3) {
			case 0: // add a file into a free slot
				level := 1 + rng.Intn(2)
				slot := rng.Intn(slots)
				if _, used := occupied[level][slot]; used {
					continue
				}
				e.AddFile(level, fm(nextNum, lo(slot), hi(slot), 100))
				occupied[level][slot] = nextNum
				nextNum++
			case 1: // delete a file (and its slices with it)
				level := 1 + rng.Intn(2)
				for slot, num := range occupied[level] {
					e.DeleteFile(level, num)
					delete(occupied[level], slot)
					break
				}
				if len(e.DeletedFiles) == 0 {
					continue
				}
			case 2: // freeze an L1 file and link it onto an L2 file
				var l1slot, l2slot int
				var l1num, l2num uint64
				found := false
				for s1, n1 := range occupied[1] {
					for s2, n2 := range occupied[2] {
						l1slot, l1num, l2slot, l2num = s1, n1, s2, n2
						found = true
						break
					}
					if found {
						break
					}
				}
				if !found {
					continue
				}
				_ = l2slot
				e.DeleteFile(1, l1num)
				e.FreezeFile(&FrozenMeta{Num: l1num, Size: 100,
					Smallest: ik(lo(l1slot), 2), Largest: ik(hi(l1slot), 1)})
				e.AddSlice(2, l2num, Slice{
					FrozenNum: l1num,
					Range:     keys.KeyRange{Lo: []byte(lo(l1slot)), Hi: []byte(hi(l1slot))},
					LinkSeq:   nextLink,
					Bytes:     100,
				})
				nextLink++
				delete(occupied[1], l1slot)
			}
			b := newBuilder(icmp, v)
			b.apply(e)
			nv, _ := b.finish()
			if err := nv.CheckInvariants(); err != nil {
				t.Logf("seed %d step %d: %v", seed, step, err)
				return false
			}
			// Sliced must exactly list files with slices.
			for level := 1; level < NumLevels; level++ {
				n := 0
				for _, f := range nv.Levels[level] {
					if len(f.Slices) > 0 {
						n++
					}
				}
				if n != len(nv.Sliced[level]) {
					return false
				}
			}
			v = nv
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestQuickEditRoundTrip fuzzes edit encode/decode.
func TestQuickEditRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		e := &Edit{}
		if rng.Intn(2) == 0 {
			e.ComparerName = "ldc.BytewiseComparator"
		}
		if rng.Intn(2) == 0 {
			e.SetLogNum(rng.Uint64() % 1000)
		}
		if rng.Intn(2) == 0 {
			e.SetLastSeq(keys.Seq(rng.Uint64() % (1 << 50)))
		}
		for i := 0; i < rng.Intn(5); i++ {
			fm := &FileMeta{
				Num:      rng.Uint64() % 10000,
				Size:     rng.Int63() % (1 << 30),
				Smallest: ik(fmt.Sprintf("k%03d", rng.Intn(500)), keys.Seq(rng.Intn(100))),
				Largest:  ik(fmt.Sprintf("z%03d", rng.Intn(500)), keys.Seq(rng.Intn(100))),
			}
			for j := 0; j < rng.Intn(3); j++ {
				fm.Slices = append(fm.Slices, Slice{
					FrozenNum: rng.Uint64() % 100,
					Range:     keys.KeyRange{Lo: []byte{byte(rng.Intn(128))}, Hi: []byte{200}},
					LinkSeq:   rng.Uint64() % 100,
					Bytes:     rng.Int63() % (1 << 20),
				})
			}
			e.AddFile(rng.Intn(NumLevels), fm)
		}
		for i := 0; i < rng.Intn(4); i++ {
			e.DeleteFile(rng.Intn(NumLevels), rng.Uint64()%10000)
		}
		d, err := DecodeEdit(e.Encode())
		if err != nil {
			return false
		}
		// Re-encoding the decoded edit must be byte-identical.
		return string(d.Encode()) == string(e.Encode())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// TestEffectiveOverlapsFindsWindowOnlyFiles covers the LDC read-path case
// where a key lies in a slice window but outside every file's own range.
func TestEffectiveOverlapsFindsWindowOnlyFiles(t *testing.T) {
	e := &Edit{}
	f := fm(1, "m", "p", 100)
	e.AddFile(2, f)
	e.FreezeFile(&FrozenMeta{Num: 9, Size: 50, Smallest: ik("a", 5), Largest: ik("p", 4)})
	e.AddSlice(2, 1, Slice{FrozenNum: 9,
		Range: keys.KeyRange{Lo: []byte("a"), Hi: []byte("p")}, LinkSeq: 1, Bytes: 50})
	v, err := BuildForTest(icmp, e)
	if err != nil {
		t.Fatal(err)
	}
	// Key "c" is outside file 1's own range (m..p) but inside its window.
	point := keys.KeyRange{Lo: []byte("c"), Hi: []byte("c")}
	if got := v.Overlaps(2, point); len(got) != 0 {
		t.Errorf("own-range Overlaps found %d files, want 0", len(got))
	}
	got := v.EffectiveOverlaps(2, point)
	if len(got) != 1 || got[0].Num != 1 {
		t.Fatalf("EffectiveOverlaps = %v, want file 1", got)
	}
	er := EffectiveRange(keys.BytewiseComparer{}, got[0])
	if string(er.Lo) != "a" || string(er.Hi) != "p" {
		t.Errorf("EffectiveRange = [%s,%s]", er.Lo, er.Hi)
	}
}
