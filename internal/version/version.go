package version

import (
	"fmt"
	"sort"
	"sync/atomic"

	"repro/internal/invariants"
	"repro/internal/keys"
)

// Version is an immutable snapshot of the tree's file metadata. Levels[0]
// holds the unsorted, mutually overlapping L0 files ordered oldest-first;
// deeper levels hold sorted, non-overlapping files ordered by smallest key.
// Frozen maps file number to the LDC frozen-region metadata.
type Version struct {
	icmp keys.InternalComparer

	Levels [NumLevels][]*FileMeta
	Frozen map[uint64]*FrozenMeta
	// Sliced lists, per level, the files currently carrying slice links
	// (order matches Levels). Derived at build time for the read path.
	Sliced [NumLevels][]*FileMeta
	// overlapping marks sorted levels that contain mutually overlapping
	// runs (the size-tiered policy produces them); range searches fall back
	// to linear scans there. Derived at build time.
	overlapping [NumLevels]bool
	// newestFirst holds, for each overlapping level, the level's files
	// ordered by descending file number (newest data first). Precomputed at
	// build time so tiered point lookups probe newest-first without sorting
	// per get. Nil for levels without overlapping runs.
	newestFirst [NumLevels][]*FileMeta

	refs atomic.Int32
	set  *Set // for file refcount release; nil in standalone tests
	// releasedInv records (for -tags invariants builds) that the last
	// reference was dropped and the version's files were returned to the
	// Set. A later Ref is the CurrentNoRef-held-too-long bug: the caller
	// kept an unreferenced version across a lock release and tried to
	// resurrect it.
	releasedInv atomic.Bool
}

// NewVersion returns an empty version (mainly for tests; real versions come
// from the builder).
func NewVersion(icmp keys.InternalComparer) *Version {
	return &Version{icmp: icmp, Frozen: map[uint64]*FrozenMeta{}}
}

// Ref acquires a reference to the version.
func (v *Version) Ref() {
	invariants.CheckNotReleased(v.releasedInv.Load(), "version.Version")
	v.refs.Add(1)
}

// Unref releases a reference; when the last drops, the version's file
// references are returned to the Set (which may mark files obsolete).
func (v *Version) Unref() {
	n := v.refs.Add(-1)
	if n < 0 {
		panic("version: refcount below zero")
	}
	if n == 0 && v.set != nil {
		if invariants.Enabled {
			v.releasedInv.Store(true)
		}
		v.set.releaseVersionFiles(v)
	}
}

// Refs reports the current reference count (for tests and assertions).
func (v *Version) Refs() int32 { return v.refs.Load() }

// NumFiles reports the file count of a level.
func (v *Version) NumFiles(level int) int { return len(v.Levels[level]) }

// LevelBytes sums resident file sizes in a level (frozen files excluded:
// per the paper they are outside the LSM-tree's management).
func (v *Version) LevelBytes(level int) int64 {
	var n int64
	for _, f := range v.Levels[level] {
		n += f.Size
	}
	return n
}

// FrozenBytes sums the sizes of frozen-region files — LDC's space overhead,
// measured by the Fig 15 experiment.
func (v *Version) FrozenBytes() int64 {
	var n int64
	for _, f := range v.Frozen {
		n += f.Size
	}
	return n
}

// DuplicatedFrozenBytes estimates the *true* space overhead of the frozen
// region: the portions of frozen files whose slices were already merged
// down (the paper's "gray slices", §III-D) and therefore exist twice. The
// not-yet-merged remainder of a frozen file is live data, not overhead.
func (v *Version) DuplicatedFrozenBytes() int64 {
	if len(v.Frozen) == 0 {
		return 0
	}
	outstanding := map[uint64]int64{}
	for level := 1; level < NumLevels; level++ {
		for _, f := range v.Sliced[level] {
			for i := range f.Slices {
				outstanding[f.Slices[i].FrozenNum] += f.Slices[i].Bytes
			}
		}
	}
	var dup int64
	for num, fm := range v.Frozen {
		if d := fm.Size - outstanding[num]; d > 0 {
			dup += d
		}
	}
	return dup
}

// SliceCount sums attached slices across a level.
func (v *Version) SliceCount(level int) int {
	n := 0
	for _, f := range v.Levels[level] {
		n += len(f.Slices)
	}
	return n
}

// Overlaps returns the files in level whose user-key range intersects r.
// For level 0 every overlapping file is returned; for sorted levels a
// binary search bounds the scan.
func (v *Version) Overlaps(level int, r keys.KeyRange) []*FileMeta {
	ucmp := v.icmp.User
	var out []*FileMeta
	if level == 0 {
		for _, f := range v.Levels[level] {
			if f.UserRange().Overlaps(ucmp, r) {
				out = append(out, f)
			}
		}
		return out
	}
	files := v.Levels[level]
	if v.overlapping[level] {
		// Overlapping runs (tiered mode): the binary search below is
		// unsound, scan linearly.
		for _, f := range files {
			if f.UserRange().Overlaps(ucmp, r) {
				out = append(out, f)
			}
		}
		return out
	}
	// First file whose largest >= r.Lo.
	i := sort.Search(len(files), func(i int) bool {
		return ucmp.Compare(files[i].Largest.UserKey(), r.Lo) >= 0
	})
	for ; i < len(files); i++ {
		if ucmp.Compare(files[i].Smallest.UserKey(), r.Hi) > 0 {
			break
		}
		out = append(out, files[i])
	}
	return out
}

// NewestFirst returns the level's files ordered newest-first (descending
// file number) when the level holds overlapping runs, or nil when it does
// not (then at most one file can contain any given key, so order is moot).
// The returned slice is shared with the version and must not be modified.
func (v *Version) NewestFirst(level int) []*FileMeta { return v.newestFirst[level] }

// FindFile returns the unique file in a sorted level (>=1) that could
// contain ukey, or nil.
func (v *Version) FindFile(level int, ukey []byte) *FileMeta {
	ucmp := v.icmp.User
	files := v.Levels[level]
	if v.overlapping[level] {
		for _, f := range files {
			if f.UserRange().Contains(ucmp, ukey) {
				return f
			}
		}
		return nil
	}
	i := sort.Search(len(files), func(i int) bool {
		return ucmp.Compare(files[i].Largest.UserKey(), ukey) >= 0
	})
	if i >= len(files) {
		return nil
	}
	if ucmp.Compare(files[i].Smallest.UserKey(), ukey) > 0 {
		return nil
	}
	return files[i]
}

// allFileNums lists every table file (level + frozen) in the version.
func (v *Version) allFileNums() []uint64 {
	var nums []uint64
	for _, lvl := range v.Levels {
		for _, f := range lvl {
			nums = append(nums, f.Num)
		}
	}
	for num := range v.Frozen {
		nums = append(nums, num)
	}
	return nums
}

// CheckInvariants validates level ordering and slice consistency; tests and
// the compaction engine call it after every apply in debug paths.
func (v *Version) CheckInvariants() error { return v.checkInvariants(false) }

// checkInvariants optionally tolerates overlapping files within sorted
// levels, which the size-tiered policy produces by design.
func (v *Version) checkInvariants(allowOverlaps bool) error {
	ucmp := v.icmp.User
	for level := 1; level < NumLevels; level++ {
		files := v.Levels[level]
		for i := range files {
			if v.icmp.Compare(files[i].Smallest, files[i].Largest) > 0 {
				return fmt.Errorf("L%d file %06d: smallest > largest", level, files[i].Num)
			}
			if !allowOverlaps && i > 0 && ucmp.Compare(files[i-1].Largest.UserKey(), files[i].Smallest.UserKey()) >= 0 {
				return fmt.Errorf("L%d files %06d and %06d overlap",
					level, files[i-1].Num, files[i].Num)
			}
			for _, s := range files[i].Slices {
				if _, ok := v.Frozen[s.FrozenNum]; !ok {
					return fmt.Errorf("L%d file %06d: slice references missing frozen file %06d",
						level, files[i].Num, s.FrozenNum)
				}
			}
		}
	}
	// Every frozen file must be referenced by at least one slice.
	refs := map[uint64]int{}
	for level := 1; level < NumLevels; level++ {
		for _, f := range v.Levels[level] {
			for _, s := range f.Slices {
				refs[s.FrozenNum]++
			}
		}
	}
	for num := range v.Frozen {
		if refs[num] == 0 {
			return fmt.Errorf("frozen file %06d has no referencing slices", num)
		}
	}
	return nil
}

// ---------------------------------------------------------------------------
// Builder

// builder accumulates one edit's effect on a base version.
type builder struct {
	icmp    keys.InternalComparer
	base    *Version
	deleted map[uint64]bool
	added   [NumLevels][]*FileMeta
	slices  map[uint64][]Slice // fileNum -> slices to append
	frozen  []*FrozenMeta
}

func newBuilder(icmp keys.InternalComparer, base *Version) *builder {
	return &builder{
		icmp:    icmp,
		base:    base,
		deleted: map[uint64]bool{},
		slices:  map[uint64][]Slice{},
	}
}

func (b *builder) apply(e *Edit) {
	for _, df := range e.DeletedFiles {
		b.deleted[df.Num] = true
	}
	for _, nf := range e.NewFiles {
		b.added[nf.Level] = append(b.added[nf.Level], nf.Meta)
	}
	for _, ns := range e.NewSlices {
		b.slices[ns.FileNum] = append(b.slices[ns.FileNum], ns.Slice)
	}
	b.frozen = append(b.frozen, e.FrozenFiles...)
}

// finish builds the resulting version. Frozen files whose referencing
// slices all disappeared are dropped (their numbers are returned so the Set
// can release them).
func (b *builder) finish() (*Version, []uint64) {
	v := &Version{icmp: b.icmp, Frozen: map[uint64]*FrozenMeta{}}
	for level := 0; level < NumLevels; level++ {
		files := make([]*FileMeta, 0, len(b.base.Levels[level])+len(b.added[level]))
		for _, f := range b.base.Levels[level] {
			if !b.deleted[f.Num] {
				files = append(files, f)
			}
		}
		files = append(files, b.added[level]...)
		// Attach pending slices by replacing metas.
		for i, f := range files {
			if add, ok := b.slices[f.Num]; ok {
				merged := make([]Slice, 0, len(f.Slices)+len(add))
				merged = append(merged, f.Slices...)
				merged = append(merged, add...)
				files[i] = f.withSlices(merged)
			}
		}
		if level == 0 {
			sort.Slice(files, func(i, j int) bool { return files[i].Num < files[j].Num })
		} else {
			sort.Slice(files, func(i, j int) bool {
				return b.icmp.Compare(files[i].Smallest, files[j].Smallest) < 0
			})
		}
		v.Levels[level] = files
		for i, f := range files {
			if len(f.Slices) > 0 {
				v.Sliced[level] = append(v.Sliced[level], f)
			}
			if level >= 1 && i > 0 &&
				b.icmp.User.Compare(files[i-1].Largest.UserKey(), f.Smallest.UserKey()) >= 0 {
				v.overlapping[level] = true
			}
		}
		if v.overlapping[level] {
			nf := append([]*FileMeta(nil), files...)
			sort.Slice(nf, func(i, j int) bool { return nf[i].Num > nf[j].Num })
			v.newestFirst[level] = nf
		}
	}

	// Frozen set: carry over base + newly frozen, then drop unreferenced.
	for num, fm := range b.base.Frozen {
		v.Frozen[num] = fm
	}
	for _, fm := range b.frozen {
		v.Frozen[fm.Num] = fm
	}
	refs := map[uint64]int{}
	for level := 1; level < NumLevels; level++ {
		for _, f := range v.Levels[level] {
			for _, s := range f.Slices {
				refs[s.FrozenNum]++
			}
		}
	}
	var droppedFrozen []uint64
	for num := range v.Frozen {
		if refs[num] == 0 {
			delete(v.Frozen, num)
			droppedFrozen = append(droppedFrozen, num)
		}
	}
	return v, droppedFrozen
}
