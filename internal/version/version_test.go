package version

import (
	"sync"
	"testing"

	"repro/internal/keys"
	"repro/internal/vfs"
)

var icmp = keys.InternalComparer{User: keys.BytewiseComparer{}}

func fm(num uint64, lo, hi string, size int64) *FileMeta {
	return &FileMeta{Num: num, Size: size, Smallest: ik(lo, 2), Largest: ik(hi, 1)}
}

func buildVersion(t *testing.T, edits ...*Edit) *Version {
	t.Helper()
	v := NewVersion(icmp)
	for _, e := range edits {
		b := newBuilder(icmp, v)
		b.apply(e)
		v, _ = b.finish()
	}
	if err := v.CheckInvariants(); err != nil {
		t.Fatalf("invariants: %v", err)
	}
	return v
}

func TestBuilderAddDelete(t *testing.T) {
	e1 := &Edit{}
	e1.AddFile(1, fm(10, "a", "f", 100))
	e1.AddFile(1, fm(11, "g", "m", 100))
	e1.AddFile(2, fm(12, "a", "z", 500))
	v := buildVersion(t, e1)
	if v.NumFiles(1) != 2 || v.NumFiles(2) != 1 {
		t.Fatalf("files: L1=%d L2=%d", v.NumFiles(1), v.NumFiles(2))
	}
	if v.LevelBytes(1) != 200 {
		t.Errorf("LevelBytes(1) = %d", v.LevelBytes(1))
	}

	e2 := &Edit{}
	e2.DeleteFile(1, 10)
	e2.AddFile(1, fm(13, "n", "z", 100))
	b := newBuilder(icmp, v)
	b.apply(e2)
	v2, _ := b.finish()
	if v2.NumFiles(1) != 2 {
		t.Fatalf("L1 after delete = %d", v2.NumFiles(1))
	}
	if v2.Levels[1][0].Num != 11 || v2.Levels[1][1].Num != 13 {
		t.Errorf("L1 order: %d, %d", v2.Levels[1][0].Num, v2.Levels[1][1].Num)
	}
	// Base version unchanged (immutability).
	if v.NumFiles(1) != 2 || v.Levels[1][0].Num != 10 {
		t.Error("builder mutated base version")
	}
}

func TestLevel0OrderedByFileNum(t *testing.T) {
	e := &Edit{}
	e.AddFile(0, fm(30, "a", "z", 10))
	e.AddFile(0, fm(10, "a", "z", 10))
	e.AddFile(0, fm(20, "c", "x", 10))
	v := buildVersion(t, e)
	got := []uint64{v.Levels[0][0].Num, v.Levels[0][1].Num, v.Levels[0][2].Num}
	if got[0] != 10 || got[1] != 20 || got[2] != 30 {
		t.Errorf("L0 order = %v", got)
	}
}

func TestOverlaps(t *testing.T) {
	e := &Edit{}
	e.AddFile(1, fm(1, "a", "c", 10))
	e.AddFile(1, fm(2, "e", "g", 10))
	e.AddFile(1, fm(3, "i", "k", 10))
	e.AddFile(0, fm(4, "a", "z", 10))
	e.AddFile(0, fm(5, "x", "z", 10))
	v := buildVersion(t, e)

	r := func(lo, hi string) keys.KeyRange { return keys.KeyRange{Lo: []byte(lo), Hi: []byte(hi)} }
	if got := v.Overlaps(1, r("b", "f")); len(got) != 2 || got[0].Num != 1 || got[1].Num != 2 {
		t.Errorf("Overlaps(b,f) = %v", got)
	}
	if got := v.Overlaps(1, r("d", "d")); len(got) != 0 {
		t.Errorf("Overlaps(d,d) = %v", got)
	}
	if got := v.Overlaps(1, r("a", "z")); len(got) != 3 {
		t.Errorf("Overlaps(a,z) = %d files", len(got))
	}
	if got := v.Overlaps(0, r("b", "c")); len(got) != 1 || got[0].Num != 4 {
		t.Errorf("L0 Overlaps = %v", got)
	}
}

func TestFindFile(t *testing.T) {
	e := &Edit{}
	e.AddFile(1, fm(1, "b", "d", 10))
	e.AddFile(1, fm(2, "f", "h", 10))
	v := buildVersion(t, e)
	if f := v.FindFile(1, []byte("c")); f == nil || f.Num != 1 {
		t.Errorf("FindFile(c) = %v", f)
	}
	if f := v.FindFile(1, []byte("e")); f != nil {
		t.Errorf("FindFile(e) = %v, want nil", f)
	}
	if f := v.FindFile(1, []byte("z")); f != nil {
		t.Errorf("FindFile(z) = %v, want nil", f)
	}
	if f := v.FindFile(1, []byte("f")); f == nil || f.Num != 2 {
		t.Errorf("FindFile(f) = %v", f)
	}
}

func TestFreezeAndSliceLifecycle(t *testing.T) {
	// Set up: L1 file 10 over (a..m), L2 files 20 (a..f), 21 (g..p).
	e1 := &Edit{}
	e1.AddFile(1, fm(10, "a", "m", 100))
	e1.AddFile(2, fm(20, "a", "f", 100))
	e1.AddFile(2, fm(21, "g", "p", 100))
	v := buildVersion(t, e1)

	// Link: freeze 10, slice it onto 20 and 21.
	e2 := &Edit{}
	e2.DeleteFile(1, 10)
	e2.FreezeFile(&FrozenMeta{Num: 10, Size: 100, Smallest: ik("a", 2), Largest: ik("m", 1)})
	e2.AddSlice(2, 20, Slice{FrozenNum: 10, Range: keys.KeyRange{Lo: []byte("a"), Hi: []byte("f")}, LinkSeq: 1, Bytes: 50})
	e2.AddSlice(2, 21, Slice{FrozenNum: 10, Range: keys.KeyRange{Lo: []byte("g"), Hi: []byte("m")}, LinkSeq: 2, Bytes: 50})
	b := newBuilder(icmp, v)
	b.apply(e2)
	v2, dropped := b.finish()
	if err := v2.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if len(dropped) != 0 {
		t.Errorf("dropped frozen on link: %v", dropped)
	}
	if v2.NumFiles(1) != 0 {
		t.Errorf("L1 still has %d files", v2.NumFiles(1))
	}
	if len(v2.Frozen) != 1 || v2.Frozen[10] == nil {
		t.Fatalf("frozen set = %v", v2.Frozen)
	}
	if v2.FrozenBytes() != 100 {
		t.Errorf("FrozenBytes = %d", v2.FrozenBytes())
	}
	if v2.SliceCount(2) != 2 {
		t.Errorf("SliceCount(2) = %d", v2.SliceCount(2))
	}
	var f20 *FileMeta
	for _, f := range v2.Levels[2] {
		if f.Num == 20 {
			f20 = f
		}
	}
	if f20 == nil || len(f20.Slices) != 1 || f20.Slices[0].FrozenNum != 10 {
		t.Fatalf("file 20 slices = %+v", f20)
	}
	if f20.SliceBytes() != 50 {
		t.Errorf("SliceBytes = %d", f20.SliceBytes())
	}

	// Merge of file 20: delete it, add replacement without slices. The
	// frozen file is still referenced by 21's slice.
	e3 := &Edit{}
	e3.DeleteFile(2, 20)
	e3.AddFile(2, fm(30, "a", "f", 150))
	b = newBuilder(icmp, v2)
	b.apply(e3)
	v3, dropped := b.finish()
	if len(dropped) != 0 {
		t.Errorf("frozen file dropped while still referenced: %v", dropped)
	}
	if v3.Frozen[10] == nil {
		t.Fatal("frozen file vanished while referenced")
	}

	// Merge of file 21: last reference disappears; frozen file dropped.
	e4 := &Edit{}
	e4.DeleteFile(2, 21)
	e4.AddFile(2, fm(31, "g", "p", 150))
	b = newBuilder(icmp, v3)
	b.apply(e4)
	v4, dropped := b.finish()
	if len(dropped) != 1 || dropped[0] != 10 {
		t.Errorf("dropped = %v, want [10]", dropped)
	}
	if len(v4.Frozen) != 0 {
		t.Errorf("frozen set not emptied: %v", v4.Frozen)
	}
	if err := v4.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestCheckInvariantsCatchesOverlap(t *testing.T) {
	e := &Edit{}
	e.AddFile(1, fm(1, "a", "f", 10))
	e.AddFile(1, fm(2, "e", "k", 10)) // overlaps
	v := NewVersion(icmp)
	b := newBuilder(icmp, v)
	b.apply(e)
	v2, _ := b.finish()
	if err := v2.CheckInvariants(); err == nil {
		t.Error("overlapping L1 files not detected")
	}
}

func TestCheckInvariantsCatchesDanglingSlice(t *testing.T) {
	e := &Edit{}
	f := fm(1, "a", "f", 10)
	f.Slices = []Slice{{FrozenNum: 99, Range: keys.KeyRange{Lo: []byte("a"), Hi: []byte("b")}}}
	e.AddFile(1, f)
	v := NewVersion(icmp)
	b := newBuilder(icmp, v)
	b.apply(e)
	v2, _ := b.finish()
	if err := v2.CheckInvariants(); err == nil {
		t.Error("dangling slice not detected")
	}
}

// ---------------------------------------------------------------------------
// Set tests

func newTestSet(t *testing.T) (*Set, vfs.FS) {
	t.Helper()
	fs := vfs.Mem()
	s := NewSet(fs, "/db", icmp)
	if err := s.Create(); err != nil {
		t.Fatal(err)
	}
	return s, fs
}

func TestSetCreateAndAllocators(t *testing.T) {
	s, _ := newTestSet(t)
	defer s.Close()
	n1 := s.NewFileNum()
	n2 := s.NewFileNum()
	if n2 != n1+1 {
		t.Errorf("file numbers not sequential: %d, %d", n1, n2)
	}
	l1 := s.NewLinkSeq()
	l2 := s.NewLinkSeq()
	if l2 != l1+1 {
		t.Errorf("link seqs not sequential")
	}
	s.SetLastSeq(500)
	s.SetLastSeq(100) // must not regress
	if s.LastSeq() != 500 {
		t.Errorf("LastSeq = %d", s.LastSeq())
	}
}

func TestSetLogAndApplyAndCurrent(t *testing.T) {
	s, _ := newTestSet(t)
	defer s.Close()
	e := &Edit{}
	e.AddFile(1, fm(10, "a", "m", 100))
	if err := s.LogAndApply(e); err != nil {
		t.Fatal(err)
	}
	v := s.Current()
	defer v.Unref()
	if v.NumFiles(1) != 1 || v.Levels[1][0].Num != 10 {
		t.Fatalf("current version: %d L1 files", v.NumFiles(1))
	}
}

// TestSetCurrentRefRace hammers Current/Unref from reader goroutines while
// a writer turns over versions with LogAndApply, which installs versions
// outside any DB-level lock. The reference must be acquired atomically with
// the pointer read (under set.mu, as Current does): a CurrentNoRef()+Ref()
// pair lets a reader resurrect a version already dropped to zero refs,
// double-releasing its file references — live files would be queued for
// deletion or the refcount-below-zero panic would fire. Run with -race.
func TestSetCurrentRefRace(t *testing.T) {
	s, _ := newTestSet(t)
	defer s.Close()

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				v := s.Current()
				_ = v.NumFiles(1)
				v.Unref()
			}
		}()
	}

	var prev uint64
	for i := 0; i < 300; i++ {
		num := s.NewFileNum()
		e := &Edit{}
		if prev != 0 {
			e.DeleteFile(1, prev)
		}
		e.AddFile(1, fm(num, "a", "m", 100))
		if err := s.LogAndApply(e); err != nil {
			t.Fatal(err)
		}
		prev = num
	}
	close(stop)
	wg.Wait()

	// Once every reader has dropped its reference, exactly the final
	// version's table file may remain live; any other live file means a
	// released version's references leaked or were double-counted.
	live := s.LiveFileNums()
	if !live[prev] {
		t.Errorf("final file %d not live", prev)
	}
	delete(live, prev)
	for num := range live {
		t.Errorf("unexpected live table file %d after version churn", num)
	}
}

func TestSetRecover(t *testing.T) {
	fs := vfs.Mem()
	s := NewSet(fs, "/db", icmp)
	if err := s.Create(); err != nil {
		t.Fatal(err)
	}
	e := &Edit{}
	e.AddFile(1, fm(10, "a", "m", 100))
	e.AddFile(2, fm(11, "a", "z", 200))
	if err := s.LogAndApply(e); err != nil {
		t.Fatal(err)
	}
	// Freeze + link edit, then record high allocator values.
	e2 := &Edit{}
	e2.DeleteFile(1, 10)
	e2.FreezeFile(&FrozenMeta{Num: 10, Size: 100, Smallest: ik("a", 2), Largest: ik("m", 1)})
	e2.AddSlice(2, 11, Slice{FrozenNum: 10, Range: keys.KeyRange{Lo: []byte("a"), Hi: []byte("m")}, LinkSeq: s.NewLinkSeq(), Bytes: 42})
	if err := s.LogAndApply(e2); err != nil {
		t.Fatal(err)
	}
	s.SetLastSeq(777)
	e3 := &Edit{}
	if err := s.LogAndApply(e3); err != nil { // persists lastSeq
		t.Fatal(err)
	}
	fileNumBefore := s.NewFileNum()
	s.Close()

	// Recover into a fresh Set.
	s2 := NewSet(fs, "/db", icmp)
	if err := s2.Recover(); err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	v := s2.Current()
	defer v.Unref()
	if v.NumFiles(1) != 0 || v.NumFiles(2) != 1 {
		t.Errorf("recovered: L1=%d L2=%d", v.NumFiles(1), v.NumFiles(2))
	}
	if v.Frozen[10] == nil {
		t.Error("frozen file lost in recovery")
	}
	f11 := v.Levels[2][0]
	if len(f11.Slices) != 1 || f11.Slices[0].FrozenNum != 10 || f11.Slices[0].Bytes != 42 {
		t.Errorf("slices lost in recovery: %+v", f11.Slices)
	}
	if s2.LastSeq() != 777 {
		t.Errorf("LastSeq after recovery = %d", s2.LastSeq())
	}
	if got := s2.NewFileNum(); got <= fileNumBefore {
		t.Errorf("file allocator regressed: %d <= %d", got, fileNumBefore)
	}
}

func TestSetRejectsComparerMismatch(t *testing.T) {
	fs := vfs.Mem()
	s := NewSet(fs, "/db", icmp)
	if err := s.Create(); err != nil {
		t.Fatal(err)
	}
	s.Close()

	type weird struct{ keys.BytewiseComparer }
	other := keys.InternalComparer{User: weirdComparer{}}
	s2 := NewSet(fs, "/db", other)
	if err := s2.Recover(); err == nil {
		t.Error("comparer mismatch accepted")
	}
	_ = weird{}
}

type weirdComparer struct{ keys.BytewiseComparer }

func (weirdComparer) Name() string { return "other.Comparator" }

func TestObsoleteFileTracking(t *testing.T) {
	s, _ := newTestSet(t)
	defer s.Close()
	e := &Edit{}
	e.AddFile(1, fm(10, "a", "m", 100))
	if err := s.LogAndApply(e); err != nil {
		t.Fatal(err)
	}
	// Hold the version containing file 10 (like an open iterator).
	held := s.Current()

	e2 := &Edit{}
	e2.DeleteFile(1, 10)
	e2.AddFile(1, fm(11, "a", "m", 100))
	if err := s.LogAndApply(e2); err != nil {
		t.Fatal(err)
	}
	if obs := s.TakeObsolete(); len(obs) != 0 {
		t.Errorf("file 10 marked obsolete while referenced: %v", obs)
	}
	held.Unref()
	obs := s.TakeObsolete()
	if len(obs) != 1 || obs[0] != 10 {
		t.Errorf("obsolete = %v, want [10]", obs)
	}
	if live := s.LiveFileNums(); !live[11] || live[10] {
		t.Errorf("LiveFileNums = %v", live)
	}
}

func TestManifestRotatedOnRecover(t *testing.T) {
	fs := vfs.Mem()
	s := NewSet(fs, "/db", icmp)
	if err := s.Create(); err != nil {
		t.Fatal(err)
	}
	s.Close()
	s2 := NewSet(fs, "/db", icmp)
	if err := s2.Recover(); err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	names, _ := fs.List("/db")
	manifests := 0
	for _, n := range names {
		if typ, _ := ParseFileName(n); typ == TypeManifest {
			manifests++
		}
	}
	if manifests != 1 {
		t.Errorf("%d manifests on disk after recover, want 1 (old removed)", manifests)
	}
}
