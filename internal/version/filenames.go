package version

import (
	"fmt"
	"path/filepath"
	"strconv"
	"strings"
)

// FileType classifies database files by name.
type FileType int

// Database file types.
const (
	TypeUnknown FileType = iota
	TypeTable
	TypeLog
	TypeManifest
	TypeCurrent
	TypeTemp
)

// TableFileName returns the path of table file num.
func TableFileName(dir string, num uint64) string {
	return filepath.Join(dir, fmt.Sprintf("%06d.sst", num))
}

// LogFileName returns the path of WAL file num.
func LogFileName(dir string, num uint64) string {
	return filepath.Join(dir, fmt.Sprintf("%06d.log", num))
}

// ManifestFileName returns the path of MANIFEST file num.
func ManifestFileName(dir string, num uint64) string {
	return filepath.Join(dir, fmt.Sprintf("MANIFEST-%06d", num))
}

// CurrentFileName returns the path of the CURRENT pointer file.
func CurrentFileName(dir string) string {
	return filepath.Join(dir, "CURRENT")
}

// TempFileName returns a scratch path for atomic replacement of CURRENT.
func TempFileName(dir string, num uint64) string {
	return filepath.Join(dir, fmt.Sprintf("%06d.tmp", num))
}

// ParseFileName classifies a bare file name, returning its type and number
// (when the type carries one).
func ParseFileName(name string) (FileType, uint64) {
	switch {
	case name == "CURRENT":
		return TypeCurrent, 0
	case strings.HasPrefix(name, "MANIFEST-"):
		n, err := strconv.ParseUint(name[len("MANIFEST-"):], 10, 64)
		if err != nil {
			return TypeUnknown, 0
		}
		return TypeManifest, n
	case strings.HasSuffix(name, ".sst"):
		n, err := strconv.ParseUint(strings.TrimSuffix(name, ".sst"), 10, 64)
		if err != nil {
			return TypeUnknown, 0
		}
		return TypeTable, n
	case strings.HasSuffix(name, ".log"):
		n, err := strconv.ParseUint(strings.TrimSuffix(name, ".log"), 10, 64)
		if err != nil {
			return TypeUnknown, 0
		}
		return TypeLog, n
	case strings.HasSuffix(name, ".tmp"):
		n, err := strconv.ParseUint(strings.TrimSuffix(name, ".tmp"), 10, 64)
		if err != nil {
			return TypeUnknown, 0
		}
		return TypeTemp, n
	}
	return TypeUnknown, 0
}

// ShardLogFileName returns the path of shard sh's WAL file num inside the
// database's shared WAL directory (dir/wal). Per-shard WAL segments live
// side by side in one directory, so crash recovery can enumerate every
// shard's log tail with a single listing and route each segment to its
// shard by name. The single-shard (legacy) layout keeps LogFileName.
func ShardLogFileName(dir string, sh int, num uint64) string {
	return filepath.Join(dir, fmt.Sprintf("SHARD-%d-%06d.log", sh, num))
}

// ParseShardLogName parses a bare "SHARD-<shard>-<num>.log" name produced
// by ShardLogFileName, reporting ok=false for anything else.
func ParseShardLogName(name string) (sh int, num uint64, ok bool) {
	if !strings.HasPrefix(name, "SHARD-") || !strings.HasSuffix(name, ".log") {
		return 0, 0, false
	}
	body := strings.TrimSuffix(strings.TrimPrefix(name, "SHARD-"), ".log")
	i := strings.IndexByte(body, '-')
	if i <= 0 {
		return 0, 0, false
	}
	s, err := strconv.Atoi(body[:i])
	if err != nil || s < 0 {
		return 0, 0, false
	}
	n, err := strconv.ParseUint(body[i+1:], 10, 64)
	if err != nil {
		return 0, 0, false
	}
	return s, n, true
}
