package vfs

// NewBuffered wraps a write-only file handle with a coalescing buffer, so
// the layer below (in particular the SSD simulator) sees large sequential
// writes instead of per-block or per-record ones — the effect the OS page
// cache and device write coalescing have on a real deployment. Sync and
// Close flush the buffer. ReadAt flushes first, then delegates, so the
// wrapper stays a correct File even if a caller mixes modes.
func NewBuffered(f File, size int) File {
	if size <= 0 {
		size = 64 << 10
	}
	return &bufferedFile{f: f, buf: make([]byte, 0, size)}
}

type bufferedFile struct {
	f   File
	buf []byte
}

func (b *bufferedFile) Write(p []byte) (int, error) {
	total := len(p)
	for len(p) > 0 {
		n := cap(b.buf) - len(b.buf)
		if n == 0 {
			if err := b.flush(); err != nil {
				return 0, err
			}
			n = cap(b.buf)
		}
		if n > len(p) {
			n = len(p)
		}
		b.buf = append(b.buf, p[:n]...)
		p = p[n:]
	}
	return total, nil
}

func (b *bufferedFile) flush() error {
	if len(b.buf) == 0 {
		return nil
	}
	_, err := b.f.Write(b.buf)
	b.buf = b.buf[:0]
	return err
}

func (b *bufferedFile) ReadAt(p []byte, off int64) (int, error) {
	if err := b.flush(); err != nil {
		return 0, err
	}
	return b.f.ReadAt(p, off)
}

func (b *bufferedFile) Sync() error {
	if err := b.flush(); err != nil {
		return err
	}
	return b.f.Sync()
}

func (b *bufferedFile) Close() error {
	err := b.flush()
	if cerr := b.f.Close(); cerr != nil && err == nil {
		err = cerr
	}
	return err
}

func (b *bufferedFile) Size() (int64, error) {
	if err := b.flush(); err != nil {
		return 0, err
	}
	return b.f.Size()
}
