// Package vfs abstracts the filesystem beneath the store. Three
// implementations exist: an OS-backed filesystem for real deployments, an
// in-memory filesystem for tests, and (in package ssdsim) a simulated SSD
// that wraps either and charges device latency and I/O accounting.
//
// The interface is deliberately narrow — exactly the operations an LSM-tree
// engine performs: sequential-write file creation (SSTables, WAL, MANIFEST),
// random-access reads (SSTables), plus directory listing, rename, and remove
// for recovery and garbage collection.
package vfs

import (
	"errors"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync"
)

// ErrNotExist reports an operation on a missing file.
var ErrNotExist = errors.New("vfs: file does not exist")

// ErrExist reports creation of a file that already exists where forbidden.
var ErrExist = errors.New("vfs: file already exists")

// File is an open file handle. Writable handles support Write/Sync;
// readable handles support ReadAt. The store never mixes modes on one
// handle.
type File interface {
	io.Writer
	io.ReaderAt
	io.Closer
	// Sync flushes buffered data to stable storage.
	Sync() error
	// Size reports the current file size in bytes.
	Size() (int64, error)
}

// FS is the filesystem interface.
type FS interface {
	// Create creates (truncating if present) a file for sequential writing.
	Create(name string) (File, error)
	// Open opens an existing file for random-access reads.
	Open(name string) (File, error)
	// Remove deletes a file.
	Remove(name string) error
	// Rename atomically renames a file (used for MANIFEST swaps).
	Rename(oldname, newname string) error
	// Exists reports whether the named file exists.
	Exists(name string) bool
	// List returns the names (not paths) of files under dir, sorted.
	List(dir string) ([]string, error)
	// MkdirAll creates dir and parents.
	MkdirAll(dir string) error
}

// ---------------------------------------------------------------------------
// OS filesystem

// OS returns the real filesystem.
func OS() FS { return osFS{} }

type osFS struct{}

func (osFS) Create(name string) (File, error) {
	f, err := os.OpenFile(name, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, err
	}
	return osFile{f}, nil
}

func (osFS) Open(name string) (File, error) {
	f, err := os.Open(name)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, ErrNotExist
		}
		return nil, err
	}
	return osFile{f}, nil
}

func (osFS) Remove(name string) error {
	if err := os.Remove(name); err != nil {
		if os.IsNotExist(err) {
			return ErrNotExist
		}
		return err
	}
	return nil
}

func (osFS) Rename(oldname, newname string) error { return os.Rename(oldname, newname) }

func (osFS) Exists(name string) bool {
	_, err := os.Stat(name)
	return err == nil
}

func (osFS) List(dir string) ([]string, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	names := make([]string, 0, len(ents))
	for _, e := range ents {
		if !e.IsDir() {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	return names, nil
}

func (osFS) MkdirAll(dir string) error { return os.MkdirAll(dir, 0o755) }

type osFile struct{ *os.File }

func (f osFile) Size() (int64, error) {
	st, err := f.Stat()
	if err != nil {
		return 0, err
	}
	return st.Size(), nil
}

// ---------------------------------------------------------------------------
// In-memory filesystem

// Mem returns an empty in-memory filesystem. It is safe for concurrent use.
func Mem() FS { return &memFS{files: map[string]*memData{}} }

type memFS struct {
	//ldclint:lockrank vfs.memfs.mu 80
	mu    sync.Mutex
	files map[string]*memData
	dirs  sync.Map // set of created directories
}

type memData struct {
	//ldclint:lockrank vfs.memdata.mu 82
	mu   sync.RWMutex
	data []byte
}

func clean(name string) string { return filepath.Clean(name) }

func (fs *memFS) Create(name string) (File, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	d := &memData{}
	fs.files[clean(name)] = d
	return &memFile{fs: fs, d: d}, nil
}

func (fs *memFS) Open(name string) (File, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	d, ok := fs.files[clean(name)]
	if !ok {
		return nil, ErrNotExist
	}
	return &memFile{fs: fs, d: d}, nil
}

func (fs *memFS) Remove(name string) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if _, ok := fs.files[clean(name)]; !ok {
		return ErrNotExist
	}
	delete(fs.files, clean(name))
	return nil
}

func (fs *memFS) Rename(oldname, newname string) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	d, ok := fs.files[clean(oldname)]
	if !ok {
		return ErrNotExist
	}
	delete(fs.files, clean(oldname))
	fs.files[clean(newname)] = d
	return nil
}

func (fs *memFS) Exists(name string) bool {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	_, ok := fs.files[clean(name)]
	return ok
}

func (fs *memFS) List(dir string) ([]string, error) {
	dir = clean(dir)
	fs.mu.Lock()
	defer fs.mu.Unlock()
	var names []string
	for p := range fs.files {
		if filepath.Dir(p) == dir {
			names = append(names, filepath.Base(p))
		}
	}
	sort.Strings(names)
	return names, nil
}

func (fs *memFS) MkdirAll(dir string) error {
	fs.dirs.Store(clean(dir), struct{}{})
	return nil
}

type memFile struct {
	fs *memFS
	d  *memData
}

func (f *memFile) Write(p []byte) (int, error) {
	f.d.mu.Lock()
	f.d.data = append(f.d.data, p...)
	f.d.mu.Unlock()
	return len(p), nil
}

func (f *memFile) ReadAt(p []byte, off int64) (int, error) {
	f.d.mu.RLock()
	defer f.d.mu.RUnlock()
	if off >= int64(len(f.d.data)) {
		return 0, io.EOF
	}
	n := copy(p, f.d.data[off:])
	if n < len(p) {
		return n, io.EOF
	}
	return n, nil
}

func (f *memFile) Close() error { return nil }
func (f *memFile) Sync() error  { return nil }

func (f *memFile) Size() (int64, error) {
	f.d.mu.RLock()
	defer f.d.mu.RUnlock()
	return int64(len(f.d.data)), nil
}

// Unwrapper is implemented by wrapping filesystems (e.g. the SSD simulator)
// to expose the filesystem they delegate to.
type Unwrapper interface {
	Inner() FS
}

// TotalBytes reports the sum of file sizes, used by space-efficiency
// experiments (Fig 15). It unwraps wrapper filesystems and is specific to
// the in-memory implementation.
func TotalBytes(fs FS) (int64, bool) {
	for {
		u, ok := fs.(Unwrapper)
		if !ok {
			break
		}
		fs = u.Inner()
	}
	m, ok := fs.(*memFS)
	if !ok {
		return 0, false
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	var total int64
	for _, d := range m.files {
		d.mu.RLock()
		total += int64(len(d.data))
		d.mu.RUnlock()
	}
	return total, true
}
