package vfs

import (
	"bytes"
	"io"
	"path/filepath"
	"testing"
)

// both implementations must satisfy the same behavioural contract.
func testFS(t *testing.T, fs FS, root string) {
	t.Helper()
	if err := fs.MkdirAll(root); err != nil {
		t.Fatalf("MkdirAll: %v", err)
	}
	name := filepath.Join(root, "file.dat")

	// Create and write.
	f, err := fs.Create(name)
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	payload := []byte("hello, lsm world")
	if _, err := f.Write(payload[:5]); err != nil {
		t.Fatalf("Write: %v", err)
	}
	if _, err := f.Write(payload[5:]); err != nil {
		t.Fatalf("Write: %v", err)
	}
	if err := f.Sync(); err != nil {
		t.Fatalf("Sync: %v", err)
	}
	if sz, err := f.Size(); err != nil || sz != int64(len(payload)) {
		t.Fatalf("Size = %d, %v", sz, err)
	}
	if err := f.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	// Exists / List.
	if !fs.Exists(name) {
		t.Error("Exists = false after Create")
	}
	names, err := fs.List(root)
	if err != nil || len(names) != 1 || names[0] != "file.dat" {
		t.Errorf("List = %v, %v", names, err)
	}

	// Random reads.
	r, err := fs.Open(name)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	buf := make([]byte, 5)
	if _, err := r.ReadAt(buf, 7); err != nil {
		t.Fatalf("ReadAt: %v", err)
	}
	if !bytes.Equal(buf, payload[7:12]) {
		t.Errorf("ReadAt = %q want %q", buf, payload[7:12])
	}
	// Read crossing EOF.
	big := make([]byte, 100)
	n, err := r.ReadAt(big, 10)
	if err != io.EOF || !bytes.Equal(big[:n], payload[10:]) {
		t.Errorf("ReadAt over EOF: n=%d err=%v", n, err)
	}
	// Read past EOF.
	if _, err := r.ReadAt(buf, 1000); err != io.EOF {
		t.Errorf("ReadAt past EOF err = %v", err)
	}
	_ = r.Close()

	// Rename.
	name2 := filepath.Join(root, "renamed.dat")
	if err := fs.Rename(name, name2); err != nil {
		t.Fatalf("Rename: %v", err)
	}
	if fs.Exists(name) || !fs.Exists(name2) {
		t.Error("Rename did not move the file")
	}

	// Remove.
	if err := fs.Remove(name2); err != nil {
		t.Fatalf("Remove: %v", err)
	}
	if fs.Exists(name2) {
		t.Error("file exists after Remove")
	}
	if err := fs.Remove(name2); err != ErrNotExist {
		t.Errorf("Remove missing file err = %v, want ErrNotExist", err)
	}
	if _, err := fs.Open(name2); err != ErrNotExist {
		t.Errorf("Open missing file err = %v, want ErrNotExist", err)
	}
}

func TestMemFS(t *testing.T) { testFS(t, Mem(), "/db") }

func TestOSFS(t *testing.T) { testFS(t, OS(), t.TempDir()) }

func TestMemFSCreateTruncates(t *testing.T) {
	fs := Mem()
	f, _ := fs.Create("/x")
	f.Write([]byte("long old content"))
	_ = f.Close()
	f2, _ := fs.Create("/x")
	f2.Write([]byte("new"))
	_ = f2.Close()
	r, _ := fs.Open("/x")
	if sz, _ := r.Size(); sz != 3 {
		t.Errorf("size after truncating create = %d", sz)
	}
}

func TestMemFSListScopedToDir(t *testing.T) {
	fs := Mem()
	mustCreate := func(p string) {
		f, err := fs.Create(p)
		if err != nil {
			t.Fatal(err)
		}
		_ = f.Close()
	}
	mustCreate("/a/1")
	mustCreate("/a/2")
	mustCreate("/b/3")
	names, err := fs.List("/a")
	if err != nil || len(names) != 2 {
		t.Errorf("List(/a) = %v, %v", names, err)
	}
}

func TestTotalBytes(t *testing.T) {
	fs := Mem()
	f, _ := fs.Create("/a")
	f.Write(make([]byte, 100))
	_ = f.Close()
	f2, _ := fs.Create("/b")
	f2.Write(make([]byte, 50))
	_ = f2.Close()
	got, ok := TotalBytes(fs)
	if !ok || got != 150 {
		t.Errorf("TotalBytes = %d, %v", got, ok)
	}
	if _, ok := TotalBytes(OS()); ok {
		t.Error("TotalBytes should not support the OS filesystem")
	}
}
