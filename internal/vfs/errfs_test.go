package vfs

import (
	"errors"
	"testing"
)

var errBoom = errors.New("boom")

func TestErrFSPassthroughWhenDisarmed(t *testing.T) {
	fs := NewErrFS(Mem())
	f, err := fs.Create("/x")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("data")); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	_ = f.Close()
	if !fs.Exists("/x") {
		t.Error("file missing")
	}
	if fs.WriteOps() == 0 {
		t.Error("write ops not counted")
	}
}

func TestErrFSFailsAfterCountdown(t *testing.T) {
	fs := NewErrFS(Mem())
	fs.FailAfterWrites(2, errBoom)

	f, err := fs.Create("/x") // 1st write op
	if err != nil {
		t.Fatalf("create within budget failed: %v", err)
	}
	if _, err := f.Write([]byte("ok")); err != nil { // 2nd
		t.Fatalf("write within budget failed: %v", err)
	}
	if _, err := f.Write([]byte("fails")); !errors.Is(err, errBoom) { // 3rd
		t.Fatalf("write past budget err = %v", err)
	}
	if err := f.Sync(); !errors.Is(err, errBoom) {
		t.Fatalf("sync past budget err = %v", err)
	}
	if _, err := fs.Create("/y"); !errors.Is(err, errBoom) {
		t.Fatalf("create past budget err = %v", err)
	}
	if err := fs.Rename("/x", "/z"); !errors.Is(err, errBoom) {
		t.Fatalf("rename past budget err = %v", err)
	}
	if err := fs.Remove("/x"); !errors.Is(err, errBoom) {
		t.Fatalf("remove past budget err = %v", err)
	}

	// Reads still work for recovery.
	r, err := fs.Open("/x")
	if err != nil {
		t.Fatalf("read after failure: %v", err)
	}
	buf := make([]byte, 2)
	if _, err := r.ReadAt(buf, 0); err != nil {
		t.Fatalf("ReadAt after failure: %v", err)
	}

	fs.Disarm()
	if _, err := fs.Create("/y"); err != nil {
		t.Fatalf("create after disarm: %v", err)
	}
}

func TestErrFSUnwraps(t *testing.T) {
	inner := Mem()
	fs := NewErrFS(inner)
	f, _ := fs.Create("/x")
	f.Write(make([]byte, 10))
	_ = f.Close()
	got, ok := TotalBytes(fs)
	if !ok || got != 10 {
		t.Errorf("TotalBytes through ErrFS = %d, %v", got, ok)
	}
}

func TestSyncHookObservesSyncs(t *testing.T) {
	efs := NewErrFS(Mem())
	var synced []string
	efs.SetSyncHook(func(name string) { synced = append(synced, name) })
	f, err := efs.Create("/dir/a.log")
	if err != nil {
		t.Fatal(err)
	}
	f.Write([]byte("x"))
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	if len(synced) != 1 || synced[0] != "/dir/a.log" {
		t.Fatalf("hook saw %v, want [/dir/a.log]", synced)
	}
	efs.SetSyncHook(nil)
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	if len(synced) != 1 {
		t.Fatalf("hook fired after removal: %v", synced)
	}
}

func TestTearFileTruncatesTail(t *testing.T) {
	efs := NewErrFS(Mem())
	f, err := efs.Create("/t")
	if err != nil {
		t.Fatal(err)
	}
	f.Write([]byte("0123456789"))
	_ = f.Close()
	if err := efs.TearFile("/t", 4); err != nil {
		t.Fatal(err)
	}
	g, err := efs.Open("/t")
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	size, _ := g.Size()
	if size != 6 {
		t.Fatalf("size after tear = %d, want 6", size)
	}
	buf := make([]byte, 6)
	g.ReadAt(buf, 0)
	if string(buf) != "012345" {
		t.Fatalf("content after tear = %q", buf)
	}
	// Tearing more than the file holds empties it rather than erroring.
	if err := efs.TearFile("/t", 100); err != nil {
		t.Fatal(err)
	}
	g2, _ := efs.Open("/t")
	if size, _ := g2.Size(); size != 0 {
		t.Fatalf("size after over-tear = %d, want 0", size)
	}
	_ = g2.Close()
}
