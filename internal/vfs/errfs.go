package vfs

import (
	"sync"
	"sync/atomic"
)

// ErrFS wraps a filesystem with fault injection for crash and error-path
// testing: operations can be made to fail after a countdown, and writes can
// be "torn" (silently truncated) to emulate a crash mid-write.
type ErrFS struct {
	inner FS

	// failAfter counts down on every write-class operation; when it
	// reaches zero, every subsequent mutating operation returns FailErr.
	failAfter atomic.Int64
	armed     atomic.Bool

	// FailErr is the injected error (required when arming).
	FailErr error

	mu        sync.Mutex
	writeOps  int64
	tornFiles map[string]int // name -> bytes to drop from the tail at Close
}

// NewErrFS wraps inner. The returned filesystem behaves identically until
// a fault is armed.
func NewErrFS(inner FS) *ErrFS {
	return &ErrFS{inner: inner, tornFiles: map[string]int{}}
}

// Inner returns the wrapped filesystem.
func (e *ErrFS) Inner() FS { return e.inner }

// FailAfterWrites arms the fault: after n more successful write-class
// operations (Create, Write, Sync, Rename, Remove), every further one
// fails with err.
func (e *ErrFS) FailAfterWrites(n int64, err error) {
	e.FailErr = err
	e.failAfter.Store(n)
	e.armed.Store(true)
}

// Disarm cancels fault injection.
func (e *ErrFS) Disarm() { e.armed.Store(false) }

// WriteOps reports the number of write-class operations observed.
func (e *ErrFS) WriteOps() int64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.writeOps
}

// step consumes one write credit, reporting whether the operation must fail.
func (e *ErrFS) step() bool {
	e.mu.Lock()
	e.writeOps++
	e.mu.Unlock()
	if !e.armed.Load() {
		return false
	}
	return e.failAfter.Add(-1) < 0
}

// Create implements FS.
func (e *ErrFS) Create(name string) (File, error) {
	if e.step() {
		return nil, e.FailErr
	}
	f, err := e.inner.Create(name)
	if err != nil {
		return nil, err
	}
	return &errFile{fs: e, f: f}, nil
}

// Open implements FS (reads are not failed; recovery reads should see
// whatever survived).
func (e *ErrFS) Open(name string) (File, error) { return e.inner.Open(name) }

// Remove implements FS.
func (e *ErrFS) Remove(name string) error {
	if e.step() {
		return e.FailErr
	}
	return e.inner.Remove(name)
}

// Rename implements FS.
func (e *ErrFS) Rename(o, n string) error {
	if e.step() {
		return e.FailErr
	}
	return e.inner.Rename(o, n)
}

// Exists implements FS.
func (e *ErrFS) Exists(name string) bool { return e.inner.Exists(name) }

// List implements FS.
func (e *ErrFS) List(dir string) ([]string, error) { return e.inner.List(dir) }

// MkdirAll implements FS.
func (e *ErrFS) MkdirAll(dir string) error { return e.inner.MkdirAll(dir) }

type errFile struct {
	fs *ErrFS
	f  File
}

func (f *errFile) Write(p []byte) (int, error) {
	if f.fs.step() {
		return 0, f.fs.FailErr
	}
	return f.f.Write(p)
}

func (f *errFile) Sync() error {
	if f.fs.step() {
		return f.fs.FailErr
	}
	return f.f.Sync()
}

func (f *errFile) ReadAt(p []byte, off int64) (int, error) { return f.f.ReadAt(p, off) }
func (f *errFile) Close() error                            { return f.f.Close() }
func (f *errFile) Size() (int64, error)                    { return f.f.Size() }
