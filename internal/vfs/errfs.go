package vfs

import (
	"errors"
	"sync"
	"sync/atomic"
)

// errOutOfRange reports a FlipBit offset outside the file.
var errOutOfRange = errors.New("vfs: flip offset out of range")

// ErrFS wraps a filesystem with fault injection for crash and error-path
// testing: operations can be made to fail after a countdown, and writes can
// be "torn" (silently truncated) to emulate a crash mid-write.
type ErrFS struct {
	inner FS

	// failAfter counts down on every write-class operation; when it
	// reaches zero, every subsequent mutating operation returns FailErr.
	failAfter atomic.Int64
	armed     atomic.Bool

	// FailErr is the injected error (required when arming).
	FailErr error

	//ldclint:lockrank vfs.errfs.mu 78
	mu        sync.Mutex
	writeOps  int64
	syncHook  func(name string) // invoked at the top of every File.Sync
	tornFiles map[string]int    // name -> bytes to drop from the tail at Close
}

// NewErrFS wraps inner. The returned filesystem behaves identically until
// a fault is armed.
func NewErrFS(inner FS) *ErrFS {
	return &ErrFS{inner: inner, tornFiles: map[string]int{}}
}

// Inner returns the wrapped filesystem.
func (e *ErrFS) Inner() FS { return e.inner }

// FailAfterWrites arms the fault: after n more successful write-class
// operations (Create, Write, Sync, Rename, Remove), every further one
// fails with err.
func (e *ErrFS) FailAfterWrites(n int64, err error) {
	e.FailErr = err
	e.failAfter.Store(n)
	e.armed.Store(true)
}

// Disarm cancels fault injection.
func (e *ErrFS) Disarm() { e.armed.Store(false) }

// SetSyncHook installs fn, called with the file's name at the start of every
// File.Sync before fault accounting or delegation. Tests use it to delay or
// block fsyncs (e.g. to pin that reads proceed while a WAL sync is slow);
// nil removes the hook.
func (e *ErrFS) SetSyncHook(fn func(name string)) {
	e.mu.Lock()
	e.syncHook = fn
	e.mu.Unlock()
}

// TearFile truncates drop bytes off the tail of the named file through the
// inner filesystem (no fault accounting), emulating a crash that tore the
// file mid-write. The handle that wrote the file must be closed or synced
// first so the bytes to be torn are visible below.
func (e *ErrFS) TearFile(name string, drop int) error {
	f, err := e.inner.Open(name)
	if err != nil {
		return err
	}
	size, err := f.Size()
	if err != nil {
		_ = f.Close()
		return err
	}
	keep := size - int64(drop)
	if keep < 0 {
		keep = 0
	}
	data := make([]byte, keep)
	if keep > 0 {
		if _, err := f.ReadAt(data, 0); err != nil {
			_ = f.Close()
			return err
		}
	}
	_ = f.Close()
	out, err := e.inner.Create(name)
	if err != nil {
		return err
	}
	if _, err := out.Write(data); err != nil {
		_ = out.Close()
		return err
	}
	return out.Close()
}

// FlipBit XORs one bit at byte offset off of the named file through the
// inner filesystem (no fault accounting), emulating silent media corruption
// — the fault block checksums exist to catch. Like TearFile, the handle
// that wrote the file must be closed or synced first.
func (e *ErrFS) FlipBit(name string, off int64) error {
	f, err := e.inner.Open(name)
	if err != nil {
		return err
	}
	size, err := f.Size()
	if err != nil {
		_ = f.Close()
		return err
	}
	data := make([]byte, size)
	if size > 0 {
		if _, err := f.ReadAt(data, 0); err != nil {
			_ = f.Close()
			return err
		}
	}
	_ = f.Close()
	if off < 0 || off >= size {
		return errOutOfRange
	}
	data[off] ^= 0x04
	out, err := e.inner.Create(name)
	if err != nil {
		return err
	}
	if _, err := out.Write(data); err != nil {
		_ = out.Close()
		return err
	}
	return out.Close()
}

// WriteOps reports the number of write-class operations observed.
func (e *ErrFS) WriteOps() int64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.writeOps
}

// step consumes one write credit, reporting whether the operation must fail.
func (e *ErrFS) step() bool {
	e.mu.Lock()
	e.writeOps++
	e.mu.Unlock()
	if !e.armed.Load() {
		return false
	}
	return e.failAfter.Add(-1) < 0
}

// Create implements FS.
func (e *ErrFS) Create(name string) (File, error) {
	if e.step() {
		return nil, e.FailErr
	}
	f, err := e.inner.Create(name)
	if err != nil {
		return nil, err
	}
	return &errFile{fs: e, f: f, name: name}, nil
}

// Open implements FS (reads are not failed; recovery reads should see
// whatever survived).
func (e *ErrFS) Open(name string) (File, error) { return e.inner.Open(name) }

// Remove implements FS.
func (e *ErrFS) Remove(name string) error {
	if e.step() {
		return e.FailErr
	}
	return e.inner.Remove(name)
}

// Rename implements FS.
func (e *ErrFS) Rename(o, n string) error {
	if e.step() {
		return e.FailErr
	}
	return e.inner.Rename(o, n)
}

// Exists implements FS.
func (e *ErrFS) Exists(name string) bool { return e.inner.Exists(name) }

// List implements FS.
func (e *ErrFS) List(dir string) ([]string, error) { return e.inner.List(dir) }

// MkdirAll implements FS.
func (e *ErrFS) MkdirAll(dir string) error { return e.inner.MkdirAll(dir) }

type errFile struct {
	fs   *ErrFS
	f    File
	name string
}

func (f *errFile) Write(p []byte) (int, error) {
	if f.fs.step() {
		return 0, f.fs.FailErr
	}
	return f.f.Write(p)
}

func (f *errFile) Sync() error {
	f.fs.mu.Lock()
	hook := f.fs.syncHook
	f.fs.mu.Unlock()
	if hook != nil {
		hook(f.name)
	}
	if f.fs.step() {
		return f.fs.FailErr
	}
	return f.f.Sync()
}

func (f *errFile) ReadAt(p []byte, off int64) (int, error) { return f.f.ReadAt(p, off) }
func (f *errFile) Close() error                            { return f.f.Close() }
func (f *errFile) Size() (int64, error)                    { return f.f.Size() }
