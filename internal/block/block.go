// Package block implements the SSTable block format, following LevelDB:
// entries store keys with shared-prefix compression relative to the previous
// entry, a restart point (full key) is emitted every Interval entries, and
// the block ends with the array of restart offsets plus its count:
//
//	entry:   varint(shared) varint(unshared) varint(valueLen)
//	         unshared-key-bytes value-bytes
//	trailer: fixed32 × numRestarts, fixed32 numRestarts
//
// Iterators binary-search the restart array, then scan forward. Blocks are
// the unit of reading, caching, and filter granularity for the store.
package block

import (
	"fmt"

	"repro/internal/encoding"
	"repro/internal/iterator"
)

// DefaultInterval is the restart interval used by Writer when none is set.
const DefaultInterval = 16

// Writer accumulates sorted key/value entries into an encoded block.
// Keys must be appended in strictly increasing order.
type Writer struct {
	// Interval is the number of entries between restart points.
	Interval int

	buf      []byte
	restarts []uint32
	counter  int
	lastKey  []byte
	n        int
}

func (w *Writer) interval() int {
	if w.Interval <= 0 {
		return DefaultInterval
	}
	return w.Interval
}

// Add appends an entry. key must be greater than every previously added key.
func (w *Writer) Add(key, value []byte) {
	shared := 0
	if w.counter < w.interval() && len(w.restarts) > 0 {
		n := len(w.lastKey)
		if len(key) < n {
			n = len(key)
		}
		for shared < n && key[shared] == w.lastKey[shared] {
			shared++
		}
	} else {
		w.restarts = append(w.restarts, uint32(len(w.buf)))
		w.counter = 0
	}
	w.buf = encoding.PutUvarint(w.buf, uint64(shared))
	w.buf = encoding.PutUvarint(w.buf, uint64(len(key)-shared))
	w.buf = encoding.PutUvarint(w.buf, uint64(len(value)))
	w.buf = append(w.buf, key[shared:]...)
	w.buf = append(w.buf, value...)
	w.lastKey = append(w.lastKey[:0], key...)
	w.counter++
	w.n++
}

// Count reports the number of entries added.
func (w *Writer) Count() int { return w.n }

// EstimatedSize reports the encoded size if Finish were called now.
func (w *Writer) EstimatedSize() int {
	return len(w.buf) + 4*len(w.restarts) + 4
}

// Empty reports whether no entries were added.
func (w *Writer) Empty() bool { return w.n == 0 }

// Finish seals and returns the encoded block. The Writer can be reused after
// Reset.
func (w *Writer) Finish() []byte {
	if len(w.restarts) == 0 {
		w.restarts = append(w.restarts, 0)
	}
	for _, r := range w.restarts {
		w.buf = encoding.PutFixed32(w.buf, r)
	}
	w.buf = encoding.PutFixed32(w.buf, uint32(len(w.restarts)))
	return w.buf
}

// Reset clears the writer for reuse.
func (w *Writer) Reset() {
	w.buf = w.buf[:0]
	w.restarts = w.restarts[:0]
	w.counter = 0
	w.lastKey = w.lastKey[:0]
	w.n = 0
}

// ---------------------------------------------------------------------------
// Reading

// Reader decodes an encoded block. The data slice is retained.
type Reader struct {
	cmp         iterator.CompareFunc
	data        []byte // entry region only
	restarts    []byte // restart array region
	numRestarts int
}

// NewReader validates the trailer and returns a reader.
func NewReader(cmp iterator.CompareFunc, data []byte) (*Reader, error) {
	if len(data) < 4 {
		return nil, fmt.Errorf("block: too short (%d bytes)", len(data))
	}
	n := int(encoding.Fixed32(data[len(data)-4:]))
	end := len(data) - 4 - 4*n
	if n < 1 || end < 0 {
		return nil, fmt.Errorf("block: bad restart count %d", n)
	}
	return &Reader{
		cmp:         cmp,
		data:        data[:end],
		restarts:    data[end : len(data)-4],
		numRestarts: n,
	}, nil
}

// Resident reports the bytes the reader keeps alive: the full decoded
// block (entries + restart array + count). This is the correct cache
// charge for a cached block — the on-disk form may be compressed and
// smaller, but THIS is what occupies memory.
func (r *Reader) Resident() int64 {
	return int64(len(r.data) + len(r.restarts) + 4)
}

func (r *Reader) restartOffset(i int) int {
	return int(encoding.Fixed32(r.restarts[4*i:]))
}

// Iter returns an iterator over the block.
func (r *Reader) Iter() iterator.Iterator {
	it := &Iter{}
	it.Init(r)
	return it
}

// Iter is the concrete block iterator. The zero value is unpositioned and
// unusable until Init binds it to a Reader; Init may be called repeatedly to
// re-bind the same Iter to different blocks, reusing its internal key buffer.
// Point-read paths exploit this to seek index and data blocks without
// allocating a fresh iterator per probe.
type Iter struct {
	r      *Reader
	offset int // offset of current entry in r.data; -1 = invalid
	next   int // offset just past current entry
	key    []byte
	value  []byte
	err    error
}

// Init binds the iterator to r, resetting position and error state but
// keeping the key buffer's capacity for reuse.
func (it *Iter) Init(r *Reader) {
	it.r = r
	it.offset = -1
	it.next = 0
	it.key = it.key[:0]
	it.value = nil
	it.err = nil
}

// decodeAt decodes the entry at off, using it.key as the prefix carrier.
// Returns the offset past the entry, or -1 on corruption.
func (it *Iter) decodeAt(off int) int {
	d := it.r.data[off:]
	shared, n1 := encoding.Uvarint(d)
	if n1 == 0 {
		it.corrupt(off)
		return -1
	}
	unshared, n2 := encoding.Uvarint(d[n1:])
	if n2 == 0 {
		it.corrupt(off)
		return -1
	}
	vlen, n3 := encoding.Uvarint(d[n1+n2:])
	if n3 == 0 {
		it.corrupt(off)
		return -1
	}
	h := n1 + n2 + n3
	if uint64(len(d)-h) < unshared+vlen || uint64(len(it.key)) < shared {
		it.corrupt(off)
		return -1
	}
	it.key = append(it.key[:shared], d[h:h+int(unshared)]...)
	it.value = d[h+int(unshared) : h+int(unshared)+int(vlen)]
	return off + h + int(unshared) + int(vlen)
}

func (it *Iter) corrupt(off int) {
	it.err = fmt.Errorf("block: corrupt entry at offset %d", off)
	it.offset = -1
}

func (it *Iter) Valid() bool { return it.err == nil && it.offset >= 0 }

// seekRestart positions at restart point i.
func (it *Iter) seekRestart(i int) {
	it.key = it.key[:0]
	it.offset = it.r.restartOffset(i)
	it.next = it.decodeAt(it.offset)
}

func (it *Iter) SeekGE(target []byte) {
	if it.err != nil {
		return
	}
	// Binary search: last restart whose key <= target.
	lo, hi := 0, it.r.numRestarts-1
	for lo < hi {
		mid := (lo + hi + 1) / 2
		it.seekRestart(mid)
		if it.err != nil {
			return
		}
		if it.r.cmp(it.key, target) <= 0 {
			lo = mid
		} else {
			hi = mid - 1
		}
	}
	it.seekRestart(lo)
	for it.Valid() && it.r.cmp(it.key, target) < 0 {
		it.Next()
	}
}

func (it *Iter) SeekToFirst() {
	if it.err != nil {
		return
	}
	if len(it.r.data) == 0 {
		it.offset = -1
		return
	}
	it.seekRestart(0)
}

func (it *Iter) SeekToLast() {
	if it.err != nil {
		return
	}
	if len(it.r.data) == 0 {
		it.offset = -1
		return
	}
	it.seekRestart(it.r.numRestarts - 1)
	for it.err == nil && it.next < len(it.r.data) {
		it.offset = it.next
		it.next = it.decodeAt(it.next)
	}
}

func (it *Iter) Next() {
	if !it.Valid() {
		return
	}
	if it.next >= len(it.r.data) {
		it.offset = -1
		return
	}
	it.offset = it.next
	it.next = it.decodeAt(it.next)
}

// Prev re-scans from the preceding restart point, as in LevelDB.
func (it *Iter) Prev() {
	if !it.Valid() {
		return
	}
	target := it.offset
	if target == 0 {
		it.offset = -1
		return
	}
	// Find the last restart strictly before the current entry.
	ri := 0
	for i := it.r.numRestarts - 1; i >= 0; i-- {
		if it.r.restartOffset(i) < target {
			ri = i
			break
		}
	}
	it.seekRestart(ri)
	for it.err == nil && it.next < target {
		it.offset = it.next
		it.next = it.decodeAt(it.next)
	}
}

func (it *Iter) Key() []byte   { return it.key }
func (it *Iter) Value() []byte { return it.value }
func (it *Iter) Error() error  { return it.err }
func (it *Iter) Close() error  { return it.err }
