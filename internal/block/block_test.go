package block

import (
	"bytes"
	"fmt"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func buildBlock(t *testing.T, interval int, kvs ...string) *Reader {
	t.Helper()
	w := &Writer{Interval: interval}
	for i := 0; i < len(kvs); i += 2 {
		w.Add([]byte(kvs[i]), []byte(kvs[i+1]))
	}
	r, err := NewReader(bytes.Compare, w.Finish())
	if err != nil {
		t.Fatalf("NewReader: %v", err)
	}
	return r
}

func collect(t *testing.T, r *Reader) []string {
	t.Helper()
	it := r.Iter()
	var out []string
	for it.SeekToFirst(); it.Valid(); it.Next() {
		out = append(out, string(it.Key())+"="+string(it.Value()))
	}
	if err := it.Error(); err != nil {
		t.Fatalf("iter error: %v", err)
	}
	return out
}

func TestEmptyBlock(t *testing.T) {
	w := &Writer{}
	r, err := NewReader(bytes.Compare, w.Finish())
	if err != nil {
		t.Fatalf("NewReader on empty block: %v", err)
	}
	it := r.Iter()
	it.SeekToFirst()
	if it.Valid() {
		t.Error("empty block iterator valid")
	}
	it.SeekToLast()
	if it.Valid() {
		t.Error("SeekToLast valid on empty block")
	}
	it.SeekGE([]byte("x"))
	if it.Valid() {
		t.Error("SeekGE valid on empty block")
	}
}

func TestRoundTripWithPrefixCompression(t *testing.T) {
	r := buildBlock(t, 4,
		"apple", "1", "apple-pie", "2", "applet", "3", "banana", "4",
		"bandana", "5", "cat", "6")
	got := collect(t, r)
	want := []string{"apple=1", "apple-pie=2", "applet=3", "banana=4", "bandana=5", "cat=6"}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Errorf("got %v want %v", got, want)
	}
}

func TestSeekGE(t *testing.T) {
	r := buildBlock(t, 2, "b", "1", "d", "2", "f", "3", "h", "4")
	it := r.Iter()
	cases := []struct{ seek, want string }{
		{"a", "b"}, {"b", "b"}, {"c", "d"}, {"f", "f"}, {"g", "h"}, {"h", "h"},
	}
	for _, tc := range cases {
		it.SeekGE([]byte(tc.seek))
		if !it.Valid() || string(it.Key()) != tc.want {
			t.Errorf("SeekGE(%q) landed on %q valid=%v", tc.seek, it.Key(), it.Valid())
		}
	}
	it.SeekGE([]byte("i"))
	if it.Valid() {
		t.Error("SeekGE past end valid")
	}
}

func TestSeekToLastAndPrev(t *testing.T) {
	r := buildBlock(t, 3, "a", "1", "b", "2", "c", "3", "d", "4", "e", "5")
	it := r.Iter()
	var got []string
	for it.SeekToLast(); it.Valid(); it.Prev() {
		got = append(got, string(it.Key()))
	}
	want := []string{"e", "d", "c", "b", "a"}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Errorf("reverse scan got %v want %v", got, want)
	}
}

func TestEstimatedSizeGrows(t *testing.T) {
	w := &Writer{}
	if !w.Empty() {
		t.Error("fresh writer not empty")
	}
	prev := w.EstimatedSize()
	for i := 0; i < 20; i++ {
		w.Add([]byte(fmt.Sprintf("key%04d", i)), bytes.Repeat([]byte{'v'}, 10))
		if sz := w.EstimatedSize(); sz <= prev {
			t.Fatalf("EstimatedSize did not grow at entry %d", i)
		}
		prev = w.EstimatedSize()
	}
	enc := w.Finish()
	if len(enc) != prev {
		t.Errorf("Finish len %d != EstimatedSize %d", len(enc), prev)
	}
}

func TestWriterReset(t *testing.T) {
	w := &Writer{Interval: 2}
	w.Add([]byte("a"), []byte("1"))
	w.Finish()
	w.Reset()
	if !w.Empty() || w.Count() != 0 {
		t.Error("Reset did not clear writer")
	}
	w.Add([]byte("z"), []byte("9"))
	r, err := NewReader(bytes.Compare, w.Finish())
	if err != nil {
		t.Fatal(err)
	}
	got := collect(t, r)
	if len(got) != 1 || got[0] != "z=9" {
		t.Errorf("after reset got %v", got)
	}
}

func TestCorruptBlockRejected(t *testing.T) {
	if _, err := NewReader(bytes.Compare, []byte{1, 2}); err == nil {
		t.Error("short block accepted")
	}
	// Restart count claiming more entries than fit.
	bad := make([]byte, 8)
	bad[4] = 0xff
	if _, err := NewReader(bytes.Compare, bad); err == nil {
		t.Error("bogus restart count accepted")
	}
}

func TestCorruptEntrySurfacesError(t *testing.T) {
	w := &Writer{}
	w.Add([]byte("key"), []byte("value"))
	enc := w.Finish()
	enc[0] = 0xff // destroy the first varint
	enc[1] = 0xff
	enc[2] = 0xff
	r, err := NewReader(bytes.Compare, enc)
	if err != nil {
		return // also acceptable
	}
	it := r.Iter()
	it.SeekToFirst()
	if it.Valid() {
		t.Error("iterator valid over corrupt entry")
	}
	if it.Error() == nil {
		t.Error("no error surfaced for corrupt entry")
	}
}

// Property test: random sorted KVs round-trip through the block with every
// restart interval, and SeekGE agrees with a linear scan.
func TestQuickRoundTripAndSeek(t *testing.T) {
	f := func(seed int64, interval uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(200)
		keySet := map[string]string{}
		for i := 0; i < n; i++ {
			keySet[fmt.Sprintf("key-%04d", rng.Intn(500))] = fmt.Sprintf("v%d", i)
		}
		var sorted []string
		for k := range keySet {
			sorted = append(sorted, k)
		}
		sort.Strings(sorted)

		w := &Writer{Interval: int(interval%32) + 1}
		for _, k := range sorted {
			w.Add([]byte(k), []byte(keySet[k]))
		}
		r, err := NewReader(bytes.Compare, w.Finish())
		if err != nil {
			return len(sorted) == 0 // empty-input edge
		}
		it := r.Iter()
		i := 0
		for it.SeekToFirst(); it.Valid(); it.Next() {
			if i >= len(sorted) || string(it.Key()) != sorted[i] || string(it.Value()) != keySet[sorted[i]] {
				return false
			}
			i++
		}
		if i != len(sorted) {
			return false
		}
		// Random seeks.
		for j := 0; j < 10; j++ {
			target := fmt.Sprintf("key-%04d", rng.Intn(600))
			it.SeekGE([]byte(target))
			wantIdx := sort.SearchStrings(sorted, target)
			if wantIdx == len(sorted) {
				if it.Valid() {
					return false
				}
			} else if !it.Valid() || string(it.Key()) != sorted[wantIdx] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func BenchmarkBlockAdd(b *testing.B) {
	val := bytes.Repeat([]byte{'v'}, 100)
	w := &Writer{}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if w.EstimatedSize() > 4096 {
			w.Finish()
			w.Reset()
		}
		w.Add([]byte(fmt.Sprintf("key-%012d", i)), val)
	}
}

func BenchmarkBlockSeekGE(b *testing.B) {
	w := &Writer{}
	for i := 0; i < 100; i++ {
		w.Add([]byte(fmt.Sprintf("key-%06d", i)), []byte("value"))
	}
	r, err := NewReader(bytes.Compare, w.Finish())
	if err != nil {
		b.Fatal(err)
	}
	it := r.Iter()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		it.SeekGE([]byte(fmt.Sprintf("key-%06d", i%100)))
	}
}
