//go:build !invariants

package invariants

import "testing"

// Without the tag the wrappers are plain mutexes: inverted acquisition
// orders are silently permitted (the validator compiles away) and the
// tracker API is inert.
func TestLockRankDisabledIsInert(t *testing.T) {
	var low, high Mutex
	low.Rank("off.low", 1)
	high.Rank("off.high", 2)
	high.Lock()
	low.Lock() // inverted on purpose: must NOT panic without the tag
	low.Unlock()
	high.Unlock()

	LockAcquired("off.low", 1)
	LockReleased("off.low")
	if held := HeldLocks(); held != nil {
		t.Fatalf("HeldLocks = %v, want nil without -tags invariants", held)
	}

	var rw RWMutex
	rw.Rank("off.rw", 3)
	rw.RLock()
	rw.RUnlock()
	rw.Lock()
	rw.Unlock()
}
