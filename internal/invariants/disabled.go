//go:build !invariants

package invariants

// Enabled is false in default builds; checks guarded by it compile away.
const Enabled = false
