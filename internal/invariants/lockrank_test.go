//go:build invariants

package invariants

import (
	"strings"
	"sync"
	"testing"
)

func mustPanic(t *testing.T, substr string, fn func()) {
	t.Helper()
	defer func() {
		r := recover()
		if r == nil {
			t.Fatalf("expected panic containing %q, got none", substr)
		}
		if msg, ok := r.(string); !ok || !strings.Contains(msg, substr) {
			t.Fatalf("panic %v does not contain %q", r, substr)
		}
	}()
	fn()
}

// An intentionally inverted acquisition must panic via the runtime
// lock-rank tracker — this is the acceptance gate for the dynamic half.
func TestLockRankInversionPanics(t *testing.T) {
	var low, high Mutex
	low.Rank("test.low", 1)
	high.Rank("test.high", 2)
	mustPanic(t, "lock-rank inversion: acquiring test.low (rank 1) while holding test.high (rank 2)", func() {
		high.Lock()
		defer high.Unlock()
		low.Lock() // inverted: rank 1 under rank 2
		defer low.Unlock()
	})
	// The tracker must not be poisoned for this goroutine afterwards.
	LockReleased("test.low")
	LockReleased("test.high")
	if held := HeldLocks(); len(held) != 0 {
		t.Fatalf("held stack not empty after cleanup: %v", held)
	}
}

func TestLockRankEqualRankPanics(t *testing.T) {
	var a, b Mutex
	a.Rank("test.eq.a", 7)
	b.Rank("test.eq.b", 7)
	mustPanic(t, "lock-rank inversion", func() {
		a.Lock()
		defer a.Unlock()
		b.Lock()
		defer b.Unlock()
	})
	LockReleased("test.eq.b")
	LockReleased("test.eq.a")
}

func TestLockRankOrderedNestingOK(t *testing.T) {
	var outer, mid, inner Mutex
	outer.Rank("test.outer", 10)
	mid.Rank("test.mid", 20)
	inner.Rank("test.inner", 30)
	outer.Lock()
	mid.Lock()
	inner.Lock()
	if held := HeldLocks(); len(held) != 3 || held[0] != "test.outer" || held[2] != "test.inner" {
		t.Fatalf("held stack = %v", held)
	}
	// Out-of-order release is legal: deadlock order is about acquisition.
	mid.Unlock()
	inner.Unlock()
	outer.Unlock()
	if held := HeldLocks(); len(held) != 0 {
		t.Fatalf("held stack not empty: %v", held)
	}
}

// Re-acquiring after a full release is not nesting.
func TestLockRankSequentialReacquireOK(t *testing.T) {
	var high, low Mutex
	high.Rank("test.seq.high", 2)
	low.Rank("test.seq.low", 1)
	high.Lock()
	high.Unlock()
	low.Lock()
	low.Unlock()
	high.Lock()
	high.Unlock()
}

// Zero-value wrappers (Rank never called) stay usable and untracked, so
// struct literals in tests keep working.
func TestLockRankZeroValueUntracked(t *testing.T) {
	var a, b Mutex
	a.Lock()
	b.Lock()
	b.Unlock()
	a.Unlock()
	if held := HeldLocks(); len(held) != 0 {
		t.Fatalf("zero-value mutexes were tracked: %v", held)
	}
}

// RWMutex read acquisitions share the lock's rank.
func TestLockRankRWMutex(t *testing.T) {
	var rw RWMutex
	var m Mutex
	rw.Rank("test.rw", 1)
	m.Rank("test.rw.inner", 2)
	rw.RLock()
	m.Lock()
	m.Unlock()
	rw.RUnlock()
	mustPanic(t, "lock-rank inversion", func() {
		m.Lock()
		defer m.Unlock()
		rw.RLock() // rank 1 under rank 2
		defer rw.RUnlock()
	})
	LockReleased("test.rw")
	LockReleased("test.rw.inner")
}

// Stacks are per-goroutine: the same ranks held concurrently on two
// goroutines never interact.
func TestLockRankPerGoroutine(t *testing.T) {
	var a, b Mutex
	a.Rank("test.g.a", 1)
	b.Rank("test.g.b", 2)
	a.Lock()
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		b.Lock() // holding nothing on this goroutine: no inversion
		b.Unlock()
	}()
	wg.Wait()
	a.Unlock()
}

// A ranked mutex works as a sync.Cond locker: Wait's unlock/relock passes
// through the wrapper, so the tracker stays balanced.
func TestLockRankCondWait(t *testing.T) {
	var mu Mutex
	mu.Rank("test.cond", 5)
	cond := sync.NewCond(&mu)
	done := make(chan struct{})
	mu.Lock()
	go func() {
		mu.Lock()
		cond.Broadcast()
		mu.Unlock()
		close(done)
	}()
	cond.Wait()
	mu.Unlock()
	<-done
	if held := HeldLocks(); len(held) != 0 {
		t.Fatalf("held stack not empty after cond wait: %v", held)
	}
}
