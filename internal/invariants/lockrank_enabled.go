//go:build invariants

package invariants

import (
	"fmt"
	"runtime"
	"strings"
	"sync"
)

// The runtime lock-rank validator: every ranked mutex acquisition is pushed
// onto a per-goroutine stack, and acquiring a lock whose rank is not
// strictly greater than the innermost held lock's rank panics with both
// acquisition contexts. This is the dynamic half of the lock-order
// discipline; tools/ldclint's lockorder analyzer proves the same ordering
// statically from the //ldclint:lockrank annotations. Ranks must strictly
// increase inward so that the global acquisition graph stays acyclic; see
// DESIGN.md's "Lock order" catalog for the ranked inventory.

// Mutex is a sync.Mutex that validates the declared lock ranking on every
// acquisition. Zero-value Mutexes (Rank never called) are usable but
// untracked, so test fixtures that construct structs directly keep working.
type Mutex struct {
	sync.Mutex
	name string
	rank int
}

// Rank declares the lock's name and rank for the runtime validator. Call
// once, at construction, before the mutex is shared.
func (m *Mutex) Rank(name string, rank int) { m.name, m.rank = name, rank }

// Lock acquires the mutex and records it on the goroutine's held stack.
func (m *Mutex) Lock() {
	m.Mutex.Lock()
	LockAcquired(m.name, m.rank)
}

// Unlock removes the mutex from the held stack and releases it.
func (m *Mutex) Unlock() {
	LockReleased(m.name)
	m.Mutex.Unlock()
}

// RWMutex is the read-write counterpart of Mutex. Read and write
// acquisitions share the lock's single rank: a read lock nests exactly
// where a write lock may, because a queued writer makes even read-read
// cycles deadlock.
type RWMutex struct {
	sync.RWMutex
	name string
	rank int
}

// Rank declares the lock's name and rank for the runtime validator.
func (m *RWMutex) Rank(name string, rank int) { m.name, m.rank = name, rank }

func (m *RWMutex) Lock() {
	m.RWMutex.Lock()
	LockAcquired(m.name, m.rank)
}

func (m *RWMutex) Unlock() {
	LockReleased(m.name)
	m.RWMutex.Unlock()
}

func (m *RWMutex) RLock() {
	m.RWMutex.RLock()
	LockAcquired(m.name, m.rank)
}

func (m *RWMutex) RUnlock() {
	LockReleased(m.name)
	m.RWMutex.RUnlock()
}

// heldLock is one entry on a goroutine's held stack.
type heldLock struct {
	name string
	rank int
}

// lockState is the global held-stack table. Its own mutex is a plain
// sync.Mutex, deliberately outside the ranked universe: it is acquired
// inside every tracked acquisition and held across no other lock.
var lockState struct {
	sync.Mutex
	held map[uint64][]heldLock
}

// LockAcquired records that the calling goroutine acquired the named lock,
// panicking if the acquisition inverts the declared ranking: a newly
// acquired lock's rank must be strictly greater than the innermost held
// lock's. Empty names (zero-value wrappers) are ignored.
func LockAcquired(name string, rank int) {
	if name == "" {
		return
	}
	g := goid()
	lockState.Lock()
	defer lockState.Unlock()
	if lockState.held == nil {
		lockState.held = map[uint64][]heldLock{}
	}
	stack := lockState.held[g]
	if n := len(stack); n > 0 {
		top := stack[n-1]
		if rank <= top.rank {
			panic(fmt.Sprintf(
				"invariant violated: lock-rank inversion: acquiring %s (rank %d) while holding %s (rank %d); held stack: %s",
				name, rank, top.name, top.rank, describeStack(stack)))
		}
	}
	lockState.held[g] = append(stack, heldLock{name, rank})
}

// LockReleased records that the calling goroutine released the named lock.
// Unlock order need not be LIFO (releasing an outer lock first is legal and
// common), so the matching entry is removed wherever it sits. Releasing a
// lock that was never tracked is ignored: the acquisition may predate the
// Rank call during construction.
func LockReleased(name string) {
	if name == "" {
		return
	}
	g := goid()
	lockState.Lock()
	defer lockState.Unlock()
	stack := lockState.held[g]
	for i := len(stack) - 1; i >= 0; i-- {
		if stack[i].name == name {
			stack = append(stack[:i], stack[i+1:]...)
			if len(stack) == 0 {
				delete(lockState.held, g)
			} else {
				lockState.held[g] = stack
			}
			return
		}
	}
}

// HeldLocks reports the calling goroutine's held ranked locks, outermost
// first.
func HeldLocks() []string {
	g := goid()
	lockState.Lock()
	defer lockState.Unlock()
	stack := lockState.held[g]
	out := make([]string, len(stack))
	for i, h := range stack {
		out[i] = h.name
	}
	return out
}

func describeStack(stack []heldLock) string {
	var b strings.Builder
	for i, h := range stack {
		if i > 0 {
			b.WriteString(" -> ")
		}
		fmt.Fprintf(&b, "%s(%d)", h.name, h.rank)
	}
	return b.String()
}

// goid parses the current goroutine's id from the first line of its stack
// header ("goroutine N [..."). Slow, but this whole file only exists under
// -tags invariants.
func goid() uint64 {
	var buf [64]byte
	n := runtime.Stack(buf[:], false)
	s := buf[:n]
	const prefix = "goroutine "
	if len(s) < len(prefix) {
		return 0
	}
	s = s[len(prefix):]
	var id uint64
	for _, c := range s {
		if c < '0' || c > '9' {
			break
		}
		id = id*10 + uint64(c-'0')
	}
	return id
}
