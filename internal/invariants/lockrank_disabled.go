//go:build !invariants

package invariants

import "sync"

// Mutex is a sync.Mutex that participates in the lock-rank validator when
// built with -tags invariants. Without the tag it is exactly a sync.Mutex:
// the embedded methods are promoted untouched, Rank is an empty method the
// compiler deletes, and the struct adds no fields, so ranked call sites
// cost nothing in production builds.
//
// The static half of the same discipline is tools/ldclint's lockorder
// analyzer, driven by //ldclint:lockrank annotations on the fields.
type Mutex struct {
	sync.Mutex
}

// Rank declares the lock's name and rank for the runtime validator. No-op
// without -tags invariants. The name and rank must match the field's
// //ldclint:lockrank annotation; the lockorder analyzer checks they agree.
func (m *Mutex) Rank(name string, rank int) {}

// RWMutex is the read-write counterpart of Mutex.
type RWMutex struct {
	sync.RWMutex
}

// Rank declares the lock's name and rank for the runtime validator. No-op
// without -tags invariants.
func (m *RWMutex) Rank(name string, rank int) {}

// LockAcquired records that the calling goroutine acquired the named lock.
// No-op without -tags invariants. Ranked Mutex/RWMutex call it themselves;
// it is exported for locks that cannot use the wrapper types.
func LockAcquired(name string, rank int) {}

// LockReleased records that the calling goroutine released the named lock.
// No-op without -tags invariants.
func LockReleased(name string) {}

// HeldLocks reports the calling goroutine's held ranked locks, outermost
// first. Always nil without -tags invariants.
func HeldLocks() []string { return nil }
