// Package invariants gates runtime assertions that are too expensive — or
// too paranoid — for production builds. Build with
//
//	go test -tags invariants ./...
//
// (or `make invariants`) and every check in this package becomes active;
// without the tag, Enabled is a false constant and the compiler deletes the
// checks and their arguments' evaluation entirely, so call sites cost
// nothing.
//
// The checks guard the engine's reference-counting and lifecycle contracts:
// refcounts never go negative, released objects are never handed out again,
// pooled iterators are not used after Close, cache accounting never drifts.
// They are wired into internal/version, internal/core, and internal/cache;
// the static half of the same contracts is enforced by tools/ldclint.
package invariants

import "fmt"

// Violatedf reports an invariant violation. It panics when invariants are
// enabled and is a no-op (compiled away) otherwise. Call sites should guard
// any non-trivial argument computation with `if invariants.Enabled`.
func Violatedf(format string, args ...interface{}) {
	if !Enabled {
		return
	}
	panic("invariant violated: " + fmt.Sprintf(format, args...))
}

// CheckRefcountNonNegative panics (under -tags invariants) if a refcount
// has been decremented below zero — the signature of a double-release.
func CheckRefcountNonNegative(n int64, what string) {
	if !Enabled {
		return
	}
	if n < 0 {
		panic(fmt.Sprintf("invariant violated: %s refcount is %d (double release)", what, n))
	}
}

// CheckNotReleased panics (under -tags invariants) if an object that has
// already been released is being handed out or re-acquired.
func CheckNotReleased(released bool, what string) {
	if !Enabled {
		return
	}
	if released {
		panic(fmt.Sprintf("invariant violated: %s acquired after release", what))
	}
}
