//go:build invariants

package invariants

// Enabled is true in builds made with -tags invariants.
const Enabled = true
