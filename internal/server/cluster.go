package server

import (
	"crypto/sha1"
	"encoding/hex"
	"fmt"
	"sync"
)

// Cluster-mode stubs. The engine already hash-partitions the keyspace
// across core.Options.Shards in-process shards; these commands expose that
// partitioning through the Redis Cluster vocabulary so the same hash
// routing can later go multi-process: a client that learns slot ownership
// via CLUSTER KEYSLOT today needs no protocol change when slots move onto
// other nodes and the server starts answering with -MOVED redirects
// (client.MovedError already parses them). Until then this node owns every
// slot, cluster mode reports disabled, and no command ever redirects.

// movedErrorf formats the Redis Cluster redirect ("MOVED <slot> <addr>",
// sent as a RESP error). Unused by the single-process server — it never
// redirects — but pinned here (and round-tripped against the client's
// parser in tests) so the wire format is fixed before slots can move.
func movedErrorf(slot int, addr string) string {
	return fmt.Sprintf("MOVED %d %s", slot, addr)
}

// nodeID returns this server's stable 40-hex-digit cluster node ID,
// derived from the listen address and start time on first use (after Serve
// has bound the listener, so the real address participates).
func (s *Server) nodeID() string {
	s.nodeIDOnce.Do(func() {
		h := sha1.New()
		if addr := s.Addr(); addr != nil {
			fmt.Fprint(h, addr.String())
		}
		fmt.Fprint(h, s.started.UnixNano())
		s.nodeIDVal = hex.EncodeToString(h.Sum(nil))
	})
	return s.nodeIDVal
}

// cmdCluster dispatches the CLUSTER subcommands:
//
//	CLUSTER INFO     — bulk string; cluster_enabled:0 plus ldc_shards:<n>
//	CLUSTER MYID     — this node's 40-hex node ID
//	CLUSTER SLOTS    — empty array (no slot ranges are assigned elsewhere)
//	CLUSTER SHARDS   — empty array (Redis 7 shape of the same answer)
//	CLUSTER KEYSLOT <key> — the engine shard that owns key
func (c *conn) cmdCluster(cmd [][]byte) {
	if len(cmd) < 2 {
		c.argErr("cluster")
		return
	}
	switch c.commandName(cmd[1]) {
	case "info":
		c.w.BulkString(fmt.Sprintf(
			"cluster_enabled:0\r\ncluster_state:ok\r\ncluster_known_nodes:1\r\ncluster_size:1\r\nldc_shards:%d\r\n",
			c.srv.db.NumShards()))
	case "myid":
		c.w.BulkString(c.srv.nodeID())
	case "slots", "shards":
		c.w.Array(0)
	case "keyslot":
		if len(cmd) != 3 {
			c.argErr("cluster")
			return
		}
		c.w.Int(int64(c.srv.db.ShardOf(cmd[2])))
	default:
		c.w.Error("ERR Unknown CLUSTER subcommand or wrong number of arguments for '" + string(cmd[1]) + "'")
	}
}

// cmdMGet answers MGET. Over one shard it reads the keys in order; over N
// shards it fans the keys out by owning shard and reads the shards
// concurrently — each sub-reader walks only its shard's memtable and tree,
// so a wide MGET overlaps N independent read paths instead of threading
// one — then replies in request order. Missing or unreadable keys read as
// null, per Redis.
func (c *conn) cmdMGet(keys [][]byte) {
	c.w.Array(len(keys))
	db := c.srv.db
	if db.NumShards() == 1 || len(keys) == 1 {
		for _, k := range keys {
			if val, err := db.Get(k); err == nil {
				c.w.Bulk(val)
			} else {
				c.w.Bulk(nil)
			}
		}
		return
	}
	vals := make([][]byte, len(keys))
	found := make([]bool, len(keys)) // distinguishes missing from empty values
	byShard := make(map[int][]int, db.NumShards())
	for i, k := range keys {
		sh := db.ShardOf(k)
		byShard[sh] = append(byShard[sh], i)
	}
	var wg sync.WaitGroup
	for _, idxs := range byShard {
		wg.Add(1)
		go func(idxs []int) {
			defer wg.Done()
			for _, i := range idxs {
				if val, err := db.Get(keys[i]); err == nil {
					vals[i], found[i] = val, true
				}
			}
		}(idxs)
	}
	wg.Wait()
	for i, v := range vals {
		if found[i] {
			c.w.Bulk(v)
		} else {
			c.w.Bulk(nil)
		}
	}
}
