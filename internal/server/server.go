// Package server is the network serving layer: a TCP server speaking a
// RESP2 subset (GET/SET/DEL/MGET/MSET/SCAN/PING/INFO/DBSIZE and friends)
// over the LDC storage engine. Stock Redis tooling — redis-cli,
// redis-benchmark — works against it out of the box.
//
// Connection model: one goroutine per connection, with a hard connection
// limit enforced on the accept side — when MaxConns connections are live
// the accept loop stops calling Accept, so excess clients queue in the
// kernel backlog (backpressure) instead of being churned through
// accept-and-refuse.
//
// Pipelining couples directly into the engine's group commit: all write
// commands in one pipelined burst are absorbed into a single batch.Batch
// and applied with one DB.Apply call when the burst drains (or a read
// command forces the writes to become visible). Network concurrency
// therefore feeds the commit pipeline wider batches instead of fighting it
// with per-command commits.
//
// Shutdown drains gracefully: stop accepting, let every connection finish
// the commands it has already received, flush responses, then close the
// DB. Close semantics on the engine (ErrClosed after Close, idempotent
// Close) make the drain race-free.
package server

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/invariants"
)

// ErrServerClosed is returned by Serve after Shutdown completes.
var ErrServerClosed = errors.New("server: closed")

// Config tunes the serving layer. The zero value listens on
// 127.0.0.1:6380 with production-shaped limits.
type Config struct {
	// Addr is the TCP listen address (default "127.0.0.1:6380"). Use
	// port 0 to pick an ephemeral port; Server.Addr reports it.
	Addr string
	// MaxConns caps simultaneously served connections (default 1024). At
	// the cap the accept loop blocks — accept-side backpressure — rather
	// than accepting and refusing.
	MaxConns int
	// IdleTimeout closes a connection that sends no command for this long
	// (default 5m).
	IdleTimeout time.Duration
	// WriteTimeout bounds one response-buffer flush to a client that has
	// stopped reading (default 30s).
	WriteTimeout time.Duration
	// DrainTimeout bounds Shutdown's wait for in-flight connections before
	// it force-closes them (default 10s).
	DrainTimeout time.Duration
	// MaxPipelineBytes flushes a connection's pending write batch to the
	// engine once its encoded size reaches this limit, bounding per-
	// connection memory under abusive pipelines (default: the engine's
	// default write-group cap, 1 MiB).
	MaxPipelineBytes int
}

// Validate rejects nonsensical server configurations, wrapping
// core.ErrInvalidOptions like the engine's own Options.Validate.
func (c Config) Validate() error {
	if c.MaxConns < 0 {
		return fmt.Errorf("%w: MaxConns is negative (%d)", core.ErrInvalidOptions, c.MaxConns)
	}
	if c.IdleTimeout < 0 {
		return fmt.Errorf("%w: IdleTimeout is negative (%v)", core.ErrInvalidOptions, c.IdleTimeout)
	}
	if c.WriteTimeout < 0 {
		return fmt.Errorf("%w: WriteTimeout is negative (%v)", core.ErrInvalidOptions, c.WriteTimeout)
	}
	if c.DrainTimeout < 0 {
		return fmt.Errorf("%w: DrainTimeout is negative (%v)", core.ErrInvalidOptions, c.DrainTimeout)
	}
	if c.MaxPipelineBytes < 0 {
		return fmt.Errorf("%w: MaxPipelineBytes is negative (%d)", core.ErrInvalidOptions, c.MaxPipelineBytes)
	}
	if c.MaxPipelineBytes > 0 && c.MaxPipelineBytes < 4<<10 {
		return fmt.Errorf("%w: MaxPipelineBytes %d is below the 4 KiB floor", core.ErrInvalidOptions, c.MaxPipelineBytes)
	}
	return nil
}

func (c Config) withDefaults() Config {
	if c.Addr == "" {
		c.Addr = "127.0.0.1:6380"
	}
	if c.MaxConns == 0 {
		c.MaxConns = 1024
	}
	if c.IdleTimeout == 0 {
		c.IdleTimeout = 5 * time.Minute
	}
	if c.WriteTimeout == 0 {
		c.WriteTimeout = 30 * time.Second
	}
	if c.DrainTimeout == 0 {
		c.DrainTimeout = 10 * time.Second
	}
	if c.MaxPipelineBytes == 0 {
		c.MaxPipelineBytes = 1 << 20
	}
	return c
}

// Server serves the RESP protocol over one DB. Create with New, start with
// ListenAndServe or Serve, stop with Shutdown (which closes the DB).
type Server struct {
	db  *core.DB
	cfg Config

	sem  chan struct{} // connection slots; acquired before Accept
	quit chan struct{} // closed by Shutdown: stop accepting, start draining

	//ldclint:lockrank server.server.mu 10
	mu    invariants.Mutex
	ln    net.Listener
	conns map[*conn]struct{}
	wg    sync.WaitGroup // live connection goroutines

	draining atomic.Bool

	shutdownOnce sync.Once
	shutdownErr  error
	shutdownDone chan struct{}

	started time.Time
	stats   serverStats

	// Cluster node identity (cluster.go), derived lazily so the bound
	// listen address can participate.
	nodeIDOnce sync.Once
	nodeIDVal  string
}

// New builds a server over db. The configuration must Validate.
func New(db *core.DB, cfg Config) (*Server, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	cfg = cfg.withDefaults()
	s := &Server{
		db:           db,
		cfg:          cfg,
		sem:          make(chan struct{}, cfg.MaxConns),
		quit:         make(chan struct{}),
		conns:        map[*conn]struct{}{},
		shutdownDone: make(chan struct{}),
		started:      time.Now(),
	}
	s.mu.Rank("server.server.mu", 10)
	s.stats.init()
	return s, nil
}

// Addr reports the bound listen address (useful with ":0"), or nil before
// Serve.
func (s *Server) Addr() net.Addr {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ln == nil {
		return nil
	}
	return s.ln.Addr()
}

// ListenAndServe binds cfg.Addr and serves until Shutdown.
func (s *Server) ListenAndServe() error {
	ln, err := net.Listen("tcp", s.cfg.Addr)
	if err != nil {
		return err
	}
	return s.Serve(ln)
}

// Serve accepts connections on ln until Shutdown, then returns
// ErrServerClosed. A connection slot is acquired before each Accept call,
// so at MaxConns live connections new clients wait in the listen backlog
// instead of being accepted.
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	if s.ln != nil {
		s.mu.Unlock()
		return errors.New("server: Serve called twice")
	}
	s.ln = ln
	s.mu.Unlock()

	for {
		// Accept-side backpressure: no slot, no Accept.
		select {
		case s.sem <- struct{}{}:
		case <-s.quit:
			return ErrServerClosed
		}
		nc, err := ln.Accept()
		if err != nil {
			<-s.sem
			select {
			case <-s.quit:
				return ErrServerClosed
			default:
			}
			var ne net.Error
			if errors.As(err, &ne) && ne.Timeout() {
				continue
			}
			return err
		}
		s.stats.connsAccepted.Add(1)
		s.stats.connsCurrent.Add(1)
		c := newConn(s, nc)
		s.mu.Lock()
		s.conns[c] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go c.serve()
	}
}

// remove unregisters a finished connection and frees its slot.
func (s *Server) remove(c *conn) {
	s.mu.Lock()
	delete(s.conns, c)
	s.mu.Unlock()
	s.stats.connsCurrent.Add(-1)
	<-s.sem
	s.wg.Done()
}

// Shutdown drains the server gracefully: stop accepting, wake idle
// connections, let busy ones finish the commands they have already
// received (bounded by DrainTimeout, after which sockets are force-
// closed), then close the DB. Idempotent and safe to call concurrently;
// every call returns after the teardown completes.
func (s *Server) Shutdown() error {
	s.shutdownOnce.Do(func() {
		s.draining.Store(true)
		close(s.quit)
		s.mu.Lock()
		ln := s.ln
		live := make([]*conn, 0, len(s.conns))
		for c := range s.conns {
			live = append(live, c)
		}
		s.mu.Unlock()
		if ln != nil {
			_ = ln.Close() // unblocks Accept; double-close on a dead listener is harmless
		}
		// Wake connections parked in a blocking read: an immediate read
		// deadline makes the read return now; the connection loop observes
		// draining, flushes, and exits. Connections mid-command keep going
		// until their received burst is done.
		for _, c := range live {
			c.nc.SetReadDeadline(time.Now())
		}

		done := make(chan struct{})
		go func() {
			s.wg.Wait()
			close(done)
		}()
		select {
		case <-done:
		case <-time.After(s.cfg.DrainTimeout):
			// Stragglers (a client that never drains its responses, a
			// command wedged on a dead socket): sever and wait again —
			// the loops exit on the resulting I/O errors.
			s.mu.Lock()
			stuck := make([]*conn, 0, len(s.conns))
			for c := range s.conns {
				stuck = append(stuck, c)
			}
			s.mu.Unlock()
			for _, c := range stuck {
				_ = c.nc.Close() // severing; the conn loop reports its own exit
			}
			<-done
		}
		s.shutdownErr = s.db.Close()
		close(s.shutdownDone)
	})
	<-s.shutdownDone
	return s.shutdownErr
}

// Metrics snapshots the server-side counters (see serverStats).
func (s *Server) Metrics() Metrics {
	return s.stats.snapshot(s.started)
}
