package server

import (
	"bytes"
	"fmt"
	"net"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/resp"
)

// startShardedServer is startServer over a hash-partitioned engine.
func startShardedServer(t testing.TB, shards int) (*Server, string) {
	t.Helper()
	opts := smallOpts()
	opts.Shards = shards
	db, err := core.Open("/db", opts)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	srv, err := New(db, Config{})
	if err != nil {
		db.Close()
		t.Fatalf("New: %v", err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		db.Close()
		t.Fatalf("Listen: %v", err)
	}
	go func() { _ = srv.Serve(ln) }()
	return srv, ln.Addr().String()
}

func TestServerClusterStubs(t *testing.T) {
	srv, addr := startShardedServer(t, 4)
	defer srv.Shutdown()
	c := dial(t, addr)
	defer c.Close()

	info, err := c.ClusterInfo()
	if err != nil {
		t.Fatalf("CLUSTER INFO: %v", err)
	}
	for _, want := range []string{"cluster_enabled:0", "cluster_state:ok", "ldc_shards:4"} {
		if !strings.Contains(info, want) {
			t.Errorf("CLUSTER INFO missing %q:\n%s", want, info)
		}
	}

	id, err := c.ClusterMyID()
	if err != nil {
		t.Fatalf("CLUSTER MYID: %v", err)
	}
	if len(id) != 40 {
		t.Errorf("CLUSTER MYID = %q (len %d), want 40 hex chars", id, len(id))
	}
	id2, _ := c.ClusterMyID()
	if id2 != id {
		t.Errorf("CLUSTER MYID unstable: %q then %q", id, id2)
	}

	// KEYSLOT answers the engine's routing, stable per key and in range.
	seen := map[int64]bool{}
	for i := 0; i < 64; i++ {
		key := []byte(fmt.Sprintf("slot-key-%d", i))
		slot, err := c.ClusterKeySlot(key)
		if err != nil {
			t.Fatalf("CLUSTER KEYSLOT: %v", err)
		}
		if slot < 0 || slot >= 4 {
			t.Fatalf("CLUSTER KEYSLOT(%q) = %d, out of range [0,4)", key, slot)
		}
		again, _ := c.ClusterKeySlot(key)
		if again != slot {
			t.Fatalf("CLUSTER KEYSLOT(%q) unstable: %d then %d", key, slot, again)
		}
		seen[slot] = true
	}
	if len(seen) < 2 {
		t.Errorf("64 keys landed on %d slot(s); hash routing should spread them", len(seen))
	}

	// SLOTS/SHARDS: no ranges assigned elsewhere — empty arrays.
	for _, sub := range []string{"SLOTS", "SHARDS"} {
		v, err := c.Do("CLUSTER", sub)
		if err != nil {
			t.Fatalf("CLUSTER %s: %v", sub, err)
		}
		if arr, ok := v.([]interface{}); !ok || len(arr) != 0 {
			t.Errorf("CLUSTER %s = %v, want empty array", sub, v)
		}
	}

	if _, err := c.Do("CLUSTER", "FAILOVER"); err == nil {
		t.Error("CLUSTER FAILOVER succeeded, want unknown-subcommand error")
	} else if _, isResp := err.(resp.Error); !isResp {
		t.Errorf("CLUSTER FAILOVER error type %T, want resp.Error", err)
	}
}

func TestServerShardedMGetAndScan(t *testing.T) {
	srv, addr := startShardedServer(t, 4)
	defer srv.Shutdown()
	c := dial(t, addr)
	defer c.Close()

	const n = 200
	for i := 0; i < n; i++ {
		if err := c.Set(kv(i), []byte(fmt.Sprintf("v-%d", i))); err != nil {
			t.Fatal(err)
		}
	}

	// MGET fans out across shards and must reply in request order with
	// nulls for missing keys.
	keys := [][]byte{kv(3), []byte("missing-a"), kv(150), kv(7), []byte("missing-b"), kv(0)}
	vals, err := c.MGet(keys...)
	if err != nil {
		t.Fatalf("MGET: %v", err)
	}
	want := [][]byte{[]byte("v-3"), nil, []byte("v-150"), []byte("v-7"), nil, []byte("v-0")}
	if len(vals) != len(want) {
		t.Fatalf("MGET returned %d values, want %d", len(vals), len(want))
	}
	for i := range want {
		if !bytes.Equal(vals[i], want[i]) {
			t.Errorf("MGET[%d] = %q, want %q", i, vals[i], want[i])
		}
	}

	// SCAN pages the merged keyspace in sorted order, every key exactly once.
	var got [][]byte
	cursor := []byte("0")
	for {
		next, page, err := c.Scan(cursor, 17)
		if err != nil {
			t.Fatalf("SCAN: %v", err)
		}
		got = append(got, page...)
		if string(next) == "0" {
			break
		}
		cursor = next
	}
	if len(got) != n {
		t.Fatalf("SCAN walked %d keys, want %d", len(got), n)
	}
	for i := 1; i < len(got); i++ {
		if bytes.Compare(got[i-1], got[i]) >= 0 {
			t.Fatalf("SCAN out of order at %d: %q !< %q", i, got[i-1], got[i])
		}
	}

	// INFO gains the cluster and per-shard breakdown sections.
	info, err := c.Info("")
	if err != nil {
		t.Fatalf("INFO: %v", err)
	}
	for _, wantLine := range []string{"# Cluster", "ldc_shards:4", "# Shards", "shard_count:4", "shard0:puts=", "shard3:puts="} {
		if !strings.Contains(info, wantLine) {
			t.Errorf("INFO missing %q", wantLine)
		}
	}
	shardsOnly, err := c.Info("shards")
	if err != nil {
		t.Fatalf("INFO shards: %v", err)
	}
	if !strings.Contains(shardsOnly, "shard_count:4") || strings.Contains(shardsOnly, "# Engine") {
		t.Errorf("INFO shards section wrong:\n%s", shardsOnly)
	}
}

func kv(i int) []byte { return []byte(fmt.Sprintf("key-%05d", i)) }
