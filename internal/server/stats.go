package server

import (
	"fmt"
	"sort"
	"strings"
	"sync/atomic"
	"time"

	"repro/internal/histogram"
)

// commandNames is the fixed dispatch set. The per-command stats map is
// built over it once at New, so the hot path records into it lock-free.
var commandNames = []string{
	"ping", "echo", "set", "get", "del", "mget", "mset", "scan",
	"dbsize", "info", "quit", "command", "config", "select", "cluster",
}

// cmdStat counts one command's calls and holds its latency histogram
// (geometric buckets, P50..P99.99 reads — the paper's tail-latency lens
// applied to the serving layer).
type cmdStat struct {
	calls atomic.Int64
	hist  histogram.Histogram
}

// serverStats is the live counter set; all fields are updated lock-free.
type serverStats struct {
	connsAccepted atomic.Int64
	connsCurrent  atomic.Int64
	commands      atomic.Int64
	unknownCmds   atomic.Int64
	protoErrors   atomic.Int64

	// Write batching: pipelined write commands coalesce into one engine
	// batch per burst. applyBatches counts DB.Apply calls, applyOps the
	// write commands they carried; ops/batches is the server-side batching
	// factor that then feeds the engine's group commit.
	applyBatches atomic.Int64
	applyOps     atomic.Int64
	applyHist    histogram.Histogram

	perCmd map[string]*cmdStat
	other  cmdStat // unknown / rejected commands
}

func (st *serverStats) init() {
	st.perCmd = make(map[string]*cmdStat, len(commandNames))
	for _, name := range commandNames {
		st.perCmd[name] = &cmdStat{}
	}
}

// observe records one handled command. The map is read-only after init, so
// this is a lock-free lookup plus atomic adds.
func (st *serverStats) observe(name string, d time.Duration) {
	st.commands.Add(1)
	cs := st.perCmd[name]
	if cs == nil {
		cs = &st.other
	}
	cs.calls.Add(1)
	cs.hist.Record(d)
}

// CommandMetrics is one command's snapshot.
type CommandMetrics struct {
	Name  string
	Calls int64
	Mean  time.Duration
	P50   time.Duration
	P99   time.Duration
	Max   time.Duration
}

// Metrics is a point-in-time snapshot of the server-side counters.
type Metrics struct {
	Uptime         time.Duration
	ConnsAccepted  int64
	ConnsCurrent   int64
	Commands       int64
	UnknownCmds    int64
	ProtoErrors    int64
	ApplyBatches   int64
	ApplyOps       int64
	AvgOpsPerApply float64
	Commandstats   []CommandMetrics
}

func (st *serverStats) snapshot(started time.Time) Metrics {
	m := Metrics{
		Uptime:        time.Since(started),
		ConnsAccepted: st.connsAccepted.Load(),
		ConnsCurrent:  st.connsCurrent.Load(),
		Commands:      st.commands.Load(),
		UnknownCmds:   st.unknownCmds.Load(),
		ProtoErrors:   st.protoErrors.Load(),
		ApplyBatches:  st.applyBatches.Load(),
		ApplyOps:      st.applyOps.Load(),
	}
	if m.ApplyBatches > 0 {
		m.AvgOpsPerApply = float64(m.ApplyOps) / float64(m.ApplyBatches)
	}
	for _, name := range commandNames {
		cs := st.perCmd[name]
		if n := cs.calls.Load(); n > 0 {
			m.Commandstats = append(m.Commandstats, CommandMetrics{
				Name:  name,
				Calls: n,
				Mean:  cs.hist.Mean(),
				P50:   cs.hist.Percentile(50),
				P99:   cs.hist.Percentile(99),
				Max:   cs.hist.Max(),
			})
		}
	}
	sort.Slice(m.Commandstats, func(i, j int) bool {
		return m.Commandstats[i].Calls > m.Commandstats[j].Calls
	})
	return m
}

// renderInfo builds the INFO reply: redis-style "# Section" headers and
// key:value lines, covering the server counters and the engine's
// DB.Stats() — including the group-commit observability fields
// (write_groups_total, avg_group_size) that make the pipelining→group-
// commit coupling visible from a client.
func (s *Server) renderInfo(section string) string {
	var b strings.Builder
	m := s.Metrics()
	want := func(name string) bool {
		return section == "" || strings.EqualFold(section, name)
	}

	if want("server") {
		fmt.Fprintf(&b, "# Server\r\n")
		fmt.Fprintf(&b, "server_name:ldcserver\r\n")
		fmt.Fprintf(&b, "engine:ldc\r\n")
		if addr := s.Addr(); addr != nil {
			fmt.Fprintf(&b, "tcp_addr:%s\r\n", addr)
		}
		fmt.Fprintf(&b, "uptime_in_seconds:%d\r\n", int64(m.Uptime.Seconds()))
		fmt.Fprintf(&b, "max_connections:%d\r\n", s.cfg.MaxConns)
		fmt.Fprintf(&b, "\r\n")
	}
	if want("clients") {
		fmt.Fprintf(&b, "# Clients\r\n")
		fmt.Fprintf(&b, "connected_clients:%d\r\n", m.ConnsCurrent)
		fmt.Fprintf(&b, "total_connections_received:%d\r\n", m.ConnsAccepted)
		fmt.Fprintf(&b, "\r\n")
	}
	if want("stats") {
		fmt.Fprintf(&b, "# Stats\r\n")
		fmt.Fprintf(&b, "total_commands_processed:%d\r\n", m.Commands)
		fmt.Fprintf(&b, "unknown_commands:%d\r\n", m.UnknownCmds)
		fmt.Fprintf(&b, "protocol_errors:%d\r\n", m.ProtoErrors)
		fmt.Fprintf(&b, "apply_batches:%d\r\n", m.ApplyBatches)
		fmt.Fprintf(&b, "apply_ops:%d\r\n", m.ApplyOps)
		fmt.Fprintf(&b, "avg_ops_per_apply:%.2f\r\n", m.AvgOpsPerApply)
		fmt.Fprintf(&b, "apply_p99_usec:%d\r\n", s.stats.applyHist.Percentile(99).Microseconds())
		fmt.Fprintf(&b, "\r\n")
	}
	if want("commandstats") {
		fmt.Fprintf(&b, "# Commandstats\r\n")
		for _, cs := range m.Commandstats {
			fmt.Fprintf(&b, "cmdstat_%s:calls=%d,usec_per_call=%d,p50_usec=%d,p99_usec=%d,max_usec=%d\r\n",
				cs.Name, cs.Calls, cs.Mean.Microseconds(), cs.P50.Microseconds(),
				cs.P99.Microseconds(), cs.Max.Microseconds())
		}
		fmt.Fprintf(&b, "\r\n")
	}
	if want("engine") {
		ds := s.db.Stats()
		fmt.Fprintf(&b, "# Engine\r\n")
		fmt.Fprintf(&b, "write_groups_total:%d\r\n", ds.WriteGroupsTotal)
		fmt.Fprintf(&b, "write_batches_total:%d\r\n", ds.WriteBatchesTotal)
		fmt.Fprintf(&b, "avg_group_size:%.2f\r\n", ds.AvgGroupSize)
		fmt.Fprintf(&b, "write_state:%s\r\n", ds.WriteState)
		fmt.Fprintf(&b, "wal_sync_count:%d\r\n", ds.WALSyncCount)
		fmt.Fprintf(&b, "wal_sync_usec:%d\r\n", ds.WALSyncNanos/1e3)
		fmt.Fprintf(&b, "user_write_bytes:%d\r\n", ds.UserWriteBytes)
		fmt.Fprintf(&b, "flush_count:%d\r\n", ds.FlushCount)
		fmt.Fprintf(&b, "compaction_count:%d\r\n", ds.CompactionCount)
		fmt.Fprintf(&b, "link_count:%d\r\n", ds.LinkCount)
		fmt.Fprintf(&b, "merge_count:%d\r\n", ds.MergeCount)
		fmt.Fprintf(&b, "write_amplification:%.2f\r\n", ds.WriteAmplification())
		fmt.Fprintf(&b, "stall_time_usec:%d\r\n", ds.StallTime.Microseconds())
		fmt.Fprintf(&b, "slowdown_count:%d\r\n", ds.SlowdownCount)
		fmt.Fprintf(&b, "stop_count:%d\r\n", ds.StopCount)
		fmt.Fprintf(&b, "point_read_amp:%.2f\r\n", ds.PointReadAmp)
		fmt.Fprintf(&b, "block_cache_hit_ratio:%.3f\r\n", ds.BlockCacheHitRatio)
		// Foreground latency distributions (the paper's tail-latency lens
		// applied at the engine boundary, below RESP parsing).
		for _, lat := range []struct {
			name string
			d    histogram.Distribution
		}{{"read", ds.ReadLatency}, {"write", ds.WriteLatency}} {
			fmt.Fprintf(&b, "%s_latency_usec:count=%d,mean=%d,p50=%d,p99=%d,p999=%d,p9999=%d,max=%d\r\n",
				lat.name, lat.d.Count, lat.d.Mean.Microseconds(),
				lat.d.P50.Microseconds(), lat.d.P99.Microseconds(),
				lat.d.P999.Microseconds(), lat.d.P9999.Microseconds(),
				lat.d.Max.Microseconds())
		}
		// I/O scheduler counters (zero when rate limiting is disabled,
		// except the per-tier byte accounting which always runs).
		fmt.Fprintf(&b, "io_sched_flush_bytes:%d\r\n", ds.IOSchedFlushBytes)
		fmt.Fprintf(&b, "io_sched_l0_bytes:%d\r\n", ds.IOSchedL0Bytes)
		fmt.Fprintf(&b, "io_sched_merge_bytes:%d\r\n", ds.IOSchedMergeBytes)
		fmt.Fprintf(&b, "io_sched_throttled_waits:%d\r\n", ds.IOSchedThrottledWaits)
		fmt.Fprintf(&b, "io_sched_throttle_usec:%d\r\n", ds.IOSchedThrottleTime.Microseconds())
		fmt.Fprintf(&b, "io_sched_preemptions:%d\r\n", ds.IOSchedPreemptions)
		fmt.Fprintf(&b, "io_sched_queue_depths:flush=%d,l0=%d,merge=%d\r\n",
			ds.IOSchedQueueFlush, ds.IOSchedQueueL0, ds.IOSchedQueueMerge)
		// Value-log counters (all zero when value separation never ran and
		// no log segments exist on disk).
		fmt.Fprintf(&b, "vlog_segments:%d\r\n", ds.VlogSegments)
		fmt.Fprintf(&b, "vlog_total_bytes:%d\r\n", ds.VlogTotalBytes)
		fmt.Fprintf(&b, "vlog_dead_bytes:%d\r\n", ds.VlogDeadBytes)
		fmt.Fprintf(&b, "vlog_live_ratio:%.3f\r\n", ds.VlogLiveRatio)
		fmt.Fprintf(&b, "vlog_appended_bytes:%d\r\n", ds.VlogAppendedBytes)
		fmt.Fprintf(&b, "vlog_gc_passes:%d\r\n", ds.VlogGCPasses)
		fmt.Fprintf(&b, "vlog_gc_bytes_rewritten:%d\r\n", ds.VlogGCBytesRewritten)
		fmt.Fprintf(&b, "vlog_gc_records_guarded:%d\r\n", ds.VlogGCRecordsGuarded)
		fmt.Fprintf(&b, "blob_values_separated:%d\r\n", ds.BlobValuesSeparated)
		fmt.Fprintf(&b, "blob_resolves:%d\r\n", ds.BlobResolves)
		fmt.Fprintf(&b, "blob_resolve_cache_hits:%d\r\n", ds.BlobResolveCacheHits)
		fmt.Fprintf(&b, "\r\n")
	}
	if want("cluster") {
		fmt.Fprintf(&b, "# Cluster\r\n")
		fmt.Fprintf(&b, "cluster_enabled:0\r\n")
		fmt.Fprintf(&b, "ldc_shards:%d\r\n", s.db.NumShards())
		fmt.Fprintf(&b, "\r\n")
	}
	if want("shards") {
		// Per-shard breakdown behind the aggregated Engine section: one line
		// per shard so skew (hot shards, a stalled shard) is visible from a
		// client. Block-cache counters are absent by design — the cache is
		// shared and reported once under Engine.
		fmt.Fprintf(&b, "# Shards\r\n")
		fmt.Fprintf(&b, "shard_count:%d\r\n", s.db.NumShards())
		for i, ss := range s.db.ShardStats() {
			fmt.Fprintf(&b,
				"shard%d:puts=%d,gets=%d,user_write_bytes=%d,flush_count=%d,compaction_count=%d,write_state=%s,stall_usec=%d,write_groups=%d,avg_group_size=%.2f\r\n",
				i, ss.Puts, ss.Gets, ss.UserWriteBytes, ss.FlushCount,
				ss.CompactionCount, ss.WriteState, ss.StallTime.Microseconds(),
				ss.WriteGroupsTotal, ss.AvgGroupSize)
		}
		fmt.Fprintf(&b, "\r\n")
	}
	if b.Len() == 0 {
		fmt.Fprintf(&b, "# %s\r\n\r\n", section)
	}
	return b.String()
}
