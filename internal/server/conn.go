package server

import (
	"errors"
	"net"
	"os"
	"strconv"
	"time"

	"repro/internal/batch"
	"repro/internal/core"
	"repro/internal/resp"
)

// scanDefaultCount is SCAN's page size when no COUNT is given (Redis's
// default).
const scanDefaultCount = 10

// pendingReply is a queued acknowledgment for a write command absorbed
// into the connection's pending batch. Replies must go out in command
// order, so write acks are held here and emitted right after the batch
// applies — before any later command's reply.
type pendingReply struct {
	kind byte // 'S': +OK, 'I': integer n
	n    int64
}

// conn serves one client connection.
type conn struct {
	srv *Server
	nc  net.Conn
	r   *resp.Reader
	w   *resp.Writer

	// pending accumulates this connection's unapplied write commands; one
	// pipelined burst of SETs becomes one engine batch — a single commit-
	// pipeline entry — instead of a commit per command.
	pending    *batch.Batch
	pendingOps int64
	replies    []pendingReply

	nameBuf []byte // scratch for upper-casing the command name
	closing bool   // QUIT received or fatal error: exit after flushing
}

func newConn(s *Server, nc net.Conn) *conn {
	return &conn{
		srv:     s,
		nc:      nc,
		r:       resp.NewReader(nc),
		w:       resp.NewWriter(nc),
		pending: batch.New(),
	}
}

// serve is the connection loop: absorb pipelined commands while input is
// buffered, flush writes and responses when the burst drains, and exit on
// disconnect, idle timeout, QUIT, or server drain.
func (c *conn) serve() {
	defer func() {
		// Disconnect mid-pipeline loses the unapplied tail by design (the
		// client never saw acks for it); drop it rather than committing
		// writes nobody observed succeed.
		_ = c.nc.Close() // peer may already be gone; nothing to do with the error
		c.srv.remove(c)
	}()

	for !c.closing {
		if c.r.Buffered() == 0 {
			// Burst drained: make pending writes durable, emit their acks,
			// and push the whole response buffer in one write.
			if !c.flushWrites() {
				return
			}
			if !c.flushResponses() {
				return
			}
			// Order matters versus Shutdown: the deadline is armed before
			// draining is checked, and Shutdown sets draining before it
			// stamps every connection with an immediate deadline — so either
			// this check sees draining, or Shutdown's immediate deadline
			// lands after ours and the read below wakes at once.
			c.nc.SetReadDeadline(time.Now().Add(c.srv.cfg.IdleTimeout))
			if c.srv.draining.Load() {
				return
			}
		}
		cmd, err := c.r.ReadCommand()
		if err != nil {
			if errors.Is(err, os.ErrDeadlineExceeded) {
				// Idle timeout or Shutdown's wakeup nudge; either way the
				// connection parts cleanly (everything was flushed before
				// the blocking read).
				return
			}
			if errors.Is(err, resp.ErrProtocol) {
				c.srv.stats.protoErrors.Add(1)
				c.w.Error("ERR protocol error: " + err.Error())
				c.flushResponses()
			}
			return // disconnect, torn input, or unrecoverable framing
		}
		if len(cmd) == 0 {
			continue // blank inline line
		}
		start := time.Now()
		name := c.commandName(cmd[0])
		c.dispatch(name, cmd)
		c.srv.stats.observe(name, time.Since(start))
	}
	// QUIT: acknowledge everything, then close.
	if c.flushWrites() {
		c.flushResponses()
	}
}

// commandName lower-cases the command into a reused scratch buffer and
// returns the canonical constant for known commands, so steady-state
// dispatch allocates nothing (string(buf) inside a switch comparison does
// not escape).
func (c *conn) commandName(raw []byte) string {
	c.nameBuf = c.nameBuf[:0]
	for _, b := range raw {
		if b >= 'A' && b <= 'Z' {
			b += 'a' - 'A'
		}
		c.nameBuf = append(c.nameBuf, b)
	}
	switch string(c.nameBuf) {
	case "set":
		return "set"
	case "get":
		return "get"
	case "del":
		return "del"
	case "mget":
		return "mget"
	case "mset":
		return "mset"
	case "scan":
		return "scan"
	case "ping":
		return "ping"
	case "echo":
		return "echo"
	case "info":
		return "info"
	case "dbsize":
		return "dbsize"
	case "quit":
		return "quit"
	case "command":
		return "command"
	case "config":
		return "config"
	case "select":
		return "select"
	case "count":
		return "count"
	case "cluster":
		return "cluster"
	case "myid":
		return "myid"
	case "slots":
		return "slots"
	case "shards":
		return "shards"
	case "keyslot":
		return "keyslot"
	}
	return string(c.nameBuf)
}

// flushWrites applies the pending write batch (if any) and emits the
// queued acks. Returns false when the connection should die: the engine
// refused the writes (poisoned or closed), so the client gets error
// replies for the batch and the connection closes.
func (c *conn) flushWrites() bool {
	if c.pending.Empty() {
		return true
	}
	start := time.Now()
	err := c.srv.db.Apply(c.pending)
	c.srv.stats.applyHist.Record(time.Since(start))
	c.srv.stats.applyBatches.Add(1)
	c.srv.stats.applyOps.Add(c.pendingOps)
	if err != nil {
		// The engine refused the batch (closed or poisoned): every queued
		// write gets an error reply, then the connection dies.
		for range c.replies {
			c.w.Error("ERR " + err.Error())
		}
		c.replies = c.replies[:0]
		c.pending.Reset()
		c.pendingOps = 0
		c.closing = true
		c.flushResponses()
		return false
	}
	for _, r := range c.replies {
		if r.kind == 'S' {
			c.w.SimpleString("OK")
		} else {
			c.w.Int(r.n)
		}
	}
	c.replies = c.replies[:0]
	c.pending.Reset()
	c.pendingOps = 0
	return true
}

// flushResponses writes the buffered replies to the socket under the write
// deadline. Returns false on write failure (dead client).
func (c *conn) flushResponses() bool {
	if c.w.Buffered() == 0 {
		return true
	}
	c.nc.SetWriteDeadline(time.Now().Add(c.srv.cfg.WriteTimeout))
	return c.w.Flush() == nil
}

// dispatch executes one command. Write commands are absorbed into the
// pending batch with their ack queued; everything else first forces the
// pending writes down (read-your-writes within a connection, and reply
// ordering) and then answers directly.
func (c *conn) dispatch(name string, cmd [][]byte) {
	switch name {
	case "set":
		if len(cmd) != 3 {
			c.argErr(name)
			return
		}
		c.pending.Set(cmd[1], cmd[2])
		c.pendingOps++
		c.replies = append(c.replies, pendingReply{kind: 'S'})
		c.capPending()
	case "del":
		if len(cmd) < 2 {
			c.argErr(name)
			return
		}
		for _, k := range cmd[1:] {
			c.pending.Delete(k)
		}
		c.pendingOps += int64(len(cmd) - 1)
		// Deviation from Redis: the engine writes tombstones blindly, so
		// DEL reports keys named, not keys that existed.
		c.replies = append(c.replies, pendingReply{kind: 'I', n: int64(len(cmd) - 1)})
		c.capPending()
	case "mset":
		if len(cmd) < 3 || len(cmd)%2 != 1 {
			c.argErr(name)
			return
		}
		for i := 1; i < len(cmd); i += 2 {
			c.pending.Set(cmd[i], cmd[i+1])
		}
		c.pendingOps += int64(len(cmd) / 2)
		c.replies = append(c.replies, pendingReply{kind: 'S'})
		c.capPending()

	case "get":
		if len(cmd) != 2 {
			c.argErr(name)
			return
		}
		if !c.flushWrites() {
			return
		}
		val, err := c.srv.db.Get(cmd[1])
		switch {
		case err == nil:
			c.w.Bulk(val)
		case errors.Is(err, core.ErrNotFound):
			c.w.Bulk(nil)
		default:
			c.w.Error("ERR " + err.Error())
		}
	case "mget":
		if len(cmd) < 2 {
			c.argErr(name)
			return
		}
		if !c.flushWrites() {
			return
		}
		c.cmdMGet(cmd[1:])
	case "scan":
		c.cmdScan(cmd)
	case "cluster":
		if !c.flushWrites() {
			return
		}
		c.cmdCluster(cmd)
	case "dbsize":
		if !c.flushWrites() {
			return
		}
		n, err := c.dbSize()
		if err != nil {
			c.w.Error("ERR " + err.Error())
			return
		}
		c.w.Int(n)

	case "ping":
		if !c.flushWrites() {
			return
		}
		if len(cmd) > 1 {
			c.w.Bulk(cmd[1])
		} else {
			c.w.SimpleString("PONG")
		}
	case "echo":
		if len(cmd) != 2 {
			c.argErr(name)
			return
		}
		if !c.flushWrites() {
			return
		}
		c.w.Bulk(cmd[1])
	case "info":
		if !c.flushWrites() {
			return
		}
		section := ""
		if len(cmd) > 1 {
			section = string(cmd[1])
		}
		c.w.BulkString(c.srv.renderInfo(section))
	case "quit":
		c.w.SimpleString("OK")
		c.closing = true
	case "command":
		// redis-cli probes COMMAND DOCS on connect; an empty array keeps it
		// happy without modeling the whole command table.
		if !c.flushWrites() {
			return
		}
		c.w.Array(0)
	case "config":
		if !c.flushWrites() {
			return
		}
		if len(cmd) >= 2 && c.commandName(cmd[1]) == "get" {
			c.w.Array(0)
		} else {
			c.w.Error("ERR CONFIG subcommand not supported")
		}
	case "select":
		if !c.flushWrites() {
			return
		}
		if len(cmd) == 2 && string(cmd[1]) == "0" {
			c.w.SimpleString("OK")
		} else {
			c.w.Error("ERR DB index is out of range (single-database server)")
		}
	default:
		c.srv.stats.unknownCmds.Add(1)
		if !c.flushWrites() {
			return
		}
		c.w.Error("ERR unknown command '" + string(cmd[0]) + "'")
	}
}

// capPending bounds per-connection batch memory: an abusive pipeline of
// writes is applied in MaxPipelineBytes slices. Acks are still emitted in
// order, so the client cannot tell the difference.
func (c *conn) capPending() {
	if c.pending.Size() >= c.srv.cfg.MaxPipelineBytes {
		c.flushWrites()
	}
}

// cmdScan implements a cursor-style SCAN over the sorted keyspace:
//
//	SCAN <cursor> [COUNT n]
//
// Cursor "0" starts from the first key; the reply's cursor is the next
// start key, with "0" again meaning exhausted — the contract redis-cli
// --scan expects, mapped onto a sorted store (no MATCH support).
func (c *conn) cmdScan(cmd [][]byte) {
	if len(cmd) < 2 {
		c.argErr("scan")
		return
	}
	count := scanDefaultCount
	if len(cmd) > 2 {
		if len(cmd) != 4 || c.commandName(cmd[2]) != "count" {
			c.argErr("scan")
			return
		}
		n, err := strconv.Atoi(string(cmd[3]))
		if err != nil || n <= 0 {
			c.w.Error("ERR value is not an integer or out of range")
			return
		}
		count = n
	}
	if !c.flushWrites() {
		return
	}
	var start []byte
	if string(cmd[1]) != "0" {
		start = cmd[1]
	}
	// Fetch one extra pair to learn whether the keyspace continues; the
	// extra key is the next cursor.
	pairs, err := c.srv.db.Scan(start, count+1)
	if err != nil {
		c.w.Error("ERR " + err.Error())
		return
	}
	next := []byte("0")
	if len(pairs) > count {
		next = pairs[count].Key
		pairs = pairs[:count]
	}
	c.w.Array(2)
	c.w.Bulk(next)
	c.w.Array(len(pairs))
	for _, kv := range pairs {
		c.w.Bulk(kv.Key)
	}
}

// dbSize counts live keys with a full iteration. O(keys) — priced like
// KEYS *, fine for operations, not for hot paths.
func (c *conn) dbSize() (int64, error) {
	it, err := c.srv.db.NewIterator(nil)
	if err != nil {
		return 0, err
	}
	defer it.Close()
	var n int64
	for it.SeekToFirst(); it.Valid(); it.Next() {
		n++
	}
	return n, it.Error()
}

func (c *conn) argErr(name string) {
	c.w.Error("ERR wrong number of arguments for '" + name + "' command")
}
