package server

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"repro/internal/client"
	"repro/internal/core"
)

// TestE2EConcurrentClients is the serving-layer soak: 64 client
// connections run mixed pipelined workloads (writes, point reads, scans)
// against a tiny tree so flushes and background compaction churn
// underneath, then the server drains gracefully. Run under -race this
// covers the full stack: resp framing, per-connection batching, the
// commit pipeline, the lock-free read path, and Shutdown/Close.
func TestE2EConcurrentClients(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	srv, addr, serveErr := startServer(t, Config{MaxConns: 128})

	const (
		conns       = 64
		keysPerConn = 200
		depth       = 16
	)
	var wg sync.WaitGroup
	errs := make(chan error, conns)
	for ci := 0; ci < conns; ci++ {
		wg.Add(1)
		go func(ci int) {
			defer wg.Done()
			errs <- runWorkload(addr, ci, keysPerConn, depth)
		}(ci)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}

	// Cross-connection isolation: every connection's keys carry its own id
	// in the value; sample the whole keyspace through a fresh connection.
	c := dial(t, addr)
	for ci := 0; ci < conns; ci += 7 {
		for k := 0; k < keysPerConn; k += 41 {
			key := []byte(fmt.Sprintf("c%02d-k%05d", ci, k))
			want := fmt.Sprintf("conn%02d-val%05d", ci, k)
			v, err := c.Get(key)
			if err != nil {
				t.Fatalf("Get %s: %v", key, err)
			}
			if string(v) != want {
				t.Fatalf("cross-connection corruption: %s = %q, want %q", key, v, want)
			}
		}
	}

	// The batching acceptance: pipelined writes must have coalesced, both
	// server-side (ops per Apply) and engine-side (batches per write group).
	m := srv.Metrics()
	totalSets := int64(conns * keysPerConn)
	if m.ApplyOps < totalSets {
		t.Fatalf("ApplyOps = %d, want >= %d", m.ApplyOps, totalSets)
	}
	if m.ApplyBatches*4 > m.ApplyOps {
		t.Fatalf("server batching too weak: %d batches / %d ops", m.ApplyBatches, m.ApplyOps)
	}
	ds := srv.db.Stats()
	if ds.WriteGroupsTotal == 0 || ds.WriteGroupsTotal >= totalSets {
		t.Fatalf("WriteGroupsTotal = %d for %d sets; pipelining is not feeding group commit", ds.WriteGroupsTotal, totalSets)
	}
	c.Close()
	waitConns(t, srv, 0)

	// Graceful drain: park an idle connection, then Shutdown. The idle
	// connection is woken and closed, Serve returns ErrServerClosed, and
	// the DB is closed underneath.
	idle := dial(t, addr)
	defer idle.Close()
	if err := idle.Ping(); err != nil {
		t.Fatalf("Ping: %v", err)
	}
	if err := srv.Shutdown(); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	if err := <-serveErr; !errors.Is(err, ErrServerClosed) {
		t.Fatalf("Serve = %v, want ErrServerClosed", err)
	}
	if _, err := srv.db.Get([]byte("c00-k00000")); !errors.Is(err, core.ErrClosed) {
		t.Fatalf("db.Get after drain = %v, want ErrClosed", err)
	}
	if m := srv.Metrics(); m.ConnsCurrent != 0 {
		t.Fatalf("ConnsCurrent = %d after drain, want 0", m.ConnsCurrent)
	}
}

// runWorkload is one connection's mixed workload: pipelined SET bursts,
// read-back of its own keys, and periodic scans.
func runWorkload(addr string, ci, keys, depth int) error {
	c, err := client.Dial(addr)
	if err != nil {
		return fmt.Errorf("conn %d: %v", ci, err)
	}
	defer c.Close()

	p := c.Pipeline()
	for k := 0; k < keys; k += depth {
		for j := k; j < k+depth && j < keys; j++ {
			p.Do("SET",
				[]byte(fmt.Sprintf("c%02d-k%05d", ci, j)),
				[]byte(fmt.Sprintf("conn%02d-val%05d", ci, j)))
		}
		replies, err := p.Exec()
		if err != nil {
			return fmt.Errorf("conn %d: pipeline: %v", ci, err)
		}
		for _, r := range replies {
			if s, ok := r.(string); !ok || s != "OK" {
				return fmt.Errorf("conn %d: SET reply %v", ci, r)
			}
		}
		// Read back one of the keys just written (read-your-writes across
		// bursts) and scan a page of the shared keyspace.
		key := []byte(fmt.Sprintf("c%02d-k%05d", ci, k))
		v, err := c.Get(key)
		if err != nil {
			return fmt.Errorf("conn %d: get %s: %v", ci, key, err)
		}
		if want := fmt.Sprintf("conn%02d-val%05d", ci, k); string(v) != want {
			return fmt.Errorf("conn %d: got %q want %q", ci, v, want)
		}
		if k%64 == 0 {
			if _, _, err := c.Scan([]byte("0"), 20); err != nil {
				return fmt.Errorf("conn %d: scan: %v", ci, err)
			}
		}
	}
	return nil
}

// TestE2EDisconnectMidPipeline is the fault test: a client that dies
// mid-pipeline (half a command on the wire) must not leak its connection
// goroutine, must not have its unacknowledged tail committed, and must not
// disturb other connections.
func TestE2EDisconnectMidPipeline(t *testing.T) {
	srv, addr, serveErr := startServer(t, Config{})
	defer func() {
		srv.Shutdown()
		<-serveErr
	}()

	// A healthy bystander connection with data on both sides of the fault.
	healthy := dial(t, addr)
	defer healthy.Close()
	if err := healthy.Set([]byte("stable"), []byte("before")); err != nil {
		t.Fatalf("Set: %v", err)
	}

	nc, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	// Two complete SETs followed by a torn third command, then an abrupt
	// close. The server may or may not have applied the complete prefix
	// (the client never saw acks), but the torn command must never apply.
	payload := "*3\r\n$3\r\nSET\r\n$4\r\ndead\r\n$2\r\nv1\r\n" +
		"*3\r\n$3\r\nSET\r\n$5\r\ndead2\r\n$2\r\nv2\r\n" +
		"*3\r\n$3\r\nSET\r\n$4\r\ntorn\r\n$100\r\npartial"
	if _, err := nc.Write([]byte(payload)); err != nil {
		t.Fatalf("Write: %v", err)
	}
	if tc, ok := nc.(*net.TCPConn); ok {
		tc.SetLinger(0) // RST, the rudest disconnect
	}
	_ = nc.Close() // RST path: the error is the point

	// No goroutine leak: the dead connection is reaped.
	waitConns(t, srv, 1)

	// Other connections keep working, before and after new writes.
	if v, err := healthy.Get([]byte("stable")); err != nil || string(v) != "before" {
		t.Fatalf("bystander Get = %q, %v", v, err)
	}
	if err := healthy.Set([]byte("stable"), []byte("after")); err != nil {
		t.Fatalf("bystander Set after fault: %v", err)
	}
	if v, err := healthy.Get([]byte("stable")); err != nil || string(v) != "after" {
		t.Fatalf("bystander Get = %q, %v", v, err)
	}

	// The torn command must not have been committed.
	if _, err := healthy.Get([]byte("torn")); !errors.Is(err, client.ErrNil) {
		t.Fatalf("torn key visible: %v", err)
	}
}

// TestE2EDrainFinishesInFlight verifies the drain contract: a pipeline
// fully received before Shutdown gets all its replies even though the
// server is draining while processing it.
func TestE2EDrainFinishesInFlight(t *testing.T) {
	srv, addr, serveErr := startServer(t, Config{})

	c := dial(t, addr)
	defer c.Close()

	// Synchronous pipeline: Exec returns only after every reply arrived,
	// so after it returns the server has fully processed the burst.
	p := c.Pipeline()
	const n = 300
	for i := 0; i < n; i++ {
		p.Do("SET", fmt.Sprintf("drain-%03d", i), "v")
	}
	replies, err := p.Exec()
	if err != nil {
		t.Fatalf("Exec: %v", err)
	}
	if len(replies) != n {
		t.Fatalf("got %d replies, want %d", len(replies), n)
	}

	// Shutdown while the connection is parked; all acknowledged writes must
	// be in the store when Close runs (verified via reopen semantics: Close
	// returned nil, meaning the pipeline flushed cleanly).
	start := time.Now()
	if err := srv.Shutdown(); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	if d := time.Since(start); d > 5*time.Second {
		t.Fatalf("drain took %v; idle connection was not woken", d)
	}
	if err := <-serveErr; !errors.Is(err, ErrServerClosed) {
		t.Fatalf("Serve = %v", err)
	}
}
