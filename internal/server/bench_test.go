package server

import (
	"fmt"
	"net"
	"strings"
	"testing"
	"time"

	"repro/internal/client"
	"repro/internal/compaction"
	"repro/internal/core"
	"repro/internal/vfs"
)

// slowSyncFS charges a fixed latency for every Sync of a .log file — the
// same stand-in for a device fsync that core's group-commit benchmark
// uses. With durable writes this is the cost pipelining amortizes: one WAL
// sync per burst instead of one per command.
type slowSyncFS struct {
	vfs.FS
	delay time.Duration
}

func (s *slowSyncFS) Create(name string) (vfs.File, error) {
	f, err := s.FS.Create(name)
	if err != nil {
		return nil, err
	}
	if strings.HasSuffix(name, ".log") {
		return &slowSyncFile{File: f, delay: s.delay}, nil
	}
	return f, nil
}

type slowSyncFile struct {
	vfs.File
	delay time.Duration
}

func (f *slowSyncFile) Sync() error {
	time.Sleep(f.delay)
	return f.File.Sync()
}

// benchOpts is a production-shaped tree (default sizes) on the in-memory
// FS, so the benchmark measures the serving layer and commit pipeline, not
// flush churn from a deliberately tiny memtable. sync=true adds a 100 µs
// simulated fsync on the WAL.
func benchOpts(sync bool) core.Options {
	o := core.Options{
		FS:     vfs.Mem(),
		Policy: compaction.LDC,
		Sync:   sync,
	}
	if sync {
		o.FS = &slowSyncFS{FS: o.FS, delay: 100 * time.Microsecond}
	}
	return o
}

// startBenchServer serves a mem-backed DB on an ephemeral port.
func startBenchServer(b *testing.B, sync bool) (*Server, string, func()) {
	b.Helper()
	db, err := core.Open("/bench", benchOpts(sync))
	if err != nil {
		b.Fatalf("Open: %v", err)
	}
	srv, err := New(db, Config{MaxConns: 256})
	if err != nil {
		b.Fatalf("New: %v", err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		b.Fatalf("Listen: %v", err)
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()
	return srv, ln.Addr().String(), func() {
		srv.Shutdown()
		<-serveErr
	}
}

// benchConns dials n clients and returns them with a closer.
func benchConns(b *testing.B, addr string, n int) []*client.Client {
	b.Helper()
	cs := make([]*client.Client, n)
	for i := range cs {
		c, err := client.Dial(addr)
		if err != nil {
			b.Fatalf("Dial: %v", err)
		}
		b.Cleanup(func() { c.Close() })
		cs[i] = c
	}
	return cs
}

// runPipelined splits b.N commands across the clients, each sending bursts
// of depth commands per round trip via build, and fails on bad replies.
func runPipelined(b *testing.B, clients []*client.Client, depth int,
	build func(p *client.Pipeline, conn, seq int)) {
	b.ResetTimer()
	done := make(chan error, len(clients))
	per := b.N / len(clients)
	for ci, c := range clients {
		go func(ci int, c *client.Client) {
			p := c.Pipeline()
			for sent := 0; sent < per; {
				burst := depth
				if rest := per - sent; rest < burst {
					burst = rest
				}
				for j := 0; j < burst; j++ {
					build(p, ci, sent+j)
				}
				replies, err := p.Exec()
				if err != nil {
					done <- err
					return
				}
				for _, r := range replies {
					if e, ok := r.(error); ok {
						done <- e
						return
					}
				}
				sent += burst
			}
			done <- nil
		}(ci, c)
	}
	for range clients {
		if err := <-done; err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkServerPipelinedSet measures full-stack write throughput —
// client encode, loopback TCP, RESP parse, per-connection batching, the
// commit pipeline — across connection counts and pipeline depths. Depth is
// the lever: one round trip per depth commands, one engine batch per
// burst.
func BenchmarkServerPipelinedSet(b *testing.B) {
	for _, sync := range []bool{false, true} {
		for _, conns := range []int{1, 16, 64} {
			for _, depth := range []int{1, 16} {
				b.Run(fmt.Sprintf("sync=%v/conns=%d/depth=%d", sync, conns, depth), func(b *testing.B) {
					srv, addr, stop := startBenchServer(b, sync)
					defer stop()
					clients := benchConns(b, addr, conns)
					val := make([]byte, 16)
					runPipelined(b, clients, depth, func(p *client.Pipeline, ci, seq int) {
						p.Do("SET", fmt.Sprintf("k%02d-%08d", ci, seq), val)
					})
					b.StopTimer()
					m := srv.Metrics()
					if m.ApplyBatches > 0 {
						b.ReportMetric(float64(m.ApplyOps)/float64(m.ApplyBatches), "ops/apply")
					}
				})
			}
		}
	}
}

// BenchmarkServerGet measures full-stack point-read throughput over a
// preloaded keyspace (every get hits).
func BenchmarkServerGet(b *testing.B) {
	const keys = 4096
	for _, conns := range []int{1, 16, 64} {
		for _, depth := range []int{1, 16} {
			b.Run(fmt.Sprintf("conns=%d/depth=%d", conns, depth), func(b *testing.B) {
				_, addr, stop := startBenchServer(b, false)
				defer stop()
				clients := benchConns(b, addr, conns)
				load := clients[0].Pipeline()
				val := make([]byte, 16)
				for i := 0; i < keys; i++ {
					load.Do("SET", fmt.Sprintf("g%08d", i), val)
				}
				if _, err := load.Exec(); err != nil {
					b.Fatalf("preload: %v", err)
				}
				runPipelined(b, clients, depth, func(p *client.Pipeline, ci, seq int) {
					p.Do("GET", fmt.Sprintf("g%08d", (ci*7919+seq)%keys))
				})
			})
		}
	}
}
