package server

import (
	"errors"
	"net"
	"strings"
	"testing"
	"time"

	"repro/internal/client"
	"repro/internal/compaction"
	"repro/internal/core"
	"repro/internal/resp"
	"repro/internal/vfs"
)

// smallOpts builds a tiny tree so test workloads exercise flushes and
// background compaction, not just the memtable.
func smallOpts() core.Options {
	return core.Options{
		FS:                  vfs.Mem(),
		Policy:              compaction.LDC,
		MemTableSize:        8 << 10,
		SSTableSize:         8 << 10,
		Fanout:              4,
		SliceLinkThreshold:  3,
		L0CompactionTrigger: 4,
		L0SlowdownTrigger:   8,
		L0StopTrigger:       12,
		BlockSize:           512,
		BlockCacheSize:      1 << 20,
	}
}

// startServer opens a mem-backed DB, serves it on an ephemeral port, and
// returns the server, its address, and a channel carrying Serve's return.
// Callers own shutdown (srv.Shutdown closes the DB).
func startServer(t testing.TB, cfg Config) (*Server, string, chan error) {
	t.Helper()
	db, err := core.Open("/db", smallOpts())
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	srv, err := New(db, cfg)
	if err != nil {
		db.Close()
		t.Fatalf("New: %v", err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		db.Close()
		t.Fatalf("Listen: %v", err)
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()
	return srv, ln.Addr().String(), serveErr
}

func dial(t testing.TB, addr string) *client.Client {
	t.Helper()
	c, err := client.Dial(addr)
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	return c
}

func TestServerBasicCommands(t *testing.T) {
	srv, addr, serveErr := startServer(t, Config{})
	defer func() {
		srv.Shutdown()
		<-serveErr
	}()
	c := dial(t, addr)
	defer c.Close()

	if err := c.Ping(); err != nil {
		t.Fatalf("Ping: %v", err)
	}
	if err := c.Set([]byte("alpha"), []byte("1")); err != nil {
		t.Fatalf("Set: %v", err)
	}
	v, err := c.Get([]byte("alpha"))
	if err != nil || string(v) != "1" {
		t.Fatalf("Get = %q, %v; want 1", v, err)
	}
	if _, err := c.Get([]byte("missing")); !errors.Is(err, client.ErrNil) {
		t.Fatalf("Get missing = %v; want ErrNil", err)
	}
	if n, err := c.Del([]byte("alpha")); err != nil || n != 1 {
		t.Fatalf("Del = %d, %v; want 1", n, err)
	}
	if _, err := c.Get([]byte("alpha")); !errors.Is(err, client.ErrNil) {
		t.Fatalf("Get after Del = %v; want ErrNil", err)
	}

	if _, err := c.Do("MSET", "k1", "v1", "k2", "v2", "k3", "v3"); err != nil {
		t.Fatalf("MSET: %v", err)
	}
	vals, err := c.MGet([]byte("k1"), []byte("nope"), []byte("k3"))
	if err != nil {
		t.Fatalf("MGet: %v", err)
	}
	if string(vals[0]) != "v1" || vals[1] != nil || string(vals[2]) != "v3" {
		t.Fatalf("MGet = %q", vals)
	}

	if n, err := c.DBSize(); err != nil || n != 3 {
		t.Fatalf("DBSize = %d, %v; want 3", n, err)
	}

	// Command and argument errors come back as resp.Error replies.
	if _, err := c.Do("NOSUCH"); err == nil || !strings.Contains(err.Error(), "unknown command") {
		t.Fatalf("NOSUCH err = %v", err)
	}
	var respErr resp.Error
	if _, err := c.Do("GET"); !errors.As(err, &respErr) {
		t.Fatalf("GET arity err = %v; want resp.Error", err)
	}

	if v, err := c.Do("ECHO", "hello"); err != nil || string(v.([]byte)) != "hello" {
		t.Fatalf("ECHO = %v, %v", v, err)
	}
	if _, err := c.Do("SELECT", "0"); err != nil {
		t.Fatalf("SELECT 0: %v", err)
	}
	if _, err := c.Do("SELECT", "7"); err == nil {
		t.Fatal("SELECT 7 should fail on a single-database server")
	}
}

func TestServerScanPagination(t *testing.T) {
	srv, addr, serveErr := startServer(t, Config{})
	defer func() {
		srv.Shutdown()
		<-serveErr
	}()
	c := dial(t, addr)
	defer c.Close()

	p := c.Pipeline()
	for i := 0; i < 100; i++ {
		p.Do("SET", []byte{'k', byte('0' + i/10), byte('0' + i%10)}, "v")
	}
	if _, err := p.Exec(); err != nil {
		t.Fatalf("pipeline: %v", err)
	}

	var got []string
	cursor := []byte("0")
	rounds := 0
	for {
		next, keys, err := c.Scan(cursor, 7)
		if err != nil {
			t.Fatalf("Scan: %v", err)
		}
		for _, k := range keys {
			got = append(got, string(k))
		}
		rounds++
		if string(next) == "0" {
			break
		}
		cursor = next
		if rounds > 100 {
			t.Fatal("scan did not terminate")
		}
	}
	if len(got) != 100 {
		t.Fatalf("scan returned %d keys, want 100", len(got))
	}
	for i := 1; i < len(got); i++ {
		if got[i-1] >= got[i] {
			t.Fatalf("scan out of order: %q before %q", got[i-1], got[i])
		}
	}
}

// TestServerPipelineBatching is the coupling acceptance check: a pipelined
// burst of writes must reach the engine as few batches, not one Apply per
// command.
func TestServerPipelineBatching(t *testing.T) {
	srv, addr, serveErr := startServer(t, Config{})
	defer func() {
		srv.Shutdown()
		<-serveErr
	}()
	c := dial(t, addr)
	defer c.Close()

	const sets = 500
	p := c.Pipeline()
	for i := 0; i < sets; i++ {
		p.Do("SET", []byte{byte(i >> 8), byte(i)}, "v")
	}
	replies, err := p.Exec()
	if err != nil {
		t.Fatalf("Exec: %v", err)
	}
	if len(replies) != sets {
		t.Fatalf("got %d replies, want %d", len(replies), sets)
	}
	for i, r := range replies {
		if s, ok := r.(string); !ok || s != "OK" {
			t.Fatalf("reply %d = %v, want OK", i, r)
		}
	}
	m := srv.Metrics()
	if m.ApplyOps < sets {
		t.Fatalf("ApplyOps = %d, want >= %d", m.ApplyOps, sets)
	}
	if m.ApplyBatches*5 > m.ApplyOps {
		t.Fatalf("batching too weak: %d batches for %d ops", m.ApplyBatches, m.ApplyOps)
	}
}

// TestServerReadYourWrites exercises the mid-pipeline flush: a GET between
// pipelined SETs must observe the SET before it, and replies must stay in
// command order.
func TestServerReadYourWrites(t *testing.T) {
	srv, addr, serveErr := startServer(t, Config{})
	defer func() {
		srv.Shutdown()
		<-serveErr
	}()
	c := dial(t, addr)
	defer c.Close()

	p := c.Pipeline()
	p.Do("SET", "x", "1")
	p.Do("GET", "x")
	p.Do("SET", "x", "2")
	p.Do("GET", "x")
	p.Do("DEL", "x")
	p.Do("GET", "x")
	replies, err := p.Exec()
	if err != nil {
		t.Fatalf("Exec: %v", err)
	}
	want := []interface{}{"OK", "1", "OK", "2", int64(1), nil}
	for i, w := range want {
		got := replies[i]
		switch w := w.(type) {
		case string:
			if s, ok := got.(string); ok && s == w {
				continue
			}
			if b, ok := got.([]byte); ok && string(b) == w {
				continue
			}
			t.Fatalf("reply %d = %#v, want %q", i, got, w)
		case int64:
			if n, ok := got.(int64); !ok || n != w {
				t.Fatalf("reply %d = %#v, want %d", i, got, w)
			}
		case nil:
			if b, ok := got.([]byte); !ok || b != nil {
				t.Fatalf("reply %d = %#v, want nil bulk", i, got)
			}
		}
	}
}

func TestServerInfo(t *testing.T) {
	srv, addr, serveErr := startServer(t, Config{})
	defer func() {
		srv.Shutdown()
		<-serveErr
	}()
	c := dial(t, addr)
	defer c.Close()

	if err := c.Set([]byte("k"), []byte("v")); err != nil {
		t.Fatalf("Set: %v", err)
	}
	info, err := c.Info("")
	if err != nil {
		t.Fatalf("Info: %v", err)
	}
	for _, want := range []string{
		"# Server", "# Clients", "# Stats", "# Commandstats", "# Engine",
		"connected_clients:1", "write_groups_total:", "avg_group_size:",
		"apply_batches:", "cmdstat_set:",
		"write_latency_usec:count=", "read_latency_usec:count=",
		"io_sched_flush_bytes:", "io_sched_throttled_waits:",
		"io_sched_preemptions:", "io_sched_queue_depths:flush=",
	} {
		if !strings.Contains(info, want) {
			t.Errorf("INFO missing %q", want)
		}
	}
	engine, err := c.Info("engine")
	if err != nil {
		t.Fatalf("Info engine: %v", err)
	}
	if strings.Contains(engine, "# Server") || !strings.Contains(engine, "# Engine") {
		t.Fatalf("sectioned INFO wrong: %q", engine)
	}
}

func TestServerIdleTimeout(t *testing.T) {
	srv, addr, serveErr := startServer(t, Config{IdleTimeout: 50 * time.Millisecond})
	defer func() {
		srv.Shutdown()
		<-serveErr
	}()
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer nc.Close()
	nc.SetReadDeadline(time.Now().Add(5 * time.Second))
	buf := make([]byte, 1)
	if _, err := nc.Read(buf); err == nil {
		t.Fatal("expected idle server to close the connection")
	}
	waitConns(t, srv, 0)
}

func TestServerMaxConnsBackpressure(t *testing.T) {
	srv, addr, serveErr := startServer(t, Config{MaxConns: 1})
	defer func() {
		srv.Shutdown()
		<-serveErr
	}()

	c1 := dial(t, addr)
	defer c1.Close()
	if err := c1.Ping(); err != nil {
		t.Fatalf("Ping: %v", err)
	}

	// Second client connects (kernel backlog) but is not served until the
	// first disconnects.
	c2 := dial(t, addr)
	defer c2.Close()
	pinged := make(chan error, 1)
	go func() { pinged <- c2.Ping() }()
	select {
	case err := <-pinged:
		t.Fatalf("second client served beyond MaxConns=1 (err=%v)", err)
	case <-time.After(100 * time.Millisecond):
	}
	c1.Close()
	select {
	case err := <-pinged:
		if err != nil {
			t.Fatalf("second client ping after slot freed: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("second client never served after slot freed")
	}
}

func TestServerProtocolError(t *testing.T) {
	srv, addr, serveErr := startServer(t, Config{})
	defer func() {
		srv.Shutdown()
		<-serveErr
	}()
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer nc.Close()
	if _, err := nc.Write([]byte("*abc\r\n")); err != nil {
		t.Fatalf("Write: %v", err)
	}
	nc.SetReadDeadline(time.Now().Add(5 * time.Second))
	buf := make([]byte, 256)
	n, _ := nc.Read(buf)
	if n == 0 || buf[0] != '-' {
		t.Fatalf("want error reply then close, got %q", buf[:n])
	}
	waitConns(t, srv, 0)
	if srv.Metrics().ProtoErrors != 1 {
		t.Fatalf("ProtoErrors = %d, want 1", srv.Metrics().ProtoErrors)
	}
}

func TestServerShutdownIdempotent(t *testing.T) {
	srv, addr, serveErr := startServer(t, Config{})
	c := dial(t, addr)
	defer c.Close()
	if err := c.Ping(); err != nil {
		t.Fatalf("Ping: %v", err)
	}
	for i := 0; i < 3; i++ {
		if err := srv.Shutdown(); err != nil {
			t.Fatalf("Shutdown #%d: %v", i, err)
		}
	}
	if err := <-serveErr; !errors.Is(err, ErrServerClosed) {
		t.Fatalf("Serve = %v, want ErrServerClosed", err)
	}
	if _, err := srv.db.Get([]byte("k")); !errors.Is(err, core.ErrClosed) {
		t.Fatalf("db.Get after Shutdown = %v, want ErrClosed", err)
	}
	if _, err := client.Dial(addr); err == nil {
		t.Fatal("Dial after Shutdown should fail")
	}
}

func TestConfigValidate(t *testing.T) {
	cases := []struct {
		name string
		cfg  Config
		ok   bool
	}{
		{"zero value", Config{}, true},
		{"explicit", Config{MaxConns: 16, IdleTimeout: time.Second, MaxPipelineBytes: 64 << 10}, true},
		{"negative MaxConns", Config{MaxConns: -1}, false},
		{"negative IdleTimeout", Config{IdleTimeout: -time.Second}, false},
		{"negative WriteTimeout", Config{WriteTimeout: -time.Second}, false},
		{"negative DrainTimeout", Config{DrainTimeout: -time.Second}, false},
		{"negative MaxPipelineBytes", Config{MaxPipelineBytes: -1}, false},
		{"tiny MaxPipelineBytes", Config{MaxPipelineBytes: 100}, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.cfg.Validate()
			if tc.ok && err != nil {
				t.Fatalf("Validate: %v", err)
			}
			if !tc.ok {
				if err == nil {
					t.Fatal("Validate accepted a nonsensical config")
				}
				if !errors.Is(err, core.ErrInvalidOptions) {
					t.Fatalf("error %v does not wrap ErrInvalidOptions", err)
				}
				if _, nerr := New(nil, tc.cfg); nerr == nil {
					t.Fatal("New accepted an invalid config")
				}
			}
		})
	}
}

// waitConns polls until the live-connection gauge reaches want.
func waitConns(t testing.TB, srv *Server, want int64) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if srv.Metrics().ConnsCurrent == want {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("ConnsCurrent = %d, want %d", srv.Metrics().ConnsCurrent, want)
}
