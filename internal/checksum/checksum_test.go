package checksum

import (
	"hash/crc32"
	"math/rand"
	"testing"
)

func TestCRC32CMatchesStdlib(t *testing.T) {
	table := crc32.MakeTable(crc32.Castagnoli)
	rng := rand.New(rand.NewSource(1))
	for _, n := range []int{0, 1, 7, 64, 4096} {
		data := make([]byte, n)
		rng.Read(data)
		want := crc32.Update(crc32.Checksum(data, table), table, []byte{0x02})
		if got := Sum(CRC32C, data, 0x02); got != want {
			t.Errorf("len %d: Sum=%08x stdlib=%08x", n, got, want)
		}
	}
}

// TestXXH64Vectors pins the stripe loop to the published XXH64 reference
// values, so the from-scratch implementation cannot silently drift (the
// on-disk checksum is derived from it).
func TestXXH64Vectors(t *testing.T) {
	// Reference vectors for XXH64 with seed 0 (from the xxHash spec's
	// published test values for ASCII inputs).
	cases := []struct {
		in   string
		want uint64
	}{
		{"", 0xef46db3751d8e999},
		{"a", 0xd24ec4f1a98c6e5b},
		{"abc", 0x44bc2cf5ad770999},
		{"message digest", 0x066ed728fceeb3be},
		{"abcdefghijklmnopqrstuvwxyz", 0xcfe1f278fa89835c},
		{"ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789", 0xaaa46907d3047814},
		{"12345678901234567890123456789012345678901234567890123456789012345678901234567890", 0xe04a477f19ee145d},
	}
	for _, c := range cases {
		if got := xxhash64([]byte(c.in), 0); got != c.want {
			t.Errorf("xxh64(%q) = %016x, want %016x", c.in, got, c.want)
		}
	}
}

func TestSumDistinguishesKinds(t *testing.T) {
	data := []byte("the same bytes under two hash functions")
	if Sum(CRC32C, data, 0) == Sum(XXH3, data, 0) {
		t.Error("CRC32C and XXH3 agree on test input; kinds are not distinct")
	}
}

func TestSumCoversTrailingByte(t *testing.T) {
	data := []byte("block contents")
	for _, k := range []Kind{CRC32C, XXH3} {
		if Sum(k, data, 0) == Sum(k, data, 1) {
			t.Errorf("%v: trailing byte not covered", k)
		}
	}
}

func TestSumSensitivity(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	data := make([]byte, 4096)
	rng.Read(data)
	for _, k := range []Kind{CRC32C, XXH3} {
		base := Sum(k, data, 0)
		for trial := 0; trial < 200; trial++ {
			i := rng.Intn(len(data))
			bit := byte(1) << uint(rng.Intn(8))
			data[i] ^= bit
			if Sum(k, data, 0) == base {
				t.Errorf("%v: flip of bit %d at byte %d undetected", k, bit, i)
			}
			data[i] ^= bit
		}
	}
}

func TestKindStringsAndValidity(t *testing.T) {
	if !CRC32C.Valid() || CRC32C.String() != "crc32c" {
		t.Error("CRC32C kind malformed")
	}
	if !XXH3.Valid() || XXH3.String() != "xxh3" {
		t.Error("XXH3 kind malformed")
	}
	if Kind(2).Valid() || Kind(200).Valid() {
		t.Error("unknown kinds report valid")
	}
}

func BenchmarkSum4K(b *testing.B) {
	data := make([]byte, 4096)
	rand.New(rand.NewSource(9)).Read(data)
	for _, k := range []Kind{CRC32C, XXH3} {
		b.Run(k.String(), func(b *testing.B) {
			b.SetBytes(int64(len(data)))
			for i := 0; i < b.N; i++ {
				Sum(k, data, 0)
			}
		})
	}
}
