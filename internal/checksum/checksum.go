// Package checksum provides the pluggable per-block checksums of the table
// format. Every block trailer carries a 32-bit checksum over the on-disk
// block payload plus the trailer's type byte; which function produced it is
// a per-table choice recorded in the table footer.
//
// Two kinds exist:
//
//   - CRC32C (Castagnoli), the LevelDB-lineage default. Hardware-assisted
//     on amd64/arm64 via hash/crc32, byte-at-a-time elsewhere.
//   - XXH3, a from-scratch XXH-family non-cryptographic hash: an XXH64-style
//     4-lane stripe loop for long inputs with an XXH3-style multiply-fold
//     short-input path, finalized by a 64→32-bit avalanche fold. On machines
//     without a CRC instruction this is the faster verify.
//
// Kind values are part of the on-disk format (the footer's checksum-kind
// byte) and must never be renumbered.
package checksum

import (
	"fmt"
	"hash/crc32"
	"math/bits"

	"repro/internal/encoding"
)

// Kind identifies a checksum function. The zero value is CRC32C, keeping
// the zero Options and every pre-existing table valid.
type Kind uint8

const (
	// CRC32C is crc32 with the Castagnoli polynomial (the default).
	CRC32C Kind = 0
	// XXH3 is the repo's from-scratch XXH-family 64-bit hash truncated to
	// 32 bits.
	XXH3 Kind = 1

	numKinds = 2
)

// Valid reports whether k names a known checksum function.
func (k Kind) Valid() bool { return k < numKinds }

// String names the kind for options, stats, and errors.
func (k Kind) String() string {
	switch k {
	case CRC32C:
		return "crc32c"
	case XXH3:
		return "xxh3"
	default:
		return fmt.Sprintf("checksum(%d)", uint8(k))
	}
}

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// Sum computes the 32-bit checksum of kind k over data followed by the
// single trailing byte (the block trailer's type byte, which must be
// covered so a bit flip in it is detected).
func Sum(k Kind, data []byte, trailing byte) uint32 {
	switch k {
	case XXH3:
		return fold32(xxhash64(data, uint64(trailing)))
	default:
		crc := crc32.Update(0, crcTable, data)
		return crc32.Update(crc, crcTable, []byte{trailing})
	}
}

// fold32 reduces a 64-bit hash to 32 bits without discarding the high
// half's entropy (XXH3's canonical truncation xors the halves).
func fold32(h uint64) uint32 { return uint32(h) ^ uint32(h>>32) }

// XXH64-style primes. The values are the published XXH constants; the
// implementation below is written from scratch against the algorithm
// description.
const (
	prime1 = 0x9E3779B185EBCA87
	prime2 = 0xC2B2AE3D27D4EB4F
	prime3 = 0x165667B19E3779F9
	prime4 = 0x85EBCA77C2B2AE63
	prime5 = 0x27D4EB2F165667C5
)

// xxhash64 hashes data with the given seed. Inputs of at most 32 bytes
// (every block trailer checksum's tail, and short test vectors) take the
// fold-only path; longer inputs run the 4-accumulator stripe loop.
func xxhash64(data []byte, seed uint64) uint64 {
	n := len(data)
	var h uint64
	if n >= 32 {
		v1 := seed + prime1 + prime2
		v2 := seed + prime2
		v3 := seed
		v4 := seed - prime1
		for len(data) >= 32 {
			v1 = round(v1, encoding.Fixed64(data[0:8]))
			v2 = round(v2, encoding.Fixed64(data[8:16]))
			v3 = round(v3, encoding.Fixed64(data[16:24]))
			v4 = round(v4, encoding.Fixed64(data[24:32]))
			data = data[32:]
		}
		h = bits.RotateLeft64(v1, 1) + bits.RotateLeft64(v2, 7) +
			bits.RotateLeft64(v3, 12) + bits.RotateLeft64(v4, 18)
		h = mergeRound(h, v1)
		h = mergeRound(h, v2)
		h = mergeRound(h, v3)
		h = mergeRound(h, v4)
	} else {
		h = seed + prime5
	}
	h += uint64(n)
	for len(data) >= 8 {
		h ^= round(0, encoding.Fixed64(data[:8]))
		h = bits.RotateLeft64(h, 27)*prime1 + prime4
		data = data[8:]
	}
	if len(data) >= 4 {
		h ^= uint64(encoding.Fixed32(data[:4])) * prime1
		h = bits.RotateLeft64(h, 23)*prime2 + prime3
		data = data[4:]
	}
	for _, b := range data {
		h ^= uint64(b) * prime5
		h = bits.RotateLeft64(h, 11) * prime1
	}
	h ^= h >> 33
	h *= prime2
	h ^= h >> 29
	h *= prime3
	h ^= h >> 32
	return h
}

func round(acc, input uint64) uint64 {
	acc += input * prime2
	return bits.RotateLeft64(acc, 31) * prime1
}

func mergeRound(acc, val uint64) uint64 {
	acc ^= round(0, val)
	return acc*prime1 + prime4
}
