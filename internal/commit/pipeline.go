package commit

import (
	"errors"
	"sync"
	"sync/atomic"

	"repro/internal/batch"
	"repro/internal/invariants"
)

// ErrPipelineClosed is the default error returned by Commit after Close;
// Options.ClosedError substitutes the store's own.
var ErrPipelineClosed = errors.New("commit: pipeline closed")

// Env is the store machinery a Pipeline drives. Neither callback is invoked
// while the pipeline's internal lock is held, so both may take the store
// mutex freely.
type Env struct {
	// MakeRoom blocks until the store admits a write group (the
	// Controller); called once per group by its leader before the group is
	// formed, so writers arriving during a stall still join it.
	MakeRoom func() error
	// Commit durably applies one formed group: stamp its sequence range,
	// append its single record to the WAL, fsync if sync, and apply it to
	// the memtable — with the fsync outside the store mutex.
	Commit func(g *batch.Group, sync bool) error
}

// Options tunes a Pipeline.
type Options struct {
	// MaxGroupBytes stops the leader draining followers once the group's
	// encoded record reaches this size (default 1 MiB).
	MaxGroupBytes int
	// ClosedError is returned by commits after Close (default
	// ErrPipelineClosed).
	ClosedError error
}

// Metrics is a snapshot of the pipeline's counters.
type Metrics struct {
	Groups     int64 // write groups committed
	Batches    int64 // member batches committed (≥ Groups)
	GroupBytes int64 // encoded bytes committed
	SyncNanos  int64 // reserved for the store's WAL-sync time (not set here)
}

// writer is one queued commit request.
type writer struct {
	b    *batch.Batch
	sync bool
	done bool
	err  error
}

// Pipeline is the group-commit front end, RocksDB write-group style:
// concurrent committers enqueue; the writer at the head of the queue
// becomes the group leader, waits for admission, drains the queue into one
// group, commits it as a single WAL record, and wakes its followers. At
// most one group is in flight, which serializes WAL appends and memtable
// application without any caller holding the store mutex across an fsync.
type Pipeline struct {
	env       Env
	maxBytes  int
	closedErr error

	//ldclint:lockrank commit.pipeline.mu 35
	mu      invariants.Mutex
	cond    *sync.Cond
	queue   []*writer // waiting committers; queue[0] is the next leader
	leading bool      // a leader is building or committing a group
	closed  bool

	groups     atomic.Int64
	batches    atomic.Int64
	groupBytes atomic.Int64
}

// NewPipeline builds a pipeline over env.
func NewPipeline(env Env, opts Options) *Pipeline {
	if opts.MaxGroupBytes <= 0 {
		opts.MaxGroupBytes = 1 << 20
	}
	if opts.ClosedError == nil {
		opts.ClosedError = ErrPipelineClosed
	}
	p := &Pipeline{env: env, maxBytes: opts.MaxGroupBytes, closedErr: opts.ClosedError}
	p.mu.Rank("commit.pipeline.mu", 35)
	p.cond = sync.NewCond(&p.mu)
	return p
}

// Metrics snapshots the group counters.
func (p *Pipeline) Metrics() Metrics {
	return Metrics{
		Groups:     p.groups.Load(),
		Batches:    p.batches.Load(),
		GroupBytes: p.groupBytes.Load(),
	}
}

// Commit enqueues b and blocks until it is durably applied (as leader or
// follower of a group) or fails. sync requests an fsync before return; a
// sync batch never rides a non-sync leader's group, so the request is
// honored by its own group's leader.
func (p *Pipeline) Commit(b *batch.Batch, sync bool) error {
	w := &writer{b: b, sync: sync}
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return p.closedErr
	}
	p.queue = append(p.queue, w)
	for !w.done && !(len(p.queue) > 0 && p.queue[0] == w && !p.leading) {
		p.cond.Wait()
	}
	if w.done {
		err := w.err
		p.mu.Unlock()
		return err
	}
	// Leader: claim the in-flight slot and leave the queue; followers keep
	// enqueueing while this group waits for admission.
	p.leading = true
	p.queue = p.queue[1:]
	p.mu.Unlock()

	err := p.env.MakeRoom()
	var group batch.Group
	group.Add(w.b)
	var followers []*writer
	if err == nil {
		followers = p.drainFollowers(&group, w.sync)
		err = p.env.Commit(&group, w.sync)
		if err == nil {
			p.groups.Add(1)
			p.batches.Add(int64(group.Len()))
			p.groupBytes.Add(int64(group.Size()))
		}
	}

	p.mu.Lock()
	p.leading = false
	w.done, w.err = true, err
	for _, f := range followers {
		f.done, f.err = true, err
	}
	p.cond.Broadcast()
	p.mu.Unlock()
	return err
}

// drainFollowers moves queued writers into the leader's group, stopping at
// the byte cap or — when the leader is non-sync — at the first sync writer,
// which must lead its own group to get its fsync (LevelDB's rule; a sync
// leader may absorb non-sync followers, upgrading their durability).
func (p *Pipeline) drainFollowers(group *batch.Group, leaderSync bool) []*writer {
	var followers []*writer
	p.mu.Lock()
	for len(p.queue) > 0 && group.Size() < p.maxBytes {
		f := p.queue[0]
		if f.sync && !leaderSync {
			break
		}
		p.queue = p.queue[1:]
		followers = append(followers, f)
		group.Add(f.b)
	}
	p.mu.Unlock()
	return followers
}

// Close fails all queued writers and every later Commit with the closed
// error, then waits for an in-flight group to finish. The in-flight
// leader's own fate is decided by its environment (a closing store fails
// admission; a group already admitted commits normally).
func (p *Pipeline) Close() {
	p.mu.Lock()
	p.closed = true
	for _, w := range p.queue {
		w.done, w.err = true, p.closedErr
	}
	p.queue = nil
	p.cond.Broadcast()
	for p.leading {
		p.cond.Wait()
	}
	p.mu.Unlock()
}
