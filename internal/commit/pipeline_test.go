package commit

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/batch"
	"repro/internal/keys"
)

// recordingEnv journals every committed group for assertions. Its gate, when
// set, blocks inside Commit so tests can pile followers onto the queue.
type recordingEnv struct {
	mu       sync.Mutex
	groups   [][]keys.Seq // per group: each member's stamped start sequence
	sizes    []int        // member count per group
	syncs    []bool
	nextSeq  keys.Seq
	makeRoom func() error

	gate     chan struct{} // non-nil: Commit waits for a tick per group
	entered  chan struct{} // signaled when Commit is reached
	roomErr  error
	roomHits int
}

func newRecordingEnv() *recordingEnv {
	return &recordingEnv{nextSeq: 1}
}

func (r *recordingEnv) env() Env {
	return Env{
		MakeRoom: func() error {
			r.mu.Lock()
			r.roomHits++
			err := r.roomErr
			r.mu.Unlock()
			return err
		},
		Commit: func(g *batch.Group, sync bool) error {
			if r.entered != nil {
				r.entered <- struct{}{}
			}
			if r.gate != nil {
				<-r.gate
			}
			r.mu.Lock()
			defer r.mu.Unlock()
			g.SetSequence(r.nextSeq)
			r.nextSeq += keys.Seq(g.Count())
			r.sizes = append(r.sizes, g.Len())
			r.syncs = append(r.syncs, sync)
			return nil
		},
	}
}

func oneOp(key string) *batch.Batch {
	b := batch.New()
	b.Set([]byte(key), []byte("v"))
	return b
}

func TestSingleWriterSingleGroup(t *testing.T) {
	r := newRecordingEnv()
	p := NewPipeline(r.env(), Options{})
	b := oneOp("a")
	if err := p.Commit(b, false); err != nil {
		t.Fatal(err)
	}
	if len(r.sizes) != 1 || r.sizes[0] != 1 {
		t.Fatalf("groups = %v, want one group of one", r.sizes)
	}
	if b.Sequence() != 1 {
		t.Fatalf("batch sequence = %d, want 1", b.Sequence())
	}
	m := p.Metrics()
	if m.Groups != 1 || m.Batches != 1 {
		t.Fatalf("metrics = %+v", m)
	}
	if r.roomHits != 1 {
		t.Fatalf("MakeRoom called %d times, want 1", r.roomHits)
	}
}

// TestFollowersJoinLeadersGroup blocks the first group inside Commit, piles
// up writers, and verifies they all commit as one following group with
// contiguous member sequences.
func TestFollowersJoinLeadersGroup(t *testing.T) {
	r := newRecordingEnv()
	r.gate = make(chan struct{})
	r.entered = make(chan struct{}, 16)
	p := NewPipeline(r.env(), Options{})

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		p.Commit(oneOp("leader"), false)
	}()
	<-r.entered // first group is mid-commit

	const followers = 8
	batches := make([]*batch.Batch, followers)
	for i := range batches {
		batches[i] = oneOp(fmt.Sprintf("f%d", i))
	}
	for i := range batches {
		wg.Add(1)
		go func(b *batch.Batch) {
			defer wg.Done()
			if err := p.Commit(b, false); err != nil {
				t.Error(err)
			}
		}(batches[i])
	}
	// Wait until all followers are queued behind the blocked group.
	deadline := time.After(5 * time.Second)
	for {
		p.mu.Lock()
		n := len(p.queue)
		p.mu.Unlock()
		if n == followers {
			break
		}
		select {
		case <-deadline:
			t.Fatalf("only %d/%d followers queued", n, followers)
		case <-time.After(time.Millisecond):
		}
	}
	r.gate <- struct{}{} // release group 1
	<-r.entered          // group 2 formed
	r.gate <- struct{}{} // release group 2
	wg.Wait()

	if len(r.sizes) != 2 || r.sizes[0] != 1 || r.sizes[1] != followers {
		t.Fatalf("group sizes = %v, want [1 %d]", r.sizes, followers)
	}
	// Member sequences must tile the group's range contiguously.
	seen := map[keys.Seq]bool{}
	for _, b := range batches {
		seen[b.Sequence()] = true
	}
	for s := keys.Seq(2); s < 2+followers; s++ {
		if !seen[s] {
			t.Fatalf("no member stamped with sequence %d; got %v", s, seen)
		}
	}
	if m := p.Metrics(); m.Groups != 2 || m.Batches != 1+followers {
		t.Fatalf("metrics = %+v", m)
	}
}

// TestSyncWriterNeverRidesNonSyncGroup pins LevelDB's rule at the draining
// step: a batch that asked for fsync is not absorbed by a leader that will
// not fsync, while a sync leader absorbs non-sync followers (upgrading
// their durability).
func TestSyncWriterNeverRidesNonSyncGroup(t *testing.T) {
	r := newRecordingEnv()
	p := NewPipeline(r.env(), Options{})
	mkQueue := func() []*writer {
		return []*writer{
			{b: oneOp("f1"), sync: false},
			{b: oneOp("f2"), sync: true},
			{b: oneOp("f3"), sync: false},
		}
	}

	// Non-sync leader: drains up to, but not including, the sync writer.
	p.queue = mkQueue()
	var g batch.Group
	g.Add(oneOp("leader"))
	followers := p.drainFollowers(&g, false)
	if len(followers) != 1 || followers[0].sync {
		t.Fatalf("non-sync leader drained %d followers (sync=%v), want 1 non-sync",
			len(followers), followers[0].sync)
	}
	if len(p.queue) != 2 || !p.queue[0].sync {
		t.Fatalf("queue after drain = %d writers, head sync=%v; want the sync writer leading next",
			len(p.queue), p.queue[0].sync)
	}

	// Sync leader: absorbs everything.
	p.queue = mkQueue()
	var g2 batch.Group
	g2.Add(oneOp("leader"))
	followers = p.drainFollowers(&g2, true)
	if len(followers) != 3 || len(p.queue) != 0 {
		t.Fatalf("sync leader drained %d followers, %d left; want 3, 0", len(followers), len(p.queue))
	}
}

func TestMaxGroupBytesCapsDraining(t *testing.T) {
	r := newRecordingEnv()
	r.gate = make(chan struct{})
	r.entered = make(chan struct{}, 64)
	// Each one-op batch is ~20 bytes encoded; cap the group around two.
	p := NewPipeline(r.env(), Options{MaxGroupBytes: 40})

	var wg sync.WaitGroup
	wg.Add(1)
	go func() { defer wg.Done(); p.Commit(oneOp("g1"), false) }()
	<-r.entered

	const n = 6
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) { defer wg.Done(); p.Commit(oneOp(fmt.Sprintf("w%d", i)), false) }(i)
	}
	for {
		p.mu.Lock()
		queued := len(p.queue)
		p.mu.Unlock()
		if queued == n {
			break
		}
		time.Sleep(time.Millisecond)
	}
	allDone := make(chan struct{})
	go func() { wg.Wait(); close(allDone) }()
	r.gate <- struct{}{} // release the first group
	for running := true; running; {
		select {
		case <-r.entered:
			r.gate <- struct{}{}
		case <-allDone:
			running = false
		}
	}
	// Each one-op batch adds 6 payload bytes to an 18-byte leader record;
	// the 40-byte cap stops draining once the group holds 5 members.
	for i, s := range r.sizes[1:] {
		if s > 5 {
			t.Fatalf("group %d has %d members despite 40-byte cap (sizes %v)", i+1, s, r.sizes)
		}
	}
	if len(r.sizes) < 3 {
		t.Fatalf("cap produced %v groups; expected the queue split across several", r.sizes)
	}
}

func TestMakeRoomErrorFailsOnlyLeader(t *testing.T) {
	r := newRecordingEnv()
	p := NewPipeline(r.env(), Options{})
	r.roomErr = errors.New("stalled out")
	if err := p.Commit(oneOp("a"), false); err == nil || err.Error() != "stalled out" {
		t.Fatalf("err = %v, want stalled out", err)
	}
	if len(r.sizes) != 0 {
		t.Fatal("group committed despite admission failure")
	}
	r.roomErr = nil
	if err := p.Commit(oneOp("b"), false); err != nil {
		t.Fatalf("pipeline unusable after a failed admission: %v", err)
	}
}

func TestCloseFailsPendingAndFutureCommits(t *testing.T) {
	r := newRecordingEnv()
	r.gate = make(chan struct{})
	r.entered = make(chan struct{}, 4)
	closedErr := errors.New("store closed")
	p := NewPipeline(r.env(), Options{ClosedError: closedErr})

	var wg sync.WaitGroup
	wg.Add(1)
	go func() { defer wg.Done(); p.Commit(oneOp("inflight"), false) }()
	<-r.entered

	pendingErr := make(chan error, 1)
	wg.Add(1)
	go func() { defer wg.Done(); pendingErr <- p.Commit(oneOp("pending"), false) }()
	for {
		p.mu.Lock()
		queued := len(p.queue)
		p.mu.Unlock()
		if queued == 1 {
			break
		}
		time.Sleep(time.Millisecond)
	}

	closeDone := make(chan struct{})
	go func() { p.Close(); close(closeDone) }()
	if err := <-pendingErr; !errors.Is(err, closedErr) {
		t.Fatalf("pending writer err = %v, want closed error", err)
	}
	select {
	case <-closeDone:
		t.Fatal("Close returned while a group was in flight")
	case <-time.After(10 * time.Millisecond):
	}
	r.gate <- struct{}{} // let the in-flight group finish
	<-closeDone
	wg.Wait()

	if err := p.Commit(oneOp("late"), false); !errors.Is(err, closedErr) {
		t.Fatalf("commit after close = %v, want closed error", err)
	}
	if len(r.sizes) != 1 || r.sizes[0] != 1 {
		t.Fatalf("committed groups = %v, want just the in-flight one", r.sizes)
	}
}

// TestConcurrentCommitStress hammers the pipeline from many goroutines and
// checks every batch got a unique, contiguous sequence range.
func TestConcurrentCommitStress(t *testing.T) {
	r := newRecordingEnv()
	p := NewPipeline(r.env(), Options{})
	const writers, per = 8, 200
	var wg sync.WaitGroup
	seqs := make(chan keys.Seq, writers*per)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				b := batch.New()
				b.Set([]byte(fmt.Sprintf("w%d-%d", w, i)), []byte("v"))
				b.Delete([]byte("x"))
				if err := p.Commit(b, w%2 == 0); err != nil {
					t.Error(err)
					return
				}
				seqs <- b.Sequence()
			}
		}(w)
	}
	wg.Wait()
	close(seqs)
	seen := map[keys.Seq]bool{}
	for s := range seqs {
		if seen[s] {
			t.Fatalf("sequence %d assigned twice", s)
		}
		seen[s] = true
	}
	if len(seen) != writers*per {
		t.Fatalf("%d unique sequences, want %d", len(seen), writers*per)
	}
	m := p.Metrics()
	if m.Batches != writers*per {
		t.Fatalf("metrics batches = %d, want %d", m.Batches, writers*per)
	}
	if m.Groups > m.Batches {
		t.Fatalf("groups %d > batches %d", m.Groups, m.Batches)
	}
}
