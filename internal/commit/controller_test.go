package commit

import (
	"errors"
	"sync"
	"testing"
	"time"
)

// fakeStore is a scriptable ControllerEnv: tests mutate its fields between
// MakeRoom calls or from its Wait/Rotate callbacks to walk the state machine
// through its transitions.
type fakeStore struct {
	mu         sync.Mutex
	l0         int
	memBytes   int64
	immPending bool
	err        error

	rotations int
	rotateErr error
	onRotate  func(s *fakeStore)
	waits     int
	onWait    func(s *fakeStore) // simulates background progress
	slept     []time.Duration
}

func (s *fakeStore) env() ControllerEnv {
	return ControllerEnv{
		Lock:       s.mu.Lock,
		Unlock:     s.mu.Unlock,
		Err:        func() error { return s.err },
		L0Files:    func() int { return s.l0 },
		MemBytes:   func() int64 { return s.memBytes },
		ImmPending: func() bool { return s.immPending },
		Rotate: func() error {
			s.rotations++
			if s.onRotate != nil {
				s.onRotate(s)
			}
			return s.rotateErr
		},
		Wait: func() {
			s.waits++
			if s.onWait == nil {
				panic("unexpected Wait")
			}
			s.onWait(s)
		},
		Sleep: func(d time.Duration) { s.slept = append(s.slept, d) },
	}
}

func cfg() ControllerConfig {
	return ControllerConfig{MemTableSize: 100, L0SlowdownTrigger: 8, L0StopTrigger: 12}
}

func TestMakeRoomOKFastPath(t *testing.T) {
	s := &fakeStore{memBytes: 10}
	c := NewController(cfg(), s.env())
	if err := c.MakeRoom(); err != nil {
		t.Fatal(err)
	}
	if c.State() != StateOK {
		t.Fatalf("state = %v, want ok", c.State())
	}
	m := c.Metrics()
	if m.Slowdowns != 0 || m.Stops != 0 || m.StallNanos != 0 {
		t.Fatalf("fast path produced stalls: %+v", m)
	}
	if s.rotations != 0 || len(s.slept) != 0 {
		t.Fatal("fast path rotated or slept")
	}
}

func TestMakeRoomRotatesFullMemtable(t *testing.T) {
	s := &fakeStore{memBytes: 200}
	s.onRotate = func(s *fakeStore) { s.memBytes = 0 }
	c := NewController(cfg(), s.env())
	if err := c.MakeRoom(); err != nil {
		t.Fatal(err)
	}
	if s.rotations != 1 {
		t.Fatalf("rotations = %d, want 1", s.rotations)
	}
	if c.State() != StateOK {
		t.Fatalf("state = %v, want ok after rotation", c.State())
	}
}

func TestMakeRoomDelaysOnceOnL0Pressure(t *testing.T) {
	s := &fakeStore{memBytes: 10, l0: 9}
	c := NewController(cfg(), s.env())
	if err := c.MakeRoom(); err != nil {
		t.Fatal(err)
	}
	if len(s.slept) != 1 || s.slept[0] != time.Millisecond {
		t.Fatalf("slept %v, want exactly one 1ms delay", s.slept)
	}
	m := c.Metrics()
	if m.Slowdowns != 1 || m.StallNanos != int64(time.Millisecond) {
		t.Fatalf("metrics = %+v", m)
	}
	// The write was admitted after its single delay even with L0 still high.
	if c.State() != StateOK {
		t.Fatalf("state = %v, want ok on return", c.State())
	}
	// A second write pays its own single delay.
	if err := c.MakeRoom(); err != nil {
		t.Fatal(err)
	}
	if len(s.slept) != 2 {
		t.Fatalf("second write slept %d times in total, want 2", len(s.slept))
	}
}

func TestMakeRoomStopsOnImmPending(t *testing.T) {
	s := &fakeStore{memBytes: 200, immPending: true}
	var observed State
	c := NewController(cfg(), s.env())
	s.onWait = func(s *fakeStore) {
		observed = c.State() // state while blocked
		s.immPending = false
		s.onRotate = func(s *fakeStore) { s.memBytes = 0 }
	}
	if err := c.MakeRoom(); err != nil {
		t.Fatal(err)
	}
	if observed != StateStopped {
		t.Fatalf("state during wait = %v, want stopped", observed)
	}
	m := c.Metrics()
	if m.Stops != 1 || s.waits != 1 {
		t.Fatalf("stops=%d waits=%d, want 1,1", m.Stops, s.waits)
	}
	if s.rotations != 1 {
		t.Fatalf("rotations = %d, want 1 after the flush finished", s.rotations)
	}
	if c.State() != StateOK {
		t.Fatalf("state = %v, want ok on return", c.State())
	}
}

func TestMakeRoomStopsOnL0StopTrigger(t *testing.T) {
	s := &fakeStore{memBytes: 200, l0: 12}
	c := NewController(cfg(), s.env())
	s.onWait = func(s *fakeStore) { s.l0 = 3; s.memBytes = 10 }
	if err := c.MakeRoom(); err != nil {
		t.Fatal(err)
	}
	// L0 at the slowdown trigger also passes the delayed state first.
	m := c.Metrics()
	if m.Slowdowns != 1 || m.Stops != 1 {
		t.Fatalf("metrics = %+v, want one slowdown then one stop", m)
	}
}

func TestMakeRoomPropagatesErr(t *testing.T) {
	boom := errors.New("background error")
	s := &fakeStore{memBytes: 10, err: boom}
	c := NewController(cfg(), s.env())
	if err := c.MakeRoom(); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want background error", err)
	}
}

func TestMakeRoomErrCheckedAfterStopWait(t *testing.T) {
	boom := errors.New("closed during stall")
	s := &fakeStore{memBytes: 200, immPending: true}
	c := NewController(cfg(), s.env())
	s.onWait = func(s *fakeStore) { s.err = boom }
	if err := c.MakeRoom(); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want the error raised during the stall", err)
	}
}

func TestMakeRoomRotateErrorPropagates(t *testing.T) {
	boom := errors.New("wal create failed")
	s := &fakeStore{memBytes: 200, rotateErr: boom}
	c := NewController(cfg(), s.env())
	if err := c.MakeRoom(); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want rotate error", err)
	}
}

func TestStateStrings(t *testing.T) {
	for s, want := range map[State]string{StateOK: "ok", StateDelayed: "delayed", StateStopped: "stopped", State(9): "unknown"} {
		if got := s.String(); got != want {
			t.Errorf("State(%d).String() = %q, want %q", s, got, want)
		}
	}
}
