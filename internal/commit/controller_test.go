package commit

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// fakeStore is a scriptable ControllerEnv: tests mutate its fields between
// MakeRoom calls or from its Wait/Rotate callbacks to walk the state machine
// through its transitions.
type fakeStore struct {
	mu         sync.Mutex
	l0         int
	memBytes   int64
	immPending bool
	err        error

	rotations int
	rotateErr error
	onRotate  func(s *fakeStore)
	waits     int
	onWait    func(s *fakeStore) // simulates background progress
	slept     []time.Duration
}

func (s *fakeStore) env() ControllerEnv {
	return ControllerEnv{
		Lock:       s.mu.Lock,
		Unlock:     s.mu.Unlock,
		Err:        func() error { return s.err },
		L0Files:    func() int { return s.l0 },
		MemBytes:   func() int64 { return s.memBytes },
		ImmPending: func() bool { return s.immPending },
		Rotate: func() error {
			s.rotations++
			if s.onRotate != nil {
				s.onRotate(s)
			}
			return s.rotateErr
		},
		Wait: func() {
			s.waits++
			if s.onWait == nil {
				panic("unexpected Wait")
			}
			s.onWait(s)
		},
		Sleep: func(d time.Duration) { s.slept = append(s.slept, d) },
	}
}

func cfg() ControllerConfig {
	return ControllerConfig{MemTableSize: 100, L0SlowdownTrigger: 8, L0StopTrigger: 12}
}

func TestMakeRoomOKFastPath(t *testing.T) {
	s := &fakeStore{memBytes: 10}
	c := NewController(cfg(), s.env())
	if err := c.MakeRoom(); err != nil {
		t.Fatal(err)
	}
	if c.State() != StateOK {
		t.Fatalf("state = %v, want ok", c.State())
	}
	m := c.Metrics()
	if m.Slowdowns != 0 || m.Stops != 0 || m.StallNanos != 0 {
		t.Fatalf("fast path produced stalls: %+v", m)
	}
	if s.rotations != 0 || len(s.slept) != 0 {
		t.Fatal("fast path rotated or slept")
	}
}

func TestMakeRoomRotatesFullMemtable(t *testing.T) {
	s := &fakeStore{memBytes: 200}
	s.onRotate = func(s *fakeStore) { s.memBytes = 0 }
	c := NewController(cfg(), s.env())
	if err := c.MakeRoom(); err != nil {
		t.Fatal(err)
	}
	if s.rotations != 1 {
		t.Fatalf("rotations = %d, want 1", s.rotations)
	}
	if c.State() != StateOK {
		t.Fatalf("state = %v, want ok after rotation", c.State())
	}
}

func TestMakeRoomDelaysOnceOnL0Pressure(t *testing.T) {
	// l0=9 sits a quarter of the way up the 8→12 ladder: the continuous
	// curve charges (9-8+1)/(12-8) = half the full SlowdownDelay.
	s := &fakeStore{memBytes: 10, l0: 9}
	c := NewController(cfg(), s.env())
	if err := c.MakeRoom(); err != nil {
		t.Fatal(err)
	}
	if len(s.slept) != 1 || s.slept[0] != 500*time.Microsecond {
		t.Fatalf("slept %v, want exactly one 500µs delay", s.slept)
	}
	m := c.Metrics()
	if m.Slowdowns != 1 || m.StallNanos != int64(500*time.Microsecond) {
		t.Fatalf("metrics = %+v", m)
	}
	// The write was admitted after its single delay even with L0 still high.
	if c.State() != StateOK {
		t.Fatalf("state = %v, want ok on return", c.State())
	}
	// A second write pays its own single delay.
	if err := c.MakeRoom(); err != nil {
		t.Fatal(err)
	}
	if len(s.slept) != 2 {
		t.Fatalf("second write slept %d times in total, want 2", len(s.slept))
	}
}

func TestMakeRoomStopsOnImmPending(t *testing.T) {
	s := &fakeStore{memBytes: 200, immPending: true}
	var observed State
	c := NewController(cfg(), s.env())
	s.onWait = func(s *fakeStore) {
		observed = c.State() // state while blocked
		s.immPending = false
		s.onRotate = func(s *fakeStore) { s.memBytes = 0 }
	}
	if err := c.MakeRoom(); err != nil {
		t.Fatal(err)
	}
	if observed != StateStopped {
		t.Fatalf("state during wait = %v, want stopped", observed)
	}
	m := c.Metrics()
	if m.Stops != 1 || s.waits != 1 {
		t.Fatalf("stops=%d waits=%d, want 1,1", m.Stops, s.waits)
	}
	if s.rotations != 1 {
		t.Fatalf("rotations = %d, want 1 after the flush finished", s.rotations)
	}
	if c.State() != StateOK {
		t.Fatalf("state = %v, want ok on return", c.State())
	}
}

func TestMakeRoomStopsOnL0StopTrigger(t *testing.T) {
	s := &fakeStore{memBytes: 200, l0: 12}
	c := NewController(cfg(), s.env())
	s.onWait = func(s *fakeStore) { s.l0 = 3; s.memBytes = 10 }
	if err := c.MakeRoom(); err != nil {
		t.Fatal(err)
	}
	// L0 at the slowdown trigger also passes the delayed state first.
	m := c.Metrics()
	if m.Slowdowns != 1 || m.Stops != 1 {
		t.Fatalf("metrics = %+v, want one slowdown then one stop", m)
	}
}

func TestMakeRoomPropagatesErr(t *testing.T) {
	boom := errors.New("background error")
	s := &fakeStore{memBytes: 10, err: boom}
	c := NewController(cfg(), s.env())
	if err := c.MakeRoom(); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want background error", err)
	}
}

func TestMakeRoomErrCheckedAfterStopWait(t *testing.T) {
	boom := errors.New("closed during stall")
	s := &fakeStore{memBytes: 200, immPending: true}
	c := NewController(cfg(), s.env())
	s.onWait = func(s *fakeStore) { s.err = boom }
	if err := c.MakeRoom(); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want the error raised during the stall", err)
	}
}

func TestMakeRoomRotateErrorPropagates(t *testing.T) {
	boom := errors.New("wal create failed")
	s := &fakeStore{memBytes: 200, rotateErr: boom}
	c := NewController(cfg(), s.env())
	if err := c.MakeRoom(); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want rotate error", err)
	}
}

func TestStateStrings(t *testing.T) {
	for s, want := range map[State]string{StateOK: "ok", StateDelayed: "delayed", StateStopped: "stopped", State(9): "unknown"} {
		if got := s.String(); got != want {
			t.Errorf("State(%d).String() = %q, want %q", s, got, want)
		}
	}
}

// TestSlowdownCurve walks the continuous admission curve through its state
// transitions: below the trigger no delay, then a linear ramp in L0 depth,
// a debt term engaging above half the ceiling, additive composition of the
// two, and a hard clamp at one full SlowdownDelay.
func TestSlowdownCurve(t *testing.T) {
	cases := []struct {
		name string
		l0   int
		debt int64
		want time.Duration
	}{
		{"below trigger", 7, 0, 0},
		{"at trigger", 8, 0, 250 * time.Microsecond},
		{"mid ramp", 9, 0, 500 * time.Microsecond},
		{"just under stop", 11, 0, time.Millisecond},
		{"debt at half ceiling", 0, 500, 0},
		{"debt three quarters", 0, 750, 500 * time.Microsecond},
		{"debt at ceiling", 0, 1000, time.Millisecond},
		{"debt past ceiling clamps", 0, 4000, time.Millisecond},
		{"both terms add", 8, 750, 750 * time.Microsecond},
		{"sum clamps", 9, 1000, time.Millisecond},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := &fakeStore{memBytes: 10, l0: tc.l0}
			env := s.env()
			env.CompactionDebt = func() int64 { return tc.debt }
			conf := cfg()
			conf.DebtCeiling = 1000
			c := NewController(conf, env)
			var during State
			env.Sleep = func(d time.Duration) {
				s.slept = append(s.slept, d)
				during = c.State()
			}
			c = NewController(conf, env)
			if err := c.MakeRoom(); err != nil {
				t.Fatal(err)
			}
			if tc.want == 0 {
				if len(s.slept) != 0 {
					t.Fatalf("slept %v, want no delay", s.slept)
				}
				return
			}
			if len(s.slept) != 1 || s.slept[0] != tc.want {
				t.Fatalf("slept %v, want one %v delay", s.slept, tc.want)
			}
			if during != StateDelayed {
				t.Errorf("state during delay = %v, want delayed", during)
			}
			if c.State() != StateOK {
				t.Errorf("state after admit = %v, want ok", c.State())
			}
			if m := c.Metrics(); m.Slowdowns != 1 || m.StallNanos != int64(tc.want) {
				t.Errorf("metrics = %+v", m)
			}
		})
	}
}

func TestSlowdownCurveNilDebtCallback(t *testing.T) {
	s := &fakeStore{memBytes: 10}
	conf := cfg()
	conf.DebtCeiling = 1000 // ceiling set but no callback: term disabled
	c := NewController(conf, s.env())
	if err := c.MakeRoom(); err != nil {
		t.Fatal(err)
	}
	if len(s.slept) != 0 {
		t.Fatalf("slept %v, want none", s.slept)
	}
}

// TestMakeRoomRaceUnderChangingPressure hammers admission decisions while
// L0 depth and compaction debt move concurrently, as they do when flush and
// compaction workers install versions mid-write. Run under -race this
// checks the controller reads its environment only under the store mutex.
func TestMakeRoomRaceUnderChangingPressure(t *testing.T) {
	var mu sync.Mutex
	var l0, debt atomic.Int64
	c := NewController(
		ControllerConfig{MemTableSize: 100, L0SlowdownTrigger: 4, L0StopTrigger: 8, DebtCeiling: 1000},
		ControllerEnv{
			Lock:           mu.Lock,
			Unlock:         mu.Unlock,
			Err:            func() error { return nil },
			L0Files:        func() int { return int(l0.Load()) },
			MemBytes:       func() int64 { return 10 }, // always admits after the delay check
			ImmPending:     func() bool { return false },
			CompactionDebt: func() int64 { return debt.Load() },
			Rotate:         func() error { panic("unexpected Rotate") },
			Wait:           func() { panic("unexpected Wait") },
			Sleep:          func(time.Duration) {},
		})
	stop := make(chan struct{})
	var mutator sync.WaitGroup
	mutator.Add(1)
	go func() {
		defer mutator.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			l0.Store(int64(i % 9))
			debt.Store(int64((i * 137) % 2500))
		}
	}()
	var writers sync.WaitGroup
	for g := 0; g < 4; g++ {
		writers.Add(1)
		go func() {
			defer writers.Done()
			for i := 0; i < 500; i++ {
				if err := c.MakeRoom(); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	writers.Wait()
	close(stop)
	mutator.Wait()
	if c.State() != StateOK {
		t.Errorf("final state = %v, want ok", c.State())
	}
}
