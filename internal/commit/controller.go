// Package commit implements the store's foreground commit pipeline: a
// RocksDB-style group-commit front end (Pipeline) and the write-throttling
// state machine (Controller) that decides when writers may proceed, must be
// delayed, or must stop.
//
// The package is deliberately independent of the DB: both types drive their
// environment through small callback structs, so the grouping protocol and
// the throttle policy are unit-testable without a store. Lock ordering is
// pipeline-internal lock → store mutex → deeper locks; no callback is ever
// invoked while the pipeline's own lock is held.
package commit

import (
	"sync/atomic"
	"time"
)

// State is the controller's write-admission state.
type State int32

const (
	// StateOK admits writes immediately.
	StateOK State = iota
	// StateDelayed applies the graduated slowdown delay to each write.
	StateDelayed
	// StateStopped blocks writes until background work catches up.
	StateStopped
)

// String renders the state for stats output.
func (s State) String() string {
	switch s {
	case StateOK:
		return "ok"
	case StateDelayed:
		return "delayed"
	case StateStopped:
		return "stopped"
	default:
		return "unknown"
	}
}

// ControllerEnv is the store machinery the controller drives. Every callback
// except Sleep is invoked with the store mutex held (the controller brackets
// them with Lock/Unlock); Sleep runs unlocked.
type ControllerEnv struct {
	// Lock and Unlock acquire and release the store mutex.
	Lock, Unlock func()
	// Err reports a terminal condition (store closed, background error);
	// non-nil aborts MakeRoom with that error.
	Err func() error
	// L0Files counts level-0 table files.
	L0Files func() int
	// MemBytes reports the active memtable's approximate size.
	MemBytes func() int64
	// ImmPending reports whether the previous memtable is still flushing.
	ImmPending func() bool
	// Rotate switches to a fresh memtable and WAL, handing the full one to
	// the flush worker.
	Rotate func() error
	// CompactionDebt estimates the bytes of background work the tree owes
	// before every level is back under its target (see compaction.Picker.Debt).
	// Nil disables the debt term of the slowdown curve.
	CompactionDebt func() int64
	// Wait blocks until background work makes progress, releasing the store
	// mutex while waiting (a condition-variable wait).
	Wait func()
	// Sleep pauses for the slowdown delay; nil uses time.Sleep. Tests
	// substitute a recorder.
	Sleep func(time.Duration)
}

// ControllerConfig carries the throttle thresholds.
type ControllerConfig struct {
	// MemTableSize triggers a rotation when the memtable reaches it.
	MemTableSize int64
	// L0SlowdownTrigger starts the graduated delay at this many L0 files.
	L0SlowdownTrigger int
	// L0StopTrigger blocks writes at this many L0 files.
	L0StopTrigger int
	// SlowdownDelay caps the per-write delay in the delayed state (default
	// 1ms). The actual delay scales continuously from a fraction of this at
	// the slowdown trigger up to the full value just under the stop trigger,
	// so admission tightens smoothly instead of stepping at a cliff.
	SlowdownDelay time.Duration
	// DebtCeiling is the compaction-debt level (bytes) at which the debt
	// term of the slowdown curve alone reaches the full SlowdownDelay. The
	// term engages at half the ceiling. 0 disables the debt term.
	DebtCeiling int64
}

// ControllerMetrics is a snapshot of the controller's counters.
type ControllerMetrics struct {
	Slowdowns  int64 // delays applied
	Stops      int64 // hard waits entered
	StallNanos int64 // total time writers spent delayed or stopped
	State      State // current admission state
}

// Controller is the write-throttling state machine (ok → delayed →
// stopped), extracted from the write path so the pipeline, the stats
// surface, and tests all consume one explicit source of truth. It is the
// paper's write-tail-latency mechanism: the waits it imposes are exactly
// the stalls behind Fig 1 and Fig 8.
type Controller struct {
	cfg ControllerConfig
	env ControllerEnv

	state      atomic.Int32
	slowdowns  atomic.Int64
	stops      atomic.Int64
	stallNanos atomic.Int64
}

// NewController builds a controller over env.
func NewController(cfg ControllerConfig, env ControllerEnv) *Controller {
	if cfg.SlowdownDelay <= 0 {
		cfg.SlowdownDelay = time.Millisecond
	}
	if env.Sleep == nil {
		env.Sleep = time.Sleep
	}
	return &Controller{cfg: cfg, env: env}
}

// State reports the current admission state without locking.
func (c *Controller) State() State { return State(c.state.Load()) }

// Metrics snapshots the stall counters.
func (c *Controller) Metrics() ControllerMetrics {
	return ControllerMetrics{
		Slowdowns:  c.slowdowns.Load(),
		Stops:      c.stops.Load(),
		StallNanos: c.stallNanos.Load(),
		State:      c.State(),
	}
}

// MakeRoom blocks until the store can accept a write, applying LevelDB's
// throttle ladder: one graduated slowdown delay scaled by L0 depth and
// compaction debt (see slowdownFrac), a memtable
// rotation when the active table is full, and hard waits while the previous
// memtable is still flushing or L0 hit the stop trigger. It acquires the
// store mutex itself and returns with it released.
func (c *Controller) MakeRoom() error {
	c.env.Lock()
	defer c.env.Unlock()
	allowDelay := true
	for {
		if err := c.env.Err(); err != nil {
			return err
		}
		if allowDelay {
			// Soft backpressure: pay at most one graduated delay outside the
			// store mutex so readers and background work proceed, then never
			// delay again for this write.
			allowDelay = false
			if d := time.Duration(c.slowdownFrac() * float64(c.cfg.SlowdownDelay)); d > 0 {
				c.state.Store(int32(StateDelayed))
				c.env.Unlock()
				c.env.Sleep(d)
				c.env.Lock()
				c.slowdowns.Add(1)
				c.stallNanos.Add(int64(d))
				// Re-check Err: it may have been raised during the sleep.
				continue
			}
		}
		switch {
		case c.env.MemBytes() < c.cfg.MemTableSize:
			c.state.Store(int32(StateOK))
			return nil
		case c.env.ImmPending():
			// Previous memtable still flushing: hard stop.
			c.waitStopped()
		case c.env.L0Files() >= c.cfg.L0StopTrigger:
			c.waitStopped()
		default:
			// Full memtable, flush worker idle: rotate and retry (the fresh
			// table admits immediately on the next iteration).
			if err := c.env.Rotate(); err != nil {
				return err
			}
		}
	}
}

// slowdownFrac maps current admission pressure to a fraction of
// SlowdownDelay in [0, 1]. Two terms add: L0 depth ramps linearly from the
// slowdown trigger toward the stop trigger, and compaction debt ramps from
// half the ceiling to the full ceiling. Summing lets moderate pressure on
// both axes throttle as hard as severe pressure on one; the clamp keeps the
// worst case at exactly one SlowdownDelay per write. Called with the store
// mutex held.
func (c *Controller) slowdownFrac() float64 {
	var frac float64
	if l0 := c.env.L0Files(); l0 >= c.cfg.L0SlowdownTrigger {
		if span := c.cfg.L0StopTrigger - c.cfg.L0SlowdownTrigger; span > 0 {
			frac += float64(l0-c.cfg.L0SlowdownTrigger+1) / float64(span)
		} else {
			frac = 1 // degenerate ladder: slowdown == stop trigger
		}
	}
	if c.cfg.DebtCeiling > 0 && c.env.CompactionDebt != nil {
		if half := c.cfg.DebtCeiling / 2; half > 0 {
			if debt := c.env.CompactionDebt(); debt > half {
				frac += float64(debt-half) / float64(half)
			}
		}
	}
	if frac > 1 {
		frac = 1
	}
	return frac
}

// waitStopped enters the stopped state and blocks for background progress.
// Store mutex held on entry and exit (released inside env.Wait).
func (c *Controller) waitStopped() {
	c.state.Store(int32(StateStopped))
	c.stops.Add(1)
	start := time.Now()
	c.env.Wait()
	c.stallNanos.Add(int64(time.Since(start)))
}
