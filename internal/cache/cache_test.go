package cache

import (
	"fmt"
	"sync"
	"testing"
)

func TestGetSet(t *testing.T) {
	c := New(1000)
	k := Key{FileNum: 1, Offset: 0}
	if _, ok := c.Get(k); ok {
		t.Error("empty cache hit")
	}
	c.Set(k, "v1", 10)
	v, ok := c.Get(k)
	if !ok || v != "v1" {
		t.Errorf("Get = %v, %v", v, ok)
	}
}

func TestReplaceUpdatesCharge(t *testing.T) {
	c := NewSharded(100, 1)
	k := Key{FileNum: 1}
	c.Set(k, "small", 10)
	c.Set(k, "large", 60)
	if c.Used() != 60 {
		t.Errorf("Used = %d, want 60", c.Used())
	}
	if c.Len() != 1 {
		t.Errorf("Len = %d, want 1", c.Len())
	}
	v, _ := c.Get(k)
	if v != "large" {
		t.Errorf("value = %v", v)
	}
}

// LRU-order tests pin the shard count to 1: with multiple stripes, eviction
// order is only LRU per shard, not globally.
func TestEvictionLRUOrder(t *testing.T) {
	c := NewSharded(30, 1)
	for i := 0; i < 3; i++ {
		c.Set(Key{FileNum: uint64(i)}, i, 10)
	}
	// Touch 0 so it becomes most recent; inserting a new entry evicts 1.
	c.Get(Key{FileNum: 0})
	c.Set(Key{FileNum: 9}, 9, 10)
	if _, ok := c.Get(Key{FileNum: 1}); ok {
		t.Error("LRU entry not evicted")
	}
	for _, f := range []uint64{0, 2, 9} {
		if _, ok := c.Get(Key{FileNum: f}); !ok {
			t.Errorf("entry %d wrongly evicted", f)
		}
	}
}

func TestEvictionByWeight(t *testing.T) {
	c := NewSharded(100, 1)
	c.Set(Key{FileNum: 1}, "a", 90)
	c.Set(Key{FileNum: 2}, "b", 90) // must evict 1
	if _, ok := c.Get(Key{FileNum: 1}); ok {
		t.Error("overweight entry kept")
	}
	if c.Used() > 100 {
		t.Errorf("Used = %d exceeds capacity", c.Used())
	}
}

func TestOversizeEntryEvictsEverything(t *testing.T) {
	c := New(50)
	c.Set(Key{FileNum: 1}, "a", 10)
	c.Set(Key{FileNum: 2}, "big", 500)
	// Cache cannot hold it; it must not leak accounting.
	if c.Used() > 50 && c.Len() > 0 {
		t.Errorf("Used=%d Len=%d after oversize insert", c.Used(), c.Len())
	}
}

func TestZeroCapacityStoresNothing(t *testing.T) {
	c := New(0)
	c.Set(Key{FileNum: 1}, "x", 1)
	if _, ok := c.Get(Key{FileNum: 1}); ok {
		t.Error("zero-capacity cache stored an entry")
	}
}

func TestEvictFile(t *testing.T) {
	c := New(1000)
	for off := uint64(0); off < 5; off++ {
		c.Set(Key{FileNum: 7, Offset: off}, off, 10)
		c.Set(Key{FileNum: 8, Offset: off}, off, 10)
	}
	c.EvictFile(7)
	for off := uint64(0); off < 5; off++ {
		if _, ok := c.Get(Key{FileNum: 7, Offset: off}); ok {
			t.Errorf("file 7 offset %d survived EvictFile", off)
		}
		if _, ok := c.Get(Key{FileNum: 8, Offset: off}); !ok {
			t.Errorf("file 8 offset %d wrongly evicted", off)
		}
	}
	if c.Used() != 50 {
		t.Errorf("Used = %d, want 50", c.Used())
	}
}

func TestStats(t *testing.T) {
	c := New(100)
	c.Set(Key{FileNum: 1}, "v", 1)
	c.Get(Key{FileNum: 1})
	c.Get(Key{FileNum: 2})
	h, m := c.Stats()
	if h != 1 || m != 1 {
		t.Errorf("Stats = %d hits, %d misses", h, m)
	}
}

func TestShardCountRounding(t *testing.T) {
	for _, tc := range []struct{ ask, want int }{
		{1, 1}, {2, 2}, {3, 4}, {4, 4}, {5, 8}, {16, 16},
	} {
		if got := NewSharded(1000, tc.ask).Shards(); got != tc.want {
			t.Errorf("NewSharded(n=%d).Shards() = %d, want %d", tc.ask, got, tc.want)
		}
	}
	if got := NewSharded(1000, 0).Shards(); got != DefaultShards() {
		t.Errorf("NewSharded(n=0).Shards() = %d, want DefaultShards()=%d", got, DefaultShards())
	}
}

func TestClampShards(t *testing.T) {
	for _, tc := range []struct {
		ask       int
		capacity  int64
		entrySize int64
		want      int
	}{
		// Ample capacity: count passes through (rounded up to a power of two).
		{16, 8 << 20, 4 << 10, 16},
		{3, 8 << 20, 4 << 10, 4},
		// 64 KiB cache of 4 KiB blocks: 16 shards would leave 4 KiB each;
		// clamp to 4 so every shard holds >= 4 blocks.
		{16, 64 << 10, 4 << 10, 4},
		// Cache smaller than 4 entries: collapse to one shard.
		{16, 8 << 10, 4 << 10, 1},
		{8, 0, 4 << 10, 8},   // unknown capacity: no clamp
		{8, 1 << 20, 0, 8},   // unknown entry size: no clamp
		{0, 1 << 20, 512, 1}, // non-positive ask floors at 1
	} {
		got := ClampShards(tc.ask, tc.capacity, tc.entrySize)
		if got != tc.want {
			t.Errorf("ClampShards(%d, %d, %d) = %d, want %d",
				tc.ask, tc.capacity, tc.entrySize, got, tc.want)
		}
	}
}

func TestShardedCapacitySplit(t *testing.T) {
	// Total capacity must be preserved exactly across shards, including when
	// it does not divide evenly.
	c := NewSharded(103, 4)
	var total int64
	for i := range c.shards {
		total += c.shards[i].capacity
	}
	if total != 103 {
		t.Errorf("sum of shard capacities = %d, want 103", total)
	}
}

func TestShardedBasicOps(t *testing.T) {
	// All operations must work identically regardless of stripe count.
	for _, n := range []int{1, 2, 4, 8} {
		c := NewSharded(10000, n)
		for i := uint64(0); i < 100; i++ {
			c.Set(Key{FileNum: i, Offset: i * 7}, i, 10)
		}
		if c.Len() != 100 {
			t.Errorf("shards=%d: Len = %d, want 100", n, c.Len())
		}
		if c.Used() != 1000 {
			t.Errorf("shards=%d: Used = %d, want 1000", n, c.Used())
		}
		for i := uint64(0); i < 100; i++ {
			if v, ok := c.Get(Key{FileNum: i, Offset: i * 7}); !ok || v != i {
				t.Fatalf("shards=%d: Get(%d) = %v, %v", n, i, v, ok)
			}
		}
		c.EvictFile(42)
		if c.Len() != 99 {
			t.Errorf("shards=%d: Len after EvictFile = %d, want 99", n, c.Len())
		}
	}
}

func TestConcurrentAccess(t *testing.T) {
	c := NewSharded(10000, 4)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				k := Key{FileNum: uint64(i % 50), Offset: uint64(g)}
				c.Set(k, fmt.Sprintf("%d-%d", g, i), 5)
				c.Get(k)
				if i%100 == 0 {
					c.EvictFile(uint64(i % 50))
				}
			}
		}(g)
	}
	wg.Wait()
	if c.Used() > 10000 {
		t.Errorf("Used = %d exceeds capacity after concurrent load", c.Used())
	}
}

// residentValue models a cached object that knows its in-memory footprint,
// as decoded data blocks do under compression.
type residentValue struct{ size int64 }

func (v residentValue) Resident() int64 { return v.size }

// TestResidentChargeAccounting pins the compression-aware contract: the
// charge is the value's resident (uncompressed) size, and Used() tracks
// exactly that — never a smaller on-disk length.
func TestResidentChargeAccounting(t *testing.T) {
	c := NewSharded(1<<20, 1)
	// Three "blocks" whose on-disk size would be much smaller; the cache
	// must account for the decoded footprint.
	sizes := []int64{4096, 6000, 1024}
	var want int64
	for i, sz := range sizes {
		c.Set(Key{FileNum: 1, Offset: uint64(i * 100)}, residentValue{size: sz}, sz)
		want += sz
	}
	if got := c.Used(); got != want {
		t.Fatalf("Used() = %d, want %d (sum of resident sizes)", got, want)
	}
	// Replacing a block with a differently-sized decode adjusts the total.
	c.Set(Key{FileNum: 1, Offset: 0}, residentValue{size: 8192}, 8192)
	want += 8192 - 4096
	if got := c.Used(); got != want {
		t.Fatalf("Used() after replace = %d, want %d", got, want)
	}
	c.EvictFile(1)
	if got := c.Used(); got != 0 {
		t.Fatalf("Used() after EvictFile = %d, want 0", got)
	}
}
