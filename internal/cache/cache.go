// Package cache provides the LRU cache used for SSTable data blocks, index
// blocks, and Bloom filters. The paper's read-path analysis assumes indexes
// and filters of hot SSTables stay resident in memory (§II-B, §III-C); this
// cache is that residency.
//
// Entries are keyed by (file number, offset) and weighed by their byte size.
// The cache is safe for concurrent use.
package cache

import (
	"container/list"
	"sync"
)

// Key identifies a cached entry.
type Key struct {
	FileNum uint64
	Offset  uint64
}

// Cache is a size-bounded LRU map.
type Cache struct {
	mu       sync.Mutex
	capacity int64
	used     int64
	ll       *list.List // front = most recent
	items    map[Key]*list.Element

	hits, misses int64
}

type entry struct {
	key    Key
	value  interface{}
	charge int64
}

// New returns a cache bounded at capacity bytes. A non-positive capacity
// yields a cache that stores nothing (but never fails).
func New(capacity int64) *Cache {
	return &Cache{
		capacity: capacity,
		ll:       list.New(),
		items:    make(map[Key]*list.Element),
	}
}

// Get returns the cached value for k, if present.
func (c *Cache) Get(k Key) (interface{}, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[k]; ok {
		c.ll.MoveToFront(el)
		c.hits++
		return el.Value.(*entry).value, true
	}
	c.misses++
	return nil, false
}

// Set inserts or replaces the value for k with the given byte charge,
// evicting least-recently-used entries as needed.
func (c *Cache) Set(k Key, v interface{}, charge int64) {
	if c.capacity <= 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[k]; ok {
		old := el.Value.(*entry)
		c.used += charge - old.charge
		old.value, old.charge = v, charge
		c.ll.MoveToFront(el)
	} else {
		el := c.ll.PushFront(&entry{key: k, value: v, charge: charge})
		c.items[k] = el
		c.used += charge
	}
	for c.used > c.capacity && c.ll.Len() > 0 {
		c.evictOldest()
	}
}

func (c *Cache) evictOldest() {
	el := c.ll.Back()
	if el == nil {
		return
	}
	e := el.Value.(*entry)
	c.ll.Remove(el)
	delete(c.items, e.key)
	c.used -= e.charge
}

// EvictFile drops every entry belonging to the given file, called when an
// SSTable is deleted.
func (c *Cache) EvictFile(fileNum uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for el := c.ll.Front(); el != nil; {
		next := el.Next()
		e := el.Value.(*entry)
		if e.key.FileNum == fileNum {
			c.ll.Remove(el)
			delete(c.items, e.key)
			c.used -= e.charge
		}
		el = next
	}
}

// Len reports the number of resident entries.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// Used reports resident bytes.
func (c *Cache) Used() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.used
}

// Stats reports hit/miss counters.
func (c *Cache) Stats() (hits, misses int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses
}
