// Package cache provides the LRU cache used for SSTable data blocks, index
// blocks, and Bloom filters. The paper's read-path analysis assumes indexes
// and filters of hot SSTables stay resident in memory (§II-B, §III-C); this
// cache is that residency.
//
// Entries are keyed by (file number, offset) and weighed by their byte size.
// The cache is lock-striped into shards so concurrent compaction readers and
// foreground Gets do not contend on one mutex: each key hashes to a shard
// with its own lock, LRU list, and capacity slice. The cache is safe for
// concurrent use.
package cache

import (
	"container/list"
	"runtime"

	"repro/internal/invariants"
)

// Key identifies a cached entry.
type Key struct {
	FileNum uint64
	Offset  uint64
}

// Cache is a size-bounded LRU map, striped into independently locked
// shards. Eviction is LRU per shard; the byte bound is the sum of the
// per-shard bounds.
type Cache struct {
	shards []shard
	mask   uint64
}

// shard is one lock stripe: the original single-mutex LRU.
type shard struct {
	//ldclint:lockrank cache.shard.mu 70
	mu       invariants.Mutex
	capacity int64
	used     int64
	ll       *list.List // front = most recent
	items    map[Key]*list.Element

	hits, misses int64
}

type entry struct {
	key    Key
	value  interface{}
	charge int64
}

// checkAccounting verifies the shard's byte/entry bookkeeping under
// -tags invariants. Called with s.mu held after every mutation.
func (s *shard) checkAccounting() {
	if !invariants.Enabled {
		return
	}
	if s.used < 0 {
		invariants.Violatedf("cache shard byte accounting went negative: %d", s.used)
	}
	if len(s.items) != s.ll.Len() {
		invariants.Violatedf("cache shard map/list disagree: %d items, %d list entries",
			len(s.items), s.ll.Len())
	}
	if s.ll.Len() == 0 && s.used != 0 {
		invariants.Violatedf("cache shard empty but %d bytes still charged", s.used)
	}
}

// DefaultShards returns the shard count used when none is specified: the
// smallest power of two covering GOMAXPROCS, capped at 16.
func DefaultShards() int {
	n := runtime.GOMAXPROCS(0)
	if n > 16 {
		n = 16
	}
	return ceilPow2(n)
}

func ceilPow2(n int) int {
	if n < 1 {
		return 1
	}
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}

// New returns a cache bounded at capacity bytes with the default shard
// count. A non-positive capacity yields a cache that stores nothing (but
// never fails).
func New(capacity int64) *Cache { return NewSharded(capacity, 0) }

// ClampShards halves n (keeping it a power of two, floored at 1) until each
// shard's slice of capacity is at least 4×entrySize, so entries of the given
// typical size remain cacheable in every shard. Capacity is split evenly
// across shards, which makes any entry larger than capacity/n silently
// uncacheable; callers that know their entry size (e.g. the block size for a
// block cache) should pass shard counts through this clamp.
func ClampShards(n int, capacity, entrySize int64) int {
	n = ceilPow2(n)
	if capacity <= 0 || entrySize <= 0 {
		return n
	}
	for n > 1 && capacity/int64(n) < 4*entrySize {
		n >>= 1
	}
	return n
}

// NewSharded returns a cache bounded at capacity bytes striped into n
// shards; n is rounded up to a power of two, and n <= 0 selects
// DefaultShards(). Capacity is split evenly across shards, so an entry
// larger than capacity/n is uncacheable — use ClampShards to keep the
// per-shard slice comfortably above the expected entry size.
func NewSharded(capacity int64, n int) *Cache {
	if n <= 0 {
		n = DefaultShards()
	}
	n = ceilPow2(n)
	c := &Cache{shards: make([]shard, n), mask: uint64(n - 1)}
	per := capacity / int64(n)
	extra := capacity % int64(n)
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Rank("cache.shard.mu", 70)
		s.capacity = per
		if int64(i) < extra {
			s.capacity++
		}
		s.ll = list.New()
		s.items = make(map[Key]*list.Element)
	}
	return c
}

// Shards reports the shard count (diagnostics and tests).
func (c *Cache) Shards() int { return len(c.shards) }

// shardFor hashes a key to its stripe (splitmix64-style finalizer so that
// sequential file numbers and block offsets spread evenly).
func (c *Cache) shardFor(k Key) *shard {
	h := k.FileNum*0x9e3779b97f4a7c15 + k.Offset
	h ^= h >> 30
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 27
	h *= 0x94d049bb133111eb
	h ^= h >> 31
	return &c.shards[h&c.mask]
}

// Get returns the cached value for k, if present.
func (c *Cache) Get(k Key) (interface{}, bool) {
	s := c.shardFor(k)
	s.mu.Lock()
	defer s.mu.Unlock()
	if el, ok := s.items[k]; ok {
		s.ll.MoveToFront(el)
		s.hits++
		return el.Value.(*entry).value, true
	}
	s.misses++
	return nil, false
}

// Set inserts or replaces the value for k with the given byte charge,
// evicting least-recently-used entries of k's shard as needed. The charge
// must be the value's resident (in-memory, uncompressed) size: the shard
// capacity math and ClampShards both reason in charged bytes, so charging
// a smaller on-disk length would silently let a shard hold many times its
// budget.
func (c *Cache) Set(k Key, v interface{}, charge int64) {
	if invariants.Enabled {
		if charge < 0 {
			invariants.Violatedf("cache: negative charge %d", charge)
		}
		// Values that know their resident size must be charged exactly it —
		// this is the accounting check behind compression-aware caching
		// (cache uncompressed contents, charge real bytes).
		if rv, ok := v.(interface{ Resident() int64 }); ok && rv.Resident() != charge {
			invariants.Violatedf("cache: charge %d != resident bytes %d for %v",
				charge, rv.Resident(), k)
		}
	}
	s := c.shardFor(k)
	if s.capacity <= 0 {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if el, ok := s.items[k]; ok {
		old := el.Value.(*entry)
		s.used += charge - old.charge
		old.value, old.charge = v, charge
		s.ll.MoveToFront(el)
	} else {
		el := s.ll.PushFront(&entry{key: k, value: v, charge: charge})
		s.items[k] = el
		s.used += charge
	}
	for s.used > s.capacity && s.ll.Len() > 0 {
		s.evictOldest()
	}
	s.checkAccounting()
}

func (s *shard) evictOldest() {
	el := s.ll.Back()
	if el == nil {
		return
	}
	e := el.Value.(*entry)
	s.ll.Remove(el)
	delete(s.items, e.key)
	s.used -= e.charge
}

// EvictFile drops every entry belonging to the given file, called when an
// SSTable is deleted. The file's blocks may live in any shard.
func (c *Cache) EvictFile(fileNum uint64) {
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		for el := s.ll.Front(); el != nil; {
			next := el.Next()
			e := el.Value.(*entry)
			if e.key.FileNum == fileNum {
				s.ll.Remove(el)
				delete(s.items, e.key)
				s.used -= e.charge
			}
			el = next
		}
		s.checkAccounting()
		s.mu.Unlock()
	}
}

// Len reports the number of resident entries across all shards.
func (c *Cache) Len() int {
	n := 0
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		n += s.ll.Len()
		s.mu.Unlock()
	}
	return n
}

// Used reports resident bytes across all shards.
func (c *Cache) Used() int64 {
	var n int64
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		n += s.used
		s.mu.Unlock()
	}
	return n
}

// Stats reports hit/miss counters summed across shards.
func (c *Cache) Stats() (hits, misses int64) {
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		hits += s.hits
		misses += s.misses
		s.mu.Unlock()
	}
	return hits, misses
}
