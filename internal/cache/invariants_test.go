//go:build invariants

package cache

import "testing"

// TestMischargeCaught verifies the invariants-build accounting check: a
// value that reports its resident size must be charged exactly that, so
// charging the (smaller) on-disk compressed length is caught at Set.
func TestMischargeCaught(t *testing.T) {
	c := NewSharded(1<<20, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("Set with charge != Resident() did not trip the invariant")
		}
	}()
	// 4 KiB decoded block mischarged at its 512-byte on-disk length.
	c.Set(Key{FileNum: 1}, residentValue{size: 4096}, 512)
}
