package vlog

import (
	"fmt"
)

// Reader resolves pointers to values. Readers are pooled: GetReader must
// be paired with Release (the ldclint refpair analyzer enforces this), and
// the slices returned by Read are valid only until the next Read or
// Release.
type Reader struct {
	log *Log
	buf []byte
}

// GetReader returns a pooled reader.
func (l *Log) GetReader() *Reader {
	return l.readers.Get().(*Reader)
}

// Release returns r to the pool.
func (r *Reader) Release() {
	if r.log != nil {
		r.log.readers.Put(r)
	}
}

// Read resolves p. The returned key and value alias the reader's internal
// buffer. A pointer into a segment GC has deleted returns ErrSegmentGone
// (the caller re-reads through the LSM and finds the rewritten pointer);
// a pointer that fails bounds or checksum validation returns ErrCorrupt.
func (r *Reader) Read(p Pointer) (key, value []byte, err error) {
	seg := r.log.lookup(p.Segment)
	if seg == nil {
		return nil, nil, fmt.Errorf("%w: %s", ErrSegmentGone, p)
	}
	if p.Length < recordHeaderLen || int64(p.Offset)+int64(p.Length) > seg.size.Load() {
		return nil, nil, fmt.Errorf("%w: %s out of bounds", ErrCorrupt, p)
	}
	f, err := r.log.readHandle(seg)
	if err != nil {
		if r.log.lookup(p.Segment) == nil {
			return nil, nil, fmt.Errorf("%w: %s", ErrSegmentGone, p)
		}
		return nil, nil, fmt.Errorf("vlog: open segment %d: %w", p.Segment, err)
	}
	if cap(r.buf) < int(p.Length) {
		r.buf = make([]byte, p.Length)
	}
	r.buf = r.buf[:p.Length]
	if _, err := f.ReadAt(r.buf, int64(p.Offset)); err != nil {
		// The handle may have been closed under us by a concurrent
		// segment deletion; report that as retryable.
		if r.log.lookup(p.Segment) == nil {
			return nil, nil, fmt.Errorf("%w: %s", ErrSegmentGone, p)
		}
		return nil, nil, fmt.Errorf("vlog: read %s: %w", p, err)
	}
	key, value, n, err := DecodeRecord(r.buf)
	if err != nil {
		return nil, nil, err
	}
	if n != int(p.Length) {
		return nil, nil, fmt.Errorf("%w: %s length mismatch (record %d)", ErrCorrupt, p, n)
	}
	return key, value, nil
}
