package vlog

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/invariants"
	"repro/internal/vfs"
)

// DefaultSegmentSize is the rotation threshold when Options.SegmentSize is
// zero: large enough that segment metadata stays negligible, small enough
// that one dead-heavy segment is a bounded GC unit.
const DefaultSegmentSize = 64 << 20

// Options configures a Log.
type Options struct {
	// SegmentSize is the rotation threshold for active segments.
	SegmentSize int64
	// ReadFS, when non-nil, is used for pointer-resolution read handles
	// (so a simulated device can charge them as user reads). Defaults to
	// the Open fs.
	ReadFS vfs.FS
	// ScanFS, when non-nil, is used for GC segment scans (charged as
	// compaction reads). Defaults to the Open fs.
	ScanFS vfs.FS
}

// Stats is a point-in-time summary of the log, folded once into the
// database-wide Stats() like the other shared resources.
type Stats struct {
	Segments         int
	TotalBytes       int64 // valid extents of all segments
	DeadBytes        int64 // bytes of records known dropped or superseded
	AppendedBytes    int64 // lifetime foreground + GC appends
	GCPasses         int64
	GCBytesRewritten int64
	GCRecordsGuarded int64 // rewrites skipped by the commit-time guard
	Resolves         int64
	ResolveCacheHits int64
}

// LiveRatio reports the live fraction of the log's valid bytes (1.0 when
// empty).
func (s Stats) LiveRatio() float64 {
	if s.TotalBytes == 0 {
		return 1.0
	}
	live := s.TotalBytes - s.DeadBytes
	if live < 0 {
		live = 0
	}
	return float64(live) / float64(s.TotalBytes)
}

// segment is a registry entry. size is the valid extent: everything below
// it parses and checksums; a torn physical tail past it is logically
// truncated. dead is advisory accounting, rebuilt lazily after restart as
// compactions re-discover dropped pointers and GC verifies liveness.
type segment struct {
	num   uint64
	shard int

	size atomic.Int64
	dead atomic.Int64

	active atomic.Bool // owned by a Writer; ineligible for GC

	//ldclint:lockrank vlog.segment.mu 65
	mu invariants.Mutex
	rf vfs.File // shared lazy read handle for pointer resolution
}

// newSegment builds segment num owned by shard; both segment-creation
// sites (recovery and writer rotation) go through it so the mutex rank is
// declared exactly once.
func newSegment(num uint64, shard int) *segment {
	s := &segment{num: num, shard: shard}
	s.mu.Rank("vlog.segment.mu", 65)
	return s
}

// Log is the database-wide value log.
type Log struct {
	fs      vfs.FS
	readFS  vfs.FS
	scanFS  vfs.FS
	dir     string
	segSize int64

	//ldclint:lockrank vlog.log.mu 60
	mu      invariants.Mutex
	segs    map[uint64]*segment
	nextSeg uint64

	appended    atomic.Int64
	gcPasses    atomic.Int64
	gcRewritten atomic.Int64
	gcGuarded   atomic.Int64
	resolves    atomic.Int64
	resolveHits atomic.Int64

	readers sync.Pool
}

// SegmentFileName returns the file name of segment num owned by shard.
func SegmentFileName(shard int, num uint64) string {
	return fmt.Sprintf("VLOG-%d-%06d.vlog", shard, num)
}

// ParseSegmentFileName parses a name produced by SegmentFileName.
func ParseSegmentFileName(name string) (shard int, num uint64, ok bool) {
	rest, found := strings.CutPrefix(name, "VLOG-")
	if !found {
		return 0, 0, false
	}
	rest, found = strings.CutSuffix(rest, ".vlog")
	if !found {
		return 0, 0, false
	}
	shardStr, numStr, found := strings.Cut(rest, "-")
	if !found {
		return 0, 0, false
	}
	s, err := strconv.Atoi(shardStr)
	if err != nil || s < 0 {
		return 0, 0, false
	}
	n, err := strconv.ParseUint(numStr, 10, 64)
	if err != nil {
		return 0, 0, false
	}
	return s, n, true
}

// Open opens (creating if needed) the value log rooted at dir. Existing
// segments are scanned from the front; each is registered sealed with its
// valid extent ending at the last record that parses and checksums, so a
// torn final record is logically truncated. Writers never append to a
// recovered segment.
func Open(fs vfs.FS, dir string, opts Options) (*Log, error) {
	if opts.SegmentSize <= 0 {
		opts.SegmentSize = DefaultSegmentSize
	}
	if err := fs.MkdirAll(dir); err != nil {
		return nil, fmt.Errorf("vlog: mkdir %s: %w", dir, err)
	}
	l := &Log{
		fs:      fs,
		readFS:  opts.ReadFS,
		scanFS:  opts.ScanFS,
		dir:     dir,
		segSize: opts.SegmentSize,
		segs:    map[uint64]*segment{},
		nextSeg: 1,
	}
	l.mu.Rank("vlog.log.mu", 60)
	if l.readFS == nil {
		l.readFS = fs
	}
	if l.scanFS == nil {
		l.scanFS = fs
	}
	l.readers.New = func() interface{} { return &Reader{log: l} }

	names, err := fs.List(dir)
	if err != nil {
		return nil, fmt.Errorf("vlog: list %s: %w", dir, err)
	}
	for _, name := range names {
		shard, num, ok := ParseSegmentFileName(name)
		if !ok {
			continue
		}
		valid, err := l.scanValidExtent(name)
		if err != nil {
			return nil, fmt.Errorf("vlog: recover %s: %w", name, err)
		}
		seg := newSegment(num, shard)
		seg.size.Store(valid)
		l.segs[num] = seg
		if num >= l.nextSeg {
			l.nextSeg = num + 1
		}
	}
	return l, nil
}

// scanValidExtent walks records from the front of the named segment and
// returns the offset past the last record that parses and checksums.
func (l *Log) scanValidExtent(name string) (int64, error) {
	f, err := l.fs.Open(l.dir + "/" + name)
	if err != nil {
		return 0, err
	}
	defer func() { _ = f.Close() }()
	size, err := f.Size()
	if err != nil {
		return 0, err
	}
	if size == 0 {
		return 0, nil
	}
	buf := make([]byte, size)
	if _, err := f.ReadAt(buf, 0); err != nil {
		return 0, err
	}
	var off int64
	for off < size {
		_, _, n, err := DecodeRecord(buf[off:])
		if err != nil {
			break // torn or corrupt tail: logical truncation point
		}
		off += int64(n)
	}
	return off, nil
}

// lookup returns the registered segment, or nil.
func (l *Log) lookup(num uint64) *segment {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.segs[num]
}

// Valid reports whether p points inside the valid extent of a registered
// segment. Recovery uses it to detect pointers whose value never became
// durable (the WAL-ahead-of-vlog torn-tail case).
func (l *Log) Valid(p Pointer) bool {
	seg := l.lookup(p.Segment)
	if seg == nil || p.Length < recordHeaderLen {
		return false
	}
	return int64(p.Offset)+int64(p.Length) <= seg.size.Load()
}

// MarkDead adds n record bytes of dead weight to segment num. Compactions
// call it when they drop a pointer entry; GC calls it for orphans and
// guard-failed rewrites. Unknown segments are ignored (already deleted).
func (l *Log) MarkDead(num uint64, n int64) {
	if seg := l.lookup(num); seg != nil {
		seg.dead.Add(n)
	}
}

// NoteResolve counts one pointer resolution; hit marks a decoded-value
// cache hit that skipped the device read.
func (l *Log) NoteResolve(hit bool) {
	l.resolves.Add(1)
	if hit {
		l.resolveHits.Add(1)
	}
}

// NoteGCPass counts one completed GC pass that rewrote n live bytes.
func (l *Log) NoteGCPass(rewritten int64) {
	l.gcPasses.Add(1)
	l.gcRewritten.Add(rewritten)
}

// NoteGuardedRewrite counts one rewrite skipped by the commit-time guard
// (a newer write for the key landed between the GC's liveness read and the
// rewrite's application). Called from the commit path, not the GC pass,
// because the guard is evaluated under the store's mutex.
func (l *Log) NoteGuardedRewrite() {
	l.gcGuarded.Add(1)
}

// segmentInfo is a GC-facing snapshot of one segment.
type segmentInfo struct {
	Num   uint64
	Shard int
	Size  int64
	Dead  int64
}

// Candidates returns sealed segments whose dead fraction is at or above
// threshold, worst first. Active segments are never candidates.
func (l *Log) Candidates(threshold float64) []uint64 {
	infos := l.sealed()
	var out []segmentInfo
	for _, si := range infos {
		if si.Size > 0 && float64(si.Dead)/float64(si.Size) >= threshold {
			out = append(out, si)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		return float64(out[i].Dead)*float64(out[j].Size) > float64(out[j].Dead)*float64(out[i].Size)
	})
	nums := make([]uint64, len(out))
	for i, si := range out {
		nums[i] = si.Num
	}
	return nums
}

// SealedSegments returns every sealed segment number (forced-GC sweeps).
func (l *Log) SealedSegments() []uint64 {
	infos := l.sealed()
	nums := make([]uint64, len(infos))
	for i, si := range infos {
		nums[i] = si.Num
	}
	return nums
}

func (l *Log) sealed() []segmentInfo {
	l.mu.Lock()
	defer l.mu.Unlock()
	var out []segmentInfo
	for _, seg := range l.segs {
		if seg.active.Load() {
			continue
		}
		out = append(out, segmentInfo{seg.num, seg.shard, seg.size.Load(), seg.dead.Load()})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Num < out[j].Num })
	return out
}

// SegmentShard reports which shard owns segment num.
func (l *Log) SegmentShard(num uint64) (int, bool) {
	seg := l.lookup(num)
	if seg == nil {
		return 0, false
	}
	return seg.shard, true
}

// MaxShard returns the highest shard id that owns any segment, or -1 when
// the log is empty. Open-time validation uses it to reject reopening a
// blob-bearing database under a smaller shard count.
func (l *Log) MaxShard() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	max := -1
	for _, seg := range l.segs {
		if seg.shard > max {
			max = seg.shard
		}
	}
	return max
}

// DeleteSegment removes segment num from the registry and the filesystem.
// The caller is responsible for quiescing readers first (flush barrier,
// snapshot and iterator drain) — see the GC lifecycle in DESIGN.md.
func (l *Log) DeleteSegment(num uint64) error {
	l.mu.Lock()
	seg := l.segs[num]
	delete(l.segs, num)
	l.mu.Unlock()
	if seg == nil {
		return nil
	}
	seg.mu.Lock()
	if seg.rf != nil {
		//ldclint:ignore mutexio closing the read handle of an unregistered segment; no reader can be queued behind this lock
		_ = seg.rf.Close()
		seg.rf = nil
	}
	seg.mu.Unlock()
	return l.fs.Remove(l.dir + "/" + SegmentFileName(seg.shard, seg.num))
}

// Stats returns a consistent-enough snapshot for reporting.
func (l *Log) Stats() Stats {
	l.mu.Lock()
	var total, dead int64
	n := len(l.segs)
	for _, seg := range l.segs {
		total += seg.size.Load()
		dead += seg.dead.Load()
	}
	l.mu.Unlock()
	return Stats{
		Segments:         n,
		TotalBytes:       total,
		DeadBytes:        dead,
		AppendedBytes:    l.appended.Load(),
		GCPasses:         l.gcPasses.Load(),
		GCBytesRewritten: l.gcRewritten.Load(),
		GCRecordsGuarded: l.gcGuarded.Load(),
		Resolves:         l.resolves.Load(),
		ResolveCacheHits: l.resolveHits.Load(),
	}
}

// Close closes every cached read handle. Writers are closed by their
// owning shards before the Log.
func (l *Log) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	var first error
	for _, seg := range l.segs {
		seg.mu.Lock()
		if seg.rf != nil {
			//ldclint:ignore mutexio teardown path; nothing contends these locks after Close begins
			if err := seg.rf.Close(); err != nil && first == nil {
				first = err
			}
			seg.rf = nil
		}
		seg.mu.Unlock()
	}
	return first
}

// readHandle returns the segment's shared lazy read handle.
func (l *Log) readHandle(seg *segment) (vfs.File, error) {
	seg.mu.Lock()
	defer seg.mu.Unlock()
	if seg.rf == nil {
		//ldclint:ignore mutexio one-time lazy open; per-segment lock so only first readers of a segment contend
		f, err := l.readFS.Open(l.dir + "/" + SegmentFileName(seg.shard, seg.num))
		if err != nil {
			return nil, err
		}
		seg.rf = f
	}
	return seg.rf, nil
}
