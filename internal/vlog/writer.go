package vlog

import (
	"errors"
	"fmt"

	"repro/internal/invariants"
	"repro/internal/vfs"
)

// ErrClosed reports use of a closed Writer.
var ErrClosed = errors.New("vlog: writer closed")

// Writer is one shard's appender. The shard's group-commit leader calls
// Append for each separated value and then one Flush/Sync for the whole
// write group — one durability point per group, mirroring the WAL. The GC
// worker appends through the same Writer (its own lock acquisition), so
// rotation and offsets stay single-writer per shard.
type Writer struct {
	log   *Log
	shard int

	//ldclint:lockrank vlog.writer.mu 55
	mu     invariants.Mutex
	closed bool
	seg    *segment
	f      vfs.File
	off    int64
	dirty  bool // appended since last Sync
	buf    []byte
}

// NewWriter returns shard's appender. The first segment file is created on
// first Append, so a database that never separates a value never creates
// vlog files.
func (l *Log) NewWriter(shard int) *Writer {
	w := &Writer{log: l, shard: shard}
	w.mu.Rank("vlog.writer.mu", 55)
	return w
}

// Append writes one record and returns its pointer. The record is written
// through to the filesystem (no writer-side buffering), so it is readable
// as soon as the pointer is published; durability still requires Sync.
func (w *Writer) Append(key, value []byte) (Pointer, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return Pointer{}, ErrClosed
	}
	if w.seg == nil || w.off >= w.log.segSize {
		if err := w.rotateLocked(); err != nil {
			return Pointer{}, err
		}
	}
	w.buf = AppendRecord(w.buf[:0], key, value)
	//ldclint:ignore mutexio appends must serialize under w.mu: the commit leader and the GC relocator race for the same segment tail, and record offsets are assigned by write order
	n, err := w.f.Write(w.buf)
	if err != nil {
		return Pointer{}, fmt.Errorf("vlog: append: %w", err)
	}
	if n != len(w.buf) {
		return Pointer{}, fmt.Errorf("vlog: short append: %d of %d", n, len(w.buf))
	}
	p := Pointer{Segment: w.seg.num, Offset: uint64(w.off), Length: uint32(len(w.buf))}
	w.off += int64(len(w.buf))
	w.seg.size.Store(w.off)
	w.log.appended.Add(int64(len(w.buf)))
	w.dirty = true
	return p, nil
}

// rotateLocked seals the current segment and starts a fresh one.
func (w *Writer) rotateLocked() error {
	if w.f != nil {
		err := w.f.Sync()
		if cerr := w.f.Close(); err == nil {
			err = cerr
		}
		w.seg.active.Store(false)
		w.f, w.seg = nil, nil
		if err != nil {
			return fmt.Errorf("vlog: seal segment: %w", err)
		}
	}
	l := w.log
	l.mu.Lock()
	num := l.nextSeg
	l.nextSeg++
	seg := newSegment(num, w.shard)
	seg.active.Store(true)
	l.segs[num] = seg
	l.mu.Unlock()

	f, err := l.fs.Create(l.dir + "/" + SegmentFileName(w.shard, num))
	if err != nil {
		l.mu.Lock()
		delete(l.segs, num)
		l.mu.Unlock()
		return fmt.Errorf("vlog: create segment: %w", err)
	}
	w.seg, w.f, w.off = seg, f, 0
	return nil
}

// Sync makes every appended record durable. No-op when nothing was
// appended since the last Sync.
func (w *Writer) Sync() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return ErrClosed
	}
	if w.f == nil || !w.dirty {
		return nil
	}
	//ldclint:ignore mutexio the sync must exclude concurrent appends or the dirty flag could clear with unsynced bytes behind it; one vlog fsync per write group, amortized like the WAL's
	if err := w.f.Sync(); err != nil {
		return fmt.Errorf("vlog: sync: %w", err)
	}
	w.dirty = false
	return nil
}

// Close seals the active segment and releases the writer.
func (w *Writer) Close() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return nil
	}
	w.closed = true
	if w.f == nil {
		return nil
	}
	//ldclint:ignore mutexio teardown path; closed flag is already set so no append can contend
	err := w.f.Sync()
	//ldclint:ignore mutexio teardown path; closed flag is already set so no append can contend
	if cerr := w.f.Close(); err == nil {
		err = cerr
	}
	w.seg.active.Store(false)
	w.f, w.seg = nil, nil
	return err
}
