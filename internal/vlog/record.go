// Package vlog implements the value log: an append-only, segmented store
// for large values kept out of the LSM-tree (WiscKey/BlobDB-style value
// separation). The tree stores fixed-size pointer entries (KindBlobRef);
// the bytes themselves live in checksummed records here, so compactions
// move 20-byte pointers instead of kilobyte values.
//
// One Log is shared database-wide, like the block cache: one device, one
// log. Each shard appends through its own Writer into its own segments
// (per-shard offset spaces, globally unique segment numbers), so the
// group-commit leaders of different shards never contend on an offset.
// Segments are never appended to after reopen: recovery seals what it
// finds (scanning from the front and logically truncating a torn tail)
// and writers always start fresh segments.
//
// Record wire format, in segment-file order:
//
//	fixed32 crc32c   over everything after this field
//	uvarint keyLen
//	uvarint valLen
//	key bytes        (kept so GC can test liveness without a reverse index)
//	value bytes
//
// A Pointer names a record as (segment, offset, length) and is what the
// LSM stores as a KindBlobRef entry's value.
package vlog

import (
	"errors"
	"fmt"
	"hash/crc32"

	"repro/internal/encoding"
)

// ErrCorrupt reports a record that fails structural or checksum
// validation. The decoder is bounds-checked end to end: arbitrary input
// yields ErrCorrupt, never a panic (same contract as the LZ4 decoder).
var ErrCorrupt = errors.New("vlog: corrupt record")

// ErrSegmentGone reports a pointer into a segment that is no longer in
// the log (deleted by GC between the pointer read and its resolution).
// Callers retry through the read path, which then observes the rewritten
// pointer.
var ErrSegmentGone = errors.New("vlog: segment gone")

// PointerLen is the encoded size of a Pointer: fixed64 segment,
// fixed64 offset, fixed32 record length.
const PointerLen = 20

// recordHeaderLen is the fixed prefix before the varint lengths.
const recordHeaderLen = 4

// maxRecordLen bounds a single record. It exists so a corrupt length
// field cannot drive a giant allocation during recovery scans.
const maxRecordLen = 1 << 30

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// Pointer locates one record in the log.
type Pointer struct {
	Segment uint64
	Offset  uint64
	Length  uint32 // full on-disk record length, including the crc header
}

// Encode appends the fixed 20-byte encoding of p to dst.
func (p Pointer) Encode(dst []byte) []byte {
	dst = encoding.PutFixed64(dst, p.Segment)
	dst = encoding.PutFixed64(dst, p.Offset)
	return encoding.PutFixed32(dst, p.Length)
}

// String formats p for debugging and errors.
func (p Pointer) String() string {
	return fmt.Sprintf("vlog(%d@%d+%d)", p.Segment, p.Offset, p.Length)
}

// DecodePointer parses the fixed encoding produced by Encode. ok is false
// when b is not exactly PointerLen bytes.
func DecodePointer(b []byte) (Pointer, bool) {
	if len(b) != PointerLen {
		return Pointer{}, false
	}
	return Pointer{
		Segment: encoding.Fixed64(b),
		Offset:  encoding.Fixed64(b[8:]),
		Length:  encoding.Fixed32(b[16:]),
	}, true
}

// AppendRecord appends the encoding of (key, value) to dst and returns the
// extended slice.
func AppendRecord(dst, key, value []byte) []byte {
	base := len(dst)
	dst = append(dst, 0, 0, 0, 0) // crc placeholder
	dst = encoding.PutUvarint(dst, uint64(len(key)))
	dst = encoding.PutUvarint(dst, uint64(len(value)))
	dst = append(dst, key...)
	dst = append(dst, value...)
	crc := crc32.Checksum(dst[base+recordHeaderLen:], crcTable)
	encoding.PutFixed32(dst[base:base], crc)
	return dst
}

// DecodeRecord parses one record from the front of b. key and value alias
// b. n is the total record length consumed. Any structural violation —
// truncation, oversized lengths, checksum mismatch — returns ErrCorrupt.
func DecodeRecord(b []byte) (key, value []byte, n int, err error) {
	if len(b) < recordHeaderLen {
		return nil, nil, 0, fmt.Errorf("%w: %d bytes", ErrCorrupt, len(b))
	}
	crc := encoding.Fixed32(b)
	p := b[recordHeaderLen:]
	keyLen, kn := encoding.Uvarint(p)
	if kn <= 0 {
		return nil, nil, 0, fmt.Errorf("%w: bad key length", ErrCorrupt)
	}
	p = p[kn:]
	valLen, vn := encoding.Uvarint(p)
	if vn <= 0 {
		return nil, nil, 0, fmt.Errorf("%w: bad value length", ErrCorrupt)
	}
	p = p[vn:]
	if keyLen > maxRecordLen || valLen > maxRecordLen ||
		uint64(len(p)) < keyLen+valLen {
		return nil, nil, 0, fmt.Errorf("%w: lengths exceed input", ErrCorrupt)
	}
	n = recordHeaderLen + kn + vn + int(keyLen) + int(valLen)
	if crc32.Checksum(b[recordHeaderLen:n], crcTable) != crc {
		return nil, nil, 0, fmt.Errorf("%w: checksum mismatch", ErrCorrupt)
	}
	key = p[:keyLen]
	value = p[keyLen : keyLen+valLen]
	return key, value, n, nil
}
