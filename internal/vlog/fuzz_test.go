package vlog

import (
	"bytes"
	"testing"
)

// FuzzVlogRecordDecode exercises the record decoder on arbitrary input.
// The contract (same as the LZ4 decoder): bounds-checked end to end —
// return ErrCorrupt for anything malformed, never panic, and round-trip
// every record the encoder produces.
func FuzzVlogRecordDecode(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 0})
	f.Add(AppendRecord(nil, []byte("key"), []byte("value")))
	f.Add(AppendRecord(nil, nil, nil))
	f.Add(AppendRecord(nil, []byte("k"), bytes.Repeat([]byte{0xEE}, 300)))
	// Oversized declared lengths on a tiny buffer.
	f.Add([]byte{1, 2, 3, 4, 0xFF, 0xFF, 0xFF, 0xFF, 0x0F, 0x01})
	f.Fuzz(func(t *testing.T, data []byte) {
		key, value, n, err := DecodeRecord(data)
		if err != nil {
			return
		}
		if n <= 0 || n > len(data) {
			t.Fatalf("accepted record with length %d of %d input bytes", n, len(data))
		}
		// Anything the decoder accepts must round-trip through the
		// encoder (the encoder emits minimal varints, so compare the
		// decoded fields, not the raw bytes).
		re := AppendRecord(nil, key, value)
		k2, v2, n2, err := DecodeRecord(re)
		if err != nil || n2 != len(re) || !bytes.Equal(k2, key) || !bytes.Equal(v2, value) {
			t.Fatalf("accepted record does not round-trip: %v", err)
		}
	})
}
