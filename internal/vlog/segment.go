package vlog

import (
	"fmt"

	"repro/internal/vfs"
)

// Segment is an independent read handle over one sealed segment, used by
// the GC worker to scan records front to back. It holds its own file
// handle (not the pooled resolution handle) so a long scan never contends
// with foreground reads; Close releases it.
type Segment struct {
	num   uint64
	shard int
	size  int64
	f     vfs.File
}

// OpenSegment opens a scan handle over sealed segment num. The valid
// extent is snapshotted at open; records appended later (impossible for
// sealed segments) are not visited.
func (l *Log) OpenSegment(num uint64) (*Segment, error) {
	seg := l.lookup(num)
	if seg == nil {
		return nil, fmt.Errorf("%w: segment %d", ErrSegmentGone, num)
	}
	f, err := l.scanFS.Open(l.dir + "/" + SegmentFileName(seg.shard, seg.num))
	if err != nil {
		return nil, fmt.Errorf("vlog: open segment %d: %w", num, err)
	}
	return &Segment{num: num, shard: seg.shard, size: seg.size.Load(), f: f}, nil
}

// Shard reports the shard that owns this segment.
func (s *Segment) Shard() int { return s.shard }

// Size reports the segment's valid extent at open time.
func (s *Segment) Size() int64 { return s.size }

// Scan invokes fn for every record in the valid extent, in file order.
// key and value alias a scan buffer reused across calls. Returning an
// error from fn stops the scan and propagates the error.
func (s *Segment) Scan(fn func(ptr Pointer, key, value []byte) error) error {
	if s.size == 0 {
		return nil
	}
	buf := make([]byte, s.size)
	if _, err := s.f.ReadAt(buf, 0); err != nil {
		return fmt.Errorf("vlog: scan segment %d: %w", s.num, err)
	}
	var off int64
	for off < s.size {
		key, value, n, err := DecodeRecord(buf[off:])
		if err != nil {
			return fmt.Errorf("vlog: scan segment %d at %d: %w", s.num, off, err)
		}
		ptr := Pointer{Segment: s.num, Offset: uint64(off), Length: uint32(n)}
		if err := fn(ptr, key, value); err != nil {
			return err
		}
		off += int64(n)
	}
	return nil
}

// Close releases the scan handle.
func (s *Segment) Close() error {
	return s.f.Close()
}
