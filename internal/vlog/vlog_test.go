package vlog

import (
	"bytes"
	"errors"
	"fmt"
	"testing"

	"repro/internal/vfs"
)

func TestPointerRoundTrip(t *testing.T) {
	p := Pointer{Segment: 7, Offset: 1 << 40, Length: 12345}
	enc := p.Encode(nil)
	if len(enc) != PointerLen {
		t.Fatalf("encoded length = %d, want %d", len(enc), PointerLen)
	}
	got, ok := DecodePointer(enc)
	if !ok || got != p {
		t.Fatalf("DecodePointer = %+v, %v; want %+v", got, ok, p)
	}
	if _, ok := DecodePointer(enc[:PointerLen-1]); ok {
		t.Fatal("DecodePointer accepted a short encoding")
	}
}

func TestRecordRoundTrip(t *testing.T) {
	for _, tc := range []struct{ key, val string }{
		{"k", "v"},
		{"", ""},
		{"key", string(bytes.Repeat([]byte{0xAB}, 4096))},
	} {
		rec := AppendRecord(nil, []byte(tc.key), []byte(tc.val))
		key, val, n, err := DecodeRecord(rec)
		if err != nil {
			t.Fatalf("DecodeRecord(%q/%d): %v", tc.key, len(tc.val), err)
		}
		if n != len(rec) || string(key) != tc.key || string(val) != tc.val {
			t.Fatalf("round trip mismatch for %q", tc.key)
		}
	}
}

func TestWriterAppendReadBack(t *testing.T) {
	fs := vfs.Mem()
	l, err := Open(fs, "vl", Options{SegmentSize: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	w := l.NewWriter(0)
	var ptrs []Pointer
	for i := 0; i < 100; i++ {
		p, err := w.Append([]byte(fmt.Sprintf("key-%03d", i)), bytes.Repeat([]byte{byte(i)}, 100+i))
		if err != nil {
			t.Fatal(err)
		}
		ptrs = append(ptrs, p)
	}
	if err := w.Sync(); err != nil {
		t.Fatal(err)
	}
	r := l.GetReader()
	defer r.Release()
	for i, p := range ptrs {
		key, val, err := r.Read(p)
		if err != nil {
			t.Fatalf("read %d: %v", i, err)
		}
		if string(key) != fmt.Sprintf("key-%03d", i) || len(val) != 100+i || val[0] != byte(i) {
			t.Fatalf("read %d: wrong record %q/%d", i, key, len(val))
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := w.Append([]byte("k"), []byte("v")); !errors.Is(err, ErrClosed) {
		t.Fatalf("append after close = %v, want ErrClosed", err)
	}
}

func TestWriterRotatesSegments(t *testing.T) {
	fs := vfs.Mem()
	l, err := Open(fs, "vl", Options{SegmentSize: 256})
	if err != nil {
		t.Fatal(err)
	}
	w := l.NewWriter(3)
	val := bytes.Repeat([]byte{7}, 200)
	var ptrs []Pointer
	for i := 0; i < 5; i++ {
		p, err := w.Append([]byte("k"), val)
		if err != nil {
			t.Fatal(err)
		}
		ptrs = append(ptrs, p)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if ptrs[0].Segment == ptrs[4].Segment {
		t.Fatal("expected rotation across appends")
	}
	st := l.Stats()
	if st.Segments < 2 {
		t.Fatalf("Segments = %d, want >= 2", st.Segments)
	}
	// All pointers still resolve across segments.
	r := l.GetReader()
	defer r.Release()
	for i, p := range ptrs {
		if _, v, err := r.Read(p); err != nil || !bytes.Equal(v, val) {
			t.Fatalf("read %d after rotation: %v", i, err)
		}
	}
	// Names parse back to the owning shard.
	names, _ := fs.List("vl")
	for _, name := range names {
		shard, _, ok := ParseSegmentFileName(name)
		if !ok || shard != 3 {
			t.Fatalf("bad segment name %q", name)
		}
	}
}

func TestReopenSealsAndTruncatesTorn(t *testing.T) {
	efs := vfs.NewErrFS(vfs.Mem())
	l, err := Open(efs, "vl", Options{SegmentSize: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	w := l.NewWriter(0)
	var ptrs []Pointer
	for i := 0; i < 10; i++ {
		p, err := w.Append([]byte(fmt.Sprintf("k%d", i)), bytes.Repeat([]byte{byte(i)}, 64))
		if err != nil {
			t.Fatal(err)
		}
		ptrs = append(ptrs, p)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	// Tear half of the final record off the tail, emulating a crash
	// mid-append.
	name := "vl/" + SegmentFileName(0, ptrs[0].Segment)
	last := ptrs[len(ptrs)-1]
	if err := efs.TearFile(name, int(last.Length/2)); err != nil {
		t.Fatal(err)
	}

	// Reopen: the valid extent covers every complete record and the torn
	// one is logically truncated.
	l2, err := Open(efs, "vl", Options{SegmentSize: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range ptrs[:len(ptrs)-1] {
		if !l2.Valid(p) {
			t.Fatalf("pointer %d invalid after torn-tail reopen", i)
		}
	}
	if l2.Valid(last) {
		t.Fatal("pointer into the torn record accepted")
	}
	r := l2.GetReader()
	if _, v, err := r.Read(ptrs[0]); err != nil || len(v) != 64 {
		t.Fatalf("read after torn-tail reopen: %v", err)
	}
	r.Release()
	// New writers never append to the recovered segment.
	w2 := l2.NewWriter(0)
	p, err := w2.Append([]byte("new"), []byte("value"))
	if err != nil {
		t.Fatal(err)
	}
	if p.Segment == ptrs[0].Segment {
		t.Fatal("writer appended to a sealed segment")
	}
	_ = w2.Close()
	_ = l2.Close()
}

func TestDeleteSegmentAndSegmentGone(t *testing.T) {
	fs := vfs.Mem()
	l, err := Open(fs, "vl", Options{SegmentSize: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	w := l.NewWriter(0)
	p, err := w.Append([]byte("k"), []byte("v"))
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if err := l.DeleteSegment(p.Segment); err != nil {
		t.Fatal(err)
	}
	r := l.GetReader()
	defer r.Release()
	if _, _, err := r.Read(p); !errors.Is(err, ErrSegmentGone) {
		t.Fatalf("read deleted segment = %v, want ErrSegmentGone", err)
	}
	if names, _ := fs.List("vl"); len(names) != 0 {
		t.Fatalf("segment file survived deletion: %v", names)
	}
}

func TestDeadAccountingAndCandidates(t *testing.T) {
	fs := vfs.Mem()
	l, err := Open(fs, "vl", Options{SegmentSize: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	w := l.NewWriter(0)
	var ptrs []Pointer
	for i := 0; i < 4; i++ {
		p, err := w.Append([]byte("k"), bytes.Repeat([]byte{1}, 100))
		if err != nil {
			t.Fatal(err)
		}
		ptrs = append(ptrs, p)
	}
	// Active segments are never candidates, whatever their dead ratio.
	l.MarkDead(ptrs[0].Segment, int64(ptrs[0].Length)*3)
	if got := l.Candidates(0.5); len(got) != 0 {
		t.Fatalf("active segment offered for GC: %v", got)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if got := l.Candidates(0.5); len(got) != 1 || got[0] != ptrs[0].Segment {
		t.Fatalf("Candidates = %v, want [%d]", got, ptrs[0].Segment)
	}
	if got := l.Candidates(0.99); len(got) != 0 {
		t.Fatalf("Candidates above ratio = %v, want none", got)
	}
	st := l.Stats()
	if st.DeadBytes == 0 || st.LiveRatio() >= 1.0 {
		t.Fatalf("dead accounting missing: %+v", st)
	}
}

func TestSegmentScan(t *testing.T) {
	fs := vfs.Mem()
	l, err := Open(fs, "vl", Options{SegmentSize: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	w := l.NewWriter(1)
	var want []Pointer
	for i := 0; i < 8; i++ {
		p, err := w.Append([]byte(fmt.Sprintf("k%d", i)), bytes.Repeat([]byte{byte(i)}, 50))
		if err != nil {
			t.Fatal(err)
		}
		want = append(want, p)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	s, err := l.OpenSegment(want[0].Segment)
	if err != nil {
		t.Fatal(err)
	}
	if s.Shard() != 1 {
		t.Fatalf("Shard() = %d, want 1", s.Shard())
	}
	var got []Pointer
	err = s.Scan(func(ptr Pointer, key, value []byte) error {
		if string(key) != fmt.Sprintf("k%d", len(got)) {
			return fmt.Errorf("wrong key %q at %d", key, len(got))
		}
		got = append(got, ptr)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("scanned %d records, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("record %d: scan pointer %v != append pointer %v", i, got[i], want[i])
		}
	}
}

// TestEveryByteFlip corrupts each byte of a small segment in turn and
// requires the scan to stop cleanly: every record the scanner still
// accepts must be byte-identical to an original record (CRC32C detects
// all single-bit and single-byte corruptions at these lengths), and the
// decoder must never panic.
func TestEveryByteFlip(t *testing.T) {
	var seg []byte
	type rec struct{ key, val string }
	recs := []rec{{"alpha", "one"}, {"beta", "twotwo"}, {"gamma", "threethree"}}
	for _, r := range recs {
		seg = AppendRecord(seg, []byte(r.key), []byte(r.val))
	}
	for i := range seg {
		corrupted := append([]byte(nil), seg...)
		corrupted[i] ^= 0xFF
		var off, idx int
		for off < len(corrupted) {
			key, val, n, err := DecodeRecord(corrupted[off:])
			if err != nil {
				break
			}
			if idx >= len(recs) || string(key) != recs[idx].key || string(val) != recs[idx].val {
				t.Fatalf("flip at %d: decoder accepted a corrupted record %d (%q)", i, idx, key)
			}
			off += n
			idx++
		}
		if idx == len(recs) && off == len(corrupted) {
			t.Fatalf("flip at %d went undetected", i)
		}
	}
}
