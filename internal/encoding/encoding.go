// Package encoding provides the low-level binary encoding helpers shared by
// every on-disk format in the store: little-endian fixed-width integers,
// LevelDB-style varints, and length-prefixed byte slices.
//
// All encoders append to a destination slice and return the extended slice;
// all decoders return the decoded value together with the number of bytes
// consumed (0 on failure), so callers can advance through a buffer without
// extra bookkeeping.
package encoding

import "errors"

// ErrCorrupt reports a malformed or truncated encoding.
var ErrCorrupt = errors.New("encoding: corrupt data")

// MaxVarintLen64 is the maximum number of bytes a 64-bit varint occupies.
const MaxVarintLen64 = 10

// MaxVarintLen32 is the maximum number of bytes a 32-bit varint occupies.
const MaxVarintLen32 = 5

// PutFixed32 appends v in little-endian order.
func PutFixed32(dst []byte, v uint32) []byte {
	return append(dst, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
}

// PutFixed64 appends v in little-endian order.
func PutFixed64(dst []byte, v uint64) []byte {
	return append(dst,
		byte(v), byte(v>>8), byte(v>>16), byte(v>>24),
		byte(v>>32), byte(v>>40), byte(v>>48), byte(v>>56))
}

// Fixed32 decodes a little-endian uint32 from the first 4 bytes of b.
// The caller must guarantee len(b) >= 4.
func Fixed32(b []byte) uint32 {
	_ = b[3]
	return uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24
}

// Fixed64 decodes a little-endian uint64 from the first 8 bytes of b.
// The caller must guarantee len(b) >= 8.
func Fixed64(b []byte) uint64 {
	_ = b[7]
	return uint64(b[0]) | uint64(b[1])<<8 | uint64(b[2])<<16 | uint64(b[3])<<24 |
		uint64(b[4])<<32 | uint64(b[5])<<40 | uint64(b[6])<<48 | uint64(b[7])<<56
}

// PutUvarint appends v using the base-128 varint encoding.
func PutUvarint(dst []byte, v uint64) []byte {
	for v >= 0x80 {
		dst = append(dst, byte(v)|0x80)
		v >>= 7
	}
	return append(dst, byte(v))
}

// Uvarint decodes a varint from b, returning the value and the number of
// bytes consumed. It returns (0, 0) if b is truncated or malformed.
func Uvarint(b []byte) (uint64, int) {
	var v uint64
	var shift uint
	for i := 0; i < len(b); i++ {
		c := b[i]
		if shift >= 64 || (shift == 63 && c > 1) {
			return 0, 0 // overflow
		}
		if c < 0x80 {
			return v | uint64(c)<<shift, i + 1
		}
		v |= uint64(c&0x7f) << shift
		shift += 7
	}
	return 0, 0
}

// UvarintLen reports how many bytes PutUvarint(nil, v) would produce.
func UvarintLen(v uint64) int {
	n := 1
	for v >= 0x80 {
		v >>= 7
		n++
	}
	return n
}

// PutLengthPrefixed appends a varint length followed by the bytes of s.
func PutLengthPrefixed(dst []byte, s []byte) []byte {
	dst = PutUvarint(dst, uint64(len(s)))
	return append(dst, s...)
}

// GetLengthPrefixed decodes a length-prefixed slice from b. The returned
// slice aliases b. It returns (nil, 0) on truncated or malformed input; note
// that an encoded empty slice returns a non-nil empty result.
func GetLengthPrefixed(b []byte) ([]byte, int) {
	n, c := Uvarint(b)
	if c == 0 || uint64(len(b)-c) < n {
		return nil, 0
	}
	return b[c : c+int(n) : c+int(n)], c + int(n)
}
