package encoding

import (
	"bytes"
	"math"
	"testing"
	"testing/quick"
)

func TestFixed32RoundTrip(t *testing.T) {
	for _, v := range []uint32{0, 1, 0xff, 0x1234, 0xdeadbeef, math.MaxUint32} {
		b := PutFixed32(nil, v)
		if len(b) != 4 {
			t.Fatalf("PutFixed32 produced %d bytes", len(b))
		}
		if got := Fixed32(b); got != v {
			t.Errorf("Fixed32(PutFixed32(%#x)) = %#x", v, got)
		}
	}
}

func TestFixed64RoundTrip(t *testing.T) {
	for _, v := range []uint64{0, 1, 0xff, 0xdeadbeefcafe, math.MaxUint64} {
		b := PutFixed64(nil, v)
		if len(b) != 8 {
			t.Fatalf("PutFixed64 produced %d bytes", len(b))
		}
		if got := Fixed64(b); got != v {
			t.Errorf("Fixed64(PutFixed64(%#x)) = %#x", v, got)
		}
	}
}

func TestFixedAppendsToExisting(t *testing.T) {
	b := []byte{0xaa}
	b = PutFixed32(b, 7)
	if b[0] != 0xaa || Fixed32(b[1:]) != 7 {
		t.Errorf("PutFixed32 did not append: %v", b)
	}
}

func TestUvarintRoundTrip(t *testing.T) {
	cases := []uint64{0, 1, 127, 128, 255, 256, 16383, 16384, 1 << 32, math.MaxUint64}
	for _, v := range cases {
		b := PutUvarint(nil, v)
		got, n := Uvarint(b)
		if n != len(b) || got != v {
			t.Errorf("Uvarint(PutUvarint(%d)) = (%d, %d), want (%d, %d)", v, got, n, v, len(b))
		}
		if UvarintLen(v) != len(b) {
			t.Errorf("UvarintLen(%d) = %d, want %d", v, UvarintLen(v), len(b))
		}
	}
}

func TestUvarintQuick(t *testing.T) {
	f := func(v uint64) bool {
		b := PutUvarint(nil, v)
		got, n := Uvarint(b)
		return got == v && n == len(b) && n <= MaxVarintLen64
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestUvarintTruncated(t *testing.T) {
	b := PutUvarint(nil, math.MaxUint64)
	for i := 0; i < len(b); i++ {
		if _, n := Uvarint(b[:i]); n != 0 {
			t.Errorf("Uvarint accepted truncated input of %d bytes", i)
		}
	}
}

func TestUvarintOverflow(t *testing.T) {
	// 11 continuation bytes cannot be a valid 64-bit varint.
	b := bytes.Repeat([]byte{0xff}, 11)
	if _, n := Uvarint(b); n != 0 {
		t.Error("Uvarint accepted overflowing input")
	}
}

func TestLengthPrefixedRoundTrip(t *testing.T) {
	payloads := [][]byte{{}, []byte("a"), []byte("hello world"), bytes.Repeat([]byte{0x7f}, 300)}
	var buf []byte
	for _, p := range payloads {
		buf = PutLengthPrefixed(buf, p)
	}
	rest := buf
	for i, p := range payloads {
		got, n := GetLengthPrefixed(rest)
		if n == 0 {
			t.Fatalf("payload %d: decode failed", i)
		}
		if !bytes.Equal(got, p) {
			t.Errorf("payload %d: got %q want %q", i, got, p)
		}
		rest = rest[n:]
	}
	if len(rest) != 0 {
		t.Errorf("%d trailing bytes", len(rest))
	}
}

func TestLengthPrefixedTruncated(t *testing.T) {
	b := PutLengthPrefixed(nil, []byte("payload"))
	for i := 0; i < len(b); i++ {
		if _, n := GetLengthPrefixed(b[:i]); n != 0 {
			t.Errorf("GetLengthPrefixed accepted truncated input of %d bytes", i)
		}
	}
}

func TestLengthPrefixedQuick(t *testing.T) {
	f := func(p []byte) bool {
		b := PutLengthPrefixed(nil, p)
		got, n := GetLengthPrefixed(b)
		return n == len(b) && bytes.Equal(got, p)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestGetLengthPrefixedDoesNotOverread(t *testing.T) {
	// Length claims more bytes than available.
	b := PutUvarint(nil, 100)
	b = append(b, []byte("short")...)
	if _, n := GetLengthPrefixed(b); n != 0 {
		t.Error("GetLengthPrefixed accepted short payload")
	}
}
