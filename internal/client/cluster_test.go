package client

import (
	"errors"
	"testing"

	"repro/internal/resp"
)

func TestParseMoved(t *testing.T) {
	cases := []struct {
		in   string
		slot int
		addr string // "" = not a MOVED redirect
	}{
		{"MOVED 3 127.0.0.1:7001", 3, "127.0.0.1:7001"},
		{"MOVED 0 node-b:6380", 0, "node-b:6380"},
		{"ERR unknown command 'FOO'", 0, ""},
		{"MOVED", 0, ""},
		{"MOVED notanumber 127.0.0.1:7001", 0, ""},
		{"MOVED 3", 0, ""},
		{"MOVED -1 127.0.0.1:7001", 0, ""},
	}
	for _, tc := range cases {
		err := parseMoved(resp.Error(tc.in))
		var moved *MovedError
		if tc.addr == "" {
			if errors.As(err, &moved) {
				t.Errorf("parseMoved(%q) decoded %+v, want passthrough", tc.in, moved)
			}
			continue
		}
		if !errors.As(err, &moved) {
			t.Errorf("parseMoved(%q) = %v (%T), want *MovedError", tc.in, err, err)
			continue
		}
		if moved.Slot != tc.slot || moved.Addr != tc.addr {
			t.Errorf("parseMoved(%q) = %+v, want slot=%d addr=%q", tc.in, moved, tc.slot, tc.addr)
		}
		if moved.Error() != tc.in {
			t.Errorf("MovedError round-trip %q != %q", moved.Error(), tc.in)
		}
	}
}

// TestMovedSurfacesFromDo pins the wire path: a -MOVED error reply from the
// server surfaces from Do as a typed *MovedError.
func TestMovedSurfacesFromDo(t *testing.T) {
	addr := stubServer(t, "-MOVED 42 10.0.0.9:6380\r\n")
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	_, err = c.Do("GET", "k")
	var moved *MovedError
	if !errors.As(err, &moved) {
		t.Fatalf("Do returned %v (%T), want *MovedError", err, err)
	}
	if moved.Slot != 42 || moved.Addr != "10.0.0.9:6380" {
		t.Errorf("MovedError = %+v, want slot=42 addr=10.0.0.9:6380", moved)
	}
}
