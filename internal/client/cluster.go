package client

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/resp"
)

// MovedError is the decoded form of a Redis Cluster "-MOVED <slot> <addr>"
// redirect: the key's slot lives on another node. The single-process
// server never sends one today (it owns every slot), but the engine's hash
// partitioning is the slot map a multi-process deployment would shard by,
// so the client already speaks the redirect half of the protocol.
type MovedError struct {
	Slot int
	Addr string
}

func (e *MovedError) Error() string {
	return fmt.Sprintf("MOVED %d %s", e.Slot, e.Addr)
}

// parseMoved decodes a server error reply into a *MovedError when it is a
// MOVED redirect; otherwise it returns the error unchanged.
func parseMoved(e resp.Error) error {
	s := string(e)
	rest, ok := strings.CutPrefix(s, "MOVED ")
	if !ok {
		return e
	}
	slotStr, addr, ok := strings.Cut(rest, " ")
	if !ok || addr == "" {
		return e
	}
	slot, err := strconv.Atoi(slotStr)
	if err != nil || slot < 0 {
		return e
	}
	return &MovedError{Slot: slot, Addr: addr}
}

// ClusterInfo fetches the CLUSTER INFO text (cluster_enabled, ldc_shards,
// and friends as "key:value" lines).
func (c *Client) ClusterInfo() (string, error) {
	v, err := c.Do("CLUSTER", "INFO")
	if err != nil {
		return "", err
	}
	b, ok := v.([]byte)
	if !ok {
		return "", fmt.Errorf("client: unexpected CLUSTER INFO reply %T", v)
	}
	return string(b), nil
}

// ClusterMyID fetches this server's stable cluster node ID.
func (c *Client) ClusterMyID() (string, error) {
	v, err := c.Do("CLUSTER", "MYID")
	if err != nil {
		return "", err
	}
	b, ok := v.([]byte)
	if !ok {
		return "", fmt.Errorf("client: unexpected CLUSTER MYID reply %T", v)
	}
	return string(b), nil
}

// ClusterKeySlot reports which engine shard (slot) owns key.
func (c *Client) ClusterKeySlot(key []byte) (int64, error) {
	v, err := c.Do("CLUSTER", "KEYSLOT", key)
	if err != nil {
		return 0, err
	}
	n, ok := v.(int64)
	if !ok {
		return 0, fmt.Errorf("client: unexpected CLUSTER KEYSLOT reply %T", v)
	}
	return n, nil
}
