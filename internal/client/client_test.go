package client

import (
	"bufio"
	"errors"
	"net"
	"strings"
	"testing"

	"repro/internal/resp"
)

// stubServer answers each received command with the next canned reply,
// independent of the real server — these tests pin the client's wire
// behaviour in isolation. The full-stack path is covered by
// internal/server's tests.
func stubServer(t *testing.T, replies ...string) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	t.Cleanup(func() { _ = ln.Close() })
	go func() {
		nc, err := ln.Accept()
		if err != nil {
			return
		}
		defer nc.Close()
		r := resp.NewReader(nc)
		for _, reply := range replies {
			if _, err := r.ReadCommand(); err != nil {
				return
			}
			if _, err := nc.Write([]byte(reply)); err != nil {
				return
			}
		}
		// Drain until the client hangs up.
		buf := bufio.NewReader(nc)
		for {
			if _, err := buf.ReadByte(); err != nil {
				return
			}
		}
	}()
	return ln.Addr().String()
}

func TestDoReplyTypes(t *testing.T) {
	addr := stubServer(t,
		"+PONG\r\n",
		":42\r\n",
		"$5\r\nhello\r\n",
		"$-1\r\n",
		"*2\r\n$1\r\na\r\n$-1\r\n",
		"-ERR boom\r\n",
	)
	c, err := Dial(addr)
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer c.Close()

	if err := c.Ping(); err != nil {
		t.Fatalf("Ping: %v", err)
	}
	if v, err := c.Do("X"); err != nil || v.(int64) != 42 {
		t.Fatalf("int reply = %v, %v", v, err)
	}
	if v, err := c.Get([]byte("k")); err != nil || string(v) != "hello" {
		t.Fatalf("Get = %q, %v", v, err)
	}
	if _, err := c.Get([]byte("k")); !errors.Is(err, ErrNil) {
		t.Fatalf("null bulk = %v, want ErrNil", err)
	}
	vals, err := c.MGet([]byte("a"), []byte("b"))
	if err != nil || string(vals[0]) != "a" || vals[1] != nil {
		t.Fatalf("MGet = %q, %v", vals, err)
	}
	_, err = c.Do("X")
	var re resp.Error
	if !errors.As(err, &re) || !strings.Contains(err.Error(), "boom") {
		t.Fatalf("error reply = %v, want resp.Error(boom)", err)
	}
}

func TestPipelinePositionalReplies(t *testing.T) {
	addr := stubServer(t, "+OK\r\n", "-ERR nope\r\n", ":7\r\n")
	c, err := Dial(addr)
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer c.Close()

	p := c.Pipeline()
	p.Do("A")
	p.Do("B")
	p.Do("C")
	if p.Len() != 3 {
		t.Fatalf("Len = %d", p.Len())
	}
	replies, err := p.Exec()
	if err != nil {
		t.Fatalf("Exec: %v", err)
	}
	if len(replies) != 3 {
		t.Fatalf("got %d replies", len(replies))
	}
	if replies[0].(string) != "OK" {
		t.Fatalf("reply 0 = %v", replies[0])
	}
	// Server error replies stay positional, not promoted to Exec's error.
	if e, ok := replies[1].(resp.Error); !ok || !strings.Contains(string(e), "nope") {
		t.Fatalf("reply 1 = %#v", replies[1])
	}
	if replies[2].(int64) != 7 {
		t.Fatalf("reply 2 = %v", replies[2])
	}
	if p.Len() != 0 {
		t.Fatalf("pipeline not reset: Len = %d", p.Len())
	}
}

func TestPipelineEncodingErrorLatched(t *testing.T) {
	c := &Client{} // never touches the network: Exec fails before locking
	p := c.Pipeline()
	p.Do("SET", "k", 3.14) // unsupported argument type
	p.Do("GET", "k")       // ignored after the latch
	if p.Len() != 0 {
		t.Fatalf("Len = %d, want 0", p.Len())
	}
	if _, err := p.Exec(); err == nil {
		t.Fatal("Exec should surface the latched encoding error")
	}
	// The pipeline is reusable after the error drains.
	if p.err != nil || p.Len() != 0 {
		t.Fatal("pipeline not reset after Exec error")
	}
}
